// Real-process leader election over localhost UDP, under fire.
//
// The parent forks N child processes. Each child binds its own UDP
// socket, hosts the fault-tolerant election engine on a PeerNode over
// UdpTransport (with seeded send-side loss injected under the
// reliability layer), and reports its leader belief to the parent over
// a pipe. Meanwhile a chaos supervisor in the parent SIGKILLs children
// mid-election — no goodbye, no flushed state — and forks replacements
// that rejoin knowing nothing. The run succeeds when every chaos round
// has happened and every live process agrees on one leader that some
// process actually declared.
//
//   ./distributed_demo [--n=16] [--f=2] [--loss=0.10] [--kills=2]
//                      [--seed=1] [--base-port=47100] [--timeout-s=60]
//                      [--trace-dir=PATH]
//
// With --trace-dir every child records a causal trace and flushes it as
// a shard file (atomic tmp+rename, so a SIGKILLed victim's last flush
// always parses), ships metrics snapshots to the supervisor over the
// report pipe, and on orderly shutdown (SIGTERM) writes a final
// complete shard. Merge the shards afterwards with
// `celect_trace merge DIR/shard-*.trace`.
//
// Exits 0 on agreement, 1 on timeout/split, 2 if sockets cannot bind.
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "celect/net/clock.h"
#include "celect/net/peer_node.h"
#include "celect/net/udp_transport.h"
#include "celect/obs/shard.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/util/flags.h"
#include "celect/util/rng.h"

namespace {

using namespace celect;
using net::Micros;

struct Options {
  std::uint32_t n = 16;
  std::uint32_t f = 2;
  double loss = 0.10;
  std::uint32_t kills = 2;
  std::uint64_t seed = 1;
  std::uint16_t base_port = 47100;
  std::uint64_t timeout_s = 60;
  std::string trace_dir;  // empty = observability off
};

volatile std::sig_atomic_t g_terminate = 0;
void OnTerm(int) { g_terminate = 1; }

// Best-effort shard flush: serialize, write to a tmp file, rename into
// place. The rename is atomic, so a reader (or the post-run merge)
// never sees a half-written shard — a SIGKILL between flushes just
// means the last complete=false flush is the incarnation's record.
void WriteShard(const std::string& dir, const net::PeerNode& node,
                bool complete) {
  obs::TraceShard shard = node.MakeShard(complete);
  std::string text = obs::SerializeShard(shard);
  std::string base = dir + "/shard-n" + std::to_string(shard.node) +
                     "-e" + std::to_string(shard.epoch) + ".trace";
  std::string tmp = base + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return;
  std::size_t off = 0;
  while (off < text.size()) {
    ssize_t put = ::write(fd, text.data() + off, text.size() - off);
    if (put <= 0) {
      ::close(fd);
      ::unlink(tmp.c_str());
      return;
    }
    off += static_cast<std::size_t>(put);
  }
  ::close(fd);
  ::rename(tmp.c_str(), base.c_str());
}

// Seed-shuffled distinct identities, stable across a node's restarts:
// a revived process is the same contestant, minus its memory.
std::vector<sim::Id> MakeIds(std::uint32_t n, std::uint64_t seed) {
  Rng rng(SplitMix64(seed ^ 0xd15c0).Next());
  auto perm = rng.Permutation(n);
  std::vector<sim::Id> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ids[i] = static_cast<sim::Id>(perm[i]) * 7 + 1001;
  }
  return ids;
}

// Child main: never returns. Reports over write_fd with single lines:
//   "B <node> <leader>\n"   belief changed
//   "D <node> <leader>\n"   declared itself leader
//   "E <node>\n"            socket bind failed
//   "M <node> <compact>\n"  metrics snapshot (trace mode only)
[[noreturn]] void RunChild(std::uint32_t index, const Options& opt,
                           sim::Id id, bool rejoin, int write_fd) {
  net::UdpTransportConfig tc;
  tc.self = index;
  tc.n = opt.n;
  tc.base_port = opt.base_port;
  tc.send_loss = opt.loss;
  tc.seed = SplitMix64(opt.seed ^ (std::uint64_t{index} + 1) ^
                       net::HostEpoch())
                .Next();
  // epoch 0 -> HostEpoch(): every incarnation is distinguishable.
  net::UdpTransport transport(tc);
  if (!transport.Open()) {
    dprintf(write_fd, "E %u\n", index);
    _exit(2);
  }
  net::PeerNodeConfig pc;
  pc.id = id;
  pc.rejoin = rejoin;
  const bool tracing = !opt.trace_dir.empty();
  if (tracing) {
    pc.trace = true;
    std::signal(SIGTERM, OnTerm);
  }
  net::PeerNode node(pc, transport, proto::nosod::MakeFaultTolerant(opt.f));

  std::optional<sim::Id> reported;
  bool declared = false;
  Micros next_flush = 0;
  Micros next_metrics = 0;
  for (;;) {
    node.Pump();
    if (node.declared_self() && !declared) {
      declared = true;
      dprintf(write_fd, "D %u %lld\n", index,
              static_cast<long long>(*node.leader()));
    }
    if (node.leader() != reported) {
      reported = node.leader();
      dprintf(write_fd, "B %u %lld\n", index,
              static_cast<long long>(*reported));
    }
    if (tracing) {
      if (g_terminate) {
        // Orderly shutdown: one last complete shard, then out.
        WriteShard(opt.trace_dir, node, /*complete=*/true);
        _exit(0);
      }
      Micros now = transport.Now();
      if (now >= next_flush) {
        WriteShard(opt.trace_dir, node, /*complete=*/false);
        next_flush = now + 300'000;
      }
      if (now >= next_metrics) {
        dprintf(write_fd, "M %u %s\n", index,
                node.SnapshotMetrics().SerializeCompact().c_str());
        next_metrics = now + 500'000;
      }
    }
    if (getppid() == 1) _exit(0);  // orphaned: the parent is gone
    ::usleep(200);
  }
}

struct Child {
  pid_t pid = -1;
  int fd = -1;  // read end of its report pipe
  bool alive = false;
  std::optional<sim::Id> belief;
  std::string buffer;  // partial line accumulator
};

class Supervisor {
 public:
  explicit Supervisor(const Options& opt)
      : opt_(opt), ids_(MakeIds(opt.n, opt.seed)), children_(opt.n) {}

  bool Spawn(std::uint32_t index, bool rejoin) {
    int fds[2];
    if (::pipe(fds) != 0) return false;
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      return false;
    }
    if (pid == 0) {
      // Drop every inherited report pipe except our own write end.
      for (const Child& c : children_) {
        if (c.fd >= 0) ::close(c.fd);
      }
      ::close(fds[0]);
      RunChild(index, opt_, ids_[index], rejoin, fds[1]);
    }
    ::close(fds[1]);
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    Child& c = children_[index];
    if (c.fd >= 0) ::close(c.fd);  // previous incarnation's pipe
    c = Child{};
    c.pid = pid;
    c.fd = fds[0];
    c.alive = true;
    return true;
  }

  void Kill(std::uint32_t index) {
    Child& c = children_[index];
    if (!c.alive) return;
    ::kill(c.pid, SIGKILL);
    ::waitpid(c.pid, nullptr, 0);
    c.alive = false;
    c.belief.reset();
    std::cout << "  [chaos] SIGKILL node " << index << " (id " << ids_[index]
              << ")\n";
  }

  // Drains report pipes into beliefs / the declared set.
  void Drain() {
    char buf[256];
    for (std::uint32_t i = 0; i < opt_.n; ++i) {
      Child& c = children_[i];
      if (c.fd < 0) continue;
      ssize_t got;
      while ((got = ::read(c.fd, buf, sizeof buf)) > 0) {
        c.buffer.append(buf, static_cast<std::size_t>(got));
      }
      std::size_t nl;
      while ((nl = c.buffer.find('\n')) != std::string::npos) {
        std::string line = c.buffer.substr(0, nl);
        c.buffer.erase(0, nl + 1);
        if (line.compare(0, 2, "M ") == 0) {
          // Metrics snapshot: latest one per node wins (it subsumes
          // every earlier snapshot of the same incarnation).
          std::size_t sp = line.find(' ', 2);
          if (sp != std::string::npos && c.alive) {
            auto parsed =
                obs::MetricsRegistry::ParseCompact(line.substr(sp + 1));
            if (parsed) metrics_[i] = std::move(*parsed);
          }
          continue;
        }
        char kind = 0;
        unsigned index = 0;
        long long leader = 0;
        if (std::sscanf(line.c_str(), "%c %u %lld", &kind, &index, &leader) >=
            2) {
          if (kind == 'E') bind_failed_ = true;
          if (!c.alive) continue;  // late lines from a killed incarnation
          if (kind == 'D') declared_.insert(leader);
          if (kind == 'D' || kind == 'B') c.belief = leader;
        }
      }
    }
  }

  // All live children unanimous on a leader somebody declared.
  std::optional<sim::Id> Agreement() const {
    std::optional<sim::Id> belief;
    for (const Child& c : children_) {
      if (!c.alive) continue;
      if (!c.belief) return std::nullopt;
      if (belief && *belief != *c.belief) return std::nullopt;
      belief = c.belief;
    }
    if (!belief || declared_.count(*belief) == 0) return std::nullopt;
    return belief;
  }

  // Orderly teardown: SIGTERM first so tracing children flush their
  // final complete shard, escalating to SIGKILL after a grace period.
  void KillAll() {
    for (Child& c : children_) {
      if (c.alive) ::kill(c.pid, SIGTERM);
    }
    Micros waited = 0;
    for (Child& c : children_) {
      if (!c.alive) continue;
      for (;;) {
        pid_t reaped = ::waitpid(c.pid, nullptr, WNOHANG);
        if (reaped == c.pid || reaped < 0) break;
        if (waited >= 2'000'000) {
          ::kill(c.pid, SIGKILL);
          ::waitpid(c.pid, nullptr, 0);
          break;
        }
        ::usleep(10'000);
        waited += 10'000;
      }
      c.alive = false;
    }
    for (Child& c : children_) {
      if (c.fd >= 0) {
        ::close(c.fd);
        c.fd = -1;
      }
    }
  }

  // Cluster-wide fold of the latest metrics snapshot per node.
  void PrintMetrics() const {
    if (metrics_.empty()) return;
    obs::MetricsRegistry all;
    for (const auto& [node, m] : metrics_) all.MergeFrom(m);
    std::cout << "merged metrics (" << metrics_.size()
              << " reporting nodes):\n";
    for (const auto& [name, value] : all.counters()) {
      std::cout << "  " << name << " = " << value << "\n";
    }
    for (const auto& [name, h] : all.histograms()) {
      std::cout << "  " << name << ": count=" << h.count()
                << " mean=" << h.mean() << " p99=" << h.ApproxQuantile(0.99)
                << "\n";
    }
  }

  int Run() {
    for (std::uint32_t i = 0; i < opt_.n; ++i) {
      if (!Spawn(i, /*rejoin=*/false)) {
        KillAll();
        return 2;
      }
    }
    std::cout << "spawned " << opt_.n << " processes on 127.0.0.1 ports "
              << opt_.base_port << ".." << (opt_.base_port + opt_.n - 1)
              << ", send loss " << opt_.loss << "\n";

    // Chaos schedule: distinct victims, SIGKILLed in waves starting
    // 300ms in, each revived 500ms after its death.
    Rng rng(SplitMix64(opt_.seed ^ 0xc4a05).Next());
    auto victims = rng.Permutation(opt_.n);
    struct Planned {
      Micros at;
      std::uint32_t node;
      bool kill;
    };
    std::vector<Planned> plan;
    for (std::uint32_t k = 0; k < opt_.kills && k < opt_.n; ++k) {
      Micros at = 300'000 + static_cast<Micros>(k) * 400'000;
      plan.push_back({at, victims[k], true});
      plan.push_back({at + 500'000, victims[k], false});
    }

    net::MonotonicClock clock;
    Micros deadline = clock.Now() + opt_.timeout_s * 1'000'000;
    std::size_t plan_idx = 0;
    for (;;) {
      Micros now = clock.Now();
      while (plan_idx < plan.size() && plan[plan_idx].at <= now) {
        const Planned& p = plan[plan_idx++];
        if (p.kill) {
          Kill(p.node);
        } else {
          std::cout << "  [chaos] restart node " << p.node << " (id "
                    << ids_[p.node] << ", rejoin)\n";
          if (!Spawn(p.node, /*rejoin=*/true)) {
            KillAll();
            return 2;
          }
        }
      }
      Drain();
      if (bind_failed_) {
        std::cerr << "a child failed to bind its UDP port\n";
        KillAll();
        return 2;
      }
      if (plan_idx == plan.size()) {
        if (auto leader = Agreement()) {
          std::cout << "agreed: leader id " << *leader << " after "
                    << (clock.Now() / 1000) << " ms ("
                    << declared_.size() << " declaration(s) seen)\n";
          KillAll();
          PrintMetrics();
          if (!opt_.trace_dir.empty()) {
            std::cout << "trace shards in " << opt_.trace_dir << "\n";
          }
          return 0;
        }
      }
      if (now > deadline) {
        std::cerr << "timeout: no agreement after " << opt_.timeout_s
                  << "s\n";
        for (std::uint32_t i = 0; i < opt_.n; ++i) {
          const Child& c = children_[i];
          std::cerr << "  node " << i << " alive=" << c.alive << " belief="
                    << (c.belief ? std::to_string(*c.belief) : "none")
                    << "\n";
        }
        KillAll();
        return 1;
      }
      ::usleep(1000);
    }
  }

 private:
  Options opt_;
  std::vector<sim::Id> ids_;
  std::vector<Child> children_;
  std::set<sim::Id> declared_;
  std::map<std::uint32_t, obs::MetricsRegistry> metrics_;
  bool bind_failed_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Options opt;
  opt.n = static_cast<std::uint32_t>(
      flags.GetInt("n", 16, "number of OS processes"));
  opt.f = static_cast<std::uint32_t>(
      flags.GetInt("f", 2, "fault budget of the election engine"));
  opt.loss = flags.GetDouble("loss", 0.10, "send-side datagram loss rate");
  opt.kills = static_cast<std::uint32_t>(
      flags.GetInt("kills", 2, "SIGKILL+restart rounds"));
  opt.seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 1, "seed for ids, loss, and victim choice"));
  opt.base_port = static_cast<std::uint16_t>(
      flags.GetInt("base-port", 47100, "first UDP port on 127.0.0.1"));
  opt.timeout_s = static_cast<std::uint64_t>(
      flags.GetInt("timeout-s", 60, "give up after this many seconds"));
  opt.trace_dir = flags.GetString(
      "trace-dir", "",
      "write per-process trace shards here (and ship metrics)");
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (opt.n < 2) {
    std::cerr << "need at least two processes\n";
    return 2;
  }
  if (!opt.trace_dir.empty()) {
    ::mkdir(opt.trace_dir.c_str(), 0755);  // EEXIST is fine
  }
  Supervisor sup(opt);
  return sup.Run();
}
