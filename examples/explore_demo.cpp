// Model-checking walkthrough: exhaustive interleaving exploration of a
// small complete network.
//
//  1. Exhaust every maximal message schedule of a paper protocol on a
//     small config and report the explored state space — a per-config
//     proof of the invariants, not a sample.
//  2. Seed a deliberately broken protocol (a candidate declares on its
//     first grant instead of a quorum) and let the explorer hunt down
//     the interleaving that elects two leaders.
//  3. Replay the minimised counterexample schedule bit-for-bit.
//
//   ./explore_demo [--protocol=D] [--n=3] [--bases=0] [--budget=1000000]
#include <iostream>
#include <memory>

#include "celect/analysis/explorer.h"
#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/harness/registry.h"
#include "celect/proto/common.h"
#include "celect/util/flags.h"

namespace {

using namespace celect;

analysis::ConfigFactory SmallNetwork(std::uint32_t n, std::uint32_t bases) {
  return [n, bases] {
    harness::RunOptions o;
    o.n = n;
    o.seed = 7;
    o.mapper = harness::MapperKind::kRandom;
    if (bases > 0) {
      o.wakeup = harness::WakeupKind::kRandomSubset;
      o.wakeup_count = bases;
    }
    return harness::BuildNetwork(o);
  };
}

// The seeded bug from tests/test_explorer.cpp: the two highest ids
// broadcast a claim, everyone else grants its first claim, and one
// grant "wins". Only a schedule that splits the grants elects twice.
constexpr std::uint16_t kClaim = 1;
constexpr std::uint16_t kGrant = 2;

class BrokenToyNode : public proto::ElectionProcess {
 public:
  explicit BrokenToyNode(const sim::ProcessInit& init)
      : id_(init.id), n_(init.n) {}

 protected:
  void OnSpontaneousWakeup(sim::Context& ctx) override {
    if (id_ > static_cast<sim::Id>(n_) - 2) {
      ctx.SendAll(wire::Packet{kClaim, {id_}});
    }
  }

  void OnPacket(sim::Context& ctx, sim::Port from_port,
                const wire::Packet& p, bool /*first_contact*/) override {
    if (p.type == kClaim && id_ <= static_cast<sim::Id>(n_) - 2 &&
        !granted_) {
      granted_ = true;
      ctx.Send(from_port, wire::Packet{kGrant, {}});
    } else if (p.type == kGrant && !declared_) {
      declared_ = true;
      ctx.DeclareLeader();  // BUG: one grant is not a quorum
    }
  }

 private:
  const sim::Id id_;
  const std::uint32_t n_;
  bool granted_ = false;
  bool declared_ = false;
};

void PrintStats(const analysis::ExploreStats& s) {
  std::cout << "   schedules=" << s.schedules << " events=" << s.events
            << " branch_points=" << s.branch_points
            << " sleep_pruned=" << s.sleep_pruned
            << " max_enabled=" << s.max_enabled
            << (s.budget_exhausted ? " (budget exhausted!)" : "") << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string proto_name =
      flags.GetString("protocol", "D", "registered protocol to exhaust");
  auto n = static_cast<std::uint32_t>(flags.GetInt("n", 3, "network size"));
  auto bases = static_cast<std::uint32_t>(
      flags.GetInt("bases", 0, "base nodes (0 = all)"));
  auto budget = static_cast<std::uint64_t>(
      flags.GetInt("budget", 1'000'000, "max executions"));
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  auto spec = harness::FindProtocol(proto_name);
  if (!spec) {
    std::cerr << "unknown protocol: " << proto_name << "\n";
    return 2;
  }

  analysis::ExplorerOptions opt;
  opt.max_schedules = budget;
  opt.invariants.quiescence_termination = true;

  std::cout << "1) Exhausting protocol " << spec->name << " on N=" << n
            << (bases ? " (" + std::to_string(bases) + " base nodes)" : "")
            << "\n";
  auto res = analysis::Explore(spec->make(0), SmallNetwork(n, bases), opt);
  PrintStats(res.stats);
  if (!res.ok()) {
    std::cout << "   VIOLATION on schedule \"" << res.counterexample->schedule
              << "\": " << res.counterexample->violations[0] << "\n";
    return 1;
  }
  std::cout << "   every schedule elected exactly one leader\n\n";

  std::cout << "2) Hunting the seeded double-election bug (N=4)\n";
  auto factory = [](const sim::ProcessInit& init)
      -> std::unique_ptr<sim::Process> {
    return std::make_unique<BrokenToyNode>(init);
  };
  analysis::ExplorerOptions bug_opt;
  auto hunt = analysis::Explore(factory, SmallNetwork(4, 0), bug_opt);
  PrintStats(hunt.stats);
  if (hunt.ok()) {
    std::cout << "   bug not found — exploration was incomplete?\n";
    return 1;
  }
  std::cout << "   found: " << hunt.counterexample->violations[0] << "\n"
            << "   minimal schedule: \"" << hunt.counterexample->schedule
            << "\"\n\n";

  std::cout << "3) Replaying the counterexample bit-for-bit\n";
  auto once = analysis::ReplaySchedule(factory, SmallNetwork(4, 0),
                                       hunt.counterexample->choices,
                                       bug_opt.invariants);
  auto twice = analysis::ReplaySchedule(factory, SmallNetwork(4, 0),
                                        hunt.counterexample->choices,
                                        bug_opt.invariants);
  std::cout << "   declarations=" << once.result.leader_declarations
            << " fingerprint=" << std::hex
            << harness::FingerprintResult(once.result) << std::dec
            << (harness::FingerprintResult(once.result) ==
                        harness::FingerprintResult(twice.result)
                    ? " (reproduced)"
                    : " (MISMATCH)")
            << "\n";
  return once.result.leader_declarations > 1 ? 0 : 1;
}
