// Spanning tree + global aggregate on top of election — the paper's §1
// point that these problems are message/time-equivalent to election.
//
// Elects a leader with protocol G (no sense of direction), builds the
// spanning tree rooted at it, then computes a global sum and max with a
// second run. Prints the tree shape and the aggregates.
//
//   ./spanning_tree_demo [--n=32] [--seed=7]
#include <iostream>

#include "celect/apps/global_function.h"
#include "celect/apps/spanning_tree.h"
#include "celect/harness/experiment.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/sim/runtime.h"
#include "celect/util/flags.h"

int main(int argc, char** argv) {
  using namespace celect;
  Flags flags(argc, argv);
  std::uint32_t n =
      static_cast<std::uint32_t>(flags.GetInt("n", 32, "network size"));
  std::uint64_t seed = flags.GetInt("seed", 7, "random seed");
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  auto election =
      proto::nosod::MakeProtocolG(proto::nosod::MessageOptimalK(n));

  harness::RunOptions o;
  o.n = n;
  o.seed = seed;
  o.mapper = harness::MapperKind::kRandom;

  // 1. Spanning tree.
  sim::Runtime tree_rt(harness::BuildNetwork(o),
                       apps::MakeSpanningTree(election));
  auto tree_res = tree_rt.Run();
  std::cout << "spanning tree over protocol G:\n  "
            << harness::Summarize(tree_res) << "\n";
  std::uint32_t joined = 0;
  sim::NodeId root = 0;
  for (sim::NodeId i = 0; i < n; ++i) {
    auto& p = dynamic_cast<apps::SpanningTreeProcess&>(tree_rt.process(i));
    if (p.is_root()) {
      root = i;
    } else if (p.parent_port().has_value()) {
      ++joined;
    }
  }
  std::cout << "  root at address " << root << ", " << joined << "/"
            << n - 1 << " nodes joined (star spanning tree)\n\n";

  // 2. Global functions: sum and max of per-node inputs value(i) = 3i+1.
  auto input_of = [](sim::NodeId addr) {
    return static_cast<std::int64_t>(addr) * 3 + 1;
  };
  std::int64_t want_sum = 0, want_max = 0;
  for (sim::NodeId i = 0; i < n; ++i) {
    want_sum += input_of(i);
    want_max = std::max(want_max, input_of(i));
  }

  sim::Runtime sum_rt(
      harness::BuildNetwork(o),
      apps::MakeGlobalFunction(election, input_of, apps::SumReducer()));
  sum_rt.Run();
  auto& sum_p = dynamic_cast<apps::GlobalFunctionProcess&>(sum_rt.process(0));

  sim::Runtime max_rt(
      harness::BuildNetwork(o),
      apps::MakeGlobalFunction(election, input_of, apps::MaxReducer()));
  max_rt.Run();
  auto& max_p = dynamic_cast<apps::GlobalFunctionProcess&>(max_rt.process(0));

  std::cout << "global functions over the elected leader:\n";
  std::cout << "  sum(3i+1) = "
            << (sum_p.result() ? std::to_string(*sum_p.result()) : "?")
            << " (expected " << want_sum << ")\n";
  std::cout << "  max(3i+1) = "
            << (max_p.result() ? std::to_string(*max_p.result()) : "?")
            << " (expected " << want_max << ")\n";
  bool ok = sum_p.result() == want_sum && max_p.result() == want_max &&
            joined == n - 1;
  std::cout << (ok ? "\nall results verified.\n"
                   : "\nMISMATCH — see above.\n");
  return ok ? 0 : 2;
}
