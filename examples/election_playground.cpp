// Playground: run any protocol from the registry under any environment.
//
//   ./election_playground --protocol=C --n=256
//   ./election_playground --protocol=G --k=8 --wakeup=staggered
//   ./election_playground --protocol=A --wakeup=staggered --trace=true
//
// Use --help for the full knob list and the protocol catalogue.
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/registry.h"
#include "celect/sim/runtime.h"
#include "celect/util/flags.h"

int main(int argc, char** argv) {
  using namespace celect;
  Flags flags(argc, argv);

  std::string proto_name =
      flags.GetString("protocol", "C", "protocol name (see list below)");
  std::uint32_t n =
      static_cast<std::uint32_t>(flags.GetInt("n", 64, "network size"));
  std::uint32_t k = static_cast<std::uint32_t>(
      flags.GetInt("k", 0, "protocol parameter k (0 = default)"));
  std::uint64_t seed = flags.GetInt("seed", 1, "random seed");
  std::string delay = flags.GetString(
      "delay", "unit", "link delays: unit | random | eager");
  std::string wakeup = flags.GetString(
      "wakeup", "all", "wakeup plan: all | single | subset | staggered");
  std::uint32_t subset = static_cast<std::uint32_t>(flags.GetInt(
      "subset", 0, "base-node count for --wakeup=subset (0 = N/2)"));
  bool trace = flags.GetBool("trace", false, "print the event trace");

  if (flags.help_requested()) {
    std::cout << flags.HelpText() << "\nprotocols:\n"
              << harness::ProtocolListing();
    return 0;
  }

  auto spec = harness::FindProtocol(proto_name);
  if (!spec) {
    std::cerr << "unknown protocol '" << proto_name << "'. Available:\n"
              << harness::ProtocolListing();
    return 1;
  }
  if (spec->needs_power_of_two && (n & (n - 1)) != 0) {
    std::cerr << "protocol " << spec->name << " requires N = 2^r\n";
    return 1;
  }

  harness::RunOptions o;
  o.n = n;
  o.seed = seed;
  o.mapper = spec->needs_sense_of_direction
                 ? harness::MapperKind::kSenseOfDirection
                 : harness::MapperKind::kRandom;
  o.delay = delay == "random"  ? harness::DelayKind::kRandom
            : delay == "eager" ? harness::DelayKind::kEager
                               : harness::DelayKind::kUnit;
  o.wakeup = wakeup == "single"      ? harness::WakeupKind::kSingle
             : wakeup == "subset"    ? harness::WakeupKind::kRandomSubset
             : wakeup == "staggered" ? harness::WakeupKind::kStaggeredChain
                                     : harness::WakeupKind::kAllAtZero;
  o.wakeup_count = subset;
  o.enable_trace = trace;

  std::cout << "protocol " << spec->name << " — " << spec->description
            << "\n"
            << harness::Describe(o) << "\n\n";

  sim::RuntimeOptions rt_opts;
  rt_opts.enable_trace = trace;
  sim::Runtime runtime(harness::BuildNetwork(o), spec->make(k), rt_opts);
  auto r = runtime.Run();

  std::cout << harness::Summarize(r) << "\n";
  std::cout << "message breakdown by type:\n";
  for (const auto& [type, count] : r.messages_by_type) {
    std::cout << "  type " << type << ": " << count << "\n";
  }
  if (!r.counters.empty()) {
    std::cout << "protocol counters:\n";
    for (const auto& [name, value] : r.counters) {
      std::cout << "  " << name << " = " << value << "\n";
    }
  }
  if (trace) {
    std::cout << "\nfirst 100 trace records:\n"
              << runtime.trace().ToString(100);
  }
  return r.leader_declarations == 1 ? 0 : 2;
}
