// Adversary walkthrough: the two constructions that drive the paper's
// time bounds, side by side.
//
//  1. §3's staggered wakeup chain: protocol A degrades to Θ(N) time
//     while A′'s awaken wave holds at O(√N).
//  2. §5's lower-bound adversary (Up-first lazy port binding + unit
//     delays): the message-optimal protocol G cannot beat the N/16d
//     floor.
//
//   ./adversary_demo [--n=256]
#include <iostream>

#include "celect/adversary/lower_bound.h"
#include "celect/harness/experiment.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/proto/sod/protocol_a.h"
#include "celect/proto/sod/protocol_a_prime.h"
#include "celect/util/flags.h"

int main(int argc, char** argv) {
  using namespace celect;
  Flags flags(argc, argv);
  std::uint32_t n =
      static_cast<std::uint32_t>(flags.GetInt("n", 256, "network size"));
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  std::cout << "1) The §3 staggered wakeup chain (N=" << n << ")\n"
            << "   Node at ring position p wakes at 0.9p; identities "
               "ascend along the ring,\n"
            << "   so every capture by a smaller identity is contested "
               "away.\n\n";
  {
    harness::RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    o.wakeup = harness::WakeupKind::kStaggeredChain;
    o.stagger_spacing = 0.9;
    auto ra = harness::RunElection(proto::sod::MakeProtocolA({}), o);
    auto rp = harness::RunElection(proto::sod::MakeProtocolAPrime(), o);
    std::cout << "   protocol A : time = " << ra.leader_time.ToDouble()
              << "  (Θ(N): the last waker wins)\n";
    std::cout << "   protocol A′: time = " << rp.leader_time.ToDouble()
              << "  (O(√N): awaken wave bars late candidates)\n\n";
  }

  std::cout << "2) The §5 lower-bound adversary (Theorem 5.1)\n"
            << "   Fresh edges bind to Up_i = {i+1..i+k} first; any "
               "protocol within an Nd\n"
            << "   message budget stays local and needs ≥ N/16d time.\n\n";
  {
    std::uint32_t d = proto::nosod::MessageOptimalK(n);
    auto r = adversary::RunLowerBoundExperiment(
        proto::nosod::MakeProtocolG(d), n, /*k=*/2 * d);
    std::cout << "   " << adversary::ToString(r) << "\n";
    std::cout << "   achieved/floor = "
              << r.elapsed_time / r.theoretical_floor
              << "x above the theoretical minimum\n";
  }
  return 0;
}
