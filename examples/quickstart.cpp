// Quickstart: elect a leader on a 64-node asynchronous complete network
// twice — once with sense of direction (protocol C: O(N) messages,
// O(log N) time) and once without (protocol G: O(N log N) messages,
// O(N/log N) time) — and print what happened.
//
//   ./quickstart [--n=64] [--seed=1]
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/proto/sod/protocol_c.h"
#include "celect/util/flags.h"

int main(int argc, char** argv) {
  using namespace celect;
  Flags flags(argc, argv);
  std::uint32_t n =
      static_cast<std::uint32_t>(flags.GetInt("n", 64, "network size"));
  std::uint64_t seed = flags.GetInt("seed", 1, "random seed");
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  std::cout << "celect quickstart — leader election on a complete "
               "network of N="
            << n << " nodes\n\n";

  {
    harness::RunOptions o;
    o.n = n;
    o.seed = seed;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    auto r = harness::RunElection(proto::sod::MakeProtocolC(), o);
    std::cout << "[with sense of direction]  protocol C\n  "
              << harness::Summarize(r) << "\n"
              << "  (paper: O(N) messages, O(log N) time)\n\n";
  }
  {
    harness::RunOptions o;
    o.n = n;
    o.seed = seed;
    o.mapper = harness::MapperKind::kRandom;  // ports are anonymous
    auto r = harness::RunElection(
        proto::nosod::MakeProtocolG(proto::nosod::MessageOptimalK(n)), o);
    std::cout << "[without sense of direction]  protocol G, k = log N\n  "
              << harness::Summarize(r) << "\n"
              << "  (paper: O(N log N) messages, O(N/log N) time — "
                 "matching the Ω(N/log N) lower bound)\n";
  }
  return 0;
}
