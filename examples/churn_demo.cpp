// Continuous election service under churn: a ~60-simulated-second run
// with nodes periodically crashing and rejoining.
//
//  1. The seeded churn schedule — who crashes and revives, and when.
//  2. The lease timeline — every reign (term, holder, span) the
//     analysis::LeaseMonitor observed, including leases cut short by a
//     crash or a voluntary step-down.
//  3. The availability summary — completed re-elections, election
//     latency quantiles, unavailability (ticks of the service window
//     with no live lease holder), lease lifecycle counters, and the
//     checker verdicts (at most one unexpired lease at every instant;
//     every gap closed within the bounded re-election window).
//
//   ./churn_demo [--n=16] [--seed=1] [--horizon=60] [--churn=4]
//                [--renewals=3] [--loss=0.01]
#include <iostream>

#include "celect/analysis/invariants.h"
#include "celect/analysis/lease_monitor.h"
#include "celect/harness/churn.h"
#include "celect/sim/network.h"
#include "celect/sim/runtime.h"
#include "celect/util/flags.h"

int main(int argc, char** argv) {
  using namespace celect;
  Flags flags(argc, argv);
  auto n = static_cast<std::uint32_t>(flags.GetInt("n", 16, "network size"));
  auto seed = static_cast<std::uint64_t>(
      flags.GetInt("seed", 1, "seed (schedule, delays, ports)"));
  auto horizon = static_cast<std::int64_t>(
      flags.GetInt("horizon", 60, "service window, simulated seconds"));
  auto churn = static_cast<std::uint32_t>(
      flags.GetInt("churn", 4, "nodes cycling crash/rejoin"));
  auto renewals = static_cast<std::uint32_t>(flags.GetInt(
      "renewals", 3, "renewals before a voluntary step-down (0 = never)"));
  double loss = flags.GetDouble("loss", 0.01, "per-message loss rate");
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  harness::ChurnOptions opt;
  opt.n = n;
  opt.churn_nodes = churn;
  opt.loss = loss;
  opt.lease.horizon = sim::Time::FromUnits(horizon);
  opt.lease.max_renewals = renewals;

  std::cout << "1) Churn schedule (seed=" << seed << ", horizon=" << horizon
            << "s)\n";
  const sim::FaultPlan plan = harness::MakeChurnPlan(seed, opt);
  for (const auto& crash : plan.crashes) {
    std::cout << "   t=" << crash.at.ToDouble() << "  node " << crash.node
              << " crashes\n";
  }
  for (const auto& rejoin : plan.rejoins) {
    std::cout << "   t=" << rejoin.at.ToDouble() << "  node " << rejoin.node
              << " rejoins\n";
  }

  harness::RunOptions ro;
  ro.n = n;
  ro.seed = seed;
  ro.delay = harness::DelayKind::kRandom;
  ro.fault_plan = plan;

  analysis::InvariantOptions io;
  io.unique_leader = false;  // the service re-elects by design
  analysis::InvariantRegistry registry(io);
  const proto::nosod::LeaseParams lease = harness::EffectiveLeaseParams(opt);
  analysis::LeaseMonitorOptions mo;
  mo.horizon = lease.horizon;
  mo.reelection_window = harness::DefaultReelectionWindow(lease);
  mo.chained = &registry;
  analysis::LeaseMonitor monitor(mo);

  sim::RuntimeOptions rt;
  rt.observer = &monitor;
  sim::Runtime runtime(harness::BuildNetwork(ro),
                       proto::nosod::MakeLeaseEngine(lease), rt);
  const sim::RunResult result = runtime.Run();

  std::cout << "\n2) Lease timeline (one line per reign)\n";
  for (const auto& seg : monitor.timeline()) {
    std::cout << "   term " << seg.term << ": node " << seg.node << "  ["
              << seg.granted_at.ToDouble() << ", ";
    if (seg.dropped_at == sim::Time::Max()) {
      std::cout << "ran out at " << seg.last_deadline.ToDouble() << "]\n";
    } else {
      std::cout << "dropped at " << seg.dropped_at.ToDouble() << "]\n";
    }
  }

  const auto& lat = monitor.election_latency();
  const auto counter = [&result](const char* key) -> std::int64_t {
    const auto it = result.counters.find(key);
    return it == result.counters.end() ? 0 : it->second;
  };
  const double horizon_ticks =
      static_cast<double>(opt.lease.horizon.ticks());
  std::cout << "\n3) Availability summary\n"
            << "   re-elections completed: " << lat.count() << "\n"
            << "   election latency p50/p99: "
            << static_cast<double>(lat.ApproxQuantile(0.5)) /
                   sim::Time::kTicksPerUnit
            << "s / "
            << static_cast<double>(lat.ApproxQuantile(0.99)) /
                   sim::Time::kTicksPerUnit
            << "s\n"
            << "   unavailable: " << monitor.unavailable_ticks()
            << " ticks ("
            << 100.0 * static_cast<double>(monitor.unavailable_ticks()) /
                   horizon_ticks
            << "% of the service window)\n"
            << "   leases granted=" << counter("lease.granted")
            << " renewed=" << counter("lease.renewed")
            << " expired=" << counter("lease.expired")
            << " revoked=" << counter("lease.revoked")
            << " rejoins=" << counter("sim.rejoins") << "\n"
            << "   messages=" << result.total_messages
            << " events=" << result.events_processed
            << " quiesced at t=" << result.quiesce_time.ToDouble() << "\n";

  const bool ok = monitor.ok() && registry.ok();
  std::cout << "   verdict: "
            << (ok ? "OK (no invariant violations)"
                   : monitor.Summary() + " " + registry.Summary())
            << "\n";
  return ok ? 0 : 1;
}
