// Chaos harness walkthrough: seeded fault plans against the fault-
// tolerant protocol.
//
//  1. One chaos case in detail — the plan derived from the seed, the
//     injected crashes and link faults, and the surviving leader.
//  2. A sweep: many seeds, each a distinct adversarial schedule, all
//     required to elect a unique live leader.
//  3. The safety net: every registered protocol, pushed past its
//     tolerance, must still never declare two leaders.
//
//   ./chaos_demo [--n=16] [--f=2] [--seeds=50] [--seed0=1] [--loss=0.02]
//               [--threads=N] [--json=PATH]
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/chaos.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/util/flags.h"

int main(int argc, char** argv) {
  using namespace celect;
  Flags flags(argc, argv);
  auto n = static_cast<std::uint32_t>(flags.GetInt("n", 16, "network size"));
  auto f = static_cast<std::uint32_t>(
      flags.GetInt("f", 2, "fault budget (mid-run crash victims)"));
  auto seeds =
      static_cast<std::uint32_t>(flags.GetInt("seeds", 50, "sweep width"));
  auto seed0 = static_cast<std::uint64_t>(
      flags.GetInt("seed0", 1, "first seed of the sweep"));
  double loss = flags.GetDouble("loss", 0.02, "per-message loss rate");
  auto threads = static_cast<std::uint32_t>(flags.GetInt(
      "threads", 1, "sweep worker threads (0 = one per hardware thread)"));
  std::string json_path =
      flags.GetString("json", "", "write BENCH_chaos.json results here");
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }

  harness::ChaosOptions opt;
  opt.n = n;
  opt.max_crashes = f;
  opt.loss = loss;
  opt.threads = threads;

  std::cout << "1) One case in detail (seed=" << seed0 << ")\n";
  auto c = harness::RunChaosCase(proto::nosod::MakeFaultTolerant(f), seed0,
                                 opt);
  for (const auto& crash : c.plan.crashes) {
    std::cout << "   planned crash: node " << crash.node << " (";
    switch (crash.trigger) {
      case sim::CrashSpec::Trigger::kAtTime:
        std::cout << "at t=" << crash.at.ToDouble();
        break;
      case sim::CrashSpec::Trigger::kAfterSends:
        std::cout << "after " << crash.count << " sends";
        break;
      case sim::CrashSpec::Trigger::kAfterReceives:
        std::cout << "after " << crash.count << " receives";
        break;
      case sim::CrashSpec::Trigger::kOnMessageType:
        std::cout << "on first message of type " << crash.message_type;
        break;
    }
    std::cout << ")\n";
  }
  std::cout << "   " << harness::Describe(c) << "\n"
            << "   messages=" << c.result.total_messages
            << " lost=" << c.result.messages_lost
            << " timers_fired=" << c.result.timers_fired << "\n\n";

  std::cout << "2) Sweep: seeds [" << seed0 << ", " << seed0 + seeds
            << ") x (crashes<=" << f << ", loss=" << loss << ")\n";
  auto sweep = harness::SweepChaos(proto::nosod::MakeFaultTolerant(f), seed0,
                                   seeds, opt);
  std::cout << "   cases=" << sweep.cases
            << " crashes=" << sweep.crashes_injected
            << " lost=" << sweep.messages_lost
            << " timers=" << sweep.timers_fired
            << " violations=" << sweep.violations.size() << "\n";
  for (const auto& v : sweep.violations) {
    std::cout << "   VIOLATION " << harness::Describe(v) << "\n";
  }

  std::cout << "\n3) Registry safety sweep (every protocol, beyond its "
               "tolerance)\n";
  auto report = harness::SweepRegistryChaos(seed0, /*seeds_per_protocol=*/5,
                                            n, threads);
  std::cout << "   cases=" << report.cases
            << " violations=" << report.violations.size() << "\n";
  for (const auto& v : report.violations) {
    std::cout << "   VIOLATION " << v.protocol << " seed=" << v.seed << ": "
              << v.violation << "\n";
  }

  if (!json_path.empty()) {
    harness::BenchReporter reporter("chaos");
    harness::BenchRow row;
    row.protocol = "FT(f=" + std::to_string(f) + ")";
    row.n = n;
    row.seed_count = sweep.cases;
    row.messages = sweep.messages;
    row.time = sweep.time;
    row.wall_ns = sweep.wall_ns;
    row.events_per_sec =
        sweep.wall_ns > 0
            ? static_cast<double>(sweep.events_processed) * 1e9 /
                  static_cast<double>(sweep.wall_ns)
            : 0.0;
    row.extra.emplace_back("crashes",
                           static_cast<double>(sweep.crashes_injected));
    row.extra.emplace_back("lost",
                           static_cast<double>(sweep.messages_lost));
    row.extra.emplace_back("violations",
                           static_cast<double>(sweep.violations.size()));
    reporter.Add(std::move(row));
    if (!reporter.WriteFile(json_path)) return 1;
  }
  return report.violations.empty() && sweep.violations.empty() ? 0 : 1;
}
