// E19 — transport reliability cost: election wall time and datagram
// effort as the link degrades, on both transports.
//
//  * FT-sim rows: n PeerNodes over SimNet/FakeLink on the virtual
//    clock, sweeping seeded loss (duplication/reordering ride along at
//    fixed rates). Fully deterministic: messages/time columns are a
//    pure function of the grid.
//  * FT-udp rows: the same engine over real localhost UDP sockets with
//    send-side loss injection — wall-clock latency of a real datagram
//    path, skipped (with a note) where sockets cannot bind.
//
// Extra columns per row: loss rate, retransmits, suspicions, and RTT
// p50/p99 as seen by the reliability layer (Karn-filtered samples).
// Document-level histograms (rtt_us, backoff_us, window_occupancy,
// suspicion_us) aggregate the session-layer distributions over every
// run in the sweep.
//
//   ./bench_transport [--quick] [--json=PATH] [--base-port=48400]
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/net/cluster.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/util/flags.h"

namespace {

using namespace celect;

struct Accum {
  Summary messages;
  Summary time_units;
  std::uint64_t retransmits = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t datagrams = 0;
  Summary rtt_p50;
  Summary rtt_p99;
  std::uint32_t runs = 0;
  std::uint32_t failures = 0;
  obs::Histogram rtt_us;
  obs::Histogram backoff_us;
  obs::Histogram window_occupancy;
  obs::Histogram suspicion_us;

  void Fold(const net::ClusterResult& r, net::Micros unit_us) {
    ++runs;
    rtt_us.Merge(r.rtt_us);
    backoff_us.Merge(r.backoff_us);
    window_occupancy.Merge(r.window_occupancy);
    suspicion_us.Merge(r.suspicion_us);
    if (!r.agreed) {
      ++failures;
      return;
    }
    messages.Add(static_cast<double>(r.delivered));
    time_units.Add(static_cast<double>(r.elapsed_us) /
                   static_cast<double>(unit_us));
    retransmits += r.retransmits;
    suspicions += r.suspicions;
    datagrams += r.datagrams;
    rtt_p50.Add(static_cast<double>(r.rtt_p50_us));
    rtt_p99.Add(static_cast<double>(r.rtt_p99_us));
  }

  void Publish(harness::BenchReporter& reporter) const {
    reporter.MergeNamedHistogram("rtt_us", rtt_us);
    reporter.MergeNamedHistogram("backoff_us", backoff_us);
    reporter.MergeNamedHistogram("window_occupancy", window_occupancy);
    reporter.MergeNamedHistogram("suspicion_us", suspicion_us);
  }

  harness::BenchRow Row(const std::string& protocol, std::uint32_t n,
                        double loss, std::uint64_t wall_ns) const {
    harness::BenchRow row;
    row.protocol = protocol;
    row.n = n;
    row.seed_count = runs;
    row.messages = messages;
    row.time = time_units;
    row.wall_ns = wall_ns;
    row.events_per_sec =
        wall_ns > 0 ? static_cast<double>(datagrams) * 1e9 /
                          static_cast<double>(wall_ns)
                    : 0.0;
    row.extra.emplace_back("loss", loss);
    row.extra.emplace_back("retransmits", static_cast<double>(retransmits));
    row.extra.emplace_back("suspicions", static_cast<double>(suspicions));
    row.extra.emplace_back("rtt_p50_us", rtt_p50.mean());
    row.extra.emplace_back("rtt_p99_us", rtt_p99.mean());
    row.extra.emplace_back("failures", static_cast<double>(failures));
    return row;
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags peek(argc, argv);
  auto base_port = static_cast<std::uint16_t>(
      peek.GetInt("base-port", 48400, "first UDP port for the socket rows"));
  harness::BenchEnv env(argc, argv, "E19");

  const bool quick = env.quick();
  const std::vector<double> losses =
      quick ? std::vector<double>{0.0, 0.10}
            : std::vector<double>{0.0, 0.05, 0.10, 0.20};
  const std::uint32_t sim_n = quick ? 8 : 16;
  const std::uint32_t sim_seeds = quick ? 2 : 5;
  const std::uint32_t udp_n = quick ? 4 : 8;
  const std::uint32_t udp_seeds = quick ? 1 : 2;

  net::MonotonicClock wall;
  bool any_failure = false;

  std::cout << "E19: transport reliability cost (FT engine)\n\n"
            << "  sim rows: n=" << sim_n << ", " << sim_seeds
            << " seeds per loss rate\n";
  for (double loss : losses) {
    Accum acc;
    net::Micros t0 = wall.Now();
    for (std::uint32_t s = 0; s < sim_seeds; ++s) {
      net::ClusterConfig config;
      config.n = sim_n;
      config.seed = s + 1;
      config.link.loss = loss;
      config.link.duplicate = 0.02;
      config.link.reorder = 0.05;
      acc.Fold(RunSimElection(config, proto::nosod::MakeFaultTolerant(1)),
               config.unit_us);
    }
    std::uint64_t wall_ns = (wall.Now() - t0) * 1000;
    std::cout << "    loss=" << loss << " elapsed(units) mean="
              << acc.time_units.mean() << " retx=" << acc.retransmits
              << " rtt_p99_us=" << acc.rtt_p99.mean() << "\n";
    any_failure |= acc.failures > 0;
    env.reporter().Add(acc.Row("FT-sim", sim_n, loss, wall_ns));
    acc.Publish(env.reporter());
  }

  std::cout << "\n  udp rows: n=" << udp_n << ", " << udp_seeds
            << " seed(s) per loss rate, 127.0.0.1:" << base_port << "+\n";
  bool udp_ok = true;
  for (double loss : losses) {
    if (!udp_ok) break;
    Accum acc;
    net::Micros t0 = wall.Now();
    for (std::uint32_t s = 0; s < udp_seeds && udp_ok; ++s) {
      net::ClusterConfig config;
      config.n = udp_n;
      config.seed = s + 1;
      config.base_port = base_port;
      config.send_loss = loss;
      config.deadline_us = 30'000'000;
      auto r = RunUdpElection(config, proto::nosod::MakeFaultTolerant(1));
      if (!r.has_value()) {
        std::cout << "    (skipping udp rows: cannot bind sockets)\n";
        udp_ok = false;
        break;
      }
      acc.Fold(*r, config.unit_us);
    }
    if (!udp_ok || acc.runs == 0) break;
    std::uint64_t wall_ns = (wall.Now() - t0) * 1000;
    std::cout << "    loss=" << loss << " elapsed mean="
              << acc.time_units.mean() * 20.0 << " ms, rtt_p50_us="
              << acc.rtt_p50.mean() << "\n";
    any_failure |= acc.failures > 0;
    env.reporter().Add(acc.Row("FT-udp", udp_n, loss, wall_ns));
    acc.Publish(env.reporter());
  }

  if (any_failure) {
    std::cerr << "\nFAIL: an election did not reach agreement\n";
    return 1;
  }
  return env.Finish();
}
