// E7 + E9 — the no-sense-of-direction family.
//   D: O(1) time, O(N²) messages (flooding).
//   F: O(Nk) messages, O(N/k) time — the k tradeoff, log N <= k <= N.
// The F sweep is the paper's central tradeoff curve: messages rise
// linearly in k while time falls as N/k, with D as the k = N endpoint.
//
//   --threads=N   fan the grids over worker threads (results identical)
//   --json=PATH   write the BENCH_E7.json document
//   --quick       shrink the sweeps for CI smoke runs
//   --telemetry   fold latency/queue-depth histograms into the JSON
//   --trace=PATH  write a Perfetto trace of one F run (N = 64, k = 8)
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/obs/trace_export.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_f.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E7");

  harness::PrintBanner(std::cout, "E7 (protocol D)",
                       "Flooding: constant time, quadratic messages.");
  {
    // Default ceiling 4096: the ladder queue holds its event rate flat
    // where the old binary heap collapsed ~10x past N=128 (see
    // EXPERIMENTS.md E18). --nmax raises it further.
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(4096);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 32; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.enable_telemetry = env.telemetry();
      grid.push_back({"D", proto::nosod::MakeProtocolD(), o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "messages", "msgs/N^2", "time"});
    std::vector<double> ns, msgs;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      std::uint32_t n = sizes[i];
      ns.push_back(n);
      msgs.push_back(static_cast<double>(r.total_messages));
      t.AddRow({Table::Int(n), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (double(n) * n), 3),
                Table::Num(r.leader_time.ToDouble())});
      env.reporter().Add(harness::MakeBenchRow("D", n, {r}));
      env.reporter().MergeTelemetry(r.telemetry);
    }
    t.Print(std::cout);
    auto fit = FitPowerLaw(ns, msgs);
    std::cout << "\nD message growth: N^"
              << (fit.valid ? Table::Num(fit.alpha) : "(fit invalid)")
              << " (paper: 2.0)\n";
  }

  harness::PrintBanner(
      std::cout, "E9 (protocol F, k sweep at N = 512)",
      "O(Nk) messages vs O(N/k) time when all nodes wake together "
      "(Lemma 4.1). k = N reproduces D; k = log N is message optimal.");
  {
    const std::uint32_t n = env.quick() ? 128 : 512;
    std::vector<std::uint32_t> ks = {4u, 9u, 16u, 32u, 64u, 128u, 256u,
                                     512u};
    if (env.quick()) ks = {4u, 16u, 128u};
    std::vector<SweepPoint> grid;
    for (std::uint32_t k : ks) {
      RunOptions o;
      o.n = n;
      grid.push_back(
          {"F(k=" + std::to_string(k) + ")", proto::nosod::MakeProtocolF(k),
           o});
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"k", "messages", "msgs/(N*k)", "time", "time*(k/N)",
             "broadcasters"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const auto& r = results[i];
      std::uint32_t k = ks[i];
      auto b = r.counters.count("f.broadcasters")
                   ? r.counters.at("f.broadcasters")
                   : 0;
      t.AddRow({Table::Int(k), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (double(n) * k), 3),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() * k / n, 3),
                Table::Int(static_cast<std::uint64_t>(b))});
      env.reporter().Add(harness::MakeBenchRow(grid[i].protocol, n, {r}));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E9b (protocol F, N sweep at k = log N)",
      "The message-optimal point: O(N log N) messages, O(N/log N) time.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(1024);
    std::vector<SweepPoint> grid;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> points;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      std::uint32_t k = static_cast<std::uint32_t>(
          std::lround(std::log2(static_cast<double>(n))));
      RunOptions o;
      o.n = n;
      grid.push_back({"F(k=logN)", proto::nosod::MakeProtocolF(k), o});
      points.emplace_back(n, k);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "k", "messages", "msgs/(N*logN)", "time",
             "time/(N/logN)"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& r = results[i];
      auto [n, k] = points[i];
      double log_n = std::log2(static_cast<double>(n));
      t.AddRow({Table::Int(n), Table::Int(k), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (n * log_n)),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / (n / log_n), 3)});
      env.reporter().Add(harness::MakeBenchRow("F(k=logN)", n, {r}));
    }
    t.Print(std::cout);
  }

  if (!env.trace_path().empty()) {
    RunOptions o;
    o.n = 64;
    harness::TracedRun traced =
        harness::RunElectionTraced(proto::nosod::MakeProtocolF(8), o);
    obs::TraceExportOptions eo;
    eo.process_name = "protocol F n=64 k=8 seed=1";
    if (!obs::WriteChromeTrace(env.trace_path(), traced.records, eo)) {
      return 1;
    }
    std::cout << "\nwrote " << env.trace_path() << " ("
              << traced.records.size() << " records)\n";
  }
  return env.Finish();
}
