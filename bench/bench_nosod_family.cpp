// E7 + E9 — the no-sense-of-direction family.
//   D: O(1) time, O(N²) messages (flooding).
//   F: O(Nk) messages, O(N/k) time — the k tradeoff, log N <= k <= N.
// The F sweep is the paper's central tradeoff curve: messages rise
// linearly in k while time falls as N/k, with D as the k = N endpoint.
#include <cmath>
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_f.h"
#include "celect/util/stats.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(std::cout, "E7 (protocol D)",
                       "Flooding: constant time, quadratic messages.");
  {
    Table t({"N", "messages", "msgs/N^2", "time"});
    std::vector<double> ns, msgs;
    for (std::uint32_t n = 32; n <= 1024; n *= 2) {
      RunOptions o;
      o.n = n;
      auto r = harness::RunElection(proto::nosod::MakeProtocolD(), o);
      ns.push_back(n);
      msgs.push_back(static_cast<double>(r.total_messages));
      t.AddRow({Table::Int(n), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (double(n) * n), 3),
                Table::Num(r.leader_time.ToDouble())});
    }
    t.Print(std::cout);
    std::cout << "\nD message growth: N^"
              << Table::Num(FitPowerLaw(ns, msgs).alpha)
              << " (paper: 2.0)\n";
  }

  harness::PrintBanner(
      std::cout, "E9 (protocol F, k sweep at N = 512)",
      "O(Nk) messages vs O(N/k) time when all nodes wake together "
      "(Lemma 4.1). k = N reproduces D; k = log N is message optimal.");
  {
    const std::uint32_t n = 512;
    Table t({"k", "messages", "msgs/(N*k)", "time", "time*(k/N)",
             "broadcasters"});
    for (std::uint32_t k : {4u, 9u, 16u, 32u, 64u, 128u, 256u, 512u}) {
      RunOptions o;
      o.n = n;
      auto r = harness::RunElection(proto::nosod::MakeProtocolF(k), o);
      auto b = r.counters.count("f.broadcasters")
                   ? r.counters.at("f.broadcasters")
                   : 0;
      t.AddRow({Table::Int(k), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (double(n) * k), 3),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() * k / n, 3),
                Table::Int(static_cast<std::uint64_t>(b))});
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E9b (protocol F, N sweep at k = log N)",
      "The message-optimal point: O(N log N) messages, O(N/log N) time.");
  {
    Table t({"N", "k", "messages", "msgs/(N*logN)", "time",
             "time/(N/logN)"});
    for (std::uint32_t n = 64; n <= 1024; n *= 2) {
      std::uint32_t k = static_cast<std::uint32_t>(
          std::lround(std::log2(static_cast<double>(n))));
      RunOptions o;
      o.n = n;
      auto r = harness::RunElection(proto::nosod::MakeProtocolF(k), o);
      double log_n = std::log2(static_cast<double>(n));
      t.AddRow({Table::Int(n), Table::Int(k), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (n * log_n)),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / (n / log_n), 3)});
    }
    t.Print(std::cout);
  }
  return 0;
}
