// E17 — the continuous election service under churn: availability,
// election-latency tails, and message amplification while nodes cycle
// crash → rejoin and leases force back-to-back re-elections.
//
//   --threads=N   fan the seed sweeps over worker threads (results
//                 identical for any thread count)
//   --json=PATH   write the BENCH_churn.json document (schema 2; the
//                 histograms section carries election_latency)
//   --quick       shrink horizons and seed counts for CI smoke runs
//   --telemetry   also fold the runtime's latency/queue/capture
//                 histograms into the JSON
#include <iostream>
#include <string>

#include "celect/harness/bench_json.h"
#include "celect/harness/churn.h"
#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/sim/time.h"

namespace {

// One aggregated row per churn configuration.
celect::harness::BenchRow ChurnRow(const std::string& protocol,
                                   std::uint32_t n,
                                   const celect::harness::ChurnSweepResult& s) {
  celect::harness::BenchRow row;
  row.protocol = protocol;
  row.n = n;
  row.seed_count = s.cases;
  row.messages = s.messages;
  row.time = s.time;
  row.wall_ns = s.wall_ns;
  row.events_per_sec =
      s.wall_ns > 0 ? static_cast<double>(s.events_processed) * 1e9 /
                          static_cast<double>(s.wall_ns)
                    : 0.0;
  row.extra.emplace_back("crashes", static_cast<double>(s.crashes_injected));
  row.extra.emplace_back("rejoins", static_cast<double>(s.rejoins));
  row.extra.emplace_back("elections",
                         static_cast<double>(s.elections_completed));
  row.extra.emplace_back("unavailable_ticks",
                         static_cast<double>(s.unavailable_ticks));
  row.extra.emplace_back("granted", static_cast<double>(s.leases_granted));
  row.extra.emplace_back("renewed", static_cast<double>(s.leases_renewed));
  row.extra.emplace_back("expired", static_cast<double>(s.leases_expired));
  row.extra.emplace_back("revoked", static_cast<double>(s.leases_revoked));
  row.extra.emplace_back("violations",
                         static_cast<double>(s.violations.size()));
  return row;
}

double PerUnit(std::uint64_t ticks) {
  return static_cast<double>(ticks) /
         static_cast<double>(celect::sim::Time::kTicksPerUnit);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace celect;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "churn");
  int violations_seen = 0;

  harness::PrintBanner(
      std::cout, "C1 (churn intensity sweep at N = 64)",
      "A growing subset of nodes cycles crash/rejoin while the lease "
      "layer re-elects around them. Availability and the election-"
      "latency tail degrade gracefully; safety (at most one unexpired "
      "lease) never does.");
  {
    const std::uint32_t n = 64;
    const std::uint32_t seeds = env.quick() ? 2 : 5;
    const std::int64_t horizon_units = env.quick() ? 60 : 300;
    Table t({"churn", "cases", "crashes", "rejoins", "elections",
             "p99 latency", "unavailable", "avg msgs", "violations"});
    for (std::uint32_t churn : {2u, 4u, 8u}) {
      harness::ChurnOptions opt;
      opt.n = n;
      opt.churn_nodes = churn;
      opt.loss = 0.01;
      opt.lease.horizon = sim::Time::FromUnits(horizon_units);
      opt.lease.max_renewals = 3;
      opt.threads = env.threads();
      opt.enable_telemetry = env.telemetry();
      const auto sweep = harness::SweepChurn(8100 + churn, seeds, opt);
      violations_seen += static_cast<int>(sweep.violations.size());
      const double window =
          static_cast<double>(seeds) *
          static_cast<double>(opt.lease.horizon.ticks());
      t.AddRow(
          {Table::Int(churn), Table::Int(sweep.cases),
           Table::Int(sweep.crashes_injected), Table::Int(sweep.rejoins),
           Table::Int(sweep.elections_completed),
           Table::Num(PerUnit(sweep.telemetry.election_latency.ApproxQuantile(
               0.99))) + "s",
           Table::Num(100.0 * static_cast<double>(sweep.unavailable_ticks) /
                          window,
                      1) +
               "%",
           Table::Int(static_cast<std::uint64_t>(sweep.messages.mean())),
           Table::Int(sweep.violations.size())});
      env.reporter().Add(
          ChurnRow("lease/churn(" + std::to_string(churn) + ")", n, sweep));
      env.reporter().MergeTelemetry(sweep.telemetry);
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "C2 (re-election storm: leases expire by design)",
      "max_renewals = 1 forces a step-down after one renewal, so the "
      "service holds elections back to back for the whole window — "
      "thousands of successive terms at N = 64 in the full run.");
  {
    const std::uint32_t n = 64;
    const std::int64_t horizon_units = env.quick() ? 150 : 20000;
    harness::ChurnOptions opt;
    opt.n = n;
    opt.churn_nodes = 8;
    opt.lease.horizon = sim::Time::FromUnits(horizon_units);
    opt.lease.max_renewals = 1;
    opt.threads = env.threads();
    opt.enable_telemetry = env.telemetry();
    const auto sweep = harness::SweepChurn(1, 1, opt);
    violations_seen += static_cast<int>(sweep.violations.size());
    const auto& lat = sweep.telemetry.election_latency;
    std::cout << "elections completed: " << sweep.elections_completed
              << "  (granted=" << sweep.leases_granted
              << " renewed=" << sweep.leases_renewed
              << " revoked=" << sweep.leases_revoked << ")\n"
              << "election latency p50/p99: "
              << Table::Num(PerUnit(lat.ApproxQuantile(0.5))) << "s / "
              << Table::Num(PerUnit(lat.ApproxQuantile(0.99))) << "s\n"
              << "unavailable: "
              << Table::Num(100.0 *
                                static_cast<double>(sweep.unavailable_ticks) /
                                static_cast<double>(opt.lease.horizon.ticks()),
                            1)
              << "% of the service window\n"
              << "violations: " << sweep.violations.size() << "\n";
    for (const auto& v : sweep.violations) {
      std::cout << "  " << harness::Describe(v) << "\n";
    }
    env.reporter().Add(ChurnRow("lease/storm", n, sweep));
    env.reporter().MergeTelemetry(sweep.telemetry);
  }

  harness::PrintBanner(
      std::cout, "C3 (message amplification vs a one-shot election)",
      "What the continuous service pays per election relative to one "
      "isolated FT election at the same N: lease upkeep (grant/renew/"
      "ack rounds) plus re-election traffic under churn.");
  {
    const std::uint32_t n = env.quick() ? 32 : 64;
    harness::ChurnOptions opt;
    opt.n = n;
    opt.churn_nodes = 4;
    opt.lease.horizon = sim::Time::FromUnits(env.quick() ? 60 : 200);
    opt.lease.max_renewals = 2;
    opt.threads = env.threads();
    const auto sweep = harness::SweepChurn(4242, env.quick() ? 2 : 4, opt);
    violations_seen += static_cast<int>(sweep.violations.size());

    harness::RunOptions ro;
    ro.n = n;
    ro.seed = 4242;
    const auto lease = harness::EffectiveLeaseParams(opt);
    const sim::RunResult one_shot =
        harness::RunElection(proto::nosod::MakeFaultTolerant(lease.f), ro);

    const double per_election =
        sweep.elections_completed > 0
            ? sweep.messages.mean() * sweep.cases /
                  static_cast<double>(sweep.elections_completed)
            : 0.0;
    const double baseline = static_cast<double>(one_shot.total_messages);
    Table t({"config", "messages", "elections", "msgs/election"});
    t.AddRow({"one-shot FT(f=" + std::to_string(lease.f) + ")",
              Table::Int(one_shot.total_messages), Table::Int(1),
              Table::Num(baseline)});
    t.AddRow({"lease service", Table::Int(static_cast<std::uint64_t>(
                                   sweep.messages.mean() * sweep.cases)),
              Table::Int(sweep.elections_completed),
              Table::Num(per_election)});
    t.Print(std::cout);
    std::cout << "amplification: x"
              << Table::Num(baseline > 0 ? per_election / baseline : 0.0, 2)
              << " per election (lease upkeep + churn-time retries)\n";
    auto row = ChurnRow("lease/amplification", n, sweep);
    row.extra.emplace_back("one_shot_messages", baseline);
    env.reporter().Add(std::move(row));
    env.reporter().MergeTelemetry(sweep.telemetry);
  }

  if (violations_seen > 0) {
    std::cout << "\nWARNING: " << violations_seen
              << " churn case(s) reported invariant violations\n";
  }
  const int rc = env.Finish();
  return rc != 0 ? rc : (violations_seen > 0 ? 1 : 0);
}
