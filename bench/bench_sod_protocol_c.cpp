// E6 — protocol C, the paper's headline sense-of-direction result:
// O(N) messages AND O(log N) time simultaneously. Sweeps N and compares
// against LMW86 (message-optimal, slow) and B (fast, message-heavy):
// C should track LMW86's message line and B's time line.
//
//   --threads=N   fan the grid over worker threads (results identical)
//   --json=PATH   write the BENCH_E6.json document
//   --quick       shrink the sweep for CI smoke runs
//   --telemetry   fold latency/queue-depth histograms into the JSON
//   --trace=PATH  write a Perfetto trace of one C run (N = 64)
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/obs/trace_export.h"
#include "celect/proto/sod/lmw86.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/proto/sod/protocol_c.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E6");

  harness::PrintBanner(
      std::cout, "E6 (protocol C)",
      "C = stride walk (candidates -> N/logN) + doubling: O(N) messages "
      "and O(log N) time. Columns compare C, LMW86 and B per N.");

  const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(4096);
  std::vector<SweepPoint> grid;
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t n = 32; n <= n_max; n *= 2) {
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    o.enable_telemetry = env.telemetry();
    grid.push_back({"C", proto::sod::MakeProtocolC(), o});
    grid.push_back({"lmw86", proto::sod::MakeLmw86(), o});
    grid.push_back({"B", proto::sod::MakeProtocolB(), o});
    sizes.push_back(n);
  }
  auto results = harness::RunSweep(grid, env.sweep());

  Table t({"N", "C msgs", "C msgs/N", "C time", "C time/logN",
           "LMW86 msgs", "LMW86 time", "B msgs", "B time"});
  std::vector<double> ns, c_msgs, c_times;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::uint32_t n = sizes[i];
    const auto& rc = results[3 * i];
    const auto& rl = results[3 * i + 1];
    const auto& rb = results[3 * i + 2];
    double log_n = std::log2(static_cast<double>(n));
    ns.push_back(n);
    c_msgs.push_back(static_cast<double>(rc.total_messages));
    c_times.push_back(rc.leader_time.ToDouble());
    t.AddRow({Table::Int(n), Table::Int(rc.total_messages),
              Table::Num(rc.total_messages / double(n)),
              Table::Num(rc.leader_time.ToDouble()),
              Table::Num(rc.leader_time.ToDouble() / log_n),
              Table::Int(rl.total_messages),
              Table::Num(rl.leader_time.ToDouble()),
              Table::Int(rb.total_messages),
              Table::Num(rb.leader_time.ToDouble())});
    env.reporter().Add(harness::MakeBenchRow("C", n, {rc}));
    env.reporter().Add(harness::MakeBenchRow("lmw86", n, {rl}));
    env.reporter().Add(harness::MakeBenchRow("B", n, {rb}));
    env.reporter().MergeTelemetry(rc.telemetry);
    env.reporter().MergeTelemetry(rl.telemetry);
    env.reporter().MergeTelemetry(rb.telemetry);
  }
  t.Print(std::cout);

  auto msg_fit = FitPowerLaw(ns, c_msgs);
  std::cout << "\nC message growth: N^"
            << (msg_fit.valid ? Table::Num(msg_fit.alpha) : "(fit invalid)")
            << " (paper: 1.0)\n";
  std::cout << "C time per doubling of N: "
            << Table::Num(FitLogSlope(ns, c_times))
            << " units (bounded slope = logarithmic time)\n";

  harness::PrintBanner(
      std::cout, "E6b (protocol C, adversarial wakeups)",
      "C's bounds hold regardless of wakeup pattern: staggered chain and "
      "single-base runs at N = 1024.");
  const std::uint32_t n_adv = env.quick() ? 128 : 1024;
  std::vector<SweepPoint> grid2;
  const std::vector<std::pair<harness::WakeupKind, const char*>> wakeups = {
      {harness::WakeupKind::kAllAtZero, "all-at-zero"},
      {harness::WakeupKind::kStaggeredChain, "staggered 0.9"},
      {harness::WakeupKind::kSingle, "single"}};
  for (const auto& [wakeup, name] : wakeups) {
    RunOptions o;
    o.n = n_adv;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    o.wakeup = wakeup;
    o.stagger_spacing = 0.9;
    grid2.push_back({std::string("C/") + name, proto::sod::MakeProtocolC(),
                     o});
  }
  auto results2 = harness::RunSweep(grid2, env.sweep());
  Table t2({"wakeup", "messages", "time"});
  for (std::size_t i = 0; i < wakeups.size(); ++i) {
    const auto& r = results2[i];
    t2.AddRow({wakeups[i].second, Table::Int(r.total_messages),
               Table::Num(r.leader_time.ToDouble())});
    env.reporter().Add(
        harness::MakeBenchRow(grid2[i].protocol, n_adv, {r}));
  }
  t2.Print(std::cout);

  if (!env.trace_path().empty()) {
    RunOptions o;
    o.n = 64;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    harness::TracedRun traced =
        harness::RunElectionTraced(proto::sod::MakeProtocolC(), o);
    obs::TraceExportOptions eo;
    eo.process_name = "protocol C n=64 seed=1";
    if (!obs::WriteChromeTrace(env.trace_path(), traced.records, eo)) {
      return 1;
    }
    std::cout << "\nwrote " << env.trace_path() << " ("
              << traced.records.size() << " records)\n";
  }
  return env.Finish();
}
