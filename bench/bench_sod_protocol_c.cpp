// E6 — protocol C, the paper's headline sense-of-direction result:
// O(N) messages AND O(log N) time simultaneously. Sweeps N and compares
// against LMW86 (message-optimal, slow) and B (fast, message-heavy):
// C should track LMW86's message line and B's time line.
#include <cmath>
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/sod/lmw86.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/proto/sod/protocol_c.h"
#include "celect/util/stats.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E6 (protocol C)",
      "C = stride walk (candidates -> N/logN) + doubling: O(N) messages "
      "and O(log N) time. Columns compare C, LMW86 and B per N.");

  Table t({"N", "C msgs", "C msgs/N", "C time", "C time/logN",
           "LMW86 msgs", "LMW86 time", "B msgs", "B time"});
  std::vector<double> ns, c_msgs, c_times;
  for (std::uint32_t n = 32; n <= 4096; n *= 2) {
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    auto rc = harness::RunElection(proto::sod::MakeProtocolC(), o);
    auto rl = harness::RunElection(proto::sod::MakeLmw86(), o);
    auto rb = harness::RunElection(proto::sod::MakeProtocolB(), o);
    double log_n = std::log2(static_cast<double>(n));
    ns.push_back(n);
    c_msgs.push_back(static_cast<double>(rc.total_messages));
    c_times.push_back(rc.leader_time.ToDouble());
    t.AddRow({Table::Int(n), Table::Int(rc.total_messages),
              Table::Num(rc.total_messages / double(n)),
              Table::Num(rc.leader_time.ToDouble()),
              Table::Num(rc.leader_time.ToDouble() / log_n),
              Table::Int(rl.total_messages),
              Table::Num(rl.leader_time.ToDouble()),
              Table::Int(rb.total_messages),
              Table::Num(rb.leader_time.ToDouble())});
  }
  t.Print(std::cout);

  auto msg_fit = FitPowerLaw(ns, c_msgs);
  std::cout << "\nC message growth: N^" << Table::Num(msg_fit.alpha)
            << " (paper: 1.0)\n";
  std::cout << "C time per doubling of N: "
            << Table::Num(FitLogSlope(ns, c_times))
            << " units (bounded slope = logarithmic time)\n";

  harness::PrintBanner(
      std::cout, "E6b (protocol C, adversarial wakeups)",
      "C's bounds hold regardless of wakeup pattern: staggered chain and "
      "single-base runs at N = 1024.");
  Table t2({"wakeup", "messages", "time"});
  for (auto wakeup : {harness::WakeupKind::kAllAtZero,
                      harness::WakeupKind::kStaggeredChain,
                      harness::WakeupKind::kSingle}) {
    RunOptions o;
    o.n = 1024;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    o.wakeup = wakeup;
    o.stagger_spacing = 0.9;
    auto r = harness::RunElection(proto::sod::MakeProtocolC(), o);
    const char* name = wakeup == harness::WakeupKind::kAllAtZero
                           ? "all-at-zero"
                           : (wakeup == harness::WakeupKind::kSingle
                                  ? "single"
                                  : "staggered 0.9");
    t2.AddRow({name, Table::Int(r.total_messages),
               Table::Num(r.leader_time.ToDouble())});
  }
  t2.Print(std::cout);
  return 0;
}
