// E3 + E4 — protocols A and A′ (paper §3).
//   A:  O(N + N²/k²) messages; Θ(N) time under the staggered wakeup chain.
//   A′: awaken wave ⇒ O(k + N/k) time, O(√N) at k = √N, still O(N) msgs.
// Three series: (1) message sweep over k showing the N²/k² term,
// (2) the staggered pathology on A, (3) the same pathology on A′.
//
//   --threads=N   fan the grids over worker threads (results identical)
//   --json=PATH   write the BENCH_E3.json document
//   --quick       shrink the sweeps for CI smoke runs
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/sod/protocol_a.h"
#include "celect/proto/sod/protocol_a_prime.h"
#include "celect/sim/runtime.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;
  using proto::sod::MakeProtocolA;
  using proto::sod::MakeProtocolAPrime;
  using proto::sod::ProtocolAParams;

  harness::BenchEnv env(argc, argv, "E3");

  harness::PrintBanner(
      std::cout, "E3a (protocol A, message sweep over k)",
      "Messages follow O(N + N^2/k^2): small k pays a quadratic elect "
      "round, k >= sqrt(N) is linear. N = 1024.");
  {
    const std::uint32_t n = env.quick() ? 256 : 1024;
    std::vector<std::uint32_t> ks = {4u, 8u, 16u, 32u, 64u, 128u, 256u,
                                     512u};
    if (env.quick()) ks = {4u, 16u, 64u};
    std::vector<SweepPoint> grid;
    for (std::uint32_t k : ks) {
      ProtocolAParams p;
      p.k = k;
      RunOptions o;
      o.n = n;
      o.mapper = harness::MapperKind::kSenseOfDirection;
      grid.push_back({"A(k=" + std::to_string(k) + ")", MakeProtocolA(p), o});
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"k", "messages", "msgs/N", "N^2/k^2 term", "time"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const auto& r = results[i];
      double quad = static_cast<double>(n) * n / (double(ks[i]) * ks[i]);
      t.AddRow({Table::Int(ks[i]), Table::Int(r.total_messages),
                Table::Num(r.total_messages / double(n)),
                Table::Num(quad, 0),
                Table::Num(r.leader_time.ToDouble())});
      env.reporter().Add(harness::MakeBenchRow(grid[i].protocol, n, {r}));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E3c (protocol A, plantation wakeup: worst-case elect "
                 "round)",
      "Only the nodes at ring positions 0, k+1, 2(k+1), ... wake: each "
      "candidate's segment i[1..k] is entirely passive, so every one of "
      "the ~N/k candidates survives phase one and the strided elect round "
      "costs Θ(N²/k²) messages — the term the k ≥ √N choice suppresses. "
      "N = 1024.");
  {
    const std::uint32_t n = env.quick() ? 256 : 1024;
    std::vector<std::uint32_t> ks = {4u, 8u, 16u, 32u, 64u, 128u};
    if (env.quick()) ks = {4u, 16u, 64u};
    // Custom NetworkConfig (WakeEveryKth) sits outside RunOptions, so this
    // series drives ParallelFor directly instead of RunSweep.
    std::vector<sim::RunResult> results(ks.size());
    harness::ParallelFor(ks.size(), env.threads(), [&](std::size_t i) {
      ProtocolAParams p;
      p.k = ks[i];
      sim::NetworkConfig config;
      config.n = n;
      config.mapper = sim::MakeSodMapper(n);
      config.delays = sim::MakeUnitDelay();
      config.wakeup = sim::WakeEveryKth(n, ks[i] + 1);
      sim::Runtime rt(std::move(config), MakeProtocolA(p));
      results[i] = rt.Run();
    });
    harness::Table t({"k", "phase2 candidates", "messages", "msgs/N",
                      "N^2/k^2 term"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const auto& r = results[i];
      double quad = static_cast<double>(n) * n / (double(ks[i]) * ks[i]);
      std::int64_t cands =
          r.counters.count(proto::sod::kCounterPhase2)
              ? r.counters.at(proto::sod::kCounterPhase2)
              : 0;
      t.AddRow({Table::Int(ks[i]),
                Table::Int(static_cast<std::uint64_t>(cands)),
                Table::Int(r.total_messages),
                Table::Num(r.total_messages / double(n)),
                Table::Num(quad, 0)});
      env.reporter().Add(harness::MakeBenchRow(
          "A/plantation(k=" + std::to_string(ks[i]) + ")", n, {r}));
    }
    t.Print(std::cout);
    std::cout << "\n(messages track N + N^2/k^2: the quadratic term "
                 "dominates for k << sqrt(N) = 32)\n";
  }

  const std::uint32_t chain_max = env.quick() ? 256 : env.EffectiveNMax(1024);
  std::vector<SweepPoint> chain_grid;
  std::vector<std::uint32_t> chain_sizes;
  for (std::uint32_t n = 64; n <= chain_max; n *= 2) {
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    o.wakeup = harness::WakeupKind::kStaggeredChain;
    o.stagger_spacing = 0.9;
    chain_grid.push_back({"A/chain", MakeProtocolA({}), o});
    chain_grid.push_back({"A'/chain", MakeProtocolAPrime(), o});
    chain_sizes.push_back(n);
  }
  auto chain_results = harness::RunSweep(chain_grid, env.sweep());

  harness::PrintBanner(
      std::cout, "E3b (protocol A, staggered wakeup chain)",
      "Each node wakes 0.9 units after its predecessor: only the last "
      "node survives, so election time is Θ(N).");
  std::vector<double> ns, a_times;
  {
    Table t({"N", "time", "time/N", "messages"});
    for (std::size_t i = 0; i < chain_sizes.size(); ++i) {
      std::uint32_t n = chain_sizes[i];
      const auto& r = chain_results[2 * i];
      ns.push_back(n);
      a_times.push_back(r.leader_time.ToDouble());
      t.AddRow({Table::Int(n), Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / n, 3),
                Table::Int(r.total_messages)});
      env.reporter().Add(harness::MakeBenchRow("A/chain", n, {r}));
    }
    t.Print(std::cout);
    auto fit = FitPowerLaw(ns, a_times);
    std::cout << "\nA time growth under the chain: N^"
              << (fit.valid ? Table::Num(fit.alpha) : "(fit invalid)")
              << " (paper: linear)\n";
  }

  harness::PrintBanner(
      std::cout, "E4 (protocol A', same chain)",
      "The awaken wave caps time at O(k + N/k) = O(sqrt N); messages stay "
      "O(N).");
  {
    Table t({"N", "time", "time/sqrt(N)", "messages", "msgs/N"});
    std::vector<double> ap_times;
    for (std::size_t i = 0; i < chain_sizes.size(); ++i) {
      std::uint32_t n = chain_sizes[i];
      const auto& r = chain_results[2 * i + 1];
      double sq = std::sqrt(static_cast<double>(n));
      ap_times.push_back(r.leader_time.ToDouble());
      t.AddRow({Table::Int(n), Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / sq),
                Table::Int(r.total_messages),
                Table::Num(r.total_messages / double(n))});
      env.reporter().Add(harness::MakeBenchRow("A'/chain", n, {r}));
    }
    t.Print(std::cout);
    auto fit = FitPowerLaw(ns, ap_times);
    std::cout << "\nA' time growth under the chain: N^"
              << (fit.valid ? Table::Num(fit.alpha) : "(fit invalid)")
              << " (paper: 0.5 — the sqrt-N bound)\n";
  }
  return env.Finish();
}
