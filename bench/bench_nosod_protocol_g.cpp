// E10 — protocol G, the headline no-SoD result: O(Nk) messages and
// O(N/k) time *unconditionally*, via the two wakeup-ordering phases.
// Series: (1) F vs G under the staggered wakeup adversary (F degrades,
// G does not), (2) G's k tradeoff, (3) G's N sweep at the
// message-optimal k = log N, the point matching the §5 lower bound.
#include <cmath>
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_f.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/util/stats.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;
  using proto::nosod::MakeProtocolF;
  using proto::nosod::MakeProtocolG;
  using proto::nosod::MessageOptimalK;

  harness::PrintBanner(
      std::cout, "E10a (F vs G under staggered wakeups)",
      "Base nodes wake 0.9 units apart. F's Lemma 4.1 precondition "
      "fails and its time drifts toward Θ(N); G's first-phase ordering "
      "caps it at O(N/k). k = 16.");
  {
    Table t({"N", "F time", "G time", "F msgs", "G msgs"});
    for (std::uint32_t n = 64; n <= 1024; n *= 2) {
      RunOptions o;
      o.n = n;
      o.wakeup = harness::WakeupKind::kStaggeredChain;
      o.stagger_spacing = 0.9;
      auto rf = harness::RunElection(MakeProtocolF(16), o);
      auto rg = harness::RunElection(MakeProtocolG(16), o);
      t.AddRow({Table::Int(n), Table::Num(rf.leader_time.ToDouble()),
                Table::Num(rg.leader_time.ToDouble()),
                Table::Int(rf.total_messages),
                Table::Int(rg.total_messages)});
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E10b (protocol G, k sweep at N = 512)",
      "O(Nk) messages vs O(N/k) time, wakeups simultaneous.");
  {
    const std::uint32_t n = 512;
    Table t({"k", "messages", "msgs/(N*k)", "time", "time*(k/N)"});
    for (std::uint32_t k : {4u, 9u, 16u, 32u, 64u, 128u, 256u}) {
      RunOptions o;
      o.n = n;
      auto r = harness::RunElection(MakeProtocolG(k), o);
      t.AddRow({Table::Int(k), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (double(n) * k), 3),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() * k / n, 3)});
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E10c (protocol G at k = log N)",
      "The message-optimal point: O(N log N) messages and O(N/log N) "
      "time — tight against Theorem 5.1's Ω(N/log N).");
  {
    Table t({"N", "k", "messages", "msgs/(N*logN)", "time",
             "time/(N/logN)"});
    std::vector<double> ns, times;
    for (std::uint32_t n = 64; n <= 2048; n *= 2) {
      std::uint32_t k = MessageOptimalK(n);
      RunOptions o;
      o.n = n;
      auto r = harness::RunElection(MakeProtocolG(k), o);
      double log_n = std::log2(static_cast<double>(n));
      ns.push_back(n);
      times.push_back(r.leader_time.ToDouble());
      t.AddRow({Table::Int(n), Table::Int(k), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (n * log_n)),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / (n / log_n), 3)});
    }
    t.Print(std::cout);
    std::cout << "\nG time growth at k=logN: N^"
              << Table::Num(FitPowerLaw(ns, times).alpha)
              << " (paper: ~1 up to the log factor)\n";
  }
  return 0;
}
