// E10 — protocol G, the headline no-SoD result: O(Nk) messages and
// O(N/k) time *unconditionally*, via the two wakeup-ordering phases.
// Series: (1) F vs G under the staggered wakeup adversary (F degrades,
// G does not), (2) G's k tradeoff, (3) G's N sweep at the
// message-optimal k = log N, the point matching the §5 lower bound.
//
//   --threads=N   fan the grids over worker threads (results identical)
//   --json=PATH   write the BENCH_E10.json document
//   --quick       shrink the sweeps for CI smoke runs
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_f.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;
  using proto::nosod::MakeProtocolF;
  using proto::nosod::MakeProtocolG;
  using proto::nosod::MessageOptimalK;

  harness::BenchEnv env(argc, argv, "E10");

  harness::PrintBanner(
      std::cout, "E10a (F vs G under staggered wakeups)",
      "Base nodes wake 0.9 units apart. F's Lemma 4.1 precondition "
      "fails and its time drifts toward Θ(N); G's first-phase ordering "
      "caps it at O(N/k). k = 16.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(1024);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.wakeup = harness::WakeupKind::kStaggeredChain;
      o.stagger_spacing = 0.9;
      grid.push_back({"F/chain", MakeProtocolF(16), o});
      grid.push_back({"G/chain", MakeProtocolG(16), o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "F time", "G time", "F msgs", "G msgs"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& rf = results[2 * i];
      const auto& rg = results[2 * i + 1];
      t.AddRow({Table::Int(sizes[i]), Table::Num(rf.leader_time.ToDouble()),
                Table::Num(rg.leader_time.ToDouble()),
                Table::Int(rf.total_messages),
                Table::Int(rg.total_messages)});
      env.reporter().Add(harness::MakeBenchRow("F/chain", sizes[i], {rf}));
      env.reporter().Add(harness::MakeBenchRow("G/chain", sizes[i], {rg}));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E10b (protocol G, k sweep at N = 512)",
      "O(Nk) messages vs O(N/k) time, wakeups simultaneous.");
  {
    const std::uint32_t n = env.quick() ? 128 : 512;
    std::vector<std::uint32_t> ks = {4u, 9u, 16u, 32u, 64u, 128u, 256u};
    if (env.quick()) ks = {4u, 16u, 64u};
    std::vector<SweepPoint> grid;
    for (std::uint32_t k : ks) {
      RunOptions o;
      o.n = n;
      grid.push_back({"G(k=" + std::to_string(k) + ")", MakeProtocolG(k),
                      o});
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"k", "messages", "msgs/(N*k)", "time", "time*(k/N)"});
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const auto& r = results[i];
      t.AddRow({Table::Int(ks[i]), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (double(n) * ks[i]), 3),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() * ks[i] / n, 3)});
      env.reporter().Add(harness::MakeBenchRow(grid[i].protocol, n, {r}));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E10c (protocol G at k = log N)",
      "The message-optimal point: O(N log N) messages and O(N/log N) "
      "time — tight against Theorem 5.1's Ω(N/log N).");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(2048);
    std::vector<SweepPoint> grid;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> points;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      std::uint32_t k = MessageOptimalK(n);
      RunOptions o;
      o.n = n;
      grid.push_back({"G(k=logN)", MakeProtocolG(k), o});
      points.emplace_back(n, k);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "k", "messages", "msgs/(N*logN)", "time",
             "time/(N/logN)"});
    std::vector<double> ns, times;
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& r = results[i];
      auto [n, k] = points[i];
      double log_n = std::log2(static_cast<double>(n));
      ns.push_back(n);
      times.push_back(r.leader_time.ToDouble());
      t.AddRow({Table::Int(n), Table::Int(k), Table::Int(r.total_messages),
                Table::Num(r.total_messages / (n * log_n)),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / (n / log_n), 3)});
      env.reporter().Add(harness::MakeBenchRow("G(k=logN)", n, {r}));
    }
    t.Print(std::cout);
    auto fit = FitPowerLaw(ns, times);
    std::cout << "\nG time growth at k=logN: N^"
              << (fit.valid ? Table::Num(fit.alpha) : "(fit invalid)")
              << " (paper: ~1 up to the log factor)\n";
  }
  return env.Finish();
}
