// E13 — the synchrony gap (paper §5/§6). Synchronous complete networks
// elect in Θ(log N) rounds at O(N log N) messages (AG85); the paper
// proves message-optimal *asynchronous* protocols need Ω(N/log N) time
// — a loss factor of N/(log N)². We measure both sides.
#include <cmath>
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/ag85_sync.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/sim/network.h"
#include "celect/sim/sync_runtime.h"

int main() {
  using namespace celect;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E13 (synchronous vs asynchronous, message-optimal)",
      "sync = AG85 doubling rounds; async = protocol G at k = log N "
      "under worst-case delays. gap = async_time / sync_rounds; theory "
      "predicts it grows like N/(log N)^2.");

  Table t({"N", "sync rounds", "sync msgs", "async time", "async msgs",
           "gap", "N/(logN)^2"});
  for (std::uint32_t n = 64; n <= 1024; n *= 2) {
    sim::SyncRuntime sync_rt(n, sim::IdentitiesAscending(n),
                             sim::MakeRandomMapper(n, n),
                             proto::nosod::MakeAg85Sync());
    auto sync = sync_rt.Run();

    harness::RunOptions o;
    o.n = n;
    auto async = harness::RunElection(
        proto::nosod::MakeProtocolG(proto::nosod::MessageOptimalK(n)), o);

    double log_n = std::log2(static_cast<double>(n));
    double gap = async.leader_time.ToDouble() / sync.rounds;
    t.AddRow({Table::Int(n), Table::Int(sync.rounds),
              Table::Int(sync.total_messages),
              Table::Num(async.leader_time.ToDouble()),
              Table::Int(async.total_messages), Table::Num(gap),
              Table::Num(n / (log_n * log_n))});
  }
  t.Print(std::cout);
  std::cout << "\nThe gap column should track the N/(logN)^2 column's "
               "growth (constant factors differ).\n";
  return 0;
}
