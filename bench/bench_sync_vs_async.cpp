// E13 — the synchrony gap (paper §5/§6). Synchronous complete networks
// elect in Θ(log N) rounds at O(N log N) messages (AG85); the paper
// proves message-optimal *asynchronous* protocols need Ω(N/log N) time
// — a loss factor of N/(log N)². We measure both sides.
//
//   --threads=N   run the size points concurrently
//   --json=PATH   write the BENCH_E13.json document
//   --quick       shrink the sweep for CI smoke runs
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/ag85_sync.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/sim/network.h"
#include "celect/sim/sync_runtime.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E13");

  harness::PrintBanner(
      std::cout, "E13 (synchronous vs asynchronous, message-optimal)",
      "sync = AG85 doubling rounds; async = protocol G at k = log N "
      "under worst-case delays. gap = async_time / sync_rounds; theory "
      "predicts it grows like N/(log N)^2.");

  const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(1024);
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t n = 64; n <= n_max; n *= 2) sizes.push_back(n);
  struct Point {
    std::uint32_t sync_rounds = 0;
    std::uint64_t sync_messages = 0;
    sim::RunResult async;
  };
  // The sync side needs its own SyncRuntime (not RunOptions), so the
  // sweep drives ParallelFor directly: both sides of one size point run
  // in the same slot.
  std::vector<Point> points(sizes.size());
  harness::ParallelFor(sizes.size(), env.threads(), [&](std::size_t i) {
    std::uint32_t n = sizes[i];
    sim::SyncRuntime sync_rt(n, sim::IdentitiesAscending(n),
                             sim::MakeRandomMapper(n, n),
                             proto::nosod::MakeAg85Sync());
    auto sync = sync_rt.Run();
    points[i].sync_rounds = sync.rounds;
    points[i].sync_messages = sync.total_messages;

    harness::RunOptions o;
    o.n = n;
    points[i].async = harness::RunElection(
        proto::nosod::MakeProtocolG(proto::nosod::MessageOptimalK(n)), o);
  });

  Table t({"N", "sync rounds", "sync msgs", "async time", "async msgs",
           "gap", "N/(logN)^2"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    std::uint32_t n = sizes[i];
    const auto& p = points[i];
    double log_n = std::log2(static_cast<double>(n));
    double gap = p.async.leader_time.ToDouble() / p.sync_rounds;
    t.AddRow({Table::Int(n), Table::Int(p.sync_rounds),
              Table::Int(p.sync_messages),
              Table::Num(p.async.leader_time.ToDouble()),
              Table::Int(p.async.total_messages), Table::Num(gap),
              Table::Num(n / (log_n * log_n))});
    auto row = harness::MakeBenchRow("G(k=logN)/async", n, {p.async});
    row.extra.emplace_back("sync_rounds",
                           static_cast<double>(p.sync_rounds));
    row.extra.emplace_back("sync_messages",
                           static_cast<double>(p.sync_messages));
    row.extra.emplace_back("gap", gap);
    env.reporter().Add(std::move(row));
  }
  t.Print(std::cout);
  std::cout << "\nThe gap column should track the N/(logN)^2 column's "
               "growth (constant factors differ).\n";
  return env.Finish();
}
