// E1 — Figure 1: sense-of-direction labelling is a consistent
// Hamiltonian labelling. Validates the SoD port mapper at increasing
// sizes, prints the six-node Figure-1 rendering, and times validation.
#include <chrono>
#include <iostream>

#include "celect/harness/table.h"
#include "celect/sim/port_mapper.h"
#include "celect/topo/complete_graph.h"

int main() {
  using namespace celect;
  using Clock = std::chrono::steady_clock;

  harness::PrintBanner(std::cout, "E1 (Figure 1)",
                       "A complete network with sense of direction: edge d "
                       "at node i leads to i[d]; labels are complementary "
                       "(d at i, N-d back).");

  topo::CompleteGraph fig1(6);
  std::cout << fig1.RenderFigure1() << "\n";

  harness::Table table({"N", "edges", "sod_valid", "assignment_valid",
                        "validate_ms"});
  for (std::uint32_t n : {6u, 16u, 64u, 256u, 1024u}) {
    topo::CompleteGraph g(n);
    auto mapper = sim::MakeSodMapper(n);
    auto t0 = Clock::now();
    std::string sod_err = g.ValidateSenseOfDirection(*mapper);
    std::string port_err = g.ValidatePortAssignment(*mapper);
    double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0)
                    .count();
    table.AddRow({harness::Table::Int(n), harness::Table::Int(g.edge_count()),
                  sod_err.empty() ? "yes" : "NO", port_err.empty() ? "yes" : "NO",
                  harness::Table::Num(ms)});
  }
  table.Print(std::cout);

  std::cout << "\nRandom (no-SoD) mappers are valid assignments but fail "
               "the sense-of-direction check:\n";
  harness::Table rnd({"N", "assignment_valid", "sod_check"});
  for (std::uint32_t n : {16u, 128u}) {
    topo::CompleteGraph g(n);
    auto mapper = sim::MakeRandomMapper(n, 42);
    rnd.AddRow({harness::Table::Int(n),
                g.ValidatePortAssignment(*mapper).empty() ? "yes" : "NO",
                g.ValidateSenseOfDirection(*mapper).empty()
                    ? "unexpectedly valid"
                    : "rejected (expected)"});
  }
  rnd.Print(std::cout);
  return 0;
}
