// E1 — Figure 1: sense-of-direction labelling is a consistent
// Hamiltonian labelling. Validates the SoD port mapper at increasing
// sizes, prints the six-node Figure-1 rendering, and times validation.
//
//   --threads=N   validate the sizes concurrently
//   --json=PATH   write the BENCH_E1.json document
//   --quick       shrink the size list for CI smoke runs
#include <chrono>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/sim/port_mapper.h"
#include "celect/topo/complete_graph.h"

int main(int argc, char** argv) {
  using namespace celect;
  using Clock = std::chrono::steady_clock;

  harness::BenchEnv env(argc, argv, "E1");

  harness::PrintBanner(std::cout, "E1 (Figure 1)",
                       "A complete network with sense of direction: edge d "
                       "at node i leads to i[d]; labels are complementary "
                       "(d at i, N-d back).");

  topo::CompleteGraph fig1(6);
  std::cout << fig1.RenderFigure1() << "\n";

  std::vector<std::uint32_t> sizes = {6u, 16u, 64u, 256u, 1024u};
  if (env.quick()) sizes = {6u, 16u, 64u};
  struct Row {
    std::uint64_t edges = 0;
    bool sod_ok = false;
    bool port_ok = false;
    double validate_ms = 0.0;
  };
  std::vector<Row> rows(sizes.size());
  harness::ParallelFor(sizes.size(), env.threads(), [&](std::size_t i) {
    topo::CompleteGraph g(sizes[i]);
    auto mapper = sim::MakeSodMapper(sizes[i]);
    auto t0 = Clock::now();
    rows[i].sod_ok = g.ValidateSenseOfDirection(*mapper).empty();
    rows[i].port_ok = g.ValidatePortAssignment(*mapper).empty();
    rows[i].validate_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    rows[i].edges = g.edge_count();
  });

  harness::Table table({"N", "edges", "sod_valid", "assignment_valid",
                        "validate_ms"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.AddRow({harness::Table::Int(sizes[i]),
                  harness::Table::Int(rows[i].edges),
                  rows[i].sod_ok ? "yes" : "NO",
                  rows[i].port_ok ? "yes" : "NO",
                  harness::Table::Num(rows[i].validate_ms)});
    harness::BenchRow row;
    row.protocol = "sod-mapper";
    row.n = sizes[i];
    row.seed_count = 1;
    row.extra.emplace_back("edges", static_cast<double>(rows[i].edges));
    row.extra.emplace_back("sod_valid", rows[i].sod_ok ? 1.0 : 0.0);
    row.extra.emplace_back("assignment_valid", rows[i].port_ok ? 1.0 : 0.0);
    env.reporter().Add(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nRandom (no-SoD) mappers are valid assignments but fail "
               "the sense-of-direction check:\n";
  harness::Table rnd({"N", "assignment_valid", "sod_check"});
  for (std::uint32_t n : {16u, 128u}) {
    topo::CompleteGraph g(n);
    auto mapper = sim::MakeRandomMapper(n, 42);
    rnd.AddRow({harness::Table::Int(n),
                g.ValidatePortAssignment(*mapper).empty() ? "yes" : "NO",
                g.ValidateSenseOfDirection(*mapper).empty()
                    ? "unexpectedly valid"
                    : "rejected (expected)"});
  }
  rnd.Print(std::cout);
  return env.Finish();
}
