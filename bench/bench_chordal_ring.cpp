// E16 (extension) — the [ALSZ89] reference from the paper's
// introduction: O(log N) labelled chords per node already admit
// O(N)-message election; a binomial-tree coordinator sweep makes it
// O(log N) time. Compares against protocol C on the full complete
// network: same asymptotics with exponentially fewer usable edges.
//
//   --threads=N   fan the grids over worker threads (results identical)
//   --json=PATH   write the BENCH_E16.json document
//   --quick       shrink the sweeps for CI smoke runs
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/chordal/coordinator.h"
#include "celect/proto/sod/protocol_c.h"
#include "celect/topo/chordal_ring.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E16");

  harness::PrintBanner(
      std::cout, "E16 (extension: chordal-ring election, [ALSZ89])",
      "Coordinator sweep on the power-of-two chordal ring vs protocol C "
      "on the complete network. Single base node: the chordal run is "
      "tightly 2N + O(log N) messages.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(2048);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 32; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.mapper = harness::MapperKind::kSenseOfDirection;
      o.wakeup = harness::WakeupKind::kSingle;
      grid.push_back(
          {"chordal", proto::chordal::MakeChordalCoordinator(), o});
      grid.push_back({"C", proto::sod::MakeProtocolC(), o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "chords/node", "edges used", "complete edges",
             "chordal msgs", "chordal time", "C msgs", "C time"});
    std::vector<double> ns, msgs, times;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      std::uint32_t n = sizes[i];
      topo::ChordalRing ring(n);
      const auto& rc = results[2 * i];
      const auto& c = results[2 * i + 1];
      ns.push_back(n);
      msgs.push_back(static_cast<double>(rc.total_messages));
      times.push_back(rc.leader_time.ToDouble());
      t.AddRow({Table::Int(n), Table::Int(ring.chords_per_node()),
                Table::Int(static_cast<std::uint64_t>(n) *
                           ring.chords_per_node()),
                Table::Int(static_cast<std::uint64_t>(n) * (n - 1) / 2),
                Table::Int(rc.total_messages),
                Table::Num(rc.leader_time.ToDouble()),
                Table::Int(c.total_messages),
                Table::Num(c.leader_time.ToDouble())});
      env.reporter().Add(harness::MakeBenchRow("chordal/single", n, {rc}));
      env.reporter().Add(harness::MakeBenchRow("C/single", n, {c}));
    }
    t.Print(std::cout);
    auto fit = FitPowerLaw(ns, msgs);
    std::cout << "\nchordal message growth: N^"
              << (fit.valid ? Table::Num(fit.alpha) : "(fit invalid)")
              << " (linear); time per doubling: "
              << Table::Num(FitLogSlope(ns, times))
              << " units (bounded = logarithmic)\n";
  }

  harness::PrintBanner(
      std::cout, "E16b (all nodes base: start-routing overhead)",
      "With r base nodes the sweep costs N-ish plus r·log N routing "
      "hops.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(1024);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.mapper = harness::MapperKind::kSenseOfDirection;
      grid.push_back(
          {"chordal", proto::chordal::MakeChordalCoordinator(), o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t2({"N", "messages", "msgs/N", "routing hops", "time"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      auto hops = r.counters.count(proto::chordal::kCounterRoutingHops)
                      ? r.counters.at(proto::chordal::kCounterRoutingHops)
                      : 0;
      t2.AddRow({Table::Int(sizes[i]), Table::Int(r.total_messages),
                 Table::Num(r.total_messages / double(sizes[i])),
                 Table::Int(static_cast<std::uint64_t>(hops)),
                 Table::Num(r.leader_time.ToDouble())});
      env.reporter().Add(
          harness::MakeBenchRow("chordal/all-base", sizes[i], {r}));
    }
    t2.Print(std::cout);
  }
  return env.Finish();
}
