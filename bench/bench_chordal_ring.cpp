// E16 (extension) — the [ALSZ89] reference from the paper's
// introduction: O(log N) labelled chords per node already admit
// O(N)-message election; a binomial-tree coordinator sweep makes it
// O(log N) time. Compares against protocol C on the full complete
// network: same asymptotics with exponentially fewer usable edges.
#include <cmath>
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/chordal/coordinator.h"
#include "celect/proto/sod/protocol_c.h"
#include "celect/topo/chordal_ring.h"
#include "celect/util/stats.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E16 (extension: chordal-ring election, [ALSZ89])",
      "Coordinator sweep on the power-of-two chordal ring vs protocol C "
      "on the complete network. Single base node: the chordal run is "
      "tightly 2N + O(log N) messages.");

  Table t({"N", "chords/node", "edges used", "complete edges",
           "chordal msgs", "chordal time", "C msgs", "C time"});
  std::vector<double> ns, msgs, times;
  for (std::uint32_t n = 32; n <= 2048; n *= 2) {
    topo::ChordalRing ring(n);
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    o.wakeup = harness::WakeupKind::kSingle;
    auto rc = harness::RunElection(
        proto::chordal::MakeChordalCoordinator(), o);
    auto c = harness::RunElection(proto::sod::MakeProtocolC(), o);
    ns.push_back(n);
    msgs.push_back(static_cast<double>(rc.total_messages));
    times.push_back(rc.leader_time.ToDouble());
    t.AddRow({Table::Int(n), Table::Int(ring.chords_per_node()),
              Table::Int(static_cast<std::uint64_t>(n) *
                         ring.chords_per_node()),
              Table::Int(static_cast<std::uint64_t>(n) * (n - 1) / 2),
              Table::Int(rc.total_messages),
              Table::Num(rc.leader_time.ToDouble()),
              Table::Int(c.total_messages),
              Table::Num(c.leader_time.ToDouble())});
  }
  t.Print(std::cout);
  std::cout << "\nchordal message growth: N^"
            << Table::Num(FitPowerLaw(ns, msgs).alpha)
            << " (linear); time per doubling: "
            << Table::Num(FitLogSlope(ns, times))
            << " units (bounded = logarithmic)\n";

  harness::PrintBanner(
      std::cout, "E16b (all nodes base: start-routing overhead)",
      "With r base nodes the sweep costs N-ish plus r·log N routing "
      "hops.");
  Table t2({"N", "messages", "msgs/N", "routing hops", "time"});
  for (std::uint32_t n = 64; n <= 1024; n *= 2) {
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    auto r = harness::RunElection(
        proto::chordal::MakeChordalCoordinator(), o);
    auto hops = r.counters.count(proto::chordal::kCounterRoutingHops)
                    ? r.counters.at(proto::chordal::kCounterRoutingHops)
                    : 0;
    t2.AddRow({Table::Int(n), Table::Int(r.total_messages),
               Table::Num(r.total_messages / double(n)),
               Table::Int(static_cast<std::uint64_t>(hops)),
               Table::Num(r.leader_time.ToDouble())});
  }
  t2.Print(std::cout);
  return 0;
}
