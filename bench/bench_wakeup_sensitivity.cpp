// E15 — wakeup-count sensitivity (paper §4, end): using the AG85
// capturing pattern the paper improves G's time to
// O(log N + min(r, N/log N)) where r is the number of base nodes. We
// measure G's time as the base-node count r grows: time should rise
// with r and saturate near N/log N.
//
//   --threads=N   fan the grid over worker threads (results identical)
//   --json=PATH   write the BENCH_E15.json document
//   --quick       shrink the sweep for CI smoke runs
#include <algorithm>
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_g.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E15");

  const std::uint32_t n = env.quick() ? 128 : 512;
  const std::uint32_t k = proto::nosod::MessageOptimalK(n);
  const int kSeeds = env.quick() ? 2 : 5;

  harness::PrintBanner(
      std::cout,
      "E15 (time vs number of base nodes, N = " + std::to_string(n) + ")",
      "G at k = log N; r base nodes wake within one time unit. Paper's "
      "refined bound: O(log N + min(r, N/log N)).");

  std::vector<std::uint32_t> rs;
  for (std::uint32_t r = 1; r <= n; r *= 2) rs.push_back(r);

  std::vector<SweepPoint> grid;
  for (std::uint32_t r : rs) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      RunOptions o;
      o.n = n;
      o.seed = static_cast<std::uint64_t>(seed) * 37 + r;
      o.wakeup = harness::WakeupKind::kRandomSubset;
      o.wakeup_count = r;
      o.wakeup_window = 1.0;
      grid.push_back({"G", proto::nosod::MakeProtocolG(k), o});
      grid.push_back({"G2", proto::nosod::MakeProtocolGDoubling(k), o});
    }
  }
  auto results = harness::RunSweep(grid, env.sweep());

  Table t({"r (base nodes)", "G time", "G msgs", "G2 time", "G2 msgs",
           "min(r, N/logN)"});
  double cap = n / std::log2(static_cast<double>(n));
  const std::size_t per_r = 2 * static_cast<std::size_t>(kSeeds);
  for (std::size_t i = 0; i < rs.size(); ++i) {
    std::vector<sim::RunResult> g_runs, g2_runs;
    for (int seed = 0; seed < kSeeds; ++seed) {
      g_runs.push_back(results[i * per_r + 2 * seed]);
      g2_runs.push_back(results[i * per_r + 2 * seed + 1]);
    }
    auto g_row = harness::MakeBenchRow(
        "G(r=" + std::to_string(rs[i]) + ")", n, g_runs);
    auto g2_row = harness::MakeBenchRow(
        "G2(r=" + std::to_string(rs[i]) + ")", n, g2_runs);
    t.AddRow({Table::Int(rs[i]), Table::Num(g_row.time.mean()),
              Table::Num(g_row.messages.mean(), 0),
              Table::Num(g2_row.time.mean()),
              Table::Num(g2_row.messages.mean(), 0),
              Table::Num(std::min<double>(rs[i], cap))});
    env.reporter().Add(std::move(g_row));
    env.reporter().Add(std::move(g2_row));
  }
  t.Print(std::cout);
  std::cout << "\nG's time carries a ~N/k floor (the sequential walk); "
               "the [Si92] doubling variant G2 tracks\n"
               "O(log N + min(r, N/log N)) and grows only with min(r, "
               "N/logN), saturating past N/logN = "
            << Table::Num(cap) << ".\n";
  return env.Finish();
}
