// E15 — wakeup-count sensitivity (paper §4, end): using the AG85
// capturing pattern the paper improves G's time to
// O(log N + min(r, N/log N)) where r is the number of base nodes. We
// measure G's time as the base-node count r grows: time should rise
// with r and saturate near N/log N.
#include <cmath>
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_g.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E15 (time vs number of base nodes, N = 512)",
      "G at k = log N; r base nodes wake within one time unit. Paper's "
      "refined bound: O(log N + min(r, N/log N)).");

  const std::uint32_t n = 512;
  const std::uint32_t k = proto::nosod::MessageOptimalK(n);
  Table t({"r (base nodes)", "G time", "G msgs", "G2 time", "G2 msgs",
           "min(r, N/logN)"});
  double cap = n / std::log2(static_cast<double>(n));
  for (std::uint32_t r : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u,
                          512u}) {
    double g_time = 0, g_msgs = 0, g2_time = 0, g2_msgs = 0;
    const int kSeeds = 5;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      RunOptions o;
      o.n = n;
      o.seed = static_cast<std::uint64_t>(seed) * 37 + r;
      o.wakeup = harness::WakeupKind::kRandomSubset;
      o.wakeup_count = r;
      o.wakeup_window = 1.0;
      auto g = harness::RunElection(proto::nosod::MakeProtocolG(k), o);
      auto g2 =
          harness::RunElection(proto::nosod::MakeProtocolGDoubling(k), o);
      g_time += g.leader_time.ToDouble();
      g_msgs += static_cast<double>(g.total_messages);
      g2_time += g2.leader_time.ToDouble();
      g2_msgs += static_cast<double>(g2.total_messages);
    }
    t.AddRow({Table::Int(r), Table::Num(g_time / kSeeds),
              Table::Num(g_msgs / kSeeds, 0),
              Table::Num(g2_time / kSeeds),
              Table::Num(g2_msgs / kSeeds, 0),
              Table::Num(std::min<double>(r, cap))});
  }
  t.Print(std::cout);
  std::cout << "\nG's time carries a ~N/k floor (the sequential walk); "
               "the [Si92] doubling variant G2 tracks\n"
               "O(log N + min(r, N/log N)) and grows only with min(r, "
               "N/logN), saturating past N/logN = "
            << Table::Num(cap) << ".\n";
  return 0;
}
