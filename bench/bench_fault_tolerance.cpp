// E11 — fault-tolerant election under f initial site failures:
// O(Nf + N log N) messages, O(N/log N) time, f < N/2 (paper §4 +
// BKWZ87). Sweeps f at fixed N and N at fixed f, then replaces the
// initial failures with mid-run crashes from seeded chaos plans.
//
//   --threads=N   fan the grids over worker threads (results identical)
//   --json=PATH   write the BENCH_E11.json document
//   --quick       shrink the sweeps for CI smoke runs
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E11");

  harness::PrintBanner(
      std::cout, "E11a (failure sweep at N = 256)",
      "Messages grow ~linearly in f (the N·f redundancy term); the run "
      "still elects exactly one live leader.");
  {
    const std::uint32_t n = env.quick() ? 64 : 256;
    std::vector<std::uint32_t> fs_all = {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u};
    if (env.quick()) fs_all = {0u, 2u, 8u};
    std::vector<SweepPoint> grid;
    for (std::uint32_t f : fs_all) {
      RunOptions o;
      o.n = n;
      o.failures = f;
      o.seed = 7 + f;
      grid.push_back({"FT(f=" + std::to_string(f) + ")",
                      proto::nosod::MakeFaultTolerant(f), o});
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"f", "messages", "msgs/(N*(f+logN))", "time", "elected"});
    std::vector<double> fs, msgs;
    for (std::size_t i = 0; i < fs_all.size(); ++i) {
      std::uint32_t f = fs_all[i];
      const auto& r = results[i];
      double denom = n * (f + std::log2(static_cast<double>(n)));
      if (f > 0) {
        fs.push_back(f);
        msgs.push_back(static_cast<double>(r.total_messages));
      }
      t.AddRow({Table::Int(f), Table::Int(r.total_messages),
                Table::Num(r.total_messages / denom, 3),
                Table::Num(r.leader_time.ToDouble()),
                r.leader_declarations == 1 ? "yes" : "NO"});
      env.reporter().Add(harness::MakeBenchRow(grid[i].protocol, n, {r}));
    }
    t.Print(std::cout);
    auto fit = FitPowerLaw(fs, msgs);
    std::cout << "\nmessage growth in f: f^"
              << (fit.valid ? Table::Num(fit.alpha) : "(fit invalid)")
              << " (paper: ~1 once the N·f term dominates)\n";
  }

  harness::PrintBanner(
      std::cout, "E11b (N sweep at f = 8)",
      "Time stays O(N/log N) despite the failures.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(1024);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.failures = 8;
      o.seed = n;
      grid.push_back({"FT(f=8)", proto::nosod::MakeFaultTolerant(8), o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "messages", "time", "time/(N/logN)", "elected"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      double log_n = std::log2(static_cast<double>(sizes[i]));
      t.AddRow({Table::Int(sizes[i]), Table::Int(r.total_messages),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / (sizes[i] / log_n),
                           3),
                r.leader_declarations == 1 ? "yes" : "NO"});
      env.reporter().Add(harness::MakeBenchRow("FT(f=8)", sizes[i], {r}));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E11c (stress: many seeds, f = N/4)",
      "100 randomised runs at N = 64, f = 16 — count of runs electing "
      "exactly one live leader.");
  {
    const std::uint32_t kTrials = env.quick() ? 20 : 100;
    std::vector<SweepPoint> grid;
    for (std::uint32_t trial = 0; trial < kTrials; ++trial) {
      RunOptions o;
      o.n = 64;
      o.failures = 16;
      o.seed = 1000 + trial;
      o.delay = trial % 2 ? harness::DelayKind::kRandom
                          : harness::DelayKind::kUnit;
      grid.push_back({"FT/stress", proto::nosod::MakeFaultTolerant(16), o});
    }
    auto results = harness::RunSweep(grid, env.sweep());
    std::uint32_t ok = 0;
    for (const auto& r : results) {
      if (r.leader_declarations == 1) ++ok;
    }
    std::cout << ok << "/" << kTrials << " runs elected a unique leader\n";
    auto row = harness::MakeBenchRow("FT/stress", 64, results);
    row.extra.emplace_back("unique_leader", static_cast<double>(ok));
    env.reporter().Add(std::move(row));
  }

  harness::PrintBanner(
      std::cout, "E11d (mid-run crashes: chaos sweep at N = 64)",
      "Nodes now die *during* the run, at seed-chosen adversarial "
      "moments, with 2% injected link loss on top. Cost of the recovery "
      "machinery: messages and timers per fault budget.");
  {
    const std::uint32_t kCases = env.quick() ? 10 : 25;
    Table t({"f", "cases", "crashes", "lost", "timers", "avg msgs",
             "violations"});
    for (std::uint32_t f : {1u, 2u, 4u, 8u}) {
      harness::ChaosOptions opt;
      opt.n = 64;
      opt.max_crashes = f;
      opt.loss = 0.02;
      opt.threads = env.threads();
      auto sweep = harness::SweepChaos(proto::nosod::MakeFaultTolerant(f),
                                       4200 + f, kCases, opt);
      t.AddRow({Table::Int(f), Table::Int(sweep.cases),
                Table::Int(sweep.crashes_injected),
                Table::Int(sweep.messages_lost),
                Table::Int(sweep.timers_fired),
                Table::Int(static_cast<std::uint64_t>(
                    sweep.messages.mean())),
                Table::Int(sweep.violations.size())});
      harness::BenchRow row;
      row.protocol = "FT/chaos(f=" + std::to_string(f) + ")";
      row.n = 64;
      row.seed_count = sweep.cases;
      row.messages = sweep.messages;
      row.time = sweep.time;
      row.wall_ns = sweep.wall_ns;
      row.events_per_sec =
          sweep.wall_ns > 0
              ? static_cast<double>(sweep.events_processed) * 1e9 /
                    static_cast<double>(sweep.wall_ns)
              : 0.0;
      row.extra.emplace_back("crashes",
                             static_cast<double>(sweep.crashes_injected));
      row.extra.emplace_back("lost",
                             static_cast<double>(sweep.messages_lost));
      row.extra.emplace_back("violations",
                             static_cast<double>(sweep.violations.size()));
      env.reporter().Add(std::move(row));
    }
    t.Print(std::cout);
  }
  return env.Finish();
}
