// E11 — fault-tolerant election under f initial site failures:
// O(Nf + N log N) messages, O(N/log N) time, f < N/2 (paper §4 +
// BKWZ87). Sweeps f at fixed N and N at fixed f, then replaces the
// initial failures with mid-run crashes from seeded chaos plans.
#include <cmath>
#include <iostream>

#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/util/stats.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E11a (failure sweep at N = 256)",
      "Messages grow ~linearly in f (the N·f redundancy term); the run "
      "still elects exactly one live leader.");
  {
    const std::uint32_t n = 256;
    Table t({"f", "messages", "msgs/(N*(f+logN))", "time", "elected"});
    std::vector<double> fs, msgs;
    for (std::uint32_t f : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
      RunOptions o;
      o.n = n;
      o.failures = f;
      o.seed = 7 + f;
      auto r =
          harness::RunElection(proto::nosod::MakeFaultTolerant(f), o);
      double denom = n * (f + std::log2(static_cast<double>(n)));
      if (f > 0) {
        fs.push_back(f);
        msgs.push_back(static_cast<double>(r.total_messages));
      }
      t.AddRow({Table::Int(f), Table::Int(r.total_messages),
                Table::Num(r.total_messages / denom, 3),
                Table::Num(r.leader_time.ToDouble()),
                r.leader_declarations == 1 ? "yes" : "NO"});
    }
    t.Print(std::cout);
    std::cout << "\nmessage growth in f: f^"
              << Table::Num(FitPowerLaw(fs, msgs).alpha)
              << " (paper: ~1 once the N·f term dominates)\n";
  }

  harness::PrintBanner(
      std::cout, "E11b (N sweep at f = 8)",
      "Time stays O(N/log N) despite the failures.");
  {
    Table t({"N", "messages", "time", "time/(N/logN)", "elected"});
    for (std::uint32_t n = 64; n <= 1024; n *= 2) {
      RunOptions o;
      o.n = n;
      o.failures = 8;
      o.seed = n;
      auto r =
          harness::RunElection(proto::nosod::MakeFaultTolerant(8), o);
      double log_n = std::log2(static_cast<double>(n));
      t.AddRow({Table::Int(n), Table::Int(r.total_messages),
                Table::Num(r.leader_time.ToDouble()),
                Table::Num(r.leader_time.ToDouble() / (n / log_n), 3),
                r.leader_declarations == 1 ? "yes" : "NO"});
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E11c (stress: many seeds, f = N/4)",
      "100 randomised runs at N = 64, f = 16 — count of runs electing "
      "exactly one live leader.");
  {
    int ok = 0;
    const int kTrials = 100;
    for (int trial = 0; trial < kTrials; ++trial) {
      RunOptions o;
      o.n = 64;
      o.failures = 16;
      o.seed = 1000 + trial;
      o.delay = trial % 2 ? harness::DelayKind::kRandom
                          : harness::DelayKind::kUnit;
      auto r =
          harness::RunElection(proto::nosod::MakeFaultTolerant(16), o);
      if (r.leader_declarations == 1) ++ok;
    }
    std::cout << ok << "/" << kTrials << " runs elected a unique leader\n";
  }

  harness::PrintBanner(
      std::cout, "E11d (mid-run crashes: chaos sweep at N = 64)",
      "Nodes now die *during* the run, at seed-chosen adversarial "
      "moments, with 2% injected link loss on top. Cost of the recovery "
      "machinery: messages and timers per fault budget.");
  {
    Table t({"f", "cases", "crashes", "lost", "timers", "avg msgs",
             "violations"});
    for (std::uint32_t f : {1u, 2u, 4u, 8u}) {
      harness::ChaosOptions opt;
      opt.n = 64;
      opt.max_crashes = f;
      opt.loss = 0.02;
      const std::uint32_t kCases = 25;
      std::uint64_t msgs = 0, crashes = 0, lost = 0, timers = 0,
                    violations = 0;
      for (std::uint32_t i = 0; i < kCases; ++i) {
        auto c = harness::RunChaosCase(proto::nosod::MakeFaultTolerant(f),
                                       4200 + f + i, opt);
        msgs += c.result.total_messages;
        crashes += c.result.faults_injected;
        lost += c.result.messages_lost;
        timers += c.result.timers_fired;
        if (!c.violation.empty()) ++violations;
      }
      t.AddRow({Table::Int(f), Table::Int(kCases), Table::Int(crashes),
                Table::Int(lost), Table::Int(timers),
                Table::Int(msgs / kCases), Table::Int(violations)});
    }
    t.Print(std::cout);
  }
  return 0;
}
