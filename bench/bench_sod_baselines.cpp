// E2 + E5 — sense-of-direction baselines.
//   LMW86: O(N) messages, O(N) time (majority capture).
//   B:     O(N log N) messages, O(log N) time (doubling).
// The series shows the paper's motivation: LMW86 is message optimal but
// slow, B is fast but not message optimal; protocol C (bench_sod_protocol_c)
// gets both.
#include <cmath>
#include <iostream>

#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/sod/lmw86.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/util/stats.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(std::cout, "E2 (LMW86 baseline)",
                       "Majority capture: O(N) messages, O(N) time under "
                       "worst-case delays.");

  std::vector<double> ns, lmw_msgs, lmw_times;
  Table t1({"N", "messages", "msgs/N", "time", "time/N"});
  for (std::uint32_t n = 32; n <= 2048; n *= 2) {
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    auto r = harness::RunElection(proto::sod::MakeLmw86(), o);
    double nd = n;
    ns.push_back(nd);
    lmw_msgs.push_back(static_cast<double>(r.total_messages));
    lmw_times.push_back(r.leader_time.ToDouble());
    t1.AddRow({Table::Int(n), Table::Int(r.total_messages),
               Table::Num(r.total_messages / nd),
               Table::Num(r.leader_time.ToDouble()),
               Table::Num(r.leader_time.ToDouble() / nd, 3)});
  }
  t1.Print(std::cout);
  auto msg_fit = FitPowerLaw(ns, lmw_msgs);
  std::cout << "\nLMW86 message growth: N^" << Table::Num(msg_fit.alpha)
            << " (paper: linear, exponent 1)\n";

  harness::PrintBanner(std::cout, "E5 (protocol B)",
                       "Doubling: O(log N) time but O(N log N) messages.");
  Table t2({"N", "messages", "msgs/(N*logN)", "time", "time/logN"});
  std::vector<double> b_times;
  for (std::uint32_t n = 32; n <= 2048; n *= 2) {
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    auto r = harness::RunElection(proto::sod::MakeProtocolB(), o);
    double log_n = std::log2(static_cast<double>(n));
    b_times.push_back(r.leader_time.ToDouble());
    t2.AddRow({Table::Int(n), Table::Int(r.total_messages),
               Table::Num(r.total_messages / (n * log_n)),
               Table::Num(r.leader_time.ToDouble()),
               Table::Num(r.leader_time.ToDouble() / log_n)});
  }
  t2.Print(std::cout);
  std::cout << "\nB time log-slope: "
            << Table::Num(FitLogSlope(ns, b_times))
            << " time-units per doubling (flat slope = logarithmic)\n";
  return 0;
}
