// E2 + E5 — sense-of-direction baselines.
//   LMW86: O(N) messages, O(N) time (majority capture).
//   B:     O(N log N) messages, O(log N) time (doubling).
// The series shows the paper's motivation: LMW86 is message optimal but
// slow, B is fast but not message optimal; protocol C (bench_sod_protocol_c)
// gets both.
//
//   --threads=N   fan the grid over worker threads (results identical)
//   --json=PATH   write the BENCH_E2.json document
//   --quick       shrink the sweep for CI smoke runs
#include <cmath>
#include <iostream>

#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/sod/lmw86.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E2");

  const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(2048);
  std::vector<SweepPoint> grid;
  std::vector<std::uint32_t> sizes;
  for (std::uint32_t n = 32; n <= n_max; n *= 2) {
    RunOptions o;
    o.n = n;
    o.mapper = harness::MapperKind::kSenseOfDirection;
    grid.push_back({"lmw86", proto::sod::MakeLmw86(), o});
    grid.push_back({"B", proto::sod::MakeProtocolB(), o});
    sizes.push_back(n);
  }
  auto results = harness::RunSweep(grid, env.sweep());

  harness::PrintBanner(std::cout, "E2 (LMW86 baseline)",
                       "Majority capture: O(N) messages, O(N) time under "
                       "worst-case delays.");
  std::vector<double> ns, lmw_msgs;
  Table t1({"N", "messages", "msgs/N", "time", "time/N"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& r = results[2 * i];
    double nd = sizes[i];
    ns.push_back(nd);
    lmw_msgs.push_back(static_cast<double>(r.total_messages));
    t1.AddRow({Table::Int(sizes[i]), Table::Int(r.total_messages),
               Table::Num(r.total_messages / nd),
               Table::Num(r.leader_time.ToDouble()),
               Table::Num(r.leader_time.ToDouble() / nd, 3)});
    env.reporter().Add(harness::MakeBenchRow("lmw86", sizes[i], {r}));
  }
  t1.Print(std::cout);
  auto msg_fit = FitPowerLaw(ns, lmw_msgs);
  std::cout << "\nLMW86 message growth: N^"
            << (msg_fit.valid ? Table::Num(msg_fit.alpha) : "(fit invalid)")
            << " (paper: linear, exponent 1)\n";

  harness::PrintBanner(std::cout, "E5 (protocol B)",
                       "Doubling: O(log N) time but O(N log N) messages.");
  Table t2({"N", "messages", "msgs/(N*logN)", "time", "time/logN"});
  std::vector<double> b_times;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& r = results[2 * i + 1];
    double log_n = std::log2(static_cast<double>(sizes[i]));
    b_times.push_back(r.leader_time.ToDouble());
    t2.AddRow({Table::Int(sizes[i]), Table::Int(r.total_messages),
               Table::Num(r.total_messages / (sizes[i] * log_n)),
               Table::Num(r.leader_time.ToDouble()),
               Table::Num(r.leader_time.ToDouble() / log_n)});
    env.reporter().Add(harness::MakeBenchRow("B", sizes[i], {r}));
  }
  t2.Print(std::cout);
  std::cout << "\nB time log-slope: "
            << Table::Num(FitLogSlope(ns, b_times))
            << " time-units per doubling (flat slope = logarithmic)\n";
  return env.Finish();
}
