// E8 — protocol Ɛ's forwarding throttle (paper §4).
//
// Raw AG85 lets a captured node forward every contender immediately;
// with unit inter-message spacing a popular node serialises Θ(N)
// forwarded messages on one link, so a capture can take Θ(N) time. Ɛ
// keeps one forward in flight and buffers the best contender, restoring
// O(1)-time captures. We measure max per-link load and election time
// for both variants.
#include <cmath>
#include <iostream>
#include <memory>

#include "celect/adversary/adaptive_adversary.h"
#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/efg_engine.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/sim/runtime.h"
#include "celect/util/stats.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E8 (Ɛ throttle vs raw AG85)",
      "All nodes wake together (maximum contention). max_link_load is "
      "the largest number of messages one directed link carried — the "
      "congestion the throttle eliminates.");

  Table t({"N", "raw msgs", "raw time", "raw in-flight", "Ɛ msgs",
           "Ɛ time", "Ɛ in-flight"});
  for (std::uint32_t n = 32; n <= 512; n *= 2) {
    RunOptions o;
    o.n = n;
    o.identity = harness::IdentityKind::kRandomPermutation;
    o.seed = n;
    auto raw = harness::RunElection(proto::nosod::MakeProtocolE(false), o);
    auto eps = harness::RunElection(proto::nosod::MakeProtocolE(true), o);
    t.AddRow({Table::Int(n), Table::Int(raw.total_messages),
              Table::Num(raw.leader_time.ToDouble()),
              Table::Int(raw.max_link_inflight),
              Table::Int(eps.total_messages),
              Table::Num(eps.leader_time.ToDouble()),
              Table::Int(eps.max_link_inflight)});
  }
  t.Print(std::cout);
  std::cout << "\n(random port maps rarely funnel contenders through one "
               "node — see E8c for the adversarial pile-up)\n";

  harness::PrintBanner(
      std::cout, "E8c (funnel adversary: the forwarding pile-up)",
      "The adversary routes every candidate's first capture to one "
      "victim; the victim forwards each contest to its owner over a "
      "single link. Raw AG85 puts them all in flight at once (link load "
      "Θ(N), unit spacing serialises them); the Ɛ throttle keeps one "
      "outstanding and resolves the strongest first.");
  {
    harness::Table t3({"N", "raw in-flight", "raw time", "Ɛ in-flight",
                       "Ɛ time"});
    std::vector<double> ns, raw_inflight, eps_inflight;
    for (std::uint32_t n = 32; n <= 512; n *= 2) {
      auto run = [n](bool throttle) {
        sim::NetworkConfig config;
        config.n = n;
        config.mapper = std::make_unique<
            adversary::AdaptiveAdversaryMapper>(
            n, adversary::FunnelStrategy(n, /*victim=*/0));
        config.delays = sim::MakeUnitDelay();
        config.wakeup = sim::WakeAllAtZero(n);
        sim::Runtime rt(std::move(config),
                        proto::nosod::MakeProtocolE(throttle));
        return rt.Run();
      };
      auto raw = run(false);
      auto eps = run(true);
      ns.push_back(n);
      raw_inflight.push_back(static_cast<double>(raw.max_link_inflight));
      eps_inflight.push_back(static_cast<double>(eps.max_link_inflight));
      t3.AddRow({Table::Int(n), Table::Int(raw.max_link_inflight),
                 Table::Num(raw.leader_time.ToDouble()),
                 Table::Int(eps.max_link_inflight),
                 Table::Num(eps.leader_time.ToDouble())});
    }
    t3.Print(std::cout);
    std::cout << "\nraw in-flight growth: N^"
              << Table::Num(FitPowerLaw(ns, raw_inflight).alpha)
              << " — the Θ(N) pile-up; throttled stays O(1).\n";
  }

  harness::PrintBanner(
      std::cout, "E8b (Ɛ message complexity)",
      "Ɛ alone (walk to level N-1): O(N log N) messages, O(N) time.");
  Table t2({"N", "messages", "msgs/(N*logN)", "time", "time/N"});
  for (std::uint32_t n = 64; n <= 1024; n *= 2) {
    RunOptions o;
    o.n = n;
    o.identity = harness::IdentityKind::kRandomPermutation;
    o.seed = 3 * n + 1;
    auto r = harness::RunElection(proto::nosod::MakeProtocolE(true), o);
    double log_n = std::log2(static_cast<double>(n));
    t2.AddRow({Table::Int(n), Table::Int(r.total_messages),
               Table::Num(r.total_messages / (n * log_n)),
               Table::Num(r.leader_time.ToDouble()),
               Table::Num(r.leader_time.ToDouble() / n, 3)});
  }
  t2.Print(std::cout);
  return 0;
}
