// E8 — protocol Ɛ's forwarding throttle (paper §4).
//
// Raw AG85 lets a captured node forward every contender immediately;
// with unit inter-message spacing a popular node serialises Θ(N)
// forwarded messages on one link, so a capture can take Θ(N) time. Ɛ
// keeps one forward in flight and buffers the best contender, restoring
// O(1)-time captures. We measure max per-link load and election time
// for both variants.
//
//   --threads=N   fan the grids over worker threads (results identical)
//   --json=PATH   write the BENCH_E8.json document
//   --quick       shrink the sweeps for CI smoke runs
#include <cmath>
#include <iostream>
#include <memory>

#include "celect/adversary/adaptive_adversary.h"
#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/efg_engine.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/sim/runtime.h"
#include "celect/util/stats.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E8");

  harness::PrintBanner(
      std::cout, "E8 (Ɛ throttle vs raw AG85)",
      "All nodes wake together (maximum contention). max_link_load is "
      "the largest number of messages one directed link carried — the "
      "congestion the throttle eliminates.");
  {
    const std::uint32_t n_max = env.quick() ? 128 : env.EffectiveNMax(512);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 32; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.identity = harness::IdentityKind::kRandomPermutation;
      o.seed = n;
      grid.push_back({"E/raw", proto::nosod::MakeProtocolE(false), o});
      grid.push_back({"E/throttled", proto::nosod::MakeProtocolE(true), o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "raw msgs", "raw time", "raw in-flight", "Ɛ msgs",
             "Ɛ time", "Ɛ in-flight"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& raw = results[2 * i];
      const auto& eps = results[2 * i + 1];
      t.AddRow({Table::Int(sizes[i]), Table::Int(raw.total_messages),
                Table::Num(raw.leader_time.ToDouble()),
                Table::Int(raw.max_link_inflight),
                Table::Int(eps.total_messages),
                Table::Num(eps.leader_time.ToDouble()),
                Table::Int(eps.max_link_inflight)});
      env.reporter().Add(harness::MakeBenchRow("E/raw", sizes[i], {raw}));
      env.reporter().Add(
          harness::MakeBenchRow("E/throttled", sizes[i], {eps}));
    }
    t.Print(std::cout);
  }
  std::cout << "\n(random port maps rarely funnel contenders through one "
               "node — see E8c for the adversarial pile-up)\n";

  harness::PrintBanner(
      std::cout, "E8c (funnel adversary: the forwarding pile-up)",
      "The adversary routes every candidate's first capture to one "
      "victim; the victim forwards each contest to its owner over a "
      "single link. Raw AG85 puts them all in flight at once (link load "
      "Θ(N), unit spacing serialises them); the Ɛ throttle keeps one "
      "outstanding and resolves the strongest first.");
  {
    const std::uint32_t n_max = env.quick() ? 128 : env.EffectiveNMax(512);
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 32; n <= n_max; n *= 2) sizes.push_back(n);
    // The adaptive funnel mapper needs a custom NetworkConfig, so this
    // series drives ParallelFor directly: slot 2i raw, 2i+1 throttled.
    std::vector<sim::RunResult> results(2 * sizes.size());
    harness::ParallelFor(results.size(), env.threads(), [&](std::size_t i) {
      std::uint32_t n = sizes[i / 2];
      bool throttle = (i % 2) != 0;
      sim::NetworkConfig config;
      config.n = n;
      config.mapper = std::make_unique<adversary::AdaptiveAdversaryMapper>(
          n, adversary::FunnelStrategy(n, /*victim=*/0));
      config.delays = sim::MakeUnitDelay();
      config.wakeup = sim::WakeAllAtZero(n);
      sim::Runtime rt(std::move(config),
                      proto::nosod::MakeProtocolE(throttle));
      results[i] = rt.Run();
    });
    harness::Table t3({"N", "raw in-flight", "raw time", "Ɛ in-flight",
                       "Ɛ time"});
    std::vector<double> ns, raw_inflight;
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& raw = results[2 * i];
      const auto& eps = results[2 * i + 1];
      ns.push_back(sizes[i]);
      raw_inflight.push_back(static_cast<double>(raw.max_link_inflight));
      t3.AddRow({Table::Int(sizes[i]), Table::Int(raw.max_link_inflight),
                 Table::Num(raw.leader_time.ToDouble()),
                 Table::Int(eps.max_link_inflight),
                 Table::Num(eps.leader_time.ToDouble())});
      env.reporter().Add(
          harness::MakeBenchRow("E/funnel-raw", sizes[i], {raw}));
      env.reporter().Add(
          harness::MakeBenchRow("E/funnel-throttled", sizes[i], {eps}));
    }
    t3.Print(std::cout);
    auto fit = FitPowerLaw(ns, raw_inflight);
    std::cout << "\nraw in-flight growth: N^"
              << (fit.valid ? Table::Num(fit.alpha) : "(fit invalid)")
              << " — the Θ(N) pile-up; throttled stays O(1).\n";
  }

  harness::PrintBanner(
      std::cout, "E8b (Ɛ message complexity)",
      "Ɛ alone (walk to level N-1): O(N log N) messages, O(N) time.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(1024);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.identity = harness::IdentityKind::kRandomPermutation;
      o.seed = 3 * n + 1;
      grid.push_back({"E", proto::nosod::MakeProtocolE(true), o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t2({"N", "messages", "msgs/(N*logN)", "time", "time/N"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      double log_n = std::log2(static_cast<double>(sizes[i]));
      t2.AddRow({Table::Int(sizes[i]), Table::Int(r.total_messages),
                 Table::Num(r.total_messages / (sizes[i] * log_n)),
                 Table::Num(r.leader_time.ToDouble()),
                 Table::Num(r.leader_time.ToDouble() / sizes[i], 3)});
      env.reporter().Add(harness::MakeBenchRow("E", sizes[i], {r}));
    }
    t2.Print(std::cout);
  }
  return env.Finish();
}
