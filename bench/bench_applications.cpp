// E14 — applications inherit election complexity (paper §1/§6):
// spanning tree and global-function computation cost only O(N) extra
// messages and O(1) extra time over the underlying election (C with
// sense of direction, G without).
#include <iostream>

#include "celect/apps/global_function.h"
#include "celect/apps/spanning_tree.h"
#include "celect/harness/experiment.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/proto/sod/protocol_c.h"

int main() {
  using namespace celect;
  using harness::RunOptions;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E14a (spanning tree over protocol C, SoD)",
      "extra = app run − plain election; paper: Θ(N) messages, O(1) "
      "time.");
  {
    Table t({"N", "election msgs", "tree msgs", "extra msgs", "extra/N",
             "extra time"});
    for (std::uint32_t n = 64; n <= 1024; n *= 2) {
      RunOptions o;
      o.n = n;
      o.mapper = harness::MapperKind::kSenseOfDirection;
      auto plain = harness::RunElection(proto::sod::MakeProtocolC(), o);
      auto app = harness::RunElection(
          apps::MakeSpanningTree(proto::sod::MakeProtocolC()), o);
      std::uint64_t extra = app.total_messages - plain.total_messages;
      t.AddRow({Table::Int(n), Table::Int(plain.total_messages),
                Table::Int(app.total_messages), Table::Int(extra),
                Table::Num(double(extra) / n),
                Table::Num(app.quiesce_time.ToDouble() -
                           plain.quiesce_time.ToDouble())});
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E14b (global max over protocol G, no SoD)",
      "query + report + result rounds on top of G at k = log N.");
  {
    Table t({"N", "election msgs", "fn msgs", "extra msgs", "extra/N",
             "extra time"});
    for (std::uint32_t n = 64; n <= 512; n *= 2) {
      RunOptions o;
      o.n = n;
      auto election = proto::nosod::MakeProtocolG(
          proto::nosod::MessageOptimalK(n));
      auto plain = harness::RunElection(election, o);
      auto input_of = [](sim::NodeId addr) {
        return static_cast<std::int64_t>(addr * 31 % 997);
      };
      auto app = harness::RunElection(
          apps::MakeGlobalFunction(election, input_of,
                                   apps::MaxReducer()),
          o);
      std::uint64_t extra = app.total_messages - plain.total_messages;
      t.AddRow({Table::Int(n), Table::Int(plain.total_messages),
                Table::Int(app.total_messages), Table::Int(extra),
                Table::Num(double(extra) / n),
                Table::Num(app.quiesce_time.ToDouble() -
                           plain.quiesce_time.ToDouble())});
    }
    t.Print(std::cout);
  }
  return 0;
}
