// E14 — applications inherit election complexity (paper §1/§6):
// spanning tree and global-function computation cost only O(N) extra
// messages and O(1) extra time over the underlying election (C with
// sense of direction, G without).
//
//   --threads=N   fan the grids over worker threads (results identical)
//   --json=PATH   write the BENCH_E14.json document
//   --quick       shrink the sweeps for CI smoke runs
#include <iostream>

#include "celect/apps/global_function.h"
#include "celect/apps/spanning_tree.h"
#include "celect/harness/bench_json.h"
#include "celect/harness/experiment.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/proto/sod/protocol_c.h"

int main(int argc, char** argv) {
  using namespace celect;
  using harness::RunOptions;
  using harness::SweepPoint;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E14");

  harness::PrintBanner(
      std::cout, "E14a (spanning tree over protocol C, SoD)",
      "extra = app run − plain election; paper: Θ(N) messages, O(1) "
      "time.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(1024);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      o.mapper = harness::MapperKind::kSenseOfDirection;
      grid.push_back({"C", proto::sod::MakeProtocolC(), o});
      grid.push_back({"C+tree",
                      apps::MakeSpanningTree(proto::sod::MakeProtocolC()),
                      o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "election msgs", "tree msgs", "extra msgs", "extra/N",
             "extra time"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& plain = results[2 * i];
      const auto& app = results[2 * i + 1];
      std::uint64_t extra = app.total_messages - plain.total_messages;
      t.AddRow({Table::Int(sizes[i]), Table::Int(plain.total_messages),
                Table::Int(app.total_messages), Table::Int(extra),
                Table::Num(double(extra) / sizes[i]),
                Table::Num(app.quiesce_time.ToDouble() -
                           plain.quiesce_time.ToDouble())});
      env.reporter().Add(harness::MakeBenchRow("C", sizes[i], {plain}));
      env.reporter().Add(harness::MakeBenchRow("C+tree", sizes[i], {app}));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E14b (global max over protocol G, no SoD)",
      "query + report + result rounds on top of G at k = log N.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(512);
    std::vector<SweepPoint> grid;
    std::vector<std::uint32_t> sizes;
    auto input_of = [](sim::NodeId addr) {
      return static_cast<std::int64_t>(addr * 31 % 997);
    };
    for (std::uint32_t n = 64; n <= n_max; n *= 2) {
      RunOptions o;
      o.n = n;
      auto election =
          proto::nosod::MakeProtocolG(proto::nosod::MessageOptimalK(n));
      grid.push_back({"G", election, o});
      grid.push_back(
          {"G+maxfn",
           apps::MakeGlobalFunction(election, input_of, apps::MaxReducer()),
           o});
      sizes.push_back(n);
    }
    auto results = harness::RunSweep(grid, env.sweep());
    Table t({"N", "election msgs", "fn msgs", "extra msgs", "extra/N",
             "extra time"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& plain = results[2 * i];
      const auto& app = results[2 * i + 1];
      std::uint64_t extra = app.total_messages - plain.total_messages;
      t.AddRow({Table::Int(sizes[i]), Table::Int(plain.total_messages),
                Table::Int(app.total_messages), Table::Int(extra),
                Table::Num(double(extra) / sizes[i]),
                Table::Num(app.quiesce_time.ToDouble() -
                           plain.quiesce_time.ToDouble())});
      env.reporter().Add(harness::MakeBenchRow("G", sizes[i], {plain}));
      env.reporter().Add(
          harness::MakeBenchRow("G+maxfn", sizes[i], {app}));
    }
    t.Print(std::cout);
  }
  return env.Finish();
}
