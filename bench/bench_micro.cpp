// Microbenchmarks (google-benchmark) for the simulator substrate:
// event-queue throughput, packet codec, Feistel port permutation, and
// end-to-end simulation rate per protocol. These guard the simulator's
// own performance so large sweeps stay cheap.
#include <benchmark/benchmark.h>

#include "celect/harness/experiment.h"
#include "celect/harness/registry.h"
#include "celect/sim/event_queue.h"
#include "celect/util/feistel.h"
#include "celect/util/rng.h"
#include "celect/wire/packet_codec.h"

namespace {

using namespace celect;

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < batch; ++i) {
      q.Push(sim::Time::FromTicks(
                 static_cast<std::int64_t>(rng.NextBelow(1 << 20))),
             sim::WakeupEvent{0});
    }
    while (auto e = q.Pop()) benchmark::DoNotOptimize(e->at);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1024)->Arg(16384);

void BM_PacketEncodeDecode(benchmark::State& state) {
  wire::Packet p{7, {123456, 42, -7}};
  for (auto _ : state) {
    auto buf = wire::Encode(p);
    auto back = wire::Decode(buf);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PacketEncodeDecode);

void BM_FeistelResolve(benchmark::State& state) {
  FeistelPermutation perm(static_cast<std::uint64_t>(state.range(0)), 99);
  std::uint64_t x = 0;
  for (auto _ : state) {
    x = perm.Encrypt(x);
    benchmark::DoNotOptimize(x);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FeistelResolve)->Arg(1023)->Arg(65535);

// Full elections: simulated messages per second of wall time.
void RunProtocolBench(benchmark::State& state, const char* name,
                      bool sod) {
  auto spec = harness::FindProtocol(name);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    harness::RunOptions o;
    o.n = static_cast<std::uint32_t>(state.range(0));
    o.mapper = sod ? harness::MapperKind::kSenseOfDirection
                   : harness::MapperKind::kRandom;
    auto r = harness::RunElection(spec->make(0), o);
    messages += r.total_messages;
    benchmark::DoNotOptimize(r.leader_id);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.SetLabel("simulated messages/s");
}

void BM_ElectionC(benchmark::State& state) {
  RunProtocolBench(state, "C", true);
}
BENCHMARK(BM_ElectionC)->Arg(256)->Arg(1024);

void BM_ElectionG(benchmark::State& state) {
  RunProtocolBench(state, "G", false);
}
BENCHMARK(BM_ElectionG)->Arg(256)->Arg(1024);

void BM_ElectionD(benchmark::State& state) {
  RunProtocolBench(state, "D", false);
}
BENCHMARK(BM_ElectionD)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
