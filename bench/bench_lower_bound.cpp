// E12 — the §5 lower bound (Theorem 5.1): any comparison-based protocol
// sending < Nd messages needs >= N/16d time. Runs the message-optimal
// protocol G against the constructive adversary (Up-first adaptive port
// binding + unit delays + simultaneous wakeup) and reports achieved time
// against the theoretical floor, plus the locality diagnostics the
// proof's order-equivalence argument relies on.
#include <iostream>

#include "celect/adversary/lower_bound.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/proto/nosod/protocol_g.h"

int main() {
  using namespace celect;
  using harness::Table;

  harness::PrintBanner(
      std::cout, "E12a (N sweep, protocol G at k = log N)",
      "Adversary radius 2d with d = log N (G's message budget is "
      "O(N log N)). time must sit above the N/16d floor, and the gap "
      "shows how close G runs to optimal.");
  {
    Table t({"N", "messages", "budget Nd", "time", "floor N/16d",
             "time/floor", "mean_degree"});
    for (std::uint32_t n = 64; n <= 2048; n *= 2) {
      std::uint32_t d = proto::nosod::MessageOptimalK(n);
      auto r = adversary::RunLowerBoundExperiment(
          proto::nosod::MakeProtocolG(d), n, /*k=*/2 * d);
      t.AddRow({Table::Int(n), Table::Int(r.messages),
                Table::Num(r.message_budget, 0),
                Table::Num(r.elapsed_time),
                Table::Num(r.theoretical_floor),
                Table::Num(r.elapsed_time / r.theoretical_floor),
                Table::Num(r.mean_degree)});
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E12b (budget sweep at N = 512)",
      "Larger per-node budgets d lower the floor N/16d and let the "
      "protocol finish faster — the message/time tradeoff the theorem "
      "quantifies.");
  {
    const std::uint32_t n = 512;
    Table t({"d (=k/2)", "floor N/16d", "G(k=2d) time", "messages"});
    for (std::uint32_t d : {2u, 4u, 8u, 16u, 32u, 64u}) {
      auto r = adversary::RunLowerBoundExperiment(
          proto::nosod::MakeProtocolG(2 * d), n, /*k=*/2 * d);
      t.AddRow({Table::Int(d), Table::Num(r.theoretical_floor),
                Table::Num(r.elapsed_time), Table::Int(r.messages)});
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E12c (locality under the adversary, protocol E)",
      "The Up-first adversary keeps communication confined to small "
      "identity neighbourhoods — the order-equivalence mechanism.");
  {
    Table t({"N", "mean_degree", "max identity distance", "time"});
    for (std::uint32_t n : {64u, 128u, 256u}) {
      auto r = adversary::RunLowerBoundExperiment(
          proto::nosod::MakeProtocolE(), n, /*k=*/4);
      t.AddRow({Table::Int(n), Table::Num(r.mean_degree),
                Table::Num(r.max_bound_distance, 0),
                Table::Num(r.elapsed_time)});
    }
    t.Print(std::cout);
  }
  return 0;
}
