// E12 — the §5 lower bound (Theorem 5.1): any comparison-based protocol
// sending < Nd messages needs >= N/16d time. Runs the message-optimal
// protocol G against the constructive adversary (Up-first adaptive port
// binding + unit delays + simultaneous wakeup) and reports achieved time
// against the theoretical floor, plus the locality diagnostics the
// proof's order-equivalence argument relies on.
//
//   --threads=N   run the adversary experiments concurrently
//   --json=PATH   write the BENCH_E12.json document
//   --quick       shrink the sweeps for CI smoke runs
#include <iostream>

#include "celect/adversary/lower_bound.h"
#include "celect/harness/bench_json.h"
#include "celect/harness/sweep.h"
#include "celect/harness/table.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/proto/nosod/protocol_g.h"

namespace {

celect::harness::BenchRow LowerBoundRow(
    const std::string& protocol, std::uint32_t n,
    const celect::adversary::LowerBoundResult& r) {
  celect::harness::BenchRow row;
  row.protocol = protocol;
  row.n = n;
  row.seed_count = 1;
  row.messages.Add(static_cast<double>(r.messages));
  row.time.Add(r.elapsed_time);
  row.extra.emplace_back("message_budget", r.message_budget);
  row.extra.emplace_back("theoretical_floor", r.theoretical_floor);
  row.extra.emplace_back("mean_degree", r.mean_degree);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace celect;
  using harness::Table;

  harness::BenchEnv env(argc, argv, "E12");

  harness::PrintBanner(
      std::cout, "E12a (N sweep, protocol G at k = log N)",
      "Adversary radius 2d with d = log N (G's message budget is "
      "O(N log N)). time must sit above the N/16d floor, and the gap "
      "shows how close G runs to optimal.");
  {
    const std::uint32_t n_max = env.quick() ? 256 : env.EffectiveNMax(2048);
    std::vector<std::uint32_t> sizes;
    for (std::uint32_t n = 64; n <= n_max; n *= 2) sizes.push_back(n);
    std::vector<adversary::LowerBoundResult> results(sizes.size());
    harness::ParallelFor(sizes.size(), env.threads(), [&](std::size_t i) {
      std::uint32_t d = proto::nosod::MessageOptimalK(sizes[i]);
      results[i] = adversary::RunLowerBoundExperiment(
          proto::nosod::MakeProtocolG(d), sizes[i], /*k=*/2 * d);
    });
    Table t({"N", "messages", "budget Nd", "time", "floor N/16d",
             "time/floor", "mean_degree"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      t.AddRow({Table::Int(sizes[i]), Table::Int(r.messages),
                Table::Num(r.message_budget, 0),
                Table::Num(r.elapsed_time),
                Table::Num(r.theoretical_floor),
                Table::Num(r.elapsed_time / r.theoretical_floor),
                Table::Num(r.mean_degree)});
      env.reporter().Add(LowerBoundRow("G(k=logN)/adversary", sizes[i], r));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E12b (budget sweep at N = 512)",
      "Larger per-node budgets d lower the floor N/16d and let the "
      "protocol finish faster — the message/time tradeoff the theorem "
      "quantifies.");
  {
    const std::uint32_t n = env.quick() ? 128 : 512;
    std::vector<std::uint32_t> ds = {2u, 4u, 8u, 16u, 32u, 64u};
    if (env.quick()) ds = {2u, 8u, 32u};
    std::vector<adversary::LowerBoundResult> results(ds.size());
    harness::ParallelFor(ds.size(), env.threads(), [&](std::size_t i) {
      results[i] = adversary::RunLowerBoundExperiment(
          proto::nosod::MakeProtocolG(2 * ds[i]), n, /*k=*/2 * ds[i]);
    });
    Table t({"d (=k/2)", "floor N/16d", "G(k=2d) time", "messages"});
    for (std::size_t i = 0; i < ds.size(); ++i) {
      const auto& r = results[i];
      t.AddRow({Table::Int(ds[i]), Table::Num(r.theoretical_floor),
                Table::Num(r.elapsed_time), Table::Int(r.messages)});
      env.reporter().Add(LowerBoundRow(
          "G(k=" + std::to_string(2 * ds[i]) + ")/adversary", n, r));
    }
    t.Print(std::cout);
  }

  harness::PrintBanner(
      std::cout, "E12c (locality under the adversary, protocol E)",
      "The Up-first adversary keeps communication confined to small "
      "identity neighbourhoods — the order-equivalence mechanism.");
  {
    std::vector<std::uint32_t> sizes = {64u, 128u, 256u};
    if (env.quick()) sizes = {64u, 128u};
    std::vector<adversary::LowerBoundResult> results(sizes.size());
    harness::ParallelFor(sizes.size(), env.threads(), [&](std::size_t i) {
      results[i] = adversary::RunLowerBoundExperiment(
          proto::nosod::MakeProtocolE(), sizes[i], /*k=*/4);
    });
    Table t({"N", "mean_degree", "max identity distance", "time"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const auto& r = results[i];
      t.AddRow({Table::Int(sizes[i]), Table::Num(r.mean_degree),
                Table::Num(r.max_bound_distance, 0),
                Table::Num(r.elapsed_time)});
      auto row = LowerBoundRow("E/adversary", sizes[i], r);
      row.extra.emplace_back("max_bound_distance", r.max_bound_distance);
      env.reporter().Add(std::move(row));
    }
    t.Print(std::cout);
  }
  return env.Finish();
}
