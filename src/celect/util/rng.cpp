#include "celect/util/rng.h"

#include "celect/util/check.h"

namespace celect {

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.Next();
  // All-zero state is the one invalid state for xoshiro; splitmix64 output
  // of four consecutive calls is never all zero, but guard anyway.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

Rng Rng::Split(std::uint64_t stream_index) const {
  // Mix the current state with the stream index through splitmix64 to
  // derive a decorrelated child seed.
  SplitMix64 sm(state_[0] ^ Rotl(state_[2], 17) ^
                (stream_index * 0x9e3779b97f4a7c15ULL + 0x1234'5678ULL));
  return Rng(sm.Next());
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  CELECT_CHECK(bound > 0) << "NextBelow requires a positive bound";
  // Lemire's rejection method: unbiased and fast.
  std::uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  CELECT_CHECK(lo <= hi) << "NextInRange requires lo <= hi";
  std::uint64_t span = static_cast<std::uint64_t>(hi) -
                       static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(Next());  // full range
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextPositiveDouble() {
  // (0,1]: complement of [0,1).
  return 1.0 - NextDouble();
}

std::vector<std::uint32_t> Rng::Permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p(n);
  for (std::uint32_t i = 0; i < n; ++i) p[i] = i;
  Shuffle(p);
  return p;
}

}  // namespace celect
