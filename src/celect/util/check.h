// Runtime invariant checking for celect.
//
// CELECT_CHECK is always on (simulator correctness depends on it and the
// cost is negligible next to event-queue work); CELECT_DCHECK compiles out
// in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace celect {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr,
                                     const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg.empty() ? "" : " — ", msg.c_str());
  std::abort();
}

namespace detail {
// Builds the optional streamed message for a failed check lazily.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  template <typename T>
  CheckMessageBuilder& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }
  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace celect

#define CELECT_CHECK(cond)                                         \
  if (cond) {                                                      \
  } else                                                           \
    ::celect::detail::CheckMessageBuilder(__FILE__, __LINE__, #cond)

#ifdef NDEBUG
// The condition is typechecked but never evaluated (sizeof on an
// unevaluated operand), so variables referenced only in DCHECKs still
// count as used and release builds stay -Wunused-clean.
#define CELECT_DCHECK(cond)                                  \
  if (sizeof(decltype(static_cast<bool>(cond))) != 0) {      \
  } else                                                     \
    ::celect::detail::CheckMessageBuilder(__FILE__, __LINE__, #cond)
#else
#define CELECT_DCHECK(cond) CELECT_CHECK(cond)
#endif
