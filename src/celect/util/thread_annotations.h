// Clang thread-safety-analysis annotations (-Wthread-safety).
//
// Wrappers so annotated code still compiles under gcc (which has no
// such attributes): the macros expand to nothing unless the compiler
// is clang and knows the attribute. Annotate every mutex-guarded
// member with CELECT_GUARDED_BY and every must-hold function with
// CELECT_REQUIRES; the CI static-analysis job compiles with clang and
// -Wthread-safety promoted to an error.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define CELECT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef CELECT_THREAD_ANNOTATION
#define CELECT_THREAD_ANNOTATION(x)
#endif

// A type that acts as a lock (std::mutex is pre-annotated by libc++;
// use this for home-grown capabilities).
#define CELECT_CAPABILITY(x) CELECT_THREAD_ANNOTATION(capability(x))

// Data member readable/writable only while `x` is held.
#define CELECT_GUARDED_BY(x) CELECT_THREAD_ANNOTATION(guarded_by(x))

// Pointer member whose pointee is guarded by `x`.
#define CELECT_PT_GUARDED_BY(x) CELECT_THREAD_ANNOTATION(pt_guarded_by(x))

// Caller must hold the given capabilities.
#define CELECT_REQUIRES(...) \
  CELECT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// Function acquires / releases the given capabilities.
#define CELECT_ACQUIRE(...) \
  CELECT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CELECT_RELEASE(...) \
  CELECT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// Caller must NOT hold the given capabilities (deadlock guard).
#define CELECT_EXCLUDES(...) \
  CELECT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for functions the analysis cannot model.
#define CELECT_NO_THREAD_SAFETY_ANALYSIS \
  CELECT_THREAD_ANNOTATION(no_thread_safety_analysis)
