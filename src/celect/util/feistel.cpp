#include "celect/util/feistel.h"

#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect {

FeistelPermutation::FeistelPermutation(std::uint64_t domain,
                                       std::uint64_t key)
    : domain_(domain) {
  CELECT_CHECK(domain >= 1);
  // Pick the smallest even bit-width 2*b with 2^(2b) >= domain.
  half_bits_ = 1;
  while ((1ULL << (2 * half_bits_)) < domain) ++half_bits_;
  CELECT_CHECK(half_bits_ <= 31);
  half_mask_ = (1ULL << half_bits_) - 1;
  pow2_ = 1ULL << (2 * half_bits_);
  SplitMix64 sm(key);
  for (auto& k : keys_) k = sm.Next();
}

}  // namespace celect
