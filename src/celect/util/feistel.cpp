#include "celect/util/feistel.h"

#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect {

FeistelPermutation::FeistelPermutation(std::uint64_t domain,
                                       std::uint64_t key)
    : domain_(domain) {
  CELECT_CHECK(domain >= 1);
  // Pick the smallest even bit-width 2*b with 2^(2b) >= domain.
  half_bits_ = 1;
  while ((1ULL << (2 * half_bits_)) < domain) ++half_bits_;
  CELECT_CHECK(half_bits_ <= 31);
  half_mask_ = (1ULL << half_bits_) - 1;
  pow2_ = 1ULL << (2 * half_bits_);
  SplitMix64 sm(key);
  for (auto& k : keys_) k = sm.Next();
}

std::uint32_t FeistelPermutation::RoundFn(std::uint32_t half,
                                          int round) const {
  std::uint64_t z = half + keys_[round];
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z & half_mask_);
}

std::uint64_t FeistelPermutation::EncryptOnce(std::uint64_t x) const {
  std::uint32_t left = static_cast<std::uint32_t>(x >> half_bits_);
  std::uint32_t right = static_cast<std::uint32_t>(x & half_mask_);
  for (int r = 0; r < 4; ++r) {
    std::uint32_t next =
        static_cast<std::uint32_t>((left ^ RoundFn(right, r)) & half_mask_);
    left = right;
    right = next;
  }
  return (static_cast<std::uint64_t>(left) << half_bits_) | right;
}

std::uint64_t FeistelPermutation::DecryptOnce(std::uint64_t y) const {
  std::uint32_t left = static_cast<std::uint32_t>(y >> half_bits_);
  std::uint32_t right = static_cast<std::uint32_t>(y & half_mask_);
  for (int r = 3; r >= 0; --r) {
    std::uint32_t prev =
        static_cast<std::uint32_t>((right ^ RoundFn(left, r)) & half_mask_);
    right = left;
    left = prev;
  }
  return (static_cast<std::uint64_t>(left) << half_bits_) | right;
}

std::uint64_t FeistelPermutation::Encrypt(std::uint64_t x) const {
  CELECT_DCHECK(x < domain_);
  // Cycle-walk until the value lands back inside the domain. Expected
  // iterations: pow2_/domain_ < 4.
  std::uint64_t y = EncryptOnce(x);
  while (y >= domain_) y = EncryptOnce(y);
  return y;
}

std::uint64_t FeistelPermutation::Decrypt(std::uint64_t y) const {
  CELECT_DCHECK(y < domain_);
  std::uint64_t x = DecryptOnce(y);
  while (x >= domain_) x = DecryptOnce(x);
  return x;
}

}  // namespace celect
