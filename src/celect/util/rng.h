// Deterministic, seedable pseudo-random number generation.
//
// The simulator must be reproducible across platforms and standard-library
// versions, so we implement our own generators instead of relying on
// std::mt19937 + std::uniform_int_distribution (whose output is not
// specified portably for distributions). xoshiro256** is the workhorse;
// splitmix64 seeds it and derives independent child streams.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace celect {

// SplitMix64: tiny, solid generator used for seeding and stream splitting.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256**: fast all-purpose 64-bit generator (Blackman & Vigna).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed'cafe'f00d'd00dULL);

  // Derives an independent child stream; children with distinct indices
  // from the same parent are statistically independent.
  Rng Split(std::uint64_t stream_index) const;

  std::uint64_t Next();

  // Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1) with 53 bits of entropy.
  double NextDouble();

  // Uniform double in (0, 1]: never returns zero (link delays are positive).
  double NextPositiveDouble();

  bool NextBool() { return (Next() >> 63) != 0; }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // A random permutation of {0, 1, ..., n-1}.
  std::vector<std::uint32_t> Permutation(std::uint32_t n);

  // UniformRandomBitGenerator interface (for interop with <algorithm>).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace celect
