#include "celect/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "celect/util/check.h"

namespace celect {

void Summary::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Summary::Merge(const Summary& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  double n1 = static_cast<double>(count_);
  double n2 = static_cast<double>(other.count_);
  double delta = other.mean_ - mean_;
  double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " sd=" << stddev()
     << " min=" << min() << " max=" << max();
  return os.str();
}

PowerLawFit FitPowerLaw(const std::vector<double>& xs,
                        const std::vector<double>& ys) {
  CELECT_CHECK(xs.size() == ys.size());
  CELECT_CHECK(xs.size() >= 2) << "need at least two points to fit";
  std::size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    CELECT_CHECK(xs[i] > 0 && ys[i] > 0) << "power-law fit needs positives";
    double lx = std::log(xs[i]);
    double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  double dn = static_cast<double>(n);
  double denom = dn * sxx - sx * sx;
  PowerLawFit fit;
  // Degenerate abscissa (all xs equal): no slope is identifiable. Leave
  // valid = false so callers can tell this apart from a real fit.
  if (denom == 0) return fit;
  fit.valid = true;
  fit.alpha = (dn * sxy - sx * sy) / denom;
  fit.constant = std::exp((sy - fit.alpha * sx) / dn);
  double ss_tot = syy - sy * sy / dn;
  double ss_res = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double pred = std::log(fit.constant) + fit.alpha * std::log(xs[i]);
    double resid = std::log(ys[i]) - pred;
    ss_res += resid * resid;
  }
  if (ss_tot > 0) {
    fit.r_squared = 1.0 - ss_res / ss_tot;
  } else {
    // Zero total variance: the fit explains the data only if the
    // residuals are zero too (up to rounding); don't report a perfect
    // r^2 just because the denominator vanished.
    fit.r_squared = ss_res <= 1e-12 ? 1.0 : 0.0;
  }
  return fit;
}

double FitLogSlope(const std::vector<double>& xs,
                   const std::vector<double>& ys) {
  CELECT_CHECK(xs.size() == ys.size());
  CELECT_CHECK(xs.size() >= 2);
  std::size_t n = xs.size();
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    CELECT_CHECK(xs[i] > 0);
    double lx = std::log2(xs[i]);
    sx += lx;
    sy += ys[i];
    sxx += lx * lx;
    sxy += lx * ys[i];
  }
  double dn = static_cast<double>(n);
  double denom = dn * sxx - sx * sx;
  if (denom == 0) return 0.0;
  return (dn * sxy - sx * sy) / denom;
}

double BoundConstant(const std::vector<double>& xs,
                     const std::vector<double>& ys, double (*f)(double)) {
  CELECT_CHECK(xs.size() == ys.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double b = f(xs[i]);
    CELECT_CHECK(b > 0) << "bound function must be positive";
    worst = std::max(worst, ys[i] / b);
  }
  return worst;
}

double Percentile(std::vector<double> values, double p) {
  CELECT_CHECK(!values.empty());
  CELECT_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace celect
