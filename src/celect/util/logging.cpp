#include "celect/util/logging.h"

#include <cstdio>

namespace celect {

namespace {
LogLevel g_min_level = LogLevel::kWarn;
}  // namespace

void SetLogLevel(LogLevel level) { g_min_level = level; }
LogLevel GetLogLevel() { return g_min_level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line)
    : enabled_(level >= g_min_level), level_(level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LogLevelName(level) << " " << base << ":" << line
            << "] ";
  }
}

LogLine::~LogLine() {
  if (enabled_) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
  }
}

}  // namespace detail
}  // namespace celect
