// Minimal leveled logging. Off by default so tests and benches stay quiet;
// examples turn it on for narrative output.
#pragma once

#include <sstream>
#include <string>

namespace celect {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

const char* LogLevelName(LogLevel level);

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace celect

#define CELECT_LOG(level)                                      \
  ::celect::detail::LogLine(::celect::LogLevel::k##level,      \
                            __FILE__, __LINE__)
