// Tiny command-line flag parser for the example binaries.
//
// Supports --name=value and --name value forms, typed accessors with
// defaults, and a generated --help text. Deliberately minimal: examples
// need a handful of knobs (protocol, N, k, seed, delay model), not a full
// flags library.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace celect {

class Flags {
 public:
  // Parses argv; unknown positional arguments are collected in
  // positional(). Exits with a message on malformed input.
  Flags(int argc, const char* const* argv);

  // Registers a flag for --help and returns its value (or fallback).
  std::string GetString(const std::string& name, const std::string& fallback,
                        const std::string& help);
  std::int64_t GetInt(const std::string& name, std::int64_t fallback,
                      const std::string& help);
  double GetDouble(const std::string& name, double fallback,
                   const std::string& help);
  bool GetBool(const std::string& name, bool fallback,
               const std::string& help);

  bool Has(const std::string& name) const;
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_name_; }

  // True when --help was passed; callers should print HelpText and exit.
  bool help_requested() const { return help_requested_; }
  std::string HelpText() const;

 private:
  struct HelpEntry {
    std::string name;
    std::string fallback;
    std::string help;
  };

  std::optional<std::string> Raw(const std::string& name) const;

  std::string program_name_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::vector<HelpEntry> help_entries_;
  bool help_requested_ = false;
};

}  // namespace celect
