// Streaming summary statistics and least-squares growth-rate fitting.
//
// Bench harnesses use Summary to aggregate repeated trials and
// FitPowerLaw / FitLogSlope to check the growth *shape* of measured
// message/time curves against the paper's asymptotic claims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace celect {

// Welford-style streaming mean/variance plus min/max.
class Summary {
 public:
  void Add(double x);
  void Merge(const Summary& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  // Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return mean_ * static_cast<double>(count_); }

  std::string ToString() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Result of fitting y = c * x^alpha by least squares in log-log space.
struct PowerLawFit {
  // False when the input was degenerate (all xs equal: the slope is
  // undefined). alpha/constant/r_squared are meaningless then.
  bool valid = false;
  double alpha = 0.0;      // fitted exponent
  double constant = 0.0;   // fitted c
  double r_squared = 0.0;  // goodness of fit in log-log space
};

// Fits y = c * x^alpha. Requires xs.size() == ys.size() >= 2 and all
// values strictly positive. Check `valid` before using the fit: inputs
// whose xs are all equal cannot determine an exponent. r_squared is
// 1 - ss_res/ss_tot; when the ys carry no variance (ss_tot == 0) it is
// 1 only if the residuals are also (numerically) zero, else 0.
PowerLawFit FitPowerLaw(const std::vector<double>& xs,
                        const std::vector<double>& ys);

// Fits y = a + b * log2(x); returns b. Used to recognise O(log N) curves.
double FitLogSlope(const std::vector<double>& xs,
                   const std::vector<double>& ys);

// Max over i of ys[i]/f(xs[i]) — the empirical constant for a claimed
// bound f. Requires equal sizes and f(x) > 0.
double BoundConstant(const std::vector<double>& xs,
                     const std::vector<double>& ys, double (*f)(double));

// Simple percentile over a copy of the data (p in [0,100]).
double Percentile(std::vector<double> values, double p);

}  // namespace celect
