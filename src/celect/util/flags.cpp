#include "celect/util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace celect {

namespace {
[[noreturn]] void Die(const std::string& msg) {
  std::fprintf(stderr, "flag error: %s\n", msg.c_str());
  // Flags are parsed once on the main thread before any pool spins up.
  std::exit(2);  // NOLINT(concurrency-mt-unsafe)
}
}  // namespace

Flags::Flags(int argc, const char* const* argv) {
  program_name_ = argc > 0 ? argv[0] : "program";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      // Bare flag: treated as boolean true.
      values_[body] = "true";
    }
  }
}

std::optional<std::string> Flags::Raw(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& fallback,
                             const std::string& help) {
  help_entries_.push_back({name, fallback, help});
  return Raw(name).value_or(fallback);
}

std::int64_t Flags::GetInt(const std::string& name, std::int64_t fallback,
                           const std::string& help) {
  help_entries_.push_back({name, std::to_string(fallback), help});
  auto raw = Raw(name);
  if (!raw) return fallback;
  char* end = nullptr;
  long long v = std::strtoll(raw->c_str(), &end, 10);
  if (end == raw->c_str() || *end != '\0') {
    Die("--" + name + " expects an integer, got '" + *raw + "'");
  }
  return v;
}

double Flags::GetDouble(const std::string& name, double fallback,
                        const std::string& help) {
  help_entries_.push_back({name, std::to_string(fallback), help});
  auto raw = Raw(name);
  if (!raw) return fallback;
  char* end = nullptr;
  double v = std::strtod(raw->c_str(), &end);
  if (end == raw->c_str() || *end != '\0') {
    Die("--" + name + " expects a number, got '" + *raw + "'");
  }
  return v;
}

bool Flags::GetBool(const std::string& name, bool fallback,
                    const std::string& help) {
  help_entries_.push_back({name, fallback ? "true" : "false", help});
  auto raw = Raw(name);
  if (!raw) return fallback;
  if (*raw == "true" || *raw == "1" || *raw == "yes") return true;
  if (*raw == "false" || *raw == "0" || *raw == "no") return false;
  Die("--" + name + " expects a boolean, got '" + *raw + "'");
}

std::string Flags::HelpText() const {
  std::ostringstream os;
  os << "usage: " << program_name_ << " [flags]\n";
  for (const auto& e : help_entries_) {
    os << "  --" << e.name << " (default: " << e.fallback << ")\n      "
       << e.help << "\n";
  }
  return os.str();
}

}  // namespace celect
