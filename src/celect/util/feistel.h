// Format-preserving pseudo-random permutation over [0, domain).
//
// A 4-round Feistel network over a power-of-two domain, combined with
// cycle-walking to restrict it to an arbitrary domain size. Gives each
// node a random-looking, invertible port→neighbour permutation in O(1)
// memory — the whole-network table would be Θ(N²) and dominate memory on
// large sweeps.
#pragma once

#include <cstdint>

#include "celect/util/check.h"

namespace celect {

class FeistelPermutation {
 public:
  // domain must be >= 1. key selects the permutation.
  FeistelPermutation(std::uint64_t domain, std::uint64_t key);

  std::uint64_t domain() const { return domain_; }

  // Bijective map [0, domain) -> [0, domain). Defined inline: every
  // simulated send resolves two permutations, and the rounds are pure
  // register arithmetic that call overhead would dominate.
  std::uint64_t Encrypt(std::uint64_t x) const {
    CELECT_DCHECK(x < domain_);
    // Cycle-walk until the value lands back inside the domain. Expected
    // iterations: pow2_/domain_ < 4.
    std::uint64_t y = EncryptOnce(x);
    while (y >= domain_) y = EncryptOnce(y);
    return y;
  }
  // Inverse of Encrypt.
  std::uint64_t Decrypt(std::uint64_t y) const {
    CELECT_DCHECK(y < domain_);
    std::uint64_t x = DecryptOnce(y);
    while (x >= domain_) x = DecryptOnce(x);
    return x;
  }

 private:
  std::uint64_t EncryptOnce(std::uint64_t x) const {
    std::uint32_t left = static_cast<std::uint32_t>(x >> half_bits_);
    std::uint32_t right = static_cast<std::uint32_t>(x & half_mask_);
    for (int r = 0; r < 4; ++r) {
      std::uint32_t next =
          static_cast<std::uint32_t>((left ^ RoundFn(right, r)) & half_mask_);
      left = right;
      right = next;
    }
    return (static_cast<std::uint64_t>(left) << half_bits_) | right;
  }
  std::uint64_t DecryptOnce(std::uint64_t y) const {
    std::uint32_t left = static_cast<std::uint32_t>(y >> half_bits_);
    std::uint32_t right = static_cast<std::uint32_t>(y & half_mask_);
    for (int r = 3; r >= 0; --r) {
      std::uint32_t prev =
          static_cast<std::uint32_t>((right ^ RoundFn(left, r)) & half_mask_);
      right = left;
      left = prev;
    }
    return (static_cast<std::uint64_t>(left) << half_bits_) | right;
  }
  std::uint32_t RoundFn(std::uint32_t half, int round) const {
    std::uint64_t z = half + keys_[round];
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<std::uint32_t>(z & half_mask_);
  }

  std::uint64_t domain_;
  int half_bits_;          // bits per Feistel half
  std::uint64_t half_mask_;
  std::uint64_t pow2_;     // 2^(2*half_bits_) >= domain
  std::uint64_t keys_[4];
};

}  // namespace celect
