// Format-preserving pseudo-random permutation over [0, domain).
//
// A 4-round Feistel network over a power-of-two domain, combined with
// cycle-walking to restrict it to an arbitrary domain size. Gives each
// node a random-looking, invertible port→neighbour permutation in O(1)
// memory — the whole-network table would be Θ(N²) and dominate memory on
// large sweeps.
#pragma once

#include <cstdint>

namespace celect {

class FeistelPermutation {
 public:
  // domain must be >= 1. key selects the permutation.
  FeistelPermutation(std::uint64_t domain, std::uint64_t key);

  std::uint64_t domain() const { return domain_; }

  // Bijective map [0, domain) -> [0, domain).
  std::uint64_t Encrypt(std::uint64_t x) const;
  // Inverse of Encrypt.
  std::uint64_t Decrypt(std::uint64_t y) const;

 private:
  std::uint64_t EncryptOnce(std::uint64_t x) const;
  std::uint64_t DecryptOnce(std::uint64_t y) const;
  std::uint32_t RoundFn(std::uint32_t half, int round) const;

  std::uint64_t domain_;
  int half_bits_;          // bits per Feistel half
  std::uint64_t half_mask_;
  std::uint64_t pow2_;     // 2^(2*half_bits_) >= domain
  std::uint64_t keys_[4];
};

}  // namespace celect
