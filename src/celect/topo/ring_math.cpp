#include "celect/topo/ring_math.h"

#include "celect/util/check.h"

namespace celect::topo {

RingMath::RingMath(std::uint32_t n) : n_(n) {
  CELECT_CHECK(n >= 2) << "ring needs at least two nodes";
}

Position RingMath::At(Position pos, Distance d) const {
  CELECT_DCHECK(pos < n_);
  return static_cast<Position>(
      (static_cast<std::uint64_t>(pos) + d) % n_);
}

Distance RingMath::DistanceBetween(Position from, Position to) const {
  CELECT_DCHECK(from < n_ && to < n_);
  return to >= from ? to - from : n_ - (from - to);
}

std::vector<Position> RingMath::Segment(Position pos, Distance lo,
                                        Distance hi) const {
  CELECT_CHECK(lo <= hi);
  CELECT_CHECK(hi - lo + 1 <= n_) << "segment longer than the ring";
  std::vector<Position> out;
  out.reserve(hi - lo + 1);
  for (Distance d = lo; d <= hi; ++d) out.push_back(At(pos, d));
  return out;
}

std::vector<Position> RingMath::Strided(Position pos,
                                        Distance stride) const {
  CELECT_CHECK(stride > 0);
  CELECT_CHECK(Divides(stride)) << "stride " << stride
                                << " must divide N=" << n_;
  std::vector<Position> out;
  out.reserve(n_ / stride - 1);
  for (Distance d = stride; d <= n_ - stride; d += stride) {
    out.push_back(At(pos, d));
  }
  return out;
}

std::vector<Position> RingMath::ResidueClass(Position ref, Distance j,
                                             Distance k) const {
  CELECT_CHECK(k > 0 && Divides(k));
  CELECT_CHECK(j < k);
  std::vector<Position> out;
  out.reserve(n_ / k);
  for (Distance d = j; d < n_; d += k) out.push_back(At(ref, d));
  return out;
}

bool RingMath::Divides(Distance stride) const {
  return stride > 0 && n_ % stride == 0;
}

std::uint32_t RingMath::FloorPow2(std::uint32_t x) {
  CELECT_CHECK(x >= 1);
  std::uint32_t p = 1;
  while (p <= x / 2) p *= 2;
  return p;
}

std::uint32_t RingMath::CeilPow2(std::uint32_t x) {
  std::uint32_t p = FloorPow2(x);
  return p == x ? p : p * 2;
}

std::uint32_t RingMath::FloorLog2(std::uint32_t x) {
  CELECT_CHECK(x >= 1);
  std::uint32_t l = 0;
  while (x > 1) {
    x /= 2;
    ++l;
  }
  return l;
}

std::uint32_t RingMath::CeilLog2(std::uint32_t x) {
  CELECT_CHECK(x >= 1);
  return x == 1 ? 0 : FloorLog2(x - 1) + 1;
}

std::uint32_t RingMath::ProtocolCStride(std::uint32_t n) {
  CELECT_CHECK(n >= 4);
  CELECT_CHECK((n & (n - 1)) == 0) << "protocol C assumes N = 2^r";
  std::uint32_t log_n = FloorLog2(n);
  std::uint32_t log_log = CeilLog2(log_n);
  std::uint32_t divisor = 1u << log_log;  // 2^⌈log log N⌉ ≈ log N
  CELECT_CHECK(divisor < n);
  return n / divisor;  // k = N / 2^⌈log log N⌉, a power of two
}

}  // namespace celect::topo
