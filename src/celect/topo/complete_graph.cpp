#include "celect/topo/complete_graph.h"

#include <sstream>
#include <vector>

#include "celect/util/check.h"

namespace celect::topo {

using celect::sim::NodeId;
using celect::sim::Port;

CompleteGraph::CompleteGraph(std::uint32_t n) : ring_(n) {}

std::uint64_t CompleteGraph::edge_count() const {
  std::uint64_t n = ring_.n();
  return n * (n - 1) / 2;
}

std::vector<std::pair<Position, Position>> CompleteGraph::Edges() const {
  std::vector<std::pair<Position, Position>> edges;
  edges.reserve(edge_count());
  for (Position u = 0; u < ring_.n(); ++u) {
    for (Position v = u + 1; v < ring_.n(); ++v) {
      edges.emplace_back(u, v);
    }
  }
  return edges;
}

std::string CompleteGraph::ValidateSenseOfDirection(
    celect::sim::PortMapper& mapper) const {
  std::ostringstream err;
  const std::uint32_t n = ring_.n();
  if (mapper.n() != n) {
    err << "mapper size " << mapper.n() << " != " << n;
    return err.str();
  }
  if (!mapper.HasSenseOfDirection()) {
    return "mapper does not claim sense of direction";
  }
  for (NodeId u = 0; u < n; ++u) {
    for (Port d = 1; d <= n - 1; ++d) {
      NodeId v = mapper.Resolve(u, d);
      if (v != ring_.At(u, d)) {
        err << "port " << d << " at node " << u << " leads to " << v
            << ", expected " << ring_.At(u, d);
        return err.str();
      }
      Port back = mapper.PortToward(v, u);
      if (back != n - d) {
        err << "complementary label broken: " << u << " -(" << d << ")-> "
            << v << " but return port is " << back << ", expected "
            << (n - d);
        return err.str();
      }
    }
  }
  return "";
}

std::string CompleteGraph::ValidatePortAssignment(
    celect::sim::PortMapper& mapper) const {
  std::ostringstream err;
  const std::uint32_t n = ring_.n();
  for (NodeId u = 0; u < n; ++u) {
    std::vector<bool> reached(n, false);
    for (Port p = 1; p <= n - 1; ++p) {
      NodeId v = mapper.Resolve(u, p);
      if (v >= n || v == u) {
        err << "node " << u << " port " << p << " resolves to invalid " << v;
        return err.str();
      }
      if (reached[v]) {
        err << "node " << u << " reaches " << v << " via two ports";
        return err.str();
      }
      reached[v] = true;
      if (mapper.PortToward(u, v) != p) {
        err << "PortToward(" << u << ", " << v << ") != " << p;
        return err.str();
      }
    }
  }
  return "";
}

std::string CompleteGraph::RenderFigure1(std::uint32_t max_nodes) const {
  std::ostringstream os;
  const std::uint32_t n = ring_.n();
  CELECT_CHECK(n <= max_nodes)
      << "RenderFigure1 is only sensible for small networks";
  os << "Complete network with sense of direction, N=" << n << "\n";
  os << "Hamiltonian cycle: ";
  for (Position p = 0; p < n; ++p) os << p << " -> ";
  os << "0\n";
  for (Position u = 0; u < n; ++u) {
    os << "node " << u << ": ";
    for (Port d = 1; d <= n - 1; ++d) {
      os << "[" << d << "]->" << ring_.At(u, d);
      if (d < n - 1) os << "  ";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace celect::topo
