// Hamiltonian-ring arithmetic for complete networks with sense of
// direction.
//
// Sense of direction (LMW86): the network has a directed Hamiltonian
// cycle, and the edge from node i to the node at distance d along the
// cycle is labelled d at i. The paper writes i[d] for that node and
// i[x..y] for {i[x], ..., i[y]}. All arithmetic is modulo N.
//
// Nodes are addressed here by ring *position* (0..N-1); the mapping from
// position to processor identity lives in CompleteGraph.
#pragma once

#include <cstdint>
#include <vector>

namespace celect::topo {

using Position = std::uint32_t;
using Distance = std::uint32_t;

class RingMath {
 public:
  explicit RingMath(std::uint32_t n);

  std::uint32_t n() const { return n_; }

  // i[d]: position at distance d forward of pos. d may exceed N.
  Position At(Position pos, Distance d) const;

  // Distance from `from` forward to `to` (the label of the edge
  // from→to under sense of direction). 0 iff from == to.
  Distance DistanceBetween(Position from, Position to) const;

  // i[lo..hi]: the hi-lo+1 positions at forward distances lo..hi.
  std::vector<Position> Segment(Position pos, Distance lo,
                                Distance hi) const;

  // {i[stride], i[2*stride], ..., i[N - stride]}: protocol A/C's capture
  // targets. Requires stride to divide N.
  std::vector<Position> Strided(Position pos, Distance stride) const;

  // R_j relative to reference node at position `ref` with stride k:
  // {ref[j + k], ref[j + 2k], ..., ref[j + N - k]} ∪ {ref[j]} — the
  // residue class of positions congruent to ref + j modulo k (paper §3,
  // second phase of protocol C).
  std::vector<Position> ResidueClass(Position ref, Distance j,
                                     Distance k) const;

  // True iff stride divides N (protocol C requires this for the residue
  // partition to be exact).
  bool Divides(Distance stride) const;

  // Largest power of two ≤ x (≥ 1 for x ≥ 1).
  static std::uint32_t FloorPow2(std::uint32_t x);
  // Smallest power of two ≥ x.
  static std::uint32_t CeilPow2(std::uint32_t x);
  // ⌈log2 x⌉ for x ≥ 1.
  static std::uint32_t CeilLog2(std::uint32_t x);
  // ⌊log2 x⌋ for x ≥ 1.
  static std::uint32_t FloorLog2(std::uint32_t x);

  // The stride the paper picks for protocol C: k = N / 2^⌈log log N⌉,
  // computed for power-of-two N (protocol C assumes N = 2^r).
  static std::uint32_t ProtocolCStride(std::uint32_t n);

 private:
  std::uint32_t n_;
};

}  // namespace celect::topo
