// Complete-graph structure and sense-of-direction validation.
//
// Figure 1 of the paper shows a six-node complete network whose edges are
// labelled with Hamiltonian-cycle distances. CompleteGraph provides the
// structural view of such a network — edge enumeration, labelling rules,
// and validators that check a PortMapper really implements a sense of
// direction (used by tests and the E1 bench).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "celect/sim/port_mapper.h"
#include "celect/topo/ring_math.h"

namespace celect::topo {

class CompleteGraph {
 public:
  explicit CompleteGraph(std::uint32_t n);

  std::uint32_t n() const { return ring_.n(); }
  std::uint64_t edge_count() const;
  const RingMath& ring() const { return ring_; }

  // All unordered edges {u, v}, u < v.
  std::vector<std::pair<Position, Position>> Edges() const;

  // Checks that `mapper` is a consistent sense of direction:
  //  (1) port d at u leads to u[d];
  //  (2) complementary labels: if u sees v via port d, v sees u via
  //      port N-d;
  //  (3) ports 1..N-1 at each node reach all other nodes exactly once.
  // Returns an empty string when valid, else a description of the first
  // violation.
  std::string ValidateSenseOfDirection(celect::sim::PortMapper& mapper) const;

  // Checks that `mapper` is any consistent port assignment (bijection per
  // node, symmetric resolution) — holds for random mappers too.
  std::string ValidatePortAssignment(celect::sim::PortMapper& mapper) const;

  // ASCII rendering of the Figure-1 layout: each node with its forward
  // labels (only sensible for small N).
  std::string RenderFigure1(std::uint32_t max_nodes = 12) const;

 private:
  RingMath ring_;
};

}  // namespace celect::topo
