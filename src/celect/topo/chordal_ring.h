// Chordal-ring structure (after Attiya, van Leeuwen, Santoro & Zaks,
// "Efficient elections in chordal ring networks", Algorithmica 1989 —
// reference [ALSZ89] in the paper's introduction).
//
// The paper contrasts two extremes of topological knowledge: a complete
// network with no edge labels needs Ω(N log N) messages, while full
// sense of direction allows O(N). [ALSZ89] showed the middle point: a
// ring with O(log N) labelled chords per node already admits
// O(N)-message election. We model the classic power-of-two chordal
// ring: node p has forward chords to p + 2^s (mod N) for
// s = 0 .. log2(N) - 1, each labelled with its distance. Any forward
// distance decomposes into at most log2(N) chord hops (binary
// decomposition), which is all the routing the coordinator protocol in
// proto/chordal needs.
//
// Requires N = 2^r. The chordal ring embeds in the complete-network
// simulator: protocols simply restrict themselves to chord ports (the
// SoD port mapper already labels port d with distance d), and
// ValidateChordUsage checks a run never used a non-chord edge.
#pragma once

#include <cstdint>
#include <vector>

#include "celect/sim/types.h"

namespace celect::topo {

class ChordalRing {
 public:
  explicit ChordalRing(std::uint32_t n);

  std::uint32_t n() const { return n_; }
  std::uint32_t chords_per_node() const { return log_n_; }

  // Forward chord distances: {1, 2, 4, ..., N/2}.
  const std::vector<std::uint32_t>& chord_distances() const {
    return chords_;
  }

  // True iff distance d is a forward chord (or its reverse N-d; links
  // are bidirectional, and replies travel back over the arrival edge).
  bool IsChordDistance(std::uint32_t d) const;

  // The first hop toward a node `remaining` positions ahead: the
  // largest chord not exceeding it. remaining must be in [1, N-1].
  std::uint32_t FirstHop(std::uint32_t remaining) const;

  // Number of chord hops needed to cover `remaining` (= popcount).
  std::uint32_t HopCount(std::uint32_t remaining) const;

  // Forward distance from position `from` to position `to`.
  std::uint32_t ForwardDistance(std::uint32_t from, std::uint32_t to) const;

 private:
  std::uint32_t n_;
  std::uint32_t log_n_;
  std::vector<std::uint32_t> chords_;
};

}  // namespace celect::topo
