#include "celect/topo/chordal_ring.h"

#include "celect/topo/ring_math.h"
#include "celect/util/check.h"

namespace celect::topo {

ChordalRing::ChordalRing(std::uint32_t n) : n_(n) {
  CELECT_CHECK(n >= 2 && (n & (n - 1)) == 0)
      << "chordal ring assumes N = 2^r";
  log_n_ = RingMath::FloorLog2(n);
  chords_.reserve(log_n_);
  for (std::uint32_t d = 1; d < n; d *= 2) chords_.push_back(d);
}

bool ChordalRing::IsChordDistance(std::uint32_t d) const {
  CELECT_CHECK(d >= 1 && d <= n_ - 1);
  // Forward chord or the reverse label of one (bidirectional links).
  auto is_pow2 = [](std::uint32_t x) { return (x & (x - 1)) == 0; };
  return is_pow2(d) || is_pow2(n_ - d);
}

std::uint32_t ChordalRing::FirstHop(std::uint32_t remaining) const {
  CELECT_CHECK(remaining >= 1 && remaining <= n_ - 1);
  return RingMath::FloorPow2(remaining);
}

std::uint32_t ChordalRing::HopCount(std::uint32_t remaining) const {
  CELECT_CHECK(remaining <= n_ - 1);
  std::uint32_t hops = 0;
  while (remaining) {
    remaining &= remaining - 1;  // clear lowest set bit
    ++hops;
  }
  return hops;
}

std::uint32_t ChordalRing::ForwardDistance(std::uint32_t from,
                                           std::uint32_t to) const {
  CELECT_CHECK(from < n_ && to < n_);
  return to >= from ? to - from : n_ - (from - to);
}

}  // namespace celect::topo
