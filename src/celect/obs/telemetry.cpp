#include "celect/obs/telemetry.h"

#include <algorithm>

namespace celect::obs {

namespace {

// Bucket 0 holds {0}; bucket b >= 1 holds [2^(b-1), 2^b).
std::size_t BucketOf(std::uint64_t v) {
  std::size_t b = 0;
  while (v > 0) {
    ++b;
    v >>= 1;
  }
  return b;
}

}  // namespace

void Histogram::Add(std::uint64_t v) {
  counts_[BucketOf(v)] += 1;
  if (count_ == 0 || v < min_) min_ = v;
  if (v > max_) max_ = v;
  sum_ += v;
  count_ += 1;
}

void Histogram::Merge(const Histogram& o) {
  if (o.count_ == 0) return;
  for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += o.counts_[b];
  if (count_ == 0 || o.min_ < min_) min_ = o.min_;
  max_ = std::max(max_, o.max_);
  sum_ += o.sum_;
  count_ += o.count_;
}

std::optional<Histogram> Histogram::FromParts(
    const std::vector<std::uint64_t>& buckets, std::uint64_t count,
    std::uint64_t sum, std::uint64_t min, std::uint64_t max) {
  if (buckets.size() > kBuckets) return std::nullopt;
  Histogram h;
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    h.counts_[b] = buckets[b];
    total += buckets[b];
  }
  if (total != count) return std::nullopt;
  if (count > 0 && min > max) return std::nullopt;
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = count ? min : 0;
  h.max_ = max;
  return h;
}

std::uint64_t Histogram::ApproxQuantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max_;
  auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen > rank) {
      // Upper bound of bucket b, clamped to the observed max.
      std::uint64_t hi = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
      return std::min(hi, max_);
    }
  }
  return max_;
}

std::size_t Histogram::BucketsUsed() const {
  for (std::size_t b = kBuckets; b > 0; --b) {
    if (counts_[b - 1] > 0) return b;
  }
  return 0;
}

TimeSeries::TimeSeries(std::size_t cap) : cap_(cap < 2 ? 2 : cap) {}

void TimeSeries::Sample(std::int64_t at, std::int64_t value) {
  if (seen_++ % stride_ != 0) return;
  if (points_.size() == cap_) {
    // Thin: keep every other point, double the stride.
    std::size_t w = 0;
    for (std::size_t r = 0; r < points_.size(); r += 2) {
      points_[w++] = points_[r];
    }
    points_.resize(w);
    stride_ *= 2;
    // The sample that triggered the thinning survives only if it still
    // lands on the doubled stride.
    if ((seen_ - 1) % stride_ != 0) return;
  }
  points_.push_back({at, value});
}

void Telemetry::Merge(const Telemetry& o) {
  latency.Merge(o.latency);
  queue_depth.Merge(o.queue_depth);
  capture_width.Merge(o.capture_width);
  election_latency.Merge(o.election_latency);
  if (inflight.samples_seen() == 0) inflight = o.inflight;
}

void TelemetryAccumulator::Merge(const Telemetry& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  merged_.latency.Merge(shard.latency);
  merged_.queue_depth.Merge(shard.queue_depth);
  merged_.capture_width.Merge(shard.capture_width);
  merged_.election_latency.Merge(shard.election_latency);
  ++shards_;
}

Telemetry TelemetryAccumulator::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merged_;
}

std::uint64_t TelemetryAccumulator::shards_merged() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_;
}

}  // namespace celect::obs
