// Cross-process observability shards: the unit a multi-process election
// emits per node incarnation and the reducer that folds shards back
// into one coherent artifact.
//
// A TraceShard bundles everything one PeerNode incarnation knows about
// itself — its causal trace records, its flight-recorder ring (session
// state transitions, retransmits, suspicion episodes), and a metrics
// registry of counters plus associative histograms. Shards serialize to
// a line-oriented text format that embeds the compact trace-record
// format (trace_inspect.h) verbatim, so a shard file is greppable and a
// crashed process's partial flush still parses.
//
// The ShardReducer is order-independent: shards are keyed and sorted by
// (node, epoch) and duplicate flushes of the same incarnation collapse
// to the most complete one, so merging the same shard set in any
// arrival order yields byte-identical output. Histogram merging is
// associative and commutative for the same reason.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "celect/obs/telemetry.h"
#include "celect/sim/trace.h"

namespace celect::obs {

// --- flight recorder ------------------------------------------------

// Session-layer moments worth keeping when a process dies mid-election.
enum class FlightKind : std::uint8_t {
  kSessionStart = 1,   // a: local epoch
  kEstablished = 2,    // a: remote epoch
  kEpochAdopt = 3,     // a: adopted remote epoch (peer restarted)
  kRetransmit = 4,     // a: frame seq, b: scheduled backoff (us)
  kHelloRetry = 5,     // a: retry count so far
  kSuspectBegin = 6,   // a: exhaustion streak that crossed the budget
  kSuspectEnd = 7,     // a: episode duration (us)
  kWindowStall = 8,    // a: packets parked behind a full window
  kResetSent = 9,      // a: local epoch
  kResetReceived = 10, // a: local epoch at receipt
  kVersionMismatch = 11,  // a: peer's wire version
};

// Stable lowercase name ("retransmit"); used in the shard text format.
const char* ToString(FlightKind k);
std::optional<FlightKind> FlightKindFromName(const std::string& name);

struct FlightEvent {
  // Recorder's clock domain (transport Micros); PeerNode::MakeShard
  // rebases to trace ticks so shard timelines share one time axis.
  std::uint64_t at = 0;
  std::uint32_t peer = 0;
  FlightKind kind = FlightKind::kSessionStart;
  std::uint64_t a = 0;  // kind-specific detail (see enum comments)
  std::uint64_t b = 0;
  friend bool operator==(const FlightEvent&, const FlightEvent&) = default;
};

// Bounded ring of FlightEvents. The buffer is allocated once at
// construction and never grows — Note() on the hot path is a store and
// two increments. When full, the oldest events are overwritten; seen()
// minus cap bounds what was lost.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t cap = 1024);

  void Note(std::uint64_t at, std::uint32_t peer, FlightKind kind,
            std::uint64_t a = 0, std::uint64_t b = 0);

  // Retained events, oldest first.
  std::vector<FlightEvent> Snapshot() const;

  std::uint64_t seen() const { return seen_; }
  std::uint64_t dropped() const {
    return seen_ > ring_.size() ? seen_ - ring_.size() : 0;
  }
  std::size_t cap() const { return ring_.size(); }

 private:
  std::uint64_t seen_ = 0;
  std::vector<FlightEvent> ring_;
};

// --- metrics registry -----------------------------------------------

// Named counters + named power-of-two histograms with an associative,
// commutative merge. One registry snapshot is one process's view; the
// supervisor folds registries from every child (latest snapshot per
// incarnation) into cluster-wide totals.
class MetricsRegistry {
 public:
  void AddCounter(const std::string& name, std::uint64_t delta);
  void MergeHistogram(const std::string& name, const Histogram& h);
  void MergeFrom(const MetricsRegistry& o);

  bool Empty() const { return counters_.empty() && histograms_.empty(); }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Single-line, whitespace-free wire form for shipping snapshots over
  // a pipe: "c:name=v,... h:name=count;sum;min;max;b0:b1:...,...".
  // Either section may be absent; an empty registry serializes to "-".
  std::string SerializeCompact() const;
  static std::optional<MetricsRegistry> ParseCompact(
      const std::string& line);

  friend bool operator==(const MetricsRegistry&,
                         const MetricsRegistry&) = default;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

// --- trace shards ---------------------------------------------------

// One node incarnation's observability dump. `complete` is false for
// periodic mid-run flushes (the only shard a SIGKILLed victim leaves
// behind) and true for orderly end-of-run dumps.
struct TraceShard {
  sim::NodeId node = 0;
  std::uint64_t epoch = 0;  // transport epoch: distinguishes incarnations
  bool complete = false;
  std::uint64_t dropped = 0;  // trace records discarded at the cap
  std::string label;
  std::vector<FlightEvent> flight;
  MetricsRegistry metrics;
  std::vector<sim::TraceRecord> records;
};

std::string SerializeShard(const TraceShard& shard);

// Parses one or more concatenated shards (a merged file is just the
// canonical concatenation). nullopt on malformed input, with a
// line-numbered message in *error.
std::optional<std::vector<TraceShard>> ParseShards(const std::string& text,
                                                   std::string* error);

// Order-independent shard merge. Add() in any order; Merged() is sorted
// by (node, epoch) with duplicate incarnation flushes collapsed to the
// one with the most records (a later flush strictly extends an earlier
// one). SerializeMerged() is therefore byte-identical for any arrival
// order of the same shard set.
class ShardReducer {
 public:
  void Add(TraceShard shard);

  const std::vector<TraceShard>& Merged() const;
  std::string SerializeMerged() const;
  // Cluster-wide fold of every merged shard's registry.
  MetricsRegistry MergedMetrics() const;

  std::size_t added() const { return added_; }

 private:
  std::size_t added_ = 0;
  mutable bool sorted_ = true;
  mutable std::vector<TraceShard> shards_;
};

// --- cross-process validation ---------------------------------------

struct ShardCheckOptions {
  // Assert per-session FIFO: for every (sender incarnation, receiver
  // incarnation) pair, matched sends are delivered in send order. The
  // reliable session guarantees this even over lossy, reordering UDP.
  bool expect_fifo = true;
};

// Semantic validation of a merged shard set:
//   - per-shard Lamport monotonicity (an incarnation restarts at 0, so
//     clocks are checked per shard, never across shards of one node),
//   - global mid uniqueness (each wire mid minted by exactly one send
//     across all shards),
//   - the cross-process join rule (a delivery's clock exceeds the clock
//     carried by the matching send in the sender's shard),
//   - per-session FIFO when opted in,
//   - orphan deliveries (no shard contains the send) are tolerated only
//     when some shard of the sending node is incomplete — a SIGKILLed
//     sender's unflushed tail is the one legitimate gap. Under SimNet
//     every shard is complete, so tolerance is zero.
// Returns human-readable problems; empty means the merged trace is
// coherent.
std::vector<std::string> CheckShards(const std::vector<TraceShard>& shards,
                                     const ShardCheckOptions& opts = {});

}  // namespace celect::obs
