#include "celect/obs/trace_export.h"

#include <fstream>
#include <set>
#include <sstream>

#include "celect/obs/phase.h"
#include "celect/util/logging.h"

namespace celect::obs {

namespace {

using sim::TraceRecord;

// Minimal JSON string escaping — names here are generated from enums and
// integers, but the process label is caller-supplied.
std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  out += '"';
  return out;
}

// The shared prefix of every event: name, phase letter, pid/tid/ts.
void Open(std::ostringstream& os, const std::string& name, char ph,
          sim::NodeId node, std::int64_t ts) {
  os << "{\"name\": " << Quoted(name) << ", \"ph\": \"" << ph
     << "\", \"pid\": 1, \"tid\": " << node << ", \"ts\": " << ts;
}

void Args(std::ostringstream& os, const TraceRecord& r) {
  os << ", \"args\": {\"seq\": " << r.seq << ", \"clock\": " << r.clock;
  if (r.mid != 0) os << ", \"mid\": " << r.mid;
  if (r.port != sim::kInvalidPort) os << ", \"port\": " << r.port;
  if (r.kind == TraceRecord::Kind::kSend ||
      r.kind == TraceRecord::Kind::kDeliver ||
      r.kind == TraceRecord::Kind::kDrop ||
      r.kind == TraceRecord::Kind::kLoss ||
      r.kind == TraceRecord::Kind::kDuplicate) {
    os << ", \"type\": " << r.type << ", \"peer\": " << r.peer;
  }
  if (r.phase != PhaseId::kNone) {
    os << ", \"phase\": " << Quoted(PhaseKey(r.phase, r.phase_level));
  }
  os << "}";
}

// A zero-width slice a flow arrow can bind to (flow events attach to the
// slice on the same track at the same timestamp).
void Slice(std::ostringstream& os, const std::string& name,
           const TraceRecord& r) {
  Open(os, name, 'X', r.node, r.at.ticks());
  os << ", \"dur\": 0";
  Args(os, r);
  os << "},\n";
}

void Flow(std::ostringstream& os, char ph, const TraceRecord& r) {
  Open(os, "msg", ph, r.node, r.at.ticks());
  os << ", \"cat\": \"msg\", \"id\": " << r.mid;
  if (ph == 'f') os << ", \"bp\": \"e\"";
  os << "},\n";
}

void Instant(std::ostringstream& os, const std::string& name, char scope,
             const TraceRecord& r) {
  Open(os, name, 'i', r.node, r.at.ticks());
  os << ", \"s\": \"" << scope << "\"";
  Args(os, r);
  os << "},\n";
}

std::string TypedName(const char* verb, std::uint16_t type) {
  std::ostringstream os;
  os << verb << " t" << type;
  return os.str();
}

}  // namespace

std::string ExportChromeTrace(const std::vector<sim::TraceRecord>& records,
                              const TraceExportOptions& opts) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // Track metadata first: the process label, then one named, stably
  // ordered track per node that appears in the trace.
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": "
     << Quoted(opts.process_name) << "}},\n";
  std::set<sim::NodeId> nodes;
  for (const auto& r : records) nodes.insert(r.node);
  for (sim::NodeId node : nodes) {
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << node << ", \"args\": {\"name\": \"node " << node << "\"}},\n";
    os << "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << node << ", \"args\": {\"sort_index\": " << node << "}},\n";
  }

  for (const auto& r : records) {
    switch (r.kind) {
      case TraceRecord::Kind::kSend:
        Slice(os, TypedName("send", r.type), r);
        Flow(os, 's', r);
        break;
      case TraceRecord::Kind::kDeliver:
        Slice(os, TypedName("recv", r.type), r);
        Flow(os, 'f', r);
        break;
      case TraceRecord::Kind::kDrop:
        // The arrow still terminates somewhere visible: at the swallow.
        Slice(os, TypedName("drop", r.type), r);
        if (r.mid != 0) Flow(os, 'f', r);
        break;
      case TraceRecord::Kind::kLoss:
        Slice(os, TypedName("loss", r.type), r);
        if (r.mid != 0) Flow(os, 'f', r);
        break;
      case TraceRecord::Kind::kDuplicate:
        Instant(os, TypedName("dup", r.type), 't', r);
        break;
      case TraceRecord::Kind::kWakeup:
        Instant(os, "wakeup", 't', r);
        break;
      case TraceRecord::Kind::kLeader:
        Instant(os, "LEADER", 'g', r);
        break;
      case TraceRecord::Kind::kCrash:
        Instant(os, "crash", 'p', r);
        break;
      case TraceRecord::Kind::kRejoin:
        Instant(os, "rejoin", 'g', r);
        break;
      case TraceRecord::Kind::kTimerSet:
        Instant(os, "timer set", 't', r);
        break;
      case TraceRecord::Kind::kTimerFire:
        Instant(os, "timer fire", 't', r);
        break;
      case TraceRecord::Kind::kTimerCancel:
        Instant(os, "timer cancel", 't', r);
        break;
      case TraceRecord::Kind::kPhaseBegin:
        Open(os, PhaseKey(r.phase, r.phase_level), 'B', r.node,
             r.at.ticks());
        Args(os, r);
        os << "},\n";
        break;
      case TraceRecord::Kind::kPhaseEnd:
        Open(os, PhaseKey(r.phase, r.phase_level), 'E', r.node,
             r.at.ticks());
        Args(os, r);
        os << "},\n";
        break;
    }
  }

  // The trailing comma is legal in the trace-event format (the viewer
  // tolerates it), but emit a closing sentinel anyway so the document is
  // strict JSON for every other consumer.
  os << "{\"name\": \"trace_end\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"records\": "
     << records.size() << "}}\n]}\n";
  return os.str();
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<sim::TraceRecord>& records,
                      const TraceExportOptions& opts) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    CELECT_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out << ExportChromeTrace(records, opts);
  out.flush();
  if (!out) {
    CELECT_LOG(Error) << "short write to " << path;
    return false;
  }
  return true;
}

}  // namespace celect::obs
