#include "celect/obs/trace_export.h"

#include <fstream>
#include <set>
#include <sstream>

#include "celect/obs/phase.h"
#include "celect/util/logging.h"

namespace celect::obs {

namespace {

using sim::TraceRecord;

// Minimal JSON string escaping — names here are generated from enums and
// integers, but the process label is caller-supplied.
std::string Quoted(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += static_cast<char>(c);
    } else if (c < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += static_cast<char>(c);
    }
  }
  out += '"';
  return out;
}

// The shared prefix of every event: name, phase letter, pid/tid/ts.
void Open(std::ostringstream& os, const std::string& name, char ph,
          int pid, sim::NodeId node, std::int64_t ts) {
  os << "{\"name\": " << Quoted(name) << ", \"ph\": \"" << ph
     << "\", \"pid\": " << pid << ", \"tid\": " << node
     << ", \"ts\": " << ts;
}

void Args(std::ostringstream& os, const TraceRecord& r) {
  os << ", \"args\": {\"seq\": " << r.seq << ", \"clock\": " << r.clock;
  if (r.mid != 0) os << ", \"mid\": " << r.mid;
  if (r.port != sim::kInvalidPort) os << ", \"port\": " << r.port;
  if (r.kind == TraceRecord::Kind::kSend ||
      r.kind == TraceRecord::Kind::kDeliver ||
      r.kind == TraceRecord::Kind::kDrop ||
      r.kind == TraceRecord::Kind::kLoss ||
      r.kind == TraceRecord::Kind::kDuplicate) {
    os << ", \"type\": " << r.type << ", \"peer\": " << r.peer;
  }
  if (r.phase != PhaseId::kNone) {
    os << ", \"phase\": " << Quoted(PhaseKey(r.phase, r.phase_level));
  }
  os << "}";
}

// A zero-width slice a flow arrow can bind to (flow events attach to the
// slice on the same track at the same timestamp).
void Slice(std::ostringstream& os, const std::string& name, int pid,
           const TraceRecord& r) {
  Open(os, name, 'X', pid, r.node, r.at.ticks());
  os << ", \"dur\": 0";
  Args(os, r);
  os << "},\n";
}

void Flow(std::ostringstream& os, char ph, int pid,
          const TraceRecord& r) {
  Open(os, "msg", ph, pid, r.node, r.at.ticks());
  os << ", \"cat\": \"msg\", \"id\": " << r.mid;
  if (ph == 'f') os << ", \"bp\": \"e\"";
  os << "},\n";
}

void Instant(std::ostringstream& os, const std::string& name, char scope,
             int pid, const TraceRecord& r) {
  Open(os, name, 'i', pid, r.node, r.at.ticks());
  os << ", \"s\": \"" << scope << "\"";
  Args(os, r);
  os << "},\n";
}

std::string TypedName(const char* verb, std::uint16_t type) {
  std::ostringstream os;
  os << verb << " t" << type;
  return os.str();
}

void EmitRecord(std::ostringstream& os, int pid, const TraceRecord& r) {
  switch (r.kind) {
    case TraceRecord::Kind::kSend:
      Slice(os, TypedName("send", r.type), pid, r);
      Flow(os, 's', pid, r);
      break;
    case TraceRecord::Kind::kDeliver:
      Slice(os, TypedName("recv", r.type), pid, r);
      Flow(os, 'f', pid, r);
      break;
    case TraceRecord::Kind::kDrop:
      // The arrow still terminates somewhere visible: at the swallow.
      Slice(os, TypedName("drop", r.type), pid, r);
      if (r.mid != 0) Flow(os, 'f', pid, r);
      break;
    case TraceRecord::Kind::kLoss:
      Slice(os, TypedName("loss", r.type), pid, r);
      if (r.mid != 0) Flow(os, 'f', pid, r);
      break;
    case TraceRecord::Kind::kDuplicate:
      Instant(os, TypedName("dup", r.type), 't', pid, r);
      break;
    case TraceRecord::Kind::kWakeup:
      Instant(os, "wakeup", 't', pid, r);
      break;
    case TraceRecord::Kind::kLeader:
      Instant(os, "LEADER", 'g', pid, r);
      break;
    case TraceRecord::Kind::kCrash:
      Instant(os, "crash", 'p', pid, r);
      break;
    case TraceRecord::Kind::kRejoin:
      Instant(os, "rejoin", 'g', pid, r);
      break;
    case TraceRecord::Kind::kTimerSet:
      Instant(os, "timer set", 't', pid, r);
      break;
    case TraceRecord::Kind::kTimerFire:
      Instant(os, "timer fire", 't', pid, r);
      break;
    case TraceRecord::Kind::kTimerCancel:
      Instant(os, "timer cancel", 't', pid, r);
      break;
    case TraceRecord::Kind::kPhaseBegin:
      Open(os, PhaseKey(r.phase, r.phase_level), 'B', pid, r.node,
           r.at.ticks());
      Args(os, r);
      os << "},\n";
      break;
    case TraceRecord::Kind::kPhaseEnd:
      Open(os, PhaseKey(r.phase, r.phase_level), 'E', pid, r.node,
           r.at.ticks());
      Args(os, r);
      os << "},\n";
      break;
  }
}

}  // namespace

std::string ExportChromeTrace(const std::vector<sim::TraceRecord>& records,
                              const TraceExportOptions& opts) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";

  // Track metadata first: the process label, then one named, stably
  // ordered track per node that appears in the trace.
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"name\": "
     << Quoted(opts.process_name) << "}},\n";
  std::set<sim::NodeId> nodes;
  for (const auto& r : records) nodes.insert(r.node);
  for (sim::NodeId node : nodes) {
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << node << ", \"args\": {\"name\": \"node " << node << "\"}},\n";
    os << "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, "
          "\"tid\": "
       << node << ", \"args\": {\"sort_index\": " << node << "}},\n";
  }

  for (const auto& r : records) EmitRecord(os, /*pid=*/1, r);

  // The trailing comma is legal in the trace-event format (the viewer
  // tolerates it), but emit a closing sentinel anyway so the document is
  // strict JSON for every other consumer.
  os << "{\"name\": \"trace_end\", \"ph\": \"M\", \"pid\": 1, "
        "\"args\": {\"records\": "
     << records.size() << "}}\n]}\n";
  return os.str();
}

bool WriteChromeTrace(const std::string& path,
                      const std::vector<sim::TraceRecord>& records,
                      const TraceExportOptions& opts) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    CELECT_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out << ExportChromeTrace(records, opts);
  out.flush();
  if (!out) {
    CELECT_LOG(Error) << "short write to " << path;
    return false;
  }
  return true;
}

std::string ExportMergedChromeTrace(const std::vector<TraceShard>& shards,
                                    const TraceExportOptions& opts) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  // pid 0 carries the merge-level label; each shard is its own process.
  os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"name\": "
     << Quoted(opts.process_name) << "}},\n";
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const TraceShard& s = shards[i];
    int pid = static_cast<int>(i) + 1;
    std::ostringstream label;
    label << "node " << s.node;
    if (!s.label.empty()) label << " " << s.label;
    label << " epoch=" << s.epoch;
    if (!s.complete) label << " (incomplete)";
    os << "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"args\": {\"name\": " << Quoted(label.str()) << "}},\n";
    os << "{\"name\": \"process_sort_index\", \"ph\": \"M\", \"pid\": "
       << pid << ", \"args\": {\"sort_index\": " << pid << "}},\n";
    os << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": " << pid
       << ", \"tid\": " << s.node << ", \"args\": {\"name\": \"node "
       << s.node << "\"}},\n";
    for (const auto& r : s.records) EmitRecord(os, pid, r);
    total += s.records.size();
    // Flight-recorder moments share the node's track so session-layer
    // context (retransmits, suspicion spans) lines up with the protocol
    // events it explains.
    for (const auto& f : s.flight) {
      os << "{\"name\": "
         << Quoted(std::string("flight ") + ToString(f.kind))
         << ", \"ph\": \"i\", \"pid\": " << pid << ", \"tid\": " << s.node
         << ", \"ts\": " << f.at
         << ", \"s\": \"t\", \"args\": {\"peer\": " << f.peer
         << ", \"a\": " << f.a << ", \"b\": " << f.b << "}},\n";
    }
  }
  os << "{\"name\": \"trace_end\", \"ph\": \"M\", \"pid\": 0, "
        "\"args\": {\"shards\": "
     << shards.size() << ", \"records\": " << total << "}}\n]}\n";
  return os.str();
}

bool WriteMergedChromeTrace(const std::string& path,
                            const std::vector<TraceShard>& shards,
                            const TraceExportOptions& opts) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    CELECT_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out << ExportMergedChromeTrace(shards, opts);
  out.flush();
  if (!out) {
    CELECT_LOG(Error) << "short write to " << path;
    return false;
  }
  return true;
}

}  // namespace celect::obs
