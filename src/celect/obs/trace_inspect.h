// Trace inspection: a parseable on-disk record format plus the analyses
// behind the celect_trace CLI — semantic validation (Lamport rules, flow
// pairing, per-link FIFO), filtering, diffing, and causal chains.
//
// The compact format is one record per line,
//
//   <seq> <kind> at=<ticks> node=<n> peer=<n> port=<p> type=<t>
//       clock=<c> mid=<m> phase=<key>       (all on one line)
//
// and round-trips exactly: Serialize(Parse(s)) == s for any serialized
// trace, so a diff of two compact files is a diff of two runs.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "celect/sim/trace.h"

namespace celect::obs {

// --- compact format -------------------------------------------------

std::string SerializeRecords(const std::vector<sim::TraceRecord>& records);

// One compact line (no trailing newline) for a single record. Shard
// files embed record lines between their header sections, so the
// per-line form is public alongside the whole-trace helpers.
std::string SerializeRecord(const sim::TraceRecord& r);

// nullopt on malformed input, with a message in *error (no line prefix —
// the caller knows the line number).
std::optional<sim::TraceRecord> ParseRecordLine(const std::string& line,
                                                std::string* error);

// nullopt on malformed input, with a line-numbered message in *error.
std::optional<std::vector<sim::TraceRecord>> ParseRecords(
    const std::string& text, std::string* error);

// --- validation -----------------------------------------------------

struct CheckOptions {
  // Assert per-link FIFO (matched send order equals delivery order on
  // every directed link). Off for runs with injected reordering,
  // duplication or controlled schedules.
  bool expect_fifo = true;
};

// Semantic validation of a record stream:
//   - per-node Lamport monotonicity (strictly increasing across the
//     node's clocked events: send, deliver, wakeup, timer fire),
//   - the delivery join rule (a kDeliver's clock exceeds the clock on
//     the matching kSend),
//   - flow pairing (every kDeliver/kDrop/kLoss/kDuplicate mid has a
//     preceding kSend with that mid; every phase record is well formed),
//   - per-link FIFO when opted in.
// Returns human-readable problems; empty means the trace is coherent.
std::vector<std::string> CheckRecords(
    const std::vector<sim::TraceRecord>& records,
    const CheckOptions& opts = {});

// Structural well-formedness scan of a JSON document (objects, arrays,
// strings, numbers, literals — validation only, no tree). nullopt when
// valid, otherwise an offset-tagged message. Used by `celect_trace
// check` on exported Perfetto files.
std::optional<std::string> ValidateJson(const std::string& text);

// --- filtering / diffing / causality --------------------------------

struct TraceFilter {
  std::optional<sim::NodeId> node;  // matches acting node or peer
  std::optional<std::uint16_t> type;
  std::optional<PhaseId> phase;     // record's phase tag
  std::optional<std::int64_t> min_ticks;
  std::optional<std::int64_t> max_ticks;  // inclusive

  bool Matches(const sim::TraceRecord& r) const;
};

std::vector<sim::TraceRecord> FilterRecords(
    const std::vector<sim::TraceRecord>& records, const TraceFilter& f);

// First divergence between two traces ("record 17: ..." / length
// mismatch); nullopt when identical.
std::optional<std::string> DiffRecords(
    const std::vector<sim::TraceRecord>& a,
    const std::vector<sim::TraceRecord>& b);

// The causal chain ending in message `mid`, oldest record first: starting
// from the kSend that minted `mid`, walk back through the event that ran
// the sending handler (the delivery/wakeup/timer that triggered it) and,
// across deliveries, hop to the matching send — then append every
// outcome of `mid` itself (deliver, loss, drop, duplicate). Empty when
// no send with that mid exists.
std::vector<sim::TraceRecord> CausalChain(
    const std::vector<sim::TraceRecord>& records, std::uint64_t mid);

}  // namespace celect::obs
