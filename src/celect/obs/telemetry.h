// Streaming telemetry: fixed-footprint histograms and time-series
// samplers the runtime can feed on the hot path.
//
// Everything here is deterministic (a pure function of the event
// schedule), integer-valued, and mergeable — sweeps reduce per-run
// telemetry in grid order, so the merged histograms are identical for
// any worker-thread count, and the bench JSON "histograms" section is
// byte-stable per seed. Memory is O(1) per histogram (64 power-of-two
// buckets) and O(cap) per time series, independent of run length.
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "celect/util/thread_annotations.h"

namespace celect::obs {

// Power-of-two-bucketed histogram over non-negative integer samples.
// Bucket b holds values v with floor(log2(v)) == b - 1, i.e. bucket 0
// is exactly {0}, bucket 1 is {1}, bucket 2 is {2,3}, bucket 3 is
// {4..7}, ... Exact count/sum/min/max ride alongside, so means are
// exact and only quantiles are bucket-resolution approximations.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void Add(std::uint64_t v);
  void Merge(const Histogram& o);

  // Rebuild a histogram from previously exported parts (shard files,
  // wire snapshots). `buckets` may be shorter than kBuckets — the tail
  // is zero-filled. Rejects inconsistent parts (bucket total != count,
  // min > max, too many buckets) so a corrupt shard cannot smuggle in
  // an unmergeable histogram.
  static std::optional<Histogram> FromParts(
      const std::vector<std::uint64_t>& buckets, std::uint64_t count,
      std::uint64_t sum, std::uint64_t min, std::uint64_t max);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  // Zero when empty (callers gate on count()).
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
  }

  // Upper bound of the bucket containing the q-quantile (q in [0, 1]);
  // exact for q=0/q=1 via min/max. Zero when empty.
  std::uint64_t ApproxQuantile(double q) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const {
    return counts_;
  }
  // Index of the highest non-empty bucket + 1 (0 when empty) — callers
  // iterate [0, BucketsUsed()) to skip the empty tail.
  std::size_t BucketsUsed() const;

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

// Bounded time series: records (t, value) pairs, and when the buffer
// fills, drops every other retained point and doubles the sampling
// stride. Deterministic for a deterministic input sequence; the kept
// points always span the full run at uniform (power-of-two) stride.
class TimeSeries {
 public:
  struct Point {
    std::int64_t at;  // sim ticks
    std::int64_t value;
    friend bool operator==(const Point&, const Point&) = default;
  };

  explicit TimeSeries(std::size_t cap = 512);

  void Sample(std::int64_t at, std::int64_t value);

  const std::vector<Point>& points() const { return points_; }
  std::uint64_t samples_seen() const { return seen_; }

  friend bool operator==(const TimeSeries&, const TimeSeries&) = default;

 private:
  std::size_t cap_;
  std::uint64_t stride_ = 1;  // keep every stride-th sample
  std::uint64_t seen_ = 0;
  std::vector<Point> points_;
};

// The runtime's telemetry bundle (RuntimeOptions::enable_telemetry).
// Empty (all counts zero) when telemetry was off.
struct Telemetry {
  Histogram latency;        // delivery latency, sim ticks
  Histogram queue_depth;    // pending deliveries at the destination,
                            // sampled at each delivery dispatch
  Histogram capture_width;  // messages per completed capture-family span
  // Coverage-gap lengths (ticks from lease lapse to the next grant),
  // one sample per completed re-election. Fed by the churn harness's
  // analysis::LeaseMonitor, not by the runtime — empty elsewhere.
  Histogram election_latency;
  TimeSeries inflight;      // total deliveries in flight over sim time

  bool Empty() const {
    return latency.count() == 0 && queue_depth.count() == 0 &&
           capture_width.count() == 0 && election_latency.count() == 0 &&
           inflight.samples_seen() == 0;
  }
  // Histograms accumulate; the inflight series keeps the first non-empty
  // run (series from different seeds share no time axis).
  void Merge(const Telemetry& o);

  friend bool operator==(const Telemetry&, const Telemetry&) = default;
};

// Thread-safe telemetry reducer for concurrent producers — sweep
// worker threads today, the distributed sweep farm's shard streams
// tomorrow. Only the histograms are folded in: Histogram::Merge is
// commutative and associative, so the accumulated result is the same
// for every arrival order (and therefore every --threads). The
// TimeSeries keep-first-non-empty rule is order-dependent, so the
// accumulated inflight series deliberately stays empty; reductions
// that need the series must merge Telemetry values in grid-index
// order instead.
class TelemetryAccumulator {
 public:
  // Folds one producer's histograms into the running totals.
  void Merge(const Telemetry& shard);

  // Copy of the totals so far (inflight series always empty).
  Telemetry Snapshot() const;

  // Number of Merge calls absorbed (empty shards included).
  std::uint64_t shards_merged() const;

 private:
  mutable std::mutex mu_;
  Telemetry merged_ CELECT_GUARDED_BY(mu_);
  std::uint64_t shards_ CELECT_GUARDED_BY(mu_) = 0;
};

}  // namespace celect::obs
