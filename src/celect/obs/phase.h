// Protocol phase taxonomy for the observability layer.
//
// The paper's complexity claims are per-phase budgets — protocol A
// spends O(Nk) messages capturing and O(N/k) electing; protocol C's
// doubling levels each cost 2^(l-1) messages in O(1) time — so the
// simulator lets protocols mark phase spans via Context::BeginPhase/
// EndPhase. Spans nest (FT recovery fires inside a broadcast), carry an
// optional level (doubling level l), are emitted as duration events in
// the Perfetto export, and are aggregated into per-phase message/time
// tables in RunResult::phases.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace celect::obs {

// One slot per distinguishable phase across the protocol family. The
// names are the cross-protocol vocabulary: "capture1" is protocol A's
// stride walk, C's class walk, and G's parallel burst alike, so phase
// tables line up when protocols are compared.
enum class PhaseId : std::uint16_t {
  kNone = 0,      // no span (sentinel; never aggregated)
  kWakeup = 1,    // wakeup ordering (G's first-phase handshake)
  kCapture1 = 2,  // first capture phase (stride/class walk, burst)
  kCapture2 = 3,  // second capture phase (owner + elect rounds, walk)
  kDoubling = 4,  // doubling level l (B's steps, C's phase 2b)
  kBroadcast = 5, // protocol D-style broadcast round
  kRecovery = 6,  // FT timer-driven recovery actions
  kResolve = 7,   // chordal coordinator's block-resolve fan-out
};

// Stable lowercase name ("capture1"); "none" for kNone.
const char* PhaseName(PhaseId id);

// Aggregation/display key: the name alone when level is 0, otherwise
// "<name>.<level>" ("doubling.3").
std::string PhaseKey(PhaseId id, std::int64_t level);

// Inverse of PhaseName; nullopt for unknown names (filters reject them).
std::optional<PhaseId> PhaseFromName(const std::string& name);

// Per-phase aggregate folded into RunResult::phases. Everything is a
// deterministic function of the schedule — no wall clock.
struct PhaseAgg {
  std::uint64_t spans = 0;     // completed Begin..End pairs (auto-closed
                               // spans at quiescence included)
  std::int64_t ticks = 0;      // summed span duration, sim ticks
  std::uint64_t messages = 0;  // sends attributed to the phase
  friend bool operator==(const PhaseAgg&, const PhaseAgg&) = default;
};

}  // namespace celect::obs
