// Chrome trace-event / Perfetto JSON export of a simulation trace.
//
// The exported document loads directly in ui.perfetto.dev (and
// chrome://tracing): every node is a track, phase spans are duration
// slices ("B"/"E"), each send/receive is a zero-width slice carrying a
// flow arrow ("s"/"f" keyed by the message uid) so a message can be
// followed from sender to receiver — or to the loss/drop instant that
// swallowed it — and crashes, wakeups, leader declarations and timer
// activity are instants.
//
// Timestamps are raw simulation ticks (2^20 per time unit) written as
// integers, never floats or host clocks, so the document is a pure
// function of the event schedule: same seed, byte-identical bytes.
#pragma once

#include <string>
#include <vector>

#include "celect/obs/shard.h"
#include "celect/sim/trace.h"

namespace celect::obs {

struct TraceExportOptions {
  // Perfetto process label, e.g. "protocol C n=16 seed=1".
  std::string process_name = "celect";
};

// Renders the records as a complete JSON document (one event per line —
// stable bytes, diffable).
std::string ExportChromeTrace(const std::vector<sim::TraceRecord>& records,
                              const TraceExportOptions& opts = {});

// ExportChromeTrace to a file; false (with a log line) on I/O failure.
bool WriteChromeTrace(const std::string& path,
                      const std::vector<sim::TraceRecord>& records,
                      const TraceExportOptions& opts = {});

// Multi-process variant: one Perfetto process per shard (pid = position
// in `shards` + 1, labelled "node N <label> epoch=E"), flight-recorder
// events as instants on the same track, and flow arrows that cross
// process boundaries because mids are globally unique. Pass
// ShardReducer::Merged() for canonical ordering — the bytes are then a
// pure function of the shard set, independent of arrival order.
std::string ExportMergedChromeTrace(const std::vector<TraceShard>& shards,
                                    const TraceExportOptions& opts = {});

bool WriteMergedChromeTrace(const std::string& path,
                            const std::vector<TraceShard>& shards,
                            const TraceExportOptions& opts = {});

}  // namespace celect::obs
