#include "celect/obs/trace_inspect.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>

namespace celect::obs {

namespace {

using sim::TraceRecord;

constexpr TraceRecord::Kind kAllKinds[] = {
    TraceRecord::Kind::kSend,        TraceRecord::Kind::kDeliver,
    TraceRecord::Kind::kWakeup,      TraceRecord::Kind::kLeader,
    TraceRecord::Kind::kCrash,       TraceRecord::Kind::kRejoin,
    TraceRecord::Kind::kDrop,
    TraceRecord::Kind::kLoss,        TraceRecord::Kind::kDuplicate,
    TraceRecord::Kind::kTimerSet,    TraceRecord::Kind::kTimerFire,
    TraceRecord::Kind::kTimerCancel, TraceRecord::Kind::kPhaseBegin,
    TraceRecord::Kind::kPhaseEnd,
};

std::optional<TraceRecord::Kind> KindFromName(const std::string& name) {
  for (TraceRecord::Kind k : kAllKinds) {
    if (name == sim::ToString(k)) return k;
  }
  return std::nullopt;
}

// A record's clock is meaningful (ticked by the runtime) on these kinds;
// the rest merely snapshot the node's current clock.
bool IsClocked(TraceRecord::Kind k) {
  return k == TraceRecord::Kind::kSend ||
         k == TraceRecord::Kind::kDeliver ||
         k == TraceRecord::Kind::kWakeup ||
         k == TraceRecord::Kind::kTimerFire;
}

bool IsMessageOutcome(TraceRecord::Kind k) {
  return k == TraceRecord::Kind::kDeliver ||
         k == TraceRecord::Kind::kDrop || k == TraceRecord::Kind::kLoss ||
         k == TraceRecord::Kind::kDuplicate;
}

// "key=value" → value, checking the key; nullopt on mismatch.
std::optional<std::string> TakeField(const std::string& token,
                                     const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return std::nullopt;
  return token.substr(prefix.size());
}

std::optional<std::int64_t> ParseInt(const std::string& s) {
  if (s.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

// seq/clock/mid use the full unsigned range (wire mids are random
// 64-bit values), so they get their own parse instead of ParseInt.
std::optional<std::uint64_t> ParseUint(const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

// "doubling.3" → (kDoubling, 3); "capture1" → (kCapture1, 0).
std::optional<std::pair<PhaseId, std::int64_t>> ParsePhaseKey(
    const std::string& key) {
  const std::size_t dot = key.rfind('.');
  if (dot != std::string::npos) {
    if (auto level = ParseInt(key.substr(dot + 1))) {
      if (auto id = PhaseFromName(key.substr(0, dot))) {
        return std::make_pair(*id, *level);
      }
    }
  }
  if (auto id = PhaseFromName(key)) return std::make_pair(*id, 0);
  return std::nullopt;
}

}  // namespace

std::string SerializeRecord(const sim::TraceRecord& r) {
  std::ostringstream os;
  os << r.seq << " " << sim::ToString(r.kind) << " at=" << r.at.ticks()
     << " node=" << r.node << " peer=" << r.peer << " port=" << r.port
     << " type=" << r.type << " clock=" << r.clock << " mid=" << r.mid
     << " phase=" << PhaseKey(r.phase, r.phase_level);
  return os.str();
}

std::optional<sim::TraceRecord> ParseRecordLine(const std::string& line,
                                                std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error) *error = why;
    return std::nullopt;
  };
  std::istringstream ls(line);
  std::string seq_tok, kind_tok;
  std::string at_tok, node_tok, peer_tok, port_tok, type_tok, clock_tok,
      mid_tok, phase_tok;
  if (!(ls >> seq_tok >> kind_tok >> at_tok >> node_tok >> peer_tok >>
        port_tok >> type_tok >> clock_tok >> mid_tok >> phase_tok)) {
    return fail("expected 10 tokens");
  }
  std::string rest;
  if (ls >> rest) return fail("trailing tokens");
  TraceRecord r{};
  const auto seq = ParseUint(seq_tok);
  if (!seq) return fail("bad seq");
  r.seq = *seq;
  const auto kind = KindFromName(kind_tok);
  if (!kind) return fail("unknown kind '" + kind_tok + "'");
  r.kind = *kind;
  const auto at = TakeField(at_tok, "at");
  const auto node = TakeField(node_tok, "node");
  const auto peer = TakeField(peer_tok, "peer");
  const auto port = TakeField(port_tok, "port");
  const auto type = TakeField(type_tok, "type");
  const auto clock = TakeField(clock_tok, "clock");
  const auto mid = TakeField(mid_tok, "mid");
  const auto phase = TakeField(phase_tok, "phase");
  if (!at || !node || !peer || !port || !type || !clock || !mid ||
      !phase) {
    return fail("malformed field");
  }
  const auto at_v = ParseInt(*at);
  const auto node_v = ParseInt(*node);
  const auto peer_v = ParseInt(*peer);
  const auto port_v = ParseInt(*port);
  const auto type_v = ParseInt(*type);
  const auto clock_v = ParseUint(*clock);
  const auto mid_v = ParseUint(*mid);
  if (!at_v || !node_v || !peer_v || !port_v || !type_v || !clock_v ||
      !mid_v) {
    return fail("non-numeric field");
  }
  r.at = sim::Time::FromTicks(*at_v);
  r.node = static_cast<sim::NodeId>(*node_v);
  r.peer = static_cast<sim::NodeId>(*peer_v);
  r.port = static_cast<sim::Port>(*port_v);
  r.type = static_cast<std::uint16_t>(*type_v);
  r.clock = *clock_v;
  r.mid = *mid_v;
  const auto ph = ParsePhaseKey(*phase);
  if (!ph) return fail("unknown phase '" + *phase + "'");
  r.phase = ph->first;
  r.phase_level = ph->second;
  return r;
}

std::string SerializeRecords(
    const std::vector<sim::TraceRecord>& records) {
  std::ostringstream os;
  for (const auto& r : records) os << SerializeRecord(r) << "\n";
  return os.str();
}

std::optional<std::vector<sim::TraceRecord>> ParseRecords(
    const std::string& text, std::string* error) {
  std::vector<sim::TraceRecord> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string why;
    auto r = ParseRecordLine(line, &why);
    if (!r) {
      if (error) {
        std::ostringstream os;
        os << "line " << lineno << ": " << why;
        *error = os.str();
      }
      return std::nullopt;
    }
    out.push_back(*r);
  }
  return out;
}

bool TraceFilter::Matches(const sim::TraceRecord& r) const {
  if (node && r.node != *node && r.peer != *node) return false;
  if (type && r.type != *type) return false;
  if (phase && r.phase != *phase) return false;
  if (min_ticks && r.at.ticks() < *min_ticks) return false;
  if (max_ticks && r.at.ticks() > *max_ticks) return false;
  return true;
}

std::vector<sim::TraceRecord> FilterRecords(
    const std::vector<sim::TraceRecord>& records, const TraceFilter& f) {
  std::vector<sim::TraceRecord> out;
  for (const auto& r : records) {
    if (f.Matches(r)) out.push_back(r);
  }
  return out;
}

std::vector<std::string> CheckRecords(
    const std::vector<sim::TraceRecord>& records, const CheckOptions& opts) {
  std::vector<std::string> problems;
  const auto problem = [&](std::size_t i, const std::string& why) {
    if (problems.size() >= 50) return;  // enough to act on
    std::ostringstream os;
    os << "record " << i << " (" << SerializeRecord(records[i]) << "): " << why;
    problems.push_back(os.str());
  };

  // mid → index of the minting kSend.
  std::unordered_map<std::uint64_t, std::size_t> send_of;
  // node → clock of its last record / last clocked record.
  std::unordered_map<sim::NodeId, std::uint64_t> last_clock;
  std::unordered_map<sim::NodeId, std::uint64_t> last_ticked;
  // directed link (from,to) → send seq of the last matched delivery.
  std::unordered_map<std::uint64_t, std::uint64_t> fifo_last;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    if (r.kind == TraceRecord::Kind::kSend) {
      if (r.mid == 0) problem(i, "send without a mid");
      if (!send_of.emplace(r.mid, i).second) {
        problem(i, "mid minted twice");
      }
    } else if (IsMessageOutcome(r.kind)) {
      if (r.mid == 0) {
        problem(i, "message outcome without a mid");
      } else {
        auto it = send_of.find(r.mid);
        if (it == send_of.end()) {
          problem(i, "outcome precedes its send");
        } else if (r.kind == TraceRecord::Kind::kDeliver) {
          const auto& s = records[it->second];
          if (r.clock <= s.clock) {
            problem(i, "delivery clock does not exceed the send clock");
          }
          if (opts.expect_fifo) {
            const std::uint64_t link =
                (static_cast<std::uint64_t>(r.peer) << 32) | r.node;
            auto [fit, fresh] = fifo_last.try_emplace(link, s.seq);
            if (!fresh) {
              if (s.seq <= fit->second) {
                problem(i, "per-link FIFO violated (delivery overtook an "
                           "earlier send)");
              }
              fit->second = s.seq;
            }
          }
        }
      }
    }

    auto [lit, first] = last_clock.try_emplace(r.node, r.clock);
    if (!first) {
      if (r.clock < lit->second) {
        problem(i, "node clock went backwards");
      }
      lit->second = r.clock;
    }
    if (IsClocked(r.kind)) {
      auto [tit, tfirst] = last_ticked.try_emplace(r.node, r.clock);
      if (!tfirst) {
        if (r.clock <= tit->second) {
          problem(i, "clocked event did not advance the node clock");
        }
        tit->second = r.clock;
      }
      if (r.clock == 0) problem(i, "clocked event with clock 0");
    }
  }
  return problems;
}

std::optional<std::string> DiffRecords(
    const std::vector<sim::TraceRecord>& a,
    const std::vector<sim::TraceRecord>& b) {
  const std::size_t common = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < common; ++i) {
    const std::string la = SerializeRecord(a[i]);
    const std::string lb = SerializeRecord(b[i]);
    if (la != lb) {
      std::ostringstream os;
      os << "record " << i << " differs:\n  a: " << la << "\n  b: " << lb;
      return os.str();
    }
  }
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "traces diverge in length: a has " << a.size() << " records, b "
       << b.size() << " (first " << common << " identical)";
    return os.str();
  }
  return std::nullopt;
}

std::vector<sim::TraceRecord> CausalChain(
    const std::vector<sim::TraceRecord>& records, std::uint64_t mid) {
  std::optional<std::size_t> send;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].kind == TraceRecord::Kind::kSend &&
        records[i].mid == mid) {
      send = i;
      break;
    }
  }
  if (!send) return {};

  // Walk backwards: the event that triggered the handler a send ran in
  // is the latest deliver/wakeup/timer-fire at the same node before it;
  // across a delivery, hop to the matching send and repeat.
  std::vector<std::size_t> back{*send};
  std::size_t cur = *send;
  for (;;) {
    const sim::NodeId node = records[cur].node;
    std::optional<std::size_t> trigger;
    for (std::size_t i = cur; i-- > 0;) {
      const auto k = records[i].kind;
      if (records[i].node != node) continue;
      if (k == TraceRecord::Kind::kDeliver ||
          k == TraceRecord::Kind::kWakeup ||
          k == TraceRecord::Kind::kTimerFire) {
        trigger = i;
        break;
      }
    }
    if (!trigger) break;
    back.push_back(*trigger);
    if (records[*trigger].kind != TraceRecord::Kind::kDeliver) break;
    std::optional<std::size_t> prev_send;
    for (std::size_t i = *trigger; i-- > 0;) {
      if (records[i].kind == TraceRecord::Kind::kSend &&
          records[i].mid == records[*trigger].mid) {
        prev_send = i;
        break;
      }
    }
    if (!prev_send) break;
    back.push_back(*prev_send);
    cur = *prev_send;
  }

  std::vector<sim::TraceRecord> chain;
  for (std::size_t i = back.size(); i-- > 0;) {
    chain.push_back(records[back[i]]);
  }
  // Then every outcome of the message itself.
  for (std::size_t i = *send + 1; i < records.size(); ++i) {
    if (records[i].mid == mid && IsMessageOutcome(records[i].kind)) {
      chain.push_back(records[i]);
    }
  }
  return chain;
}

namespace {

// Validation-only JSON scanner (no tree, no numbers parsed — structure
// and string escapes only).
class JsonScanner {
 public:
  explicit JsonScanner(const std::string& text) : s_(text) {}

  std::optional<std::string> Validate() {
    SkipWs();
    if (!Value()) return Error();
    SkipWs();
    if (pos_ != s_.size()) {
      err_ = "trailing content";
      return Error();
    }
    return std::nullopt;
  }

 private:
  std::optional<std::string> Error() const {
    std::ostringstream os;
    os << "invalid JSON at offset " << pos_ << ": "
       << (err_.empty() ? "syntax error" : err_);
    return os.str();
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }

  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              err_ = "bad \\u escape";
              return false;
            }
          }
        } else if (!std::strchr("\"\\/bfnrt", e)) {
          err_ = "bad escape";
          return false;
        }
        ++pos_;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        err_ = "control character in string";
        return false;
      } else {
        ++pos_;
      }
    }
    err_ = "unterminated string";
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start || (s_[start] == '-' && pos_ == start + 1)) {
      return false;
    }
    if (pos_ < s_.size() && s_[pos_] == '.') {
      ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) ++pos_;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        ++pos_;
      }
    }
    return true;
  }

  bool Value() {
    if (++depth_ > 256) {
      err_ = "nesting too deep";
      return false;
    }
    SkipWs();
    bool ok = false;
    if (pos_ >= s_.size()) {
      err_ = "unexpected end of input";
    } else if (s_[pos_] == '{') {
      ok = Object();
    } else if (s_[pos_] == '[') {
      ok = Array();
    } else if (s_[pos_] == '"') {
      ok = String();
    } else if (Literal("true") || Literal("false") || Literal("null")) {
      ok = true;
    } else {
      ok = Number();
    }
    --depth_;
    return ok;
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') {
        err_ = "expected ':'";
        return false;
      }
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or '}'";
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (pos_ < s_.size() && s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      err_ = "expected ',' or ']'";
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string err_;
};

}  // namespace

std::optional<std::string> ValidateJson(const std::string& text) {
  return JsonScanner(text).Validate();
}

}  // namespace celect::obs
