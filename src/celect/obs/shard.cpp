#include "celect/obs/shard.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "celect/obs/trace_inspect.h"

namespace celect::obs {

namespace {

constexpr FlightKind kAllFlightKinds[] = {
    FlightKind::kSessionStart, FlightKind::kEstablished,
    FlightKind::kEpochAdopt,   FlightKind::kRetransmit,
    FlightKind::kHelloRetry,   FlightKind::kSuspectBegin,
    FlightKind::kSuspectEnd,   FlightKind::kWindowStall,
    FlightKind::kResetSent,    FlightKind::kResetReceived,
    FlightKind::kVersionMismatch,
};

std::optional<std::uint64_t> ParseU64(const std::string& s) {
  if (s.empty() || s[0] == '-') return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  return v;
}

// "key=value" → value, checking the key; nullopt on mismatch.
std::optional<std::string> TakeField(const std::string& token,
                                     const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (token.rfind(prefix, 0) != 0) return std::nullopt;
  return token.substr(prefix.size());
}

std::vector<std::string> SplitOn(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

const char* ToString(FlightKind k) {
  switch (k) {
    case FlightKind::kSessionStart: return "session_start";
    case FlightKind::kEstablished: return "established";
    case FlightKind::kEpochAdopt: return "epoch_adopt";
    case FlightKind::kRetransmit: return "retransmit";
    case FlightKind::kHelloRetry: return "hello_retry";
    case FlightKind::kSuspectBegin: return "suspect_begin";
    case FlightKind::kSuspectEnd: return "suspect_end";
    case FlightKind::kWindowStall: return "window_stall";
    case FlightKind::kResetSent: return "reset_sent";
    case FlightKind::kResetReceived: return "reset_received";
    case FlightKind::kVersionMismatch: return "version_mismatch";
  }
  return "unknown";
}

std::optional<FlightKind> FlightKindFromName(const std::string& name) {
  for (FlightKind k : kAllFlightKinds) {
    if (name == ToString(k)) return k;
  }
  return std::nullopt;
}

// --- FlightRecorder -------------------------------------------------

FlightRecorder::FlightRecorder(std::size_t cap)
    : ring_(cap < 1 ? 1 : cap) {}

void FlightRecorder::Note(std::uint64_t at, std::uint32_t peer,
                          FlightKind kind, std::uint64_t a,
                          std::uint64_t b) {
  ring_[seen_ % ring_.size()] = FlightEvent{at, peer, kind, a, b};
  ++seen_;
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  std::vector<FlightEvent> out;
  const std::size_t n = seen_ < ring_.size()
                            ? static_cast<std::size_t>(seen_)
                            : ring_.size();
  out.reserve(n);
  const std::uint64_t first = seen_ - n;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(first + i) % ring_.size()]);
  }
  return out;
}

// --- MetricsRegistry ------------------------------------------------

void MetricsRegistry::AddCounter(const std::string& name,
                                 std::uint64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::MergeHistogram(const std::string& name,
                                     const Histogram& h) {
  if (h.count() == 0) return;
  histograms_[name].Merge(h);
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& o) {
  for (const auto& [name, v] : o.counters_) counters_[name] += v;
  for (const auto& [name, h] : o.histograms_) MergeHistogram(name, h);
}

std::string MetricsRegistry::SerializeCompact() const {
  if (Empty()) return "-";
  std::ostringstream os;
  bool wrote = false;
  if (!counters_.empty()) {
    os << "c:";
    bool first = true;
    for (const auto& [name, v] : counters_) {
      if (!first) os << ",";
      os << name << "=" << v;
      first = false;
    }
    wrote = true;
  }
  if (!histograms_.empty()) {
    if (wrote) os << " ";
    os << "h:";
    bool first = true;
    for (const auto& [name, h] : histograms_) {
      if (!first) os << ",";
      os << name << "=" << h.count() << ";" << h.sum() << ";" << h.min()
         << ";" << h.max() << ";";
      const std::size_t used = h.BucketsUsed();
      for (std::size_t b = 0; b < used; ++b) {
        if (b > 0) os << ":";
        os << h.buckets()[b];
      }
      first = false;
    }
  }
  return os.str();
}

std::optional<MetricsRegistry> MetricsRegistry::ParseCompact(
    const std::string& line) {
  MetricsRegistry reg;
  if (line == "-") return reg;
  std::istringstream in(line);
  std::string section;
  while (in >> section) {
    if (section.rfind("c:", 0) == 0) {
      for (const std::string& item : SplitOn(section.substr(2), ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) return std::nullopt;
        const auto v = ParseU64(item.substr(eq + 1));
        if (!v) return std::nullopt;
        reg.counters_[item.substr(0, eq)] += *v;
      }
    } else if (section.rfind("h:", 0) == 0) {
      for (const std::string& item : SplitOn(section.substr(2), ',')) {
        const std::size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0) return std::nullopt;
        const std::string name = item.substr(0, eq);
        const auto parts = SplitOn(item.substr(eq + 1), ';');
        if (parts.size() != 5) return std::nullopt;
        const auto count = ParseU64(parts[0]);
        const auto sum = ParseU64(parts[1]);
        const auto min = ParseU64(parts[2]);
        const auto max = ParseU64(parts[3]);
        if (!count || !sum || !min || !max) return std::nullopt;
        std::vector<std::uint64_t> buckets;
        if (!parts[4].empty()) {
          for (const std::string& b : SplitOn(parts[4], ':')) {
            const auto bv = ParseU64(b);
            if (!bv) return std::nullopt;
            buckets.push_back(*bv);
          }
        }
        auto h = Histogram::FromParts(buckets, *count, *sum, *min, *max);
        if (!h) return std::nullopt;
        reg.MergeHistogram(name, *h);
      }
    } else {
      return std::nullopt;
    }
  }
  return reg;
}

// --- shard serialization --------------------------------------------

std::string SerializeShard(const TraceShard& shard) {
  std::ostringstream os;
  os << "#shard v1 node=" << shard.node << " epoch=" << shard.epoch
     << " complete=" << (shard.complete ? 1 : 0)
     << " dropped=" << shard.dropped << " label=" << shard.label << "\n";
  os << "#metrics " << shard.metrics.SerializeCompact() << "\n";
  for (const FlightEvent& f : shard.flight) {
    os << "#flight at=" << f.at << " peer=" << f.peer
       << " kind=" << ToString(f.kind) << " a=" << f.a << " b=" << f.b
       << "\n";
  }
  for (const auto& r : shard.records) os << SerializeRecord(r) << "\n";
  os << "#end shard\n";
  return os.str();
}

std::optional<std::vector<TraceShard>> ParseShards(const std::string& text,
                                                   std::string* error) {
  std::vector<TraceShard> out;
  std::optional<TraceShard> cur;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  const auto fail = [&](const std::string& why) {
    if (error) {
      std::ostringstream os;
      os << "line " << lineno << ": " << why;
      *error = os.str();
    }
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line.rfind("#shard ", 0) == 0) {
      if (cur) return fail("shard not terminated before next '#shard'");
      std::istringstream hs(line);
      std::string tag, version, node_tok, epoch_tok, complete_tok,
          dropped_tok;
      if (!(hs >> tag >> version >> node_tok >> epoch_tok >> complete_tok >>
            dropped_tok)) {
        return fail("malformed shard header");
      }
      if (version != "v1") return fail("unknown shard version");
      const auto node = TakeField(node_tok, "node");
      const auto epoch = TakeField(epoch_tok, "epoch");
      const auto complete = TakeField(complete_tok, "complete");
      const auto dropped = TakeField(dropped_tok, "dropped");
      if (!node || !epoch || !complete || !dropped) {
        return fail("malformed shard header field");
      }
      const auto node_v = ParseU64(*node);
      const auto epoch_v = ParseU64(*epoch);
      const auto complete_v = ParseU64(*complete);
      const auto dropped_v = ParseU64(*dropped);
      if (!node_v || !epoch_v || !complete_v || *complete_v > 1 ||
          !dropped_v) {
        return fail("non-numeric shard header field");
      }
      const std::size_t label_pos = line.find(" label=");
      if (label_pos == std::string::npos) {
        return fail("shard header missing label");
      }
      TraceShard s;
      s.node = static_cast<sim::NodeId>(*node_v);
      s.epoch = *epoch_v;
      s.complete = *complete_v == 1;
      s.dropped = *dropped_v;
      s.label = line.substr(label_pos + 7);
      cur = std::move(s);
      continue;
    }
    if (!cur) return fail("content outside a '#shard' block");
    if (line.rfind("#metrics ", 0) == 0) {
      auto reg = MetricsRegistry::ParseCompact(line.substr(9));
      if (!reg) return fail("malformed metrics line");
      cur->metrics = std::move(*reg);
      continue;
    }
    if (line.rfind("#flight ", 0) == 0) {
      std::istringstream fs(line);
      std::string tag, at_tok, peer_tok, kind_tok, a_tok, b_tok;
      if (!(fs >> tag >> at_tok >> peer_tok >> kind_tok >> a_tok >>
            b_tok)) {
        return fail("malformed flight line");
      }
      const auto at = TakeField(at_tok, "at");
      const auto peer = TakeField(peer_tok, "peer");
      const auto kind = TakeField(kind_tok, "kind");
      const auto a = TakeField(a_tok, "a");
      const auto b = TakeField(b_tok, "b");
      if (!at || !peer || !kind || !a || !b) {
        return fail("malformed flight field");
      }
      const auto at_v = ParseU64(*at);
      const auto peer_v = ParseU64(*peer);
      const auto kind_v = FlightKindFromName(*kind);
      const auto a_v = ParseU64(*a);
      const auto b_v = ParseU64(*b);
      if (!at_v || !peer_v || !kind_v || !a_v || !b_v) {
        return fail("bad flight field value");
      }
      cur->flight.push_back(FlightEvent{
          *at_v, static_cast<std::uint32_t>(*peer_v), *kind_v, *a_v, *b_v});
      continue;
    }
    if (line == "#end shard") {
      out.push_back(std::move(*cur));
      cur.reset();
      continue;
    }
    std::string why;
    auto r = ParseRecordLine(line, &why);
    if (!r) return fail(why);
    cur->records.push_back(*r);
  }
  if (cur) return fail("unterminated shard at end of input");
  return out;
}

// --- ShardReducer ---------------------------------------------------

namespace {

// Total order so the merged output is independent of arrival order:
// (node, epoch) first, then "most complete wins" keys, then the full
// serialized form as the ultimate tie-break.
bool ShardLess(const TraceShard& a, const TraceShard& b) {
  if (a.node != b.node) return a.node < b.node;
  if (a.epoch != b.epoch) return a.epoch < b.epoch;
  if (a.complete != b.complete) return !a.complete;
  if (a.records.size() != b.records.size()) {
    return a.records.size() < b.records.size();
  }
  if (a.flight.size() != b.flight.size()) {
    return a.flight.size() < b.flight.size();
  }
  return SerializeShard(a) < SerializeShard(b);
}

}  // namespace

void ShardReducer::Add(TraceShard shard) {
  shards_.push_back(std::move(shard));
  ++added_;
  sorted_ = false;
}

const std::vector<TraceShard>& ShardReducer::Merged() const {
  if (!sorted_) {
    std::sort(shards_.begin(), shards_.end(), ShardLess);
    // Duplicate flushes of one incarnation: keep the most complete
    // (greatest in ShardLess order), which a later flush strictly is.
    std::vector<TraceShard> out;
    for (auto& s : shards_) {
      if (!out.empty() && out.back().node == s.node &&
          out.back().epoch == s.epoch) {
        out.back() = std::move(s);
      } else {
        out.push_back(std::move(s));
      }
    }
    shards_ = std::move(out);
    sorted_ = true;
  }
  return shards_;
}

std::string ShardReducer::SerializeMerged() const {
  std::ostringstream os;
  for (const TraceShard& s : Merged()) os << SerializeShard(s);
  return os.str();
}

MetricsRegistry ShardReducer::MergedMetrics() const {
  MetricsRegistry reg;
  for (const TraceShard& s : Merged()) reg.MergeFrom(s.metrics);
  return reg;
}

// --- CheckShards ----------------------------------------------------

std::vector<std::string> CheckShards(const std::vector<TraceShard>& shards,
                                     const ShardCheckOptions& opts) {
  using sim::TraceRecord;
  std::vector<std::string> problems;
  const auto problem = [&](std::size_t si, const TraceShard& shard,
                           const std::string& where,
                           const std::string& why) {
    if (problems.size() >= 50) return;  // enough to act on
    std::ostringstream os;
    os << "shard " << si << " (node " << shard.node << " epoch "
       << shard.epoch << ") " << where << ": " << why;
    problems.push_back(os.str());
  };

  // Nodes with an incomplete shard: their unflushed tail is the one
  // legitimate source of deliveries whose send no shard contains.
  std::set<sim::NodeId> incomplete_nodes;
  for (const TraceShard& s : shards) {
    if (!s.complete) incomplete_nodes.insert(s.node);
  }

  struct SendRef {
    std::size_t shard;
    std::size_t idx;  // position within the sender's shard
    std::uint64_t clock;
  };
  std::unordered_map<std::uint64_t, SendRef> send_of;

  const auto is_clocked = [](TraceRecord::Kind k) {
    return k == TraceRecord::Kind::kSend ||
           k == TraceRecord::Kind::kDeliver ||
           k == TraceRecord::Kind::kWakeup ||
           k == TraceRecord::Kind::kTimerFire;
  };

  // Pass 1: per-shard clock discipline + the global send index. Clocks
  // are per incarnation — a restarted node's shard starts over at 0.
  for (std::size_t si = 0; si < shards.size(); ++si) {
    const TraceShard& shard = shards[si];
    std::uint64_t last_clock = 0;
    std::uint64_t last_ticked = 0;
    bool have_clock = false;
    bool have_ticked = false;
    for (std::size_t i = 0; i < shard.records.size(); ++i) {
      const auto& r = shard.records[i];
      const std::string where = "record " + std::to_string(i);
      if (r.node != shard.node) {
        problem(si, shard, where, "record from a foreign node");
      }
      if (r.kind == TraceRecord::Kind::kSend) {
        if (r.mid == 0) {
          problem(si, shard, where, "send without a mid");
        } else if (!send_of.emplace(r.mid, SendRef{si, i, r.clock})
                        .second) {
          problem(si, shard, where, "mid minted twice across shards");
        }
      }
      if (have_clock && r.clock < last_clock) {
        problem(si, shard, where, "node clock went backwards");
      }
      last_clock = r.clock;
      have_clock = true;
      if (is_clocked(r.kind)) {
        if (r.clock == 0) {
          problem(si, shard, where, "clocked event with clock 0");
        }
        if (have_ticked && r.clock <= last_ticked) {
          problem(si, shard, where,
                  "clocked event did not advance the node clock");
        }
        last_ticked = r.clock;
        have_ticked = true;
      }
    }
  }

  // Pass 2: cross-shard delivery joins and per-session FIFO. A session
  // is a (sender incarnation, receiver incarnation) pair; the reliable
  // layer promises send-order delivery within it.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> fifo_last;
  for (std::size_t si = 0; si < shards.size(); ++si) {
    const TraceShard& shard = shards[si];
    for (std::size_t i = 0; i < shard.records.size(); ++i) {
      const auto& r = shard.records[i];
      if (r.kind != TraceRecord::Kind::kDeliver) continue;
      const std::string where = "record " + std::to_string(i);
      if (r.mid == 0) {
        problem(si, shard, where, "delivery without a mid");
        continue;
      }
      const auto it = send_of.find(r.mid);
      if (it == send_of.end()) {
        if (incomplete_nodes.count(r.peer) == 0) {
          problem(si, shard, where,
                  "delivery with no matching send in any shard");
        }
        continue;
      }
      const SendRef& s = it->second;
      if (r.clock <= s.clock) {
        problem(si, shard, where,
                "delivery clock does not exceed the send clock");
      }
      if (opts.expect_fifo) {
        const auto key = std::make_pair(s.shard, si);
        auto [fit, fresh] = fifo_last.try_emplace(key, s.idx);
        if (!fresh) {
          if (s.idx <= fit->second) {
            problem(si, shard, where,
                    "per-session FIFO violated (delivery overtook an "
                    "earlier send)");
          }
          fit->second = s.idx;
        }
      }
    }
  }
  return problems;
}

}  // namespace celect::obs
