#include "celect/obs/phase.h"

namespace celect::obs {

const char* PhaseName(PhaseId id) {
  switch (id) {
    case PhaseId::kNone:
      return "none";
    case PhaseId::kWakeup:
      return "wakeup";
    case PhaseId::kCapture1:
      return "capture1";
    case PhaseId::kCapture2:
      return "capture2";
    case PhaseId::kDoubling:
      return "doubling";
    case PhaseId::kBroadcast:
      return "broadcast";
    case PhaseId::kRecovery:
      return "recovery";
    case PhaseId::kResolve:
      return "resolve";
  }
  return "none";
}

std::string PhaseKey(PhaseId id, std::int64_t level) {
  std::string key = PhaseName(id);
  if (level != 0) {
    key += '.';
    key += std::to_string(level);
  }
  return key;
}

std::optional<PhaseId> PhaseFromName(const std::string& name) {
  for (PhaseId id : {PhaseId::kNone, PhaseId::kWakeup, PhaseId::kCapture1,
                     PhaseId::kCapture2, PhaseId::kDoubling,
                     PhaseId::kBroadcast, PhaseId::kRecovery,
                     PhaseId::kResolve}) {
    if (name == PhaseName(id)) return id;
  }
  return std::nullopt;
}

}  // namespace celect::obs
