#include "celect/proto/sod/protocol_b.h"

#include <memory>

#include "celect/proto/common.h"
#include "celect/topo/ring_math.h"
#include "celect/util/check.h"

namespace celect::proto::sod {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

class ProtocolBNode : public ElectionProcess {
 public:
  explicit ProtocolBNode(const sim::ProcessInit& init)
      : id_(init.id), n_(init.n) {
    CELECT_CHECK((n_ & (n_ - 1)) == 0) << "protocol B assumes N = 2^r";
    rounds_ = topo::RingMath::FloorLog2(n_);
  }

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    step_ = 1;
    SendStep(ctx);
  }

  void OnPacket(Context& ctx, Port from_port, const Packet& p,
                bool /*first_contact*/) override {
    switch (p.type) {
      case kBCapture:
        HandleCapture(ctx, from_port, p.field(0), p.field(1));
        break;
      case kBAccept:
        HandleAccept(ctx);
        break;
      case kBReject:
        dead_ = true;
        ctx.EndPhase(obs::PhaseId::kDoubling);
        break;
      default:
        CELECT_CHECK(false) << "protocol B: unknown message type "
                            << p.type;
    }
  }

 public:
  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables obs;
    obs.monotone = {{"step", step_},
                    {"captured", captured_ ? 1 : 0},
                    {"dead", dead_ ? 1 : 0}};
    obs.terminated = declared_ || !Live();
    return obs;
  }

 private:
  Credential Cred() const { return Credential{step_, id_}; }

  bool Live() const {
    return is_base() && step_ > 0 && !dead_ && !captured_;
  }

  // Step l captures the 2^(l-1) nodes at odd multiples of N/2^l.
  void SendStep(Context& ctx) {
    ctx.BeginPhase(obs::PhaseId::kDoubling, step_);
    const std::uint32_t gap = n_ >> step_;  // N / 2^step
    pending_ = 0;
    for (std::uint32_t m = 1; m * gap < n_; m += 2) {
      ctx.Send(static_cast<Port>(m * gap),
               Packet{kBCapture, {id_, step_}});
      ++pending_;
    }
    CELECT_DCHECK(pending_ == (1u << (step_ - 1)));
  }

  void HandleCapture(Context& ctx, Port from_port, Id sender,
                     std::int64_t sender_step) {
    if (!Live()) {
      ctx.Send(from_port, Packet{kBAccept, {}});
      return;
    }
    if (Cred() < Credential{sender_step, sender}) {
      captured_ = true;
      ctx.EndPhase(obs::PhaseId::kDoubling);
      ctx.Send(from_port, Packet{kBAccept, {}});
    } else {
      ctx.Send(from_port, Packet{kBReject, {}});
    }
  }

  void HandleAccept(Context& ctx) {
    if (!Live()) return;
    if (--pending_ > 0) return;
    ctx.EndPhase(obs::PhaseId::kDoubling);
    if (static_cast<std::uint32_t>(step_) == rounds_) {
      declared_ = true;
      ctx.DeclareLeader();
      return;
    }
    ++step_;
    SendStep(ctx);
  }

  const Id id_;
  const std::uint32_t n_;
  std::uint32_t rounds_ = 0;

  std::int64_t step_ = 0;  // 0 = not a candidate yet
  bool captured_ = false;
  bool dead_ = false;
  bool declared_ = false;
  std::uint32_t pending_ = 0;
};

}  // namespace

sim::ProcessFactory MakeProtocolB() {
  return [](const sim::ProcessInit& init) {
    return std::make_unique<ProtocolBNode>(init);
  };
}

}  // namespace celect::proto::sod
