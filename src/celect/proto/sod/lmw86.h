// LMW86 majority-capture baseline (Loui, Matsushita & West 1986).
//
// The protocol this paper improves on: with sense of direction, a base
// node captures the majority segment i[1..⌈N/2⌉]; since any two majority
// segments intersect, at most one candidate can complete, and it declares
// itself leader after its owner round. O(N) messages, O(N) time — the
// paper's protocols A′ and C beat the time bound (O(√N) and O(log N))
// at the same message complexity.
//
// Implemented as protocol A with k = ⌈N/2⌉: the strided elect set is then
// empty and the second phase reduces to the owner round.
#pragma once

#include "celect/sim/process.h"

namespace celect::proto::sod {

sim::ProcessFactory MakeLmw86();

// The k protocol A uses to emulate LMW86 for a given N.
std::uint32_t Lmw86Stride(std::uint32_t n);

}  // namespace celect::proto::sod
