// Protocol B (paper §3) — asynchronous doubling election, with sense of
// direction. Requires N = 2^r.
//
// A candidate captures all other nodes in log N steps: step 1 captures
// i[N/2]; step l captures the 2^(l-1) nodes i[N/2^l], i[3N/2^l], ...,
// i[(2^l - 1)·N/2^l]. Contests compare (step, id): since i and i[N/2]
// attack each other in step 1, at most one of them reaches step 2, and in
// general at most N/2^l candidates survive step l. O(log N) time but
// O(N log N) messages — protocol C embeds this doubling into a stride to
// get the message bound down to O(N).
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::sod {

enum ProtocolBMsg : std::uint16_t {
  kBCapture = 1,  // fields: {candidate_id, step}
  kBAccept = 2,   // fields: {}
  kBReject = 3,   // fields: {}
};

sim::ProcessFactory MakeProtocolB();

}  // namespace celect::proto::sod
