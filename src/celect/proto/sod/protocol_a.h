// Protocol A (paper §3) — leader election with sense of direction.
//
// Two phases. A base node i first captures the contiguous segment
// i[1..k] sequentially, contesting with (level, id) credentials; having
// captured k nodes it runs the second phase: an owner round over i[1..k]
// (set owner_j := i, acknowledged), then elect(i) messages to the strided
// set {i[2k], i[3k], ..., i[N-k]}. A node that collects every accept
// declares itself leader. Capturing i[2k], i[3k], … is what lets a node
// win without capturing a majority: any rival within a stride must
// capture one of i's strided nodes — and loses the (owner) comparison
// there.
//
// Message complexity O(N + N²/k²) — O(N) for k ≥ √N. Worst-case time is
// Θ(N) under the staggered-wakeup chain (each node wakes just before its
// predecessor's capture arrives, so only the last node survives).
//
// Variant A′ (awaken_neighbors): on waking — spontaneously or by message
// — a node sends awaken messages to i[1] and i[k]. All nodes are then
// awake (and passive ones barred from candidacy) within O(k + N/k) time,
// which bounds the election at O(k + N/k): O(√N) for k = √N.
//
// The LMW86 majority baseline is A with k = ⌈N/2⌉ (the strided elect set
// is then empty); see lmw86.h.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::sod {

// Message types (unique within the protocol).
//
// Deviation from the paper's terse description (see DESIGN.md): losing
// contests are answered with explicit rejects instead of silence, and an
// elect arriving at an owned node is forwarded over the owner-link so the
// owner's *current* (level, id) decides — the same kill-the-owner
// machinery the paper uses in protocols C and E. A literal reading
// admits executions with two leaders (elect racing the owner round) or
// none (stalled walkers blocking every elect).
enum ProtocolAMsg : std::uint16_t {
  kACapture = 1,       // fields: {sender_id, sender_level}
  kAAccept = 2,        // fields: {acceptor_level_at_capture}
  kAReject = 3,        // fields: {} — capture lost; sender is dead
  kAOwner = 4,         // fields: {owner_id}
  kAOwnerAck = 5,      // fields: {}
  kAElect = 6,         // fields: {candidate_id, candidate_level}
  kAElectAccept = 7,   // fields: {}
  kAElectReject = 8,   // fields: {}
  kAFwdElect = 9,      // fields: {candidate_id, candidate_level}
  kAFwdAccept = 10,    // fields: {}
  kAFwdReject = 11,    // fields: {}
  kAAwaken = 12,       // fields: {} (A′ only)
};

struct ProtocolAParams {
  // Capture-segment length. 0 picks the divisor of N closest to √N.
  // Must divide N or be ≥ ⌈N/2⌉ (so the strided set stays exact/empty).
  std::uint32_t k = 0;
  // A′: propagate awaken messages to i[1] and i[k] on wakeup.
  bool awaken_neighbors = false;
};

// Resolves k = 0 to the default stride and validates the choice for N.
std::uint32_t ResolveProtocolAStride(std::uint32_t n,
                                     const ProtocolAParams& params);

// Divisor of n closest to sqrt(n) (ties toward the larger divisor).
std::uint32_t DivisorNearestSqrt(std::uint32_t n);

sim::ProcessFactory MakeProtocolA(ProtocolAParams params = {});

// Per-run counters exposed via RunResult::counters:
//   "a.captures"        — successful captures (accepts sent)
//   "a.ignored"         — capture messages ignored by a stronger node
//   "a.candidates_p2"   — candidates that entered the second phase
inline constexpr char kCounterCaptures[] = "a.captures";
inline constexpr char kCounterIgnored[] = "a.ignored";
inline constexpr char kCounterPhase2[] = "a.candidates_p2";

}  // namespace celect::proto::sod
