#include "celect/proto/sod/protocol_c.h"

#include <deque>
#include <memory>

#include "celect/proto/common.h"
#include "celect/topo/ring_math.h"
#include "celect/util/check.h"

namespace celect::proto::sod {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

class ProtocolCNode : public ElectionProcess {
 public:
  explicit ProtocolCNode(const sim::ProcessInit& init)
      : id_(init.id), n_(init.n) {
    CELECT_CHECK(n_ >= 4 && (n_ & (n_ - 1)) == 0)
        << "protocol C assumes N = 2^r, N >= 4";
    k_ = topo::RingMath::ProtocolCStride(n_);
    class_size_ = n_ / k_;
    doubling_rounds_ = topo::RingMath::FloorLog2(k_);
  }

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    phase_ = Phase::kClassWalk;
    ctx.BeginPhase(obs::PhaseId::kCapture1);
    SendNextCapture(ctx);
  }

  void OnPacket(Context& ctx, Port from_port, const Packet& p,
                bool /*first_contact*/) override {
    switch (p.type) {
      case kCCapture:
        HandleCapture(ctx, from_port, p.field(0), p.field(1));
        break;
      case kCCaptAccept:
        HandleCaptAccept(ctx, p.field(0));
        break;
      case kCCaptReject:
        if (phase_ == Phase::kClassWalk) {
          dead_ = true;
          CloseSpans(ctx);
        }
        break;
      case kCOwner:
        SetOwner(from_port, p.field(0));
        ctx.Send(from_port, Packet{kCOwnerAck, {}});
        break;
      case kCOwnerAck:
        HandleOwnerAck(ctx);
        break;
      case kCElect:
        HandleElect(ctx, from_port, p.field(0), p.field(1));
        break;
      case kCElectAccept:
        HandleElectAccept(ctx);
        break;
      case kCElectReject:
        if (phase_ == Phase::kDoubling) {
          dead_ = true;
          CloseSpans(ctx);
        }
        break;
      case kCFwd:
        HandleFwd(ctx, from_port, p.field(0), p.field(1));
        break;
      case kCFwdAccept:
        HandleFwdReply(ctx, /*accepted=*/true);
        break;
      case kCFwdReject:
        HandleFwdReply(ctx, /*accepted=*/false);
        break;
      default:
        CELECT_CHECK(false) << "protocol C: unknown message type "
                            << p.type;
    }
  }

 public:
  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables obs;
    obs.monotone = {{"level", level_},
                    {"step", step_},
                    {"phase", static_cast<std::int64_t>(phase_)},
                    {"captured", captured_ ? 1 : 0},
                    {"dead", dead_ ? 1 : 0}};
    obs.terminated = declared_ || !Live();
    return obs;
  }

 private:
  enum class Phase { kIdle, kClassWalk, kOwnerRound, kDoubling, kDone };

  bool Live() const {
    return is_base() && !captured_ && !dead_ && phase_ != Phase::kIdle;
  }

  // A candidate can be killed in any phase; close whichever span is open.
  void CloseSpans(Context& ctx) {
    ctx.EndPhase(obs::PhaseId::kDoubling);
    ctx.EndPhase(obs::PhaseId::kCapture2);
    ctx.EndPhase(obs::PhaseId::kCapture1);
  }

  void SetOwner(Port port, Id owner) {
    has_owner_ = true;
    owner_port_ = port;
    owner_id_ = owner;
  }

  // ---- Phase 1: class walk -------------------------------------------

  void SendNextCapture(Context& ctx) {
    std::uint64_t d = static_cast<std::uint64_t>(level_ + 1) * k_;
    CELECT_DCHECK(d <= n_ - k_);
    ctx.Send(static_cast<Port>(d), Packet{kCCapture, {id_, level_}});
  }

  void HandleCapture(Context& ctx, Port from_port, Id sender,
                     std::int64_t sender_level) {
    if (!is_base() || captured_) {
      captured_ = true;
      SetOwner(from_port, sender);
      ctx.Send(from_port, Packet{kCCaptAccept, {0}});
      return;
    }
    if (Credential{level_, id_} < Credential{sender_level, sender}) {
      captured_ = true;
      CloseSpans(ctx);
      SetOwner(from_port, sender);
      // Surrender: the winner extends its captures by ours (level_ class
      // mates forward of us).
      ctx.Send(from_port, Packet{kCCaptAccept, {level_}});
    } else {
      ctx.Send(from_port, Packet{kCCaptReject, {}});
    }
  }

  void HandleCaptAccept(Context& ctx, std::int64_t acceptor_level) {
    if (captured_ || dead_ || phase_ != Phase::kClassWalk) return;
    level_ += acceptor_level + 1;
    if (level_ < static_cast<std::int64_t>(class_size_) - 1) {
      SendNextCapture(ctx);
    } else {
      EnterOwnerRound(ctx);
    }
  }

  // ---- Phase 2a: class ownership update ------------------------------

  void EnterOwnerRound(Context& ctx) {
    phase_ = Phase::kOwnerRound;
    ctx.EndPhase(obs::PhaseId::kCapture1);
    ctx.BeginPhase(obs::PhaseId::kCapture2);
    ctx.AddCounter(ctx.ResolveCounter(kCounterClassWinners), 1);
    pending_ = class_size_ - 1;
    for (std::uint64_t d = k_; d + k_ <= n_; d += k_) {
      ctx.Send(static_cast<Port>(d), Packet{kCOwner, {id_}});
    }
  }

  void HandleOwnerAck(Context& ctx) {
    if (captured_ || dead_ || phase_ != Phase::kOwnerRound) return;
    if (--pending_ > 0) return;
    step_ = 1;
    phase_ = Phase::kDoubling;
    ctx.EndPhase(obs::PhaseId::kCapture2);
    SendDoublingStep(ctx);
  }

  // ---- Phase 2b: doubling over i[1..k-1] -----------------------------

  void SendDoublingStep(Context& ctx) {
    ctx.BeginPhase(obs::PhaseId::kDoubling, step_);
    const std::uint32_t gap = k_ >> step_;  // k / 2^step
    CELECT_DCHECK(gap >= 1);
    pending_ = 0;
    for (std::uint32_t m = 1; m * gap < k_; m += 2) {
      ctx.Send(static_cast<Port>(m * gap), Packet{kCElect, {id_, step_}});
      ++pending_;
    }
    CELECT_DCHECK(pending_ == (1u << (step_ - 1)));
  }

  void HandleElect(Context& ctx, Port from_port, Id cand,
                   std::int64_t cand_step) {
    Credential theirs{cand_step, cand};
    if (Live()) {
      // Reached a candidate directly (a class authority — possibly still
      // in its class walk, in which case its step of 0 loses).
      if (declared_ || Credential{step_, id_} > theirs) {
        ctx.Send(from_port, Packet{kCElectReject, {}});
      } else {
        captured_ = true;
        CloseSpans(ctx);
        SetOwner(from_port, cand);
        ctx.Send(from_port, Packet{kCElectAccept, {}});
      }
      return;
    }
    if (has_owner_) {
      fwd_queue_.push_back(PendingElect{from_port, cand, cand_step});
      PumpForward(ctx);
      return;
    }
    SetOwner(from_port, cand);
    ctx.Send(from_port, Packet{kCElectAccept, {}});
  }

  void PumpForward(Context& ctx) {
    if (fwd_busy_ || fwd_queue_.empty()) return;
    fwd_busy_ = true;
    const PendingElect& head = fwd_queue_.front();
    ctx.Send(owner_port_, Packet{kCFwd, {head.cand, head.step}});
  }

  void HandleFwd(Context& ctx, Port from_port, Id cand,
                 std::int64_t cand_step) {
    if (Live()) {
      if (declared_ || Credential{step_, id_} > Credential{cand_step, cand}) {
        ctx.Send(from_port, Packet{kCFwdReject, {}});
        return;
      }
      dead_ = true;  // killed through one of our captured nodes
      CloseSpans(ctx);
    }
    ctx.Send(from_port, Packet{kCFwdAccept, {}});
  }

  void HandleFwdReply(Context& ctx, bool accepted) {
    CELECT_CHECK(fwd_busy_ && !fwd_queue_.empty())
        << "unexpected forward reply";
    PendingElect head = fwd_queue_.front();
    fwd_queue_.pop_front();
    fwd_busy_ = false;
    if (accepted) {
      SetOwner(head.src_port, head.cand);
      ctx.Send(head.src_port, Packet{kCElectAccept, {}});
    } else {
      ctx.Send(head.src_port, Packet{kCElectReject, {}});
    }
    PumpForward(ctx);
  }

  void HandleElectAccept(Context& ctx) {
    if (captured_ || dead_ || phase_ != Phase::kDoubling) return;
    if (--pending_ > 0) return;
    ctx.EndPhase(obs::PhaseId::kDoubling);
    if (static_cast<std::uint32_t>(step_) == doubling_rounds_) {
      phase_ = Phase::kDone;
      declared_ = true;
      ctx.DeclareLeader();
      return;
    }
    ++step_;
    SendDoublingStep(ctx);
  }

  struct PendingElect {
    Port src_port;
    Id cand;
    std::int64_t step;
  };

  const Id id_;
  const std::uint32_t n_;
  std::uint32_t k_ = 0;               // stride (≈ N/log N)
  std::uint32_t class_size_ = 0;      // N/k (≈ log N)
  std::uint32_t doubling_rounds_ = 0; // log2 k

  Phase phase_ = Phase::kIdle;
  bool captured_ = false;
  bool dead_ = false;
  bool declared_ = false;
  std::int64_t level_ = 0;  // class mates captured (phase 1)
  std::int64_t step_ = 0;   // doubling step (phase 2)
  bool has_owner_ = false;
  Port owner_port_ = sim::kInvalidPort;
  Id owner_id_ = 0;
  std::uint32_t pending_ = 0;
  bool fwd_busy_ = false;
  std::deque<PendingElect> fwd_queue_;
};

}  // namespace

sim::ProcessFactory MakeProtocolC() {
  return [](const sim::ProcessInit& init) {
    return std::make_unique<ProtocolCNode>(init);
  };
}

}  // namespace celect::proto::sod
