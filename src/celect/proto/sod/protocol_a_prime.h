// Protocol A′ (paper §3) — protocol A plus the awaken wave.
//
// A's weakness is the staggered-wakeup chain: if node i[1] wakes just
// before node i's capture arrives, every capture by a smaller identity
// is contested away and the eventual winner wakes Θ(N) time late. A′
// has every node, on waking (spontaneously or by message), awaken i[1]
// and i[k]; all nodes are then awake — and passive nodes barred from
// candidacy — within O(k + N/k) time, so the protocol runs in
// O(k + N/k) time and O(N) messages: O(√N) time at k = √N.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::sod {

// k = 0 picks the divisor of N closest to √N.
sim::ProcessFactory MakeProtocolAPrime(std::uint32_t k = 0);

}  // namespace celect::proto::sod
