#include "celect/proto/sod/lmw86.h"

#include "celect/proto/sod/protocol_a.h"
#include "celect/util/check.h"

namespace celect::proto::sod {

std::uint32_t Lmw86Stride(std::uint32_t n) {
  CELECT_CHECK(n >= 2);
  return (n + 1) / 2;  // ⌈N/2⌉: a majority segment
}

sim::ProcessFactory MakeLmw86() {
  return [](const sim::ProcessInit& init) {
    ProtocolAParams params;
    params.k = Lmw86Stride(init.n);
    return MakeProtocolA(params)(init);
  };
}

}  // namespace celect::proto::sod
