#include "celect/proto/sod/protocol_a.h"

#include <cmath>
#include <deque>
#include <memory>

#include "celect/proto/common.h"
#include "celect/util/check.h"

namespace celect::proto::sod {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

// Implementation notes (see DESIGN.md, "protocol A hardening"):
// the paper's two-phase description leaves two races open when read
// literally — an elect can overtake the second-phase owner update at a
// captured node (two candidates can then both collect full accept sets),
// and a silently-ignored capture leaves a stalled high-credential walker
// that blocks every later elect. We close both with the machinery the
// paper itself uses in protocols C and E: losing contests answer with an
// explicit reject (the loser is dead, not stalled), captures record the
// capturing link as owner-link, and an elect arriving at an owned node is
// forwarded over the owner-link so the *owner's current* (level, id)
// credential decides — kill the owner before claiming the node. At most
// one forwarded contest is outstanding per node (further ones queue),
// which also keeps per-link congestion constant.

class ProtocolANode : public ElectionProcess {
 public:
  ProtocolANode(const sim::ProcessInit& init, std::uint32_t k,
                bool awaken_neighbors)
      : id_(init.id),
        n_(init.n),
        k_(k),
        awaken_neighbors_(awaken_neighbors) {}

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    if (awaken_neighbors_) SendAwakens(ctx);
    phase_ = Phase::kCapturing;
    ctx.BeginPhase(obs::PhaseId::kCapture1);
    SendNextCapture(ctx);
  }

  void OnPacket(Context& ctx, Port from_port, const Packet& p,
                bool first_contact) override {
    if (awaken_neighbors_ && first_contact) SendAwakens(ctx);
    switch (p.type) {
      case kACapture:
        HandleCapture(ctx, from_port, p.field(0), p.field(1));
        break;
      case kAAccept:
        HandleAccept(ctx, p.field(0));
        break;
      case kAReject:
        if (phase_ == Phase::kCapturing) {
          dead_ = true;
          CloseSpans(ctx);
        }
        break;
      case kAOwner:
        SetOwner(from_port, p.field(0));
        ctx.Send(from_port, Packet{kAOwnerAck, {}});
        break;
      case kAOwnerAck:
        HandleOwnerAck(ctx);
        break;
      case kAElect:
        HandleElect(ctx, from_port, p.field(0), p.field(1));
        break;
      case kAElectAccept:
        HandleElectAccept(ctx);
        break;
      case kAElectReject:
        if (phase_ == Phase::kElectRound) {
          dead_ = true;
          CloseSpans(ctx);
        }
        break;
      case kAFwdElect:
        HandleFwdElect(ctx, from_port, p.field(0), p.field(1));
        break;
      case kAFwdAccept:
        HandleFwdReply(ctx, /*accepted=*/true);
        break;
      case kAFwdReject:
        HandleFwdReply(ctx, /*accepted=*/false);
        break;
      case kAAwaken:
        break;  // waking (and barring) already happened in the base class
      default:
        CELECT_CHECK(false) << "protocol A: unknown message type "
                            << p.type;
    }
  }

 public:
  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables obs;
    obs.monotone = {{"level", level_},
                    {"phase", static_cast<std::int64_t>(phase_)},
                    {"captured", captured_ ? 1 : 0},
                    {"dead", dead_ ? 1 : 0}};
    obs.terminated = declared_ || !LiveCandidate();
    return obs;
  }

 private:
  enum class Phase { kIdle, kCapturing, kOwnerRound, kElectRound, kDone };

  Credential Cred() const { return Credential{level_, id_}; }

  // A contest can end this candidate in any phase (capture, owner round,
  // elect round); close whatever span is open.
  void CloseSpans(Context& ctx) {
    ctx.EndPhase(obs::PhaseId::kCapture2);
    ctx.EndPhase(obs::PhaseId::kCapture1);
  }

  // A node is a live authority while it is an uncaptured, unkilled base
  // node that has started contesting.
  bool LiveCandidate() const {
    return is_base() && !captured_ && !dead_ && phase_ != Phase::kIdle;
  }

  void SendAwakens(Context& ctx) {
    ctx.Send(1, Packet{kAAwaken, {}});
    if (k_ != 1 && k_ <= n_ - 1) ctx.Send(k_, Packet{kAAwaken, {}});
  }

  void SetOwner(Port port, Id owner) {
    has_owner_ = true;
    owner_port_ = port;
    owner_id_ = owner;
  }

  void SendNextCapture(Context& ctx) {
    Port d = static_cast<Port>(level_ + 1);
    CELECT_DCHECK(d <= n_ - 1);
    ctx.Send(d, Packet{kACapture, {id_, level_}});
  }

  void HandleCapture(Context& ctx, Port from_port, Id sender,
                     std::int64_t sender_level) {
    // One record per capture attempt network-wide — use interned refs.
    if (captures_ref_.slot == sim::CounterRef::kUnresolved) {
      captures_ref_ = ctx.ResolveCounter(kCounterCaptures);
      ignored_ref_ = ctx.ResolveCounter(kCounterIgnored);
    }
    if (!is_base() || captured_) {
      // Passive or already-captured nodes accept freely with level 0 —
      // their own conquests (if any) were already surrendered.
      captured_ = true;
      SetOwner(from_port, sender);
      ctx.AddCounter(captures_ref_, 1);
      ctx.Send(from_port, Packet{kAAccept, {0}});
      return;
    }
    // Uncaptured base node (alive or killed): contest on (level, id).
    if (Cred() < Credential{sender_level, sender}) {
      captured_ = true;
      CloseSpans(ctx);
      SetOwner(from_port, sender);
      ctx.AddCounter(captures_ref_, 1);
      ctx.Send(from_port, Packet{kAAccept, {level_}});
    } else {
      ctx.AddCounter(ignored_ref_, 1);
      ctx.Send(from_port, Packet{kAReject, {}});
    }
  }

  void HandleAccept(Context& ctx, std::int64_t acceptor_level) {
    if (captured_ || dead_ || phase_ != Phase::kCapturing) return;
    level_ += acceptor_level + 1;
    if (level_ < k_) {
      SendNextCapture(ctx);
    } else {
      EnterOwnerRound(ctx);
    }
  }

  void EnterOwnerRound(Context& ctx) {
    phase_ = Phase::kOwnerRound;
    ctx.EndPhase(obs::PhaseId::kCapture1);
    ctx.BeginPhase(obs::PhaseId::kCapture2);
    ctx.AddCounter(ctx.ResolveCounter(kCounterPhase2), 1);
    pending_acks_ = k_;
    for (Port d = 1; d <= k_; ++d) {
      ctx.Send(d, Packet{kAOwner, {id_}});
    }
  }

  void HandleOwnerAck(Context& ctx) {
    if (captured_ || dead_ || phase_ != Phase::kOwnerRound) return;
    if (--pending_acks_ > 0) return;
    EnterElectRound(ctx);
  }

  void EnterElectRound(Context& ctx) {
    phase_ = Phase::kElectRound;
    pending_elect_ = 0;
    // Strided targets {i[2k], i[3k], ..., i[N-k]} — empty when k ≥ N/2
    // (the LMW86 majority case declares right after the owner round).
    for (std::uint64_t d = 2ull * k_; d + k_ <= n_; d += k_) {
      ctx.Send(static_cast<Port>(d), Packet{kAElect, {id_, level_}});
      ++pending_elect_;
    }
    if (pending_elect_ == 0) Declare(ctx);
  }

  void HandleElect(Context& ctx, Port from_port, Id cand,
                   std::int64_t cand_level) {
    Credential theirs{cand_level, cand};
    if (LiveCandidate()) {
      // The elect reached a candidate directly: contest it here.
      if (declared_ || Cred() > theirs) {
        ctx.Send(from_port, Packet{kAElectReject, {}});
      } else {
        captured_ = true;  // killed by a stronger candidate
        CloseSpans(ctx);
        SetOwner(from_port, cand);
        ctx.Send(from_port, Packet{kAElectAccept, {}});
      }
      return;
    }
    if (has_owner_) {
      // Owned node: the candidate must kill our (current) owner first.
      fwd_queue_.push_back(PendingElect{from_port, cand, cand_level});
      PumpForward(ctx);
      return;
    }
    // Unowned passive (or killed-and-unowned) node: accept.
    SetOwner(from_port, cand);
    ctx.Send(from_port, Packet{kAElectAccept, {}});
  }

  void PumpForward(Context& ctx) {
    if (fwd_busy_ || fwd_queue_.empty()) return;
    fwd_busy_ = true;
    const PendingElect& head = fwd_queue_.front();
    ctx.Send(owner_port_, Packet{kAFwdElect, {head.cand, head.level}});
  }

  void HandleFwdElect(Context& ctx, Port from_port, Id cand,
                      std::int64_t cand_level) {
    // We are the recorded owner of the forwarding node.
    if (LiveCandidate()) {
      if (declared_ || Cred() > Credential{cand_level, cand}) {
        ctx.Send(from_port, Packet{kAFwdReject, {}});
        return;
      }
      dead_ = true;  // the candidate killed us
      CloseSpans(ctx);
    }
    ctx.Send(from_port, Packet{kAFwdAccept, {}});
  }

  void HandleFwdReply(Context& ctx, bool accepted) {
    CELECT_CHECK(fwd_busy_ && !fwd_queue_.empty())
        << "unexpected forward reply";
    PendingElect head = fwd_queue_.front();
    fwd_queue_.pop_front();
    fwd_busy_ = false;
    if (accepted) {
      SetOwner(head.src_port, head.cand);
      ctx.Send(head.src_port, Packet{kAElectAccept, {}});
    } else {
      ctx.Send(head.src_port, Packet{kAElectReject, {}});
    }
    PumpForward(ctx);
  }

  void HandleElectAccept(Context& ctx) {
    if (captured_ || dead_ || phase_ != Phase::kElectRound) return;
    if (--pending_elect_ > 0) return;
    Declare(ctx);
  }

  void Declare(Context& ctx) {
    phase_ = Phase::kDone;
    declared_ = true;
    CloseSpans(ctx);
    ctx.DeclareLeader();
  }

  struct PendingElect {
    Port src_port;
    Id cand;
    std::int64_t level;
  };

  const Id id_;
  const std::uint32_t n_;
  const std::uint32_t k_;
  const bool awaken_neighbors_;

  Phase phase_ = Phase::kIdle;
  // Interned counter handles, resolved on first capture traffic.
  sim::CounterRef captures_ref_{kCounterCaptures,
                                sim::CounterRef::kUnresolved};
  sim::CounterRef ignored_ref_{kCounterIgnored,
                               sim::CounterRef::kUnresolved};
  bool captured_ = false;
  bool dead_ = false;
  bool declared_ = false;
  std::int64_t level_ = 0;
  bool has_owner_ = false;
  Port owner_port_ = sim::kInvalidPort;
  Id owner_id_ = 0;
  std::uint32_t pending_acks_ = 0;
  std::uint32_t pending_elect_ = 0;
  bool fwd_busy_ = false;
  std::deque<PendingElect> fwd_queue_;
};

}  // namespace

std::uint32_t DivisorNearestSqrt(std::uint32_t n) {
  CELECT_CHECK(n >= 2);
  std::uint32_t root =
      static_cast<std::uint32_t>(std::lround(std::sqrt(double(n))));
  if (root < 1) root = 1;
  for (std::uint32_t delta = 0; delta <= n; ++delta) {
    if (root + delta <= n && n % (root + delta) == 0) return root + delta;
    if (root > delta && n % (root - delta) == 0) return root - delta;
  }
  return 1;  // unreachable: 1 divides n
}

std::uint32_t ResolveProtocolAStride(std::uint32_t n,
                                     const ProtocolAParams& params) {
  CELECT_CHECK(n >= 2);
  std::uint32_t k = params.k;
  if (k == 0) k = DivisorNearestSqrt(n);
  if (k > n - 1) k = n - 1;
  CELECT_CHECK(k >= 1);
  CELECT_CHECK(n % k == 0 || 2ull * k >= n)
      << "k=" << k << " must divide N=" << n
      << " (or be a majority, 2k >= N) for the strided elect set";
  return k;
}

sim::ProcessFactory MakeProtocolA(ProtocolAParams params) {
  return [params](const sim::ProcessInit& init)
             -> std::unique_ptr<sim::Process> {
    std::uint32_t k = ResolveProtocolAStride(init.n, params);
    return std::make_unique<ProtocolANode>(init, k,
                                           params.awaken_neighbors);
  };
}

}  // namespace celect::proto::sod
