#include "celect/proto/sod/protocol_a_prime.h"

#include "celect/proto/sod/protocol_a.h"

namespace celect::proto::sod {

sim::ProcessFactory MakeProtocolAPrime(std::uint32_t k) {
  ProtocolAParams params;
  params.k = k;
  params.awaken_neighbors = true;
  return MakeProtocolA(params);
}

}  // namespace celect::proto::sod
