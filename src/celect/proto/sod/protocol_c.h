// Protocol C (paper §3) — the headline sense-of-direction result:
// O(N) messages and O(log N) time. Requires N = 2^r.
//
// Let k = N / 2^⌈log log N⌉ (≈ N/log N, a power of two). Using i as
// reference, positions split into k residue classes R_j = {i[j], i[j+k],
// i[j+2k], ...} of size N/k ≈ log N each.
//
// Phase 1 — class walk: a base node captures its residue mates i[k],
// i[2k], ..., i[N-k] sequentially with protocol A's (level, id) contest
// rules (including surrender of a loser's captures). A node competes
// only with its ≈log N class mates, so this phase takes O(log N) time
// and O(N) messages, and leaves at most one candidate per class — at
// most k ≈ N/log N candidates.
//
// Phase 2 — doubling across classes: the survivor updates ownership of
// its class, then captures i[1..k-1] in log k steps (step l targets the
// odd multiples of k/2^l), contesting on (step, id). An elect reaching
// a captured node is forwarded to the node's current owner — the class
// authority — which must be killed before the node is claimed. Step-l
// survivors number at most k/2^l, each sending 2^(l-1) messages, so the
// phase costs O(N) messages and O(log N) time.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::sod {

enum ProtocolCMsg : std::uint16_t {
  kCCapture = 1,      // fields: {id, level} — phase-1 class walk
  kCCaptAccept = 2,   // fields: {acceptor_level}
  kCCaptReject = 3,   // fields: {}
  kCOwner = 4,        // fields: {id}
  kCOwnerAck = 5,     // fields: {}
  kCElect = 6,        // fields: {id, step} — phase-2 doubling
  kCElectAccept = 7,  // fields: {}
  kCElectReject = 8,  // fields: {}
  kCFwd = 9,          // fields: {id, step} — forwarded to the owner
  kCFwdAccept = 10,   // fields: {}
  kCFwdReject = 11,   // fields: {}
};

sim::ProcessFactory MakeProtocolC();

// Counters in RunResult::counters.
inline constexpr char kCounterClassWinners[] = "c.class_winners";

}  // namespace celect::proto::sod
