// Protocol F (paper §4) — the Ɛ-then-D hybrid, no sense of direction.
//
// A base node runs Ɛ until its level reaches ⌈N/k⌉, then broadcasts
// elect(id) on all edges; a node accepts iff its (level, maxid) is
// lexicographically below (N/k, id). Since at most k nodes can reach
// level N/k, the broadcast costs O(Nk) messages, for O(Nk) total and —
// when all nodes wake within O(N/k) of each other (Lemma 4.1), or once
// some node reaches level k (Lemma 4.2) — O(N/k) time. Protocol G adds
// the wakeup-ordering phases that make the time bound unconditional.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::nosod {

// log N <= k <= N per the paper; k trades messages (O(Nk)) for time
// (O(N/k)).
sim::ProcessFactory MakeProtocolF(std::uint32_t k);

}  // namespace celect::proto::nosod
