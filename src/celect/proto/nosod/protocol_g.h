// Protocol G (paper §4) — the headline no-sense-of-direction result:
// O(Nk) messages and O(N/k) time for any log N ≤ k ≤ N, unconditionally.
//
// F's time bound needs wakeups clustered within O(N/k); an adversary
// staggering base-node wakeups defeats it. G prepends two phases that
// recognise wakeup order. First phase: a fresh base node asks permission
// over k edges; finished nodes answer "finish" (the asker is ordered
// after them and killed), passive nodes are captured ("accept"), peers
// still in their first phase answer "proceed"; captured nodes query
// their owner's progress with a congestion-free check handshake. Second
// phase: the survivor captures all proceed-responders in parallel,
// reaching level k. Lemma 4.3: in every 11-time-unit window either k
// nodes wake or someone reaches level k, so F's preconditions hold and
// the whole protocol runs in O(N/k) time. At the message-optimal point
// k = log N this is O(N log N) messages and O(N/log N) time — matching
// the paper's Ω(N/log N) lower bound (§5).
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::nosod {

sim::ProcessFactory MakeProtocolG(std::uint32_t k);

// The [Si92] refinement the paper closes §4 with: replacing the
// sequential Ɛ walk with the AG85 synchronous capturing pattern
// (exponentially growing capture batches at a frozen level) keeps the
// O(Nk) message bound but improves time to O(log N + min(r, N/log N)),
// where r is the number of base nodes.
sim::ProcessFactory MakeProtocolGDoubling(std::uint32_t k);

// The paper's message-optimal parameter choice k = ⌈log2 N⌉.
std::uint32_t MessageOptimalK(std::uint32_t n);

}  // namespace celect::proto::nosod
