// Fault-tolerant election (paper §4, last paragraph) — tolerates up to f
// initial site failures using the BKWZ87 redundancy idea:
// O(Nf + N log N) messages and O(N/log N) time.
//
// The paper cites the technique without spelling it out; our adaptation
// (documented in DESIGN.md) adds four forms of f-redundancy to protocol
// G at k = log N:
//   1. the first phase asks k+f nodes and proceeds after k responses;
//   2. the capture walk keeps a window of f+1 outstanding captures (at
//      most f targets can be silently dead, so the window always holds a
//      live one and progress is preserved; rejects carry the rejecter's
//      current credential so stale-credential crossings re-contest
//      instead of mutually killing);
//   3. the elect broadcast accepts a quorum of N-1-f;
//   4. a Paxos-style confirm round: the broadcaster must also *lock*
//      N-1-f nodes; a locked node rejects every other candidate until
//      its owner dies and releases it (with a retry hint to the
//      strongest rejected rival). Two locked quorums of size N-1-f are
//      necessarily disjoint, which is impossible for f < (N-1)/2 — so at
//      most one candidate ever declares, even when fewer than f nodes
//      actually failed.
//
// With f > 0 the engine additionally survives *mid-run* crashes (nodes
// killed at arbitrary points by a sim::FaultPlan, up to f in total) via
// timer-driven recovery loops layered on the same message flow: capture
// watchdogs retry then abandon silent capture targets, broadcast/confirm
// and first-phase retransmits cover lossy links, lock leases self-release
// when the lock owner stops pursuing, owner watches re-drive stalled
// forwards, and a revival watch lets a killed or captured node re-enter
// the race when the rival that outranked it is itself condemned — so a
// candidate that kills its rivals and then crashes cannot strand the
// election. Every loop is capped, and with f = 0 no timer is ever armed:
// fault-free schedules are bit-identical to protocol G's.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::nosod {

// k = 0 picks the message-optimal k = ⌈log2 N⌉. Requires f < (N-1)/2
// (slightly stronger than the paper's f < N/2; the margin pays for the
// confirm-round disjointness argument).
sim::ProcessFactory MakeFaultTolerant(std::uint32_t f, std::uint32_t k = 0);

}  // namespace celect::proto::nosod
