// Shared engine for the paper's §4 family (no sense of direction):
//
//   E — AG85 sequential capture with the Ɛ forwarding throttle
//       (walk to level N-1, declare).
//   F — Ɛ-walk to level N/k, then protocol D's broadcast with the
//       (level, maxid) acceptance rule.
//   G — F preceded by the two wakeup-ordering phases (first-phase
//       permission handshake with finish/accept/proceed/check, then a
//       parallel capture burst to level k).
//   FT — G extended to tolerate f initial crash failures: first-phase
//       redundancy (ask k+f, wait for k), capture window of f+1
//       outstanding messages, and an elect quorum of N-1-f. Against
//       *mid-run* crashes and lossy links it adds timer-driven recovery:
//       a capture watchdog that retries and then abandons silent targets
//       (re-filling the f+1 window), elect/confirm retransmits, lease
//       probes that detect a crashed lock owner and self-release, and an
//       owner-watch at captured nodes that condemns a crashed owner so
//       forwarded contests still resolve. With f = 0 no timer is ever
//       armed and behaviour is bit-identical to protocol G.
//
// Walk semantics (Ɛ): a candidate sends capture(level, id) over its
// incident edges one at a time (a window of f+1 for FT). An uncaptured
// node contests with its own (level, id) — winner captures it, loser is
// killed by an explicit reject. A captured node forwards the contest to
// its current owner, who must be killed first; with the throttle, at
// most one forwarded message per node is outstanding and the node
// buffers contenders, forwarding/accepting the lexicographically largest
// (exactly the paper's Ɛ modification that makes every successful
// capture O(1) time). With the throttle off (raw AG85 protocol A), every
// contender is forwarded immediately and a node may have Θ(N) forwarded
// messages serialised on one link — the pathology motivating Ɛ.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::nosod {

enum EfgMsg : std::uint16_t {
  kFCapture = 1,      // fields: {id, level}
  kFAccept = 2,       // fields: {}
  kFReject = 3,       // fields: {rejecter_id, rejecter_level}
  kFFwd = 4,          // fields: {id, level} — contest forwarded to owner
  kFFwdAccept = 5,    // fields: {} — owner killed
  kFFwdReject = 6,    // fields: {rejecter_id, rejecter_level}
  kFElect = 7,        // fields: {id, target_level}
  kFElectAccept = 8,  // fields: {}
  kGFirstPhase = 9,   // fields: {id}
  kGPAccept = 10,     // fields: {} — first-phase capture of a passive node
  kGProceed = 11,     // fields: {}
  kGFinish = 12,      // fields: {}
  kGCheck = 13,       // fields: {}
  kGCheckReply = 14,  // fields: {finished ? 1 : 0}

  // FT confirm round (f > 0 only; see fault_tolerant.h). A broadcaster
  // that reaches the elect quorum must also lock a confirm quorum; locked
  // nodes answer everyone else with rejects until their owner releases
  // them, which makes the N-1-f quorums of two would-be leaders disjoint
  // and pins safety down to f < (N-1)/2.
  kFConfirm = 15,             // fields: {id}
  kFConfirmAck = 16,          // fields: {}
  kFConfirmReject = 17,       // fields: {}
  kFElectRejectStronger = 18, // fields: {} — a stronger credential exists
  kFElectRejectLocked = 19,   // fields: {} — node is locked to a rival
  kFRelease = 20,             // fields: {final} — final=0: lock owner died,
                              // unlock; final=1: election decided, stand down
  kFRetryHint = 21,           // fields: {} — unlocked; re-send your elect

  // FT liveness probes (f > 0 only). Mid-run crashes leave handshakes
  // dangling — a capture, forward, or confirm whose counterpart died never
  // completes. Timer-driven recovery pings the suspect; any live node
  // answers with a pong (tag echoed, plus whether it has declared), and
  // two silent probe intervals condemn it as crashed.
  kFOwnerPing = 22,           // fields: {tag}
  kFOwnerPong = 23,           // fields: {tag, leader ? 1 : 0}
};

struct EfgParams {
  // F/G family parameter: the walk stops (and the broadcast starts) at
  // level ⌈N/k⌉. Ignored when broadcast == false.
  std::uint32_t k = 1;
  // false: pure protocol E — walk to level N-1 and declare directly.
  bool broadcast = true;
  // The Ɛ throttle. false reproduces raw AG85 forwarding (Θ(N) link
  // congestion possible).
  bool throttle_forwards = true;
  // Protocol G's two wakeup-ordering phases. Implies the "nodes not yet
  // in their second phase count as passive" capture rule.
  bool g_phases = false;
  // Failure budget f (FT variant): first-phase redundancy, capture
  // window f+1, elect quorum N-1-f. Requires g_phases or plain walk.
  std::uint32_t f = 0;
  // [Si92] refinement (paper §4, last paragraph): walk in exponentially
  // growing batches using the AG85 synchronous capturing pattern. The
  // level is frozen during a batch (so crossing contests stay totally
  // ordered) and jumps by the batch's accepts at its end; reaching level
  // N/k then takes O(log N) batch rounds instead of N/k sequential
  // round-trips, giving O(log N + min(r, N/log N)) time in the number of
  // base nodes r. Mutually exclusive with f > 0.
  bool doubling_walk = false;
};

sim::ProcessFactory MakeEfgProcess(EfgParams params);

// Counters surfaced via RunResult::counters.
inline constexpr char kCounterBroadcasters[] = "f.broadcasters";
inline constexpr char kCounterFwdQueuePeak[] = "f.fwd_queue_peak";
// Transport crash hints (Process::OnPeerSuspected) the FT engine acted
// on by fast-forwarding a pending capture's watchdog.
inline constexpr char kCounterSuspicions[] = "f.suspicions_acted";

}  // namespace celect::proto::nosod
