// Leader leases over repeated elections — the continuous-service layer.
//
// The paper's protocols elect once and stop. A long-running service
// instead *leases* leadership: the winner of an election holds the
// leader role for a bounded window, renews it while healthy, and the
// followers re-elect when the lease lapses — so the system keeps a
// leader alive through crashes, rejoins, and voluntary step-downs.
//
// This engine wraps an inner election factory (the §4 G/FT engine) in a
// term-numbered lease protocol:
//
//   * Elections are numbered by monotone *terms*. All inner-protocol
//     traffic is wrapped (type += kLeaseWrapBase, term prepended) so
//     each term is an independent election instance; a node adopting a
//     higher term discards its old instance. The inner protocol's
//     safety gives at most one winner per term.
//
//   * The term winner does not lead yet — it must *acquire* the lease:
//     broadcast grant(term, round, deadline = now + lease_duration) and
//     collect acks from a majority quorum (⌊N/2⌋+1, itself included).
//     Renewals re-run the same round with a fresh deadline. A follower
//     acks (t, D) only if t equals its promised term (the unique term-t
//     holder extending itself) or t exceeds it *and* its previous
//     promise has strictly expired; acking promises (t, D). Any two
//     quorums intersect in a node whose promise forbids overlap, so at
//     most one lease is valid at any instant — even across message
//     loss, delay, and crashes (safety argument in DESIGN.md §12).
//
//   * Crash recovery loses promises (the model has no stable storage).
//     A rejoined node therefore observes a quarantine ("grey") period
//     of one lease_duration before acking again: every promise its
//     previous life made expires inside that window, so the quorum-
//     intersection argument survives churn.
//
//   * Liveness: every engaged node runs a watchdog; when no valid lease
//     is known and no election traffic has been heard recently, it
//     bumps the term and nominates itself (periods are staggered by
//     identity so candidates do not move in lockstep). A holder that
//     reaches max_renewals steps down (revoke + release broadcast),
//     which drives the back-to-back re-election storms the churn
//     workload measures.
//
//   * Quiescence: the simulator runs to an empty queue, so the engine
//     stops arming timers (and nominating) once now >= horizon. The
//     final lease runs out un-renewed and the run drains.
//
// Lease lifecycle counters (granted/renewed/expired/revoked) are
// recorded holder-side via Context::RecordLease; the at-most-one-valid-
// holder invariant reads ProtocolObservables::lease claims.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"
#include "celect/sim/time.h"

namespace celect::proto::nosod {

// Lease-layer message types. Disjoint from EfgMsg (1..23); wrapped
// inner traffic lives at kLeaseWrapBase + inner_type.
enum LeaseMsg : std::uint16_t {
  kLeaseGrant = 40,    // fields: {term, round, leader_id, deadline_ticks}
  kLeaseRenew = 41,    // fields: {term, round, leader_id, deadline_ticks}
  kLeaseAck = 42,      // fields: {term, round}
  kLeaseReject = 43,   // fields: {term, round}
  kLeaseRelease = 44,  // fields: {term} — holder stepped down
  // Sentinel offset, not a packet kind: wrapped inner traffic is
  // dispatched by "type >= wrap base" range checks, never a case arm.
  // celect-lint: allow(proto-packet-arms) range-dispatched sentinel
  kLeaseWrapBase = 100,
};

struct LeaseParams {
  // How long one granted/renewed lease is valid.
  sim::Time lease_duration = sim::Time::FromUnits(4);
  // Holder renewal cadence; must be positive and < lease_duration so a
  // healthy holder renews before expiry.
  sim::Time renew_interval = sim::Time::FromUnits(1);
  // Watchdog base period: how long followers wait on a missing lease
  // (and on a silent election) before bumping the term. Staggered per
  // node by identity to avoid lockstep candidacies.
  sim::Time election_timeout = sim::Time::FromUnits(4);
  // The engine initiates nothing (timers, nominations, renewals) at or
  // past this simulated time, so the run quiesces. The service window
  // of the benchmark is [0, horizon).
  sim::Time horizon = sim::Time::FromUnits(60);
  // Renewals before the holder voluntarily steps down and forces a
  // re-election. 0 = never step down (lead until crash or horizon).
  std::uint32_t max_renewals = 0;
  // Inner election parameters (MakeFaultTolerant): failure budget f and
  // capture parameter k (0 = log N). f = 0 runs plain protocol G
  // inside; mid-election crashes are then recovered by the lease
  // layer's term-bumping watchdog instead of the FT timers.
  std::uint32_t f = 0;
  std::uint32_t k = 0;
};

sim::ProcessFactory MakeLeaseEngine(LeaseParams params);

}  // namespace celect::proto::nosod
