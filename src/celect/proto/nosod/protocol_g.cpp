#include "celect/proto/nosod/protocol_g.h"

#include "celect/proto/nosod/efg_engine.h"
#include "celect/topo/ring_math.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

std::uint32_t MessageOptimalK(std::uint32_t n) {
  CELECT_CHECK(n >= 2);
  return topo::RingMath::CeilLog2(n) > 0 ? topo::RingMath::CeilLog2(n) : 1;
}

sim::ProcessFactory MakeProtocolG(std::uint32_t k) {
  CELECT_CHECK(k >= 1);
  EfgParams params;
  params.k = k;
  params.broadcast = true;
  params.g_phases = true;
  return MakeEfgProcess(params);
}

sim::ProcessFactory MakeProtocolGDoubling(std::uint32_t k) {
  CELECT_CHECK(k >= 1);
  EfgParams params;
  params.k = k;
  params.broadcast = true;
  params.g_phases = true;
  params.doubling_walk = true;
  return MakeEfgProcess(params);
}

}  // namespace celect::proto::nosod
