#include "celect/proto/nosod/efg_engine.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "celect/proto/common.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

struct Contender {
  Port port;
  std::int64_t level;
  Id id;
  Credential Cred() const { return Credential{level, id}; }
};

// FT recovery timing (f > 0 only). The period must exceed a capture
// round trip (2 units) with generous congestion slack; every retry and
// probe loop is capped so even a run past its fault budget quiesces.
constexpr sim::Time kRecoveryPeriod = sim::Time::FromUnits(8);
// Revival is the slow, last-resort loop — twice the recovery period so
// the fast loops (watchdogs, retransmits) always get to act first.
constexpr sim::Time kRevivalPeriod = sim::Time::FromUnits(16);
constexpr std::uint32_t kMaxCaptureRetries = 4;
constexpr std::uint32_t kMaxBroadcastRetries = 8;
constexpr std::uint32_t kMaxFpRetries = 8;
constexpr std::uint32_t kMaxLockProbes = 64;
constexpr std::uint32_t kMaxWatchProbes = 32;
constexpr std::uint32_t kMaxRevProbes = 64;
constexpr std::uint32_t kMaxRevivals = 8;
// A lock guards safety: condemning its owner needs more silence than the
// liveness probes do, so a burst of lost pings cannot unlock a quorum
// that a live broadcaster is still assembling.
constexpr std::uint32_t kLockSilenceLimit = 3;
// Ping tags: which probe loop a pong answers.
constexpr std::int64_t kTagWatch = 1;  // captured node probing its owner
constexpr std::int64_t kTagLock = 2;   // locked node probing its lock owner
constexpr std::int64_t kTagSuperior = 3;  // dead node probing its killer
// kFOwnerPong status values (second field).
constexpr std::int64_t kPongPursuing = 0;  // alive and still in the race
constexpr std::int64_t kPongLeader = 1;    // election is decided
constexpr std::int64_t kPongStanding = 2;  // alive but killed/captured

class EfgNode : public ElectionProcess {
 public:
  EfgNode(const sim::ProcessInit& init, const EfgParams& params)
      : id_(init.id), n_(init.n), params_(params), maxid_(init.id) {
    CELECT_CHECK(params.k >= 1);
    walk_target_ = params.broadcast
                       ? static_cast<std::int64_t>((n_ + params.k - 1) /
                                                   params.k)  // ⌈N/k⌉
                       : static_cast<std::int64_t>(n_) - 1;
    window_ = params.f + 1;
    elect_quorum_ = n_ - 1 - params.f;
    CELECT_CHECK(elect_quorum_ >= 1)
        << "failure budget too large for N=" << n_;
    CELECT_CHECK(!(params.doubling_walk && params.f > 0))
        << "the doubling walk and the failure window are exclusive";
  }

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    if (params_.g_phases) {
      StartFirstPhase(ctx);
    } else {
      role_ = Role::kWalking;
      ctx.BeginPhase(obs::PhaseId::kCapture1);
      FillWindow(ctx);
    }
  }

  void OnPacket(Context& ctx, Port port, const Packet& p,
                bool /*first_contact*/) override {
    switch (p.type) {
      case kFCapture:
        HandleCapture(ctx, port, Contender{port, p.field(1), p.field(0)});
        break;
      case kFAccept:
        HandleCaptureAccept(ctx, port);
        break;
      case kFReject:
        HandleCaptureReject(ctx, port,
                            Credential{p.field(1), p.field(0)});
        break;
      case kFFwd:
        HandleFwd(ctx, port, p.field(0), p.field(1));
        break;
      case kFFwdAccept:
        HandleFwdReply(ctx, /*owner_killed=*/true, Credential{});
        break;
      case kFFwdReject:
        HandleFwdReply(ctx, /*owner_killed=*/false,
                       Credential{p.field(1), p.field(0)});
        break;
      case kFElect:
        HandleElect(ctx, port, p.field(0), p.field(1));
        break;
      case kFElectAccept:
        HandleElectAccept(ctx, port);
        break;
      case kFElectRejectStronger:
        if (role_ == Role::kBroadcasting) {
          sup_port_ = port;
          Die(ctx);
        }
        break;
      case kFElectRejectLocked:
        break;  // not fatal: a release/retry hint may come later
      case kFConfirm:
        HandleConfirm(ctx, port, p.field(0));
        break;
      case kFConfirmAck:
        HandleConfirmAck(ctx, port);
        break;
      case kFConfirmReject:
        break;  // the acked quorum decides; rejects carry no information
      case kFRelease:
        HandleRelease(ctx, port, /*final=*/p.field(0) != 0);
        break;
      case kFRetryHint:
        if (role_ == Role::kBroadcasting) {
          ctx.Send(port, Packet{kFElect, {id_, level_}});
        }
        break;
      case kGFirstPhase:
        HandleFirstPhase(ctx, port);
        break;
      case kGPAccept:
        HandleFpResponse(ctx, port, FpResponse::kAccept);
        break;
      case kGProceed:
        HandleFpResponse(ctx, port, FpResponse::kProceed);
        break;
      case kGFinish:
        HandleFpResponse(ctx, port, FpResponse::kFinish);
        break;
      case kGCheck:
        ctx.Send(port, Packet{kGCheckReply, {fp_done_ ? 1 : 0}});
        break;
      case kGCheckReply:
        HandleCheckReply(ctx, p.field(0) != 0);
        break;
      case kFOwnerPing:
        // Any live node answers; a crashed one cannot — that asymmetry is
        // the whole liveness detector. The reply also reports whether the
        // responder still pursues the election: a node that was killed or
        // captured answers kPongStanding, so its own victims do not wait
        // on a superior that will never finish (two dead nodes ponging
        // each other "alive" would otherwise be a stable stall).
        ctx.Send(port,
                 Packet{kFOwnerPong,
                        {p.field(0), role_ == Role::kLeader ? kPongLeader
                         : (role_ == Role::kDead || captured_)
                             ? kPongStanding
                             : kPongPursuing}});
        break;
      case kFOwnerPong:
        HandlePong(ctx, p.field(0), p.field(1));
        break;
      default:
        CELECT_CHECK(false) << "EFG engine: unknown message type "
                            << p.type;
    }
  }

 public:
  std::string DescribeState() const override {
    static const char* kRoleNames[] = {"passive",  "first-phase",
                                       "second-phase", "walking",
                                       "broadcasting", "leader", "dead"};
    std::string s = kRoleNames[static_cast<int>(role_)];
    s += " level=" + std::to_string(level_);
    s += " id=" + std::to_string(id_);
    if (captured_) s += " captured";
    s += " outstanding=" + std::to_string(outstanding_);
    s += " sp_pending=" + std::to_string(sp_pending_);
    s += " fp_responses=" + std::to_string(fp_responses_) + "/" +
         std::to_string(fp_threshold_);
    s += " pending=" + std::to_string(pending_.size());
    s += " maxid=" + std::to_string(maxid_);
    s += " elect_acks=" + std::to_string(elect_ports_.size());
    s += " confirm_acks=" + std::to_string(confirm_ports_.size());
    if (confirming_) s += " confirming";
    if (locked_) s += " locked-to=" + std::to_string(locked_id_);
    if (hint_port_ != sim::kInvalidPort) {
      s += " hint=" + std::to_string(hint_id_);
    }
    if (inflight_) s += " fwd-inflight";
    if (check_busy_) s += " check-busy";
    return s;
  }

  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables obs;
    // level_ survives FT revival monotonically (a revived node re-enters
    // the race from its current level); captured_ and the role do not
    // (kDead/captured → kWalking), so those claims hold only at f = 0.
    obs.monotone = {{"level", level_},
                    {"maxid", maxid_},
                    {"reached_second", reached_second_ ? 1 : 0}};
    if (!Ft()) {
      obs.monotone.emplace_back("captured", captured_ ? 1 : 0);
      obs.terminated = role_ == Role::kLeader || !LiveCandidate();
    }
    return obs;
  }

 private:
  enum class Role {
    kPassive,      // never woke spontaneously (or barred)
    kFirstPhase,   // G: collecting permissions
    kSecondPhase,  // G: parallel capture burst to level k
    kWalking,      // Ɛ sequential capture
    kBroadcasting, // F/G: protocol D round
    kLeader,
    kDead,         // killed candidate
  };

  Credential Cred() const { return Credential{level_, id_}; }

  // Whether the FT recovery machinery is live. With f = 0 every hook
  // below is inert: no timer is armed, no pending-capture state is kept,
  // and the engine behaves bit-identically to the paper's protocols.
  bool Ft() const { return params_.f > 0; }

  void CancelIf(Context& ctx, sim::TimerId& timer) {
    if (timer == sim::kInvalidTimer) return;
    ctx.CancelTimer(timer);
    timer = sim::kInvalidTimer;
  }

  // A live authority contests forwarded/direct captures with its current
  // credential. Captured or dead nodes are not authorities.
  bool LiveCandidate() const {
    return !captured_ && (role_ == Role::kFirstPhase ||
                          role_ == Role::kSecondPhase ||
                          role_ == Role::kWalking ||
                          role_ == Role::kBroadcasting ||
                          role_ == Role::kLeader);
  }

  bool InSecondPhaseOrLater() const { return reached_second_; }

  // A candidate leaving the race. If it had started locking a confirm
  // quorum (FT), the locks must be released or rivals deadlock. Declared
  // leaders never die (and never release their quorum).
  // At most one protocol span is open at a time (plus a recovery span a
  // timer handler may have stacked on top); close whatever is.
  void ClosePhaseSpans(Context& ctx) {
    ctx.EndPhase(obs::PhaseId::kRecovery);
    ctx.EndPhase(obs::PhaseId::kBroadcast);
    ctx.EndPhase(obs::PhaseId::kCapture1);
    ctx.EndPhase(obs::PhaseId::kWakeup);
  }

  void Die(Context& ctx) {
    if (role_ == Role::kLeader) return;
    ClosePhaseSpans(ctx);
    if (role_ != Role::kPassive) role_ = Role::kDead;
    if (confirming_) {
      confirming_ = false;
      ctx.SendAll(Packet{kFRelease, {0}});
    }
    // Candidate-side recovery dies with the candidacy; the revival watch
    // takes over — if whoever outranked us crashes before the election
    // resolves, this node re-enters the race.
    if (Ft()) {
      pending_caps_.clear();
      CancelIf(ctx, cap_timer_);
      CancelIf(ctx, bc_timer_);
      CancelIf(ctx, fp_timer_);
      ArmRevivalWatch(ctx);
    }
  }

  void BecomeCaptured(Context& ctx, Port owner_port) {
    captured_ = true;
    owner_port_ = owner_port;
    Die(ctx);
  }

  // ---- Ɛ capture walk ------------------------------------------------

  std::optional<Port> NextWalkPort() {
    while (walk_cursor_ <= n_ - 1 && sent_ports_.count(walk_cursor_)) {
      ++walk_cursor_;
    }
    if (walk_cursor_ > n_ - 1) return std::nullopt;
    return walk_cursor_;
  }

  void SendCaptureOn(Context& ctx, Port port) {
    sent_ports_.insert(port);
    TrackCapture(ctx, port);
    ctx.Send(port, Packet{kFCapture, {id_, level_}});
  }

  void FillWindow(Context& ctx) {
    if (params_.doubling_walk) {
      StartWalkBatch(ctx);
      return;
    }
    // The window must stay at f+1 outstanding captures even close to the
    // target: at most f targets can be silently crashed, so a full
    // window always contains a live one and the walk cannot stall. A few
    // captures may overshoot the target; the broadcast fires once.
    while (outstanding_ < window_) {
      auto port = NextWalkPort();
      if (!port) break;  // every edge tried; rely on outstanding replies
      ++outstanding_;
      SendCaptureOn(ctx, *port);
    }
    if (outstanding_ == 0 && level_ >= walk_target_) StartBroadcast(ctx);
    if (Ft() && outstanding_ == 0 && pending_caps_.empty() &&
        role_ == Role::kWalking && level_ < walk_target_) {
      // Every edge was tried and the missing accepts died with crashed
      // or abandoned targets: the target is unreachable, so broadcast
      // with the true level instead of stalling (the N-1-f elect quorum
      // keeps a below-target broadcast safe; small N hits this whenever
      // a capture target crashes). Cannot happen fault-free: rejects
      // kill the walker and a fully-accepted walk reaches the target.
      StartBroadcast(ctx);
    }
  }

  // [Si92] doubling walk: fire a whole batch at the frozen level, raise
  // the level by the batch's accepts once every reply is in, double the
  // batch. Reaching ⌈N/k⌉ takes O(log N) rounds.
  void StartWalkBatch(Context& ctx) {
    std::int64_t want =
        std::min<std::int64_t>(next_batch_, walk_target_ - level_);
    batch_pending_ = 0;
    batch_accepts_ = 0;
    for (std::int64_t i = 0; i < want; ++i) {
      auto port = NextWalkPort();
      if (!port) break;
      ++batch_pending_;
      SendCaptureOn(ctx, *port);
    }
    if (batch_pending_ == 0 && level_ >= walk_target_) StartBroadcast(ctx);
  }

  void FinishWalkBatch(Context& ctx) {
    level_ += batch_accepts_;
    next_batch_ *= 2;
    if (level_ >= walk_target_) {
      WalkDone(ctx);
    } else {
      StartWalkBatch(ctx);
    }
  }

  void WalkDone(Context& ctx) {
    if (params_.broadcast) {
      StartBroadcast(ctx);
    } else {
      role_ = Role::kLeader;
      ctx.EndPhase(obs::PhaseId::kCapture1);
      ctx.DeclareLeader();
    }
  }

  void HandleCaptureAccept(Context& ctx, Port port) {
    // Settle the watchdog entry first: even a reply that arrives after
    // this candidate was captured or died must stop further retries.
    const bool was_pending = UntrackCapture(ctx, port);
    if (captured_ || role_ == Role::kDead) return;
    if (role_ == Role::kSecondPhase) {
      if (Ft() && !was_pending) return;  // watchdog already compensated
      ++sp_accepts_;
      CELECT_CHECK(sp_pending_ > 0);
      if (--sp_pending_ == 0) FinishSecondPhase(ctx);
      return;
    }
    if (role_ != Role::kWalking) return;
    if (params_.doubling_walk) {
      ++batch_accepts_;
      CELECT_CHECK(batch_pending_ > 0);
      if (--batch_pending_ == 0) FinishWalkBatch(ctx);
      return;
    }
    if (Ft() && !was_pending) return;  // watchdog already compensated
    CELECT_CHECK(outstanding_ > 0);
    --outstanding_;
    ++level_;
    if (level_ >= walk_target_) {
      WalkDone(ctx);
      return;
    }
    FillWindow(ctx);
  }

  void HandleCaptureReject(Context& ctx, Port port, Credential rejecter) {
    const bool was_pending = UntrackCapture(ctx, port);
    if (captured_) return;
    if (role_ != Role::kWalking && role_ != Role::kSecondPhase) return;
    if (Ft() && !was_pending) return;  // watchdog already compensated
    // With a capture window > 1 (FT), our level can have grown while the
    // rejected capture was in flight; a stale credential losing is not
    // fatal if our *current* one now wins — re-contest. Without this,
    // two top candidates can mutually kill each other with crossing
    // stale captures and leave the network leaderless. Sequential walks
    // (window 1) freeze the level while waiting, so the retry never
    // fires there and the paper's behaviour is unchanged.
    if (role_ == Role::kWalking && Cred() > rejecter) {
      TrackCapture(ctx, port);
      ctx.Send(port, Packet{kFCapture, {id_, level_}});
      return;
    }
    sup_port_ = port;  // the rejecter (or its relay) outranked us
    Die(ctx);
  }

  void HandleCapture(Context& ctx, Port port, Contender c) {
    if (captured_) {
      EnqueueContender(ctx, c);
      return;
    }
    // A declared leader is final; it outranks any credential.
    if (role_ == Role::kLeader) {
      ctx.Send(port, Packet{kFReject, {id_, level_}});
      return;
    }
    // Protocol G: nodes that have not started their second phase are
    // regarded as passive — they accept unconditionally (Lemma 4.3(a)).
    if (params_.g_phases && !InSecondPhaseOrLater()) {
      BecomeCaptured(ctx, port);
      ctx.Send(port, Packet{kFAccept, {}});
      return;
    }
    // A node that never woke as a base node has nothing to defend: it is
    // captured outright. (Letting passive nodes contest with (0, id)
    // would let a lone small-identity candidate be killed by a passive
    // bystander and leave the network leaderless.)
    if (!is_base()) {
      BecomeCaptured(ctx, port);
      ctx.Send(port, Packet{kFAccept, {}});
      return;
    }
    // AG85 contest among base nodes (live candidates and killed ones
    // alike) on their own current (level, id).
    if (Cred() < c.Cred()) {
      BecomeCaptured(ctx, port);
      ctx.Send(port, Packet{kFAccept, {}});
    } else {
      ctx.Send(port, Packet{kFReject, {id_, level_}});
    }
  }

  // ---- Forwarding at captured nodes ----------------------------------

  void EnqueueContender(Context& ctx, Contender c) {
    // Fires on every forwarded contender — record through the interned
    // ref, not the string path.
    if (fwd_peak_ref_.slot == sim::CounterRef::kUnresolved) {
      fwd_peak_ref_ = ctx.ResolveCounter(kCounterFwdQueuePeak);
    }
    if (!params_.throttle_forwards) {
      // Raw AG85: forward immediately; replies match in FIFO order.
      fifo_.push_back(c);
      ctx.MaxCounter(fwd_peak_ref_,
                     static_cast<std::int64_t>(fifo_.size()));
      ctx.Send(owner_port_, Packet{kFFwd, {c.id, c.level}});
      return;
    }
    pending_.push_back(c);
    ctx.MaxCounter(fwd_peak_ref_,
                   static_cast<std::int64_t>(pending_.size()));
    PumpForward(ctx);
  }

  void PumpForward(Context& ctx) {
    if (inflight_ || pending_.empty()) return;
    auto best = std::max_element(
        pending_.begin(), pending_.end(),
        [](const Contender& a, const Contender& b) {
          return a.Cred() < b.Cred();
        });
    inflight_ = *best;
    pending_.erase(best);
    if (Ft() && owner_dead_) {
      // The owner was condemned: the contest is decided without a round
      // trip, and the winner becomes the new (live) owner.
      HandleFwdReply(ctx, /*owner_killed=*/true, Credential{});
      return;
    }
    ctx.Send(owner_port_, Packet{kFFwd, {inflight_->id, inflight_->level}});
    ArmOwnerWatch(ctx);
  }

  void HandleFwd(Context& ctx, Port port, Id cand, std::int64_t cand_level) {
    // FT: our own retried capture, echoed back through a node we already
    // own. Granting it (rather than contesting our own credential and
    // losing the tie) re-converges the forwarder on us as owner and
    // re-sends the accept that was lost.
    if (Ft() && cand == id_ && !captured_ && role_ != Role::kDead) {
      ctx.Send(port, Packet{kFFwdAccept, {}});
      return;
    }
    // We are (or were) the owner of the forwarding node.
    if (LiveCandidate()) {
      if (role_ == Role::kLeader) {
        ctx.Send(port, Packet{kFFwdReject, {id_, level_}});
        return;
      }
      // Owners still short of their second phase count as passive under
      // protocol G (Lemma 4.3(c)) and are killed unconditionally.
      bool forced = params_.g_phases && !InSecondPhaseOrLater();
      if (!forced && Cred() > Credential{cand_level, cand}) {
        ctx.Send(port, Packet{kFFwdReject, {id_, level_}});
        return;
      }
      sup_port_ = port;  // the contender that killed us sits past this relay
      Die(ctx);  // the contender killed us
    }
    ctx.Send(port, Packet{kFFwdAccept, {}});
  }

  void HandleFwdReply(Context& ctx, bool owner_killed,
                      Credential rejecter) {
    if (!params_.throttle_forwards) {
      CELECT_CHECK(!fifo_.empty()) << "unmatched forward reply";
      Contender c = fifo_.front();
      fifo_.pop_front();
      if (owner_killed) {
        owner_port_ = c.port;
        ctx.Send(c.port, Packet{kFAccept, {}});
      } else {
        ctx.Send(c.port, Packet{kFReject, {rejecter.id, rejecter.level}});
      }
      return;
    }
    // Under FT a reply can be unmatched: the watchdog condemned the owner
    // and settled the contest, or an injected duplicate replayed a reply.
    if (Ft() && !inflight_.has_value()) return;
    CELECT_CHECK(inflight_.has_value()) << "unmatched forward reply";
    if (!owner_killed) {
      ctx.Send(inflight_->port,
               Packet{kFReject, {rejecter.id, rejecter.level}});
      inflight_.reset();
      PumpForward(ctx);
      return;
    }
    // Owner killed: the largest contender seen so far takes this node
    // (paper Ɛ: "sends an accept to the node from which it has received
    // the largest (level, id) pair so far"); everyone else now contests
    // the new owner.
    Contender winner = *inflight_;
    inflight_.reset();
    auto best = std::max_element(
        pending_.begin(), pending_.end(),
        [](const Contender& a, const Contender& b) {
          return a.Cred() < b.Cred();
        });
    if (best != pending_.end() && best->Cred() > winner.Cred()) {
      // A stronger contender arrived while the forward was in flight: it
      // takes the node, and the forwarded one goes back to the pool to
      // contest the new owner.
      std::swap(*best, winner);
    }
    owner_port_ = winner.port;
    owner_dead_ = false;  // the new owner is the live node that just won
    ctx.Send(winner.port, Packet{kFAccept, {}});
    PumpForward(ctx);
  }

  // ---- Broadcast round (protocol D with the (level, maxid) rule) -----
  //
  // With f = 0 this is exactly the paper's protocol F/G finale: accept
  // iff (level_j, maxid_j) < (level_i, i), weaker broadcasters stall
  // silently, quorum is all N-1 accepts. With f > 0 the quorum drops to
  // N-1-f, which alone would let a slow rival assemble a second quorum
  // after the first leader declared; the confirm round closes that: a
  // broadcaster with an elect quorum must also *lock* N-1-f nodes, a
  // locked node rejects every other candidate until its owner dies and
  // releases it, and two disjoint locked quorums cannot coexist for
  // f < (N-1)/2.

  void StartBroadcast(Context& ctx) {
    if (role_ == Role::kBroadcasting || role_ == Role::kLeader) return;
    role_ = Role::kBroadcasting;
    // A recovery handler may start the broadcast; its span ends at the
    // decision so the broadcast span is not nested under (and truncated
    // with) it.
    ClosePhaseSpans(ctx);
    ctx.BeginPhase(obs::PhaseId::kBroadcast);
    ctx.AddCounter(ctx.ResolveCounter(kCounterBroadcasters), 1);
    if (Ft() && bc_timer_ == sim::kInvalidTimer) {
      bc_timer_ = ctx.SetTimer(kRecoveryPeriod);
    }
    // Carry the *actual* level: G's first phase can push it past the
    // walk target (up to k+f first-phase accepts), and two such
    // broadcasters must still rank each other — advertising only the
    // target would let them ignore one another forever.
    ctx.SendAll(Packet{kFElect, {id_, level_}});
  }

  void HandleElect(Context& ctx, Port port, Id cand,
                   std::int64_t cand_level) {
    const bool ft = params_.f > 0;
    if (role_ == Role::kLeader) {
      if (ft) ctx.Send(port, Packet{kFElectRejectStronger, {}});
      return;
    }
    if (ft && locked_) {
      if (locked_id_ == cand) {
        ctx.Send(port, Packet{kFElectAccept, {}});
        return;
      }
      // Remember the strongest rejected candidate: if our lock owner
      // dies we hint it to retry.
      if (cand > hint_id_) {
        hint_id_ = cand;
        hint_port_ = port;
      }
      ctx.Send(port, Packet{kFElectRejectLocked, {}});
      return;
    }
    if (Credential{level_, maxid_} < Credential{cand_level, cand}) {
      maxid_ = std::max(maxid_, cand);
      accepted_.insert(cand);  // dying to this elect licenses the lock
      sup_port_ = port;  // the broadcaster we accepted outranks us
      Die(ctx);
      ctx.Send(port, Packet{kFElectAccept, {}});
    } else if (ft) {
      ctx.Send(port, Packet{kFElectRejectStronger, {}});
    }
    // else (paper, f = 0): silence — the weaker broadcaster stalls.
  }

  void HandleElectAccept(Context& ctx, Port port) {
    if (role_ != Role::kBroadcasting) return;
    // Idempotent under FT retries; fresh accepts refund the retry budget
    // (the cap only bounds retries that make no progress at all).
    if (elect_ports_.insert(port).second) bc_retries_ = 0;
    if (elect_ports_.size() < elect_quorum_) return;
    if (params_.f == 0) {
      role_ = Role::kLeader;
      ctx.EndPhase(obs::PhaseId::kBroadcast);
      ctx.DeclareLeader();
      return;
    }
    if (!confirming_) {
      confirming_ = true;
      ctx.SendAll(Packet{kFConfirm, {id_}});
    }
  }

  void HandleConfirm(Context& ctx, Port port, Id cand) {
    if (locked_) {
      ctx.Send(port, Packet{locked_id_ == cand
                                ? static_cast<std::uint16_t>(kFConfirmAck)
                                : static_cast<std::uint16_t>(
                                      kFConfirmReject),
                            {}});
      return;
    }
    // Lock iff this node ever *accepted* the confirmer's elect (own id
    // deliberately excluded: a dead high-id node that accepted the elect
    // must still be able to confirm). Accepting an elect kills the
    // acceptor's candidacy at that moment, so whoever locks here is not a
    // live rival; and because each node accepts any strictly stronger
    // broadcaster over its lifetime, the accepted set may hold several
    // ids — including candidates that have since crashed. That is fine:
    // quorum disjointness rests on the lock being exclusive and on two
    // (N-1-f)-quorums intersecting, not on which acceptee is confirmed.
    // A revived candidate refuses to lend its lock while broadcasting.
    if (accepted_.count(cand) && role_ != Role::kLeader &&
        role_ != Role::kBroadcasting) {
      locked_ = true;
      locked_port_ = port;
      locked_id_ = cand;
      ctx.Send(port, Packet{kFConfirmAck, {}});
      // Lease probing: if the lock owner crashes before declaring or
      // releasing, the probe loop notices and self-releases — otherwise
      // this node would block every rival's quorum forever.
      if (Ft() && !over_ && lock_timer_ == sim::kInvalidTimer) {
        lock_silent_ = 0;
        lock_timer_ = ctx.SetTimer(kRecoveryPeriod);
      }
    } else {
      ctx.Send(port, Packet{kFConfirmReject, {}});
    }
  }

  void HandleConfirmAck(Context& ctx, Port port) {
    if (role_ != Role::kBroadcasting || !confirming_) return;
    if (confirm_ports_.insert(port).second) bc_retries_ = 0;
    if (confirm_ports_.size() >= elect_quorum_) {
      role_ = Role::kLeader;
      CancelIf(ctx, bc_timer_);
      ctx.EndPhase(obs::PhaseId::kBroadcast);
      ctx.DeclareLeader();
      // Final release: the election is decided. Locked nodes stand down
      // their lease probes and surviving rivals abandon their candidacy;
      // without this broadcast, lease probes of the leader's own quorum
      // would keep pinging it until their caps run out.
      ctx.SendAll(Packet{kFRelease, {1}});
    }
  }

  void HandleRelease(Context& ctx, Port port, bool final) {
    if (final) {
      // Sent only by a declared leader (unique by the quorum argument):
      // the election is over for everyone — every probe loop stands down.
      over_ = true;
      CancelIf(ctx, lock_timer_);
      CancelIf(ctx, rev_timer_);
      CancelIf(ctx, watch_timer_);
      CancelIf(ctx, fp_timer_);
      if (role_ != Role::kLeader) Die(ctx);
      return;
    }
    if (!locked_ || locked_port_ != port) return;
    locked_ = false;
    locked_id_ = 0;
    CancelIf(ctx, lock_timer_);
    if (hint_port_ != sim::kInvalidPort) {
      ctx.Send(hint_port_, Packet{kFRetryHint, {}});
      hint_port_ = sim::kInvalidPort;
      hint_id_ = 0;
    }
  }

  // ---- FT timer-driven recovery (params_.f > 0 only) -----------------
  //
  // Mid-run crashes leave handshakes dangling; four capped loops restore
  // liveness without touching the fault-free schedule:
  //   capture watchdog — retries a silent capture target, then abandons
  //     it and re-fills the f+1 window (or drains the second phase);
  //   broadcast retry — retransmits elect/confirm to unanswered ports;
  //   lease probe — a locked node pings its lock owner, self-releases
  //     (and hints the strongest rejected rival) after two silent
  //     intervals;
  //   owner watch — a captured node with a forward or check in flight
  //     pings its owner; condemnation settles the contest locally.

  void OnTimerFired(Context& ctx, sim::TimerId timer) override {
    // Recovery actions span the handler; a transition inside (revive,
    // broadcast) closes the span early at the moment of the decision.
    ctx.BeginPhase(obs::PhaseId::kRecovery);
    DispatchTimer(ctx, timer);
    ctx.EndPhase(obs::PhaseId::kRecovery);
  }

  // A transport-level crash hint for the node behind `port`. The
  // reliability layer only raises it after exhausting its own
  // retransmit budget, so waiting out the full recovery period for a
  // reply that can no longer arrive is wasted time: fast-forward the
  // pending capture on that port — mark it expired and out of retries —
  // and run the watchdog now. Everything else (locks, owner watches,
  // broadcast retries) keeps its timer-driven pace: those loops probe
  // nodes that may merely be slow, and the suspicion hint is allowed to
  // be wrong.
  void OnSuspicion(Context& ctx, sim::Port port) override {
    if (!Ft()) return;
    auto it = pending_caps_.find(port);
    if (it == pending_caps_.end()) return;
    it->second.retries = kMaxCaptureRetries;
    it->second.sent = ctx.now() - kRecoveryPeriod;
    ctx.AddCounter(ctx.ResolveCounter(kCounterSuspicions), 1);
    ctx.BeginPhase(obs::PhaseId::kRecovery);
    OnCaptureWatchdog(ctx);
    ctx.EndPhase(obs::PhaseId::kRecovery);
  }

  void DispatchTimer(Context& ctx, sim::TimerId timer) {
    if (timer == cap_timer_) {
      cap_timer_ = sim::kInvalidTimer;
      OnCaptureWatchdog(ctx);
    } else if (timer == bc_timer_) {
      bc_timer_ = sim::kInvalidTimer;
      OnBroadcastRetry(ctx);
    } else if (timer == lock_timer_) {
      lock_timer_ = sim::kInvalidTimer;
      OnLockProbe(ctx);
    } else if (timer == watch_timer_) {
      watch_timer_ = sim::kInvalidTimer;
      OnOwnerWatch(ctx);
    } else if (timer == fp_timer_) {
      fp_timer_ = sim::kInvalidTimer;
      OnFpRetry(ctx);
    } else if (timer == rev_timer_) {
      rev_timer_ = sim::kInvalidTimer;
      OnRevivalProbe(ctx);
    }
  }

  void TrackCapture(Context& ctx, Port port) {
    if (!Ft()) return;
    pending_caps_[port] = PendingCapture{ctx.now(), 0};
    if (cap_timer_ == sim::kInvalidTimer) {
      cap_timer_ = ctx.SetTimer(kRecoveryPeriod);
    }
  }

  // Returns whether the port was still awaiting a reply. Always true with
  // f = 0 (nothing is tracked, nothing is ever abandoned).
  bool UntrackCapture(Context& ctx, Port port) {
    if (!Ft()) return true;
    const bool was_pending = pending_caps_.erase(port) > 0;
    if (pending_caps_.empty()) CancelIf(ctx, cap_timer_);
    return was_pending;
  }

  void OnCaptureWatchdog(Context& ctx) {
    const bool can_retry = !captured_ && (role_ == Role::kWalking ||
                                          role_ == Role::kSecondPhase);
    std::vector<Port> abandoned;
    for (auto& [port, pc] : pending_caps_) {
      if (ctx.now() - pc.sent < kRecoveryPeriod) continue;
      if (can_retry && pc.retries < kMaxCaptureRetries) {
        ++pc.retries;
        pc.sent = ctx.now();
        ctx.Send(port, Packet{kFCapture, {id_, level_}});
      } else {
        abandoned.push_back(port);
      }
    }
    bool refill = false;
    for (Port port : abandoned) {
      pending_caps_.erase(port);
      if (captured_) continue;
      if (role_ == Role::kSecondPhase) {
        CELECT_CHECK(sp_pending_ > 0);
        if (--sp_pending_ == 0) FinishSecondPhase(ctx);
      } else if (role_ == Role::kWalking) {
        CELECT_CHECK(outstanding_ > 0);
        --outstanding_;
        refill = true;
      }
      // Any other role: the entry was a walk overshoot or this candidate
      // already died — dropping it is all that is needed.
    }
    if (refill && role_ == Role::kWalking) FillWindow(ctx);
    if (role_ == Role::kWalking && outstanding_ == 0 &&
        pending_caps_.empty() && level_ < walk_target_) {
      // Every port was tried and the abandoned targets took the missing
      // accepts with them: the walk target is unreachable. Broadcast with
      // the true level instead of stalling — the quorum rule keeps it
      // safe (small N with a crashed capture target hits this).
      StartBroadcast(ctx);
      return;
    }
    if (!pending_caps_.empty() && cap_timer_ == sim::kInvalidTimer) {
      cap_timer_ = ctx.SetTimer(kRecoveryPeriod);
    }
  }

  void OnBroadcastRetry(Context& ctx) {
    if (role_ != Role::kBroadcasting) return;
    if (bc_retries_ >= kMaxBroadcastRetries) return;  // give up quietly
    ++bc_retries_;
    // Resend elects even after the elect quorum is met: with crashes plus
    // loss the confirm quorum may need a node whose elect never arrived,
    // and it cannot lock to a candidate it never accepted.
    for (Port port = 1; port <= static_cast<Port>(n_) - 1; ++port) {
      if (!elect_ports_.count(port)) {
        ctx.Send(port, Packet{kFElect, {id_, level_}});
      }
    }
    if (confirming_ && confirm_ports_.size() < elect_quorum_) {
      for (Port port = 1; port <= static_cast<Port>(n_) - 1; ++port) {
        if (!confirm_ports_.count(port)) {
          ctx.Send(port, Packet{kFConfirm, {id_}});
        }
      }
    }
    bc_timer_ = ctx.SetTimer(kRecoveryPeriod);
  }

  void OnFpRetry(Context& ctx) {
    if (role_ != Role::kFirstPhase || fp_retries_ >= kMaxFpRetries) return;
    ++fp_retries_;
    for (Port port : fp_ports_) {
      if (!fp_answered_.count(port)) {
        ctx.Send(port, Packet{kGFirstPhase, {id_}});
      }
    }
    fp_timer_ = ctx.SetTimer(kRecoveryPeriod);
  }

  void OnLockProbe(Context& ctx) {
    if (!locked_ || over_) return;
    if (lock_silent_ >= kLockSilenceLimit) {
      // Two unanswered probes: the lock owner crashed without releasing.
      // Self-release and hint the strongest rejected rival to retry, or
      // every other candidate stays short of its quorum forever.
      locked_ = false;
      locked_id_ = 0;
      if (hint_port_ != sim::kInvalidPort) {
        ctx.Send(hint_port_, Packet{kFRetryHint, {}});
        hint_port_ = sim::kInvalidPort;
        hint_id_ = 0;
      }
      return;
    }
    if (lock_probes_ >= kMaxLockProbes) return;  // stay locked, go quiet
    ++lock_probes_;
    ++lock_silent_;
    ctx.Send(locked_port_, Packet{kFOwnerPing, {kTagLock}});
    lock_timer_ = ctx.SetTimer(kRecoveryPeriod);
  }

  void ArmOwnerWatch(Context& ctx) {
    if (!Ft() || watch_timer_ != sim::kInvalidTimer) return;
    watch_silent_ = 0;
    watch_timer_ = ctx.SetTimer(kRecoveryPeriod);
  }

  void OnOwnerWatch(Context& ctx) {
    if (!captured_ || owner_dead_) return;
    if (!inflight_.has_value() && !check_busy_) return;  // resolved; done
    if (watch_silent_ >= 2 || watch_probes_ >= kMaxWatchProbes) {
      CondemnOwner(ctx);
      return;
    }
    ++watch_probes_;
    ++watch_silent_;
    ctx.Send(owner_port_, Packet{kFOwnerPing, {kTagWatch}});
    // Retransmit the stalled request too: under loss the request (or its
    // reply) may be gone even though the owner is alive. A duplicate
    // answer is absorbed by the unmatched-reply guards.
    if (inflight_) {
      ctx.Send(owner_port_, Packet{kFFwd, {inflight_->id, inflight_->level}});
    }
    if (check_busy_) ctx.Send(owner_port_, Packet{kGCheck, {}});
    watch_timer_ = ctx.SetTimer(kRecoveryPeriod);
  }

  void CondemnOwner(Context& ctx) {
    owner_dead_ = true;
    if (check_busy_) {
      // A dead owner never finishes its first phase: queued askers may
      // proceed (and can then capture this node for themselves).
      check_busy_ = false;
      for (Port q : check_queue_) ctx.Send(q, Packet{kGProceed, {}});
      check_queue_.clear();
    }
    if (inflight_) {
      // Settle the in-flight contest as if the owner had been killed;
      // the winner becomes the new owner and owner_dead_ resets.
      HandleFwdReply(ctx, /*owner_killed=*/true, Credential{});
    }
  }

  void HandlePong(Context& ctx, std::int64_t tag, std::int64_t status) {
    if (status == kPongLeader) {
      // Election decided; every probe loop stands down for good.
      over_ = true;
      CancelIf(ctx, lock_timer_);
      CancelIf(ctx, rev_timer_);
      return;
    }
    if (tag == kTagWatch) {
      // Any pong counts: a dead or captured owner still relays forwards
      // and answers checks, so the watch only cares that it is not
      // crashed.
      watch_silent_ = 0;
    } else if (tag == kTagLock) {
      if (status == kPongStanding && locked_) {
        // The lock owner was killed or captured: its kFRelease was lost
        // (or it died before sending one). Release now — waiting out the
        // silence limit would never trigger, since dead nodes answer.
        locked_ = false;
        locked_id_ = 0;
        CancelIf(ctx, lock_timer_);
        if (hint_port_ != sim::kInvalidPort) {
          ctx.Send(hint_port_, Packet{kFRetryHint, {}});
          hint_port_ = sim::kInvalidPort;
          hint_id_ = 0;
        }
        return;
      }
      lock_silent_ = 0;
    } else if (tag == kTagSuperior) {
      if (status == kPongStanding) {
        // Our superior was itself killed or captured and is not coming
        // back on its own; with both of us down nobody drives the race.
        Revive(ctx);
        return;
      }
      rev_silent_ = 0;  // whoever outranked us is still pursuing
    }
  }

  // ---- Revival: the last-resort liveness loop --------------------------
  //
  // Contest kills are only safe while the killer stays alive: a candidate
  // can reject (kill) every rival and then crash, leaving no live
  // candidate anywhere. So every killed or captured base node keeps a slow
  // watch on the node that outranked it — its owner, or the port that
  // delivered the fatal reject. If that superior is condemned (two silent
  // revival periods) the node re-enters the race from its current level.
  // Chains resolve inductively: each watch points at a node that held a
  // strictly larger credential at kill time, so some watch in every chain
  // ends at a live candidate (pong: stay down), at the leader (pong with
  // the leader flag: the election is over), or at a crashed node (revive).
  // Revived candidates cannot break safety — declaring still takes the
  // elect + confirm quorums — and every loop here is capped.

  void ArmRevivalWatch(Context& ctx) {
    if (!Ft() || over_ || !is_base()) return;
    if (rev_timer_ != sim::kInvalidTimer) return;
    rev_silent_ = 0;
    rev_timer_ = ctx.SetTimer(kRevivalPeriod);
  }

  void OnRevivalProbe(Context& ctx) {
    if (over_ || !(captured_ || role_ == Role::kDead)) return;
    if (inflight_ || check_busy_) {
      // A forward or check is in flight: the owner watch is already
      // probing the same owner on a faster clock; stay out of its way.
      rev_timer_ = ctx.SetTimer(kRevivalPeriod);
      return;
    }
    const Port target = captured_ ? owner_port_ : sup_port_;
    if (target == sim::kInvalidPort) return;
    if ((captured_ && owner_dead_) || rev_silent_ >= 2) {
      Revive(ctx);
      return;
    }
    if (rev_probes_ >= kMaxRevProbes) return;
    ++rev_probes_;
    ++rev_silent_;
    ctx.Send(target, Packet{kFOwnerPing, {kTagSuperior}});
    rev_timer_ = ctx.SetTimer(kRevivalPeriod);
  }

  void Revive(Context& ctx) {
    if (over_ || revivals_ >= kMaxRevivals) return;
    ++revivals_;
    // Contenders we were holding as a captured node get a reject carrying
    // our credential; a stronger one will simply re-contest us directly.
    if (inflight_) {
      ctx.Send(inflight_->port, Packet{kFReject, {id_, level_}});
      inflight_.reset();
    }
    for (const Contender& c : pending_) {
      ctx.Send(c.port, Packet{kFReject, {id_, level_}});
    }
    pending_.clear();
    captured_ = false;
    owner_dead_ = false;
    owner_port_ = sim::kInvalidPort;
    CancelIf(ctx, watch_timer_);
    // Stale candidacy state from the life before the kill.
    pending_caps_.clear();
    CancelIf(ctx, cap_timer_);
    outstanding_ = 0;
    sp_pending_ = 0;
    sp_accepts_ = 0;
    elect_ports_.clear();
    confirming_ = false;
    confirm_ports_.clear();
    bc_retries_ = 0;
    CancelIf(ctx, bc_timer_);
    rev_silent_ = 0;
    // Restart the walk from scratch. The old candidacy's ports must be
    // re-askable: a crashed high-id rival has poisoned every node's
    // maxid, so a level-0 broadcast is rejected everywhere — only
    // capturing (and out-levelling the poison) can win now. Re-capturing
    // a node we already own echoes our own credential back through the
    // forward chain; HandleFwd's self-contest guard grants those.
    sent_ports_.clear();
    walk_cursor_ = 1;
    role_ = Role::kWalking;
    reached_second_ = true;
    // A revival decided inside a recovery handler ends that span; the
    // re-entered race opens a fresh capture span.
    ctx.EndPhase(obs::PhaseId::kRecovery);
    ctx.BeginPhase(obs::PhaseId::kCapture1);
    FillWindow(ctx);  // falls back to a true-level broadcast if every
                      // remaining port is crashed (see FillWindow)
  }

  // ---- Protocol G first and second phases ----------------------------

  void StartFirstPhase(Context& ctx) {
    role_ = Role::kFirstPhase;
    ctx.BeginPhase(obs::PhaseId::kWakeup);
    fp_sent_ = std::min<std::uint32_t>(params_.k + params_.f, n_ - 1);
    fp_threshold_ = fp_sent_ > params_.f ? fp_sent_ - params_.f : 1;
    for (std::uint32_t i = 0; i < fp_sent_; ++i) {
      auto port = NextWalkPort();
      CELECT_CHECK(port.has_value());
      sent_ports_.insert(*port);
      fp_ports_.push_back(*port);
      ctx.Send(*port, Packet{kGFirstPhase, {id_}});
    }
    // Lossy links can silence more than the f crashed nodes the
    // threshold budgets for; the retry loop re-asks whoever is silent.
    if (Ft()) fp_timer_ = ctx.SetTimer(kRecoveryPeriod);
  }

  enum class FpResponse { kAccept, kProceed, kFinish };

  void HandleFpResponse(Context& ctx, Port port, FpResponse r) {
    if (role_ != Role::kFirstPhase) return;  // late (FT) responses
    // One vote per asked port: retransmitted first-phase requests can be
    // answered twice, and a doubled accept would inflate the level.
    if (Ft() && !fp_answered_.insert(port).second) return;
    switch (r) {
      case FpResponse::kAccept:
        ++fp_accepts_;
        break;
      case FpResponse::kProceed:
        fp_proceed_ports_.push_back(port);
        break;
      case FpResponse::kFinish:
        fp_finish_ = true;
        sup_port_ = port;  // relay toward whoever finished first
        break;
    }
    if (++fp_responses_ < fp_threshold_) return;
    fp_done_ = true;
    CancelIf(ctx, fp_timer_);
    AnswerPendingChecks(ctx);
    if (fp_finish_ || captured_) {
      Die(ctx);
      return;
    }
    // Second phase: level := first-phase accepts; capture every node
    // that answered proceed, in parallel.
    role_ = Role::kSecondPhase;
    ctx.EndPhase(obs::PhaseId::kWakeup);
    ctx.BeginPhase(obs::PhaseId::kCapture1);
    reached_second_ = true;
    level_ = fp_accepts_;
    sp_pending_ = static_cast<std::uint32_t>(fp_proceed_ports_.size());
    if (sp_pending_ == 0) {
      FinishSecondPhase(ctx);
      return;
    }
    for (Port port : fp_proceed_ports_) {
      TrackCapture(ctx, port);
      ctx.Send(port, Packet{kFCapture, {id_, level_}});
    }
  }

  void FinishSecondPhase(Context& ctx) {
    level_ += sp_accepts_;
    role_ = Role::kWalking;
    if (level_ >= walk_target_) {
      StartBroadcast(ctx);
    } else {
      FillWindow(ctx);
    }
  }

  void HandleFirstPhase(Context& ctx, Port port) {
    if (captured_) {
      // Ask our owner whether it finished its first phase; one check
      // outstanding at a time, further askers queue behind it.
      if (owner_finished_) {
        ctx.Send(port, Packet{kGFinish, {}});
        return;
      }
      if (Ft() && owner_dead_) {
        // A condemned owner can never finish its first phase.
        ctx.Send(port, Packet{kGProceed, {}});
        return;
      }
      check_queue_.push_back(port);
      if (!check_busy_) {
        check_busy_ = true;
        ctx.Send(owner_port_, Packet{kGCheck, {}});
        ArmOwnerWatch(ctx);
      }
      return;
    }
    if (is_base() && fp_done_) {
      ctx.Send(port, Packet{kGFinish, {}});
      return;
    }
    if (is_base() && role_ == Role::kFirstPhase) {
      ctx.Send(port, Packet{kGProceed, {}});
      return;
    }
    // Passive (or awakened-non-base) uncaptured node: captured by the
    // asker.
    BecomeCaptured(ctx, port);
    ctx.Send(port, Packet{kGPAccept, {}});
  }

  void HandleCheckReply(Context& ctx, bool finished) {
    // Under FT a late reply can cross a condemnation or a retransmitted
    // check can be answered twice.
    if (Ft() && !check_busy_) return;
    CELECT_CHECK(check_busy_) << "unexpected check reply";
    check_busy_ = false;
    if (finished) owner_finished_ = true;
    std::uint16_t reply = finished ? kGFinish : kGProceed;
    for (Port port : check_queue_) ctx.Send(port, Packet{reply, {}});
    check_queue_.clear();
  }

  void AnswerPendingChecks(Context&) {
    // Nothing to do: checks are answered by the owner, not by us. Hook
    // retained for symmetry/clarity when first phase completes.
  }

  const Id id_;
  const std::uint32_t n_;
  const EfgParams params_;

  Role role_ = Role::kPassive;
  bool reached_second_ = false;  // G: ever entered the second phase
  bool captured_ = false;
  Port owner_port_ = sim::kInvalidPort;
  std::int64_t level_ = 0;
  Id maxid_;
  std::int64_t walk_target_ = 0;
  std::uint32_t window_ = 1;
  std::uint32_t elect_quorum_ = 0;

  // Walk state.
  std::unordered_set<Port> sent_ports_;
  Port walk_cursor_ = 1;
  std::uint32_t outstanding_ = 0;
  // Doubling-walk state ([Si92] variant).
  std::int64_t next_batch_ = 1;
  std::uint32_t batch_pending_ = 0;
  std::uint32_t batch_accepts_ = 0;

  // Forwarding state (captured nodes).
  std::vector<Contender> pending_;
  std::optional<Contender> inflight_;
  std::deque<Contender> fifo_;  // unthrottled mode
  // Interned handle for the per-forward queue-peak gauge, resolved on
  // first use (contexts without a metrics backend leave it unresolved
  // and the record falls back to the string path).
  sim::CounterRef fwd_peak_ref_{kCounterFwdQueuePeak,
                                sim::CounterRef::kUnresolved};

  // Broadcast state.
  std::unordered_set<Port> elect_ports_;

  // FT confirm-round state.
  bool confirming_ = false;
  std::unordered_set<Port> confirm_ports_;
  std::unordered_set<Id> accepted_;  // broadcasters whose elect we took
  bool locked_ = false;
  Port locked_port_ = sim::kInvalidPort;
  Id locked_id_ = 0;
  Port hint_port_ = sim::kInvalidPort;
  Id hint_id_ = 0;

  // G first/second phase state.
  std::uint32_t fp_sent_ = 0;
  std::uint32_t fp_threshold_ = 0;
  std::uint32_t fp_responses_ = 0;
  std::uint32_t fp_accepts_ = 0;
  bool fp_finish_ = false;
  bool fp_done_ = false;
  std::vector<Port> fp_proceed_ports_;
  std::uint32_t sp_pending_ = 0;
  std::uint32_t sp_accepts_ = 0;

  // Check machinery (captured nodes answering first-phase queries).
  bool check_busy_ = false;
  bool owner_finished_ = false;
  std::vector<Port> check_queue_;

  // FT timer-driven recovery state (f > 0 only; all timers stay
  // kInvalidTimer with f = 0).
  struct PendingCapture {
    sim::Time sent;
    std::uint32_t retries = 0;
  };
  // Ordered: OnCaptureWatchdog iterates this map and sends retransmits
  // in iteration order, which reaches message uids and fingerprints.
  std::map<Port, PendingCapture> pending_caps_;
  sim::TimerId cap_timer_ = sim::kInvalidTimer;
  sim::TimerId bc_timer_ = sim::kInvalidTimer;
  std::uint32_t bc_retries_ = 0;
  sim::TimerId lock_timer_ = sim::kInvalidTimer;
  std::uint32_t lock_probes_ = 0;
  std::uint32_t lock_silent_ = 0;
  sim::TimerId watch_timer_ = sim::kInvalidTimer;
  std::uint32_t watch_probes_ = 0;
  std::uint32_t watch_silent_ = 0;
  bool owner_dead_ = false;
  // First-phase retransmits.
  std::vector<Port> fp_ports_;
  std::unordered_set<Port> fp_answered_;
  sim::TimerId fp_timer_ = sim::kInvalidTimer;
  std::uint32_t fp_retries_ = 0;
  // Revival watch.
  bool over_ = false;  // a leader is known to exist; all recovery stops
  Port sup_port_ = sim::kInvalidPort;  // port that delivered the kill
  sim::TimerId rev_timer_ = sim::kInvalidTimer;
  std::uint32_t rev_silent_ = 0;
  std::uint32_t rev_probes_ = 0;
  std::uint32_t revivals_ = 0;
};

}  // namespace

sim::ProcessFactory MakeEfgProcess(EfgParams params) {
  return [params](const sim::ProcessInit& init) {
    return std::make_unique<EfgNode>(init, params);
  };
}

}  // namespace celect::proto::nosod
