#include "celect/proto/nosod/efg_engine.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "celect/proto/common.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

struct Contender {
  Port port;
  std::int64_t level;
  Id id;
  Credential Cred() const { return Credential{level, id}; }
};

class EfgNode : public ElectionProcess {
 public:
  EfgNode(const sim::ProcessInit& init, const EfgParams& params)
      : id_(init.id), n_(init.n), params_(params), maxid_(init.id) {
    CELECT_CHECK(params.k >= 1);
    walk_target_ = params.broadcast
                       ? static_cast<std::int64_t>((n_ + params.k - 1) /
                                                   params.k)  // ⌈N/k⌉
                       : static_cast<std::int64_t>(n_) - 1;
    window_ = params.f + 1;
    elect_quorum_ = n_ - 1 - params.f;
    CELECT_CHECK(elect_quorum_ >= 1)
        << "failure budget too large for N=" << n_;
    CELECT_CHECK(!(params.doubling_walk && params.f > 0))
        << "the doubling walk and the failure window are exclusive";
  }

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    if (params_.g_phases) {
      StartFirstPhase(ctx);
    } else {
      role_ = Role::kWalking;
      FillWindow(ctx);
    }
  }

  void OnPacket(Context& ctx, Port port, const Packet& p,
                bool /*first_contact*/) override {
    switch (p.type) {
      case kFCapture:
        HandleCapture(ctx, port, Contender{port, p.field(1), p.field(0)});
        break;
      case kFAccept:
        HandleCaptureAccept(ctx);
        break;
      case kFReject:
        HandleCaptureReject(ctx, port,
                            Credential{p.field(1), p.field(0)});
        break;
      case kFFwd:
        HandleFwd(ctx, port, p.field(0), p.field(1));
        break;
      case kFFwdAccept:
        HandleFwdReply(ctx, /*owner_killed=*/true, Credential{});
        break;
      case kFFwdReject:
        HandleFwdReply(ctx, /*owner_killed=*/false,
                       Credential{p.field(1), p.field(0)});
        break;
      case kFElect:
        HandleElect(ctx, port, p.field(0), p.field(1));
        break;
      case kFElectAccept:
        HandleElectAccept(ctx, port);
        break;
      case kFElectRejectStronger:
        if (role_ == Role::kBroadcasting) Die(ctx);
        break;
      case kFElectRejectLocked:
        break;  // not fatal: a release/retry hint may come later
      case kFConfirm:
        HandleConfirm(ctx, port, p.field(0));
        break;
      case kFConfirmAck:
        HandleConfirmAck(ctx, port);
        break;
      case kFConfirmReject:
        break;  // the acked quorum decides; rejects carry no information
      case kFRelease:
        HandleRelease(ctx, port);
        break;
      case kFRetryHint:
        if (role_ == Role::kBroadcasting) {
          ctx.Send(port, Packet{kFElect, {id_, level_}});
        }
        break;
      case kGFirstPhase:
        HandleFirstPhase(ctx, port);
        break;
      case kGPAccept:
        HandleFpResponse(ctx, FpResponse::kAccept);
        break;
      case kGProceed:
        fp_proceed_ports_.push_back(port);
        HandleFpResponse(ctx, FpResponse::kProceed);
        break;
      case kGFinish:
        HandleFpResponse(ctx, FpResponse::kFinish);
        break;
      case kGCheck:
        ctx.Send(port, Packet{kGCheckReply, {fp_done_ ? 1 : 0}});
        break;
      case kGCheckReply:
        HandleCheckReply(ctx, p.field(0) != 0);
        break;
      default:
        CELECT_CHECK(false) << "EFG engine: unknown message type "
                            << p.type;
    }
  }

 public:
  std::string DescribeState() const override {
    static const char* kRoleNames[] = {"passive",  "first-phase",
                                       "second-phase", "walking",
                                       "broadcasting", "leader", "dead"};
    std::string s = kRoleNames[static_cast<int>(role_)];
    s += " level=" + std::to_string(level_);
    s += " id=" + std::to_string(id_);
    if (captured_) s += " captured";
    s += " outstanding=" + std::to_string(outstanding_);
    s += " sp_pending=" + std::to_string(sp_pending_);
    s += " fp_responses=" + std::to_string(fp_responses_) + "/" +
         std::to_string(fp_threshold_);
    s += " pending=" + std::to_string(pending_.size());
    s += " maxid=" + std::to_string(maxid_);
    s += " elect_acks=" + std::to_string(elect_ports_.size());
    s += " confirm_acks=" + std::to_string(confirm_ports_.size());
    if (confirming_) s += " confirming";
    if (locked_) s += " locked-to=" + std::to_string(locked_id_);
    if (hint_port_ != sim::kInvalidPort) {
      s += " hint=" + std::to_string(hint_id_);
    }
    if (inflight_) s += " fwd-inflight";
    if (check_busy_) s += " check-busy";
    return s;
  }

 private:
  enum class Role {
    kPassive,      // never woke spontaneously (or barred)
    kFirstPhase,   // G: collecting permissions
    kSecondPhase,  // G: parallel capture burst to level k
    kWalking,      // Ɛ sequential capture
    kBroadcasting, // F/G: protocol D round
    kLeader,
    kDead,         // killed candidate
  };

  Credential Cred() const { return Credential{level_, id_}; }

  // A live authority contests forwarded/direct captures with its current
  // credential. Captured or dead nodes are not authorities.
  bool LiveCandidate() const {
    return !captured_ && (role_ == Role::kFirstPhase ||
                          role_ == Role::kSecondPhase ||
                          role_ == Role::kWalking ||
                          role_ == Role::kBroadcasting ||
                          role_ == Role::kLeader);
  }

  bool InSecondPhaseOrLater() const { return reached_second_; }

  // A candidate leaving the race. If it had started locking a confirm
  // quorum (FT), the locks must be released or rivals deadlock. Declared
  // leaders never die (and never release their quorum).
  void Die(Context& ctx) {
    if (role_ == Role::kLeader) return;
    if (role_ != Role::kPassive) role_ = Role::kDead;
    if (confirming_) {
      confirming_ = false;
      ctx.SendAll(Packet{kFRelease, {}});
    }
  }

  void BecomeCaptured(Context& ctx, Port owner_port) {
    captured_ = true;
    owner_port_ = owner_port;
    Die(ctx);
  }

  // ---- Ɛ capture walk ------------------------------------------------

  std::optional<Port> NextWalkPort() {
    while (walk_cursor_ <= n_ - 1 && sent_ports_.count(walk_cursor_)) {
      ++walk_cursor_;
    }
    if (walk_cursor_ > n_ - 1) return std::nullopt;
    return walk_cursor_;
  }

  void SendCaptureOn(Context& ctx, Port port) {
    sent_ports_.insert(port);
    ctx.Send(port, Packet{kFCapture, {id_, level_}});
  }

  void FillWindow(Context& ctx) {
    if (params_.doubling_walk) {
      StartWalkBatch(ctx);
      return;
    }
    // The window must stay at f+1 outstanding captures even close to the
    // target: at most f targets can be silently crashed, so a full
    // window always contains a live one and the walk cannot stall. A few
    // captures may overshoot the target; the broadcast fires once.
    while (outstanding_ < window_) {
      auto port = NextWalkPort();
      if (!port) break;  // every edge tried; rely on outstanding replies
      ++outstanding_;
      SendCaptureOn(ctx, *port);
    }
    if (outstanding_ == 0 && level_ >= walk_target_) StartBroadcast(ctx);
  }

  // [Si92] doubling walk: fire a whole batch at the frozen level, raise
  // the level by the batch's accepts once every reply is in, double the
  // batch. Reaching ⌈N/k⌉ takes O(log N) rounds.
  void StartWalkBatch(Context& ctx) {
    std::int64_t want =
        std::min<std::int64_t>(next_batch_, walk_target_ - level_);
    batch_pending_ = 0;
    batch_accepts_ = 0;
    for (std::int64_t i = 0; i < want; ++i) {
      auto port = NextWalkPort();
      if (!port) break;
      ++batch_pending_;
      SendCaptureOn(ctx, *port);
    }
    if (batch_pending_ == 0 && level_ >= walk_target_) StartBroadcast(ctx);
  }

  void FinishWalkBatch(Context& ctx) {
    level_ += batch_accepts_;
    next_batch_ *= 2;
    if (level_ >= walk_target_) {
      WalkDone(ctx);
    } else {
      StartWalkBatch(ctx);
    }
  }

  void WalkDone(Context& ctx) {
    if (params_.broadcast) {
      StartBroadcast(ctx);
    } else {
      role_ = Role::kLeader;
      ctx.DeclareLeader();
    }
  }

  void HandleCaptureAccept(Context& ctx) {
    if (captured_ || role_ == Role::kDead) return;
    if (role_ == Role::kSecondPhase) {
      ++sp_accepts_;
      CELECT_CHECK(sp_pending_ > 0);
      if (--sp_pending_ == 0) FinishSecondPhase(ctx);
      return;
    }
    if (role_ != Role::kWalking) return;
    if (params_.doubling_walk) {
      ++batch_accepts_;
      CELECT_CHECK(batch_pending_ > 0);
      if (--batch_pending_ == 0) FinishWalkBatch(ctx);
      return;
    }
    CELECT_CHECK(outstanding_ > 0);
    --outstanding_;
    ++level_;
    if (level_ >= walk_target_) {
      WalkDone(ctx);
      return;
    }
    FillWindow(ctx);
  }

  void HandleCaptureReject(Context& ctx, Port port, Credential rejecter) {
    if (captured_) return;
    if (role_ != Role::kWalking && role_ != Role::kSecondPhase) return;
    // With a capture window > 1 (FT), our level can have grown while the
    // rejected capture was in flight; a stale credential losing is not
    // fatal if our *current* one now wins — re-contest. Without this,
    // two top candidates can mutually kill each other with crossing
    // stale captures and leave the network leaderless. Sequential walks
    // (window 1) freeze the level while waiting, so the retry never
    // fires there and the paper's behaviour is unchanged.
    if (role_ == Role::kWalking && Cred() > rejecter) {
      ctx.Send(port, Packet{kFCapture, {id_, level_}});
      return;
    }
    Die(ctx);
  }

  void HandleCapture(Context& ctx, Port port, Contender c) {
    if (captured_) {
      EnqueueContender(ctx, c);
      return;
    }
    // A declared leader is final; it outranks any credential.
    if (role_ == Role::kLeader) {
      ctx.Send(port, Packet{kFReject, {id_, level_}});
      return;
    }
    // Protocol G: nodes that have not started their second phase are
    // regarded as passive — they accept unconditionally (Lemma 4.3(a)).
    if (params_.g_phases && !InSecondPhaseOrLater()) {
      BecomeCaptured(ctx, port);
      ctx.Send(port, Packet{kFAccept, {}});
      return;
    }
    // A node that never woke as a base node has nothing to defend: it is
    // captured outright. (Letting passive nodes contest with (0, id)
    // would let a lone small-identity candidate be killed by a passive
    // bystander and leave the network leaderless.)
    if (!is_base()) {
      BecomeCaptured(ctx, port);
      ctx.Send(port, Packet{kFAccept, {}});
      return;
    }
    // AG85 contest among base nodes (live candidates and killed ones
    // alike) on their own current (level, id).
    if (Cred() < c.Cred()) {
      BecomeCaptured(ctx, port);
      ctx.Send(port, Packet{kFAccept, {}});
    } else {
      ctx.Send(port, Packet{kFReject, {id_, level_}});
    }
  }

  // ---- Forwarding at captured nodes ----------------------------------

  void EnqueueContender(Context& ctx, Contender c) {
    if (!params_.throttle_forwards) {
      // Raw AG85: forward immediately; replies match in FIFO order.
      fifo_.push_back(c);
      ctx.MaxCounter(kCounterFwdQueuePeak,
                     static_cast<std::int64_t>(fifo_.size()));
      ctx.Send(owner_port_, Packet{kFFwd, {c.id, c.level}});
      return;
    }
    pending_.push_back(c);
    ctx.MaxCounter(kCounterFwdQueuePeak,
                   static_cast<std::int64_t>(pending_.size()));
    PumpForward(ctx);
  }

  void PumpForward(Context& ctx) {
    if (inflight_ || pending_.empty()) return;
    auto best = std::max_element(
        pending_.begin(), pending_.end(),
        [](const Contender& a, const Contender& b) {
          return a.Cred() < b.Cred();
        });
    inflight_ = *best;
    pending_.erase(best);
    ctx.Send(owner_port_, Packet{kFFwd, {inflight_->id, inflight_->level}});
  }

  void HandleFwd(Context& ctx, Port port, Id cand, std::int64_t cand_level) {
    // We are (or were) the owner of the forwarding node.
    if (LiveCandidate()) {
      if (role_ == Role::kLeader) {
        ctx.Send(port, Packet{kFFwdReject, {id_, level_}});
        return;
      }
      // Owners still short of their second phase count as passive under
      // protocol G (Lemma 4.3(c)) and are killed unconditionally.
      bool forced = params_.g_phases && !InSecondPhaseOrLater();
      if (!forced && Cred() > Credential{cand_level, cand}) {
        ctx.Send(port, Packet{kFFwdReject, {id_, level_}});
        return;
      }
      Die(ctx);  // the contender killed us
    }
    ctx.Send(port, Packet{kFFwdAccept, {}});
  }

  void HandleFwdReply(Context& ctx, bool owner_killed,
                      Credential rejecter) {
    if (!params_.throttle_forwards) {
      CELECT_CHECK(!fifo_.empty()) << "unmatched forward reply";
      Contender c = fifo_.front();
      fifo_.pop_front();
      if (owner_killed) {
        owner_port_ = c.port;
        ctx.Send(c.port, Packet{kFAccept, {}});
      } else {
        ctx.Send(c.port, Packet{kFReject, {rejecter.id, rejecter.level}});
      }
      return;
    }
    CELECT_CHECK(inflight_.has_value()) << "unmatched forward reply";
    if (!owner_killed) {
      ctx.Send(inflight_->port,
               Packet{kFReject, {rejecter.id, rejecter.level}});
      inflight_.reset();
      PumpForward(ctx);
      return;
    }
    // Owner killed: the largest contender seen so far takes this node
    // (paper Ɛ: "sends an accept to the node from which it has received
    // the largest (level, id) pair so far"); everyone else now contests
    // the new owner.
    Contender winner = *inflight_;
    inflight_.reset();
    auto best = std::max_element(
        pending_.begin(), pending_.end(),
        [](const Contender& a, const Contender& b) {
          return a.Cred() < b.Cred();
        });
    if (best != pending_.end() && best->Cred() > winner.Cred()) {
      // A stronger contender arrived while the forward was in flight: it
      // takes the node, and the forwarded one goes back to the pool to
      // contest the new owner.
      std::swap(*best, winner);
    }
    owner_port_ = winner.port;
    ctx.Send(winner.port, Packet{kFAccept, {}});
    PumpForward(ctx);
  }

  // ---- Broadcast round (protocol D with the (level, maxid) rule) -----
  //
  // With f = 0 this is exactly the paper's protocol F/G finale: accept
  // iff (level_j, maxid_j) < (level_i, i), weaker broadcasters stall
  // silently, quorum is all N-1 accepts. With f > 0 the quorum drops to
  // N-1-f, which alone would let a slow rival assemble a second quorum
  // after the first leader declared; the confirm round closes that: a
  // broadcaster with an elect quorum must also *lock* N-1-f nodes, a
  // locked node rejects every other candidate until its owner dies and
  // releases it, and two disjoint locked quorums cannot coexist for
  // f < (N-1)/2.

  void StartBroadcast(Context& ctx) {
    if (role_ == Role::kBroadcasting || role_ == Role::kLeader) return;
    role_ = Role::kBroadcasting;
    ctx.AddCounter(kCounterBroadcasters, 1);
    // Carry the *actual* level: G's first phase can push it past the
    // walk target (up to k+f first-phase accepts), and two such
    // broadcasters must still rank each other — advertising only the
    // target would let them ignore one another forever.
    ctx.SendAll(Packet{kFElect, {id_, level_}});
  }

  void HandleElect(Context& ctx, Port port, Id cand,
                   std::int64_t cand_level) {
    const bool ft = params_.f > 0;
    if (role_ == Role::kLeader) {
      if (ft) ctx.Send(port, Packet{kFElectRejectStronger, {}});
      return;
    }
    if (ft && locked_) {
      if (locked_id_ == cand) {
        ctx.Send(port, Packet{kFElectAccept, {}});
        return;
      }
      // Remember the strongest rejected candidate: if our lock owner
      // dies we hint it to retry.
      if (cand > hint_id_) {
        hint_id_ = cand;
        hint_port_ = port;
      }
      ctx.Send(port, Packet{kFElectRejectLocked, {}});
      return;
    }
    if (Credential{level_, maxid_} < Credential{cand_level, cand}) {
      maxid_ = std::max(maxid_, cand);
      accepted_max_ = std::max(accepted_max_, cand);
      Die(ctx);
      ctx.Send(port, Packet{kFElectAccept, {}});
    } else if (ft) {
      ctx.Send(port, Packet{kFElectRejectStronger, {}});
    }
    // else (paper, f = 0): silence — the weaker broadcaster stalls.
  }

  void HandleElectAccept(Context& ctx, Port port) {
    if (role_ != Role::kBroadcasting) return;
    elect_ports_.insert(port);  // idempotent under FT retries
    if (elect_ports_.size() < elect_quorum_) return;
    if (params_.f == 0) {
      role_ = Role::kLeader;
      ctx.DeclareLeader();
      return;
    }
    if (!confirming_) {
      confirming_ = true;
      ctx.SendAll(Packet{kFConfirm, {id_}});
    }
  }

  void HandleConfirm(Context& ctx, Port port, Id cand) {
    if (locked_) {
      ctx.Send(port, Packet{locked_id_ == cand
                                ? static_cast<std::uint16_t>(kFConfirmAck)
                                : static_cast<std::uint16_t>(
                                      kFConfirmReject),
                            {}});
      return;
    }
    // Lock iff the strongest elect we ever *accepted* is the confirmer
    // (own id deliberately excluded: a dead high-id node that accepted
    // the elect must still be able to confirm). A node that accepted an
    // elect died as a candidate at that moment, so no live rival locks.
    if (accepted_max_ == cand && role_ != Role::kLeader) {
      locked_ = true;
      locked_port_ = port;
      locked_id_ = cand;
      ctx.Send(port, Packet{kFConfirmAck, {}});
    } else {
      ctx.Send(port, Packet{kFConfirmReject, {}});
    }
  }

  void HandleConfirmAck(Context& ctx, Port port) {
    if (role_ != Role::kBroadcasting || !confirming_) return;
    confirm_ports_.insert(port);
    if (confirm_ports_.size() >= elect_quorum_) {
      role_ = Role::kLeader;
      ctx.DeclareLeader();
    }
  }

  void HandleRelease(Context& ctx, Port port) {
    if (!locked_ || locked_port_ != port) return;
    locked_ = false;
    locked_id_ = 0;
    if (hint_port_ != sim::kInvalidPort) {
      ctx.Send(hint_port_, Packet{kFRetryHint, {}});
      hint_port_ = sim::kInvalidPort;
      hint_id_ = 0;
    }
  }

  // ---- Protocol G first and second phases ----------------------------

  void StartFirstPhase(Context& ctx) {
    role_ = Role::kFirstPhase;
    fp_sent_ = std::min<std::uint32_t>(params_.k + params_.f, n_ - 1);
    fp_threshold_ = fp_sent_ > params_.f ? fp_sent_ - params_.f : 1;
    for (std::uint32_t i = 0; i < fp_sent_; ++i) {
      auto port = NextWalkPort();
      CELECT_CHECK(port.has_value());
      sent_ports_.insert(*port);
      ctx.Send(*port, Packet{kGFirstPhase, {id_}});
    }
  }

  enum class FpResponse { kAccept, kProceed, kFinish };

  void HandleFpResponse(Context& ctx, FpResponse r) {
    if (role_ != Role::kFirstPhase) return;  // late (FT) responses
    switch (r) {
      case FpResponse::kAccept:
        ++fp_accepts_;
        break;
      case FpResponse::kProceed:
        break;  // port already recorded
      case FpResponse::kFinish:
        fp_finish_ = true;
        break;
    }
    if (++fp_responses_ < fp_threshold_) return;
    fp_done_ = true;
    AnswerPendingChecks(ctx);
    if (fp_finish_ || captured_) {
      Die(ctx);
      return;
    }
    // Second phase: level := first-phase accepts; capture every node
    // that answered proceed, in parallel.
    role_ = Role::kSecondPhase;
    reached_second_ = true;
    level_ = fp_accepts_;
    sp_pending_ = static_cast<std::uint32_t>(fp_proceed_ports_.size());
    if (sp_pending_ == 0) {
      FinishSecondPhase(ctx);
      return;
    }
    for (Port port : fp_proceed_ports_) {
      ctx.Send(port, Packet{kFCapture, {id_, level_}});
    }
  }

  void FinishSecondPhase(Context& ctx) {
    level_ += sp_accepts_;
    role_ = Role::kWalking;
    if (level_ >= walk_target_) {
      StartBroadcast(ctx);
    } else {
      FillWindow(ctx);
    }
  }

  void HandleFirstPhase(Context& ctx, Port port) {
    if (captured_) {
      // Ask our owner whether it finished its first phase; one check
      // outstanding at a time, further askers queue behind it.
      if (owner_finished_) {
        ctx.Send(port, Packet{kGFinish, {}});
        return;
      }
      check_queue_.push_back(port);
      if (!check_busy_) {
        check_busy_ = true;
        ctx.Send(owner_port_, Packet{kGCheck, {}});
      }
      return;
    }
    if (is_base() && fp_done_) {
      ctx.Send(port, Packet{kGFinish, {}});
      return;
    }
    if (is_base() && role_ == Role::kFirstPhase) {
      ctx.Send(port, Packet{kGProceed, {}});
      return;
    }
    // Passive (or awakened-non-base) uncaptured node: captured by the
    // asker.
    BecomeCaptured(ctx, port);
    ctx.Send(port, Packet{kGPAccept, {}});
  }

  void HandleCheckReply(Context& ctx, bool finished) {
    CELECT_CHECK(check_busy_) << "unexpected check reply";
    check_busy_ = false;
    if (finished) owner_finished_ = true;
    std::uint16_t reply = finished ? kGFinish : kGProceed;
    for (Port port : check_queue_) ctx.Send(port, Packet{reply, {}});
    check_queue_.clear();
  }

  void AnswerPendingChecks(Context&) {
    // Nothing to do: checks are answered by the owner, not by us. Hook
    // retained for symmetry/clarity when first phase completes.
  }

  const Id id_;
  const std::uint32_t n_;
  const EfgParams params_;

  Role role_ = Role::kPassive;
  bool reached_second_ = false;  // G: ever entered the second phase
  bool captured_ = false;
  Port owner_port_ = sim::kInvalidPort;
  std::int64_t level_ = 0;
  Id maxid_;
  std::int64_t walk_target_ = 0;
  std::uint32_t window_ = 1;
  std::uint32_t elect_quorum_ = 0;

  // Walk state.
  std::unordered_set<Port> sent_ports_;
  Port walk_cursor_ = 1;
  std::uint32_t outstanding_ = 0;
  // Doubling-walk state ([Si92] variant).
  std::int64_t next_batch_ = 1;
  std::uint32_t batch_pending_ = 0;
  std::uint32_t batch_accepts_ = 0;

  // Forwarding state (captured nodes).
  std::vector<Contender> pending_;
  std::optional<Contender> inflight_;
  std::deque<Contender> fifo_;  // unthrottled mode

  // Broadcast state.
  std::unordered_set<Port> elect_ports_;

  // FT confirm-round state.
  bool confirming_ = false;
  std::unordered_set<Port> confirm_ports_;
  Id accepted_max_ = 0;  // strongest elect this node has accepted
  bool locked_ = false;
  Port locked_port_ = sim::kInvalidPort;
  Id locked_id_ = 0;
  Port hint_port_ = sim::kInvalidPort;
  Id hint_id_ = 0;

  // G first/second phase state.
  std::uint32_t fp_sent_ = 0;
  std::uint32_t fp_threshold_ = 0;
  std::uint32_t fp_responses_ = 0;
  std::uint32_t fp_accepts_ = 0;
  bool fp_finish_ = false;
  bool fp_done_ = false;
  std::vector<Port> fp_proceed_ports_;
  std::uint32_t sp_pending_ = 0;
  std::uint32_t sp_accepts_ = 0;

  // Check machinery (captured nodes answering first-phase queries).
  bool check_busy_ = false;
  bool owner_finished_ = false;
  std::vector<Port> check_queue_;
};

}  // namespace

sim::ProcessFactory MakeEfgProcess(EfgParams params) {
  return [params](const sim::ProcessInit& init) {
    return std::make_unique<EfgNode>(init, params);
  };
}

}  // namespace celect::proto::nosod
