#include "celect/proto/nosod/protocol_d.h"

#include <memory>

#include "celect/proto/common.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

class ProtocolDNode : public ElectionProcess {
 public:
  explicit ProtocolDNode(const sim::ProcessInit& init)
      : id_(init.id), n_(init.n) {}

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    // The whole candidacy is one broadcast round: N-1 elects out,
    // collect accepts until a verdict.
    ctx.BeginPhase(obs::PhaseId::kBroadcast);
    ctx.SendAll(Packet{kDElect, {id_}});
  }

  void OnPacket(Context& ctx, Port from_port, const Packet& p,
                bool /*first_contact*/) override {
    switch (p.type) {
      case kDElect:
        // Silence is the contest: only a base node with a larger
        // identity withholds its accept.
        if (!(is_base() && id_ > p.field(0))) {
          if (is_base() && !lost_) {
            lost_ = true;  // a larger base is in the race
            ctx.EndPhase(obs::PhaseId::kBroadcast);
          }
          ctx.Send(from_port, Packet{kDAccept, {}});
        }
        break;
      case kDAccept:
        if (is_base() && ++accepts_ == n_ - 1) {
          declared_ = true;
          ctx.EndPhase(obs::PhaseId::kBroadcast);
          ctx.DeclareLeader();
        }
        break;
      default:
        CELECT_CHECK(false) << "protocol D: unknown message type "
                            << p.type;
    }
  }

 public:
  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables obs;
    obs.monotone = {{"accepts", static_cast<std::int64_t>(accepts_)},
                    {"lost", lost_ ? 1 : 0},
                    {"declared", declared_ ? 1 : 0}};
    // A losing base node learns it lost from the winner's own elect
    // broadcast; passive nodes are never in the race.
    obs.terminated = declared_ || lost_ || !is_base();
    return obs;
  }

 private:
  const Id id_;
  const std::uint32_t n_;
  std::uint32_t accepts_ = 0;
  bool lost_ = false;
  bool declared_ = false;
};

}  // namespace

sim::ProcessFactory MakeProtocolD() {
  return [](const sim::ProcessInit& init) {
    return std::make_unique<ProtocolDNode>(init);
  };
}

}  // namespace celect::proto::nosod
