#include "celect/proto/nosod/protocol_d.h"

#include <memory>

#include "celect/proto/common.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

class ProtocolDNode : public ElectionProcess {
 public:
  explicit ProtocolDNode(const sim::ProcessInit& init)
      : id_(init.id), n_(init.n) {}

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    ctx.SendAll(Packet{kDElect, {id_}});
  }

  void OnPacket(Context& ctx, Port from_port, const Packet& p,
                bool /*first_contact*/) override {
    switch (p.type) {
      case kDElect:
        // Silence is the contest: only a base node with a larger
        // identity withholds its accept.
        if (!(is_base() && id_ > p.field(0))) {
          ctx.Send(from_port, Packet{kDAccept, {}});
        }
        break;
      case kDAccept:
        if (is_base() && ++accepts_ == n_ - 1) ctx.DeclareLeader();
        break;
      default:
        CELECT_CHECK(false) << "protocol D: unknown message type "
                            << p.type;
    }
  }

 private:
  const Id id_;
  const std::uint32_t n_;
  std::uint32_t accepts_ = 0;
};

}  // namespace

sim::ProcessFactory MakeProtocolD() {
  return [](const sim::ProcessInit& init) {
    return std::make_unique<ProtocolDNode>(init);
  };
}

}  // namespace celect::proto::nosod
