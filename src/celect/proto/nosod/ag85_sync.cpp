#include "celect/proto/nosod/ag85_sync.h"

#include <memory>

#include "celect/proto/common.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

namespace {

using sim::Id;
using sim::Port;
using sim::SyncContext;
using wire::Packet;

class Ag85SyncNode : public sim::SyncProcess {
 public:
  explicit Ag85SyncNode(const sim::SyncProcessInit& init)
      : id_(init.id), n_(init.n), best_{0, init.id} {}

  void OnRound(SyncContext& ctx,
               const std::vector<std::pair<Port, Packet>>& inbox) override {
    if (ctx.round() == 0) {
      // Synchronous model: all nodes start together as candidates.
      alive_ = true;
      step_ = 1;
      SendStep(ctx);
      return;
    }
    for (const auto& [port, p] : inbox) {
      switch (p.type) {
        case kSCapture:
          HandleCapture(ctx, port, p.field(0), p.field(1));
          break;
        case kSAccept:
          ++accepts_;
          break;
        case kSReject:
          alive_ = false;
          break;
        default:
          CELECT_CHECK(false) << "ag85 sync: unknown type " << p.type;
      }
    }
    if (!alive_ || pending_ == 0) return;
    if (accepts_ < pending_) return;  // replies for this step incomplete
    captured_ += accepts_;
    accepts_ = 0;
    pending_ = 0;
    if (captured_ >= n_ - 1) {
      ctx.DeclareLeader();
      alive_ = false;  // stop sending; run quiesces
      return;
    }
    ++step_;
    SendStep(ctx);
  }

 private:
  void SendStep(SyncContext& ctx) {
    std::uint32_t want = 1u << (step_ - 1);
    std::uint32_t remaining = (n_ - 1) - captured_;
    std::uint32_t batch = std::min(want, remaining);
    pending_ = 0;
    for (std::uint32_t i = 0; i < batch && next_port_ <= n_ - 1; ++i) {
      ctx.Send(next_port_++, Packet{kSCapture, {id_, step_}});
      ++pending_;
    }
    if (pending_ == 0) alive_ = false;  // out of edges (cannot win)
  }

  void HandleCapture(SyncContext& ctx, Port port, Id cand,
                     std::int64_t step) {
    Credential theirs{step, cand};
    Credential mine = alive_ ? Credential{step_, id_} : best_;
    if (theirs > mine) {
      best_ = theirs;
      if (alive_) alive_ = false;  // killed by a stronger candidate
      ctx.Send(port, Packet{kSAccept, {}});
    } else {
      ctx.Send(port, Packet{kSReject, {}});
    }
  }

  const Id id_;
  const std::uint32_t n_;

  bool alive_ = false;
  std::int64_t step_ = 0;
  std::uint32_t captured_ = 0;
  std::uint32_t accepts_ = 0;
  std::uint32_t pending_ = 0;
  Port next_port_ = 1;
  Credential best_;  // strongest credential seen (own id at level 0)
};

}  // namespace

sim::SyncProcessFactory MakeAg85Sync() {
  return [](const sim::SyncProcessInit& init) {
    return std::make_unique<Ag85SyncNode>(init);
  };
}

}  // namespace celect::proto::nosod
