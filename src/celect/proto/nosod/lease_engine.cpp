#include "celect/proto/nosod/lease_engine.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {
namespace {

using sim::Context;
using sim::LeaseEvent;
using sim::Port;
using sim::Time;
using sim::TimerId;

// A candidate re-runs a failed acquisition round this many times before
// abandoning the term to its watchdog.
constexpr std::uint32_t kMaxGrantRetries = 3;

// Outstanding rounds kept while their acks are in flight; older rounds
// beyond this are abandoned (their deadlines are the stalest anyway).
constexpr std::size_t kMaxOutstandingRounds = 8;

// Deterministic per-identity stagger in {0, 1, 2, 3}; identities may be
// negative, so fold into the non-negative range first.
int Stagger(sim::Id id) { return static_cast<int>(((id % 4) + 4) % 4); }

class LeaseProcess : public sim::Process {
 public:
  LeaseProcess(LeaseParams params, sim::ProcessFactory inner_factory,
               const sim::ProcessInit& init)
      : params_(params), inner_factory_(std::move(inner_factory)),
        init_(init) {
    CELECT_CHECK(params_.renew_interval > Time::Zero() &&
                 params_.renew_interval < params_.lease_duration)
        << "renew_interval must be in (0, lease_duration)";
    CELECT_CHECK(params_.election_timeout > Time::Zero());
  }

  void OnWakeup(Context& ctx) override {
    Engage(ctx);
    ScheduleNominate(ctx);
  }

  void OnRejoin(Context& ctx) override {
    // Quarantine: this incarnation has no memory of promises its
    // previous life made, but every such promise expires within one
    // lease_duration of the crash (deadlines are send_time + duration,
    // and the crash post-dates every ack). Refusing to ack until then
    // restores the quorum-intersection safety argument.
    grey_until_ = ctx.now() + params_.lease_duration;
    Engage(ctx);
  }

  void OnMessage(Context& ctx, Port from_port,
                 const wire::Packet& p) override {
    Engage(ctx);
    if (p.type >= kLeaseWrapBase) {
      OnWrapped(ctx, from_port, p);
      return;
    }
    switch (p.type) {
      case kLeaseGrant:
      case kLeaseRenew:
        OnGrantOrRenew(ctx, from_port, p);
        break;
      case kLeaseAck:
        OnAck(ctx, from_port, p.field(0), p.field(1));
        break;
      case kLeaseReject:
        OnReject(from_port, p.field(0), p.field(1));
        break;
      case kLeaseRelease:
        OnRelease(ctx, p.field(0));
        break;
      default:
        break;  // unknown control type: ignore
    }
  }

  void OnTimer(Context& ctx, TimerId timer) override {
    if (timer == watchdog_timer_) {
      watchdog_timer_ = sim::kInvalidTimer;
      HandleWatchdog(ctx);
    } else if (timer == renew_timer_) {
      renew_timer_ = sim::kInvalidTimer;
      HandleRenew(ctx);
    } else if (timer == expiry_timer_) {
      expiry_timer_ = sim::kInvalidTimer;
      HandleExpiry(ctx);
    } else if (timer == retry_timer_) {
      retry_timer_ = sim::kInvalidTimer;
      HandleRetry(ctx);
    } else if (timer == nominate_timer_) {
      nominate_timer_ = sim::kInvalidTimer;
      HandleNominate(ctx);
    } else if (inner_timers_.erase(timer) > 0) {
      CELECT_CHECK(inner_ != nullptr);
      TermContext tctx(*this, ctx);
      inner_->OnTimer(tctx, timer);
    }
    // else: a timer of a discarded inner instance — stale, ignore.
  }

  void OnPeerSuspected(Context& ctx, Port port) override {
    // The lease layer's own liveness comes from its watchdog/renew
    // timers, which fire regardless of any one peer — a crash hint
    // changes nothing there. The inner election, though, may be
    // waiting on the suspected node; forward so its recovery path can
    // act early. The wrapped context keeps the inner engine's sends
    // term-tagged, same as every other forwarded callback.
    if (inner_ == nullptr) return;
    TermContext tctx(*this, ctx);
    inner_->OnPeerSuspected(tctx, port);
  }

  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables o;
    o.monotone.emplace_back("lease.term", term_);
    if (role_ == Role::kHolding) {
      o.lease = sim::ProtocolObservables::LeaseClaim{lease_term_, deadline_};
    }
    return o;
  }

  std::string DescribeState() const override {
    std::ostringstream os;
    os << "term=" << term_ << " role="
       << (role_ == Role::kHolding
               ? "holding"
               : role_ == Role::kAcquiring ? "acquiring" : "follower")
       << " promised=(" << promised_term_ << ","
       << promised_until_.ToString() << ")";
    if (role_ == Role::kHolding) {
      os << " deadline=" << deadline_.ToString();
    }
    return os.str();
  }

 private:
  enum class Role { kFollower, kAcquiring, kHolding };

  // Wraps the real context for the inner election: every send gets the
  // current term prepended and its type lifted past kLeaseWrapBase, the
  // inner's timers are tracked so a term change can cancel them, and
  // DeclareLeader becomes "start acquiring the lease" instead of a
  // leadership announcement.
  class TermContext : public Context {
   public:
    TermContext(LeaseProcess& owner, Context& real)
        : owner_(owner), real_(real) {}

    sim::NodeId address() const override { return real_.address(); }
    sim::Id id() const override { return real_.id(); }
    std::uint32_t n() const override { return real_.n(); }
    Time now() const override { return real_.now(); }
    bool has_sense_of_direction() const override {
      return real_.has_sense_of_direction();
    }
    void Send(Port port, wire::Packet p) override {
      real_.Send(port, owner_.Wrap(std::move(p)));
    }
    std::optional<Port> SendFresh(wire::Packet p) override {
      return real_.SendFresh(owner_.Wrap(std::move(p)));
    }
    void SendAll(wire::Packet p) override {
      real_.SendAll(owner_.Wrap(std::move(p)));
    }
    TimerId SetTimer(Time delay) override {
      TimerId t = real_.SetTimer(delay);
      owner_.inner_timers_.insert(t);
      return t;
    }
    void CancelTimer(TimerId timer) override {
      owner_.inner_timers_.erase(timer);
      real_.CancelTimer(timer);
    }
    void DeclareLeader() override { owner_.OnInnerElected(real_); }
    void AddCounter(std::string_view name, std::int64_t delta) override {
      real_.AddCounter(name, delta);
    }
    void MaxCounter(std::string_view name, std::int64_t value) override {
      real_.MaxCounter(name, value);
    }
    sim::CounterRef ResolveCounter(std::string_view name) override {
      return real_.ResolveCounter(name);
    }
    void AddCounter(const sim::CounterRef& c, std::int64_t delta) override {
      real_.AddCounter(c, delta);
    }
    void MaxCounter(const sim::CounterRef& c, std::int64_t value) override {
      real_.MaxCounter(c, value);
    }
    void BeginPhase(obs::PhaseId phase, std::int64_t level) override {
      real_.BeginPhase(phase, level);
    }
    void EndPhase(obs::PhaseId phase) override { real_.EndPhase(phase); }

   private:
    LeaseProcess& owner_;
    Context& real_;
  };

  wire::Packet Wrap(wire::Packet p) {
    wire::Packet w;
    w.type = static_cast<std::uint16_t>(kLeaseWrapBase + p.type);
    w.fields.reserve(p.fields.size() + 1);
    w.fields.push_back(term_);
    w.fields.insert(w.fields.end(), p.fields.begin(), p.fields.end());
    return w;
  }

  std::uint32_t Quorum() const { return init_.n / 2 + 1; }

  bool BeforeHorizon(const Context& ctx) const {
    return ctx.now() < params_.horizon;
  }

  bool HasValidLease(Time now) const {
    return known_deadline_ != Time::Zero() && known_deadline_ >= now;
  }

  bool CanPromise(std::int64_t term, sim::Id holder, Time now) const {
    if (term == promised_term_) {
      // Same term: only the holder already promised to may extend. The
      // identity check keeps a duplicate same-term winner (conceivable
      // only if churn corrupts an inner election) from double-leasing.
      return holder == promised_holder_;
    }
    return term > promised_term_ && now > promised_until_;
  }

  Time WatchdogPeriod(const Context& ctx) const {
    return Time::FromTicks(params_.election_timeout.ticks() *
                           (4 + Stagger(ctx.id())) / 4);
  }

  void Engage(Context& ctx) {
    if (engaged_) return;
    engaged_ = true;
    ArmWatchdog(ctx);
  }

  void ArmWatchdog(Context& ctx) {
    if (!BeforeHorizon(ctx) || watchdog_timer_ != sim::kInvalidTimer) return;
    watchdog_timer_ = ctx.SetTimer(WatchdogPeriod(ctx));
  }

  void ScheduleNominate(Context& ctx) {
    if (!BeforeHorizon(ctx) || nominate_timer_ != sim::kInvalidTimer) return;
    if (role_ != Role::kFollower || ctx.now() < grey_until_) return;
    // Small identity-staggered fuse so the whole network does not
    // nominate in lockstep on every release/startup.
    nominate_timer_ = ctx.SetTimer(Time::FromTicks(
        params_.election_timeout.ticks() / 8 * (1 + Stagger(ctx.id()))));
  }

  // Minimum grace an in-flight election gets before any node preempts
  // it with a higher term. The inner FT engine legitimately goes quiet
  // for whole recovery/revival periods mid-election, so a short "no
  // traffic lately" test alone misreads recovery gaps as death and
  // livelocks the service on term bumps. Instead a term is preempted
  // only once it has outlived this many watchdog periods without a
  // grant AND the line has also gone quiet — fresh traffic extends a
  // stalled term's life, quiet alone never shortens a young one's.
  static constexpr std::int64_t kTermPatiencePeriods = 4;

  bool TermStalled(const Context& ctx) const {
    return ctx.now() - term_started_ >=
           Time::FromTicks(WatchdogPeriod(ctx).ticks() * kTermPatiencePeriods);
  }

  // True while a term exists and still deserves deference: it is
  // either younger than the patience bound or actively chattering.
  // term_ == 0 means no election was ever started — never defer.
  bool ElectionDeservesGrace(const Context& ctx) const {
    return term_ > 0 &&
           (!TermStalled(ctx) ||
            ctx.now() - last_activity_ <
                Time::FromTicks(WatchdogPeriod(ctx).ticks() / 2));
  }

  void HandleNominate(Context& ctx) {
    if (!BeforeHorizon(ctx) || role_ != Role::kFollower) return;
    if (ctx.now() < grey_until_ || HasValidLease(ctx.now())) return;
    // An election already in flight gets to finish; concurrent
    // nominations that fire before any traffic lands all bump to the
    // *same* term and contend inside one inner election.
    if (ElectionDeservesGrace(ctx)) return;
    StartElection(ctx);
  }

  void HandleWatchdog(Context& ctx) {
    if (!BeforeHorizon(ctx)) return;  // service window over: quiesce
    ArmWatchdog(ctx);
    if (role_ == Role::kHolding) return;
    if (ctx.now() < grey_until_ || HasValidLease(ctx.now())) return;
    if (ElectionDeservesGrace(ctx)) return;
    StartElection(ctx);
  }

  void StartElection(Context& ctx) {
    ++term_;
    term_started_ = ctx.now();
    ResetInner(ctx);
    if (role_ == Role::kAcquiring) role_ = Role::kFollower;
    last_activity_ = ctx.now();
    EnsureInner();
    TermContext tctx(*this, ctx);
    inner_->OnWakeup(tctx);
  }

  void AdoptTerm(Context& ctx, std::int64_t term) {
    if (term <= term_) return;
    term_ = term;
    term_started_ = ctx.now();
    ResetInner(ctx);
    // A holder keeps its (older-term) lease through adoption: promises
    // block any new grant until that lease's deadline anyway.
    if (role_ == Role::kAcquiring) role_ = Role::kFollower;
  }

  void EnsureInner() {
    if (!inner_) inner_ = inner_factory_(init_);
  }

  void ResetInner(Context& ctx) {
    for (TimerId t : inner_timers_) ctx.CancelTimer(t);
    inner_timers_.clear();
    inner_.reset();
  }

  // --- the wrapped election decided: acquire the lease ----------------

  void OnInnerElected(Context& ctx) {
    if (role_ != Role::kFollower || !BeforeHorizon(ctx)) return;
    if (!CanPromise(term_, ctx.id(), ctx.now())) return;  // a lease blocks us
    lease_term_ = term_;
    role_ = Role::kAcquiring;
    round_ = 0;
    rounds_.clear();
    grant_retries_ = 0;
    StartRound(ctx, kLeaseGrant);
    ArmRetry(ctx);
  }

  void StartRound(Context& ctx, std::uint16_t type) {
    ++round_;
    const Time deadline = ctx.now() + params_.lease_duration;
    // Rounds stay outstanding until superseded by a completed one: the
    // round trip can outlast the renew cadence, so a quorum assembled
    // from late acks must still count (each ack promises that round's
    // deadline, so granting on it is safe whenever it arrives).
    rounds_.emplace(round_, PendingRound{deadline, {}});
    if (rounds_.size() > kMaxOutstandingRounds) {
      rounds_.erase(rounds_.begin());
    }
    rejects_.clear();
    // The holder votes for itself: promise before asking others.
    promised_term_ = lease_term_;
    promised_holder_ = ctx.id();
    promised_until_ = std::max(promised_until_, deadline);
    ctx.SendAll(
        wire::Packet{type, {lease_term_, round_, ctx.id(), deadline.ticks()}});
  }

  void ArmRetry(Context& ctx) {
    if (!BeforeHorizon(ctx) || retry_timer_ != sim::kInvalidTimer) return;
    retry_timer_ = ctx.SetTimer(params_.renew_interval);
  }

  void HandleRetry(Context& ctx) {
    if (role_ != Role::kAcquiring || !BeforeHorizon(ctx)) return;
    if (++grant_retries_ > kMaxGrantRetries) {
      role_ = Role::kFollower;  // abandon; the watchdog re-elects
      rounds_.clear();
      return;
    }
    StartRound(ctx, kLeaseGrant);
    ArmRetry(ctx);
  }

  void HandleRenew(Context& ctx) {
    if (role_ != Role::kHolding) return;
    if (!BeforeHorizon(ctx)) return;  // stop renewing: let the run drain
    if (params_.max_renewals > 0 && renewals_ >= params_.max_renewals) {
      StepDown(ctx);
      return;
    }
    ++renewals_;
    StartRound(ctx, kLeaseRenew);
    ArmRenew(ctx);
  }

  void ArmRenew(Context& ctx) {
    if (!BeforeHorizon(ctx) || renew_timer_ != sim::kInvalidTimer) return;
    renew_timer_ = ctx.SetTimer(params_.renew_interval);
  }

  void ArmExpiry(Context& ctx) {
    if (expiry_timer_ != sim::kInvalidTimer) return;
    // Fires one tick past the deadline; self-terminates (no horizon
    // gate needed: it re-arms only while renewals keep extending the
    // deadline, and renewals stop at the horizon). Under the explorer's
    // free event reordering, `now` may already sit past the deadline
    // when the quorum completes — clamp so the timer fires at once.
    expiry_timer_ = ctx.SetTimer(
        std::max(deadline_ - ctx.now() + Time::Tick(), Time::Tick()));
  }

  void HandleExpiry(Context& ctx) {
    if (role_ != Role::kHolding) return;
    if (deadline_ >= ctx.now()) {  // renewed meanwhile
      ArmExpiry(ctx);
      return;
    }
    role_ = Role::kFollower;
    rounds_.clear();
    ctx.RecordLease(LeaseEvent::kExpired);
  }

  void StepDown(Context& ctx) {
    role_ = Role::kFollower;
    rounds_.clear();
    ctx.RecordLease(LeaseEvent::kRevoked);
    deadline_ = Time::Zero();
    known_deadline_ = std::min(known_deadline_, ctx.now());
    // Releasing own promise is safe: the holder stopped claiming above,
    // so no valid lease for this term exists to protect.
    if (promised_term_ == lease_term_) {
      promised_until_ = std::min(promised_until_, ctx.now());
    }
    ctx.SendAll(wire::Packet{kLeaseRelease, {lease_term_}});
    ScheduleNominate(ctx);
  }

  // --- follower side --------------------------------------------------

  void OnGrantOrRenew(Context& ctx, Port from_port, const wire::Packet& p) {
    const std::int64_t term = p.field(0);
    const std::int64_t round = p.field(1);
    const sim::Id holder = p.field(2);
    const Time deadline = Time::FromTicks(p.field(3));
    AdoptTerm(ctx, term);  // that election is over; stop contesting it
    if (ctx.now() < grey_until_) return;  // quarantine: no votes
    if (!CanPromise(term, holder, ctx.now())) {
      ctx.Send(from_port, wire::Packet{kLeaseReject, {term, round}});
      return;
    }
    promised_term_ = term;
    promised_holder_ = holder;
    promised_until_ = std::max(promised_until_, deadline);
    known_deadline_ = std::max(known_deadline_, deadline);
    ctx.Send(from_port, wire::Packet{kLeaseAck, {term, round}});
  }

  void OnAck(Context& ctx, Port from_port, std::int64_t term,
             std::int64_t round) {
    if (role_ == Role::kFollower || term != lease_term_) return;
    const auto it = rounds_.find(round);
    if (it == rounds_.end()) return;  // superseded or abandoned round
    it->second.acks.insert(from_port);
    if (1 + it->second.acks.size() < Quorum()) return;
    const Time deadline = it->second.deadline;
    // This round and everything older is settled.
    rounds_.erase(rounds_.begin(), std::next(it));
    if (role_ == Role::kAcquiring) {
      role_ = Role::kHolding;
      deadline_ = deadline;
      known_deadline_ = std::max(known_deadline_, deadline_);
      renewals_ = 0;
      ctx.RecordLease(LeaseEvent::kGranted);
      ctx.DeclareLeader();
      ArmRenew(ctx);
      ArmExpiry(ctx);
    } else if (deadline > deadline_) {
      deadline_ = deadline;
      known_deadline_ = std::max(known_deadline_, deadline_);
      ctx.RecordLease(LeaseEvent::kRenewed);
    }
  }

  void OnReject(Port from_port, std::int64_t term, std::int64_t round) {
    if (role_ != Role::kAcquiring) return;
    if (term != lease_term_ || round != round_) return;  // latest round only
    rejects_.insert(from_port);
    // Abandon once a quorum is unreachable even if everyone else acks.
    if (1 + (init_.n - 1 - rejects_.size()) < Quorum()) {
      role_ = Role::kFollower;
      rounds_.clear();
    }
  }

  void OnRelease(Context& ctx, std::int64_t term) {
    if (promised_term_ == term) {
      promised_until_ = std::min(promised_until_, ctx.now());
    }
    known_deadline_ = std::min(known_deadline_, ctx.now());
    ScheduleNominate(ctx);
  }

  void OnWrapped(Context& ctx, Port from_port, const wire::Packet& p) {
    const std::int64_t term = p.field(0);
    last_activity_ = ctx.now();
    if (term < term_) return;  // a superseded election's traffic
    AdoptTerm(ctx, term);
    EnsureInner();
    wire::Packet stripped;
    stripped.type = static_cast<std::uint16_t>(p.type - kLeaseWrapBase);
    stripped.fields.assign(p.fields.begin() + 1, p.fields.end());
    TermContext tctx(*this, ctx);
    inner_->OnMessage(tctx, from_port, stripped);
  }

  const LeaseParams params_;
  const sim::ProcessFactory inner_factory_;
  const sim::ProcessInit init_;

  // Election state.
  std::int64_t term_ = 0;
  // When this node started (or adopted) term_ — the anchor for the
  // stalled-election patience bound.
  Time term_started_ = Time::Zero();
  std::unique_ptr<sim::Process> inner_;  // instance for term_ (lazy)
  std::set<TimerId> inner_timers_;
  bool engaged_ = false;

  // Voter state.
  std::int64_t promised_term_ = 0;
  sim::Id promised_holder_ = 0;
  Time promised_until_ = Time::Zero();
  Time grey_until_ = Time::Zero();

  // Shared knowledge.
  Time known_deadline_ = Time::Zero();  // latest deadline this node acked
  // Last *election* (wrapped inner) traffic heard. Deliberately not
  // bumped by grant/renew traffic: a healthy lease already suppresses
  // watchdogs and fuses via known_deadline_, and after a release the
  // fuse must not be muzzled by the dead reign's renewals.
  Time last_activity_ = Time::Zero();

  // Holder state (meaningful when role_ != kFollower).
  Role role_ = Role::kFollower;
  std::int64_t lease_term_ = 0;
  std::int64_t round_ = 0;
  Time deadline_ = Time::Zero();
  // Outstanding grant/renew rounds awaiting a quorum, keyed by round.
  struct PendingRound {
    Time deadline;
    std::set<Port> acks;
  };
  std::map<std::int64_t, PendingRound> rounds_;
  std::set<Port> rejects_;
  std::uint32_t renewals_ = 0;
  std::uint32_t grant_retries_ = 0;

  // Wrapper-owned timers.
  TimerId watchdog_timer_ = sim::kInvalidTimer;
  TimerId renew_timer_ = sim::kInvalidTimer;
  TimerId expiry_timer_ = sim::kInvalidTimer;
  TimerId retry_timer_ = sim::kInvalidTimer;
  TimerId nominate_timer_ = sim::kInvalidTimer;
};

}  // namespace

sim::ProcessFactory MakeLeaseEngine(LeaseParams params) {
  return [params](const sim::ProcessInit& init) {
    sim::ProcessFactory inner = MakeFaultTolerant(params.f, params.k);
    return std::make_unique<LeaseProcess>(params, std::move(inner), init);
  };
}

}  // namespace celect::proto::nosod
