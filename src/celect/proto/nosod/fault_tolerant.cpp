#include "celect/proto/nosod/fault_tolerant.h"

#include "celect/proto/nosod/efg_engine.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

sim::ProcessFactory MakeFaultTolerant(std::uint32_t f, std::uint32_t k) {
  return [f, k](const sim::ProcessInit& init) {
    // The confirm-round disjointness argument needs 2(N-1-f) > N-1.
    CELECT_CHECK(f == 0 || 2 * f < init.n - 1)
        << "fault tolerance requires f < (N-1)/2";
    EfgParams params;
    params.k = k == 0 ? MessageOptimalK(init.n) : k;
    params.broadcast = true;
    params.g_phases = true;
    params.f = f;
    return MakeEfgProcess(params)(init);
  };
}

}  // namespace celect::proto::nosod
