// Protocol D (paper §4) — parallel flooding election, no sense of
// direction.
//
// On waking, a base node broadcasts elect(id) on all N-1 edges. A node
// receiving elect(i) stays silent iff it is a base node with a larger
// identity; otherwise it accepts. The node that collects N-1 accepts —
// the largest base node — declares itself leader. O(1) time, O(N²)
// messages; protocol F uses it as the final round after Ɛ has whittled
// the candidates down to O(k).
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::nosod {

enum ProtocolDMsg : std::uint16_t {
  kDElect = 1,   // fields: {candidate_id}
  kDAccept = 2,  // fields: {}
};

sim::ProcessFactory MakeProtocolD();

}  // namespace celect::proto::nosod
