// Protocol Ɛ (paper §4) — AG85 sequential capture with throttled
// forwarding, no sense of direction.
//
// A base node captures nodes one edge at a time, contesting on
// (level, id); capturing an owned node requires killing its owner first.
// The Ɛ modification keeps at most one forwarded message per node in
// flight and always forwards/accepts the largest buffered (level, id), so
// every successful capture takes O(1) time — raw AG85 can serialise Θ(N)
// forwarded messages on one link. O(N log N) messages, O(N) time; the
// candidate that reaches level N-1 has captured everyone and declares.
#pragma once

#include "celect/sim/process.h"

namespace celect::proto::nosod {

// throttle_forwards = false gives raw AG85 protocol A (the congestion
// pathology benchmarked in experiment E8).
sim::ProcessFactory MakeProtocolE(bool throttle_forwards = true);

}  // namespace celect::proto::nosod
