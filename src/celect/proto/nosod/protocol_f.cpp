#include "celect/proto/nosod/protocol_f.h"

#include "celect/proto/nosod/efg_engine.h"
#include "celect/util/check.h"

namespace celect::proto::nosod {

sim::ProcessFactory MakeProtocolF(std::uint32_t k) {
  CELECT_CHECK(k >= 1);
  EfgParams params;
  params.k = k;
  params.broadcast = true;
  return MakeEfgProcess(params);
}

}  // namespace celect::proto::nosod
