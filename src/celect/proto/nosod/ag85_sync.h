// Synchronous doubling election (after Afek & Gafni 1985), used as the
// synchronous baseline for experiment E13.
//
// In the round-synchronous model a candidate doubles its conquest each
// step: step s sends captures over 2^(s-1) fresh edges carrying
// (step, id). A node accepts a capture iff it beats the best credential
// the node has seen (its own included, when it is a live candidate);
// losing candidates die. A candidate whose accepts total N-1 declares.
// Takes Θ(log N) rounds — the paper's §5 lower bound shows any
// message-optimal *asynchronous* protocol needs Ω(N/log N) time, an
// N/(log N)² separation.
#pragma once

#include "celect/sim/sync_runtime.h"

namespace celect::proto::nosod {

enum Ag85SyncMsg : std::uint16_t {
  kSCapture = 1,  // fields: {id, step}
  kSAccept = 2,   // fields: {}
  kSReject = 3,   // fields: {}
};

sim::SyncProcessFactory MakeAg85Sync();

}  // namespace celect::proto::nosod
