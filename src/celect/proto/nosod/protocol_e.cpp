#include "celect/proto/nosod/protocol_e.h"

#include "celect/proto/nosod/efg_engine.h"

namespace celect::proto::nosod {

sim::ProcessFactory MakeProtocolE(bool throttle_forwards) {
  EfgParams params;
  params.k = 1;
  params.broadcast = false;  // walk all the way to level N-1 and declare
  params.throttle_forwards = throttle_forwards;
  return MakeEfgProcess(params);
}

}  // namespace celect::proto::nosod
