#include "celect/proto/chordal/coordinator.h"

#include <memory>

#include "celect/proto/common.h"
#include "celect/topo/chordal_ring.h"
#include "celect/util/check.h"

namespace celect::proto::chordal {

namespace {

using sim::Context;
using sim::Id;
using sim::Port;
using wire::Packet;

class ChordalNode : public ElectionProcess {
 public:
  explicit ChordalNode(const sim::ProcessInit& init)
      : position_(init.address), id_(init.id), ring_(init.n) {}

  std::string DescribeState() const override {
    std::string s = "pos=" + std::to_string(position_);
    if (resolve_started_) {
      s += " resolving pending=" + std::to_string(pending_);
    }
    if (reported_) s += " reported";
    return s;
  }

  sim::ProtocolObservables Observe() const override {
    sim::ProtocolObservables obs;
    obs.monotone = {{"resolve_started", resolve_started_ ? 1 : 0},
                    {"reported", reported_ ? 1 : 0}};
    return obs;
  }

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    // Base node: wake the coordinator at position 0.
    std::uint32_t dist = ring_.ForwardDistance(position_, 0);
    if (dist == 0) {
      StartCoordinator(ctx);
    } else {
      Route(ctx, kStart, /*payload=*/0, dist);
    }
  }

  void OnPacket(Context& ctx, Port from_port, const Packet& p,
                bool /*first_contact*/) override {
    switch (p.type) {
      case kStart:
        HandleRouted(ctx, kStart, 0,
                     static_cast<std::uint32_t>(p.field(0)));
        break;
      case kQuery:
        HandleQuery(ctx, from_port,
                    static_cast<std::uint32_t>(p.field(0)));
        break;
      case kReport:
        HandleReport(ctx, p.field(0), p.field(1));
        break;
      case kAnnounce:
        HandleRouted(ctx, kAnnounce, p.field(0),
                     static_cast<std::uint32_t>(p.field(1)));
        break;
      default:
        CELECT_CHECK(false) << "chordal: unknown message type " << p.type;
    }
  }

 private:
  // Sends a routed message `remaining` positions forward via the
  // largest-chord-first decomposition. Only chord ports are used.
  void Route(Context& ctx, std::uint16_t type, Id payload,
             std::uint32_t remaining) {
    CELECT_DCHECK(remaining >= 1);
    std::uint32_t hop = ring_.FirstHop(remaining);
    // Per-hop accounting — record through the interned ref.
    if (hops_ref_.slot == sim::CounterRef::kUnresolved) {
      hops_ref_ = ctx.ResolveCounter(kCounterRoutingHops);
    }
    ctx.AddCounter(hops_ref_, 1);
    if (type == kStart) {
      ctx.Send(hop, Packet{kStart,
                           {static_cast<std::int64_t>(remaining - hop)}});
    } else {
      ctx.Send(hop, Packet{kAnnounce,
                           {payload,
                            static_cast<std::int64_t>(remaining - hop)}});
    }
  }

  void HandleRouted(Context& ctx, std::uint16_t type, Id payload,
                    std::uint32_t remaining) {
    if (remaining > 0) {
      Route(ctx, type, payload, remaining);
      return;
    }
    if (type == kStart) {
      StartCoordinator(ctx);
    } else {
      // We are the elected node.
      CELECT_CHECK(payload == id_)
          << "announce for " << payload << " arrived at " << id_;
      ctx.DeclareLeader();
    }
  }

  // Resolve the block [position, position + 2^level): query the head of
  // each sub-block in parallel. Every node is queried at most once
  // globally, so no re-entrancy handling is needed.
  void BeginResolve(Context& ctx, std::uint32_t level) {
    CELECT_CHECK(!resolve_started_) << "node queried twice";
    resolve_started_ = true;
    ctx.BeginPhase(obs::PhaseId::kResolve,
                   static_cast<std::int64_t>(level));
    pending_ = level;
    best_id_ = is_base() ? id_ : -1;
    best_pos_ = is_base() ? static_cast<std::int64_t>(position_) : -1;
    for (std::uint32_t s = 0; s < level; ++s) {
      ctx.Send(static_cast<Port>(1u << s),
               Packet{kQuery, {static_cast<std::int64_t>(s)}});
    }
    if (pending_ == 0) Complete(ctx);
  }

  void HandleQuery(Context& ctx, Port from_port, std::uint32_t level) {
    report_port_ = from_port;
    is_root_ = false;
    BeginResolve(ctx, level);
  }

  void HandleReport(Context& ctx, Id best_id, std::int64_t best_pos) {
    CELECT_CHECK(pending_ > 0) << "unexpected report";
    if (best_id > best_id_) {
      best_id_ = best_id;
      best_pos_ = best_pos;
    }
    if (--pending_ == 0) Complete(ctx);
  }

  void Complete(Context& ctx) {
    ctx.EndPhase(obs::PhaseId::kResolve);
    if (!is_root_) {
      reported_ = true;
      ctx.Send(report_port_, Packet{kReport, {best_id_, best_pos_}});
      return;
    }
    // Coordinator: announce the winner. A start is only sent by a base
    // node, so at least one candidate exists.
    CELECT_CHECK(best_id_ >= 0) << "no base node found by the sweep";
    std::uint32_t target = static_cast<std::uint32_t>(best_pos_);
    if (target == position_) {
      ctx.DeclareLeader();
      return;
    }
    Route(ctx, kAnnounce, best_id_,
          ring_.ForwardDistance(position_, target));
  }

  void StartCoordinator(Context& ctx) {
    if (resolve_started_) return;  // later starts lost the race
    is_root_ = true;
    BeginResolve(ctx, ring_.chords_per_node());
  }

  const std::uint32_t position_;
  const Id id_;
  topo::ChordalRing ring_;
  // Interned per-hop counter handle, resolved on the first routed hop.
  sim::CounterRef hops_ref_{kCounterRoutingHops,
                            sim::CounterRef::kUnresolved};

  bool resolve_started_ = false;
  bool is_root_ = false;
  bool reported_ = false;
  Port report_port_ = sim::kInvalidPort;
  std::uint32_t pending_ = 0;
  Id best_id_ = -1;
  std::int64_t best_pos_ = -1;
};

}  // namespace

sim::ProcessFactory MakeChordalCoordinator() {
  return [](const sim::ProcessInit& init) {
    return std::make_unique<ChordalNode>(init);
  };
}

}  // namespace celect::proto::chordal
