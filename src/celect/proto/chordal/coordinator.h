// Chordal-ring coordinator election — the [ALSZ89] data point from the
// paper's introduction: O(log N) labelled chords per node suffice for
// O(N)-message election, and with a binomial-tree sweep the time is
// O(log N).
//
// Model: a position-labelled chordal ring (each node knows its ring
// position and has the forward chords p → p + 2^s; positions give the
// network a distinguished origin, position 0). This is a slightly
// stronger assumption than sense of direction alone — documented in
// DESIGN.md — and lets the election be driven by a deterministic
// coordinator tree rather than a capture race:
//
//  1. A base node routes a `start` to position 0 over at most log N
//     chord hops (binary decomposition of the distance).
//  2. The origin — acting as coordinator, whether or not it is a base
//     node — resolves the ring with the binomial-tree decomposition
//     [0, N) = {0} ∪ [2^s, 2^(s+1)) for s = 0..log N−1: it queries the
//     head of each block *in parallel* with `query(s)`, and each head
//     recursively does the same for its block. Every node is queried
//     exactly once (N−1 queries, N−1 reports), and the parallel
//     expansion makes the sweep O(log N) deep.
//  3. Reports carry the best base-node identity in each block; the
//     origin routes an `announce` to the overall maximum, which declares
//     itself leader.
//
// Messages: N−1 queries + N−1 reports + O(log N) per start/announce —
// O(N + r log N) for r base nodes. Time: O(log N) after the first start
// reaches the origin. Late-waking base nodes whose blocks were already
// resolved are not candidates (their spontaneous wakeup lost the race);
// exactly one leader is announced regardless.
#pragma once

#include <cstdint>

#include "celect/sim/process.h"

namespace celect::proto::chordal {

enum ChordalMsg : std::uint16_t {
  kStart = 1,     // fields: {remaining_distance} — routed to position 0
  kQuery = 2,     // fields: {level} — resolve your block [you, you+2^level)
  kReport = 3,    // fields: {best_id, best_position} (-1, -1 if none)
  kAnnounce = 4,  // fields: {leader_id, remaining_distance} — routed
};

// Requires N = 2^r and the sense-of-direction port mapper (ports are
// ring distances). Sends only on chordal ports.
sim::ProcessFactory MakeChordalCoordinator();

// Counter: total chord hops spent routing starts and announces.
inline constexpr char kCounterRoutingHops[] = "chordal.routing_hops";

}  // namespace celect::proto::chordal
