// Shared protocol building blocks.
//
// Wakeup discipline (paper §1): an arbitrary subset of nodes wakes up
// spontaneously — the base nodes. A passive node that first learns of the
// protocol through a message wakes up too, but is *not allowed to become
// a base node*; its later spontaneous-wakeup event (if any) is a no-op.
// ElectionProcess centralises that rule so every protocol gets it right.
#pragma once

#include <string>

#include "celect/sim/process.h"
#include "celect/sim/types.h"

namespace celect::proto {

// Lexicographic (level, id) credential used by every capture contest in
// the paper: (level_j, j) < (l, i) means the sender wins.
struct Credential {
  std::int64_t level = 0;
  sim::Id id = 0;
  friend auto operator<=>(const Credential&, const Credential&) = default;
  friend bool operator==(const Credential&, const Credential&) = default;
};

std::string ToString(const Credential& c);

class ElectionProcess : public sim::Process {
 public:
  void OnWakeup(sim::Context& ctx) final;
  void OnMessage(sim::Context& ctx, sim::Port from_port,
                 const wire::Packet& p) final;
  void OnTimer(sim::Context& ctx, sim::TimerId timer) final;
  void OnPeerSuspected(sim::Context& ctx, sim::Port port) final;

  bool awake() const { return awake_; }
  // True iff this node woke spontaneously before hearing any message —
  // i.e. it participates as a base node.
  bool is_base() const { return base_; }

 protected:
  // Spontaneous wakeup of a base node.
  virtual void OnSpontaneousWakeup(sim::Context& ctx) = 0;
  // A packet arrived; first_contact is true when this message is what
  // woke the node (it is then awake but barred from candidacy).
  virtual void OnPacket(sim::Context& ctx, sim::Port from_port,
                        const wire::Packet& p, bool first_contact) = 0;
  // A timer armed via ctx.SetTimer fired. Timers can only have been armed
  // after the node was awake, so no wakeup bookkeeping is needed. Default:
  // ignore (the paper's protocols are asynchronous and arm no timers).
  virtual void OnTimerFired(sim::Context& ctx, sim::TimerId timer);
  // The transport suspects the node behind `port` crashed. Delivered
  // only while awake — a sleeping node has sent nothing, so it can have
  // no in-flight traffic to time out, and a suspicion hint must not act
  // as a wakeup (only protocol messages may wake a node). Default:
  // ignore, matching the crash-free protocols.
  virtual void OnSuspicion(sim::Context& ctx, sim::Port port);

 private:
  bool awake_ = false;
  bool base_ = false;
};

}  // namespace celect::proto
