#include "celect/proto/common.h"

#include <sstream>

namespace celect::proto {

std::string ToString(const Credential& c) {
  std::ostringstream os;
  os << "(" << c.level << ", " << c.id << ")";
  return os.str();
}

void ElectionProcess::OnWakeup(sim::Context& ctx) {
  if (awake_) return;  // already awakened by a message — barred from
                       // candidacy, the spontaneous event is a no-op
  awake_ = true;
  base_ = true;
  OnSpontaneousWakeup(ctx);
}

void ElectionProcess::OnMessage(sim::Context& ctx, sim::Port from_port,
                                const wire::Packet& p) {
  bool first_contact = !awake_;
  awake_ = true;
  OnPacket(ctx, from_port, p, first_contact);
}

void ElectionProcess::OnTimer(sim::Context& ctx, sim::TimerId timer) {
  OnTimerFired(ctx, timer);
}

void ElectionProcess::OnTimerFired(sim::Context& ctx, sim::TimerId timer) {
  (void)ctx;
  (void)timer;
}

void ElectionProcess::OnPeerSuspected(sim::Context& ctx, sim::Port port) {
  if (!awake_) return;  // suspicion is not a wakeup
  OnSuspicion(ctx, port);
}

void ElectionProcess::OnSuspicion(sim::Context& ctx, sim::Port port) {
  (void)ctx;
  (void)port;
}

}  // namespace celect::proto
