#include "celect/adversary/lower_bound.h"

#include <sstream>

#include "celect/adversary/adaptive_adversary.h"
#include "celect/sim/delay_model.h"
#include "celect/sim/network.h"
#include "celect/sim/wakeup_policy.h"
#include "celect/util/check.h"

namespace celect::adversary {

double TheoremFloor(std::uint32_t n, double d) {
  CELECT_CHECK(d > 0);
  return static_cast<double>(n) / (16.0 * d);
}

LowerBoundResult RunLowerBoundExperiment(const sim::ProcessFactory& factory,
                                         std::uint32_t n, std::uint32_t k) {
  CELECT_CHECK(n >= 4 && k >= 1);
  auto mapper = MakeUpFirstMapper(n, k);
  AdaptiveAdversaryMapper* mapper_view = mapper.get();

  sim::NetworkConfig config;
  config.n = n;
  config.identities = sim::IdentitiesAscending(n);
  config.mapper = std::move(mapper);
  config.delays = sim::MakeUnitDelay();
  config.wakeup = sim::WakeAllAtZero(n);

  sim::Runtime runtime(std::move(config), factory);
  sim::RunResult run = runtime.Run();

  LowerBoundResult r;
  r.n = n;
  r.k = k;
  r.messages = run.total_messages;
  r.message_budget = static_cast<double>(n) * k / 2.0;
  r.elapsed_time = run.leader_time.ToDouble();
  r.theoretical_floor = TheoremFloor(n, k / 2.0);
  r.max_bound_distance = mapper_view->MaxBoundDistance();
  double degree_sum = 0;
  for (sim::NodeId i = 0; i < n; ++i) {
    degree_sum += mapper_view->BoundDegree(i);
  }
  r.mean_degree = degree_sum / n;
  r.leader_elected = run.leader_declarations == 1;
  return r;
}

std::string ToString(const LowerBoundResult& r) {
  std::ostringstream os;
  os << "N=" << r.n << " k=" << r.k << " messages=" << r.messages
     << " (budget Nd=" << r.message_budget << ")"
     << " time=" << r.elapsed_time << " (floor N/16d="
     << r.theoretical_floor << ")"
     << " mean_degree=" << r.mean_degree
     << " max_distance=" << r.max_bound_distance
     << (r.leader_elected ? "" : " [NO LEADER]");
  return os.str();
}

}  // namespace celect::adversary
