// Empirical driver for the §5 lower bound (Theorem 5.1): any
// comparison-based election protocol on an asynchronous complete network
// that sends fewer than N·d messages needs at least N/16d time.
//
// The theorem quantifies over all protocols; the experiment runs *our*
// message-optimal protocols against the constructive adversary —
// simultaneous wakeups, Up-first adaptive port binding with radius
// k = 2d, and worst-case (unit) link delays — and reports achieved time
// against the theoretical floor N/16d, plus locality diagnostics showing
// the adversary keeps communication confined the way the proof's
// order-equivalence argument requires.
#pragma once

#include <cstdint>
#include <string>

#include "celect/sim/process.h"
#include "celect/sim/runtime.h"

namespace celect::adversary {

struct LowerBoundResult {
  std::uint32_t n = 0;
  std::uint32_t k = 0;            // adversary radius (2d)
  std::uint64_t messages = 0;
  double message_budget = 0;      // N·d = N·k/2
  double elapsed_time = 0;        // leader declaration time (units)
  double theoretical_floor = 0;   // N/16d
  double max_bound_distance = 0;  // farthest identity pair that spoke
  double mean_degree = 0;         // mean distinct neighbours per node
  bool leader_elected = false;
};

// Runs `factory` (a no-sense-of-direction protocol) on N nodes under the
// §5 adversary with radius k, all nodes waking at time zero and unit
// delays. Identities ascend with addresses, matching the proof's
// {1..N} labelling.
LowerBoundResult RunLowerBoundExperiment(const sim::ProcessFactory& factory,
                                         std::uint32_t n, std::uint32_t k);

// The theorem's time floor for N nodes and per-node message budget d.
double TheoremFloor(std::uint32_t n, double d);

std::string ToString(const LowerBoundResult& r);

}  // namespace celect::adversary
