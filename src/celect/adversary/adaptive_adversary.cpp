#include "celect/adversary/adaptive_adversary.h"

#include <algorithm>
#include <cstdlib>

#include "celect/util/check.h"

namespace celect::adversary {

using sim::NodeId;
using sim::Port;

NeighborChooser UpFirstStrategy(std::uint32_t n, std::uint32_t k) {
  CELECT_CHECK(k >= 1);
  return [n, k](NodeId node,
                const std::function<bool(NodeId)>& unbound) -> NodeId {
    // Up_i: i+1 .. i+k (no wraparound — §5 uses the linear identity
    // order).
    for (std::uint32_t d = 1; d <= k; ++d) {
      std::uint64_t v = static_cast<std::uint64_t>(node) + d;
      if (v < n && unbound(static_cast<NodeId>(v))) {
        return static_cast<NodeId>(v);
      }
    }
    // Down_i: i-1 .. i-k.
    for (std::uint32_t d = 1; d <= k; ++d) {
      if (node >= d && unbound(node - d)) return node - d;
    }
    // Fallback: smallest unbound identity.
    for (NodeId v = 0; v < n; ++v) {
      if (v != node && unbound(v)) return v;
    }
    CELECT_CHECK(false) << "no unbound neighbour left at node " << node;
    std::abort();
  };
}

NeighborChooser RandomStrategy(std::uint32_t n, std::uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  return [n, rng](NodeId node,
                  const std::function<bool(NodeId)>& unbound) -> NodeId {
    // Rejection-sample first (fast while the graph is sparse), then scan.
    for (int tries = 0; tries < 32; ++tries) {
      NodeId v = static_cast<NodeId>(rng->NextBelow(n));
      if (v != node && unbound(v)) return v;
    }
    std::vector<NodeId> avail;
    for (NodeId v = 0; v < n; ++v) {
      if (v != node && unbound(v)) avail.push_back(v);
    }
    CELECT_CHECK(!avail.empty());
    return avail[rng->NextBelow(avail.size())];
  };
}

NeighborChooser FunnelStrategy(std::uint32_t n, sim::NodeId victim) {
  CELECT_CHECK(victim < n);
  return [n, victim](NodeId node,
                     const std::function<bool(NodeId)>& unbound) -> NodeId {
    if (node != victim && unbound(victim)) return victim;
    for (NodeId v = 0; v < n; ++v) {
      if (v != node && unbound(v)) return v;
    }
    CELECT_CHECK(false) << "no unbound neighbour left at node " << node;
    std::abort();
  };
}

AdaptiveAdversaryMapper::AdaptiveAdversaryMapper(std::uint32_t n,
                                                 NeighborChooser chooser)
    : n_(n), chooser_(std::move(chooser)), state_(n) {
  CELECT_CHECK(n >= 2);
}

Port AdaptiveAdversaryMapper::Bind(NodeId node, NodeId neighbor) {
  NodeState& s = state_[node];
  CELECT_DCHECK(!s.neighbor_to_port.count(neighbor));
  Port port = s.next_port++;
  CELECT_CHECK(port <= n_ - 1) << "node " << node << " out of ports";
  s.port_to_neighbor[port] = neighbor;
  s.neighbor_to_port[neighbor] = port;
  std::uint32_t dist = node > neighbor ? node - neighbor : neighbor - node;
  max_distance_ = std::max(max_distance_, dist);
  return port;
}

NodeId AdaptiveAdversaryMapper::Resolve(NodeId node, Port port) {
  CELECT_CHECK(node < n_ && port >= 1 && port <= n_ - 1);
  NodeState& s = state_[node];
  auto it = s.port_to_neighbor.find(port);
  if (it != s.port_to_neighbor.end()) return it->second;
  // A send on a never-bound port: the adversary picks where it goes.
  // Ports are handed out in order, so an unbound port must be the next
  // to allocate.
  CELECT_CHECK(port == s.next_port)
      << "node " << node << " sent on unbound port " << port
      << " (next allocatable is " << s.next_port << ")";
  NodeId neighbor = chooser_(
      node, [&s](NodeId v) { return !s.neighbor_to_port.count(v); });
  CELECT_DCHECK(neighbor < n_ && neighbor != node);
  Bind(node, neighbor);
  return neighbor;
}

Port AdaptiveAdversaryMapper::PortToward(NodeId node, NodeId neighbor) {
  CELECT_CHECK(node < n_ && neighbor < n_ && node != neighbor);
  NodeState& s = state_[node];
  auto it = s.neighbor_to_port.find(neighbor);
  if (it != s.neighbor_to_port.end()) return it->second;
  return Bind(node, neighbor);
}

std::optional<Port> AdaptiveAdversaryMapper::FreshPort(NodeId node) {
  CELECT_CHECK(node < n_);
  const NodeState& s = state_[node];
  // Fresh = untraversed in either direction. Arrivals bind and traverse
  // their port, so every never-allocated port is fresh, and those are
  // exactly where the adversary still has freedom.
  if (s.next_port <= n_ - 1) return s.next_port;
  return std::nullopt;
}

void AdaptiveAdversaryMapper::MarkTraversed(NodeId node, Port port) {
  CELECT_DCHECK(node < n_);
  state_[node].traversed.insert(port);
}

bool AdaptiveAdversaryMapper::IsTraversed(NodeId node, Port port) const {
  CELECT_DCHECK(node < n_);
  return state_[node].traversed.count(port) != 0;
}

std::uint32_t AdaptiveAdversaryMapper::BoundDegree(NodeId node) const {
  CELECT_CHECK(node < n_);
  return static_cast<std::uint32_t>(
      state_[node].port_to_neighbor.size());
}

std::unique_ptr<AdaptiveAdversaryMapper> MakeUpFirstMapper(std::uint32_t n,
                                                           std::uint32_t k) {
  return std::make_unique<AdaptiveAdversaryMapper>(n, UpFirstStrategy(n, k));
}

}  // namespace celect::adversary
