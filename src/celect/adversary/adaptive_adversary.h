// The §5 lower-bound adversary's port binding.
//
// Without sense of direction a node cannot distinguish its untraversed
// edges, so the adversary may decide — lazily, at first use — which
// neighbour each fresh edge leads to. The paper's construction
// (Theorem 5.1) has the adversary serve edges from Up_i = {i+1, ..., i+k}
// first, then Down_i = {i-1, ..., i-k}, keeping all nodes in the middle
// of the identity line in order-equivalent states: any protocol sending
// fewer than Nd = Nk/2 messages stays confined to local neighbourhoods,
// and stretched deliveries then force Ω(N/16d) running time.
//
// AdaptiveAdversaryMapper implements exactly that lazy binding; a
// pluggable strategy selects the neighbour, with UpFirst as the paper's
// choice and RandomStrategy as a control.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "celect/sim/port_mapper.h"
#include "celect/sim/types.h"
#include "celect/util/rng.h"

namespace celect::adversary {

// Given the node and a predicate telling which neighbours are still
// unbound at it, returns the neighbour the adversary routes the next
// fresh edge to.
using NeighborChooser = std::function<sim::NodeId(
    sim::NodeId node, const std::function<bool(sim::NodeId)>& unbound)>;

// The paper's strategy: Up_i first (ascending), then Down_i
// (descending), then everything else in ascending order. k is the
// neighbourhood radius (k = 2d for a message budget of Nd).
NeighborChooser UpFirstStrategy(std::uint32_t n, std::uint32_t k);

// Control strategy: uniformly random unbound neighbour.
NeighborChooser RandomStrategy(std::uint32_t n, std::uint64_t seed);

// Funnel strategy: every node's first fresh edge leads to `victim`
// (then ascending fallback). This concentrates all first captures on one
// node, whose owner then receives a pile of forwarded contests on a
// single link — the §4 congestion pathology that raw AG85 forwarding
// suffers and the Ɛ throttle fixes.
NeighborChooser FunnelStrategy(std::uint32_t n, sim::NodeId victim);

class AdaptiveAdversaryMapper : public sim::PortMapper {
 public:
  AdaptiveAdversaryMapper(std::uint32_t n, NeighborChooser chooser);

  std::uint32_t n() const override { return n_; }
  bool HasSenseOfDirection() const override { return false; }
  sim::NodeId Resolve(sim::NodeId node, sim::Port port) override;
  sim::Port PortToward(sim::NodeId node, sim::NodeId neighbor) override;
  std::optional<sim::Port> FreshPort(sim::NodeId node) override;
  void MarkTraversed(sim::NodeId node, sim::Port port) override;
  bool IsTraversed(sim::NodeId node, sim::Port port) const override;

  // Diagnostics for the lower-bound experiment: how many distinct
  // neighbours each node actually communicated with, and the maximum
  // identity distance |i - j| over all bound edges.
  std::uint32_t BoundDegree(sim::NodeId node) const;
  std::uint32_t MaxBoundDistance() const { return max_distance_; }

 private:
  struct NodeState {
    std::unordered_map<sim::Port, sim::NodeId> port_to_neighbor;
    std::unordered_map<sim::NodeId, sim::Port> neighbor_to_port;
    sim::Port next_port = 1;  // smallest never-bound port number
    std::unordered_set<sim::Port> traversed;
  };

  sim::Port Bind(sim::NodeId node, sim::NodeId neighbor);

  std::uint32_t n_;
  NeighborChooser chooser_;
  std::vector<NodeState> state_;
  std::uint32_t max_distance_ = 0;
};

std::unique_ptr<AdaptiveAdversaryMapper> MakeUpFirstMapper(std::uint32_t n,
                                                           std::uint32_t k);

}  // namespace celect::adversary
