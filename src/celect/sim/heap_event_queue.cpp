#include "celect/sim/heap_event_queue.h"

#include <algorithm>
#include <utility>

#include "celect/util/check.h"

namespace celect::sim {

// GCC 12's -Wmaybe-uninitialized misfires on std::push_heap/pop_heap
// here: the algorithms hold a moved-to `__value` temporary, and the
// optimizer cannot prove the vector members inside Event's variant
// alternative were initialized before the move-assign writes them back
// (GCC PR 105562 family). Every element the algorithms touch is a fully
// constructed Event, so the warning is spurious.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

std::uint64_t HeapEventQueue::Push(Time at, EventBody body) {
  std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{at, seq, std::move(body)});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  return seq;
}

std::optional<Event> HeapEventQueue::Pop() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  Event e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

Time HeapEventQueue::PeekTime() const {
  CELECT_CHECK(!heap_.empty());
  return heap_.front().at;
}

void HeapEventQueue::SiftFromHole(std::size_t i) {
  const EventAfter after{};
  // Sift up while the element is earlier than its parent.
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!after(heap_[parent], heap_[i])) break;
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
  // Then down while a child is earlier than the element.
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = i;
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    if (l < n && after(heap_[best], heap_[l])) best = l;
    if (r < n && after(heap_[best], heap_[r])) best = r;
    if (best == i) return;
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

Event HeapEventQueue::Take(std::uint64_t seq) {
  auto it = std::find_if(heap_.begin(), heap_.end(),
                         [seq](const Event& e) { return e.seq == seq; });
  CELECT_CHECK(it != heap_.end()) << "Take: no pending event with seq "
                                  << seq;
  Event e = std::move(*it);
  const std::size_t hole = static_cast<std::size_t>(it - heap_.begin());
  *it = std::move(heap_.back());
  heap_.pop_back();
  if (hole < heap_.size()) SiftFromHole(hole);
  return e;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace celect::sim
