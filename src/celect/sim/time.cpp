#include "celect/sim/time.h"

#include <cmath>
#include <sstream>

#include "celect/util/check.h"

namespace celect::sim {

Time Time::FromDouble(double units) {
  CELECT_CHECK(std::isfinite(units)) << "time must be finite";
  double ticks = std::round(units * kTicksPerUnit);
  if (units > 0 && ticks < 1) ticks = 1;  // keep positive durations positive
  return Time(static_cast<std::int64_t>(ticks));
}

std::string Time::ToString() const {
  std::ostringstream os;
  os << ToDouble();
  return os.str();
}

}  // namespace celect::sim
