// The discrete-event runtime for asynchronous complete networks.
//
// Drives the event queue to quiescence: wakeups fire OnWakeup on base
// nodes; every Context::Send admits the packet through the LinkTable
// (FIFO + delay-model arrival) and schedules a DeliveryEvent; deliveries
// fire OnMessage; timers armed via Context::SetTimer fire OnTimer. The
// run ends when the queue drains (protocols here are finite) or the
// event budget is exceeded (treated as a protocol bug).
//
// Fault injection: NetworkConfig::faults schedules mid-run crashes
// (CrashEvents plus send/receive-triggered crashes checked inline) and
// per-message link loss/duplication/reordering. A crashed node stops
// dispatching — queued deliveries, wakeups, and timers addressed to it
// are swallowed and accounted as drops.
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>

#include "celect/sim/event_queue.h"
#include "celect/sim/fault.h"
#include "celect/sim/link.h"
#include "celect/sim/metrics.h"
#include "celect/sim/network.h"
#include "celect/sim/process.h"
#include "celect/sim/trace.h"

namespace celect::sim {

struct RuntimeOptions {
  // Hard event budget; exceeding it aborts the run (Run() CHECK-fails).
  std::uint64_t max_events = 500'000'000;
  bool enable_trace = false;
  // When true, every packet is encoded and re-decoded through the wire
  // codec (full serialisation validation). Off by default: byte sizes
  // are still accounted via EncodedSize.
  bool serialize_packets = false;
  // Stop as soon as a leader declares (termination time is then the
  // declaration time; message totals exclude in-flight cleanup).
  bool stop_on_leader = false;
};

struct RunResult {
  std::optional<Id> leader_id;
  std::optional<NodeId> leader_node;
  std::uint32_t leader_declarations = 0;
  Time leader_time;   // first declaration
  Time quiesce_time;  // when the queue drained
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t max_link_load = 0;
  std::uint64_t max_link_inflight = 0;
  // Fault-injection accounting (all zero on fault-free runs).
  std::uint64_t faults_injected = 0;      // mid-run crashes that fired
  std::uint64_t messages_lost = 0;        // injected link loss
  std::uint64_t messages_duplicated = 0;  // injected duplicates
  std::uint64_t messages_reordered = 0;   // FIFO-overtaking deliveries
  std::uint64_t timers_set = 0;
  std::uint64_t timers_fired = 0;
  std::map<std::uint16_t, std::uint64_t> messages_by_type;
  std::map<std::string, std::int64_t> counters;
};

class Runtime {
 public:
  Runtime(NetworkConfig config, const ProcessFactory& factory,
          RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs to quiescence and returns the aggregated result. Call once.
  RunResult Run();

  // Introspection (valid after Run).
  const Metrics& metrics() const { return metrics_; }
  const Trace& trace() const { return trace_; }
  const NetworkConfig& config() const { return config_; }
  // failed[address] after the run: initial failures plus every mid-run
  // crash that fired.
  const std::vector<bool>& failed() const { return failed_; }

  // The process at `address` — tests use this to assert protocol state.
  Process& process(NodeId address);

 private:
  class ContextImpl;
  friend class ContextImpl;

  void Dispatch(const Event& e);
  void SendFrom(NodeId from, Port port, wire::Packet packet);
  TimerId ScheduleTimer(NodeId node, Time delay);
  void CancelTimer(TimerId timer);
  void MarkCrashed(NodeId node);

  NetworkConfig config_;
  RuntimeOptions options_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Id> ids_;
  EventQueue queue_;
  LinkTable links_;
  Metrics metrics_;
  Trace trace_;
  Time now_ = Time::Zero();
  bool ran_ = false;
  bool stop_requested_ = false;

  // Failure state: seeded from config_.failed, extended by mid-run
  // crashes. Never shrinks.
  std::vector<bool> failed_;
  std::unique_ptr<FaultInjector> injector_;

  // Live timers; a fired or cancelled timer leaves the set, so stale
  // TimerEvents are discarded at dispatch.
  std::unordered_set<TimerId> active_timers_;
  TimerId next_timer_ = kInvalidTimer;
};

}  // namespace celect::sim
