// The discrete-event runtime for asynchronous complete networks.
//
// Drives the event queue to quiescence: wakeups fire OnWakeup on base
// nodes; every Context::Send admits the packet through the LinkTable
// (FIFO + delay-model arrival) and schedules a DeliveryEvent; deliveries
// fire OnMessage; timers armed via Context::SetTimer fire OnTimer. The
// run ends when the queue drains (protocols here are finite) or the
// event budget is exceeded (treated as a protocol bug).
//
// Fault injection: NetworkConfig::faults schedules mid-run crashes
// (CrashEvents plus send/receive-triggered crashes checked inline) and
// per-message link loss/duplication/reordering. A crashed node stops
// dispatching — queued deliveries, wakeups, and timers addressed to it
// are swallowed and accounted as drops.
//
// Churn: a FaultPlan's rejoins schedule RejoinEvents that revive crashed
// nodes. Revival rebuilds the node from the process factory (fresh
// volatile state — there is no stable storage in the model) and calls
// Process::OnRejoin on the new instance; the node then participates
// normally. Timers and phase spans from the node's previous life die
// with the crash and never leak into the new incarnation.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "celect/obs/phase.h"
#include "celect/obs/telemetry.h"
#include "celect/sim/event_queue.h"
#include "celect/sim/fault.h"
#include "celect/sim/heap_event_queue.h"
#include "celect/sim/hooks.h"
#include "celect/sim/link.h"
#include "celect/sim/metrics.h"
#include "celect/sim/network.h"
#include "celect/sim/process.h"
#include "celect/sim/trace.h"

namespace celect::sim {

struct RuntimeOptions {
  // Hard event budget; exceeding it aborts the run (Run() CHECK-fails).
  std::uint64_t max_events = 500'000'000;
  bool enable_trace = false;
  // Trace record cap; past it records are dropped, Trace::truncated()
  // trips, and the run surfaces counters["sim.trace_truncated"].
  std::size_t trace_cap = 10'000'000;
  // Streaming histograms + time-series samplers (obs/telemetry.h):
  // delivery latency, per-node queue depth, capture-span width, global
  // in-flight series. Off by default — zero work on the hot path.
  bool enable_telemetry = false;
  // When true, every packet is encoded and re-decoded through the wire
  // codec (full serialisation validation). Off by default: byte sizes
  // are still accounted via EncodedSize.
  bool serialize_packets = false;
  // Stop as soon as a leader declares (termination time is then the
  // declaration time; message totals exclude in-flight cleanup).
  bool stop_on_leader = false;
  // Invariant observer, called after every dispatched event and at
  // quiescence. Not owned; may be null.
  RunObserver* observer = nullptr;
  // Controlled scheduling: when set, the runtime ignores time order and
  // dispatches whichever enabled event the controller picks (per-link
  // FIFO still holds; inert events — stale timers, traffic to dead
  // nodes — are drained eagerly and are not choice points). Not owned.
  ScheduleController* controller = nullptr;
  // Drive the run from the original binary-heap queue instead of the
  // ladder. Pop order is identical, so results must match bit for bit —
  // the equivalence tests diff the two, and a mismatch bisects queue
  // bugs. Slower; off outside tests.
  bool use_reference_queue = false;
};

struct RunResult {
  std::optional<Id> leader_id;
  std::optional<NodeId> leader_node;
  std::uint32_t leader_declarations = 0;
  Time leader_time;   // first declaration
  Time quiesce_time;  // when the queue drained
  std::uint64_t total_messages = 0;
  std::uint64_t total_bytes = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t max_link_load = 0;
  std::uint64_t max_link_inflight = 0;
  // Fault-injection accounting (all zero on fault-free runs).
  std::uint64_t faults_injected = 0;      // mid-run crashes that fired
  std::uint64_t messages_lost = 0;        // injected link loss
  std::uint64_t messages_duplicated = 0;  // injected duplicates
  std::uint64_t messages_reordered = 0;   // FIFO-overtaking deliveries
  std::uint64_t timers_set = 0;
  std::uint64_t timers_fired = 0;
  // Invariant-registry tally (zero unless an observer recorded any).
  std::uint64_t invariant_violations = 0;
  // Host wall-clock spent inside Run() and the resulting event
  // throughput. Non-deterministic (machine/load dependent): excluded
  // from FingerprintResult and from byte-identity comparisons; reported
  // so bench sweeps can track simulator performance.
  std::uint64_t wall_ns = 0;
  double events_per_sec = 0.0;
  // True when a ScheduleController cut the run short (the queue did not
  // drain; quiescence checks were skipped).
  bool aborted_by_controller = false;
  std::map<std::uint16_t, std::uint64_t> messages_by_type;
  std::map<std::string, std::int64_t> counters;
  // Per-phase message/time table keyed by obs::PhaseKey ("capture1",
  // "doubling.3", ...). Populated from Context::BeginPhase/EndPhase
  // spans; empty for protocols that mark no phases. Spans still open at
  // quiescence are closed there (their duration runs to quiesce_time).
  std::map<std::string, obs::PhaseAgg> phases;
  // Telemetry bundle; Empty() unless RuntimeOptions::enable_telemetry.
  obs::Telemetry telemetry;
};

class Runtime {
 public:
  Runtime(NetworkConfig config, const ProcessFactory& factory,
          RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs to quiescence and returns the aggregated result. Call once.
  RunResult Run();

  // Introspection (valid after Run).
  const Metrics& metrics() const { return metrics_; }
  const Trace& trace() const { return trace_; }
  const NetworkConfig& config() const { return config_; }
  // failed[address] after the run: initial failures plus every mid-run
  // crash that fired, minus nodes revived by a later rejoin.
  const std::vector<bool>& failed() const { return failed_; }

  // The process at `address` — tests use this to assert protocol state.
  Process& process(NodeId address);

 private:
  class ContextImpl;
  friend class ContextImpl;

  void Dispatch(const Event& e);
  // The controlled-scheduling loop (options_.controller set).
  void RunControlled(std::uint64_t& events);
  // Enabled = pending, minus inert events, minus FIFO-blocked deliveries.
  // Inert events (stale timers, events targeting dead nodes) are
  // dispatched eagerly by DrainInert so they never become choice points.
  bool EventIsInert(const Event& e) const;
  void DrainInert(std::uint64_t& events);
  RunInspect MakeInspect();
  void NotifyObserver(const Event& e);
  void SendFrom(NodeId from, Port port, wire::Packet packet);
  TimerId ScheduleTimer(NodeId node, Time delay);
  void CancelTimer(NodeId node, TimerId timer);
  void MarkCrashed(NodeId node);
  void MarkRejoined(NodeId node);
  void BeginPhase(NodeId node, obs::PhaseId phase, std::int64_t level);
  void EndPhase(NodeId node, obs::PhaseId phase);
  // Closes one open span (aggregating its duration up to now_).
  void CloseTopPhase(NodeId node);
  // Records a trace event stamped with `node`'s Lamport clock and
  // current (top-of-stack) phase. No-op when tracing is off.
  void TraceEvent(TraceRecord::Kind kind, NodeId node, NodeId peer,
                  Port port, std::uint16_t type, std::uint64_t mid);

  NetworkConfig config_;
  RuntimeOptions options_;
  // Kept for the run so RejoinEvents can rebuild revived nodes.
  ProcessFactory factory_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Id> ids_;
  DualQueue queue_;
  LinkTable links_;
  Metrics metrics_;
  Trace trace_;
  Time now_ = Time::Zero();
  bool ran_ = false;
  bool stop_requested_ = false;
  bool aborted_by_controller_ = false;
  // DeliveryEvents currently in the queue — the in-flight leg of the
  // message-conservation ledger (sent + duplicated = delivered + dropped
  // + in flight).
  std::uint64_t deliveries_inflight_ = 0;

  // Failure state: seeded from config_.failed, extended by mid-run
  // crashes, cleared again by rejoins.
  std::vector<bool> failed_;
  std::unique_ptr<FaultInjector> injector_;
  // RejoinEvents still in the queue, per node. While one is pending,
  // traffic to the (dead) node is a real schedule choice — "dropped
  // before revival" vs "delivered after" — so it must not be drained as
  // inert under controlled scheduling.
  std::vector<std::uint32_t> pending_rejoins_;

  // Live timers (id → owner + queue ticket); a fired or cancelled timer
  // leaves the map, so stale TimerEvents are discarded at dispatch. The
  // ticket lets CancelTimer tombstone the queued event the moment it is
  // cancelled, so Size()/PeekTime() and queue-depth telemetry never
  // count it. A crash erases (and cancels) all of the owner's timers,
  // which keeps a pre-crash timer from ever firing into the fresh
  // process a rejoin installs.
  struct TimerRec {
    NodeId node;
    EventTicket ticket;
  };
  std::unordered_map<TimerId, TimerRec> active_timers_;
  TimerId next_timer_ = kInvalidTimer;

  // --- Observability (obs/) ------------------------------------------
  // Per-node Lamport clocks: ticked on send/wakeup/timer-fire; a
  // delivery joins the sender's send-time clock with max(...) + 1.
  // Always on — two array ops per event, and determinism means traces
  // can be correlated with untraced runs of the same seed.
  std::vector<std::uint64_t> lamport_;
  // Message uids, 1-based; stamped on every send (duplicates share the
  // original's uid) so trace flows pair exactly even under loss.
  std::uint64_t next_mid_ = 0;
  // Open phase spans per node (innermost last). `agg` points into
  // phase_agg_ (std::map nodes are stable).
  struct PhaseFrame {
    obs::PhaseId id;
    std::int64_t level;
    Time since;
    std::uint64_t messages;
    obs::PhaseAgg* agg;
  };
  std::vector<std::vector<PhaseFrame>> phase_stack_;
  std::map<std::pair<std::uint16_t, std::int64_t>, obs::PhaseAgg>
      phase_agg_;
  // Null unless options_.enable_telemetry.
  std::unique_ptr<obs::Telemetry> telemetry_;
  // Pending (queued, undelivered) deliveries per destination — the
  // queue-depth histogram's source. Maintained only with telemetry on.
  std::vector<std::uint32_t> pending_deliveries_;
};

}  // namespace celect::sim
