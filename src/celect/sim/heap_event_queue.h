// The original binary-heap event queue, kept as the reference
// implementation for the ladder queue's fingerprint-equivalence gate
// (RuntimeOptions::use_reference_queue, tests/test_queue_equivalence).
//
// A binary heap over a flat vector that stamps every pushed event with a
// monotone sequence number, guaranteeing a total, reproducible order even
// among events scheduled for the same instant. Pop order — (at, seq)
// ascending — is exactly the ladder queue's, so a run driven by either
// queue produces bit-identical results.
//
// Take() removes an arbitrary element for controlled scheduling; the
// original re-heapified the whole vector with make_heap (O(n)) even when
// the removed element was the tail — it now refills the hole from the
// back and sifts the one displaced element up or down in O(log n).
#pragma once

#include <optional>
#include <vector>

#include "celect/sim/event.h"
#include "celect/sim/event_queue.h"

namespace celect::sim {

class HeapEventQueue {
 public:
  // Schedules `body` at absolute time `at`. Returns the sequence number
  // assigned to the event.
  std::uint64_t Push(Time at, EventBody body);

  // Ticketed push for API parity with EventQueue. The reference heap
  // keeps no tombstone bookkeeping: Cancel is a no-op and Size() stays
  // physical (cancelled timers pop and are discarded at dispatch, which
  // is also where the ladder's accounting converges).
  EventTicket PushTicketed(Time at, EventBody body) {
    return EventTicket{Push(at, std::move(body)), 0};
  }
  void Cancel(const EventTicket&) {}

  // Pops the earliest event; nullopt when empty.
  std::optional<Event> Pop();

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }
  std::size_t Tombstones() const { return 0; }
  std::uint64_t total_pushed() const { return next_seq_; }

  // Earliest scheduled time (queue must be non-empty).
  Time PeekTime() const;

  // Pending events in unspecified (heap) order. Valid until the next
  // mutation.
  const std::vector<Event>& events() const { return heap_; }

  // Removes and returns the pending event with sequence number `seq`
  // (CHECK-fails if absent). O(n) find + O(log n) removal — controlled
  // scheduling only.
  Event Take(std::uint64_t seq);

 private:
  // Restores the heap property around index `i` after its element was
  // replaced: sifts up if it beats its parent, down otherwise.
  void SiftFromHole(std::size_t i);

  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

// The runtime's queue: the ladder by default, the reference heap when
// RuntimeOptions::use_reference_queue asks for it (equivalence tests,
// bisecting a suspected queue bug). One predictable branch per call —
// both backends produce the same (at, seq) pop order, so the choice
// never changes a run's result, only its speed.
class DualQueue {
 public:
  explicit DualQueue(bool use_reference) : use_ref_(use_reference) {}

  std::uint64_t Push(Time at, EventBody body) {
    return use_ref_ ? ref_.Push(at, std::move(body))
                    : ladder_.Push(at, std::move(body));
  }
  EventTicket PushTicketed(Time at, EventBody body) {
    return use_ref_ ? ref_.PushTicketed(at, std::move(body))
                    : ladder_.PushTicketed(at, std::move(body));
  }
  void Cancel(const EventTicket& t) {
    if (use_ref_) {
      ref_.Cancel(t);
    } else {
      ladder_.Cancel(t);
    }
  }
  std::optional<Event> Pop() { return use_ref_ ? ref_.Pop() : ladder_.Pop(); }
  bool Empty() const { return use_ref_ ? ref_.Empty() : ladder_.Empty(); }
  std::size_t Size() const { return use_ref_ ? ref_.Size() : ladder_.Size(); }
  std::size_t Tombstones() const {
    return use_ref_ ? ref_.Tombstones() : ladder_.Tombstones();
  }
  std::uint64_t total_pushed() const {
    return use_ref_ ? ref_.total_pushed() : ladder_.total_pushed();
  }
  Time PeekTime() const { return use_ref_ ? ref_.PeekTime() : ladder_.PeekTime(); }
  const std::vector<Event>& events() const {
    return use_ref_ ? ref_.events() : ladder_.events();
  }
  Event Take(std::uint64_t seq) {
    return use_ref_ ? ref_.Take(seq) : ladder_.Take(seq);
  }

 private:
  bool use_ref_;
  EventQueue ladder_;
  HeapEventQueue ref_;
};

}  // namespace celect::sim
