// Run accounting: message counts, bytes on the wire, per-type breakdown,
// leader declarations, fault-injection tallies, and protocol-specific
// counters.
//
// Protocol counters are interned: a name resolves once to a dense slot
// (InternCounter), and the per-event hot path bumps a plain array cell —
// no string hashing, no allocation. The string-keyed entry points remain
// for cold callers and intern on the fly; either path lands in the same
// cell, and counters() materialises only the cells that were actually
// touched, preserving the original map semantics (a counter exists once
// something recorded to it).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "celect/sim/time.h"
#include "celect/sim/types.h"

namespace celect::sim {

// Why a sent message never reached its process. Split so fault-injection
// runs can tell "ate by a dead node" from "injected link loss".
enum class DropCause {
  kCrashedDestination,  // destination failed initially or crashed mid-run
  kInjectedLoss,        // FaultPlan link loss
};

class Metrics {
 public:
  // The send/delivery tallies run once per simulated message — inline so
  // the hot loop pays two increments, not a call.
  void RecordSend(std::uint16_t type, std::size_t bytes) {
    ++messages_sent_;
    bytes_sent_ += bytes;
    if (type >= by_type_.size()) by_type_.resize(type + 1, 0);
    ++by_type_[type];
  }
  void RecordDelivery() { ++messages_delivered_; }
  void RecordDrop(DropCause cause);
  void RecordDuplicate();
  void RecordReorder();
  void RecordCrash();
  void RecordRejoin();
  // Per-cause lease lifecycle tally (granted / renewed / expired /
  // revoked). Mirrors the per-cause drop counters: zero entries on
  // lease-free runs, surfaced in RunResult::counters otherwise.
  void RecordLeaseEvent(LeaseEvent event);
  void RecordTimerSet();
  void RecordTimerFired();
  void RecordTimerCancelled();
  // A DeliveryEvent's 32-bit latency field clipped at its ceiling — the
  // telemetry histogram under-reports that delivery. Surfaced as
  // counters["sim.latency_saturated"] so saturation is loud instead of
  // silent.
  void RecordLatencySaturated();
  void RecordLeader(NodeId node, Id id, Time at);
  // Per-cause invariant-violation tally (analysis/invariants.h kinds,
  // e.g. "multiple_leaders"). Mirrors the per-cause drop counters: zero
  // entries on clean runs, surfaced in RunResult::counters otherwise.
  void RecordInvariantViolation(const std::string& kind);
  // Host wall-clock spent inside Runtime::Run, recorded once at the end
  // of the run. Non-deterministic by nature: excluded from result
  // fingerprints, reported for throughput (events/sec) accounting only.
  void RecordWallClock(std::uint64_t ns, std::uint64_t events);

  // Resolves `name` to a dense counter slot, creating it (untouched) on
  // first sight. Stable for the lifetime of this Metrics. Call once at
  // setup; then record through the slot overloads below.
  std::uint32_t InternCounter(std::string_view name);
  void AddCounter(std::uint32_t slot, std::int64_t delta);
  void MaxCounter(std::uint32_t slot, std::int64_t value);
  // String-keyed fallbacks: intern on the fly, then record. Cold path.
  void AddCounter(std::string_view name, std::int64_t delta);
  void MaxCounter(std::string_view name, std::int64_t value);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  // Total drops, all causes.
  std::uint64_t messages_dropped() const {
    return dropped_to_crashed_ + dropped_to_loss_;
  }
  std::uint64_t dropped_to_crashed() const { return dropped_to_crashed_; }
  std::uint64_t dropped_to_loss() const { return dropped_to_loss_; }
  std::uint64_t messages_duplicated() const { return messages_duplicated_; }
  std::uint64_t messages_reordered() const { return messages_reordered_; }
  std::uint64_t crashes_injected() const { return crashes_injected_; }
  std::uint64_t rejoins() const { return rejoins_; }
  std::uint64_t leases_granted() const { return lease_events_[0]; }
  std::uint64_t leases_renewed() const { return lease_events_[1]; }
  std::uint64_t leases_expired() const { return lease_events_[2]; }
  std::uint64_t leases_revoked() const { return lease_events_[3]; }
  std::uint64_t timers_set() const { return timers_set_; }
  std::uint64_t timers_fired() const { return timers_fired_; }
  std::uint64_t timers_cancelled() const { return timers_cancelled_; }
  std::uint64_t latency_saturated() const { return latency_saturated_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  // Per-type send counts, materialised from the flat tally.
  std::map<std::uint16_t, std::uint64_t> by_type() const;
  // Touched protocol counters, materialised by name. A counter interned
  // but never recorded to does not appear — same visibility rule as the
  // original map-backed storage.
  std::map<std::string, std::int64_t> counters() const;
  std::uint64_t invariant_violations() const {
    return invariant_violations_total_;
  }
  const std::map<std::string, std::uint64_t>& invariant_violations_by_kind()
      const {
    return invariant_violations_by_kind_;
  }

  std::uint32_t leader_declarations() const { return leader_declarations_; }
  std::optional<NodeId> leader_node() const { return leader_node_; }
  std::optional<Id> leader_id() const { return leader_id_; }
  Time first_leader_time() const { return first_leader_time_; }
  std::uint64_t wall_ns() const { return wall_ns_; }
  double events_per_sec() const { return events_per_sec_; }

 private:
  struct CounterCell {
    std::string name;
    std::int64_t value = 0;
    bool touched = false;
  };

  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t dropped_to_crashed_ = 0;
  std::uint64_t dropped_to_loss_ = 0;
  std::uint64_t messages_duplicated_ = 0;
  std::uint64_t messages_reordered_ = 0;
  std::uint64_t crashes_injected_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t lease_events_[kLeaseEventCount] = {0, 0, 0, 0};
  std::uint64_t timers_set_ = 0;
  std::uint64_t timers_fired_ = 0;
  std::uint64_t timers_cancelled_ = 0;
  std::uint64_t latency_saturated_ = 0;
  std::uint64_t bytes_sent_ = 0;
  // Flat per-type send tally, grown on demand (packet types are small
  // dense enums). One indexed add per send instead of a map walk.
  std::vector<std::uint64_t> by_type_;
  // Interned protocol counters: cells indexed by slot, name→slot lookup
  // with heterogeneous find so string-keyed calls don't allocate.
  std::vector<CounterCell> counter_cells_;
  std::map<std::string, std::uint32_t, std::less<>> counter_index_;
  std::uint64_t invariant_violations_total_ = 0;
  std::map<std::string, std::uint64_t> invariant_violations_by_kind_;
  std::uint32_t leader_declarations_ = 0;
  std::optional<NodeId> leader_node_;
  std::optional<Id> leader_id_;
  Time first_leader_time_ = Time::Zero();
  std::uint64_t wall_ns_ = 0;
  double events_per_sec_ = 0.0;
};

}  // namespace celect::sim
