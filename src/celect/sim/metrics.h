// Run accounting: message counts, bytes on the wire, per-type breakdown,
// leader declarations, fault-injection tallies, and protocol-specific
// counters.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "celect/sim/time.h"
#include "celect/sim/types.h"

namespace celect::sim {

// Why a sent message never reached its process. Split so fault-injection
// runs can tell "ate by a dead node" from "injected link loss".
enum class DropCause {
  kCrashedDestination,  // destination failed initially or crashed mid-run
  kInjectedLoss,        // FaultPlan link loss
};

class Metrics {
 public:
  void RecordSend(std::uint16_t type, std::size_t bytes);
  void RecordDelivery();
  void RecordDrop(DropCause cause);
  void RecordDuplicate();
  void RecordReorder();
  void RecordCrash();
  void RecordRejoin();
  // Per-cause lease lifecycle tally (granted / renewed / expired /
  // revoked). Mirrors the per-cause drop counters: zero entries on
  // lease-free runs, surfaced in RunResult::counters otherwise.
  void RecordLeaseEvent(LeaseEvent event);
  void RecordTimerSet();
  void RecordTimerFired();
  void RecordTimerCancelled();
  void RecordLeader(NodeId node, Id id, Time at);
  // Per-cause invariant-violation tally (analysis/invariants.h kinds,
  // e.g. "multiple_leaders"). Mirrors the per-cause drop counters: zero
  // entries on clean runs, surfaced in RunResult::counters otherwise.
  void RecordInvariantViolation(const std::string& kind);
  // Host wall-clock spent inside Runtime::Run, recorded once at the end
  // of the run. Non-deterministic by nature: excluded from result
  // fingerprints, reported for throughput (events/sec) accounting only.
  void RecordWallClock(std::uint64_t ns, std::uint64_t events);
  void AddCounter(const std::string& name, std::int64_t delta);
  void MaxCounter(const std::string& name, std::int64_t value);

  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t messages_delivered() const { return messages_delivered_; }
  // Total drops, all causes.
  std::uint64_t messages_dropped() const {
    return dropped_to_crashed_ + dropped_to_loss_;
  }
  std::uint64_t dropped_to_crashed() const { return dropped_to_crashed_; }
  std::uint64_t dropped_to_loss() const { return dropped_to_loss_; }
  std::uint64_t messages_duplicated() const { return messages_duplicated_; }
  std::uint64_t messages_reordered() const { return messages_reordered_; }
  std::uint64_t crashes_injected() const { return crashes_injected_; }
  std::uint64_t rejoins() const { return rejoins_; }
  std::uint64_t leases_granted() const { return lease_events_[0]; }
  std::uint64_t leases_renewed() const { return lease_events_[1]; }
  std::uint64_t leases_expired() const { return lease_events_[2]; }
  std::uint64_t leases_revoked() const { return lease_events_[3]; }
  std::uint64_t timers_set() const { return timers_set_; }
  std::uint64_t timers_fired() const { return timers_fired_; }
  std::uint64_t timers_cancelled() const { return timers_cancelled_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  const std::map<std::uint16_t, std::uint64_t>& by_type() const {
    return by_type_;
  }
  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  std::uint64_t invariant_violations() const {
    return invariant_violations_total_;
  }
  const std::map<std::string, std::uint64_t>& invariant_violations_by_kind()
      const {
    return invariant_violations_by_kind_;
  }

  std::uint32_t leader_declarations() const { return leader_declarations_; }
  std::optional<NodeId> leader_node() const { return leader_node_; }
  std::optional<Id> leader_id() const { return leader_id_; }
  Time first_leader_time() const { return first_leader_time_; }
  std::uint64_t wall_ns() const { return wall_ns_; }
  double events_per_sec() const { return events_per_sec_; }

 private:
  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t dropped_to_crashed_ = 0;
  std::uint64_t dropped_to_loss_ = 0;
  std::uint64_t messages_duplicated_ = 0;
  std::uint64_t messages_reordered_ = 0;
  std::uint64_t crashes_injected_ = 0;
  std::uint64_t rejoins_ = 0;
  std::uint64_t lease_events_[kLeaseEventCount] = {0, 0, 0, 0};
  std::uint64_t timers_set_ = 0;
  std::uint64_t timers_fired_ = 0;
  std::uint64_t timers_cancelled_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::map<std::uint16_t, std::uint64_t> by_type_;
  std::map<std::string, std::int64_t> counters_;
  std::uint64_t invariant_violations_total_ = 0;
  std::map<std::string, std::uint64_t> invariant_violations_by_kind_;
  std::uint32_t leader_declarations_ = 0;
  std::optional<NodeId> leader_node_;
  std::optional<Id> leader_id_;
  Time first_leader_time_ = Time::Zero();
  std::uint64_t wall_ns_ = 0;
  double events_per_sec_ = 0.0;
};

}  // namespace celect::sim
