// Optional event trace for debugging and for tests that assert ordering
// properties (per-link FIFO, happens-before of protocol rounds).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "celect/sim/time.h"
#include "celect/sim/types.h"

namespace celect::sim {

struct TraceRecord {
  enum class Kind {
    kSend,
    kDeliver,
    kWakeup,
    kLeader,
    kCrash,      // node crashed mid-run (fault injection)
    kDrop,       // delivery swallowed by a crashed/failed destination
    kLoss,       // injected link loss
    kDuplicate,  // injected duplicate delivery scheduled
    kTimerSet,   // node armed a timer
    kTimerFire,  // timer fired at node
  };
  Kind kind;
  Time at;
  NodeId node;           // acting node
  NodeId peer;           // other endpoint for send/deliver
  Port port;             // local port at `node`
  std::uint16_t type;    // packet type
  std::uint64_t seq;     // global monotone sequence
};

class Trace {
 public:
  explicit Trace(bool enabled = false, std::size_t cap = 10'000'000)
      : enabled_(enabled), cap_(cap) {}

  bool enabled() const { return enabled_; }
  void Record(TraceRecord r);

  const std::vector<TraceRecord>& records() const { return records_; }
  bool truncated() const { return truncated_; }

  std::string ToString(std::size_t max_lines = 100) const;

 private:
  bool enabled_;
  std::size_t cap_;
  bool truncated_ = false;
  std::uint64_t next_seq_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace celect::sim
