// Optional event trace for debugging, for tests that assert ordering
// properties (per-link FIFO, happens-before of protocol rounds), and as
// the source for the Perfetto/Chrome trace export (obs/trace_export.h).
//
// Every record carries causal metadata: the acting node's Lamport clock
// (ticked on sends, deliveries, wakeups and timer fires; a delivery
// joins the sender's clock with max+1), a message uid `mid` pairing each
// kSend with its kDeliver/kDrop/kLoss/kDuplicate outcomes (timer records
// reuse the field for the timer id), and the acting node's protocol
// phase at record time (Context::BeginPhase/EndPhase).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "celect/obs/phase.h"
#include "celect/sim/time.h"
#include "celect/sim/types.h"

namespace celect::sim {

struct TraceRecord {
  enum class Kind {
    kSend,
    kDeliver,
    kWakeup,
    kLeader,
    kCrash,        // node crashed mid-run (fault injection)
    kRejoin,       // crashed node revived with a fresh process (churn)
    kDrop,         // delivery swallowed by a crashed/failed destination
    kLoss,         // injected link loss
    kDuplicate,    // injected duplicate delivery scheduled
    kTimerSet,     // node armed a timer
    kTimerFire,    // timer fired at node
    kTimerCancel,  // node cancelled a live timer
    kPhaseBegin,   // protocol opened a phase span
    kPhaseEnd,     // protocol closed a phase span
  };
  Kind kind;
  Time at;
  NodeId node;           // acting node
  NodeId peer;           // other endpoint for send/deliver
  Port port;             // local port at `node`
  std::uint16_t type;    // packet type
  std::uint64_t seq;     // global monotone sequence
  // Lamport clock of `node` after the event (0 before any clocked
  // event touched the node).
  std::uint64_t clock = 0;
  // Message uid: pairs a send with every arrival/loss outcome of that
  // message (duplicates share the original's uid). Timer records carry
  // the TimerId here. 0 = not applicable.
  std::uint64_t mid = 0;
  // The acting node's protocol phase when the record was taken; the
  // span's phase for kPhaseBegin/kPhaseEnd.
  obs::PhaseId phase = obs::PhaseId::kNone;
  std::int64_t phase_level = 0;
};

// Human-readable one-line label ("send", "tcxl", ...).
const char* ToString(TraceRecord::Kind kind);

class Trace {
 public:
  explicit Trace(bool enabled = false, std::size_t cap = 10'000'000)
      : enabled_(enabled), cap_(cap) {}

  bool enabled() const { return enabled_; }
  void Record(TraceRecord r);

  const std::vector<TraceRecord>& records() const { return records_; }
  bool truncated() const { return truncated_; }
  // Records discarded after the cap was hit. Runtime::Run surfaces this
  // as RunResult::counters["sim.trace_truncated"] and warn-logs once —
  // a capped trace must never silently masquerade as a complete one.
  std::uint64_t dropped() const { return dropped_; }

  std::string ToString(std::size_t max_lines = 100) const;

 private:
  bool enabled_;
  std::size_t cap_;
  bool truncated_ = false;
  std::uint64_t dropped_ = 0;
  std::uint64_t next_seq_ = 0;
  std::vector<TraceRecord> records_;
};

}  // namespace celect::sim
