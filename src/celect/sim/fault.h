// Fault injection: mid-run crashes and lossy links.
//
// The paper's model has two failure stories. *Initial* failures
// (NetworkConfig::failed) are nodes that were dead before the protocol
// started: they never wake and silently eat messages — the setting of the
// §4 BKWZ87 fault-tolerance result. A FaultPlan goes further and kills
// nodes *during* the run, at an adversarially chosen moment: at an
// absolute time, after the node's k-th send or k-th receive, or on the
// first delivery of a given message type (the classic "dies mid-
// handshake" adversary). A plan may also degrade every link with seeded
// loss, duplication, and reordering-within-delay-bounds.
//
// Crash semantics: a crashed node dispatches nothing from the moment of
// the crash — pending deliveries, wakeups, and timers addressed to it
// are swallowed, and any Send it attempts in the remainder of the
// current handler vanishes. Messages already in flight *from* it are
// delivered normally (they left before the crash).
//
// Rejoin semantics (churn): a plan may schedule RejoinSpecs that revive
// crashed nodes at an absolute time. Revival is crash-recovery without
// stable storage — the node comes back as a *fresh* process instance
// (all volatile protocol state lost), is notified via Process::OnRejoin,
// and stays passive until protocol traffic reaches it. A rejoin whose
// node is alive at dispatch (its crash trigger never fired) is a no-op.
//
// Everything here is deterministic: the same plan and seed produce the
// same injected faults, so every chaos run is replayable.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "celect/sim/time.h"
#include "celect/sim/types.h"

namespace celect::sim {

// One scheduled crash. Count/type triggers fire at most once; a node
// that is already crashed cannot crash again.
struct CrashSpec {
  enum class Trigger {
    kAtTime,         // crash at absolute time `at`
    kAfterSends,     // crash just after the node's count-th send
    kAfterReceives,  // crash just after processing the count-th delivery
    kOnMessageType,  // crash on first delivery of `message_type`,
                     // *instead of* processing it (mid-handshake death)
  };

  NodeId node = 0;
  Trigger trigger = Trigger::kAtTime;
  Time at = Time::Zero();           // kAtTime
  std::uint64_t count = 1;          // kAfterSends / kAfterReceives, 1-based
  std::uint16_t message_type = 0;   // kOnMessageType
};

// Per-message link degradation rates, decided by seeded RNG at admission
// time. Loss drops the message after it was sent (the sender still pays
// for it); duplication delivers a second copy later on the same link
// (FIFO order preserved); reordering delivers the message at
// send_time + transit even if that overtakes the link's FIFO backlog —
// still within the model's one-unit delay bound, but out of order.
struct LinkFaultProfile {
  double loss = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;

  bool Any() const { return loss > 0.0 || duplicate > 0.0 || reorder > 0.0; }
};

// One scheduled revival. Always time-triggered: a rejoin is an external
// repair action (operator restarts the machine), not a protocol event.
struct RejoinSpec {
  NodeId node = 0;
  Time at = Time::Zero();
};

// A complete fault schedule for one run.
struct FaultPlan {
  std::vector<CrashSpec> crashes;
  std::vector<RejoinSpec> rejoins;
  LinkFaultProfile link;
  // Seed for the link-fault RNG stream (independent of delay/identity
  // streams so enabling faults never perturbs the fault-free schedule).
  std::uint64_t seed = 0;

  bool Empty() const {
    return crashes.empty() && rejoins.empty() && !link.Any();
  }
};

// Structural validation, deliberately separate from ValidateConfig:
// initially-failed nodes may not be base nodes (a dead node cannot wake),
// but a node crashed mid-run by a FaultPlan may legally be one — it
// lived, woke, participated, and then died. CHECK-fails on out-of-range
// nodes, rates outside [0, 1], or zero counts.
//
// Churn ordering rules, enforced per node for every node with rejoins
// (a malformed churn plan fails fast instead of silently no-opping):
//   1. All of the node's timed crash times and rejoin times are pairwise
//      distinct — a crash at or at-the-instant-of a rejoin is rejected
//      (tie-breaking by schedule order would make "did it come back?"
//      depend on plan construction order, not the plan's content).
//   2. Sorted by time, the node's timed crashes and rejoins strictly
//      alternate: crash → rejoin → crash → ... Two rejoins without an
//      intervening crash (the second can never fire) or two timed
//      crashes without an intervening rejoin (the second is dead-on-
//      arrival) are both rejected.
//   3. The node's earliest timed event may be a rejoin only when the
//      node also carries a count- or type-triggered crash spec — only a
//      trigger can plausibly have killed it before that time. (Reviving
//      initially-failed nodes is out of scope: those model machines that
//      were never part of the run.)
void ValidateFaultPlan(const FaultPlan& plan, std::uint32_t n);

// Tracks which crash triggers have fired. The runtime owns one per run
// and reports sends/deliveries; the injector answers "does this node
// crash now?". Time triggers are exported once and scheduled as
// CrashEvents so they land in the deterministic event order.
class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint32_t n);

  const FaultPlan& plan() const { return plan_; }

  // The kAtTime crashes, for up-front scheduling.
  std::vector<std::pair<NodeId, Time>> TimedCrashes() const;

  // The rejoins (always timed), for up-front scheduling.
  std::vector<std::pair<NodeId, Time>> TimedRejoins() const;

  // Reports a completed send; true means the node crashes now (later
  // sends from the same handler must be swallowed by the caller).
  bool NoteSend(NodeId node);

  // What to do with a delivery about to be handed to `node`.
  enum class DeliveryFate {
    kProcess,               // no trigger: process normally
    kCrashBeforeProcessing, // kOnMessageType: the message dies with the node
    kCrashAfterProcessing,  // kAfterReceives: process, then crash
  };
  DeliveryFate NoteDelivery(NodeId node, std::uint16_t type);

 private:
  FaultPlan plan_;
  // Indices into plan_.crashes of unfired count/type triggers, per node.
  std::vector<std::vector<std::size_t>> pending_;
  std::vector<std::uint64_t> sends_;
  std::vector<std::uint64_t> receives_;
};

}  // namespace celect::sim
