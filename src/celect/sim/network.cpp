#include "celect/sim/network.h"

#include <unordered_set>

#include "celect/util/check.h"

namespace celect::sim {

std::vector<Id> IdentitiesAscending(std::uint32_t n) {
  std::vector<Id> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) ids[i] = static_cast<Id>(i) + 1;
  return ids;
}

std::vector<Id> IdentitiesRandom(std::uint32_t n, Rng& rng) {
  auto ids = IdentitiesAscending(n);
  rng.Shuffle(ids);
  return ids;
}

std::vector<Id> IdentitiesSparse(std::uint32_t n, Rng& rng) {
  // Strictly increasing random gaps, then shuffled across addresses.
  std::vector<Id> ids(n);
  Id cur = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    cur += 1 + static_cast<Id>(rng.NextBelow(1000));
    ids[i] = cur;
  }
  rng.Shuffle(ids);
  return ids;
}

void ValidateConfig(const NetworkConfig& config) {
  CELECT_CHECK(config.n >= 2);
  CELECT_CHECK(config.mapper != nullptr);
  CELECT_CHECK(config.mapper->n() == config.n);
  CELECT_CHECK(config.delays != nullptr);
  if (!config.identities.empty()) {
    CELECT_CHECK(config.identities.size() == config.n);
    std::unordered_set<Id> seen;
    for (Id id : config.identities) {
      CELECT_CHECK(seen.insert(id).second) << "duplicate identity " << id;
    }
  }
  if (!config.failed.empty()) {
    CELECT_CHECK(config.failed.size() == config.n);
  }
  CELECT_CHECK(!config.wakeup.wakeups.empty())
      << "at least one base node must wake up";
  for (const auto& [node, at] : config.wakeup.wakeups) {
    CELECT_CHECK(node < config.n);
    CELECT_CHECK(at >= Time::Zero());
    if (!config.failed.empty()) {
      // Only *initial* failures are barred from the base set; a FaultPlan
      // may crash a base node mid-run (it wakes, runs, then dies).
      CELECT_CHECK(!config.failed[node])
          << "initially-failed node " << node << " cannot be a base node";
    }
  }
  ValidateFaultPlan(config.faults, config.n);
}

}  // namespace celect::sim
