#include "celect/sim/link.h"

#include <algorithm>

#include "celect/util/check.h"

namespace celect::sim {

namespace {

// splitmix64 finalizer — full-avalanche mix for the sparse probe start.
std::uint64_t Mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void LinkTable::EnableFaults(const LinkFaultProfile& profile,
                             std::uint64_t seed) {
  faults_ = profile;
  faults_enabled_ = profile.Any();
  fault_rng_ = Rng(seed);
}

LinkTable::State& LinkTable::Obtain(NodeId from, NodeId to) {
  const std::uint64_t key = Key(from, to);
  if (dense()) {
    if (dense_.empty()) {
      dense_.resize(static_cast<std::size_t>(n_) * n_);
    }
    return dense_[key];
  }
  if (sparse_.empty()) sparse_.resize(1024);
  // Grow at 3/4 load so linear probes stay short.
  if (sparse_used_ * 4 >= sparse_.size() * 3) GrowSparse();
  const std::size_t mask = sparse_.size() - 1;
  std::size_t i = static_cast<std::size_t>(Mix(key)) & mask;
  for (;;) {
    FlatEntry& e = sparse_[i];
    if (e.key == key) return e.s;
    if (e.key == 0) {
      e.key = key;
      ++sparse_used_;
      return e.s;
    }
    i = (i + 1) & mask;
  }
}

const LinkTable::State* LinkTable::Find(NodeId from, NodeId to) const {
  const std::uint64_t key = Key(from, to);
  if (dense()) {
    return dense_.empty() ? nullptr : &dense_[key];
  }
  if (sparse_.empty()) return nullptr;
  const std::size_t mask = sparse_.size() - 1;
  std::size_t i = static_cast<std::size_t>(Mix(key)) & mask;
  for (;;) {
    const FlatEntry& e = sparse_[i];
    if (e.key == key) return &e.s;
    if (e.key == 0) return nullptr;
    i = (i + 1) & mask;
  }
}

void LinkTable::GrowSparse() {
  std::vector<FlatEntry> old;
  old.swap(sparse_);
  sparse_.resize(old.size() * 2);
  const std::size_t mask = sparse_.size() - 1;
  for (const FlatEntry& e : old) {
    if (e.key == 0) continue;
    std::size_t i = static_cast<std::size_t>(Mix(e.key)) & mask;
    while (sparse_[i].key != 0) i = (i + 1) & mask;
    sparse_[i] = e;
  }
}

Time LinkTable::AdmitOrdered(State& s, Time send_time,
                             const DelayDecision& d) {
  Time arrival = send_time + d.transit;
  if (s.sent > 0) {
    arrival = std::max(arrival, s.last_arrival + d.spacing);
  }
  // FIFO: never earlier than the previous arrival.
  arrival = std::max(arrival, s.last_arrival);
  s.last_arrival = arrival;
  ++s.sent;
  ++s.inflight;
  max_load_ = std::max<std::uint64_t>(max_load_, s.sent);
  max_inflight_ = std::max<std::uint64_t>(max_inflight_, s.inflight);
  return arrival;
}

Time LinkTable::Admit(NodeId from, NodeId to, Time send_time,
                      const DelayDecision& d) {
  CELECT_DCHECK(from < n_ && to < n_ && from != to);
  CELECT_CHECK(d.transit > Time::Zero()) << "transit delay must be positive";
  CELECT_CHECK(d.transit <= kUnit) << "transit delay exceeds one unit";
  CELECT_CHECK(d.spacing >= Time::Zero() && d.spacing <= kUnit)
      << "spacing outside [0, 1]";
  return AdmitOrdered(Obtain(from, to), send_time, d);
}

Admission LinkTable::AdmitWithFaults(NodeId from, NodeId to, Time send_time,
                                     const DelayDecision& d) {
  return AdmitWithFaults(Touch(from, to), from, to, send_time, d);
}

LinkTable::LinkRef LinkTable::Touch(NodeId from, NodeId to) {
  CELECT_DCHECK(from < n_ && to < n_ && from != to);
  LinkRef r;
  r.p = &Obtain(from, to);
  return r;
}

Admission LinkTable::AdmitWithFaults(const LinkRef& l, NodeId from, NodeId to,
                                     Time send_time, const DelayDecision& d) {
  CELECT_DCHECK(from < n_ && to < n_ && from != to);
  CELECT_CHECK(d.transit > Time::Zero()) << "transit delay must be positive";
  CELECT_CHECK(d.transit <= kUnit) << "transit delay exceeds one unit";
  CELECT_CHECK(d.spacing >= Time::Zero() && d.spacing <= kUnit)
      << "spacing outside [0, 1]";
  State& s = *static_cast<State*>(l.p);
  Admission adm;
  if (!faults_enabled_) {
    adm.arrival = AdmitOrdered(s, send_time, d);
    return adm;
  }

  // Fixed draw order (loss, reorder, duplicate) keeps runs reproducible.
  if (faults_.loss > 0.0 && fault_rng_.NextDouble() < faults_.loss) {
    // The message was sent and vanished in transit: it counts against the
    // link's load but leaves the FIFO backlog and in-flight set alone.
    adm.lost = true;
    ++s.sent;
    max_load_ = std::max<std::uint64_t>(max_load_, s.sent);
    return adm;
  }
  bool reorder =
      faults_.reorder > 0.0 && fault_rng_.NextDouble() < faults_.reorder;
  if (reorder && s.inflight > 0) {
    // Overtake the backlog: arrive on raw transit time. last_arrival is
    // not moved backwards, so later ordered messages still respect the
    // FIFO baseline.
    adm.reordered = true;
    adm.arrival = send_time + d.transit;
    s.last_arrival = std::max(s.last_arrival, adm.arrival);
    ++s.sent;
    ++s.inflight;
    max_load_ = std::max<std::uint64_t>(max_load_, s.sent);
    max_inflight_ = std::max<std::uint64_t>(max_inflight_, s.inflight);
  } else {
    adm.arrival = AdmitOrdered(s, send_time, d);
  }
  if (faults_.duplicate > 0.0 &&
      fault_rng_.NextDouble() < faults_.duplicate) {
    // The duplicate is one more FIFO-ordered message on the link.
    adm.duplicate_arrival = AdmitOrdered(s, send_time, d);
  }
  return adm;
}

void LinkTable::NotifyDelivered(NodeId from, NodeId to) {
  State* s = const_cast<State*>(Find(from, to));
  CELECT_CHECK(s != nullptr && s->inflight > 0)
      << "delivery on a link with nothing in flight";
  --s->inflight;
}

std::uint64_t LinkTable::SentCount(NodeId from, NodeId to) const {
  const State* s = Find(from, to);
  return s == nullptr ? 0 : s->sent;
}

Time LinkTable::LastArrival(NodeId from, NodeId to) const {
  const State* s = Find(from, to);
  return s == nullptr ? Time::Zero() : s->last_arrival;
}

}  // namespace celect::sim
