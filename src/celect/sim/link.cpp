#include "celect/sim/link.h"

#include <algorithm>

#include "celect/util/check.h"

namespace celect::sim {

void LinkTable::EnableFaults(const LinkFaultProfile& profile,
                             std::uint64_t seed) {
  faults_ = profile;
  faults_enabled_ = profile.Any();
  fault_rng_ = Rng(seed);
}

Time LinkTable::AdmitOrdered(State& s, Time send_time,
                             const DelayDecision& d) {
  Time arrival = send_time + d.transit;
  if (s.sent > 0) {
    arrival = std::max(arrival, s.last_arrival + d.spacing);
  }
  // FIFO: never earlier than the previous arrival.
  arrival = std::max(arrival, s.last_arrival);
  s.last_arrival = arrival;
  ++s.sent;
  ++s.inflight;
  max_load_ = std::max(max_load_, s.sent);
  max_inflight_ = std::max(max_inflight_, s.inflight);
  return arrival;
}

Time LinkTable::Admit(NodeId from, NodeId to, Time send_time,
                      const DelayDecision& d) {
  CELECT_DCHECK(from < n_ && to < n_ && from != to);
  CELECT_CHECK(d.transit > Time::Zero()) << "transit delay must be positive";
  CELECT_CHECK(d.transit <= kUnit) << "transit delay exceeds one unit";
  CELECT_CHECK(d.spacing >= Time::Zero() && d.spacing <= kUnit)
      << "spacing outside [0, 1]";
  return AdmitOrdered(state_[Key(from, to)], send_time, d);
}

Admission LinkTable::AdmitWithFaults(NodeId from, NodeId to, Time send_time,
                                     const DelayDecision& d) {
  Admission adm;
  if (!faults_enabled_) {
    adm.arrival = Admit(from, to, send_time, d);
    return adm;
  }
  CELECT_DCHECK(from < n_ && to < n_ && from != to);
  CELECT_CHECK(d.transit > Time::Zero()) << "transit delay must be positive";
  CELECT_CHECK(d.transit <= kUnit) << "transit delay exceeds one unit";
  CELECT_CHECK(d.spacing >= Time::Zero() && d.spacing <= kUnit)
      << "spacing outside [0, 1]";
  State& s = state_[Key(from, to)];

  // Fixed draw order (loss, reorder, duplicate) keeps runs reproducible.
  if (faults_.loss > 0.0 && fault_rng_.NextDouble() < faults_.loss) {
    // The message was sent and vanished in transit: it counts against the
    // link's load but leaves the FIFO backlog and in-flight set alone.
    adm.lost = true;
    ++s.sent;
    max_load_ = std::max(max_load_, s.sent);
    return adm;
  }
  bool reorder =
      faults_.reorder > 0.0 && fault_rng_.NextDouble() < faults_.reorder;
  if (reorder && s.inflight > 0) {
    // Overtake the backlog: arrive on raw transit time. last_arrival is
    // not moved backwards, so later ordered messages still respect the
    // FIFO baseline.
    adm.reordered = true;
    adm.arrival = send_time + d.transit;
    s.last_arrival = std::max(s.last_arrival, adm.arrival);
    ++s.sent;
    ++s.inflight;
    max_load_ = std::max(max_load_, s.sent);
    max_inflight_ = std::max(max_inflight_, s.inflight);
  } else {
    adm.arrival = AdmitOrdered(s, send_time, d);
  }
  if (faults_.duplicate > 0.0 &&
      fault_rng_.NextDouble() < faults_.duplicate) {
    // The duplicate is one more FIFO-ordered message on the link.
    adm.duplicate_arrival = AdmitOrdered(s, send_time, d);
  }
  return adm;
}

void LinkTable::NotifyDelivered(NodeId from, NodeId to) {
  auto it = state_.find(Key(from, to));
  CELECT_CHECK(it != state_.end() && it->second.inflight > 0)
      << "delivery on a link with nothing in flight";
  --it->second.inflight;
}

std::uint64_t LinkTable::SentCount(NodeId from, NodeId to) const {
  auto it = state_.find(Key(from, to));
  return it == state_.end() ? 0 : it->second.sent;
}

Time LinkTable::LastArrival(NodeId from, NodeId to) const {
  auto it = state_.find(Key(from, to));
  return it == state_.end() ? Time::Zero() : it->second.last_arrival;
}

}  // namespace celect::sim
