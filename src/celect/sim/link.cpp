#include "celect/sim/link.h"

#include <algorithm>

#include "celect/util/check.h"

namespace celect::sim {

Time LinkTable::Admit(NodeId from, NodeId to, Time send_time,
                      const DelayDecision& d) {
  CELECT_DCHECK(from < n_ && to < n_ && from != to);
  CELECT_CHECK(d.transit > Time::Zero()) << "transit delay must be positive";
  CELECT_CHECK(d.transit <= kUnit) << "transit delay exceeds one unit";
  CELECT_CHECK(d.spacing >= Time::Zero() && d.spacing <= kUnit)
      << "spacing outside [0, 1]";
  State& s = state_[Key(from, to)];
  Time arrival = send_time + d.transit;
  if (s.sent > 0) {
    arrival = std::max(arrival, s.last_arrival + d.spacing);
  }
  // FIFO: never earlier than the previous arrival.
  arrival = std::max(arrival, s.last_arrival);
  s.last_arrival = arrival;
  ++s.sent;
  ++s.inflight;
  max_load_ = std::max(max_load_, s.sent);
  max_inflight_ = std::max(max_inflight_, s.inflight);
  return arrival;
}

void LinkTable::NotifyDelivered(NodeId from, NodeId to) {
  auto it = state_.find(Key(from, to));
  CELECT_CHECK(it != state_.end() && it->second.inflight > 0)
      << "delivery on a link with nothing in flight";
  --it->second.inflight;
}

std::uint64_t LinkTable::SentCount(NodeId from, NodeId to) const {
  auto it = state_.find(Key(from, to));
  return it == state_.end() ? 0 : it->second.sent;
}

Time LinkTable::LastArrival(NodeId from, NodeId to) const {
  auto it = state_.find(Key(from, to));
  return it == state_.end() ? Time::Zero() : it->second.last_arrival;
}

}  // namespace celect::sim
