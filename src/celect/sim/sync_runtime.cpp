#include "celect/sim/sync_runtime.h"

#include "celect/util/check.h"

namespace celect::sim {

class SyncRuntime::ContextImpl : public SyncContext {
 public:
  ContextImpl(SyncRuntime& rt, NodeId node) : rt_(rt), node_(node) {}

  NodeId address() const override { return node_; }
  Id id() const override { return rt_.ids_[node_]; }
  std::uint32_t n() const override { return rt_.n_; }
  std::uint32_t round() const override { return rt_.round_; }

  void Send(Port port, wire::Packet p) override {
    CELECT_CHECK(port >= 1 && port <= rt_.n_ - 1);
    NodeId to = rt_.mapper_->Resolve(node_, port);
    rt_.mapper_->MarkTraversed(node_, port);
    Port arrival = rt_.mapper_->PortToward(to, node_);
    rt_.mapper_->MarkTraversed(to, arrival);
    rt_.next_inboxes_[to].emplace_back(arrival, std::move(p));
    ++rt_.messages_;
  }

  void DeclareLeader() override {
    if (rt_.leader_declarations_ == 0) rt_.leader_id_ = id();
    ++rt_.leader_declarations_;
  }

 private:
  SyncRuntime& rt_;
  NodeId node_;
};

SyncRuntime::SyncRuntime(std::uint32_t n, std::vector<Id> identities,
                         std::unique_ptr<PortMapper> mapper,
                         const SyncProcessFactory& factory,
                         std::uint32_t max_rounds)
    : n_(n),
      ids_(std::move(identities)),
      mapper_(std::move(mapper)),
      max_rounds_(max_rounds),
      inboxes_(n),
      next_inboxes_(n) {
  CELECT_CHECK(n >= 2);
  CELECT_CHECK(ids_.size() == n);
  CELECT_CHECK(mapper_ && mapper_->n() == n);
  processes_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    processes_.push_back(factory(SyncProcessInit{i, ids_[i], n}));
    CELECT_CHECK(processes_.back() != nullptr);
  }
}

SyncRunResult SyncRuntime::Run() {
  for (round_ = 0;; ++round_) {
    CELECT_CHECK(round_ < max_rounds_) << "synchronous run did not quiesce";
    for (NodeId i = 0; i < n_; ++i) {
      ContextImpl ctx(*this, i);
      processes_[i]->OnRound(ctx, inboxes_[i]);
    }
    bool any = false;
    for (auto& box : next_inboxes_) {
      if (!box.empty()) {
        any = true;
        break;
      }
    }
    std::swap(inboxes_, next_inboxes_);
    for (auto& box : next_inboxes_) box.clear();
    if (!any) break;
  }
  SyncRunResult r;
  r.leader_id = leader_id_;
  r.leader_declarations = leader_declarations_;
  r.rounds = round_ + 1;
  r.total_messages = messages_;
  return r;
}

}  // namespace celect::sim
