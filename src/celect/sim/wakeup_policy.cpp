#include "celect/sim/wakeup_policy.h"

#include <algorithm>

#include "celect/util/check.h"

namespace celect::sim {

Time WakeupPlan::LastWakeup() const {
  Time last = Time::Zero();
  for (const auto& [node, at] : wakeups) last = std::max(last, at);
  return last;
}

WakeupPlan WakeAllAtZero(std::uint32_t n) {
  WakeupPlan plan;
  plan.wakeups.reserve(n);
  for (NodeId i = 0; i < n; ++i) plan.wakeups.emplace_back(i, Time::Zero());
  return plan;
}

WakeupPlan WakeSingle(std::uint32_t n, NodeId node) {
  CELECT_CHECK(node < n);
  WakeupPlan plan;
  plan.wakeups.emplace_back(node, Time::Zero());
  return plan;
}

WakeupPlan WakeRandomSubset(std::uint32_t n, std::uint32_t count,
                            Time window, Rng& rng) {
  CELECT_CHECK(count >= 1 && count <= n);
  auto perm = rng.Permutation(n);
  WakeupPlan plan;
  plan.wakeups.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Time at = window == Time::Zero()
                  ? Time::Zero()
                  : Time::FromTicks(static_cast<std::int64_t>(
                        rng.NextBelow(window.ticks() + 1)));
    plan.wakeups.emplace_back(perm[i], at);
  }
  return plan;
}

WakeupPlan WakeStaggeredChain(std::uint32_t n, Time spacing) {
  WakeupPlan plan;
  plan.wakeups.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    plan.wakeups.emplace_back(i, spacing * static_cast<std::int64_t>(i));
  }
  return plan;
}

WakeupPlan WakePrefixAtZero(std::uint32_t n, std::uint32_t count) {
  CELECT_CHECK(count >= 1 && count <= n);
  WakeupPlan plan;
  plan.wakeups.reserve(count);
  for (NodeId i = 0; i < count; ++i) {
    plan.wakeups.emplace_back(i, Time::Zero());
  }
  return plan;
}

WakeupPlan WakeEveryKth(std::uint32_t n, std::uint32_t stride) {
  CELECT_CHECK(stride >= 1 && stride <= n);
  WakeupPlan plan;
  plan.wakeups.reserve(n / stride);
  for (NodeId i = 0; i < n; i += stride) {
    plan.wakeups.emplace_back(i, Time::Zero());
  }
  return plan;
}

}  // namespace celect::sim
