#include "celect/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <limits>

#include "celect/util/check.h"

namespace celect::sim {

namespace {

// Min-heap ordering for the far region: earliest (at, seq) on top.
struct HandleAfterFar {
  template <typename H>
  bool operator()(const H& a, const H& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace

EventQueue::EventQueue() : l0_(kL0), l1_(kL1), l1_tick_(kL1, kMixedTick) {}

std::size_t EventQueue::ScanBits(const Bits& b, std::size_t from) {
  if (from >= kL0) return kNpos;
  std::size_t w = from >> 6;
  std::uint64_t word = b[w] & (~std::uint64_t{0} << (from & 63));
  for (;;) {
    if (word != 0) {
      return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
    }
    if (++w == kWords) return kNpos;
    word = b[w];
  }
}

std::uint32_t EventQueue::AllocSlot(Time at, std::uint64_t seq,
                                    EventBody&& body) {
  std::uint32_t i;
  if (free_head_ != kNoSlot) {
    i = free_head_;
  } else {
    i = slot_count_++;
    const std::uint32_t j = i + kChunk0;
    if ((j & (j - 1)) == 0) {
      // i opens chunk c with base 2^(kChunk0Bits + c) == j; the chunk's
      // capacity equals its base.
      chunks_.push_back(std::make_unique<Slot[]>(j));
    }
  }
  Slot& s = SlotAt(i);
  free_head_ = s.next_free;
  s.ev.at = at;
  s.ev.seq = seq;
  s.ev.body = std::move(body);
  s.dead = false;
  s.next_free = kNoSlot;
  return i;
}

void EventQueue::FreeSlot(std::uint32_t slot) {
  Slot& s = SlotAt(slot);
  s.ev.seq = kFreeSeq;
  s.dead = false;
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::AppendL0(const Handle& h, bool from_far) {
  const std::size_t idx = static_cast<std::size_t>(h.at) & (kL0 - 1);
  std::vector<Handle>& b = l0_[idx];
  // A far drain landing behind already-scattered same-instant handles can
  // carry lower seqs; flag the bucket for a one-time sort before serving.
  if (from_far && !b.empty()) SetBit(l0_sort_, idx);
  b.push_back(h);
  SetBit(l0_bits_, idx);
}

void EventQueue::Place(const Handle& h) {
  CELECT_DCHECK(h.at >= 0) << "event scheduled at negative time";
  const std::uint64_t blk = static_cast<std::uint64_t>(h.at) >> kBlockBits;
  if (blk == cur_block_) {
    AppendL0(h, /*from_far=*/false);
    return;
  }
  CELECT_DCHECK(blk > cur_block_) << "push into an already-served block";
  if (blk - cur_block_ <= kL1) {
    const std::size_t idx = static_cast<std::size_t>(blk & (kL1 - 1));
    std::vector<Handle>& b = l1_[idx];
    if (b.empty()) {
      l1_tick_[idx] = h.at;
    } else if (l1_tick_[idx] != h.at) {
      l1_tick_[idx] = kMixedTick;
    }
    b.push_back(h);
    SetBit(l1_bits_, idx);
    return;
  }
  far_.push_back(h);
  std::push_heap(far_.begin(), far_.end(), HandleAfterFar{});
}

std::uint64_t EventQueue::Push(Time at, EventBody body) {
  return PushTicketed(at, std::move(body)).seq;
}

EventTicket EventQueue::PushTicketed(Time at, EventBody body) {
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = AllocSlot(at, seq, std::move(body));
  Place(Handle{at.ticks(), seq, slot});
  ++live_;
  snapshot_dirty_ = true;
  return EventTicket{seq, slot};
}

void EventQueue::Cancel(const EventTicket& t) {
  if (t.slot >= slot_count_) return;
  Slot& s = SlotAt(t.slot);
  if (s.ev.seq != t.seq || s.dead) return;  // already popped / cancelled
  s.dead = true;
  CELECT_DCHECK(live_ > 0);
  --live_;
  ++dead_;
}

std::optional<std::uint64_t> EventQueue::NextL1Block() const {
  // The wheel holds blocks (cur_block_, cur_block_ + kL1]; scan ring
  // indices in that circular order and map the first hit back to its
  // absolute block.
  const std::size_t start =
      static_cast<std::size_t>((cur_block_ + 1) & (kL1 - 1));
  std::size_t idx = ScanBits(l1_bits_, start);
  if (idx == kNpos) {
    idx = ScanBits(l1_bits_, 0);
    if (idx == kNpos || idx >= start) return std::nullopt;
  }
  const std::uint64_t base = cur_block_ & ~static_cast<std::uint64_t>(kL1 - 1);
  std::uint64_t blk = base + idx;
  if (blk <= cur_block_) blk += kL1;
  return blk;
}

bool EventQueue::AdvanceBlock() {
  const std::optional<std::uint64_t> lb = NextL1Block();
  std::optional<std::uint64_t> fb;
  if (!far_.empty()) {
    fb = static_cast<std::uint64_t>(far_.front().at) >> kBlockBits;
  }
  if (!lb && !fb) return false;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  const std::uint64_t b = std::min(lb.value_or(kMax), fb.value_or(kMax));
  CELECT_DCHECK(b > cur_block_);
  cur_block_ = b;
  cur_bucket_ = 0;
  cur_pos_ = 0;
  if (lb && *lb == b) {
    const std::size_t idx = static_cast<std::size_t>(b & (kL1 - 1));
    std::vector<Handle>& src = l1_[idx];
    const std::int64_t tick = l1_tick_[idx];
    const std::size_t l0i =
        tick >= 0 ? static_cast<std::size_t>(tick) & (kL0 - 1) : 0;
    if (tick >= 0 && !src.empty() && l0_[l0i].empty()) {
      // Every handle in the bucket shares one instant (and was appended
      // in seq order), so the whole bucket becomes the L0 bucket by a
      // vector swap — no per-handle copying. Stale (taken) handles ride
      // along; Pop skips them by seq, exactly as it does after a scatter.
      l0_[l0i].swap(src);
      SetBit(l0_bits_, l0i);
    } else {
      for (const Handle& h : src) {
        if (SlotAt(h.slot).ev.seq != h.seq) continue;  // taken; drop stale
        AppendL0(h, /*from_far=*/false);
      }
      src.clear();
    }
    ClearBit(l1_bits_, idx);
  }
  while (!far_.empty() &&
         (static_cast<std::uint64_t>(far_.front().at) >> kBlockBits) == b) {
    std::pop_heap(far_.begin(), far_.end(), HandleAfterFar{});
    const Handle h = far_.back();
    far_.pop_back();
    if (SlotAt(h.slot).ev.seq != h.seq) continue;  // taken; drop stale
    AppendL0(h, /*from_far=*/true);
  }
  return true;
}

std::optional<Event> EventQueue::Pop() {
  for (;;) {
    std::vector<Handle>& b = l0_[cur_bucket_];
    if (cur_pos_ == 0 && TestBit(l0_sort_, cur_bucket_) && b.size() > 1) {
      // One instant per bucket: restoring seq order restores (at, seq).
      std::sort(b.begin(), b.end(),
                [](const Handle& x, const Handle& y) { return x.seq < y.seq; });
    }
    if (cur_pos_ == 0) ClearBit(l0_sort_, cur_bucket_);
    while (cur_pos_ < b.size()) {
      const Handle h = b[cur_pos_++];
      // Pull the next slot toward the caches while the caller dispatches
      // this event — same-instant slots are not generally adjacent.
      if (cur_pos_ < b.size()) {
        __builtin_prefetch(&SlotAt(b[cur_pos_].slot), 1, 1);
      }
      Slot& s = SlotAt(h.slot);
      if (s.ev.seq != h.seq) continue;  // taken; stale handle
      const bool was_dead = s.dead;
      Event e = std::move(s.ev);
      FreeSlot(h.slot);
      if (was_dead) {
        --dead_;
      } else {
        CELECT_DCHECK(live_ > 0);
        --live_;
      }
      snapshot_dirty_ = true;
      return e;
    }
    b.clear();
    ClearBit(l0_bits_, cur_bucket_);
    cur_pos_ = 0;
    const std::size_t next = ScanBits(l0_bits_, cur_bucket_ + 1);
    if (next != kNpos) {
      cur_bucket_ = next;
      continue;
    }
    if (!AdvanceBlock()) return std::nullopt;
    const std::size_t first = ScanBits(l0_bits_, 0);
    cur_bucket_ = first == kNpos ? 0 : first;
  }
}

Time EventQueue::PeekTime() const {
  CELECT_CHECK(Size() > 0) << "PeekTime on a queue with no live events";
  // L0: buckets are single instants in time order — the first live handle
  // found is the earliest.
  for (std::size_t i = ScanBits(l0_bits_, cur_bucket_); i != kNpos;
       i = ScanBits(l0_bits_, i + 1)) {
    const std::vector<Handle>& b = l0_[i];
    const std::size_t start = i == cur_bucket_ ? cur_pos_ : 0;
    // An unsorted (far-drained) bucket still holds one instant only, so
    // any live handle in it yields the bucket's time.
    for (std::size_t j = start; j < b.size(); ++j) {
      if (HandleLive(b[j])) return Time::FromTicks(b[j].at);
    }
  }
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  // L1: blocks in circular (time) order; the first block with a live
  // handle bounds every later block, but the far heap may still undercut
  // it, so keep scanning far below.
  const std::size_t start =
      static_cast<std::size_t>((cur_block_ + 1) & (kL1 - 1));
  for (std::size_t step = 0; step < kL1; ++step) {
    const std::size_t idx = (start + step) & (kL1 - 1);
    if (!TestBit(l1_bits_, idx)) continue;
    bool any = false;
    for (const Handle& h : l1_[idx]) {
      if (HandleLive(h) && h.at < best) {
        best = h.at;
        any = true;
      }
    }
    if (any) break;
  }
  for (const Handle& h : far_) {
    if (HandleLive(h) && h.at < best) best = h.at;
  }
  CELECT_CHECK(best != std::numeric_limits<std::int64_t>::max());
  return Time::FromTicks(best);
}

const std::vector<Event>& EventQueue::events() const {
  if (snapshot_dirty_) {
    snapshot_.clear();
    for (std::uint32_t i = 0; i < slot_count_; ++i) {
      const Slot& s = SlotAt(i);
      if (s.ev.seq != kFreeSeq) snapshot_.push_back(s.ev);
    }
    snapshot_dirty_ = false;
  }
  return snapshot_;
}

Event EventQueue::Take(std::uint64_t seq) {
  for (std::uint32_t i = 0; i < slot_count_; ++i) {
    Slot& s = SlotAt(i);
    if (s.ev.seq != seq) continue;
    const bool was_dead = s.dead;
    Event e = std::move(s.ev);
    FreeSlot(static_cast<std::uint32_t>(i));
    if (was_dead) {
      --dead_;
    } else {
      CELECT_DCHECK(live_ > 0);
      --live_;
    }
    snapshot_dirty_ = true;
    return e;
  }
  CELECT_CHECK(false) << "Take: no pending event with seq " << seq;
  __builtin_unreachable();
}

}  // namespace celect::sim
