#include "celect/sim/event_queue.h"

#include "celect/util/check.h"

namespace celect::sim {

std::uint64_t EventQueue::Push(Time at, EventBody body) {
  std::uint64_t seq = next_seq_++;
  heap_.push(Event{at, seq, std::move(body)});
  return seq;
}

std::optional<Event> EventQueue::Pop() {
  if (heap_.empty()) return std::nullopt;
  Event e = heap_.top();
  heap_.pop();
  return e;
}

Time EventQueue::PeekTime() const {
  CELECT_CHECK(!heap_.empty());
  return heap_.top().at;
}

}  // namespace celect::sim
