#include "celect/sim/event_queue.h"

#include <algorithm>

#include "celect/util/check.h"

namespace celect::sim {

// GCC 12's -Wmaybe-uninitialized misfires on std::push_heap/pop_heap/
// make_heap here: the algorithms hold a moved-to `__value` temporary, and
// the optimizer cannot prove the vector members inside Event's variant
// alternative were initialized before the move-assign writes them back
// (GCC PR 105562 family). Every element the algorithms touch is a fully
// constructed Event, so the warning is spurious.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

std::uint64_t EventQueue::Push(Time at, EventBody body) {
  std::uint64_t seq = next_seq_++;
  heap_.push_back(Event{at, seq, std::move(body)});
  std::push_heap(heap_.begin(), heap_.end(), EventAfter{});
  return seq;
}

std::optional<Event> EventQueue::Pop() {
  if (heap_.empty()) return std::nullopt;
  std::pop_heap(heap_.begin(), heap_.end(), EventAfter{});
  Event e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

Time EventQueue::PeekTime() const {
  CELECT_CHECK(!heap_.empty());
  return heap_.front().at;
}

Event EventQueue::Take(std::uint64_t seq) {
  auto it = std::find_if(heap_.begin(), heap_.end(),
                         [seq](const Event& e) { return e.seq == seq; });
  CELECT_CHECK(it != heap_.end()) << "Take: no pending event with seq "
                                  << seq;
  Event e = std::move(*it);
  *it = std::move(heap_.back());
  heap_.pop_back();
  std::make_heap(heap_.begin(), heap_.end(), EventAfter{});
  return e;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace celect::sim
