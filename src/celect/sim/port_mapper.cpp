#include "celect/sim/port_mapper.h"

#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect::sim {

namespace {

// splitmix64 finalizer — probe-start mix for the sparse traversal table.
std::uint64_t MixKey(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

PortMapperBase::PortMapperBase(std::uint32_t n) : n_(n), cursor_(n, 1) {
  CELECT_CHECK(n >= 2);
  if (dense()) words_per_node_ = (n_ + 63) / 64;
}

bool PortMapperBase::Contains(NodeId node, Port port) const {
  if (dense()) {
    if (bits_.empty()) return false;
    const std::uint64_t w =
        bits_[node * words_per_node_ + (port >> 6)];
    return (w >> (port & 63)) & 1;
  }
  if (sparse_.empty()) return false;
  const std::uint64_t key =
      1 + static_cast<std::uint64_t>(node) * n_ + port;
  const std::size_t mask = sparse_.size() - 1;
  std::size_t i = static_cast<std::size_t>(MixKey(key)) & mask;
  for (;;) {
    if (sparse_[i].key == key) return true;
    if (sparse_[i].key == 0) return false;
    i = (i + 1) & mask;
  }
}

void PortMapperBase::GrowSparse() {
  std::vector<SparseKey> old;
  old.swap(sparse_);
  sparse_.resize(old.size() * 2);
  const std::size_t mask = sparse_.size() - 1;
  for (const SparseKey& e : old) {
    if (e.key == 0) continue;
    std::size_t i = static_cast<std::size_t>(MixKey(e.key)) & mask;
    while (sparse_[i].key != 0) i = (i + 1) & mask;
    sparse_[i] = e;
  }
}

std::optional<Port> PortMapperBase::FreshPort(NodeId node) {
  CELECT_DCHECK(node < n_);
  Port& c = cursor_[node];
  while (c <= n_ - 1 && Contains(node, c)) ++c;
  if (c > n_ - 1) return std::nullopt;
  return c;
}

void PortMapperBase::MarkTraversed(NodeId node, Port port) {
  CELECT_DCHECK(node < n_);
  CELECT_DCHECK(port >= 1 && port <= n_ - 1);
  if (dense()) {
    if (bits_.empty()) {
      bits_.resize(static_cast<std::size_t>(n_) * words_per_node_, 0);
    }
    bits_[node * words_per_node_ + (port >> 6)] |=
        std::uint64_t{1} << (port & 63);
    return;
  }
  if (sparse_.empty()) sparse_.resize(1024);
  if (sparse_used_ * 4 >= sparse_.size() * 3) GrowSparse();
  const std::uint64_t key =
      1 + static_cast<std::uint64_t>(node) * n_ + port;
  const std::size_t mask = sparse_.size() - 1;
  std::size_t i = static_cast<std::size_t>(MixKey(key)) & mask;
  for (;;) {
    SparseKey& e = sparse_[i];
    if (e.key == key) return;  // already traversed
    if (e.key == 0) {
      e.key = key;
      ++sparse_used_;
      return;
    }
    i = (i + 1) & mask;
  }
}

bool PortMapperBase::IsTraversed(NodeId node, Port port) const {
  CELECT_DCHECK(node < n_);
  return Contains(node, port);
}

NodeId SodPortMapper::Resolve(NodeId node, Port port) {
  CELECT_DCHECK(node < n_);
  CELECT_CHECK(port >= 1 && port <= n_ - 1)
      << "port " << port << " out of range for N=" << n_;
  return static_cast<NodeId>(
      (static_cast<std::uint64_t>(node) + port) % n_);
}

Port SodPortMapper::PortToward(NodeId node, NodeId neighbor) {
  CELECT_DCHECK(node < n_ && neighbor < n_ && node != neighbor);
  return neighbor >= node ? neighbor - node : n_ - (node - neighbor);
}

RandomPortMapper::RandomPortMapper(std::uint32_t n, std::uint64_t seed)
    : PortMapperBase(n), seed_(seed), perms_(n) {}

const FeistelPermutation& RandomPortMapper::PermFor(NodeId node) {
  auto& p = perms_[node];
  if (!p) {
    SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (node + 1)));
    p = std::make_unique<FeistelPermutation>(n_ - 1, sm.Next());
  }
  return *p;
}

NodeId RandomPortMapper::Resolve(NodeId node, Port port) {
  CELECT_CHECK(port >= 1 && port <= n_ - 1);
  std::uint64_t x = PermFor(node).Encrypt(port - 1);  // in [0, N-2]
  NodeId neighbor = static_cast<NodeId>(x < node ? x : x + 1);  // skip self
  return neighbor;
}

Port RandomPortMapper::PortToward(NodeId node, NodeId neighbor) {
  CELECT_DCHECK(node != neighbor && neighbor < n_);
  std::uint64_t x = neighbor < node ? neighbor : neighbor - 1;
  return static_cast<Port>(PermFor(node).Decrypt(x) + 1);
}

std::unique_ptr<PortMapper> MakeSodMapper(std::uint32_t n) {
  return std::make_unique<SodPortMapper>(n);
}

std::unique_ptr<PortMapper> MakeRandomMapper(std::uint32_t n,
                                             std::uint64_t seed) {
  return std::make_unique<RandomPortMapper>(n, seed);
}

}  // namespace celect::sim
