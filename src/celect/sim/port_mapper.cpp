#include "celect/sim/port_mapper.h"

#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect::sim {

PortMapperBase::PortMapperBase(std::uint32_t n)
    : n_(n), traversed_(n), cursor_(n, 1) {
  CELECT_CHECK(n >= 2);
}

std::optional<Port> PortMapperBase::FreshPort(NodeId node) {
  CELECT_DCHECK(node < n_);
  Port& c = cursor_[node];
  const auto& used = traversed_[node];
  while (c <= n_ - 1 && used.count(c)) ++c;
  if (c > n_ - 1) return std::nullopt;
  return c;
}

void PortMapperBase::MarkTraversed(NodeId node, Port port) {
  CELECT_DCHECK(node < n_);
  CELECT_DCHECK(port >= 1 && port <= n_ - 1);
  traversed_[node].insert(port);
}

bool PortMapperBase::IsTraversed(NodeId node, Port port) const {
  CELECT_DCHECK(node < n_);
  return traversed_[node].count(port) != 0;
}

NodeId SodPortMapper::Resolve(NodeId node, Port port) {
  CELECT_DCHECK(node < n_);
  CELECT_CHECK(port >= 1 && port <= n_ - 1)
      << "port " << port << " out of range for N=" << n_;
  return static_cast<NodeId>(
      (static_cast<std::uint64_t>(node) + port) % n_);
}

Port SodPortMapper::PortToward(NodeId node, NodeId neighbor) {
  CELECT_DCHECK(node < n_ && neighbor < n_ && node != neighbor);
  return neighbor >= node ? neighbor - node : n_ - (node - neighbor);
}

RandomPortMapper::RandomPortMapper(std::uint32_t n, std::uint64_t seed)
    : PortMapperBase(n), seed_(seed), perms_(n) {}

const FeistelPermutation& RandomPortMapper::PermFor(NodeId node) {
  auto& p = perms_[node];
  if (!p) {
    SplitMix64 sm(seed_ ^ (0x9e3779b97f4a7c15ULL * (node + 1)));
    p = std::make_unique<FeistelPermutation>(n_ - 1, sm.Next());
  }
  return *p;
}

NodeId RandomPortMapper::Resolve(NodeId node, Port port) {
  CELECT_CHECK(port >= 1 && port <= n_ - 1);
  std::uint64_t x = PermFor(node).Encrypt(port - 1);  // in [0, N-2]
  NodeId neighbor = static_cast<NodeId>(x < node ? x : x + 1);  // skip self
  return neighbor;
}

Port RandomPortMapper::PortToward(NodeId node, NodeId neighbor) {
  CELECT_DCHECK(node != neighbor && neighbor < n_);
  std::uint64_t x = neighbor < node ? neighbor : neighbor - 1;
  return static_cast<Port>(PermFor(node).Decrypt(x) + 1);
}

std::unique_ptr<PortMapper> MakeSodMapper(std::uint32_t n) {
  return std::make_unique<SodPortMapper>(n);
}

std::unique_ptr<PortMapper> MakeRandomMapper(std::uint32_t n,
                                             std::uint64_t seed) {
  return std::make_unique<RandomPortMapper>(n, seed);
}

}  // namespace celect::sim
