// Link-delay policies.
//
// The model (§2) bounds every message delay by one time unit and the
// inter-message spacing on a link by one time unit. Time complexity is
// the worst case over all delay assignments, so the simulator lets a
// DelayModel choose, per message, a transit delay d ∈ (0, 1] and a
// minimum spacing s ∈ [0, 1] behind the previous message on the same
// directed link:
//
//   arrival = max(send_time + d, previous_arrival + s)
//
// With d = s = 1 (UnitDelayModel) every link behaves like a one-message-
// per-unit pipe — exactly the adversary behind the paper's congestion
// pathologies (the O(N)-forwarding example in §4). Random and eager
// models cover the benign part of the space; FunctionDelayModel lets
// tests and the §5 lower-bound adversary script arbitrary schedules.
#pragma once

#include <functional>
#include <memory>

#include "celect/sim/time.h"
#include "celect/sim/types.h"
#include "celect/util/rng.h"
#include "celect/wire/packet.h"

namespace celect::sim {

struct DelayDecision {
  Time transit;  // in (0, 1] unless a test deliberately violates the model
  Time spacing;  // in [0, 1]
};

struct MessageInfo {
  NodeId from;
  NodeId to;
  Time send_time;
  std::uint64_t link_seq;  // 0-based index of this message on its link
  const wire::Packet* packet;
};

class DelayModel {
 public:
  virtual ~DelayModel() = default;
  virtual DelayDecision Decide(const MessageInfo& info) = 0;
};

// Worst-case pipe: transit 1, spacing 1.
class UnitDelayModel : public DelayModel {
 public:
  DelayDecision Decide(const MessageInfo&) override {
    return {kUnit, kUnit};
  }
};

// Near-instant delivery (one tick, no spacing): useful for sanity checks
// and for isolating message complexity from timing.
class EagerDelayModel : public DelayModel {
 public:
  DelayDecision Decide(const MessageInfo&) override {
    return {Time::Tick(), Time::Zero()};
  }
};

// Independent uniform delays: transit ∈ (min_transit, 1], spacing ∈
// [0, max_spacing]. Reproducible from the seed.
class RandomDelayModel : public DelayModel {
 public:
  explicit RandomDelayModel(std::uint64_t seed, double min_transit = 0.0,
                            double max_spacing = 1.0);
  DelayDecision Decide(const MessageInfo& info) override;

 private:
  Rng rng_;
  double min_transit_;
  double max_spacing_;
};

// Fully scripted delays for adversarial executions.
class FunctionDelayModel : public DelayModel {
 public:
  using Fn = std::function<DelayDecision(const MessageInfo&)>;
  explicit FunctionDelayModel(Fn fn) : fn_(std::move(fn)) {}
  DelayDecision Decide(const MessageInfo& info) override {
    return fn_(info);
  }

 private:
  Fn fn_;
};

// Factory helpers (the common configurations used by the harness).
std::unique_ptr<DelayModel> MakeUnitDelay();
std::unique_ptr<DelayModel> MakeEagerDelay();
std::unique_ptr<DelayModel> MakeRandomDelay(std::uint64_t seed);

}  // namespace celect::sim
