// Simulation events.
#pragma once

#include <cstdint>
#include <variant>

#include "celect/sim/time.h"
#include "celect/sim/types.h"
#include "celect/wire/packet.h"

namespace celect::sim {

// A base node waking up spontaneously.
struct WakeupEvent {
  NodeId node;
};

// A packet arriving at `to` on local port `arrival_port`.
struct DeliveryEvent {
  NodeId from;
  NodeId to;
  Port arrival_port;
  wire::Packet packet;
};

// A node crashing (used by failure-injection tests; initial failures are
// modelled by never scheduling the node instead).
struct CrashEvent {
  NodeId node;
};

struct Event {
  Time at;
  // Monotone sequence number; breaks ties so the queue is a deterministic
  // total order and simultaneously-scheduled events run in schedule order.
  std::uint64_t seq = 0;
  std::variant<WakeupEvent, DeliveryEvent, CrashEvent> body;
};

// Strict-weak ordering for the event queue: earliest time first, then
// lowest sequence number.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace celect::sim
