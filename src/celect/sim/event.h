// Simulation events.
#pragma once

#include <cstdint>
#include <variant>

#include "celect/sim/time.h"
#include "celect/sim/types.h"
#include "celect/wire/packet.h"

namespace celect::sim {

// A base node waking up spontaneously.
struct WakeupEvent {
  NodeId node;
};

// A packet arriving at `to` on local port `arrival_port`.
//
// The causal metadata is stamped by the runtime at send time and kept
// to three 32-bit words (packed into the hole before `packet`) so the
// variant — and with it every element the event heap moves — stays
// small: the message uid (shared by an injected duplicate — it is the
// same message), the sender's Lamport clock, and the link latency in
// ticks (saturated at 2^32−1; telemetry only). 32 bits suffice: uids
// and clocks count events within one run, and a run with 2^32 messages
// is far beyond anything the queue could hold.
struct DeliveryEvent {
  NodeId from;
  NodeId to;
  Port arrival_port;
  std::uint32_t mid = 0;
  std::uint32_t send_clock = 0;
  std::uint32_t latency_ticks = 0;
  wire::Packet packet;
};

// A node crashing mid-run (scheduled by a FaultPlan's time-triggered
// crashes; initial failures are modelled by NetworkConfig::failed and
// never enter the queue).
struct CrashEvent {
  NodeId node;
};

// A crashed node coming back (scheduled by a FaultPlan's rejoins). The
// runtime revives the node with a *fresh* process instance — crashes
// lose all volatile protocol state — and leaves it passive until a
// message, timer, or pending wakeup reaches it. A rejoin addressed to a
// node that never crashed (its trigger did not fire) is a no-op.
struct RejoinEvent {
  NodeId node;
};

// A timer armed via Context::SetTimer firing at `node`. Cancelled timers
// stay in the queue and are discarded at dispatch.
struct TimerEvent {
  NodeId node;
  TimerId timer;
};

using EventBody = std::variant<WakeupEvent, DeliveryEvent, CrashEvent,
                               RejoinEvent, TimerEvent>;

struct Event {
  Time at;
  // Monotone sequence number; breaks ties so the queue is a deterministic
  // total order and simultaneously-scheduled events run in schedule order.
  std::uint64_t seq = 0;
  EventBody body;
};

// Strict-weak ordering for the event queue: earliest time first, then
// lowest sequence number.
struct EventAfter {
  bool operator()(const Event& a, const Event& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace celect::sim
