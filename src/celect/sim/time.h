// Fixed-point simulated time.
//
// The paper's model (§2): a message takes at most one *time unit* to
// traverse a link, and consecutive messages on a link are spaced at most
// one unit apart. Adversarial constructions use delays like ε < 1/2, so
// time must support fractions; we use a fixed-point representation
// (2^20 ticks per unit) instead of floating point so that event ordering
// is exact and runs are bit-reproducible.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace celect::sim {

class Time {
 public:
  static constexpr std::int64_t kTicksPerUnit = 1 << 20;

  constexpr Time() : ticks_(0) {}

  static constexpr Time FromTicks(std::int64_t ticks) { return Time(ticks); }
  static constexpr Time FromUnits(std::int64_t units) {
    return Time(units * kTicksPerUnit);
  }
  // Rounds to nearest tick; delays of (0,1] stay in (0,1] because the
  // smallest positive double we accept maps to at least one tick.
  static Time FromDouble(double units);

  static constexpr Time Zero() { return Time(0); }
  static constexpr Time Max() { return Time(INT64_MAX); }
  // Smallest representable positive duration.
  static constexpr Time Tick() { return Time(1); }

  constexpr std::int64_t ticks() const { return ticks_; }
  double ToDouble() const {
    return static_cast<double>(ticks_) / kTicksPerUnit;
  }

  constexpr Time operator+(Time o) const { return Time(ticks_ + o.ticks_); }
  constexpr Time operator-(Time o) const { return Time(ticks_ - o.ticks_); }
  Time& operator+=(Time o) {
    ticks_ += o.ticks_;
    return *this;
  }
  constexpr Time operator*(std::int64_t k) const { return Time(ticks_ * k); }

  constexpr auto operator<=>(const Time&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Time(std::int64_t ticks) : ticks_(ticks) {}
  std::int64_t ticks_;
};

// One simulated time unit (the model's maximum link delay).
inline constexpr Time kUnit = Time::FromUnits(1);

}  // namespace celect::sim
