// Port→neighbour mappings.
//
// Each node has N-1 locally-numbered ports (1..N-1). What a node can
// learn from a port number is the crux of the paper:
//
//  * SodPortMapper — sense of direction: port d is the edge to the node
//    at Hamiltonian distance d (addresses double as ring positions).
//  * RandomPortMapper — no sense of direction: each node's ports are a
//    pseudo-random permutation of its neighbours (Feistel-based, O(1)
//    memory, reproducible from the seed).
//  * Adaptive adversarial mappers (celect/adversary/) bind ports to
//    neighbours lazily, at first use, which is exactly the freedom the §5
//    lower-bound adversary exploits.
//
// The mapper also tracks which ports each node has traversed (sent or
// received on); protocols that walk "untraversed incident edges" pull
// fresh ports from here.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "celect/sim/types.h"
#include "celect/util/feistel.h"

namespace celect::sim {

class PortMapper {
 public:
  virtual ~PortMapper() = default;

  virtual std::uint32_t n() const = 0;
  virtual bool HasSenseOfDirection() const = 0;

  // The neighbour reached from `node` via `port` (1 <= port < N).
  // Adaptive mappers may bind the edge at this moment.
  virtual NodeId Resolve(NodeId node, Port port) = 0;

  // The port at `node` whose edge leads to `neighbor`; used by the
  // runtime to compute arrival ports. Adaptive mappers may bind here.
  virtual Port PortToward(NodeId node, NodeId neighbor) = 0;

  // An untraversed port of `node`, or nullopt when all N-1 ports are
  // traversed. Which untraversed port comes back is mapper policy — this
  // is the adversary's lever.
  virtual std::optional<Port> FreshPort(NodeId node) = 0;

  // Marks a port traversed. Runtime calls this on every send and
  // delivery.
  virtual void MarkTraversed(NodeId node, Port port) = 0;

  virtual bool IsTraversed(NodeId node, Port port) const = 0;
};

// Shared traversal bookkeeping plus a monotone scan cursor, so FreshPort
// is amortised O(1). MarkTraversed runs twice per message (send side and
// arrival side), so the set is flat, not hashed:
//
//   * dense (N <= kDenseMaxN): one bitmap of N bits per node, the whole
//     N x N block allocated lazily on the first mark — a mask-and-or per
//     mark, 2 MB at the 4096-node ceiling;
//   * sparse (large N): a single open-addressing table over (node, port)
//     keys shared by all nodes — memory stays O(ports actually
//     traversed), which for the paper's protocols is O(N log N) edges,
//     not N².
class PortMapperBase : public PortMapper {
 public:
  static constexpr std::uint32_t kDenseMaxN = 4096;

  explicit PortMapperBase(std::uint32_t n);

  std::uint32_t n() const override { return n_; }
  std::optional<Port> FreshPort(NodeId node) override;
  void MarkTraversed(NodeId node, Port port) override;
  bool IsTraversed(NodeId node, Port port) const override;

 protected:
  std::uint32_t n_;

 private:
  struct SparseKey {
    std::uint64_t key = 0;  // 1 + node * n + port; 0 = empty
  };

  bool dense() const { return n_ <= kDenseMaxN; }
  bool Contains(NodeId node, Port port) const;
  void GrowSparse();

  // Dense: n_ bitmap words per node (port bit index == port number),
  // empty until the first mark.
  std::size_t words_per_node_ = 0;
  std::vector<std::uint64_t> bits_;
  // Sparse: linear-probed table of traversed (node, port) pairs.
  std::vector<SparseKey> sparse_;
  std::size_t sparse_used_ = 0;
  std::vector<Port> cursor_;  // smallest possibly-untraversed port
};

// Sense of direction: port == Hamiltonian distance.
class SodPortMapper : public PortMapperBase {
 public:
  explicit SodPortMapper(std::uint32_t n) : PortMapperBase(n) {}
  bool HasSenseOfDirection() const override { return true; }
  NodeId Resolve(NodeId node, Port port) override;
  Port PortToward(NodeId node, NodeId neighbor) override;
};

// No sense of direction: per-node pseudo-random permutation.
class RandomPortMapper : public PortMapperBase {
 public:
  RandomPortMapper(std::uint32_t n, std::uint64_t seed);
  bool HasSenseOfDirection() const override { return false; }
  NodeId Resolve(NodeId node, Port port) override;
  Port PortToward(NodeId node, NodeId neighbor) override;

 private:
  const FeistelPermutation& PermFor(NodeId node);
  std::uint64_t seed_;
  std::vector<std::unique_ptr<FeistelPermutation>> perms_;
};

std::unique_ptr<PortMapper> MakeSodMapper(std::uint32_t n);
std::unique_ptr<PortMapper> MakeRandomMapper(std::uint32_t n,
                                             std::uint64_t seed);

}  // namespace celect::sim
