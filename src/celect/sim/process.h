// The protocol-facing API.
//
// A Process is one protocol instance running at one node. It sees only
// what the model allows: its own identity, N, local port numbers, and the
// packets that arrive. It cannot read neighbour identities off a port —
// learning them costs messages, which is the whole game.
//
// The paper's protocols are purely message-driven (they use no
// timeouts): the runtime calls OnWakeup for spontaneous wakeups of base
// nodes and OnMessage for deliveries. Passive nodes receive OnMessage
// without ever getting OnWakeup — the paper's "wakes up on receiving a
// message of the protocol". Timers (SetTimer/OnTimer) exist for
// protocols that must survive mid-run crashes: timeout-and-retry is the
// only way to make progress past a peer that died mid-handshake. A
// protocol that never arms a timer behaves exactly as before.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "celect/obs/phase.h"
#include "celect/sim/time.h"
#include "celect/sim/types.h"
#include "celect/wire/packet.h"

namespace celect::sim {

// A pre-resolved protocol counter: the name plus (when the context
// supports interning) a dense slot into the run's Metrics. Protocols
// resolve once via Context::ResolveCounter and record through the ref —
// the per-event path is then an array bump, not a string lookup. A ref
// from a context that doesn't intern keeps slot == kUnresolved and falls
// back to the string path, so the same protocol code runs everywhere.
struct CounterRef {
  static constexpr std::uint32_t kUnresolved = 0xFFFFFFFFu;
  std::string_view name;
  std::uint32_t slot = kUnresolved;
};

class Context {
 public:
  virtual ~Context() = default;

  // Internal address — for debugging/tracing only; protocols must not
  // base decisions on it (identities are the only comparable values).
  virtual NodeId address() const = 0;
  virtual Id id() const = 0;
  virtual std::uint32_t n() const = 0;
  virtual Time now() const = 0;
  virtual bool has_sense_of_direction() const = 0;

  // Sends on a specific port. Under sense of direction, port d is the
  // edge to the node at Hamiltonian distance d, so this doubles as
  // "send to i[d]".
  virtual void Send(Port port, wire::Packet p) = 0;

  // Sends on some untraversed port (mapper policy — possibly adversarial
  // — picks which). Returns the port used, or nullopt when every
  // incident edge is already traversed.
  virtual std::optional<Port> SendFresh(wire::Packet p) = 0;

  // Sends on all N-1 ports (protocol D's broadcast).
  virtual void SendAll(wire::Packet p) = 0;

  // Arms a one-shot timer firing `delay` from now via Process::OnTimer.
  // Returns a handle for CancelTimer. A timer on a node that crashes
  // before it fires is swallowed.
  virtual TimerId SetTimer(Time delay) = 0;

  // Cancels a timer armed by this node. Cancelling an already-fired or
  // already-cancelled timer is a no-op.
  virtual void CancelTimer(TimerId timer) = 0;

  // Announces this node as the leader. The runtime records every
  // declaration; the single-leader invariant is checked by callers.
  virtual void DeclareLeader() = 0;

  // Records a lease lifecycle event (granted/renewed/expired/revoked)
  // into the run's per-cause lease counters. Default: ignore — only the
  // asynchronous runtime accounts leases; scripted and synchronous
  // contexts have no lease layer.
  virtual void RecordLease(LeaseEvent event) { (void)event; }

  // Protocol-specific counters surfaced in RunResult (e.g. max forwarded
  // messages in flight). Monotonic add.
  virtual void AddCounter(std::string_view name, std::int64_t delta) = 0;
  // Keeps the running max of a protocol-specific gauge.
  virtual void MaxCounter(std::string_view name, std::int64_t value) = 0;

  // Resolves a counter name once so per-event records skip the string
  // path. Contexts without a metrics backend keep the default, which
  // returns an unresolved ref — the CounterRef overloads below then
  // forward to the string entry points, preserving behaviour.
  virtual CounterRef ResolveCounter(std::string_view name) {
    return CounterRef{name, CounterRef::kUnresolved};
  }
  virtual void AddCounter(const CounterRef& c, std::int64_t delta) {
    AddCounter(c.name, delta);
  }
  virtual void MaxCounter(const CounterRef& c, std::int64_t value) {
    MaxCounter(c.name, value);
  }

  // Marks the start/end of a protocol phase span (obs/phase.h taxonomy;
  // `level` distinguishes doubling levels). Spans nest; EndPhase closes
  // the innermost open span of the given phase (and anything nested
  // inside it), and is a no-op when none is open, so losing candidates
  // can close defensively. Purely observational — the asynchronous
  // runtime aggregates spans into RunResult::phases and the trace;
  // scripted and synchronous contexts ignore them.
  virtual void BeginPhase(obs::PhaseId phase, std::int64_t level) {
    (void)phase;
    (void)level;
  }
  void BeginPhase(obs::PhaseId phase) { BeginPhase(phase, 0); }
  virtual void EndPhase(obs::PhaseId phase) { (void)phase; }

  std::uint32_t port_count() const { return n() - 1; }
};

// What a protocol instance exposes to the invariant checker
// (analysis/invariants.h). Cheap to build — it is queried after every
// event dispatched to the node.
struct ProtocolObservables {
  // Named per-node gauges that must never decrease over a run: capture
  // levels, phase indices, accept counts. Names must be stable for the
  // lifetime of the node. A node revived by a RejoinEvent restarts from
  // a fresh process, so checkers reset its baselines at revival.
  std::vector<std::pair<const char*, std::int64_t>> monotone;
  // Whether this node has reached a terminal state (leader, killed,
  // captured, passive bystander). nullopt: the protocol makes no claim,
  // and quiescence checks skip the node.
  std::optional<bool> terminated;
  // Set while this node believes it holds the leader lease for `term`,
  // valid until `deadline` (sim time, inclusive). The at-most-one-
  // valid-holder invariant compares claims across live nodes after
  // every event; a claim whose deadline has passed is not a violation —
  // it is an expired lease the holder has not yet noticed.
  struct LeaseClaim {
    std::int64_t term = 0;
    Time deadline = Time::Zero();
  };
  std::optional<LeaseClaim> lease;
};

class Process {
 public:
  virtual ~Process() = default;

  // Spontaneous wakeup (this node is a base node).
  virtual void OnWakeup(Context& ctx) = 0;

  // A packet arrived on `from_port`. Replies go back on the same port.
  virtual void OnMessage(Context& ctx, Port from_port,
                         const wire::Packet& p) = 0;

  // A timer armed via Context::SetTimer fired. Default: ignore (the
  // paper's protocols never arm one).
  virtual void OnTimer(Context& ctx, TimerId timer) {
    (void)ctx;
    (void)timer;
  }

  // The transport suspects the node behind `port` has crashed (its
  // reliability session exhausted a retransmit budget with no ack
  // progress). A *hint*, not an oracle: the peer may merely be slow or
  // partitioned, and may ack again later. Fault-tolerant layers treat
  // it like an early timer — kick their recovery path for that port —
  // while the paper's crash-free protocols ignore it. Only transports
  // with a reliability layer (net/) ever raise it; the in-simulator
  // delivery model has no retransmits and never calls it.
  virtual void OnPeerSuspected(Context& ctx, Port port) {
    (void)ctx;
    (void)port;
  }

  // This node was just revived by a RejoinEvent. Called once, on the
  // *fresh* process instance the runtime built to replace the crashed
  // one — there is no state to recover; the hook exists so churn-aware
  // layers can arm timers or start a quarantine ("grey") period before
  // re-engaging. Default: ignore — the revived node stays passive until
  // a message reaches it, which is exactly the paper's wakeup rule.
  virtual void OnRejoin(Context& ctx) { (void)ctx; }

  // Human-readable snapshot of protocol state, for post-mortems and
  // debugging tools. Optional.
  virtual std::string DescribeState() const { return ""; }

  // Machine-checkable snapshot for the invariant registry. Optional —
  // the default exposes nothing and every invariant that needs it is
  // skipped for this node.
  virtual ProtocolObservables Observe() const { return {}; }
};

// Builds the process for the node with the given address/identity.
struct ProcessInit {
  NodeId address;
  Id id;
  std::uint32_t n;
};

using ProcessFactory =
    std::function<std::unique_ptr<Process>(const ProcessInit&)>;

}  // namespace celect::sim
