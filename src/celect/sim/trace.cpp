#include "celect/sim/trace.h"

#include <sstream>

namespace celect::sim {

void Trace::Record(TraceRecord r) {
  if (!enabled_) return;
  if (records_.size() >= cap_) {
    truncated_ = true;
    ++dropped_;
    return;
  }
  r.seq = next_seq_++;
  records_.push_back(r);
}

const char* ToString(TraceRecord::Kind kind) {
  switch (kind) {
    case TraceRecord::Kind::kSend:
      return "send";
    case TraceRecord::Kind::kDeliver:
      return "recv";
    case TraceRecord::Kind::kWakeup:
      return "wake";
    case TraceRecord::Kind::kLeader:
      return "LEAD";
    case TraceRecord::Kind::kCrash:
      return "CRSH";
    case TraceRecord::Kind::kRejoin:
      return "RJON";
    case TraceRecord::Kind::kDrop:
      return "drop";
    case TraceRecord::Kind::kLoss:
      return "loss";
    case TraceRecord::Kind::kDuplicate:
      return "dupe";
    case TraceRecord::Kind::kTimerSet:
      return "tset";
    case TraceRecord::Kind::kTimerFire:
      return "fire";
    case TraceRecord::Kind::kTimerCancel:
      return "tcxl";
    case TraceRecord::Kind::kPhaseBegin:
      return "pbeg";
    case TraceRecord::Kind::kPhaseEnd:
      return "pend";
  }
  return "?";
}

std::string Trace::ToString(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& r : records_) {
    if (shown++ >= max_lines) {
      os << "... (" << records_.size() - max_lines << " more)\n";
      break;
    }
    os << r.at.ToString() << " " << celect::sim::ToString(r.kind)
       << " node=" << r.node << " peer=" << r.peer << " port=" << r.port
       << " type=" << r.type << " clock=" << r.clock;
    if (r.mid != 0) os << " mid=" << r.mid;
    if (r.phase != obs::PhaseId::kNone) {
      os << " phase=" << obs::PhaseKey(r.phase, r.phase_level);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace celect::sim
