#include "celect/sim/trace.h"

#include <sstream>

namespace celect::sim {

void Trace::Record(TraceRecord r) {
  if (!enabled_) return;
  if (records_.size() >= cap_) {
    truncated_ = true;
    return;
  }
  r.seq = next_seq_++;
  records_.push_back(r);
}

std::string Trace::ToString(std::size_t max_lines) const {
  std::ostringstream os;
  std::size_t shown = 0;
  for (const auto& r : records_) {
    if (shown++ >= max_lines) {
      os << "... (" << records_.size() - max_lines << " more)\n";
      break;
    }
    const char* kind = "?";
    switch (r.kind) {
      case TraceRecord::Kind::kSend:
        kind = "send";
        break;
      case TraceRecord::Kind::kDeliver:
        kind = "recv";
        break;
      case TraceRecord::Kind::kWakeup:
        kind = "wake";
        break;
      case TraceRecord::Kind::kLeader:
        kind = "LEAD";
        break;
      case TraceRecord::Kind::kCrash:
        kind = "CRSH";
        break;
      case TraceRecord::Kind::kDrop:
        kind = "drop";
        break;
      case TraceRecord::Kind::kLoss:
        kind = "loss";
        break;
      case TraceRecord::Kind::kDuplicate:
        kind = "dupe";
        break;
      case TraceRecord::Kind::kTimerSet:
        kind = "tset";
        break;
      case TraceRecord::Kind::kTimerFire:
        kind = "fire";
        break;
    }
    os << r.at.ToString() << " " << kind << " node=" << r.node
       << " peer=" << r.peer << " port=" << r.port << " type=" << r.type
       << "\n";
  }
  return os.str();
}

}  // namespace celect::sim
