#include "celect/sim/delay_model.h"

#include "celect/util/check.h"

namespace celect::sim {

RandomDelayModel::RandomDelayModel(std::uint64_t seed, double min_transit,
                                   double max_spacing)
    : rng_(seed), min_transit_(min_transit), max_spacing_(max_spacing) {
  CELECT_CHECK(min_transit >= 0.0 && min_transit < 1.0);
  CELECT_CHECK(max_spacing >= 0.0 && max_spacing <= 1.0);
}

DelayDecision RandomDelayModel::Decide(const MessageInfo&) {
  double transit =
      min_transit_ + (1.0 - min_transit_) * rng_.NextPositiveDouble();
  double spacing = max_spacing_ * rng_.NextDouble();
  return {Time::FromDouble(transit), Time::FromDouble(spacing)};
}

std::unique_ptr<DelayModel> MakeUnitDelay() {
  return std::make_unique<UnitDelayModel>();
}

std::unique_ptr<DelayModel> MakeEagerDelay() {
  return std::make_unique<EagerDelayModel>();
}

std::unique_ptr<DelayModel> MakeRandomDelay(std::uint64_t seed) {
  return std::make_unique<RandomDelayModel>(seed);
}

}  // namespace celect::sim
