// Wakeup plans: which nodes are base nodes and when they wake.
//
// The paper's complexity claims are sensitive to the wakeup pattern —
// protocol A is Θ(N)-time under a staggered chain but O(k + N/k) when
// wakeups are close together, and protocol G's whole purpose is to
// neutralise adversarial staggering. Plans are explicit data so tests
// and benches can name the pattern they exercise.
#pragma once

#include <utility>
#include <vector>

#include "celect/sim/time.h"
#include "celect/sim/types.h"
#include "celect/util/rng.h"

namespace celect::sim {

struct WakeupPlan {
  // (node, wakeup time) — base nodes only; everyone else is passive.
  std::vector<std::pair<NodeId, Time>> wakeups;

  std::size_t base_count() const { return wakeups.size(); }
  Time LastWakeup() const;
};

// Every node is a base node, all waking at time zero.
WakeupPlan WakeAllAtZero(std::uint32_t n);

// A single base node (trivial election).
WakeupPlan WakeSingle(std::uint32_t n, NodeId node);

// `count` random base nodes, waking at random times in [0, window].
WakeupPlan WakeRandomSubset(std::uint32_t n, std::uint32_t count,
                            Time window, Rng& rng);

// The §3 pathology for protocol A (ring positions with ascending
// identities): node at ring position p wakes at p·spacing, so each node
// wakes just before its predecessor's capture arrives and every capture
// by a smaller identity is ignored. spacing slightly below the unit
// delay reproduces the Θ(N) chain.
WakeupPlan WakeStaggeredChain(std::uint32_t n, Time spacing);

// First `count` nodes (by address) wake at zero — a clustered base set.
WakeupPlan WakePrefixAtZero(std::uint32_t n, std::uint32_t count);

// Every stride-th node (ring positions 0, stride, 2·stride, ...) wakes at
// zero. Against protocol A with segment length k = stride this is the
// worst case for the second phase: all N/k candidates survive phase one
// and the strided elect round costs Θ(N²/k²) messages.
WakeupPlan WakeEveryKth(std::uint32_t n, std::uint32_t stride);

}  // namespace celect::sim
