// Shared identifier types for the simulator.
#pragma once

#include <cstdint>

namespace celect::sim {

// Internal node address, 0..N-1. Protocol code never compares addresses;
// it compares identities (Id). Addresses double as ring positions for
// sense-of-direction networks.
using NodeId = std::uint32_t;

// Processor identity — the unique value protocols contest with.
using Id = std::int64_t;

// Local port number at a node, 1..N-1 (0 is invalid). Under sense of
// direction the port number *is* the Hamiltonian distance to the
// neighbour; without it, port numbers are arbitrary labels.
using Port = std::uint32_t;

inline constexpr Port kInvalidPort = 0;

// Handle for a timer armed via Context::SetTimer. Ids are unique per run
// and never reused; 0 is never a live timer.
using TimerId = std::uint64_t;

inline constexpr TimerId kInvalidTimer = 0;

// Why a lease-event counter ticked (Context::RecordLease). Mirrors
// DropCause: a per-cause breakdown of the lease lifecycle so chaos
// tables can tell a healthy renewal cadence from an expiry storm.
enum class LeaseEvent {
  kGranted,  // a new lease was acquired (quorum acked a grant)
  kRenewed,  // the holder extended its lease before expiry
  kExpired,  // a lease deadline passed without renewal
  kRevoked,  // the holder gave the lease up voluntarily (step-down)
};

inline constexpr int kLeaseEventCount = 4;

}  // namespace celect::sim
