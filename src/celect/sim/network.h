// Network configuration: everything about the environment a protocol
// runs in, separate from the protocol itself.
#pragma once

#include <memory>
#include <vector>

#include "celect/sim/delay_model.h"
#include "celect/sim/fault.h"
#include "celect/sim/port_mapper.h"
#include "celect/sim/types.h"
#include "celect/sim/wakeup_policy.h"
#include "celect/util/rng.h"

namespace celect::sim {

struct NetworkConfig {
  std::uint32_t n = 0;
  // identities[address] — unique values; protocols only ever compare
  // these. Empty means "ascending" (address + 1).
  std::vector<Id> identities;
  std::unique_ptr<PortMapper> mapper;
  std::unique_ptr<DelayModel> delays;
  WakeupPlan wakeup;
  // failed[address]: *initially*-crashed nodes — they never wake and
  // every message to them vanishes. Empty means no failures. A node
  // listed here may not appear in the wakeup plan (a dead node cannot be
  // a base node; ValidateConfig CHECK-fails on that).
  std::vector<bool> failed;
  // Mid-run faults: crashes at adversarially chosen moments plus lossy
  // links. Distinct from `failed` above — a node crashed mid-run by the
  // plan may legally be a base node (it lived, woke, participated, then
  // died), so fault plans are validated by ValidateFaultPlan, not by the
  // base-node rule. Empty plan means a fault-free run.
  FaultPlan faults;
};

// Identity assignments.
std::vector<Id> IdentitiesAscending(std::uint32_t n);      // addr + 1
std::vector<Id> IdentitiesRandom(std::uint32_t n, Rng& rng);
// Sparse identities (spread over a large range) — exercises the
// assumption that protocols compare, never index by, identity.
std::vector<Id> IdentitiesSparse(std::uint32_t n, Rng& rng);

// Validates a config (sizes, uniqueness of identities, no failed base
// nodes) — CHECK-fails on structural errors; call before Runtime
// construction in tests. The embedded FaultPlan is validated too, under
// its own rules (see ValidateFaultPlan in fault.h: mid-run crash victims
// may be base nodes).
void ValidateConfig(const NetworkConfig& config);

}  // namespace celect::sim
