// FIFO directed-link bookkeeping.
//
// Links are bidirectional in the model, but FIFO order is per direction;
// LinkTable tracks, for each directed pair that has actually carried
// traffic, the arrival time of the last message and the count of messages
// sent, and computes arrival times that respect FIFO and the delay
// model's spacing choices. Storage is a hash map so memory is
// O(messages), not O(N²).
//
// When a FaultPlan enables link faults, Admit draws from a dedicated
// seeded RNG to decide, per message, whether it is lost (never arrives;
// FIFO backlog unaffected), duplicated (a second copy arrives later, in
// FIFO order), or reordered (arrives at send_time + transit even if that
// overtakes the backlog — still within the one-unit delay bound). With
// faults disabled no RNG is drawn and behaviour is bit-identical to the
// fault-free simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "celect/sim/delay_model.h"
#include "celect/sim/fault.h"
#include "celect/sim/time.h"
#include "celect/sim/types.h"
#include "celect/util/rng.h"

namespace celect::sim {

// The outcome of admitting one message onto a link.
struct Admission {
  bool lost = false;       // injected loss: nothing will arrive
  bool reordered = false;  // arrival bypassed the FIFO backlog
  Time arrival;            // valid when !lost
  // Arrival of the injected duplicate copy, if one was scheduled.
  std::optional<Time> duplicate_arrival;
};

class LinkTable {
 public:
  explicit LinkTable(std::uint32_t n) : n_(n) {}

  // Turns on per-message fault draws with the given rates and RNG seed.
  void EnableFaults(const LinkFaultProfile& profile, std::uint64_t seed);

  // Computes the arrival time for a message sent at `send_time` from
  // `from` to `to` with the given delay decision, updates FIFO state, and
  // returns the arrival time. CHECKs that the result never reorders the
  // link. Bypasses fault injection — the deterministic baseline path.
  Time Admit(NodeId from, NodeId to, Time send_time,
             const DelayDecision& d);

  // Admit with fault draws (loss / duplication / reordering). Equivalent
  // to Admit when faults are disabled.
  Admission AdmitWithFaults(NodeId from, NodeId to, Time send_time,
                            const DelayDecision& d);

  // Messages sent so far on the directed link from→to (lost ones
  // included — they were sent and paid for).
  std::uint64_t SentCount(NodeId from, NodeId to) const;

  // Arrival time of the most recent FIFO-ordered message on from→to
  // (Zero if none).
  Time LastArrival(NodeId from, NodeId to) const;

  // The runtime reports each delivery so in-flight counts stay accurate.
  // Lost messages never arrive and must not be reported.
  void NotifyDelivered(NodeId from, NodeId to);

  // The largest per-directed-link message count seen (congestion metric).
  std::uint64_t MaxLinkLoad() const { return max_load_; }

  // The largest number of messages simultaneously in flight on one
  // directed link — the congestion the Ɛ throttle bounds (paper §4: a
  // node may otherwise have Θ(N) forwarded messages serialised on its
  // owner link).
  std::uint64_t MaxLinkInflight() const { return max_inflight_; }

 private:
  struct State {
    Time last_arrival = Time::Zero();
    std::uint64_t sent = 0;
    std::uint64_t inflight = 0;
  };

  std::uint64_t Key(NodeId from, NodeId to) const {
    return static_cast<std::uint64_t>(from) * n_ + to;
  }

  // The FIFO-respecting admission core shared by both entry points.
  Time AdmitOrdered(State& s, Time send_time, const DelayDecision& d);

  std::uint32_t n_;
  std::unordered_map<std::uint64_t, State> state_;
  std::uint64_t max_load_ = 0;
  std::uint64_t max_inflight_ = 0;

  LinkFaultProfile faults_;
  bool faults_enabled_ = false;
  Rng fault_rng_;
};

}  // namespace celect::sim
