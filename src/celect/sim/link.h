// FIFO directed-link bookkeeping.
//
// Links are bidirectional in the model, but FIFO order is per direction;
// LinkTable tracks, for each directed pair that has actually carried
// traffic, the arrival time of the last message and the count of messages
// sent, and computes arrival times that respect FIFO and the delay
// model's spacing choices.
//
// Storage is probed on every send, so it is hot-path critical. Two modes:
//
//   * dense (N <= kDenseMaxN): a flat N x N array of 16-byte States,
//     allocated lazily on first traffic — one indexed load per send, no
//     hashing. 4096 nodes tops out at 256 MB, the deliberate ceiling.
//   * sparse (large N): a power-of-two open-addressing table with linear
//     probing (key = from * N + to; 0 is a natural empty sentinel since
//     from == to never carries traffic). Memory stays O(links actually
//     used) — a million-node protocol-C run touches O(N log N) pairs, not
//     N².
//
// When a FaultPlan enables link faults, Admit draws from a dedicated
// seeded RNG to decide, per message, whether it is lost (never arrives;
// FIFO backlog unaffected), duplicated (a second copy arrives later, in
// FIFO order), or reordered (arrives at send_time + transit even if that
// overtakes the backlog — still within the one-unit delay bound). With
// faults disabled no RNG is drawn and behaviour is bit-identical to the
// fault-free simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "celect/sim/delay_model.h"
#include "celect/sim/fault.h"
#include "celect/sim/time.h"
#include "celect/sim/types.h"
#include "celect/util/rng.h"

namespace celect::sim {

// The outcome of admitting one message onto a link.
struct Admission {
  bool lost = false;       // injected loss: nothing will arrive
  bool reordered = false;  // arrival bypassed the FIFO backlog
  Time arrival;            // valid when !lost
  // Arrival of the injected duplicate copy, if one was scheduled.
  std::optional<Time> duplicate_arrival;
};

class LinkTable {
 public:
  // Largest N served by the dense per-pair array (N² x 16 B = 256 MB);
  // beyond it the open-addressing table keeps memory O(used links).
  static constexpr std::uint32_t kDenseMaxN = 4096;

  // Opaque handle to one directed link's state from Touch(). Valid only
  // until the next mutating call on a *different* pair (sparse growth
  // rehashes) — use it immediately, don't store it.
  class LinkRef {
   private:
    friend class LinkTable;
    void* p = nullptr;
  };

  explicit LinkTable(std::uint32_t n) : n_(n) {}

  // Turns on per-message fault draws with the given rates and RNG seed.
  void EnableFaults(const LinkFaultProfile& profile, std::uint64_t seed);

  // Computes the arrival time for a message sent at `send_time` from
  // `from` to `to` with the given delay decision, updates FIFO state, and
  // returns the arrival time. CHECKs that the result never reorders the
  // link. Bypasses fault injection — the deterministic baseline path.
  Time Admit(NodeId from, NodeId to, Time send_time,
             const DelayDecision& d);

  // Admit with fault draws (loss / duplication / reordering). Equivalent
  // to Admit when faults are disabled.
  Admission AdmitWithFaults(NodeId from, NodeId to, Time send_time,
                            const DelayDecision& d);

  // One-probe send path: finds (creating if absent) the from→to state
  // once; the handle then serves both the delay model's sent-count query
  // and the admission without re-probing the table. A fresh entry reads
  // as sent == 0, exactly like the two-probe path.
  LinkRef Touch(NodeId from, NodeId to);
  std::uint64_t SentCount(const LinkRef& l) const {
    return static_cast<const State*>(l.p)->sent;
  }
  Admission AdmitWithFaults(const LinkRef& l, NodeId from, NodeId to,
                            Time send_time, const DelayDecision& d);

  // Messages sent so far on the directed link from→to (lost ones
  // included — they were sent and paid for).
  std::uint64_t SentCount(NodeId from, NodeId to) const;

  // Arrival time of the most recent FIFO-ordered message on from→to
  // (Zero if none).
  Time LastArrival(NodeId from, NodeId to) const;

  // The runtime reports each delivery so in-flight counts stay accurate.
  // Lost messages never arrive and must not be reported.
  void NotifyDelivered(NodeId from, NodeId to);

  // The largest per-directed-link message count seen (congestion metric).
  std::uint64_t MaxLinkLoad() const { return max_load_; }

  // The largest number of messages simultaneously in flight on one
  // directed link — the congestion the Ɛ throttle bounds (paper §4: a
  // node may otherwise have Θ(N) forwarded messages serialised on its
  // owner link).
  std::uint64_t MaxLinkInflight() const { return max_inflight_; }

 private:
  struct State {
    Time last_arrival = Time::Zero();
    std::uint32_t sent = 0;
    std::uint32_t inflight = 0;
  };
  static_assert(sizeof(State) == 16);

  struct FlatEntry {
    std::uint64_t key = 0;  // 0 = empty (from == to carries no traffic)
    State s;
  };

  std::uint64_t Key(NodeId from, NodeId to) const {
    return static_cast<std::uint64_t>(from) * n_ + to;
  }

  bool dense() const { return n_ <= kDenseMaxN; }

  // Find-or-insert (mutating path; allocates storage lazily).
  State& Obtain(NodeId from, NodeId to);
  // Lookup only; nullptr when the pair never carried traffic.
  const State* Find(NodeId from, NodeId to) const;
  void GrowSparse();

  // The FIFO-respecting admission core shared by both entry points.
  Time AdmitOrdered(State& s, Time send_time, const DelayDecision& d);

  std::uint32_t n_;
  // Dense mode: n_ x n_ States, indexed by Key(); empty until first use.
  std::vector<State> dense_;
  // Sparse mode: open addressing, power-of-two capacity, linear probing.
  std::vector<FlatEntry> sparse_;
  std::size_t sparse_used_ = 0;
  std::uint64_t max_load_ = 0;
  std::uint64_t max_inflight_ = 0;

  LinkFaultProfile faults_;
  bool faults_enabled_ = false;
  Rng fault_rng_;
};

}  // namespace celect::sim
