// FIFO directed-link bookkeeping.
//
// Links are bidirectional in the model, but FIFO order is per direction;
// LinkTable tracks, for each directed pair that has actually carried
// traffic, the arrival time of the last message and the count of messages
// sent, and computes arrival times that respect FIFO and the delay
// model's spacing choices. Storage is a hash map so memory is
// O(messages), not O(N²).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "celect/sim/delay_model.h"
#include "celect/sim/time.h"
#include "celect/sim/types.h"

namespace celect::sim {

class LinkTable {
 public:
  explicit LinkTable(std::uint32_t n) : n_(n) {}

  // Computes the arrival time for a message sent at `send_time` from
  // `from` to `to` with the given delay decision, updates FIFO state, and
  // returns the arrival time. CHECKs that the result never reorders the
  // link.
  Time Admit(NodeId from, NodeId to, Time send_time,
             const DelayDecision& d);

  // Messages sent so far on the directed link from→to.
  std::uint64_t SentCount(NodeId from, NodeId to) const;

  // Arrival time of the most recent message on from→to (Zero if none).
  Time LastArrival(NodeId from, NodeId to) const;

  // The runtime reports each delivery so in-flight counts stay accurate.
  void NotifyDelivered(NodeId from, NodeId to);

  // The largest per-directed-link message count seen (congestion metric).
  std::uint64_t MaxLinkLoad() const { return max_load_; }

  // The largest number of messages simultaneously in flight on one
  // directed link — the congestion the Ɛ throttle bounds (paper §4: a
  // node may otherwise have Θ(N) forwarded messages serialised on its
  // owner link).
  std::uint64_t MaxLinkInflight() const { return max_inflight_; }

 private:
  struct State {
    Time last_arrival = Time::Zero();
    std::uint64_t sent = 0;
    std::uint64_t inflight = 0;
  };

  std::uint64_t Key(NodeId from, NodeId to) const {
    return static_cast<std::uint64_t>(from) * n_ + to;
  }

  std::uint32_t n_;
  std::unordered_map<std::uint64_t, State> state_;
  std::uint64_t max_load_ = 0;
  std::uint64_t max_inflight_ = 0;
};

}  // namespace celect::sim
