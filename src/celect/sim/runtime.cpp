#include "celect/sim/runtime.h"

#include <algorithm>
#include <chrono>
#include <iostream>
#include <iterator>
#include <limits>
#include <string>
#include <unordered_map>

#include "celect/util/check.h"
#include "celect/wire/packet_codec.h"

namespace celect::sim {

namespace {

// Monotonic host-clock read backing the wall_ns / events_per_sec
// throughput accounting. Wall time is excluded from FingerprintResult
// and never reaches traces, so this is the one sanctioned clock read
// in the deterministic core.
std::uint64_t WallClockNowNs() {
  // celect-lint: allow(no-wall-clock) throughput probe, not fingerprinted
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace

NodeId EventTarget(const EventBody& body) {
  return std::visit(
      [](const auto& b) -> NodeId {
        using T = std::decay_t<decltype(b)>;
        if constexpr (std::is_same_v<T, DeliveryEvent>) {
          return b.to;
        } else {
          return b.node;
        }
      },
      body);
}

// Context handed to a process for the duration of one event dispatch.
class Runtime::ContextImpl : public Context {
 public:
  ContextImpl(Runtime& rt, NodeId node) : rt_(rt), node_(node) {}

  NodeId address() const override { return node_; }
  Id id() const override { return rt_.ids_[node_]; }
  std::uint32_t n() const override { return rt_.config_.n; }
  Time now() const override { return rt_.now_; }
  bool has_sense_of_direction() const override {
    return rt_.config_.mapper->HasSenseOfDirection();
  }

  void Send(Port port, wire::Packet p) override {
    rt_.SendFrom(node_, port, std::move(p));
  }

  std::optional<Port> SendFresh(wire::Packet p) override {
    auto port = rt_.config_.mapper->FreshPort(node_);
    if (!port) return std::nullopt;
    rt_.SendFrom(node_, *port, std::move(p));
    return port;
  }

  void SendAll(wire::Packet p) override {
    for (Port port = 1; port <= n() - 1; ++port) {
      rt_.SendFrom(node_, port, p);
    }
  }

  TimerId SetTimer(Time delay) override {
    return rt_.ScheduleTimer(node_, delay);
  }

  void CancelTimer(TimerId timer) override {
    rt_.CancelTimer(node_, timer);
  }

  void DeclareLeader() override {
    rt_.metrics_.RecordLeader(node_, id(), rt_.now_);
    rt_.TraceEvent(TraceRecord::Kind::kLeader, node_, node_, kInvalidPort,
                   0, 0);
    if (rt_.options_.stop_on_leader) rt_.stop_requested_ = true;
  }

  void RecordLease(LeaseEvent event) override {
    rt_.metrics_.RecordLeaseEvent(event);
  }

  void BeginPhase(obs::PhaseId phase, std::int64_t level) override {
    rt_.BeginPhase(node_, phase, level);
  }

  void EndPhase(obs::PhaseId phase) override { rt_.EndPhase(node_, phase); }

  void AddCounter(std::string_view name, std::int64_t delta) override {
    rt_.metrics_.AddCounter(name, delta);
  }

  void MaxCounter(std::string_view name, std::int64_t value) override {
    rt_.metrics_.MaxCounter(name, value);
  }

  CounterRef ResolveCounter(std::string_view name) override {
    return CounterRef{name, rt_.metrics_.InternCounter(name)};
  }

  void AddCounter(const CounterRef& c, std::int64_t delta) override {
    if (c.slot == CounterRef::kUnresolved) {
      rt_.metrics_.AddCounter(c.name, delta);
    } else {
      rt_.metrics_.AddCounter(c.slot, delta);
    }
  }

  void MaxCounter(const CounterRef& c, std::int64_t value) override {
    if (c.slot == CounterRef::kUnresolved) {
      rt_.metrics_.MaxCounter(c.name, value);
    } else {
      rt_.metrics_.MaxCounter(c.slot, value);
    }
  }

 private:
  Runtime& rt_;
  NodeId node_;
};

Runtime::Runtime(NetworkConfig config, const ProcessFactory& factory,
                 RuntimeOptions options)
    : config_(std::move(config)),
      options_(options),
      factory_(factory),
      queue_(options.use_reference_queue),
      links_(config_.n),
      trace_(options.enable_trace, options.trace_cap) {
  CELECT_CHECK(config_.n >= 2);
  CELECT_CHECK(config_.mapper && config_.delays);
  ids_ = config_.identities.empty() ? IdentitiesAscending(config_.n)
                                    : config_.identities;
  CELECT_CHECK(ids_.size() == config_.n);
  processes_.reserve(config_.n);
  for (NodeId i = 0; i < config_.n; ++i) {
    processes_.push_back(factory(ProcessInit{i, ids_[i], config_.n}));
    CELECT_CHECK(processes_.back() != nullptr);
  }
  failed_ = config_.failed.empty() ? std::vector<bool>(config_.n, false)
                                   : config_.failed;
  CELECT_CHECK(failed_.size() == config_.n);
  lamport_.assign(config_.n, 0);
  phase_stack_.resize(config_.n);
  if (options_.enable_telemetry) {
    telemetry_ = std::make_unique<obs::Telemetry>();
    pending_deliveries_.assign(config_.n, 0);
  }
  pending_rejoins_.assign(config_.n, 0);
  if (!config_.faults.Empty()) {
    ValidateFaultPlan(config_.faults, config_.n);
    injector_ = std::make_unique<FaultInjector>(config_.faults, config_.n);
    for (const auto& [node, at] : injector_->TimedCrashes()) {
      queue_.Push(at, CrashEvent{node});
    }
    for (const auto& [node, at] : injector_->TimedRejoins()) {
      queue_.Push(at, RejoinEvent{node});
      ++pending_rejoins_[node];
    }
    if (config_.faults.link.Any()) {
      // Stream-split off the plan seed so link faults never perturb the
      // delay/identity RNG streams.
      links_.EnableFaults(config_.faults.link, config_.faults.seed);
    }
  }
  for (const auto& [node, at] : config_.wakeup.wakeups) {
    queue_.Push(at, WakeupEvent{node});
  }
}

Runtime::~Runtime() = default;

Process& Runtime::process(NodeId address) {
  CELECT_CHECK(address < processes_.size());
  return *processes_[address];
}

TimerId Runtime::ScheduleTimer(NodeId node, Time delay) {
  CELECT_CHECK(delay >= Time::Zero()) << "timer delay must be non-negative";
  TimerId id = ++next_timer_;
  const EventTicket ticket =
      queue_.PushTicketed(now_ + delay, TimerEvent{node, id});
  active_timers_.emplace(id, TimerRec{node, ticket});
  metrics_.RecordTimerSet();
  TraceEvent(TraceRecord::Kind::kTimerSet, node, node, kInvalidPort, 0, id);
  return id;
}

void Runtime::CancelTimer(NodeId node, TimerId timer) {
  auto it = active_timers_.find(timer);
  if (it == active_timers_.end()) return;  // fired or cancelled
  // Tombstone the queued event right away: it still pops (and is
  // discarded below in Dispatch), but no longer counts as pending.
  queue_.Cancel(it->second.ticket);
  active_timers_.erase(it);
  metrics_.RecordTimerCancelled();
  TraceEvent(TraceRecord::Kind::kTimerCancel, node, node, kInvalidPort, 0,
             timer);
}

void Runtime::MarkCrashed(NodeId node) {
  if (failed_[node]) return;  // already dead; triggers fire at most once
  failed_[node] = true;
  metrics_.RecordCrash();
  TraceEvent(TraceRecord::Kind::kCrash, node, node, kInvalidPort, 0, 0);
  // The node's timers die with it. Externally identical to the old
  // "discard at dispatch" rule (no metrics either way), but necessary
  // for churn: were a pre-crash timer left live, it would fire into the
  // fresh process a rejoin installs.
  // celect-lint: allow(no-unordered-iteration) erase-only; order-free
  for (auto it = active_timers_.begin(); it != active_timers_.end();) {
    if (it->second.node == node) {
      queue_.Cancel(it->second.ticket);
      it = active_timers_.erase(it);
    } else {
      ++it;
    }
  }
  // A dead node's spans end at its death, not at quiescence.
  while (!phase_stack_[node].empty()) CloseTopPhase(node);
}

void Runtime::MarkRejoined(NodeId node) {
  if (!failed_[node]) return;  // crash trigger never fired: rejoin no-ops
  failed_[node] = false;
  // Crash recovery without stable storage: the node restarts as a fresh
  // process instance; nothing of its previous life survives.
  processes_[node] = factory_(ProcessInit{node, ids_[node], config_.n});
  CELECT_CHECK(processes_[node] != nullptr);
  metrics_.RecordRejoin();
  ++lamport_[node];
  TraceEvent(TraceRecord::Kind::kRejoin, node, node, kInvalidPort, 0, 0);
  ContextImpl ctx(*this, node);
  processes_[node]->OnRejoin(ctx);
}

void Runtime::TraceEvent(TraceRecord::Kind kind, NodeId node, NodeId peer,
                         Port port, std::uint16_t type, std::uint64_t mid) {
  if (!trace_.enabled()) return;
  TraceRecord r{kind, now_, node, peer, port, type, 0};
  r.clock = lamport_[node];
  r.mid = mid;
  if (!phase_stack_[node].empty()) {
    const PhaseFrame& top = phase_stack_[node].back();
    r.phase = top.id;
    r.phase_level = top.level;
  }
  trace_.Record(r);
}

void Runtime::BeginPhase(NodeId node, obs::PhaseId phase,
                         std::int64_t level) {
  if (phase == obs::PhaseId::kNone) return;
  obs::PhaseAgg& agg =
      phase_agg_[{static_cast<std::uint16_t>(phase), level}];
  phase_stack_[node].push_back(
      PhaseFrame{phase, level, now_, 0, &agg});
  // After the push the new span is top-of-stack, so TraceEvent stamps
  // the record with the span being opened.
  TraceEvent(TraceRecord::Kind::kPhaseBegin, node, node, kInvalidPort, 0,
             0);
}

void Runtime::EndPhase(NodeId node, obs::PhaseId phase) {
  auto& stack = phase_stack_[node];
  std::size_t keep = stack.size();
  while (keep > 0 && stack[keep - 1].id != phase) --keep;
  if (keep == 0) return;  // no open span of this phase: defensive no-op
  // Close the matching span and anything still nested inside it.
  while (stack.size() >= keep) CloseTopPhase(node);
}

void Runtime::CloseTopPhase(NodeId node) {
  auto& stack = phase_stack_[node];
  if (stack.empty()) return;
  // Record while the frame is still top-of-stack so the kPhaseEnd record
  // carries the span's own phase.
  TraceEvent(TraceRecord::Kind::kPhaseEnd, node, node, kInvalidPort, 0, 0);
  const PhaseFrame f = stack.back();
  stack.pop_back();
  f.agg->spans += 1;
  f.agg->ticks += (now_ - f.since).ticks();
  if (telemetry_ && (f.id == obs::PhaseId::kCapture1 ||
                     f.id == obs::PhaseId::kCapture2)) {
    telemetry_->capture_width.Add(f.messages);
  }
}

void Runtime::SendFrom(NodeId from, Port port, wire::Packet packet) {
  // A node that crashed earlier in this very handler sends nothing more.
  if (failed_[from]) return;
  CELECT_CHECK(port >= 1 && port <= config_.n - 1)
      << "node " << from << " sent on invalid port " << port;
  PortMapper& mapper = *config_.mapper;
  NodeId to = mapper.Resolve(from, port);
  CELECT_DCHECK(to != from);
  mapper.MarkTraversed(from, port);

  std::size_t bytes;
  if (options_.serialize_packets) {
    // Round-trip through the codec: catches any packet the wire format
    // cannot represent, and measures true on-the-wire size.
    auto encoded = wire::Encode(packet);
    bytes = encoded.size();
    auto decoded = wire::Decode(encoded);
    CELECT_CHECK(decoded.has_value() && *decoded == packet)
        << "codec round-trip failed for " << wire::ToString(packet);
  } else {
    bytes = wire::EncodedSize(packet);
  }
  metrics_.RecordSend(packet.type, bytes);
  // Every send is a local Lamport event and mints a fresh message uid;
  // the kDeliver/kDrop/kLoss/kDuplicate outcomes all carry the same uid,
  // which is what makes trace flows pair exactly.
  ++lamport_[from];
  const std::uint64_t mid = ++next_mid_;
  TraceEvent(TraceRecord::Kind::kSend, from, to, port, packet.type, mid);
  if (!phase_stack_[from].empty()) {
    PhaseFrame& top = phase_stack_[from].back();
    ++top.messages;
    ++top.agg->messages;
  }

  // A send-count crash trigger fires *after* this send completes: the
  // message still goes out, later sends in the same handler do not.
  const bool crash_sender = injector_ && injector_->NoteSend(from);

  if (failed_[to]) {
    metrics_.RecordDrop(DropCause::kCrashedDestination);
    TraceEvent(TraceRecord::Kind::kDrop, to, from, kInvalidPort,
               packet.type, mid);
  } else {
    // One table probe serves both the delay model's sent-count input and
    // the admission — the second lookup was ~10% of hot-path time.
    const LinkTable::LinkRef link = links_.Touch(from, to);
    const MessageInfo info{from, to, now_, links_.SentCount(link), &packet};
    DelayDecision d = config_.delays->Decide(info);
    Admission adm = links_.AdmitWithFaults(link, from, to, now_, d);
    if (adm.lost) {
      metrics_.RecordDrop(DropCause::kInjectedLoss);
      TraceEvent(TraceRecord::Kind::kLoss, to, from, kInvalidPort,
                 packet.type, mid);
    } else {
      if (adm.reordered) metrics_.RecordReorder();
      Port arrival_port = mapper.PortToward(to, from);
      const auto mid32 = static_cast<std::uint32_t>(mid);
      const auto send_clock = static_cast<std::uint32_t>(lamport_[from]);
      auto latency = [&](Time arrival) {
        constexpr std::int64_t kCeiling =
            std::numeric_limits<std::uint32_t>::max();
        const std::int64_t ticks = (arrival - now_).ticks();
        // The 32-bit field clips at ~4096 units of FIFO backlog. Rare,
        // but silence would quietly corrupt the latency histogram — make
        // it loud via counters["sim.latency_saturated"].
        if (ticks > kCeiling) metrics_.RecordLatencySaturated();
        return static_cast<std::uint32_t>(std::min(ticks, kCeiling));
      };
      if (adm.duplicate_arrival) {
        metrics_.RecordDuplicate();
        TraceEvent(TraceRecord::Kind::kDuplicate, to, from, kInvalidPort,
                   packet.type, mid);
        queue_.Push(*adm.duplicate_arrival,
                    DeliveryEvent{from, to, arrival_port, mid32, send_clock,
                                  latency(*adm.duplicate_arrival), packet});
        ++deliveries_inflight_;
        if (telemetry_) ++pending_deliveries_[to];
      }
      queue_.Push(adm.arrival,
                  DeliveryEvent{from, to, arrival_port, mid32, send_clock,
                                latency(adm.arrival), std::move(packet)});
      ++deliveries_inflight_;
      if (telemetry_) ++pending_deliveries_[to];
    }
  }
  if (crash_sender) MarkCrashed(from);
}

void Runtime::Dispatch(const Event& e) {
  // A cancelled (or crashed-node) timer still pops from the queue; it
  // must not advance the clock, or quiesce_time would stretch to the
  // deadline of a timer that never fired.
  if (const auto* t = std::get_if<TimerEvent>(&e.body)) {
    if (active_timers_.erase(t->timer) == 0) return;  // cancelled
    if (failed_[t->node]) return;  // timers die with their node
    now_ = std::max(now_, e.at);
    metrics_.RecordTimerFired();
    ++lamport_[t->node];
    TraceEvent(TraceRecord::Kind::kTimerFire, t->node, t->node,
               kInvalidPort, 0, t->timer);
    ContextImpl ctx(*this, t->node);
    processes_[t->node]->OnTimer(ctx, t->timer);
    return;
  }
  // Monotone clock: under controlled scheduling events dispatch out of
  // time order, so the clock ratchets. In time-ordered runs e.at is
  // never in the past and this is the plain assignment it always was.
  now_ = std::max(now_, e.at);
  if (const auto* w = std::get_if<WakeupEvent>(&e.body)) {
    if (failed_[w->node]) return;  // crashed before its wakeup fired
    ++lamport_[w->node];
    TraceEvent(TraceRecord::Kind::kWakeup, w->node, w->node, kInvalidPort,
               0, 0);
    ContextImpl ctx(*this, w->node);
    processes_[w->node]->OnWakeup(ctx);
  } else if (const auto* d = std::get_if<DeliveryEvent>(&e.body)) {
    // The link hands the message over either way — in-flight accounting
    // must stay exact even when the destination is gone.
    CELECT_DCHECK(deliveries_inflight_ > 0);
    --deliveries_inflight_;
    if (telemetry_) {
      CELECT_DCHECK(pending_deliveries_[d->to] > 0);
      --pending_deliveries_[d->to];
    }
    links_.NotifyDelivered(d->from, d->to);
    if (failed_[d->to]) {
      metrics_.RecordDrop(DropCause::kCrashedDestination);
      TraceEvent(TraceRecord::Kind::kDrop, d->to, d->from,
                 d->arrival_port, d->packet.type, d->mid);
      return;
    }
    auto fate = injector_ ? injector_->NoteDelivery(d->to, d->packet.type)
                          : FaultInjector::DeliveryFate::kProcess;
    if (fate == FaultInjector::DeliveryFate::kCrashBeforeProcessing) {
      // Mid-handshake death: the node dies with the message unread.
      MarkCrashed(d->to);
      metrics_.RecordDrop(DropCause::kCrashedDestination);
      TraceEvent(TraceRecord::Kind::kDrop, d->to, d->from,
                 d->arrival_port, d->packet.type, d->mid);
      return;
    }
    config_.mapper->MarkTraversed(d->to, d->arrival_port);
    metrics_.RecordDelivery();
    // A processed delivery joins the sender's send-time clock: the
    // Lamport rule max(local, sender) + 1. Unprocessed drops above do
    // not advance the clock — only protocol-visible events do.
    lamport_[d->to] =
        std::max<std::uint64_t>(lamport_[d->to], d->send_clock) + 1;
    TraceEvent(TraceRecord::Kind::kDeliver, d->to, d->from,
               d->arrival_port, d->packet.type, d->mid);
    if (telemetry_) {
      telemetry_->latency.Add(d->latency_ticks);
      telemetry_->queue_depth.Add(pending_deliveries_[d->to]);
      telemetry_->inflight.Sample(
          now_.ticks(), static_cast<std::int64_t>(deliveries_inflight_));
    }
    ContextImpl ctx(*this, d->to);
    processes_[d->to]->OnMessage(ctx, d->arrival_port, d->packet);
    if (fate == FaultInjector::DeliveryFate::kCrashAfterProcessing) {
      MarkCrashed(d->to);
    }
  } else if (const auto* c = std::get_if<CrashEvent>(&e.body)) {
    MarkCrashed(c->node);
  } else if (const auto* rj = std::get_if<RejoinEvent>(&e.body)) {
    CELECT_DCHECK(pending_rejoins_[rj->node] > 0);
    --pending_rejoins_[rj->node];
    MarkRejoined(rj->node);
  }
}

RunInspect Runtime::MakeInspect() {
  RunInspect in;
  in.n = config_.n;
  in.ids = &ids_;
  in.failed = &failed_;
  in.processes = processes_.data();
  in.metrics = &metrics_;
  in.now = now_;
  in.deliveries_inflight = deliveries_inflight_;
  return in;
}

void Runtime::NotifyObserver(const Event& e) {
  if (!options_.observer) return;
  RunInspect in = MakeInspect();
  options_.observer->AfterEvent(EventTarget(e.body), in);
}

bool Runtime::EventIsInert(const Event& e) const {
  if (const auto* t = std::get_if<TimerEvent>(&e.body)) {
    return active_timers_.count(t->timer) == 0 || failed_[t->node];
  }
  if (const auto* rj = std::get_if<RejoinEvent>(&e.body)) {
    return !failed_[rj->node];  // reviving a live node is a no-op
  }
  // Traffic to a dead node is inert only while the node stays dead: with
  // a rejoin pending, "dropped before revival" vs "delivered after" is a
  // real schedule choice the controller must see.
  const NodeId target = EventTarget(e.body);
  return failed_[target] && pending_rejoins_[target] == 0;
}

void Runtime::DrainInert(std::uint64_t& events) {
  // Inert events are deterministic no-ops for protocol state (drop
  // accounting only), so they commute with everything and are dispatched
  // eagerly, lowest seq first, rather than offered as schedule choices.
  for (;;) {
    std::optional<std::uint64_t> seq;
    for (const Event& e : queue_.events()) {
      if (EventIsInert(e) && (!seq || e.seq < *seq)) seq = e.seq;
    }
    if (!seq) return;
    Event e = queue_.Take(*seq);
    CELECT_CHECK(++events <= options_.max_events)
        << "event budget exceeded in controlled run";
    Dispatch(e);
    NotifyObserver(e);
  }
}

void Runtime::RunControlled(std::uint64_t& events) {
  std::vector<const Event*> enabled;
  // Lowest pending seq per directed link — the per-link FIFO gate. Push
  // order equals send order on a link, so the lowest-seq pending
  // delivery is the FIFO head.
  std::unordered_map<std::uint64_t, std::uint64_t> link_head;
  const auto link_key = [this](const DeliveryEvent& d) {
    return static_cast<std::uint64_t>(d.from) * config_.n + d.to;
  };
  while (!stop_requested_) {
    DrainInert(events);
    const std::vector<Event>& pending = queue_.events();
    if (pending.empty()) return;
    link_head.clear();
    for (const Event& e : pending) {
      if (const auto* d = std::get_if<DeliveryEvent>(&e.body)) {
        auto [it, inserted] = link_head.try_emplace(link_key(*d), e.seq);
        if (!inserted && e.seq < it->second) it->second = e.seq;
      }
    }
    enabled.clear();
    for (const Event& e : pending) {
      if (const auto* d = std::get_if<DeliveryEvent>(&e.body)) {
        if (link_head[link_key(*d)] != e.seq) continue;  // FIFO-blocked
      }
      enabled.push_back(&e);
    }
    CELECT_CHECK(!enabled.empty());
    std::sort(enabled.begin(), enabled.end(),
              [](const Event* a, const Event* b) { return a->seq < b->seq; });
    std::optional<std::size_t> pick =
        options_.controller->ChooseNext(enabled);
    if (!pick) {
      aborted_by_controller_ = true;
      return;
    }
    CELECT_CHECK(*pick < enabled.size());
    Event e = queue_.Take(enabled[*pick]->seq);
    CELECT_CHECK(++events <= options_.max_events)
        << "event budget exceeded in controlled run";
    Dispatch(e);
    NotifyObserver(e);
  }
}

RunResult Runtime::Run() {
  CELECT_CHECK(!ran_) << "Runtime::Run may be called only once";
  ran_ = true;

  const std::uint64_t wall_start = WallClockNowNs();
  std::uint64_t events = 0;
  if (options_.controller) {
    RunControlled(events);
  } else {
    while (!stop_requested_) {
      auto e = queue_.Pop();
      if (!e) break;
      CELECT_CHECK(++events <= options_.max_events)
          << "event budget exceeded — protocol is not quiescing "
          << "(messages so far: " << metrics_.messages_sent() << ")";
      Dispatch(*e);
      NotifyObserver(*e);
    }
  }
  if (options_.observer && queue_.Empty()) {
    RunInspect in = MakeInspect();
    options_.observer->AtQuiescence(in);
  }
  // Spans still open at quiescence (protocols that never close their
  // final phase) are closed here so every Begin has a matching End in
  // the aggregates and the export.
  for (NodeId node = 0; node < config_.n; ++node) {
    while (!phase_stack_[node].empty()) CloseTopPhase(node);
  }
  metrics_.RecordWallClock(WallClockNowNs() - wall_start, events);

  RunResult r;
  r.leader_id = metrics_.leader_id();
  r.leader_node = metrics_.leader_node();
  r.leader_declarations = metrics_.leader_declarations();
  r.leader_time = metrics_.first_leader_time();
  r.quiesce_time = now_;
  r.total_messages = metrics_.messages_sent();
  r.total_bytes = metrics_.bytes_sent();
  r.events_processed = events;
  r.max_link_load = links_.MaxLinkLoad();
  r.max_link_inflight = links_.MaxLinkInflight();
  r.faults_injected = metrics_.crashes_injected();
  r.messages_lost = metrics_.dropped_to_loss();
  r.messages_duplicated = metrics_.messages_duplicated();
  r.messages_reordered = metrics_.messages_reordered();
  r.timers_set = metrics_.timers_set();
  r.timers_fired = metrics_.timers_fired();
  r.invariant_violations = metrics_.invariant_violations();
  r.wall_ns = metrics_.wall_ns();
  r.events_per_sec = metrics_.events_per_sec();
  r.aborted_by_controller = aborted_by_controller_;
  r.messages_by_type = metrics_.by_type();
  r.counters = metrics_.counters();
  // Per-cause drop counters ride in the generic counter map so harness
  // tables and fingerprints pick them up without schema changes.
  if (metrics_.dropped_to_crashed() > 0) {
    r.counters["sim.dropped_to_crashed"] =
        static_cast<std::int64_t>(metrics_.dropped_to_crashed());
  }
  if (metrics_.dropped_to_loss() > 0) {
    r.counters["sim.dropped_to_loss"] =
        static_cast<std::int64_t>(metrics_.dropped_to_loss());
  }
  if (metrics_.rejoins() > 0) {
    r.counters["sim.rejoins"] =
        static_cast<std::int64_t>(metrics_.rejoins());
  }
  if (metrics_.timers_cancelled() > 0) {
    r.counters["sim.timers_cancelled"] =
        static_cast<std::int64_t>(metrics_.timers_cancelled());
  }
  // Clipped DeliveryEvent::latency_ticks fields: absent on healthy runs,
  // loud when a backlog outgrew the 32-bit latency range.
  if (metrics_.latency_saturated() > 0) {
    r.counters["sim.latency_saturated"] =
        static_cast<std::int64_t>(metrics_.latency_saturated());
  }
  // Per-cause lease counters ride the counter map like the drop causes:
  // absent on lease-free runs, so fingerprints of existing workloads are
  // untouched.
  const std::pair<const char*, std::uint64_t> lease_counters[] = {
      {"lease.granted", metrics_.leases_granted()},
      {"lease.renewed", metrics_.leases_renewed()},
      {"lease.expired", metrics_.leases_expired()},
      {"lease.revoked", metrics_.leases_revoked()},
  };
  for (const auto& [name, count] : lease_counters) {
    if (count > 0) r.counters[name] = static_cast<std::int64_t>(count);
  }
  // Per-cause invariant violations ride the counter map too, so harness
  // tables and fingerprints surface them without schema changes.
  for (const auto& [kind, count] : metrics_.invariant_violations_by_kind()) {
    r.counters["invariant." + kind] = static_cast<std::int64_t>(count);
  }
  for (const auto& [key, agg] : phase_agg_) {
    r.phases.emplace(
        obs::PhaseKey(static_cast<obs::PhaseId>(key.first), key.second),
        agg);
  }
  if (telemetry_) r.telemetry = *telemetry_;
  if (trace_.truncated()) {
    // A capped trace must be loud: the counter rides into harness tables
    // and fingerprints, and the warning tells an interactive user that
    // the exported trace is a prefix.
    r.counters["sim.trace_truncated"] =
        static_cast<std::int64_t>(trace_.dropped());
    std::cerr << "[celect] warning: trace truncated — " << trace_.dropped()
              << " records past the cap of " << options_.trace_cap
              << " were dropped; raise RuntimeOptions::trace_cap\n";
  }
  return r;
}

}  // namespace celect::sim
