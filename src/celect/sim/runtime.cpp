#include "celect/sim/runtime.h"

#include <string>

#include "celect/util/check.h"
#include "celect/wire/packet_codec.h"

namespace celect::sim {

// Context handed to a process for the duration of one event dispatch.
class Runtime::ContextImpl : public Context {
 public:
  ContextImpl(Runtime& rt, NodeId node) : rt_(rt), node_(node) {}

  NodeId address() const override { return node_; }
  Id id() const override { return rt_.ids_[node_]; }
  std::uint32_t n() const override { return rt_.config_.n; }
  Time now() const override { return rt_.now_; }
  bool has_sense_of_direction() const override {
    return rt_.config_.mapper->HasSenseOfDirection();
  }

  void Send(Port port, wire::Packet p) override {
    rt_.SendFrom(node_, port, std::move(p));
  }

  std::optional<Port> SendFresh(wire::Packet p) override {
    auto port = rt_.config_.mapper->FreshPort(node_);
    if (!port) return std::nullopt;
    rt_.SendFrom(node_, *port, std::move(p));
    return port;
  }

  void SendAll(wire::Packet p) override {
    for (Port port = 1; port <= n() - 1; ++port) {
      rt_.SendFrom(node_, port, p);
    }
  }

  void DeclareLeader() override {
    rt_.metrics_.RecordLeader(node_, id(), rt_.now_);
    rt_.trace_.Record({TraceRecord::Kind::kLeader, rt_.now_, node_, node_,
                       kInvalidPort, 0, 0});
    if (rt_.options_.stop_on_leader) rt_.stop_requested_ = true;
  }

  void AddCounter(std::string_view name, std::int64_t delta) override {
    rt_.metrics_.AddCounter(std::string(name), delta);
  }

  void MaxCounter(std::string_view name, std::int64_t value) override {
    rt_.metrics_.MaxCounter(std::string(name), value);
  }

 private:
  Runtime& rt_;
  NodeId node_;
};

Runtime::Runtime(NetworkConfig config, const ProcessFactory& factory,
                 RuntimeOptions options)
    : config_(std::move(config)),
      options_(options),
      links_(config_.n),
      trace_(options.enable_trace) {
  CELECT_CHECK(config_.n >= 2);
  CELECT_CHECK(config_.mapper && config_.delays);
  ids_ = config_.identities.empty() ? IdentitiesAscending(config_.n)
                                    : config_.identities;
  CELECT_CHECK(ids_.size() == config_.n);
  processes_.reserve(config_.n);
  for (NodeId i = 0; i < config_.n; ++i) {
    processes_.push_back(factory(ProcessInit{i, ids_[i], config_.n}));
    CELECT_CHECK(processes_.back() != nullptr);
  }
  for (const auto& [node, at] : config_.wakeup.wakeups) {
    queue_.Push(at, WakeupEvent{node});
  }
}

Runtime::~Runtime() = default;

Process& Runtime::process(NodeId address) {
  CELECT_CHECK(address < processes_.size());
  return *processes_[address];
}

void Runtime::SendFrom(NodeId from, Port port, wire::Packet packet) {
  CELECT_CHECK(port >= 1 && port <= config_.n - 1)
      << "node " << from << " sent on invalid port " << port;
  PortMapper& mapper = *config_.mapper;
  NodeId to = mapper.Resolve(from, port);
  CELECT_DCHECK(to != from);
  mapper.MarkTraversed(from, port);

  std::size_t bytes;
  if (options_.serialize_packets) {
    // Round-trip through the codec: catches any packet the wire format
    // cannot represent, and measures true on-the-wire size.
    auto encoded = wire::Encode(packet);
    bytes = encoded.size();
    auto decoded = wire::Decode(encoded);
    CELECT_CHECK(decoded.has_value() && *decoded == packet)
        << "codec round-trip failed for " << wire::ToString(packet);
  } else {
    bytes = wire::EncodedSize(packet);
  }
  metrics_.RecordSend(packet.type, bytes);
  trace_.Record({TraceRecord::Kind::kSend, now_, from, to, port,
                 packet.type, 0});

  if (!config_.failed.empty() && config_.failed[to]) {
    metrics_.RecordDrop();
    return;  // crashed nodes silently eat messages
  }

  const MessageInfo info{from, to, now_, links_.SentCount(from, to),
                         &packet};
  DelayDecision d = config_.delays->Decide(info);
  Time arrival = links_.Admit(from, to, now_, d);
  Port arrival_port = mapper.PortToward(to, from);
  queue_.Push(arrival, DeliveryEvent{from, to, arrival_port,
                                     std::move(packet)});
}

void Runtime::Dispatch(const Event& e) {
  now_ = e.at;
  if (const auto* w = std::get_if<WakeupEvent>(&e.body)) {
    trace_.Record({TraceRecord::Kind::kWakeup, now_, w->node, w->node,
                   kInvalidPort, 0, 0});
    ContextImpl ctx(*this, w->node);
    processes_[w->node]->OnWakeup(ctx);
  } else if (const auto* d = std::get_if<DeliveryEvent>(&e.body)) {
    links_.NotifyDelivered(d->from, d->to);
    config_.mapper->MarkTraversed(d->to, d->arrival_port);
    metrics_.RecordDelivery();
    trace_.Record({TraceRecord::Kind::kDeliver, now_, d->to, d->from,
                   d->arrival_port, d->packet.type, 0});
    ContextImpl ctx(*this, d->to);
    processes_[d->to]->OnMessage(ctx, d->arrival_port, d->packet);
  } else if (const auto* c = std::get_if<CrashEvent>(&e.body)) {
    if (config_.failed.empty()) config_.failed.assign(config_.n, false);
    config_.failed[c->node] = true;
  }
}

RunResult Runtime::Run() {
  CELECT_CHECK(!ran_) << "Runtime::Run may be called only once";
  ran_ = true;

  std::uint64_t events = 0;
  while (!stop_requested_) {
    auto e = queue_.Pop();
    if (!e) break;
    CELECT_CHECK(++events <= options_.max_events)
        << "event budget exceeded — protocol is not quiescing "
        << "(messages so far: " << metrics_.messages_sent() << ")";
    Dispatch(*e);
  }

  RunResult r;
  r.leader_id = metrics_.leader_id();
  r.leader_node = metrics_.leader_node();
  r.leader_declarations = metrics_.leader_declarations();
  r.leader_time = metrics_.first_leader_time();
  r.quiesce_time = now_;
  r.total_messages = metrics_.messages_sent();
  r.total_bytes = metrics_.bytes_sent();
  r.events_processed = events;
  r.max_link_load = links_.MaxLinkLoad();
  r.max_link_inflight = links_.MaxLinkInflight();
  r.messages_by_type = metrics_.by_type();
  r.counters = metrics_.counters();
  return r;
}

}  // namespace celect::sim
