#include "celect/sim/fault.h"

#include <algorithm>

#include "celect/util/check.h"

namespace celect::sim {

namespace {

bool IsRate(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

void ValidateFaultPlan(const FaultPlan& plan, std::uint32_t n) {
  CELECT_CHECK(IsRate(plan.link.loss)) << "loss rate outside [0, 1]";
  CELECT_CHECK(IsRate(plan.link.duplicate))
      << "duplication rate outside [0, 1]";
  CELECT_CHECK(IsRate(plan.link.reorder)) << "reorder rate outside [0, 1]";
  for (const CrashSpec& c : plan.crashes) {
    CELECT_CHECK(c.node < n) << "crash victim " << c.node
                             << " outside network of size " << n;
    switch (c.trigger) {
      case CrashSpec::Trigger::kAtTime:
        CELECT_CHECK(c.at >= Time::Zero()) << "crash scheduled before zero";
        break;
      case CrashSpec::Trigger::kAfterSends:
      case CrashSpec::Trigger::kAfterReceives:
        CELECT_CHECK(c.count >= 1) << "count triggers are 1-based";
        break;
      case CrashSpec::Trigger::kOnMessageType:
        break;  // any type value is legal; an unused type never fires
    }
  }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t n)
    : plan_(std::move(plan)), pending_(n), sends_(n, 0), receives_(n, 0) {
  ValidateFaultPlan(plan_, n);
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashSpec& c = plan_.crashes[i];
    if (c.trigger != CrashSpec::Trigger::kAtTime) {
      pending_[c.node].push_back(i);
    }
  }
}

std::vector<std::pair<NodeId, Time>> FaultInjector::TimedCrashes() const {
  std::vector<std::pair<NodeId, Time>> out;
  for (const CrashSpec& c : plan_.crashes) {
    if (c.trigger == CrashSpec::Trigger::kAtTime) {
      out.emplace_back(c.node, c.at);
    }
  }
  return out;
}

bool FaultInjector::NoteSend(NodeId node) {
  ++sends_[node];
  auto& specs = pending_[node];
  for (auto it = specs.begin(); it != specs.end(); ++it) {
    const CrashSpec& c = plan_.crashes[*it];
    if (c.trigger == CrashSpec::Trigger::kAfterSends &&
        c.count == sends_[node]) {
      specs.erase(it);
      return true;
    }
  }
  return false;
}

FaultInjector::DeliveryFate FaultInjector::NoteDelivery(NodeId node,
                                                        std::uint16_t type) {
  auto& specs = pending_[node];
  // Type triggers outrank count triggers: "dies on first capture" should
  // eat the capture even if this delivery is also the node's k-th.
  for (auto it = specs.begin(); it != specs.end(); ++it) {
    const CrashSpec& c = plan_.crashes[*it];
    if (c.trigger == CrashSpec::Trigger::kOnMessageType &&
        c.message_type == type) {
      specs.erase(it);
      return DeliveryFate::kCrashBeforeProcessing;
    }
  }
  ++receives_[node];
  for (auto it = specs.begin(); it != specs.end(); ++it) {
    const CrashSpec& c = plan_.crashes[*it];
    if (c.trigger == CrashSpec::Trigger::kAfterReceives &&
        c.count == receives_[node]) {
      specs.erase(it);
      return DeliveryFate::kCrashAfterProcessing;
    }
  }
  return DeliveryFate::kProcess;
}

}  // namespace celect::sim
