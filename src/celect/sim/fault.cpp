#include "celect/sim/fault.h"

#include <algorithm>
#include <map>
#include <set>

#include "celect/util/check.h"

namespace celect::sim {

namespace {

bool IsRate(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

void ValidateFaultPlan(const FaultPlan& plan, std::uint32_t n) {
  CELECT_CHECK(IsRate(plan.link.loss)) << "loss rate outside [0, 1]";
  CELECT_CHECK(IsRate(plan.link.duplicate))
      << "duplication rate outside [0, 1]";
  CELECT_CHECK(IsRate(plan.link.reorder)) << "reorder rate outside [0, 1]";
  for (const CrashSpec& c : plan.crashes) {
    CELECT_CHECK(c.node < n) << "crash victim " << c.node
                             << " outside network of size " << n;
    switch (c.trigger) {
      case CrashSpec::Trigger::kAtTime:
        CELECT_CHECK(c.at >= Time::Zero()) << "crash scheduled before zero";
        break;
      case CrashSpec::Trigger::kAfterSends:
      case CrashSpec::Trigger::kAfterReceives:
        CELECT_CHECK(c.count >= 1) << "count triggers are 1-based";
        break;
      case CrashSpec::Trigger::kOnMessageType:
        break;  // any type value is legal; an unused type never fires
    }
  }
  if (plan.rejoins.empty()) return;
  for (const RejoinSpec& r : plan.rejoins) {
    CELECT_CHECK(r.node < n) << "rejoin target " << r.node
                             << " outside network of size " << n;
    CELECT_CHECK(r.at >= Time::Zero()) << "rejoin scheduled before zero";
  }
  // Per-node ordering rules (see fault.h): for every node with rejoins,
  // its timed crashes and rejoins must occur at pairwise-distinct times
  // and strictly alternate crash → rejoin → crash → ...
  struct TimedEvent {
    Time at;
    bool is_rejoin;
  };
  std::map<NodeId, std::vector<TimedEvent>> timeline;
  std::set<NodeId> has_trigger;
  for (const CrashSpec& c : plan.crashes) {
    if (c.trigger == CrashSpec::Trigger::kAtTime) {
      timeline[c.node].push_back({c.at, false});
    } else {
      has_trigger.insert(c.node);
    }
  }
  std::set<NodeId> rejoining;
  for (const RejoinSpec& r : plan.rejoins) {
    timeline[r.node].push_back({r.at, true});
    rejoining.insert(r.node);
  }
  for (auto& [node, events] : timeline) {
    if (!rejoining.count(node)) continue;  // crash-only nodes: old rules
    std::stable_sort(
        events.begin(), events.end(),
        [](const TimedEvent& a, const TimedEvent& b) { return a.at < b.at; });
    for (std::size_t i = 0; i + 1 < events.size(); ++i) {
      CELECT_CHECK(events[i].at != events[i + 1].at)
          << "node " << node << ": crash/rejoin times must be pairwise "
          << "distinct (two events at t=" << events[i].at.ticks()
          << " ticks)";
      CELECT_CHECK(events[i].is_rejoin != events[i + 1].is_rejoin)
          << "node " << node << ": timed crashes and rejoins must "
          << "alternate crash -> rejoin -> crash (consecutive "
          << (events[i].is_rejoin ? "rejoins" : "crashes") << " at t="
          << events[i].at.ticks() << " and t=" << events[i + 1].at.ticks()
          << " ticks)";
    }
    CELECT_CHECK(!events.front().is_rejoin || has_trigger.count(node))
        << "node " << node << ": first timed event is a rejoin at t="
        << events.front().at.ticks()
        << " ticks but no earlier crash can have killed the node (add a "
        << "timed crash before it or a send/receive/type trigger)";
  }
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t n)
    : plan_(std::move(plan)), pending_(n), sends_(n, 0), receives_(n, 0) {
  ValidateFaultPlan(plan_, n);
  for (std::size_t i = 0; i < plan_.crashes.size(); ++i) {
    const CrashSpec& c = plan_.crashes[i];
    if (c.trigger != CrashSpec::Trigger::kAtTime) {
      pending_[c.node].push_back(i);
    }
  }
}

std::vector<std::pair<NodeId, Time>> FaultInjector::TimedCrashes() const {
  std::vector<std::pair<NodeId, Time>> out;
  for (const CrashSpec& c : plan_.crashes) {
    if (c.trigger == CrashSpec::Trigger::kAtTime) {
      out.emplace_back(c.node, c.at);
    }
  }
  return out;
}

std::vector<std::pair<NodeId, Time>> FaultInjector::TimedRejoins() const {
  std::vector<std::pair<NodeId, Time>> out;
  for (const RejoinSpec& r : plan_.rejoins) {
    out.emplace_back(r.node, r.at);
  }
  return out;
}

bool FaultInjector::NoteSend(NodeId node) {
  ++sends_[node];
  auto& specs = pending_[node];
  for (auto it = specs.begin(); it != specs.end(); ++it) {
    const CrashSpec& c = plan_.crashes[*it];
    if (c.trigger == CrashSpec::Trigger::kAfterSends &&
        c.count == sends_[node]) {
      specs.erase(it);
      return true;
    }
  }
  return false;
}

FaultInjector::DeliveryFate FaultInjector::NoteDelivery(NodeId node,
                                                        std::uint16_t type) {
  auto& specs = pending_[node];
  // Type triggers outrank count triggers: "dies on first capture" should
  // eat the capture even if this delivery is also the node's k-th.
  for (auto it = specs.begin(); it != specs.end(); ++it) {
    const CrashSpec& c = plan_.crashes[*it];
    if (c.trigger == CrashSpec::Trigger::kOnMessageType &&
        c.message_type == type) {
      specs.erase(it);
      return DeliveryFate::kCrashBeforeProcessing;
    }
  }
  ++receives_[node];
  for (auto it = specs.begin(); it != specs.end(); ++it) {
    const CrashSpec& c = plan_.crashes[*it];
    if (c.trigger == CrashSpec::Trigger::kAfterReceives &&
        c.count == receives_[node]) {
      specs.erase(it);
      return DeliveryFate::kCrashAfterProcessing;
    }
  }
  return DeliveryFate::kProcess;
}

}  // namespace celect::sim
