#include "celect/sim/metrics.h"

#include <algorithm>

namespace celect::sim {

void Metrics::RecordSend(std::uint16_t type, std::size_t bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  ++by_type_[type];
}

void Metrics::RecordDelivery() { ++messages_delivered_; }

void Metrics::RecordDrop(DropCause cause) {
  switch (cause) {
    case DropCause::kCrashedDestination:
      ++dropped_to_crashed_;
      break;
    case DropCause::kInjectedLoss:
      ++dropped_to_loss_;
      break;
  }
}

void Metrics::RecordDuplicate() { ++messages_duplicated_; }

void Metrics::RecordReorder() { ++messages_reordered_; }

void Metrics::RecordCrash() { ++crashes_injected_; }

void Metrics::RecordRejoin() { ++rejoins_; }

void Metrics::RecordLeaseEvent(LeaseEvent event) {
  ++lease_events_[static_cast<int>(event)];
}

void Metrics::RecordTimerSet() { ++timers_set_; }

void Metrics::RecordTimerFired() { ++timers_fired_; }

void Metrics::RecordTimerCancelled() { ++timers_cancelled_; }

void Metrics::RecordLeader(NodeId node, Id id, Time at) {
  if (leader_declarations_ == 0) {
    leader_node_ = node;
    leader_id_ = id;
    first_leader_time_ = at;
  }
  ++leader_declarations_;
}

void Metrics::RecordInvariantViolation(const std::string& kind) {
  ++invariant_violations_total_;
  ++invariant_violations_by_kind_[kind];
}

void Metrics::RecordWallClock(std::uint64_t ns, std::uint64_t events) {
  wall_ns_ = ns;
  events_per_sec_ =
      ns > 0 ? static_cast<double>(events) * 1e9 / static_cast<double>(ns)
             : 0.0;
}

void Metrics::AddCounter(const std::string& name, std::int64_t delta) {
  counters_[name] += delta;
}

void Metrics::MaxCounter(const std::string& name, std::int64_t value) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_[name] = value;
  } else {
    it->second = std::max(it->second, value);
  }
}

}  // namespace celect::sim
