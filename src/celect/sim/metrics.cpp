#include "celect/sim/metrics.h"

#include <algorithm>

#include "celect/util/check.h"

namespace celect::sim {

void Metrics::RecordDrop(DropCause cause) {
  switch (cause) {
    case DropCause::kCrashedDestination:
      ++dropped_to_crashed_;
      break;
    case DropCause::kInjectedLoss:
      ++dropped_to_loss_;
      break;
  }
}

void Metrics::RecordDuplicate() { ++messages_duplicated_; }

void Metrics::RecordReorder() { ++messages_reordered_; }

void Metrics::RecordCrash() { ++crashes_injected_; }

void Metrics::RecordRejoin() { ++rejoins_; }

void Metrics::RecordLeaseEvent(LeaseEvent event) {
  ++lease_events_[static_cast<int>(event)];
}

void Metrics::RecordTimerSet() { ++timers_set_; }

void Metrics::RecordTimerFired() { ++timers_fired_; }

void Metrics::RecordTimerCancelled() { ++timers_cancelled_; }

void Metrics::RecordLatencySaturated() { ++latency_saturated_; }

void Metrics::RecordLeader(NodeId node, Id id, Time at) {
  if (leader_declarations_ == 0) {
    leader_node_ = node;
    leader_id_ = id;
    first_leader_time_ = at;
  }
  ++leader_declarations_;
}

void Metrics::RecordInvariantViolation(const std::string& kind) {
  ++invariant_violations_total_;
  ++invariant_violations_by_kind_[kind];
}

void Metrics::RecordWallClock(std::uint64_t ns, std::uint64_t events) {
  wall_ns_ = ns;
  events_per_sec_ =
      ns > 0 ? static_cast<double>(events) * 1e9 / static_cast<double>(ns)
             : 0.0;
}

std::uint32_t Metrics::InternCounter(std::string_view name) {
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return it->second;
  const auto slot = static_cast<std::uint32_t>(counter_cells_.size());
  counter_cells_.push_back(CounterCell{std::string(name), 0, false});
  counter_index_.emplace(counter_cells_.back().name, slot);
  return slot;
}

void Metrics::AddCounter(std::uint32_t slot, std::int64_t delta) {
  CELECT_DCHECK(slot < counter_cells_.size());
  CounterCell& c = counter_cells_[slot];
  c.value += delta;
  c.touched = true;
}

void Metrics::MaxCounter(std::uint32_t slot, std::int64_t value) {
  CELECT_DCHECK(slot < counter_cells_.size());
  CounterCell& c = counter_cells_[slot];
  // First record sets the cell outright — same as creating a map entry.
  c.value = c.touched ? std::max(c.value, value) : value;
  c.touched = true;
}

void Metrics::AddCounter(std::string_view name, std::int64_t delta) {
  AddCounter(InternCounter(name), delta);
}

void Metrics::MaxCounter(std::string_view name, std::int64_t value) {
  MaxCounter(InternCounter(name), value);
}

std::map<std::uint16_t, std::uint64_t> Metrics::by_type() const {
  std::map<std::uint16_t, std::uint64_t> out;
  for (std::size_t t = 0; t < by_type_.size(); ++t) {
    if (by_type_[t] > 0) out.emplace(static_cast<std::uint16_t>(t),
                                     by_type_[t]);
  }
  return out;
}

std::map<std::string, std::int64_t> Metrics::counters() const {
  std::map<std::string, std::int64_t> out;
  for (const CounterCell& c : counter_cells_) {
    if (c.touched) out.emplace(c.name, c.value);
  }
  return out;
}

}  // namespace celect::sim
