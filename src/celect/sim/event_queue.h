// Deterministic priority event queue — ladder/timing-wheel edition.
//
// The simulator's previous queue was a binary heap over a flat vector of
// full Event values: every push sifted ~100-byte events (each carrying a
// heap-allocated packet) through O(log n) moves, and past N≈128 the heap
// fell out of cache and throughput collapsed ~10x (BENCH_E7.json). This
// queue replaces it with a three-region ladder over an arena:
//
//   * events live once, in a pooled slot arena, and never move again;
//     the regions shuffle 24-byte {at, seq, slot} handles instead;
//   * L0 — the serving block: 4096 width-one-tick buckets covering the
//     4096-tick block that contains the current serve position. A bucket
//     holds same-instant events in push (= seq) order, so serving is a
//     linear scan with no comparisons;
//   * L1 — a 4096-block wheel (one bucket per 4096-tick block, ~16 sim
//     units of horizon) fed by direct pushes; a whole bucket scatters
//     into L0 when serving reaches its block;
//   * far — a small binary min-heap of handles for events beyond the
//     wheel horizon (deep FIFO backlogs, long leases); drained into L0
//     block by block as serving catches up.
//
// Total order is identical to the old heap: (at, seq) ascending, seq
// stamped monotonically at push. Buckets receive handles in seq order by
// construction; the one case that can break per-instant order — a far
// drain landing in a bucket that already holds scattered handles — marks
// the bucket for a one-time sort before it is served.
//
// Cancelled timers are lazy-deleted tombstones: Cancel() marks the slot
// dead so Size()/PeekTime() see only live events (the live-count
// bugfix), but the event still pops in order and the runtime discards it
// at dispatch — bit-identical event accounting with the reference heap.
//
// Controlled scheduling (the analysis explorer) needs to dispatch pending
// events in an order of its own choosing rather than time order, so the
// queue also exposes the pending set (`events()`, a lazily rebuilt
// snapshot in unspecified order — callers must not assume anything beyond
// "these are the pending events") and removal of an arbitrary element
// (`Take`). Both are O(n) — exploration runs are tiny, the simulator's
// hot path never calls them.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "celect/sim/event.h"

namespace celect::sim {

// Handle to a pending (cancellable) event — returned by PushTicketed,
// consumed by Cancel. `slot` addresses the arena; `seq` guards against
// slot reuse.
struct EventTicket {
  std::uint64_t seq = 0;
  std::uint32_t slot = 0xFFFFFFFFu;
};

class EventQueue {
 public:
  EventQueue();

  // Schedules `body` at absolute time `at` (non-negative ticks). Returns
  // the sequence number assigned to the event.
  std::uint64_t Push(Time at, EventBody body);

  // Push that also returns a cancellation ticket (timers).
  EventTicket PushTicketed(Time at, EventBody body);

  // Marks a pending event as a tombstone: it no longer counts toward
  // Size()/PeekTime(), but still pops in order (the runtime discards it
  // at dispatch — exactly the pre-ladder accounting, so fingerprints are
  // unchanged). No-op if the event already popped.
  void Cancel(const EventTicket& t);

  // Pops the earliest pending event (tombstones included); nullopt when
  // the queue is physically empty.
  std::optional<Event> Pop();

  // Physically empty — no pending events, not even tombstones.
  bool Empty() const { return live_ + dead_ == 0; }
  // Live events only; cancelled-timer tombstones are excluded.
  std::size_t Size() const { return live_; }
  // Cancelled-but-unpopped events still occupying the queue.
  std::size_t Tombstones() const { return dead_; }
  std::uint64_t total_pushed() const { return next_seq_; }

  // Earliest scheduled *live* event time (Size() must be > 0): a
  // cancelled far-future timer no longer pins the horizon. O(pending) —
  // diagnostic use, not a hot-path call.
  Time PeekTime() const;

  // Pending events (tombstones included, matching the reference heap) in
  // unspecified order. Lazily rebuilt snapshot; valid until the next
  // mutation. O(n) — controlled scheduling only.
  const std::vector<Event>& events() const;

  // Removes and returns the pending event with sequence number `seq`
  // (CHECK-fails if absent). O(n) — controlled scheduling only.
  Event Take(std::uint64_t seq);

 private:
  // One 4096-tick block per L0 window / L1 wheel bucket.
  static constexpr int kBlockBits = 12;
  static constexpr std::size_t kL0 = std::size_t{1} << kBlockBits;
  static constexpr std::size_t kL1 = std::size_t{1} << kBlockBits;
  static constexpr std::size_t kWords = kL0 / 64;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  // Arena slots are freed by stamping this sentinel into ev.seq; a
  // handle is stale (already taken) when its seq no longer matches.
  static constexpr std::uint64_t kFreeSeq = ~std::uint64_t{0};

  struct Handle {
    std::int64_t at;  // ticks
    std::uint64_t seq;
    std::uint32_t slot;
  };

  struct Slot {
    Event ev;
    std::uint32_t next_free = kNoSlot;
    bool dead = false;  // cancelled (tombstone) but not yet popped
  };

  using Bits = std::array<std::uint64_t, kWords>;

  // The arena is a run of geometrically growing chunks (1024 slots, then
  // 1024, 2048, 4096, ...): slots never move (no vector-regrow copying of
  // ~128-byte Slots, no 1.5x memory spike at million-event peaks) and
  // indexing stays O(1). Slot i lives at chunk c = bit_width(i + kChunk0)
  // - kChunk0Bits - 1, offset = (i + kChunk0) minus the chunk's base
  // power of two.
  static constexpr std::uint32_t kChunk0Bits = 10;
  static constexpr std::uint32_t kChunk0 = 1u << kChunk0Bits;

  Slot& SlotAt(std::uint32_t i) {
    const std::uint32_t j = i + kChunk0;
    const int c = std::bit_width(j) - kChunk0Bits - 1;
    return chunks_[static_cast<std::size_t>(c)]
                  [j ^ (std::uint32_t{1} << (kChunk0Bits + c))];
  }
  const Slot& SlotAt(std::uint32_t i) const {
    return const_cast<EventQueue*>(this)->SlotAt(i);
  }

  static void SetBit(Bits& b, std::size_t i) {
    b[i >> 6] |= std::uint64_t{1} << (i & 63);
  }
  static void ClearBit(Bits& b, std::size_t i) {
    b[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  static bool TestBit(const Bits& b, std::size_t i) {
    return (b[i >> 6] >> (i & 63)) & 1;
  }
  // First set bit at index >= from, or npos.
  static std::size_t ScanBits(const Bits& b, std::size_t from);
  static constexpr std::size_t kNpos = ~std::size_t{0};

  std::uint32_t AllocSlot(Time at, std::uint64_t seq, EventBody&& body);
  void FreeSlot(std::uint32_t slot);
  bool HandleLive(const Handle& h) const {
    const Slot& s = SlotAt(h.slot);
    return s.ev.seq == h.seq && !s.dead;
  }
  // Routes a handle into L0 / L1 / far based on its block.
  void Place(const Handle& h);
  void AppendL0(const Handle& h, bool from_far);
  // Moves serving to the next non-empty block (L1 scatter + far drain).
  // False when nothing is pending anywhere past the current block.
  bool AdvanceBlock();
  // Next pending L1 block in circular (time) order, if any.
  std::optional<std::uint64_t> NextL1Block() const;

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::uint32_t slot_count_ = 0;  // slots ever allocated (used prefix)
  std::uint32_t free_head_ = kNoSlot;

  std::vector<std::vector<Handle>> l0_;  // kL0 width-1-tick buckets
  std::vector<std::vector<Handle>> l1_;  // kL1 block buckets
  // The single tick every handle in l1_[i] shares, or kMixedTick. A
  // uniform bucket scatters into L0 as one vector swap — the dominant
  // case under unit delays, where a whole wave lands on one instant.
  std::vector<std::int64_t> l1_tick_;
  static constexpr std::int64_t kMixedTick = -1;
  Bits l0_bits_{};   // non-empty L0 buckets
  Bits l1_bits_{};   // non-empty L1 buckets
  Bits l0_sort_{};   // L0 buckets needing a seq sort before serving
  std::vector<Handle> far_;  // min-heap by (at, seq)

  std::uint64_t cur_block_ = 0;   // block being served
  std::size_t cur_bucket_ = 0;    // L0 bucket being served
  std::size_t cur_pos_ = 0;       // next handle within that bucket

  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t dead_ = 0;

  mutable std::vector<Event> snapshot_;
  mutable bool snapshot_dirty_ = true;
};

}  // namespace celect::sim
