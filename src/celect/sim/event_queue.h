// Deterministic priority event queue.
//
// A thin wrapper over a binary heap that stamps every pushed event with a
// monotone sequence number, guaranteeing a total, reproducible order even
// among events scheduled for the same instant.
#pragma once

#include <optional>
#include <queue>
#include <vector>

#include "celect/sim/event.h"

namespace celect::sim {

class EventQueue {
 public:
  // Schedules `body` at absolute time `at`. Returns the sequence number
  // assigned to the event.
  std::uint64_t Push(Time at, EventBody body);

  // Pops the earliest event; nullopt when empty.
  std::optional<Event> Pop();

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }
  std::uint64_t total_pushed() const { return next_seq_; }

  // Earliest scheduled time (queue must be non-empty).
  Time PeekTime() const;

 private:
  std::priority_queue<Event, std::vector<Event>, EventAfter> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace celect::sim
