// Deterministic priority event queue.
//
// A binary heap over a flat vector that stamps every pushed event with a
// monotone sequence number, guaranteeing a total, reproducible order even
// among events scheduled for the same instant.
//
// Controlled scheduling (the analysis explorer) needs to dispatch pending
// events in an order of its own choosing rather than time order, so the
// queue also exposes its raw storage (`events()`, heap order — callers
// must not assume anything beyond "these are the pending events") and
// removal of an arbitrary element (`Take`). Taking from the middle
// re-heapifies in O(n); exploration runs are tiny, the simulator's hot
// path never calls it.
#pragma once

#include <optional>
#include <vector>

#include "celect/sim/event.h"

namespace celect::sim {

class EventQueue {
 public:
  // Schedules `body` at absolute time `at`. Returns the sequence number
  // assigned to the event.
  std::uint64_t Push(Time at, EventBody body);

  // Pops the earliest event; nullopt when empty.
  std::optional<Event> Pop();

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }
  std::uint64_t total_pushed() const { return next_seq_; }

  // Earliest scheduled time (queue must be non-empty).
  Time PeekTime() const;

  // Pending events in unspecified (heap) order. Valid until the next
  // mutation.
  const std::vector<Event>& events() const { return heap_; }

  // Removes and returns the pending event with sequence number `seq`
  // (CHECK-fails if absent). O(n) — controlled scheduling only.
  Event Take(std::uint64_t seq);

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace celect::sim
