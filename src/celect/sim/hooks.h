// Runtime extension points for analysis tooling.
//
// Two hooks, both optional and both inert on the simulator's default
// path:
//
//   ScheduleController — controlled scheduling. When set, the runtime
//     abandons time order and asks the controller which of the currently
//     *enabled* pending events to dispatch next (asynchronous semantics:
//     any in-flight message may arrive next, subject only to per-link
//     FIFO). The analysis explorer uses this to enumerate message
//     interleavings.
//
//   RunObserver — invariant checking. Called after every dispatched
//     event and once at quiescence with a read-mostly window into the
//     run; the analysis InvariantRegistry implements it.
//
// Both live here (sim layer) so Runtime needs no knowledge of the
// analysis layer that implements them.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "celect/sim/event.h"
#include "celect/sim/metrics.h"
#include "celect/sim/process.h"
#include "celect/sim/time.h"
#include "celect/sim/types.h"

namespace celect::sim {

// The node an event acts on: the dispatching handler's node, or the
// target of a drop/crash. Event order is exchangeable exactly when the
// targets differ — the commutativity rule the explorer prunes with.
NodeId EventTarget(const EventBody& body);

class ScheduleController {
 public:
  virtual ~ScheduleController() = default;

  // Picks the next event to dispatch. `enabled` is sorted by sequence
  // number and non-empty; the choice string of a run is the sequence of
  // returned indices. Returning nullopt aborts the run (the explorer
  // uses this to cut off pruned branches).
  virtual std::optional<std::size_t> ChooseNext(
      const std::vector<const Event*>& enabled) = 0;
};

// Read-mostly window into a run handed to observers. Metrics is mutable
// so observers can record violation tallies next to the run's other
// accounting; everything else is immutable.
struct RunInspect {
  std::uint32_t n = 0;
  const std::vector<Id>* ids = nullptr;
  const std::vector<bool>* failed = nullptr;
  // n entries; processes()[addr] is the protocol instance at addr.
  const std::unique_ptr<Process>* processes = nullptr;
  Metrics* metrics = nullptr;
  Time now;
  // DeliveryEvents currently pending in the queue (sent but neither
  // delivered nor dropped) — closes the message-conservation ledger.
  std::uint64_t deliveries_inflight = 0;

  const Process& process(NodeId addr) const { return *processes[addr]; }
};

class RunObserver {
 public:
  virtual ~RunObserver() = default;

  // After every dispatched event; `target` is the event's node (see
  // EventTarget). Also called for swallowed events (drops, stale
  // timers) — their accounting is part of what observers check.
  virtual void AfterEvent(NodeId target, const RunInspect& in) = 0;

  // Once, when the queue drains. Not called if the run is aborted by a
  // ScheduleController or the event budget.
  virtual void AtQuiescence(const RunInspect& in) = 0;
};

}  // namespace celect::sim
