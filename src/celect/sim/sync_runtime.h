// Round-synchronous runtime.
//
// The paper contrasts its asynchronous bounds with the synchronous AG85
// protocol (O(log N) rounds, message optimal) and notes the Ω(N/log N)
// asynchronous lower bound proves an N/(log N)² gap. This runtime models
// the classic synchronous network: in round r every node atomically
// receives all messages sent to it in round r-1, computes, and sends.
// Time complexity is the number of rounds.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "celect/sim/metrics.h"
#include "celect/sim/port_mapper.h"
#include "celect/sim/types.h"
#include "celect/wire/packet.h"

namespace celect::sim {

class SyncContext {
 public:
  virtual ~SyncContext() = default;
  virtual NodeId address() const = 0;
  virtual Id id() const = 0;
  virtual std::uint32_t n() const = 0;
  virtual std::uint32_t round() const = 0;
  virtual void Send(Port port, wire::Packet p) = 0;
  virtual void DeclareLeader() = 0;
};

class SyncProcess {
 public:
  virtual ~SyncProcess() = default;
  // Called once per round on every node; inbox holds (arrival port,
  // packet) pairs from the previous round. Round 0 has empty inboxes —
  // base nodes treat it as their simultaneous wakeup.
  virtual void OnRound(SyncContext& ctx,
                       const std::vector<std::pair<Port, wire::Packet>>&
                           inbox) = 0;
};

struct SyncProcessInit {
  NodeId address;
  Id id;
  std::uint32_t n;
};

using SyncProcessFactory =
    std::function<std::unique_ptr<SyncProcess>(const SyncProcessInit&)>;

struct SyncRunResult {
  std::optional<Id> leader_id;
  std::uint32_t leader_declarations = 0;
  std::uint32_t rounds = 0;  // rounds until quiescence
  std::uint64_t total_messages = 0;
};

class SyncRuntime {
 public:
  SyncRuntime(std::uint32_t n, std::vector<Id> identities,
              std::unique_ptr<PortMapper> mapper,
              const SyncProcessFactory& factory,
              std::uint32_t max_rounds = 1'000'000);

  // Runs rounds until a full round passes with no messages in flight.
  SyncRunResult Run();

 private:
  class ContextImpl;
  friend class ContextImpl;

  std::uint32_t n_;
  std::vector<Id> ids_;
  std::unique_ptr<PortMapper> mapper_;
  std::vector<std::unique_ptr<SyncProcess>> processes_;
  std::uint32_t max_rounds_;

  std::uint32_t round_ = 0;
  std::uint64_t messages_ = 0;
  std::uint32_t leader_declarations_ = 0;
  std::optional<Id> leader_id_;
  // outbox[node] accumulates within the round, then becomes the next
  // round's inbox at the receivers.
  std::vector<std::vector<std::pair<Port, wire::Packet>>> inboxes_;
  std::vector<std::vector<std::pair<Port, wire::Packet>>> next_inboxes_;
};

}  // namespace celect::sim
