// FNV-1a checksums used to validate framed packets.
#pragma once

#include <cstdint>
#include <vector>

namespace celect::wire {

// 64-bit FNV-1a over a byte range.
std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t size);
std::uint64_t Fnv1a64(const std::vector<std::uint8_t>& data);

// 32-bit folded variant used in packet frames (4 bytes of overhead).
std::uint32_t Checksum32(const std::uint8_t* data, std::size_t size);
std::uint32_t Checksum32(const std::vector<std::uint8_t>& data);

}  // namespace celect::wire
