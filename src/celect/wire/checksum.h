// FNV-1a checksums used to validate framed packets.
#pragma once

#include <cstdint>
#include <vector>

namespace celect::wire {

// 64-bit FNV-1a over a byte range.
std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t size);
std::uint64_t Fnv1a64(const std::vector<std::uint8_t>& data);

// 32-bit folded variant used in packet frames (4 bytes of overhead).
std::uint32_t Checksum32(const std::uint8_t* data, std::size_t size);
std::uint32_t Checksum32(const std::vector<std::uint8_t>& data);

// Incremental FNV-1a: feed bytes as they are produced, read the digest
// at any point. Digest64()/Digest32() over the bytes fed so far equal
// the one-shot Fnv1a64/Checksum32 of the concatenation, so a frame
// encoder can checksum header and payload as it emits them instead of
// assembling a contiguous copy first.
class Fnv1aStream {
 public:
  void Update(std::uint8_t byte) {
    h_ ^= byte;
    h_ *= 0x100000001b3ULL;
  }
  void Update(const std::uint8_t* data, std::size_t size) {
    for (std::size_t i = 0; i < size; ++i) Update(data[i]);
  }
  void Update(const std::vector<std::uint8_t>& data) {
    Update(data.data(), data.size());
  }

  std::uint64_t Digest64() const { return h_; }
  std::uint32_t Digest32() const {
    return static_cast<std::uint32_t>(h_ ^ (h_ >> 32));
  }

  void Reset() { h_ = 0xcbf29ce484222325ULL; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

}  // namespace celect::wire
