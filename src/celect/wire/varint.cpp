#include "celect/wire/varint.h"

namespace celect::wire {

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutSignedVarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  PutVarint(out, ZigzagEncode(v));
}

std::size_t VarintSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

std::size_t SignedVarintSize(std::int64_t v) {
  return VarintSize(ZigzagEncode(v));
}

std::optional<std::uint64_t> VarintReader::ReadVarint() {
  std::uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_) {
    std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0xFE) != 0) return std::nullopt;  // overflow
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
    if (shift > 63) return std::nullopt;
  }
  return std::nullopt;  // truncated
}

std::optional<std::int64_t> VarintReader::ReadSignedVarint() {
  auto raw = ReadVarint();
  if (!raw) return std::nullopt;
  return ZigzagDecode(*raw);
}

std::optional<std::uint8_t> VarintReader::ReadByte() {
  if (pos_ >= size_) return std::nullopt;
  return data_[pos_++];
}

}  // namespace celect::wire
