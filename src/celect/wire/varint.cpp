#include "celect/wire/varint.h"

namespace celect::wire {

void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t ZigzagEncode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t v) {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutSignedVarint(std::vector<std::uint8_t>& out, std::int64_t v) {
  PutVarint(out, ZigzagEncode(v));
}

std::size_t VarintSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    ++n;
    v >>= 7;
  }
  return n;
}

std::size_t SignedVarintSize(std::int64_t v) {
  return VarintSize(ZigzagEncode(v));
}

const char* ToString(VarintError e) {
  switch (e) {
    case VarintError::kNone:
      return "none";
    case VarintError::kTruncated:
      return "truncated";
    case VarintError::kOverlong:
      return "overlong";
    case VarintError::kOverflow:
      return "overflow";
  }
  return "?";
}

std::optional<std::uint64_t> VarintReader::ReadVarint() {
  std::uint64_t result = 0;
  int shift = 0;
  while (pos_ < size_) {
    std::uint8_t byte = data_[pos_++];
    if (shift == 63 && (byte & 0xFE) != 0) {
      error_ = VarintError::kOverflow;
      return std::nullopt;
    }
    result |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // Canonical form: the final group carries at least one bit unless
      // the whole value is a single-byte zero.
      if (shift > 0 && byte == 0) {
        error_ = VarintError::kOverlong;
        return std::nullopt;
      }
      error_ = VarintError::kNone;
      return result;
    }
    shift += 7;
    if (shift > 63) {
      error_ = VarintError::kOverflow;
      return std::nullopt;
    }
  }
  error_ = VarintError::kTruncated;
  return std::nullopt;
}

std::optional<std::int64_t> VarintReader::ReadSignedVarint() {
  auto raw = ReadVarint();
  if (!raw) return std::nullopt;
  return ZigzagDecode(*raw);
}

std::optional<std::uint8_t> VarintReader::ReadByte() {
  if (pos_ >= size_) {
    error_ = VarintError::kTruncated;
    return std::nullopt;
  }
  error_ = VarintError::kNone;
  return data_[pos_++];
}

}  // namespace celect::wire
