// Framing for Packets.
//
// Frame layout:
//   varint  type
//   varint  field count
//   svarint field[0..n)
//   u8[4]   checksum32 over everything before it (little-endian)
//
// The simulator's metrics layer uses EncodedSize to account bits on the
// wire, verifying the model's O(log N)-bits-per-message assumption holds
// for every protocol we implement.
#pragma once

#include <optional>
#include <vector>

#include "celect/wire/packet.h"

namespace celect::wire {

// Hard bounds on what the decoder accepts. The model's packets are
// O(log N) bits — a handful of varint fields — so anything near these
// limits is corruption or an attack, not a protocol message. Rejecting
// early keeps a hostile length prefix from driving an allocation.
inline constexpr std::size_t kMaxEncodedPacketBytes = 1024;
inline constexpr std::size_t kMaxPacketFields = 64;

// Why a Decode failed (kOk iff a packet was returned).
enum class DecodeStatus {
  kOk = 0,
  kTruncated,        // input ended mid-frame
  kOverlongVarint,   // non-canonical varint spelling
  kValueOverflow,    // varint exceeds 64 bits
  kBadType,          // type field above the uint16 packet-type space
  kOversizedFrame,   // input longer than kMaxEncodedPacketBytes
  kTooManyFields,    // field count above kMaxPacketFields
  kBadChecksum,      // FNV mismatch
  kTrailingGarbage,  // valid frame followed by extra bytes
};

const char* ToString(DecodeStatus s);

// Serialises p into a fresh buffer.
std::vector<std::uint8_t> Encode(const Packet& p);

// Appends the encoding of p to out.
void EncodeTo(const Packet& p, std::vector<std::uint8_t>& out);

// Size in bytes of Encode(p) without materialising the buffer.
std::size_t EncodedSize(const Packet& p);

// Parses one frame; nullopt on truncation, oversized or overlong input,
// trailing garbage within the frame bounds, or checksum mismatch. The
// three-argument overload reports the exact cause — reliability layers
// count corrupt-vs-truncated drops separately.
std::optional<Packet> Decode(const std::vector<std::uint8_t>& buf);
std::optional<Packet> Decode(const std::uint8_t* data, std::size_t size);
std::optional<Packet> Decode(const std::uint8_t* data, std::size_t size,
                             DecodeStatus& status);

}  // namespace celect::wire
