// Framing for Packets.
//
// Frame layout:
//   varint  type
//   varint  field count
//   svarint field[0..n)
//   u8[4]   checksum32 over everything before it (little-endian)
//
// The simulator's metrics layer uses EncodedSize to account bits on the
// wire, verifying the model's O(log N)-bits-per-message assumption holds
// for every protocol we implement.
#pragma once

#include <optional>
#include <vector>

#include "celect/wire/packet.h"

namespace celect::wire {

// Serialises p into a fresh buffer.
std::vector<std::uint8_t> Encode(const Packet& p);

// Appends the encoding of p to out.
void EncodeTo(const Packet& p, std::vector<std::uint8_t>& out);

// Size in bytes of Encode(p) without materialising the buffer.
std::size_t EncodedSize(const Packet& p);

// Parses one frame; nullopt on truncation, trailing garbage within the
// frame bounds, or checksum mismatch.
std::optional<Packet> Decode(const std::vector<std::uint8_t>& buf);
std::optional<Packet> Decode(const std::uint8_t* data, std::size_t size);

}  // namespace celect::wire
