#include "celect/wire/checksum.h"

namespace celect::wire {

std::uint64_t Fnv1a64(const std::uint8_t* data, std::size_t size) {
  Fnv1aStream s;
  s.Update(data, size);
  return s.Digest64();
}

std::uint64_t Fnv1a64(const std::vector<std::uint8_t>& data) {
  return Fnv1a64(data.data(), data.size());
}

std::uint32_t Checksum32(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = Fnv1a64(data, size);
  return static_cast<std::uint32_t>(h ^ (h >> 32));
}

std::uint32_t Checksum32(const std::vector<std::uint8_t>& data) {
  return Checksum32(data.data(), data.size());
}

}  // namespace celect::wire
