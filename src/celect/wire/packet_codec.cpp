#include "celect/wire/packet_codec.h"

#include <sstream>

#include "celect/util/check.h"
#include "celect/wire/checksum.h"
#include "celect/wire/varint.h"

namespace celect::wire {

void FieldVec::Grow(std::uint32_t want) {
  std::uint32_t ncap = cap_;
  while (ncap < want) ncap *= 2;
  auto* nheap = new std::int64_t[ncap];
  if (size_ > 0) {
    std::memcpy(nheap, data(), size_ * sizeof(std::int64_t));
  }
  delete[] heap_;
  heap_ = nheap;
  cap_ = ncap;
}

std::int64_t Packet::field(std::size_t i) const {
  CELECT_DCHECK(i < fields.size())
      << "packet type " << type << " has " << fields.size() << " fields";
  return fields[i];
}

std::string ToString(const Packet& p) {
  std::ostringstream os;
  os << "type=" << p.type << " [";
  for (std::size_t i = 0; i < p.fields.size(); ++i) {
    if (i) os << ", ";
    os << p.fields[i];
  }
  os << "]";
  return os.str();
}

void EncodeTo(const Packet& p, std::vector<std::uint8_t>& out) {
  std::size_t start = out.size();
  PutVarint(out, p.type);
  PutVarint(out, p.fields.size());
  for (std::int64_t f : p.fields) PutSignedVarint(out, f);
  std::uint32_t sum = Checksum32(out.data() + start, out.size() - start);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
  }
}

std::vector<std::uint8_t> Encode(const Packet& p) {
  std::vector<std::uint8_t> out;
  out.reserve(EncodedSize(p));
  EncodeTo(p, out);
  return out;
}

std::size_t EncodedSize(const Packet& p) {
  std::size_t n = VarintSize(p.type) + VarintSize(p.fields.size());
  for (std::int64_t f : p.fields) n += SignedVarintSize(f);
  return n + 4;  // checksum
}

std::optional<Packet> Decode(const std::uint8_t* data, std::size_t size) {
  VarintReader reader(data, size);
  auto type = reader.ReadVarint();
  if (!type || *type > 0xFFFF) return std::nullopt;
  auto count = reader.ReadVarint();
  if (!count || *count > size) return std::nullopt;  // cheap sanity bound
  Packet p;
  p.type = static_cast<std::uint16_t>(*type);
  p.fields.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto f = reader.ReadSignedVarint();
    if (!f) return std::nullopt;
    p.fields.push_back(*f);
  }
  std::size_t body_end = reader.position();
  std::uint32_t expect = 0;
  for (int i = 0; i < 4; ++i) {
    auto b = reader.ReadByte();
    if (!b) return std::nullopt;
    expect |= static_cast<std::uint32_t>(*b) << (8 * i);
  }
  if (Checksum32(data, body_end) != expect) return std::nullopt;
  if (!reader.AtEnd()) return std::nullopt;  // trailing garbage
  return p;
}

std::optional<Packet> Decode(const std::vector<std::uint8_t>& buf) {
  return Decode(buf.data(), buf.size());
}

}  // namespace celect::wire
