#include "celect/wire/packet_codec.h"

#include <sstream>

#include "celect/util/check.h"
#include "celect/wire/checksum.h"
#include "celect/wire/varint.h"

namespace celect::wire {

void FieldVec::Grow(std::uint32_t want) {
  std::uint32_t ncap = cap_;
  while (ncap < want) ncap *= 2;
  auto* nheap = new std::int64_t[ncap];
  if (size_ > 0) {
    std::memcpy(nheap, data(), size_ * sizeof(std::int64_t));
  }
  delete[] heap_;
  heap_ = nheap;
  cap_ = ncap;
}

std::int64_t Packet::field(std::size_t i) const {
  CELECT_DCHECK(i < fields.size())
      << "packet type " << type << " has " << fields.size() << " fields";
  return fields[i];
}

std::string ToString(const Packet& p) {
  std::ostringstream os;
  os << "type=" << p.type << " [";
  for (std::size_t i = 0; i < p.fields.size(); ++i) {
    if (i) os << ", ";
    os << p.fields[i];
  }
  os << "]";
  return os.str();
}

void EncodeTo(const Packet& p, std::vector<std::uint8_t>& out) {
  CELECT_DCHECK(p.fields.size() <= kMaxPacketFields)
      << "packet type " << p.type << " exceeds the decoder's field bound";
  std::size_t start = out.size();
  PutVarint(out, p.type);
  PutVarint(out, p.fields.size());
  for (std::int64_t f : p.fields) PutSignedVarint(out, f);
  std::uint32_t sum = Checksum32(out.data() + start, out.size() - start);
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
  }
}

std::vector<std::uint8_t> Encode(const Packet& p) {
  std::vector<std::uint8_t> out;
  out.reserve(EncodedSize(p));
  EncodeTo(p, out);
  return out;
}

std::size_t EncodedSize(const Packet& p) {
  std::size_t n = VarintSize(p.type) + VarintSize(p.fields.size());
  for (std::int64_t f : p.fields) n += SignedVarintSize(f);
  return n + 4;  // checksum
}

const char* ToString(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk:
      return "ok";
    case DecodeStatus::kTruncated:
      return "truncated";
    case DecodeStatus::kOverlongVarint:
      return "overlong-varint";
    case DecodeStatus::kValueOverflow:
      return "value-overflow";
    case DecodeStatus::kBadType:
      return "bad-type";
    case DecodeStatus::kOversizedFrame:
      return "oversized-frame";
    case DecodeStatus::kTooManyFields:
      return "too-many-fields";
    case DecodeStatus::kBadChecksum:
      return "bad-checksum";
    case DecodeStatus::kTrailingGarbage:
      return "trailing-garbage";
  }
  return "?";
}

namespace {

DecodeStatus StatusOf(VarintError e) {
  switch (e) {
    case VarintError::kOverlong:
      return DecodeStatus::kOverlongVarint;
    case VarintError::kOverflow:
      return DecodeStatus::kValueOverflow;
    case VarintError::kTruncated:
    case VarintError::kNone:
      break;
  }
  return DecodeStatus::kTruncated;
}

}  // namespace

std::optional<Packet> Decode(const std::uint8_t* data, std::size_t size,
                             DecodeStatus& status) {
  if (size > kMaxEncodedPacketBytes) {
    status = DecodeStatus::kOversizedFrame;
    return std::nullopt;
  }
  VarintReader reader(data, size);
  auto type = reader.ReadVarint();
  if (!type) {
    status = StatusOf(reader.error());
    return std::nullopt;
  }
  if (*type > 0xFFFF) {
    status = DecodeStatus::kBadType;
    return std::nullopt;
  }
  auto count = reader.ReadVarint();
  if (!count) {
    status = StatusOf(reader.error());
    return std::nullopt;
  }
  if (*count > kMaxPacketFields) {
    status = DecodeStatus::kTooManyFields;
    return std::nullopt;
  }
  Packet p;
  p.type = static_cast<std::uint16_t>(*type);
  p.fields.reserve(*count);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto f = reader.ReadSignedVarint();
    if (!f) {
      status = StatusOf(reader.error());
      return std::nullopt;
    }
    p.fields.push_back(*f);
  }
  std::size_t body_end = reader.position();
  std::uint32_t expect = 0;
  for (int i = 0; i < 4; ++i) {
    auto b = reader.ReadByte();
    if (!b) {
      status = DecodeStatus::kTruncated;
      return std::nullopt;
    }
    expect |= static_cast<std::uint32_t>(*b) << (8 * i);
  }
  if (Checksum32(data, body_end) != expect) {
    status = DecodeStatus::kBadChecksum;
    return std::nullopt;
  }
  if (!reader.AtEnd()) {
    status = DecodeStatus::kTrailingGarbage;
    return std::nullopt;
  }
  status = DecodeStatus::kOk;
  return p;
}

std::optional<Packet> Decode(const std::uint8_t* data, std::size_t size) {
  DecodeStatus status;
  return Decode(data, size, status);
}

std::optional<Packet> Decode(const std::vector<std::uint8_t>& buf) {
  return Decode(buf.data(), buf.size());
}

}  // namespace celect::wire
