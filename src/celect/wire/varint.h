// LEB128-style variable-length integer encoding with zigzag for signed
// values. Small identities and levels (the common case) cost one byte.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace celect::wire {

// Appends the unsigned LEB128 encoding of v to out.
void PutVarint(std::vector<std::uint8_t>& out, std::uint64_t v);

// Zigzag-maps v and appends its varint encoding.
void PutSignedVarint(std::vector<std::uint8_t>& out, std::int64_t v);

// Number of bytes PutVarint would append.
std::size_t VarintSize(std::uint64_t v);
std::size_t SignedVarintSize(std::int64_t v);

// Zigzag mapping (exposed for tests).
std::uint64_t ZigzagEncode(std::int64_t v);
std::int64_t ZigzagDecode(std::uint64_t v);

// Why a read failed. The decoder is strict: besides truncation and
// 64-bit overflow it rejects *overlong* (non-canonical) encodings — a
// continuation chain whose final group is all zero, e.g. {0x80, 0x00}
// for 0. The encoder never emits them, so on the wire they can only be
// corruption or an attacker-controlled alternate spelling; accepting
// them would let two distinct byte strings decode to the same packet
// (and silently survive the re-encode identity the fuzz suite pins).
enum class VarintError {
  kNone = 0,
  kTruncated,  // ran out of bytes mid-chain
  kOverlong,   // non-canonical encoding (redundant trailing zero group)
  kOverflow,   // value exceeds 64 bits
};

const char* ToString(VarintError e);

// Cursor-based decoding; returns nullopt on truncated, overlong, or
// overflowing input, with the cause readable via error().
class VarintReader {
 public:
  VarintReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit VarintReader(const std::vector<std::uint8_t>& buf)
      : VarintReader(buf.data(), buf.size()) {}

  std::optional<std::uint64_t> ReadVarint();
  std::optional<std::int64_t> ReadSignedVarint();

  // Raw byte access (for checksums/headers).
  std::optional<std::uint8_t> ReadByte();

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

  // The cause of the most recent failed Read*; kNone after a success.
  VarintError error() const { return error_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  VarintError error_ = VarintError::kNone;
};

}  // namespace celect::wire
