// The unit of communication between processes.
//
// The paper's model allows each message to carry O(log N) bits. A Packet
// is a protocol-defined type tag plus a handful of integer fields
// (identities, levels, steps — all O(log N)-bit quantities). The codec in
// packet_codec.h serialises packets so the metrics layer can account for
// actual bits on the wire.
//
// Fields live in a small-buffer vector (FieldVec): every protocol here
// sends at most 5 literal fields (the lease wrap adds one more), so the
// common case stays inline and a packet copy is a few memcpy'd words —
// no allocator traffic on the simulator's hot path, where every send
// used to cost a heap vector and every queued event a free.
#pragma once

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <string>

namespace celect::wire {

// Minimal inline-storage vector of int64 fields. Grows to the heap past
// kInline elements; supports the slice of the std::vector API the
// protocols and codec actually use.
class FieldVec {
 public:
  using value_type = std::int64_t;
  using iterator = std::int64_t*;
  using const_iterator = const std::int64_t*;

  // Inline capacity: one more than the widest packet any protocol sends
  // (5 fields) so even lease-wrapped packets stay allocation-free.
  static constexpr std::uint32_t kInline = 6;

  FieldVec() = default;
  FieldVec(std::initializer_list<std::int64_t> fs) {
    assign(fs.begin(), fs.end());
  }
  FieldVec(const FieldVec& o) { assign(o.begin(), o.end()); }
  FieldVec(FieldVec&& o) noexcept { MoveFrom(o); }
  FieldVec& operator=(const FieldVec& o) {
    if (this != &o) assign(o.begin(), o.end());
    return *this;
  }
  FieldVec& operator=(FieldVec&& o) noexcept {
    if (this != &o) {
      Release();
      MoveFrom(o);
    }
    return *this;
  }
  ~FieldVec() { Release(); }

  std::int64_t* begin() { return data(); }
  std::int64_t* end() { return data() + size_; }
  const std::int64_t* begin() const { return data(); }
  const std::int64_t* end() const { return data() + size_; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  std::int64_t& operator[](std::size_t i) { return data()[i]; }
  const std::int64_t& operator[](std::size_t i) const { return data()[i]; }

  void clear() { size_ = 0; }

  void reserve(std::size_t n) {
    if (n > cap_) Grow(static_cast<std::uint32_t>(n));
  }

  void push_back(std::int64_t v) {
    if (size_ == cap_) Grow(cap_ * 2);
    data()[size_++] = v;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    Append(first, last);
  }

  // Append-only insert (the one shape used in-tree: pos == end()).
  template <typename It>
  void insert(iterator pos, It first, It last) {
    (void)pos;  // always end(); FieldVec does not support middle inserts
    Append(first, last);
  }

  friend bool operator==(const FieldVec& a, const FieldVec& b) {
    return a.size_ == b.size_ &&
           (a.size_ == 0 ||
            std::memcmp(a.data(), b.data(),
                        a.size_ * sizeof(std::int64_t)) == 0);
  }

 private:
  std::int64_t* data() { return heap_ ? heap_ : inline_; }
  const std::int64_t* data() const { return heap_ ? heap_ : inline_; }

  template <typename It>
  void Append(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  void Grow(std::uint32_t want);
  void Release() {
    delete[] heap_;
    heap_ = nullptr;
    cap_ = kInline;
  }
  void MoveFrom(FieldVec& o) noexcept {
    size_ = o.size_;
    cap_ = o.cap_;
    heap_ = o.heap_;
    if (!heap_ && size_ > 0) {
      std::memcpy(inline_, o.inline_, size_ * sizeof(std::int64_t));
    }
    o.heap_ = nullptr;
    o.size_ = 0;
    o.cap_ = kInline;
  }

  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInline;
  std::int64_t* heap_ = nullptr;  // null while the fields fit inline
  std::int64_t inline_[kInline];
};

struct Packet {
  std::uint16_t type = 0;
  FieldVec fields;

  Packet() = default;
  Packet(std::uint16_t t, std::initializer_list<std::int64_t> fs)
      : type(t), fields(fs) {}

  // Field accessor with bounds checking in debug builds.
  std::int64_t field(std::size_t i) const;

  friend bool operator==(const Packet&, const Packet&) = default;
};

// Debug rendering: "type=3 [7, 42]".
std::string ToString(const Packet& p);

}  // namespace celect::wire
