// The unit of communication between processes.
//
// The paper's model allows each message to carry O(log N) bits. A Packet
// is a protocol-defined type tag plus a handful of integer fields
// (identities, levels, steps — all O(log N)-bit quantities). The codec in
// packet_codec.h serialises packets so the metrics layer can account for
// actual bits on the wire.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace celect::wire {

struct Packet {
  std::uint16_t type = 0;
  std::vector<std::int64_t> fields;

  Packet() = default;
  Packet(std::uint16_t t, std::initializer_list<std::int64_t> fs)
      : type(t), fields(fs) {}

  // Field accessor with bounds checking in debug builds.
  std::int64_t field(std::size_t i) const;

  friend bool operator==(const Packet&, const Packet&) = default;
};

// Debug rendering: "type=3 [7, 42]".
std::string ToString(const Packet& p);

}  // namespace celect::wire
