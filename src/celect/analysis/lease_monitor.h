// Availability accounting for the continuous election service.
//
// The InvariantRegistry checks the *instant* safety claim (at most one
// unexpired lease). This observer measures the complementary liveness
// side of a churn run:
//
//   unavailability   exact tick-count of the service window [0, horizon)
//                    during which no live node held an unexpired lease.
//                    Coverage is integrated between events from cached
//                    claims: a claim observed at time t covers [t, D]
//                    until the holder drops it (step-down truncates at
//                    the drop instant) or crashes (truncates at the
//                    crash instant);
//
//   election latency a histogram (obs::Histogram, tick-valued) of
//                    gap lengths: from the instant coverage lapsed to
//                    the instant a new unexpired claim appeared. One
//                    sample per closed gap — the re-election storm's
//                    p50/p99 come straight from here;
//
//   reelection_overdue  the bounded-window liveness invariant: every
//                    coverage gap that starts early enough for a full
//                    re-election window to fit inside the horizon must
//                    close within `reelection_window`. Gaps that start
//                    too close to (or past) the horizon are exempt —
//                    the engine deliberately stops nominating there, so
//                    the final lapse is the shutdown, not a bug;
//
//   lease timeline   a capped list of {node, term, granted_at,
//                    last_deadline, dropped_at} segments, for demos and
//                    debugging (examples/churn_demo.cpp prints it).
//
// Violations are recorded like the registry's: human-readable strings
// (capped) plus a Metrics tally surfacing as
// counters["invariant.reelection_overdue"]. An optional chained
// observer lets the monitor stack with an InvariantRegistry on the
// single RuntimeOptions::observer slot.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "celect/obs/telemetry.h"
#include "celect/sim/hooks.h"
#include "celect/sim/time.h"

namespace celect::analysis {

inline constexpr char kInvReelectionOverdue[] = "reelection_overdue";

struct LeaseMonitorOptions {
  // Service window end; unavailability is integrated over [0, horizon)
  // and gaps starting at or after horizon - reelection_window are exempt
  // from the overdue check. Match LeaseParams::horizon.
  sim::Time horizon = sim::Time::FromUnits(60);
  // Bounded re-election window: a coverage gap open longer than this
  // (and not horizon-exempt) is a liveness violation. Zero disables the
  // check (unavailability and latency are still measured).
  sim::Time reelection_window = sim::Time::Zero();
  // Timeline segment cap; past it segments are dropped (counters and
  // histograms keep accumulating).
  std::size_t max_timeline = 256;
  // Optional downstream observer (e.g. an InvariantRegistry), invoked
  // after the monitor's own processing. Not owned; may be null.
  sim::RunObserver* chained = nullptr;
};

class LeaseMonitor : public sim::RunObserver {
 public:
  // One holder's reign, as observed: granted_at is the first event at
  // which the claim was visible, last_deadline the furthest deadline it
  // reached, dropped_at the event at which the claim disappeared
  // (step-down, crash, or expiry noticed) — Time::Max() while open.
  struct Segment {
    sim::NodeId node = 0;
    std::int64_t term = 0;
    sim::Time granted_at;
    sim::Time last_deadline;
    sim::Time dropped_at = sim::Time::Max();
  };

  explicit LeaseMonitor(LeaseMonitorOptions opt = {}) : opt_(opt) {}

  void AfterEvent(sim::NodeId target, const sim::RunInspect& in) override;
  void AtQuiescence(const sim::RunInspect& in) override;

  // Ticks of [0, horizon) with no unexpired lease held by a live node.
  std::int64_t unavailable_ticks() const { return unavailable_ticks_; }
  // Gap lengths in ticks; count() is the number of closed gaps (i.e.
  // completed re-elections that restored service).
  const obs::Histogram& election_latency() const { return election_latency_; }
  const std::vector<Segment>& timeline() const { return timeline_; }
  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  std::string Summary() const;

 private:
  void Violate(const sim::RunInspect& in, std::string what);
  // Integrates coverage over [last_now_, now) and advances last_now_.
  void Integrate(const sim::RunInspect& in, sim::Time now);
  // Re-publishes the target's claim into the caches; `now` stamps
  // truncations and segment boundaries.
  void ObserveTarget(sim::NodeId target, const sim::RunInspect& in);
  void CloseSegment(sim::NodeId node, sim::Time at);
  // Largest cover-until tick over current claimants (LLONG_MIN if none).
  std::int64_t CoverMax() const;

  LeaseMonitorOptions opt_;
  std::vector<std::string> violations_;
  // Per-claimant cover-until tick: the claim's deadline, truncated to
  // the drop/crash instant when the holder goes away.
  std::map<sim::NodeId, std::int64_t> cover_;
  // Claimed term per node, to split timeline segments across terms.
  std::map<sim::NodeId, std::int64_t> claimed_term_;
  // Open timeline segment per node (index into timeline_).
  std::map<sim::NodeId, std::size_t> open_segment_;
  std::vector<Segment> timeline_;
  std::int64_t last_now_ = 0;        // integration frontier (ticks)
  std::int64_t unavailable_ticks_ = 0;
  bool gap_open_ = true;             // service starts leaderless
  std::int64_t gap_start_ = 0;       // tick the open gap began
  bool overdue_reported_ = false;    // per-gap overdue latch
  obs::Histogram election_latency_;
};

}  // namespace celect::analysis
