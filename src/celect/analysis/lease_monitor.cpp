#include "celect/analysis/lease_monitor.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

namespace celect::analysis {

namespace {
// Readable-violation cap, matching the InvariantRegistry's.
constexpr std::size_t kMaxRecorded = 64;
}  // namespace

void LeaseMonitor::Violate(const sim::RunInspect& in, std::string what) {
  in.metrics->RecordInvariantViolation(kInvReelectionOverdue);
  if (violations_.size() < kMaxRecorded) {
    violations_.push_back(std::string(kInvReelectionOverdue) + ": " +
                          std::move(what));
  }
}

std::int64_t LeaseMonitor::CoverMax() const {
  std::int64_t m = -1;
  for (const auto& [node, until] : cover_) m = std::max(m, until);
  return m;
}

void LeaseMonitor::Integrate(const sim::RunInspect& in, sim::Time now) {
  const std::int64_t t = now.ticks();
  if (t <= last_now_) return;  // controlled runs may replay time order
  const std::int64_t cover = CoverMax();
  // Instants s <= cover are covered, so [last_now_, t) contributes its
  // overlap with (cover, t), clamped to the service window.
  const std::int64_t from = std::max(last_now_, cover + 1);
  const std::int64_t to = std::min(t, opt_.horizon.ticks());
  if (to > from) unavailable_ticks_ += to - from;
  if (!gap_open_ && cover < t) {
    // Coverage lapsed somewhere inside the interval: the gap began the
    // instant after the last lease ran out (or was dropped).
    gap_open_ = true;
    gap_start_ = std::max(cover + 1, last_now_);
    overdue_reported_ = false;
  }
  if (gap_open_ && !overdue_reported_ &&
      opt_.reelection_window.ticks() > 0) {
    const std::int64_t w = opt_.reelection_window.ticks();
    if (gap_start_ + w <= opt_.horizon.ticks() && t - gap_start_ > w) {
      overdue_reported_ = true;
      std::ostringstream os;
      os << "coverage gap open since t=" << gap_start_
         << " still unclosed at t=" << t << " (window " << w << " ticks)";
      Violate(in, os.str());
    }
  }
  last_now_ = t;
}

void LeaseMonitor::CloseSegment(sim::NodeId node, sim::Time at) {
  auto it = open_segment_.find(node);
  if (it == open_segment_.end()) return;
  timeline_[it->second].dropped_at = at;
  open_segment_.erase(it);
}

void LeaseMonitor::ObserveTarget(sim::NodeId target,
                                 const sim::RunInspect& in) {
  const std::int64_t t = in.now.ticks();
  std::optional<sim::ProtocolObservables::LeaseClaim> claim;
  if (!(*in.failed)[target]) claim = in.process(target).Observe().lease;
  if (claim.has_value() && claim->deadline.ticks() >= t) {
    cover_[target] = claim->deadline.ticks();
    const auto ct = claimed_term_.find(target);
    if (ct == claimed_term_.end() || ct->second != claim->term) {
      CloseSegment(target, in.now);  // the previous term's reign ended
      claimed_term_[target] = claim->term;
      if (timeline_.size() < opt_.max_timeline) {
        open_segment_[target] = timeline_.size();
        timeline_.push_back({target, claim->term, in.now, claim->deadline,
                             sim::Time::Max()});
      }
    } else {
      const auto os = open_segment_.find(target);
      if (os != open_segment_.end()) {
        Segment& seg = timeline_[os->second];
        seg.last_deadline = std::max(seg.last_deadline, claim->deadline);
      }
    }
  } else {
    // No live, unexpired claim: the holder stepped down, crashed, or
    // noticed expiry. Its coverage ends now (natural expiry keeps the
    // earlier deadline — min() never extends).
    const auto cv = cover_.find(target);
    if (cv != cover_.end()) cv->second = std::min(cv->second, t);
    if (claimed_term_.erase(target) > 0) CloseSegment(target, in.now);
  }
}

void LeaseMonitor::AfterEvent(sim::NodeId target, const sim::RunInspect& in) {
  Integrate(in, in.now);
  ObserveTarget(target, in);
  if (gap_open_ && CoverMax() >= last_now_) {
    // A fresh unexpired claim restored service at this instant.
    gap_open_ = false;
    const std::int64_t len = std::max<std::int64_t>(last_now_ - gap_start_, 0);
    election_latency_.Add(static_cast<std::uint64_t>(len));
    if (!overdue_reported_ && opt_.reelection_window.ticks() > 0 &&
        len > opt_.reelection_window.ticks() &&
        gap_start_ + opt_.reelection_window.ticks() <=
            opt_.horizon.ticks()) {
      overdue_reported_ = true;
      std::ostringstream os;
      os << "coverage gap from t=" << gap_start_ << " closed only at t="
         << last_now_ << " (" << len << " ticks > window "
         << opt_.reelection_window.ticks() << ")";
      Violate(in, os.str());
    }
  }
  if (opt_.chained != nullptr) opt_.chained->AfterEvent(target, in);
}

void LeaseMonitor::AtQuiescence(const sim::RunInspect& in) {
  Integrate(in, in.now);
  if (gap_open_ && !overdue_reported_ &&
      opt_.reelection_window.ticks() > 0 &&
      gap_start_ + opt_.reelection_window.ticks() <= opt_.horizon.ticks()) {
    // Nothing can close the gap after the queue drained; an open
    // non-exempt gap is a failed re-election regardless of its length.
    overdue_reported_ = true;
    std::ostringstream os;
    os << "coverage gap open since t=" << gap_start_
       << " never closed (quiesced at t=" << in.now.ticks() << ")";
    Violate(in, os.str());
  }
  if (opt_.chained != nullptr) opt_.chained->AtQuiescence(in);
}

std::string LeaseMonitor::Summary() const {
  std::string out;
  for (const auto& v : violations_) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

}  // namespace celect::analysis
