#include "celect/analysis/invariants.h"

#include <algorithm>
#include <sstream>

namespace celect::analysis {

namespace {
// Readable-violation cap; tallies in Metrics keep counting past it.
constexpr std::size_t kMaxRecorded = 64;
}  // namespace

void InvariantRegistry::Violate(const sim::RunInspect& in, const char* kind,
                                std::string what) {
  in.metrics->RecordInvariantViolation(kind);
  if (violations_.size() < kMaxRecorded) {
    violations_.push_back(std::string(kind) + ": " + std::move(what));
  }
}

void InvariantRegistry::CheckLeader(const sim::RunInspect& in) {
  const sim::Metrics& m = *in.metrics;
  if (opt_.unique_leader && m.leader_declarations() > 1 &&
      !multiple_reported_) {
    multiple_reported_ = true;
    std::ostringstream os;
    os << m.leader_declarations() << " leader declarations (last leader id "
       << *m.leader_id() << ")";
    Violate(in, kInvMultipleLeaders, os.str());
  }
  if (opt_.leader_is_max_id && m.leader_declarations() > 0 &&
      !max_id_reported_ && *m.leader_id() != expected_leader_) {
    max_id_reported_ = true;
    std::ostringstream os;
    os << "leader id " << *m.leader_id() << ", expected max id "
       << expected_leader_;
    Violate(in, kInvLeaderNotMaxId, os.str());
  }
}

void InvariantRegistry::CheckMonotone(sim::NodeId target,
                                      const sim::RunInspect& in,
                                      const sim::ProtocolObservables& obs) {
  for (const auto& [name, value] : obs.monotone) {
    auto [it, inserted] = last_.try_emplace({target, name}, value);
    if (inserted) continue;
    if (value < it->second) {
      std::ostringstream os;
      os << "node " << target << " gauge '" << name << "' fell from "
         << it->second << " to " << value;
      Violate(in, kInvMonotoneRegression, os.str());
    }
    it->second = std::max(it->second, value);
  }
}

void InvariantRegistry::CheckLease(sim::NodeId target,
                                   const sim::RunInspect& in,
                                   const sim::ProtocolObservables* obs) {
  // Re-publish only the target's claim (dead nodes claim nothing), then
  // scan the claimant set for two unexpired deadlines.
  if (obs != nullptr && obs->lease.has_value()) {
    lease_claims_[target] = *obs->lease;
  } else {
    lease_claims_.erase(target);
  }
  sim::NodeId holder = 0;
  bool found = false;
  for (const auto& [node, claim] : lease_claims_) {
    if (claim.deadline < in.now) continue;  // expired: not a holder
    if (!found) {
      holder = node;
      found = true;
      continue;
    }
    if (lease_pairs_reported_.insert({holder, node}).second) {
      std::ostringstream os;
      os << "nodes " << holder << " and " << node
         << " both hold unexpired leases at t=" << in.now.ticks()
         << " (terms " << lease_claims_[holder].term << " and " << claim.term
         << ")";
      Violate(in, kInvLeaseOverlap, os.str());
    }
  }
}

void InvariantRegistry::CheckConservation(const sim::RunInspect& in) {
  const sim::Metrics& m = *in.metrics;
  const std::uint64_t sent = m.messages_sent() + m.messages_duplicated();
  const std::uint64_t accounted =
      m.messages_delivered() + m.messages_dropped() + in.deliveries_inflight;
  if (sent != accounted) {
    std::ostringstream os;
    os << "sent+duplicated=" << sent << " but delivered+dropped+inflight="
       << accounted;
    Violate(in, kInvConservation, os.str());
  }
}

void InvariantRegistry::AfterEvent(sim::NodeId target,
                                   const sim::RunInspect& in) {
  if (!expected_leader_known_) {
    // Snapshot before any mid-run crash can remove the max-id node; the
    // max-id check is only meaningful for configs where it stays live.
    expected_leader_known_ = true;
    sim::Id best = (*in.ids)[0];
    for (sim::NodeId i = 0; i < in.n; ++i) {
      if (!(*in.failed)[i]) best = std::max(best, (*in.ids)[i]);
    }
    expected_leader_ = best;
  }
  if (was_failed_.empty()) was_failed_.assign(in.n, 0);
  const bool alive = !(*in.failed)[target];
  if (alive && was_failed_[target]) {
    // Failed→alive edge: a rejoin rebuilt the node from the factory, so
    // its gauges legally restart from zero and any cached claim belongs
    // to the previous incarnation.
    for (auto it = last_.lower_bound({target, std::string()});
         it != last_.end() && it->first.first == target;) {
      it = last_.erase(it);
    }
    lease_claims_.erase(target);
  }
  was_failed_[target] = alive ? 0 : 1;
  CheckLeader(in);
  if (alive && (opt_.monotone_observables || opt_.at_most_one_lease_holder)) {
    const sim::ProtocolObservables obs = in.process(target).Observe();
    if (opt_.monotone_observables) CheckMonotone(target, in, obs);
    if (opt_.at_most_one_lease_holder) CheckLease(target, in, &obs);
  } else if (!alive && opt_.at_most_one_lease_holder) {
    CheckLease(target, in, nullptr);
  }
  if (opt_.message_conservation) CheckConservation(in);
}

void InvariantRegistry::AtQuiescence(const sim::RunInspect& in) {
  if (opt_.message_conservation) {
    CheckConservation(in);
    if (in.deliveries_inflight != 0) {
      std::ostringstream os;
      os << in.deliveries_inflight << " deliveries in flight at quiescence";
      Violate(in, kInvConservation, os.str());
    }
  }
  if (!opt_.quiescence_termination) return;
  if (in.metrics->leader_declarations() == 0) {
    Violate(in, kInvNoTermination, "quiescent with no leader declared");
  }
  for (sim::NodeId i = 0; i < in.n; ++i) {
    if ((*in.failed)[i]) continue;
    const auto obs = in.process(i).Observe();
    if (obs.terminated.has_value() && !*obs.terminated) {
      std::ostringstream os;
      os << "node " << i << " still mid-pursuit at quiescence ("
         << in.process(i).DescribeState() << ")";
      Violate(in, kInvNoTermination, os.str());
    }
  }
}

std::string InvariantRegistry::Summary() const {
  std::string out;
  for (const auto& v : violations_) {
    if (!out.empty()) out += "; ";
    out += v;
  }
  return out;
}

}  // namespace celect::analysis
