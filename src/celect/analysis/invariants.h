// The invariant registry — the safety/liveness claims of the paper's
// correctness lemmas, checked after every dispatched event.
//
// Implements sim::RunObserver, so it plugs into any Runtime (seeded
// simulation, chaos case, or explorer-controlled run) via
// RuntimeOptions::observer:
//
//   unique_leader      at most one DeclareLeader, ever (Lemmas 1-3 / the
//                      accept-reject discipline of protocol E);
//   leader_is_max_id   the declared leader carries the largest identity
//                      among initially-live nodes — opt-in, valid only
//                      for configurations where the protocol guarantees
//                      it (fault-free, every node a base node);
//   monotone           every gauge a protocol exposes via
//                      Process::Observe() (levels, phase indices, accept
//                      counts) never decreases at a node; a rejoin resets
//                      the node's baselines (the fresh process legally
//                      restarts its gauges from zero);
//   lease_overlap      at most one *valid* lease claim across live nodes
//                      at every instant — the instant-safety invariant of
//                      the continuous election service. A claim whose
//                      deadline has passed is not a holder, so expired
//                      claims lingering until their owner notices are
//                      fine; two unexpired claims are a safety hole;
//   conservation       every send is delivered, dropped with a recorded
//                      cause, or still in flight — nothing vanishes;
//   termination        opt-in, checked at quiescence: a leader was
//                      declared and no node still claims to be mid-
//                      pursuit (quiescence implies termination).
//
// Violations are recorded as human-readable strings (capped) and as
// per-cause tallies in the run's Metrics, surfacing in
// RunResult::counters as "invariant.<kind>" — mirroring the per-cause
// drop counters.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "celect/sim/hooks.h"

namespace celect::analysis {

// Stable violation kinds (counter suffixes).
inline constexpr char kInvMultipleLeaders[] = "multiple_leaders";
inline constexpr char kInvLeaderNotMaxId[] = "leader_not_max_id";
inline constexpr char kInvMonotoneRegression[] = "monotone_regression";
inline constexpr char kInvConservation[] = "conservation";
inline constexpr char kInvNoTermination[] = "no_termination";
inline constexpr char kInvLeaseOverlap[] = "lease_overlap";

struct InvariantOptions {
  bool unique_leader = true;
  // Requires a configuration where the max-id node participates and
  // cannot crash; enable for fault-free all-base runs only.
  bool leader_is_max_id = false;
  bool monotone_observables = true;
  bool message_conservation = true;
  // At most one unexpired ProtocolObservables::lease claim across live
  // nodes after every event. Free for protocols that publish no claims.
  bool at_most_one_lease_holder = true;
  // Quiescence-implies-termination: at quiescence a leader exists and
  // every live node reporting a termination claim reports true. Enable
  // for fault-free runs (a protocol pushed past its fault tolerance may
  // legally stall leaderless).
  bool quiescence_termination = false;
};

class InvariantRegistry : public sim::RunObserver {
 public:
  explicit InvariantRegistry(InvariantOptions opt = {}) : opt_(opt) {}

  void AfterEvent(sim::NodeId target, const sim::RunInspect& in) override;
  void AtQuiescence(const sim::RunInspect& in) override;

  bool ok() const { return violations_.empty(); }
  // First-N human-readable violations (every one is also tallied in the
  // run's Metrics, even past the cap).
  const std::vector<std::string>& violations() const { return violations_; }
  // "; "-joined violations; empty string when the run was clean.
  std::string Summary() const;

 private:
  void Violate(const sim::RunInspect& in, const char* kind,
               std::string what);
  void CheckLeader(const sim::RunInspect& in);
  void CheckMonotone(sim::NodeId target, const sim::RunInspect& in,
                     const sim::ProtocolObservables& obs);
  void CheckLease(sim::NodeId target, const sim::RunInspect& in,
                  const sim::ProtocolObservables* obs);
  void CheckConservation(const sim::RunInspect& in);

  InvariantOptions opt_;
  std::vector<std::string> violations_;
  // Per-(node, gauge) high-water marks for the monotonicity check.
  std::map<std::pair<sim::NodeId, std::string>, std::int64_t> last_;
  // Cached lease claims, maintained incrementally: only the event's
  // target re-publishes per AfterEvent, so the overlap scan is over the
  // (tiny) set of claimants, not all n nodes.
  std::map<sim::NodeId, sim::ProtocolObservables::LeaseClaim> lease_claims_;
  // Overlapping pairs already reported — a persisting overlap is one
  // violation, not one per event.
  std::set<std::pair<sim::NodeId, sim::NodeId>> lease_pairs_reported_;
  // Last-seen liveness per node, to spot failed→alive (rejoin) edges.
  std::vector<char> was_failed_;
  sim::Id expected_leader_ = 0;
  bool expected_leader_known_ = false;
  bool multiple_reported_ = false;
  bool max_id_reported_ = false;
};

}  // namespace celect::analysis
