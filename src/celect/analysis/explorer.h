// Systematic interleaving exploration (stateless model checking) for
// small configurations.
//
// The paper's correctness lemmas quantify over *every* asynchronous
// message ordering; a seeded simulation executes one, and the chaos
// harness samples. The Explorer closes the gap for small N: it drives
// the Runtime through a controlled scheduler (RuntimeOptions::
// controller) and enumerates, by depth-first search, every maximal
// ordering of message deliveries, wakeups, timers and crashes — subject
// only to per-link FIFO — re-executing from the initial state down each
// branch (deterministic factories make replays exact).
//
// Pruning is sleep-set DPOR: two events commute exactly when they
// target different nodes (a handler touches only its own node's state;
// queue appends and metrics are commutative), so after fully exploring
// a branch that dispatched event e, sibling branches put e to sleep
// until some event dependent with it (same target node) runs. This
// visits every Mazurkiewicz trace once instead of every interleaving.
//
// A schedule is a choice string — the index picked at each branch
// point, rendered "2.0.1" — and any violating schedule is emitted as
// one, minimised greedily, and replayable bit-for-bit with
// ReplaySchedule (same factory + config ⇒ identical RunResult; pair
// with harness::FingerprintResult to assert it).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "celect/analysis/invariants.h"
#include "celect/sim/network.h"
#include "celect/sim/process.h"
#include "celect/sim/runtime.h"

namespace celect::analysis {

// Builds a fresh NetworkConfig per execution. Must be deterministic:
// every call describes the identical network (fixed seed) or replays
// diverge and the explorer CHECK-fails.
using ConfigFactory = std::function<sim::NetworkConfig()>;

struct ExplorerOptions {
  // Execution budget: maximal schedules to run before giving up (the
  // result is then marked budget_exhausted, not a proof).
  std::uint64_t max_schedules = 1'000'000;
  // Event budget per execution (a protocol that does not quiesce on
  // some schedule CHECK-fails loudly rather than spinning).
  std::uint64_t max_events_per_run = 1'000'000;
  // Abort the exploration at the first violating schedule (on by
  // default; turning it off keeps only the first counterexample but
  // still walks the rest of the space).
  bool stop_at_first_violation = true;
  // Greedily minimise the counterexample by zeroing and truncating
  // choices that are not needed to reproduce the violation.
  bool shrink = true;
  // Invariants checked on every execution. quiescence_termination and
  // leader_is_max_id are worth enabling for fault-free all-base
  // configs — that is where the paper guarantees them.
  InvariantOptions invariants;
};

struct ExploreStats {
  std::uint64_t schedules = 0;       // complete maximal schedules executed
  std::uint64_t events = 0;          // events dispatched across all runs
  std::uint64_t branch_points = 0;   // distinct states with >1 enabled event
  std::uint64_t sleep_pruned = 0;    // branches skipped by sleep sets
  std::uint64_t max_enabled = 0;     // widest enabled set seen
  bool budget_exhausted = false;     // stopped at max_schedules
};

struct Counterexample {
  std::vector<std::uint32_t> choices;
  std::string schedule;              // ScheduleToString(choices)
  std::vector<std::string> violations;
};

struct ExploreResult {
  ExploreStats stats;
  std::optional<Counterexample> counterexample;
  bool ok() const { return !counterexample.has_value(); }
};

// Exhaustively explores the protocol under every schedule of the given
// configuration (up to the budget). Clean result + !budget_exhausted is
// a proof of the enabled invariants for this configuration.
ExploreResult Explore(const sim::ProcessFactory& factory,
                      const ConfigFactory& config,
                      const ExplorerOptions& opt = {});

// Replays a choice string deterministically: choice i is taken at step
// i (clamped to the enabled range; missing choices default to 0, the
// lowest-sequence enabled event). Any string is therefore a valid
// schedule, and equal (factory, config, choices) triples produce
// bit-identical RunResults.
struct ReplayOutcome {
  sim::RunResult result;
  std::vector<std::string> violations;
};
ReplayOutcome ReplaySchedule(const sim::ProcessFactory& factory,
                             const ConfigFactory& config,
                             const std::vector<std::uint32_t>& choices,
                             const InvariantOptions& invariants = {});

// ReplaySchedule with tracing on: same deterministic replay, plus the
// full trace record stream — the bridge from a shrunk counterexample to
// a Perfetto timeline (obs::WriteChromeTrace) or the trace inspector's
// causal-chain view.
struct TracedReplayOutcome {
  sim::RunResult result;
  std::vector<sim::TraceRecord> records;
  std::vector<std::string> violations;
};
TracedReplayOutcome ReplayScheduleTraced(
    const sim::ProcessFactory& factory, const ConfigFactory& config,
    const std::vector<std::uint32_t>& choices,
    const InvariantOptions& invariants = {});

// "2.0.1" <-> {2, 0, 1}; the empty vector renders "" and parses back.
std::string ScheduleToString(const std::vector<std::uint32_t>& choices);
std::vector<std::uint32_t> ScheduleFromString(const std::string& s);

}  // namespace celect::analysis
