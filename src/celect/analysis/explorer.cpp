#include "celect/analysis/explorer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "celect/util/check.h"

namespace celect::analysis {

namespace {

using sim::Event;
using sim::EventTarget;
using sim::NodeId;

// One node of the exploration tree: the enabled set seen at that depth,
// which alternative is currently being explored, and the sleep set
// (event -> target) of alternatives already covered or inherited.
// Frames persist across executions; re-executions of the prefix verify
// the enabled set is bit-identical (determinism guard).
struct Frame {
  std::vector<std::uint64_t> seqs;   // enabled event seqs, ascending
  std::vector<NodeId> targets;       // target node per enabled entry
  std::map<std::uint64_t, NodeId> sleep;
  std::uint32_t chosen = 0;
};

// Drives one execution: replays the persistent prefix, then extends it
// with first-awake choices, growing the frame stack. Aborts the run
// when every enabled event is asleep (the branch is redundant) or when
// a violation has been recorded (the counterexample ends here).
class DfsController : public sim::ScheduleController {
 public:
  enum class Stop { kNone, kSleepPruned, kViolation };

  DfsController(std::vector<Frame>& frames, ExploreStats& stats,
                const InvariantRegistry& registry, bool stop_on_violation)
      : frames_(frames),
        stats_(stats),
        registry_(registry),
        stop_on_violation_(stop_on_violation) {}

  Stop stop() const { return stop_; }
  std::size_t depth() const { return depth_; }

  std::optional<std::size_t> ChooseNext(
      const std::vector<const Event*>& enabled) override {
    if (stop_on_violation_ && !registry_.ok()) {
      stop_ = Stop::kViolation;
      return std::nullopt;
    }
    stats_.max_enabled =
        std::max<std::uint64_t>(stats_.max_enabled, enabled.size());
    if (depth_ < frames_.size()) {
      // Prefix replay: the enabled set must be exactly what the earlier
      // execution saw, or the factory/config is nondeterministic.
      const Frame& f = frames_[depth_];
      CELECT_CHECK(f.seqs.size() == enabled.size())
          << "explorer replay diverged at depth " << depth_;
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        CELECT_CHECK(f.seqs[i] == enabled[i]->seq)
            << "explorer replay diverged at depth " << depth_;
      }
      ++depth_;
      return f.chosen;
    }
    // New frontier: build the frame, inherit the sleep set.
    Frame f;
    f.seqs.reserve(enabled.size());
    f.targets.reserve(enabled.size());
    for (const Event* e : enabled) {
      f.seqs.push_back(e->seq);
      f.targets.push_back(EventTarget(e->body));
    }
    if (depth_ > 0) {
      const Frame& parent = frames_[depth_ - 1];
      const NodeId moved = parent.targets[parent.chosen];
      // Independent sleepers stay asleep; anything dependent with the
      // event just dispatched (same target node) wakes up.
      for (const auto& [seq, target] : parent.sleep) {
        if (target != moved) f.sleep.emplace(seq, target);
      }
    }
    std::optional<std::uint32_t> pick;
    for (std::uint32_t i = 0; i < f.seqs.size(); ++i) {
      if (f.sleep.find(f.seqs[i]) == f.sleep.end()) {
        pick = i;
        break;
      }
    }
    if (!pick) {
      // Every enabled event is asleep: all behaviours from here are
      // covered by schedules already explored.
      ++stats_.sleep_pruned;
      stop_ = Stop::kSleepPruned;
      return std::nullopt;
    }
    if (f.seqs.size() > 1) ++stats_.branch_points;
    f.chosen = *pick;
    frames_.push_back(std::move(f));
    ++depth_;
    return *pick;
  }

 private:
  std::vector<Frame>& frames_;
  ExploreStats& stats_;
  const InvariantRegistry& registry_;
  const bool stop_on_violation_;
  Stop stop_ = Stop::kNone;
  std::size_t depth_ = 0;
};

class ReplayController : public sim::ScheduleController {
 public:
  explicit ReplayController(const std::vector<std::uint32_t>& choices)
      : choices_(choices) {}

  std::optional<std::size_t> ChooseNext(
      const std::vector<const Event*>& enabled) override {
    std::uint32_t c = step_ < choices_.size() ? choices_[step_] : 0;
    ++step_;
    return std::min<std::size_t>(c, enabled.size() - 1);
  }

 private:
  const std::vector<std::uint32_t>& choices_;
  std::size_t step_ = 0;
};

std::vector<std::uint32_t> ChoicesOf(const std::vector<Frame>& frames,
                                     std::size_t depth) {
  std::vector<std::uint32_t> choices;
  choices.reserve(depth);
  for (std::size_t i = 0; i < depth && i < frames.size(); ++i) {
    choices.push_back(frames[i].chosen);
  }
  return choices;
}

// Greedy minimisation: zero each choice that is not needed to keep the
// violation reproducing, then drop the all-zero tail (replay treats
// missing choices as 0, so truncation is exact).
std::vector<std::uint32_t> Shrink(const sim::ProcessFactory& factory,
                                  const ConfigFactory& config,
                                  const InvariantOptions& invariants,
                                  std::vector<std::uint32_t> choices) {
  const auto reproduces = [&](const std::vector<std::uint32_t>& c) {
    return !ReplaySchedule(factory, config, c, invariants)
                .violations.empty();
  };
  for (std::size_t i = 0; i < choices.size(); ++i) {
    if (choices[i] == 0) continue;
    std::vector<std::uint32_t> cand = choices;
    cand[i] = 0;
    if (reproduces(cand)) choices = std::move(cand);
  }
  while (!choices.empty() && choices.back() == 0) choices.pop_back();
  return choices;
}

}  // namespace

ExploreResult Explore(const sim::ProcessFactory& factory,
                      const ConfigFactory& config,
                      const ExplorerOptions& opt) {
  ExploreResult out;
  std::vector<Frame> frames;
  std::uint64_t executions = 0;
  for (;;) {
    if (executions >= opt.max_schedules) {
      out.stats.budget_exhausted = true;
      break;
    }
    ++executions;
    InvariantRegistry registry(opt.invariants);
    DfsController controller(frames, out.stats, registry,
                             opt.stop_at_first_violation);
    sim::RuntimeOptions ro;
    ro.max_events = opt.max_events_per_run;
    ro.observer = &registry;
    ro.controller = &controller;
    sim::Runtime runtime(config(), factory, ro);
    sim::RunResult result = runtime.Run();
    out.stats.events += result.events_processed;
    if (controller.stop() != DfsController::Stop::kSleepPruned) {
      ++out.stats.schedules;
    }
    if (!registry.ok() && !out.counterexample) {
      Counterexample cex;
      cex.choices = ChoicesOf(frames, controller.depth());
      cex.violations = registry.violations();
      if (opt.shrink) {
        cex.choices = Shrink(factory, config, opt.invariants,
                             std::move(cex.choices));
        cex.violations =
            ReplaySchedule(factory, config, cex.choices, opt.invariants)
                .violations;
      }
      cex.schedule = ScheduleToString(cex.choices);
      out.counterexample = std::move(cex);
      if (opt.stop_at_first_violation) break;
    }
    // Backtrack: put the explored choice to sleep at the deepest frame
    // that still has an awake alternative; pop exhausted frames.
    bool more = false;
    while (!frames.empty()) {
      Frame& f = frames.back();
      f.sleep.emplace(f.seqs[f.chosen], f.targets[f.chosen]);
      std::optional<std::uint32_t> next;
      for (std::uint32_t i = 0; i < f.seqs.size(); ++i) {
        if (f.sleep.find(f.seqs[i]) == f.sleep.end()) {
          next = i;
          break;
        }
      }
      if (next) {
        f.chosen = *next;
        more = true;
        break;
      }
      frames.pop_back();
    }
    if (!more) break;  // exploration complete
  }
  return out;
}

ReplayOutcome ReplaySchedule(const sim::ProcessFactory& factory,
                             const ConfigFactory& config,
                             const std::vector<std::uint32_t>& choices,
                             const InvariantOptions& invariants) {
  InvariantRegistry registry(invariants);
  ReplayController controller(choices);
  sim::RuntimeOptions ro;
  ro.observer = &registry;
  ro.controller = &controller;
  sim::Runtime runtime(config(), factory, ro);
  ReplayOutcome out;
  out.result = runtime.Run();
  out.violations = registry.violations();
  return out;
}

TracedReplayOutcome ReplayScheduleTraced(
    const sim::ProcessFactory& factory, const ConfigFactory& config,
    const std::vector<std::uint32_t>& choices,
    const InvariantOptions& invariants) {
  InvariantRegistry registry(invariants);
  ReplayController controller(choices);
  sim::RuntimeOptions ro;
  ro.observer = &registry;
  ro.controller = &controller;
  ro.enable_trace = true;
  sim::Runtime runtime(config(), factory, ro);
  TracedReplayOutcome out;
  out.result = runtime.Run();
  out.records = runtime.trace().records();
  out.violations = registry.violations();
  return out;
}

std::string ScheduleToString(const std::vector<std::uint32_t>& choices) {
  std::string s;
  for (std::uint32_t c : choices) {
    if (!s.empty()) s += '.';
    s += std::to_string(c);
  }
  return s;
}

std::vector<std::uint32_t> ScheduleFromString(const std::string& s) {
  std::vector<std::uint32_t> choices;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, '.')) {
    if (tok.empty()) continue;
    choices.push_back(static_cast<std::uint32_t>(std::stoul(tok)));
  }
  return choices;
}

}  // namespace celect::analysis
