// Time sources for the transport layer.
//
// Everything in net/ is written against an abstract microsecond clock so
// the reliability state machine, the fake link, and the cluster drivers
// are testable deterministically: tests and the in-memory transport use
// VirtualClock (advanced explicitly by the driver), while the UDP path
// uses MonotonicClock. This is the only place in src/ where wall-clock
// time is permitted, and only behind the Clock interface — protocol code
// above the transport never sees it.
#pragma once

#include <cstdint>

namespace celect::net {

// Microseconds on the owning transport's clock. The zero point is
// arbitrary (process start for MonotonicClock, construction for
// VirtualClock); only differences are meaningful.
using Micros = std::uint64_t;

class Clock {
 public:
  virtual ~Clock() = default;
  virtual Micros Now() = 0;
};

// Deterministic clock advanced explicitly by a simulation driver.
// Never moves backwards.
class VirtualClock final : public Clock {
 public:
  Micros Now() override { return now_; }
  void AdvanceTo(Micros t) {
    if (t > now_) now_ = t;
  }

 private:
  Micros now_ = 0;
};

// Host monotonic clock, rebased so the first reading is ~0.
class MonotonicClock final : public Clock {
 public:
  MonotonicClock();
  Micros Now() override;

 private:
  std::uint64_t base_ns_ = 0;
};

// A session epoch for real deployments: unique (with overwhelming
// probability) across restarts of the same logical node, and never zero
// — zero means "epoch unknown" on the wire.
std::uint64_t HostEpoch();

}  // namespace celect::net
