#include "celect/net/reliable.h"

#include <algorithm>

#include "celect/obs/shard.h"
#include "celect/util/logging.h"
#include "celect/wire/packet_codec.h"
#include "celect/wire/varint.h"

namespace celect::net {

namespace {

// How far above recv_next_ an out-of-order frame may sit and still be
// buffered. Anything beyond is dropped (the sender's window is far
// smaller, so only corruption gets here).
constexpr std::uint64_t kRecvWindow = 256;
// Merge-time ceiling on the pooled sample vector (per-session caps are
// SessionParams::rtt_sample_cap); overflow is counted, never silent.
constexpr std::size_t kMaxRttSamples = 4096;

}  // namespace

void SessionStats::MergeFrom(const SessionStats& o) {
  hellos_sent += o.hellos_sent;
  hello_acks_sent += o.hello_acks_sent;
  data_sent += o.data_sent;
  data_retransmits += o.data_retransmits;
  acks_sent += o.acks_sent;
  resets_sent += o.resets_sent;
  delivered += o.delivered;
  duplicates += o.duplicates;
  out_of_order += o.out_of_order;
  dropped_beyond_window += o.dropped_beyond_window;
  stale_epoch += o.stale_epoch;
  decode_errors += o.decode_errors;
  frame_errors += o.frame_errors;
  resets_received += o.resets_received;
  peer_restarts += o.peer_restarts;
  exhaustions += o.exhaustions;
  suspicions += o.suspicions;
  version_mismatch += o.version_mismatch;
  rtt_count += o.rtt_count;
  rtt_sum_us += o.rtt_sum_us;
  rtt_samples_dropped += o.rtt_samples_dropped;
  for (Micros s : o.rtt_samples) {
    if (rtt_samples.size() >= kMaxRttSamples) {
      ++rtt_samples_dropped;
      continue;
    }
    rtt_samples.push_back(s);
  }
  rtt_us.Merge(o.rtt_us);
  backoff_us.Merge(o.backoff_us);
  window.Merge(o.window);
  suspicion_us.Merge(o.suspicion_us);
}

ReliableSession::ReliableSession(std::uint64_t local_epoch,
                                 const SessionParams& params)
    : params_(params),
      rng_(SplitMix64(params.seed ^ local_epoch).Next()),
      local_epoch_(local_epoch == 0 ? 1 : local_epoch) {}

void ReliableSession::Flight(Micros now, obs::FlightKind kind,
                             std::uint64_t a, std::uint64_t b) {
  if (params_.recorder != nullptr) {
    params_.recorder->Note(now, params_.recorder_peer, kind, a, b);
  }
}

void ReliableSession::NoteRttSample(Micros rtt) {
  ++stats_.rtt_count;
  stats_.rtt_sum_us += rtt;
  stats_.rtt_us.Add(rtt);
  if (stats_.rtt_samples.size() < params_.rtt_sample_cap) {
    stats_.rtt_samples.push_back(rtt);
    return;
  }
  ++stats_.rtt_samples_dropped;
  if (!rtt_cap_warned_) {
    rtt_cap_warned_ = true;
    CELECT_LOG(Warn) << "rtt sample cap (" << params_.rtt_sample_cap
                     << ") hit; further samples counted in "
                        "rtt_samples_dropped, percentiles over the "
                        "sample vector are truncated";
  }
}

Micros ReliableSession::Backoff(std::uint32_t retries) {
  std::uint32_t shift = std::min(retries, 10u);
  Micros base = params_.rto_initial << shift;
  base = std::min(base, params_.rto_max);
  if (params_.jitter_pct == 0) return base;
  Micros span = base * params_.jitter_pct / 100;
  if (span == 0) return base;
  // Uniform in [base - span, base + span].
  return base - span + rng_.NextBelow(2 * span + 1);
}

std::uint64_t ReliableSession::AckBits() const {
  std::uint64_t bits = 0;
  for (const auto& [seq, pkt] : reorder_) {
    std::uint64_t off = seq - recv_next_;  // >= 1 by invariant
    if (off == 0 || off > 64) continue;
    bits |= 1ULL << (off - 1);
  }
  return bits;
}

void ReliableSession::EmitFrame(FrameKind kind,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> dgram;
  dgram.reserve(payload.size() + 12);
  EncodeFrame(kind, payload, dgram);
  outbox_.push_back(std::move(dgram));
}

std::uint64_t ReliableSession::OldestUnsentOrUnacked() const {
  return unacked_.empty() ? next_seq_ : unacked_.front().seq;
}

void ReliableSession::SendHello(Micros now) {
  std::vector<std::uint8_t> p;
  wire::PutVarint(p, local_epoch_);
  wire::PutVarint(p, OldestUnsentOrUnacked());
  wire::PutVarint(p, kWireVersion);
  EmitFrame(FrameKind::kHello, p);
  ++stats_.hellos_sent;
  next_hello_at_ = now + Backoff(hello_retries_);
}

void ReliableSession::SendHelloAck(Micros) {
  std::vector<std::uint8_t> p;
  wire::PutVarint(p, local_epoch_);
  wire::PutVarint(p, remote_epoch_);
  wire::PutVarint(p, OldestUnsentOrUnacked());
  wire::PutVarint(p, kWireVersion);
  EmitFrame(FrameKind::kHelloAck, p);
  ++stats_.hello_acks_sent;
}

void ReliableSession::SendAck() {
  std::vector<std::uint8_t> p;
  wire::PutVarint(p, local_epoch_);
  wire::PutVarint(p, recv_next_);
  wire::PutVarint(p, AckBits());
  EmitFrame(FrameKind::kAck, p);
  ++stats_.acks_sent;
  ack_dirty_ = false;
}

void ReliableSession::SendReset(Micros now) {
  std::vector<std::uint8_t> p;
  wire::PutVarint(p, local_epoch_);
  EmitFrame(FrameKind::kReset, p);
  ++stats_.resets_sent;
  Flight(now, obs::FlightKind::kResetSent, local_epoch_);
}

void ReliableSession::TransmitData(Unacked& u, Micros now, bool retransmit) {
  std::vector<std::uint8_t> p;
  // Acks are stamped at (re)transmit time, never stored, so a frame
  // retransmitted after a peer restart carries acks for the *current*
  // receive stream. The trace context is the opposite: stamped once at
  // SendPacket and frozen, because it names the logical message, not
  // the transmission.
  wire::PutVarint(p, local_epoch_);
  wire::PutVarint(p, u.seq);
  wire::PutVarint(p, recv_next_);
  wire::PutVarint(p, AckBits());
  wire::PutVarint(p, u.tc.clock);
  wire::PutVarint(p, u.tc.mid);
  p.insert(p.end(), u.packet_bytes.begin(), u.packet_bytes.end());
  EmitFrame(FrameKind::kData, p);
  if (retransmit) {
    ++stats_.data_retransmits;
    ++u.retries;
  } else {
    ++stats_.data_sent;
    u.first_sent = now;
    stats_.window.Add(unacked_.size());
  }
  Micros backoff = Backoff(u.retries);
  u.next_retx = now + backoff;
  if (retransmit) {
    stats_.backoff_us.Add(backoff);
    Flight(now, obs::FlightKind::kRetransmit, u.seq, backoff);
  }
  ack_dirty_ = false;  // acks rode along
}

void ReliableSession::FillWindow(Micros now) {
  if (!established_) return;
  while (!pending_.empty() && unacked_.size() < params_.window) {
    Unacked u;
    u.seq = next_seq_++;
    u.packet_bytes = std::move(pending_.front().bytes);
    u.tc = pending_.front().tc;
    pending_.pop_front();
    unacked_.push_back(std::move(u));
    TransmitData(unacked_.back(), now, /*retransmit=*/false);
  }
}

void ReliableSession::Start(Micros now) {
  if (started_) return;
  started_ = true;
  hello_retries_ = 0;
  Flight(now, obs::FlightKind::kSessionStart, local_epoch_);
  SendHello(now);
}

void ReliableSession::SendPacket(const wire::Packet& p, Micros now,
                                 TraceContext tc) {
  Start(now);
  PendingPacket pp;
  wire::EncodeTo(p, pp.bytes);
  pp.tc = tc;
  pending_.push_back(std::move(pp));
  FillWindow(now);
  if (!pending_.empty()) {
    // The window (or the handshake) is holding this packet back.
    Flight(now, obs::FlightKind::kWindowStall, pending_.size());
  }
}

void ReliableSession::NoteProgress(Micros now) {
  if (suspect_signalled_) {
    Micros duration = now - suspect_since_;
    stats_.suspicion_us.Add(duration);
    Flight(now, obs::FlightKind::kSuspectEnd, duration);
  }
  exhaustion_streak_ = 0;
  suspect_signalled_ = false;
  suspect_pending_ = false;
  for (auto& u : unacked_) u.exhausted = false;
}

void ReliableSession::NoteExhaustion(Unacked* u, Micros now) {
  if (u != nullptr) {
    if (u->exhausted) return;  // count each frame's budget once
    u->exhausted = true;
  }
  ++stats_.exhaustions;
  ++exhaustion_streak_;
  if (exhaustion_streak_ >= params_.suspicion_exhaustions &&
      !suspect_signalled_) {
    suspect_pending_ = true;
    suspect_signalled_ = true;
    suspect_since_ = now;
    ++stats_.suspicions;
    Flight(now, obs::FlightKind::kSuspectBegin, exhaustion_streak_);
  }
}

void ReliableSession::ProcessAck(std::uint64_t cum, std::uint64_t bits,
                                 Micros now) {
  if (cum > next_seq_) return;  // insane ack; corrupt or hostile
  bool progress = false;
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    std::uint64_t seq = it->seq;
    bool acked = seq < cum;
    if (!acked && seq > cum) {
      std::uint64_t off = seq - cum;
      if (off >= 1 && off <= 64) acked = (bits >> (off - 1)) & 1;
    }
    if (acked) {
      if (it->retries == 0) {
        // Karn's rule: only never-retransmitted frames give clean RTTs.
        NoteRttSample(now - it->first_sent);
      }
      it = unacked_.erase(it);
      progress = true;
    } else {
      ++it;
    }
  }
  if (progress) {
    NoteProgress(now);
    FillWindow(now);
  }
}

void ReliableSession::AdoptRemote(std::uint64_t epoch,
                                  std::uint64_t start_seq, Micros now) {
  bool restart = remote_epoch_ != 0 && remote_epoch_ != epoch;
  remote_epoch_ = epoch;
  recv_next_ = start_seq;
  reorder_.clear();
  ack_dirty_ = false;
  if (restart) {
    ++stats_.peer_restarts;
    peer_restart_pending_ = true;
    Flight(now, obs::FlightKind::kEpochAdopt, epoch);
    // The new incarnation has no session state for us: freeze the send
    // window and re-run the handshake so its receive stream is seeded
    // with our oldest unacked seq before any retransmits land.
    established_ = false;
    started_ = true;
    hello_retries_ = 0;
    NoteProgress(now);
    SendHello(now);
  }
}

void ReliableSession::OnHello(const Frame& f, Micros now) {
  wire::VarintReader r(f.payload.data(), f.payload.size());
  auto epoch = r.ReadVarint();
  auto start = r.ReadVarint();
  auto version = r.ReadVarint();
  if (!epoch || !start || *epoch == 0) {
    ++stats_.decode_errors;
    return;
  }
  // A missing version field is a version-1 peer. Reject anything but
  // our own version at the door: no adopt, no HelloAck, so the old
  // peer keeps re-helloing and its operator sees a stuck handshake
  // plus our counter, instead of misparsed Data payloads later.
  if (!version || *version != kWireVersion) {
    ++stats_.version_mismatch;
    Flight(now, obs::FlightKind::kVersionMismatch, version ? *version : 1);
    return;
  }
  if (remote_epoch_ == 0 || *epoch != remote_epoch_) {
    AdoptRemote(*epoch, *start, now);
  }
  // A duplicate Hello for the current epoch means our HelloAck was
  // lost (or is in flight); answering again is idempotent.
  SendHelloAck(now);
}

void ReliableSession::OnHelloAck(const Frame& f, Micros now) {
  wire::VarintReader r(f.payload.data(), f.payload.size());
  auto epoch = r.ReadVarint();
  auto echoed = r.ReadVarint();
  auto start = r.ReadVarint();
  auto version = r.ReadVarint();
  if (!epoch || !echoed || !start || *epoch == 0) {
    ++stats_.decode_errors;
    return;
  }
  if (!version || *version != kWireVersion) {
    ++stats_.version_mismatch;
    Flight(now, obs::FlightKind::kVersionMismatch, version ? *version : 1);
    return;
  }
  if (*echoed != local_epoch_) {
    // Meant for a previous incarnation of this node.
    ++stats_.stale_epoch;
    return;
  }
  if (remote_epoch_ == 0 || *epoch != remote_epoch_) {
    AdoptRemote(*epoch, *start, now);
  }
  // The peer echoed our epoch, so it can accept our data stream.
  bool was_established = established_;
  established_ = true;
  if (!was_established) {
    Flight(now, obs::FlightKind::kEstablished, remote_epoch_);
  }
  NoteProgress(now);
  if (!was_established) {
    // Retransmit anything already in flight promptly: if this HelloAck
    // answers a re-handshake after a peer restart, the peer's receive
    // stream was just seeded and is waiting on these. Gated on the
    // establishing transition — a duplicated HelloAck must not blast
    // the whole window again — and run before FillWindow so frames
    // first sent right now aren't re-sent.
    for (auto& u : unacked_) {
      if (u.retries <= params_.max_retries) TransmitData(u, now, true);
    }
  }
  FillWindow(now);
}

void ReliableSession::OnData(const Frame& f, Micros now) {
  wire::VarintReader r(f.payload.data(), f.payload.size());
  auto epoch = r.ReadVarint();
  auto seq = r.ReadVarint();
  auto cum = r.ReadVarint();
  auto bits = r.ReadVarint();
  auto tc_clock = r.ReadVarint();
  auto tc_mid = r.ReadVarint();
  if (!epoch || !seq || !cum || !bits || !tc_clock || !tc_mid) {
    ++stats_.decode_errors;
    return;
  }
  if (*epoch != remote_epoch_ || remote_epoch_ == 0) {
    // Unknown or dead incarnation: we cannot place its seqs. Ask it to
    // re-hello rather than guessing a receive stream.
    ++stats_.stale_epoch;
    SendReset(now);
    return;
  }
  // Data only flows once the peer holds our epoch, so the handshake is
  // implicitly complete even if the HelloAck itself was lost. Open the
  // send window here too — the hello retry loop stops on this flag, so
  // this path must do everything OnHelloAck would have.
  if (!established_) {
    established_ = true;
    Flight(now, obs::FlightKind::kEstablished, remote_epoch_);
    NoteProgress(now);
    FillWindow(now);
  }
  ProcessAck(*cum, *bits, now);
  std::uint64_t s = *seq;
  if (s < recv_next_) {
    ++stats_.duplicates;
    ack_dirty_ = true;  // re-ack so the sender stops retransmitting
    return;
  }
  wire::DecodeStatus status;
  auto pkt = wire::Decode(f.payload.data() + r.position(),
                          f.payload.size() - r.position(), status);
  if (!pkt) {
    // The frame checksum passed but the inner packet is malformed —
    // nothing a retransmit would fix, so consume the seq rather than
    // wedging the stream on it.
    ++stats_.decode_errors;
    if (s == recv_next_) {
      ++recv_next_;
      ack_dirty_ = true;
    }
    return;
  }
  TraceContext tc{*tc_clock, *tc_mid};
  if (s == recv_next_) {
    delivered_.push_back(Delivered{std::move(*pkt), tc});
    ++stats_.delivered;
    ++recv_next_;
    // Drain any buffered successors.
    auto it = reorder_.begin();
    while (it != reorder_.end() && it->first == recv_next_) {
      delivered_.push_back(std::move(it->second));
      ++stats_.delivered;
      ++recv_next_;
      it = reorder_.erase(it);
    }
  } else if (s - recv_next_ <= kRecvWindow) {
    if (reorder_.count(s)) {
      ++stats_.duplicates;
    } else {
      reorder_.emplace(s, Delivered{std::move(*pkt), tc});
      ++stats_.out_of_order;
    }
  } else {
    ++stats_.dropped_beyond_window;
  }
  ack_dirty_ = true;
}

void ReliableSession::OnAck(const Frame& f, Micros now) {
  wire::VarintReader r(f.payload.data(), f.payload.size());
  auto epoch = r.ReadVarint();
  auto cum = r.ReadVarint();
  auto bits = r.ReadVarint();
  if (!epoch || !cum || !bits) {
    ++stats_.decode_errors;
    return;
  }
  if (*epoch != remote_epoch_ || remote_epoch_ == 0) {
    // An ack from a dead incarnation must not mark frames the new one
    // never saw as delivered.
    ++stats_.stale_epoch;
    return;
  }
  if (!established_) {
    established_ = true;
    Flight(now, obs::FlightKind::kEstablished, remote_epoch_);
    NoteProgress(now);
    FillWindow(now);
  }
  ProcessAck(*cum, *bits, now);
}

void ReliableSession::OnReset(const Frame& f, Micros now) {
  wire::VarintReader r(f.payload.data(), f.payload.size());
  auto epoch = r.ReadVarint();
  if (!epoch) {
    ++stats_.decode_errors;
    return;
  }
  ++stats_.resets_received;
  Flight(now, obs::FlightKind::kResetReceived, local_epoch_);
  // The peer has no session for our epoch; re-run the handshake. Keep
  // the send window intact — seqs survive, the Hello re-seeds the
  // peer's receive stream at our oldest unacked frame.
  if (started_) {
    established_ = false;
    hello_retries_ = 0;
    SendHello(now);
  }
}

void ReliableSession::OnDatagram(const std::uint8_t* data, std::size_t size,
                                 Micros now) {
  std::uint64_t before = decoder_.errors();
  std::vector<Frame> frames;
  decoder_.PushBytes(data, size, frames);
  decoder_.FlushTruncated();
  stats_.frame_errors += decoder_.errors() - before;
  for (const Frame& f : frames) {
    switch (f.kind) {
      case FrameKind::kHello:
        OnHello(f, now);
        break;
      case FrameKind::kHelloAck:
        OnHelloAck(f, now);
        break;
      case FrameKind::kData:
        OnData(f, now);
        break;
      case FrameKind::kAck:
        OnAck(f, now);
        break;
      case FrameKind::kReset:
        OnReset(f, now);
        break;
    }
  }
  if (ack_dirty_) SendAck();
}

void ReliableSession::Tick(Micros now) {
  if (started_ && !established_ && now >= next_hello_at_) {
    ++hello_retries_;
    if (hello_retries_ > params_.max_retries) {
      hello_retries_ = params_.max_retries;  // stay at the ceiling
      NoteExhaustion(nullptr, now);
    }
    Flight(now, obs::FlightKind::kHelloRetry, hello_retries_);
    SendHello(now);
  }
  if (established_) {
    for (auto& u : unacked_) {
      if (now < u.next_retx) continue;
      if (u.retries >= params_.max_retries) {
        NoteExhaustion(&u, now);
        // Keep probing at the ceiling so a revived peer still recovers.
        u.retries = params_.max_retries;
      }
      TransmitData(u, now, /*retransmit=*/true);
    }
  }
  if (ack_dirty_) SendAck();
}

bool ReliableSession::TakeSuspect() {
  bool s = suspect_pending_;
  suspect_pending_ = false;
  return s;
}

bool ReliableSession::TakePeerRestart() {
  bool s = peer_restart_pending_;
  peer_restart_pending_ = false;
  return s;
}

std::optional<Micros> ReliableSession::NextWake() const {
  std::optional<Micros> wake;
  auto consider = [&wake](Micros t) {
    if (!wake || t < *wake) wake = t;
  };
  if (started_ && !established_) consider(next_hello_at_);
  if (established_) {
    for (const auto& u : unacked_) consider(u.next_retx);
  }
  return wake;
}

}  // namespace celect::net
