// Hosts one sim::Process on top of a Transport.
//
// This is the seam that lets the protocol engines run unmodified over
// real sockets: PeerNode implements sim::Context against Transport
// primitives — ports map to peers ((self + port) mod n, so port
// numbers stay 1..n-1 and never reveal identities), sim::Time maps to
// transport microseconds through a configurable unit, timers live in a
// local deadline queue, and transport suspect events surface as
// Process::OnPeerSuspected.
//
// On top of the hosted election it runs a tiny gossip layer: once any
// node believes in a leader (by declaring, or by hearing an announce)
// it periodically re-announces the belief, adopting the highest leader
// id on conflict. The election provides the belief; the gossip makes
// it reach every current incarnation — including processes that were
// SIGKILLed mid-election and restarted knowing nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "celect/net/transport.h"
#include "celect/sim/process.h"
#include "celect/wire/checksum.h"

namespace celect::net {

// Leader-announce gossip packet: fields = {leader id}. The type sits
// far above both the protocol range (< 100) and the lease wrap base,
// so it can never collide with a wrapped engine packet.
inline constexpr std::uint16_t kAnnouncePacketType = 32001;

struct PeerNodeConfig {
  sim::Id id = 0;
  // One sim::Time unit in transport microseconds. The EFG recovery
  // period is 8 units; 20ms/unit puts protocol-level retries at 160ms,
  // comfortably above the reliability layer's RTO.
  Micros unit_us = 20'000;
  Micros announce_interval_us = 100'000;
  bool sense_of_direction = false;
  // True for a process revived after a crash: it enters via OnRejoin
  // (passive, quarantine-aware) instead of OnWakeup.
  bool rejoin = false;
};

class PeerNode {
 public:
  PeerNode(const PeerNodeConfig& config, Transport& transport,
           const sim::ProcessFactory& factory);
  ~PeerNode();

  // Delivers the initial OnWakeup (or OnRejoin) to the process.
  void Start();

  // One scheduling round: polls the transport, dispatches packets,
  // suspicions, due timers, and the announce cadence.
  void Pump();

  // Earliest instant Pump has something to do; nullopt when idle.
  std::optional<Micros> NextWake() const;

  // The node's current leader belief (own declaration or adopted
  // announce); nullopt until it believes.
  std::optional<sim::Id> leader() const { return leader_; }
  bool declared_self() const { return declared_self_; }
  sim::Id id() const { return config_.id; }

  // Rolling FNV digest over every dispatched event — the
  // bit-reproducibility witness for deterministic transports.
  std::uint64_t EventDigest() const { return digest_.Digest64(); }
  std::uint64_t events_dispatched() const { return events_dispatched_; }
  std::uint64_t suspicions_seen() const { return suspicions_seen_; }

  sim::Process& process() { return *process_; }

 private:
  class Ctx;

  PeerId PeerOf(sim::Port port) const;
  sim::Port PortOf(PeerId peer) const;
  sim::Time SimNow() const;
  Micros DelayToMicros(sim::Time delay) const;
  void Dispatch(const TransportEvent& ev);
  void FireDueTimers();
  void Announce();
  void Believe(sim::Id leader);

  PeerNodeConfig config_;
  Transport& transport_;
  std::unique_ptr<sim::Process> process_;
  std::unique_ptr<Ctx> ctx_;

  // Armed timers by deadline; ties fire in arming order (TimerIds are
  // monotone), so dispatch is deterministic.
  std::set<std::pair<Micros, sim::TimerId>> timers_;
  std::set<sim::TimerId> cancelled_;
  sim::TimerId next_timer_ = 1;

  std::set<sim::Port> traversed_;  // SendFresh bookkeeping

  std::optional<sim::Id> leader_;
  bool declared_self_ = false;
  Micros next_announce_ = 0;
  bool started_ = false;

  wire::Fnv1aStream digest_;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t suspicions_seen_ = 0;
  std::map<std::string, std::int64_t, std::less<>> counters_;

  std::vector<TransportEvent> events_;  // reused poll buffer
};

}  // namespace celect::net
