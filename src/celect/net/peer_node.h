// Hosts one sim::Process on top of a Transport.
//
// This is the seam that lets the protocol engines run unmodified over
// real sockets: PeerNode implements sim::Context against Transport
// primitives — ports map to peers ((self + port) mod n, so port
// numbers stay 1..n-1 and never reveal identities), sim::Time maps to
// transport microseconds through a configurable unit, timers live in a
// local deadline queue, and transport suspect events surface as
// Process::OnPeerSuspected.
//
// On top of the hosted election it runs a tiny gossip layer: once any
// node believes in a leader (by declaring, or by hearing an announce)
// it periodically re-announces the belief, adopting the highest leader
// id on conflict. The election provides the belief; the gossip makes
// it reach every current incarnation — including processes that were
// SIGKILLed mid-election and restarted knowing nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "celect/net/transport.h"
#include "celect/obs/shard.h"
#include "celect/sim/process.h"
#include "celect/sim/trace.h"
#include "celect/wire/checksum.h"

namespace celect::net {

// Leader-announce gossip packet: fields = {leader id}. The type sits
// far above both the protocol range (< 100) and the lease wrap base,
// so it can never collide with a wrapped engine packet.
inline constexpr std::uint16_t kAnnouncePacketType = 32001;

struct PeerNodeConfig {
  sim::Id id = 0;
  // One sim::Time unit in transport microseconds. The EFG recovery
  // period is 8 units; 20ms/unit puts protocol-level retries at 160ms,
  // comfortably above the reliability layer's RTO.
  Micros unit_us = 20'000;
  Micros announce_interval_us = 100'000;
  bool sense_of_direction = false;
  // True for a process revived after a crash: it enters via OnRejoin
  // (passive, quarantine-aware) instead of OnWakeup.
  bool rejoin = false;
  // Record causal trace records (sends, deliveries, timers, leader
  // changes) for MakeShard. Lamport clocks and wire mids are minted
  // regardless — the trace context always travels — this only controls
  // record retention.
  bool trace = false;
  std::size_t trace_cap = 200'000;
};

class PeerNode {
 public:
  PeerNode(const PeerNodeConfig& config, Transport& transport,
           const sim::ProcessFactory& factory);
  ~PeerNode();

  // Delivers the initial OnWakeup (or OnRejoin) to the process.
  void Start();

  // One scheduling round: polls the transport, dispatches packets,
  // suspicions, due timers, and the announce cadence.
  void Pump();

  // Earliest instant Pump has something to do; nullopt when idle.
  std::optional<Micros> NextWake() const;

  // The node's current leader belief (own declaration or adopted
  // announce); nullopt until it believes.
  std::optional<sim::Id> leader() const { return leader_; }
  bool declared_self() const { return declared_self_; }
  sim::Id id() const { return config_.id; }

  // Rolling FNV digest over every dispatched event — the
  // bit-reproducibility witness for deterministic transports.
  std::uint64_t EventDigest() const { return digest_.Digest64(); }
  std::uint64_t events_dispatched() const { return events_dispatched_; }
  std::uint64_t suspicions_seen() const { return suspicions_seen_; }

  // This incarnation's observability dump: trace records, the
  // transport's flight-recorder ring (rebased to trace ticks), and a
  // metrics snapshot. complete=false marks a mid-run flush (what a
  // SIGKILLed victim leaves behind); complete=true an orderly exit.
  obs::TraceShard MakeShard(bool complete) const;
  // Counters + histograms spanning the protocol engine (Context
  // counters) and the reliability layer (session stats).
  obs::MetricsRegistry SnapshotMetrics() const;
  const std::vector<sim::TraceRecord>& trace() const { return trace_; }
  std::uint64_t trace_dropped() const { return trace_dropped_; }

  sim::Process& process() { return *process_; }

 private:
  class Ctx;

  PeerId PeerOf(sim::Port port) const;
  sim::Port PortOf(PeerId peer) const;
  sim::Time SimNow() const;
  std::int64_t TicksOf(Micros at) const;
  Micros DelayToMicros(sim::Time delay) const;
  void Dispatch(const TransportEvent& ev);
  void FireDueTimers();
  void Announce();
  void Believe(sim::Id leader);
  // Mints the Lamport tick + mid and records kSend before handing the
  // packet to the transport with its trace context.
  void SendTraced(PeerId peer, const wire::Packet& p);
  void TraceEvent(sim::TraceRecord::Kind kind, PeerId peer, sim::Port port,
                  std::uint16_t type, std::uint64_t clock,
                  std::uint64_t mid);

  PeerNodeConfig config_;
  Transport& transport_;
  std::unique_ptr<sim::Process> process_;
  std::unique_ptr<Ctx> ctx_;

  // Armed timers by deadline; ties fire in arming order (TimerIds are
  // monotone), so dispatch is deterministic.
  std::set<std::pair<Micros, sim::TimerId>> timers_;
  std::set<sim::TimerId> cancelled_;
  sim::TimerId next_timer_ = 1;

  std::set<sim::Port> traversed_;  // SendFresh bookkeeping

  std::optional<sim::Id> leader_;
  bool declared_self_ = false;
  Micros next_announce_ = 0;
  bool started_ = false;

  wire::Fnv1aStream digest_;
  std::uint64_t events_dispatched_ = 0;
  std::uint64_t suspicions_seen_ = 0;
  std::map<std::string, std::int64_t, std::less<>> counters_;

  // Causal tracing: the node's Lamport clock (ticked on sends,
  // deliveries, wakeup, timer fires; deliveries join the sender's
  // wire clock with max+1) and the mid mint. mid_base_ is derived from
  // the transport epoch, so mids are globally unique across nodes AND
  // incarnations — the property the cross-process flow pairing keys on.
  std::uint64_t lamport_ = 0;
  std::uint64_t mid_base_ = 0;
  std::uint64_t mid_counter_ = 0;
  std::uint64_t trace_seq_ = 0;
  std::uint64_t trace_dropped_ = 0;
  std::vector<sim::TraceRecord> trace_;

  std::vector<TransportEvent> events_;  // reused poll buffer
};

}  // namespace celect::net
