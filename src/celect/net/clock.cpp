#include "celect/net/clock.h"

#include <chrono>

#include <unistd.h>

namespace celect::net {

namespace {

// The one sanctioned wall-clock read in net/: real-socket transports
// need real time. Deterministic paths use VirtualClock and never reach
// this file.
std::uint64_t SteadyNowNs() {
  // celect-lint: allow(no-wall-clock) real-socket transport clock
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

}  // namespace

MonotonicClock::MonotonicClock() : base_ns_(SteadyNowNs()) {}

Micros MonotonicClock::Now() { return (SteadyNowNs() - base_ns_) / 1000; }

std::uint64_t HostEpoch() {
  // Mix the boot-relative nanosecond clock with the pid so two
  // incarnations of the same node (fork → kill → fork) get distinct
  // epochs even when they start within the clock's resolution.
  std::uint64_t e = SteadyNowNs() ^
                    (static_cast<std::uint64_t>(::getpid()) << 48);
  return e == 0 ? 1 : e;
}

}  // namespace celect::net
