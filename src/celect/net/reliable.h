// Per-peer reliability session over an unreliable datagram link.
//
// Gives the protocol layer exactly-once, in-order packet delivery on
// top of a link that loses, duplicates, reorders, and corrupts:
//
//   * a three-way-ish handshake (Hello / HelloAck) exchanging session
//     epochs, so a restarted peer — which lost all session state — is
//     detected (its epoch changed) and both directions resync instead
//     of feeding stale sequence numbers and acks into a fresh process;
//   * a sliding send window with per-frame retransmit timers, capped
//     exponential backoff, and seeded jitter;
//   * cumulative acks plus a selective-ack bitmask, duplicate
//     suppression, and an out-of-order reassembly buffer;
//   * a suspicion signal: when retransmits exhaust their budget with no
//     progress, the peer is reported suspect exactly once per episode —
//     the fault-tolerant election layer treats that as a crash hint.
//
// The class is a pure state machine: no clock, no sockets, no threads.
// Time enters as an explicit `now` argument, randomness from a seeded
// jitter stream, and output datagrams/delivered packets are pulled from
// queues — which is what makes the differential chaos suite over
// FakeLink bit-reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "celect/net/clock.h"
#include "celect/net/frame.h"
#include "celect/obs/telemetry.h"
#include "celect/util/rng.h"
#include "celect/wire/packet.h"

namespace celect::obs {
class FlightRecorder;
enum class FlightKind : std::uint8_t;
}  // namespace celect::obs

namespace celect::net {

// Causal metadata riding inside every Data frame (wire version 2): the
// sender's Lamport clock at send time and the message uid pairing this
// wire message with its kSend trace record. Zeroes when the caller
// doesn't trace — the fields still travel so the wire format has one
// shape.
struct TraceContext {
  std::uint64_t clock = 0;
  std::uint64_t mid = 0;
};

struct SessionParams {
  std::uint32_t window = 32;       // max unacked data frames in flight
  Micros rto_initial = 40'000;     // first retransmit timeout
  Micros rto_max = 1'000'000;      // backoff ceiling
  std::uint32_t jitter_pct = 25;   // +/- applied to every timeout
  std::uint32_t max_retries = 8;   // budget before a frame is "exhausted"
  // Consecutive exhaustion events (no ack progress in between) before
  // the peer is reported suspect.
  std::uint32_t suspicion_exhaustions = 1;
  std::uint64_t seed = 1;          // jitter stream
  // Karn-filtered RTT samples kept for bench percentiles; overflow is
  // counted in rtt_samples_dropped and warn-logged once per session.
  std::size_t rtt_sample_cap = 4096;
  // Optional flight recorder (owned by the transport endpoint, shared
  // across its sessions); session-layer moments are Note()d into it so
  // a SIGKILLed process's shard still shows its last retransmit storm.
  obs::FlightRecorder* recorder = nullptr;
  std::uint32_t recorder_peer = 0;  // peer id stamped on flight events
};

struct SessionStats {
  std::uint64_t hellos_sent = 0;
  std::uint64_t hello_acks_sent = 0;
  std::uint64_t data_sent = 0;          // first transmissions
  std::uint64_t data_retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t resets_sent = 0;
  std::uint64_t delivered = 0;          // packets handed to the app
  std::uint64_t duplicates = 0;         // already-delivered seqs dropped
  std::uint64_t out_of_order = 0;       // frames buffered for reassembly
  std::uint64_t dropped_beyond_window = 0;
  std::uint64_t stale_epoch = 0;        // frames from a dead incarnation
  std::uint64_t decode_errors = 0;      // checksummed-but-unparseable
  std::uint64_t frame_errors = 0;       // framing/CRC rejects
  std::uint64_t resets_received = 0;
  std::uint64_t peer_restarts = 0;      // new remote epoch adopted
  std::uint64_t exhaustions = 0;        // retransmit budgets spent
  std::uint64_t suspicions = 0;         // suspect episodes signalled
  std::uint64_t version_mismatch = 0;   // handshakes rejected on version
  std::uint64_t rtt_count = 0;
  std::uint64_t rtt_sum_us = 0;
  std::vector<Micros> rtt_samples;      // capped; for bench percentiles
  // Samples discarded once rtt_samples hit the cap (at sampling time or
  // when merging) — never silent, so a capped p99 is visibly capped.
  std::uint64_t rtt_samples_dropped = 0;

  // Mergeable distributions (power-of-two buckets, exact count/sum):
  obs::Histogram rtt_us;         // Karn-filtered ack round trips
  obs::Histogram backoff_us;     // RTO scheduled at each retransmit
  obs::Histogram window;         // in-flight frames at first transmit
  obs::Histogram suspicion_us;   // suspect-episode durations

  void MergeFrom(const SessionStats& o);
};

class ReliableSession {
 public:
  // local_epoch must be nonzero and unique per incarnation of this
  // node (tests pass counters; real transports use HostEpoch()).
  ReliableSession(std::uint64_t local_epoch, const SessionParams& params);

  // A packet delivered exactly once, in order, with the trace context
  // its sender stamped on the wire.
  struct Delivered {
    wire::Packet packet;
    TraceContext tc;
  };

  // ---- inputs -------------------------------------------------------
  // Begins the handshake (idempotent). SendPacket calls it implicitly.
  void Start(Micros now);
  // Queues a packet for exactly-once in-order delivery to the peer.
  // `tc` travels with the packet (survives retransmits unchanged).
  void SendPacket(const wire::Packet& p, Micros now, TraceContext tc = {});
  // Feeds one received datagram through framing + the session machine.
  void OnDatagram(const std::uint8_t* data, std::size_t size, Micros now);
  // Drives retransmit and handshake timers.
  void Tick(Micros now);

  // ---- outputs (drained by the owning transport) --------------------
  // Datagrams to put on the wire, in send order.
  std::vector<std::vector<std::uint8_t>>& outbox() { return outbox_; }
  // Packets delivered exactly once, in order.
  std::vector<Delivered>& delivered() { return delivered_; }
  // True at most once per suspicion episode; an episode ends when the
  // peer shows life (ack progress, handshake, or restart).
  bool TakeSuspect();
  // True once per adopted remote-epoch change after the first.
  bool TakePeerRestart();
  // Earliest time Tick has work to do; nullopt when fully idle.
  std::optional<Micros> NextWake() const;

  bool established() const { return established_; }
  std::uint64_t local_epoch() const { return local_epoch_; }
  std::uint64_t remote_epoch() const { return remote_epoch_; }
  std::size_t in_flight() const { return unacked_.size(); }
  std::size_t queued() const { return pending_.size(); }
  const SessionStats& stats() const { return stats_; }

 private:
  struct PendingPacket {
    std::vector<std::uint8_t> bytes;  // wire::EncodeTo output
    TraceContext tc;
  };

  struct Unacked {
    std::uint64_t seq = 0;
    std::vector<std::uint8_t> packet_bytes;  // wire::EncodeTo output
    TraceContext tc;
    Micros first_sent = 0;
    Micros next_retx = 0;
    std::uint32_t retries = 0;
    bool exhausted = false;
  };

  Micros Backoff(std::uint32_t retries);
  std::uint64_t AckBits() const;
  void EmitFrame(FrameKind kind, const std::vector<std::uint8_t>& payload);
  void SendHello(Micros now);
  void SendHelloAck(Micros now);
  void SendAck();
  void SendReset(Micros now);
  void TransmitData(Unacked& u, Micros now, bool retransmit);
  void FillWindow(Micros now);
  void ProcessAck(std::uint64_t cum, std::uint64_t bits, Micros now);
  void NoteProgress(Micros now);
  void NoteExhaustion(Unacked* u, Micros now);
  void NoteRttSample(Micros rtt);
  void AdoptRemote(std::uint64_t epoch, std::uint64_t start_seq, Micros now);
  // Flight-recorder hook; no-op without a recorder.
  void Flight(Micros now, obs::FlightKind kind, std::uint64_t a = 0,
              std::uint64_t b = 0);
  std::uint64_t OldestUnsentOrUnacked() const;

  void OnHello(const Frame& f, Micros now);
  void OnHelloAck(const Frame& f, Micros now);
  void OnData(const Frame& f, Micros now);
  void OnAck(const Frame& f, Micros now);
  void OnReset(const Frame& f, Micros now);

  SessionParams params_;
  Rng rng_;
  std::uint64_t local_epoch_;
  std::uint64_t remote_epoch_ = 0;

  bool started_ = false;
  bool established_ = false;
  std::uint32_t hello_retries_ = 0;
  Micros next_hello_at_ = 0;

  std::uint64_t next_seq_ = 1;              // next data seq to assign
  std::deque<Unacked> unacked_;             // in seq order
  std::deque<PendingPacket> pending_;       // beyond the window

  std::uint64_t recv_next_ = 1;             // next in-order seq expected
  std::map<std::uint64_t, Delivered> reorder_;  // ooo reassembly

  std::uint32_t exhaustion_streak_ = 0;
  bool suspect_pending_ = false;
  bool suspect_signalled_ = false;
  Micros suspect_since_ = 0;                // episode start (for duration)
  bool peer_restart_pending_ = false;
  bool ack_dirty_ = false;
  bool rtt_cap_warned_ = false;

  FrameDecoder decoder_;
  std::vector<std::vector<std::uint8_t>> outbox_;
  std::vector<Delivered> delivered_;
  SessionStats stats_;
};

}  // namespace celect::net
