// Election drivers over a transport mesh.
//
// RunSimElection drives n PeerNodes over a SimNet to completion on the
// virtual clock — fully deterministic, with scripted kill/restart chaos
// — and is what the reliability test suite and the sim rows of
// bench_transport run. RunUdpElection drives n UdpTransports inside one
// process on the real clock (the socket rows of the bench, and a
// smoke-testable miniature of the multi-process demo).
//
// "Agreed" means: every currently-live node holds the same leader
// belief, at least one node actually declared itself, and the believed
// leader is that declarer.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "celect/net/peer_node.h"
#include "celect/net/sim_net.h"
#include "celect/net/udp_transport.h"
#include "celect/obs/shard.h"
#include "celect/sim/process.h"

namespace celect::net {

struct ChaosEvent {
  Micros at = 0;
  PeerId node = 0;
  enum class What { kKill, kRestart } what = What::kKill;
};

struct ClusterConfig {
  std::uint32_t n = 4;
  std::uint64_t seed = 1;
  FakeLinkParams link;        // sim path only
  SessionParams session;
  Micros unit_us = 20'000;
  Micros announce_interval_us = 100'000;
  Micros deadline_us = 120'000'000;  // virtual (sim) or real (udp)
  std::vector<ChaosEvent> chaos;     // sim path only; sorted by `at`
  // udp path only:
  std::uint16_t base_port = 47000;
  double send_loss = 0.0;
  // Collect causal trace records per node and emit one TraceShard per
  // incarnation in ClusterResult::shards (killed incarnations flush a
  // complete=false shard at the moment of death).
  bool trace = false;
  std::size_t trace_cap = 200'000;
};

struct ClusterResult {
  bool agreed = false;
  sim::Id leader = 0;
  Micros elapsed_us = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t suspicions = 0;
  std::uint64_t peer_restarts = 0;
  std::uint64_t delivered = 0;
  // Per-node event digests folded in node order — two runs of the same
  // sim config agree on this iff they dispatched identical event
  // streams. Meaningless (wall-clock-dependent) on the udp path.
  std::uint64_t fingerprint = 0;
  // RTT percentiles over never-retransmitted frames (0 when no samples).
  Micros rtt_p50_us = 0;
  Micros rtt_p99_us = 0;
  // Session-layer distributions aggregated over every incarnation.
  obs::Histogram rtt_us;
  obs::Histogram backoff_us;
  obs::Histogram window_occupancy;
  obs::Histogram suspicion_us;
  // One shard per node incarnation when ClusterConfig::trace is set,
  // in capture order (deaths first, then survivors in node order).
  std::vector<obs::TraceShard> shards;
};

ClusterResult RunSimElection(const ClusterConfig& config,
                             const sim::ProcessFactory& factory);

// Returns nullopt if binding base_port..base_port+n-1 failed.
std::optional<ClusterResult> RunUdpElection(
    const ClusterConfig& config, const sim::ProcessFactory& factory);

}  // namespace celect::net
