// Byte-level framing for the transport.
//
// A frame is the unit the reliability session exchanges over a datagram
// (or byte) pipe:
//
//   u8      magic0 = 0xCE
//   u8      magic1 = 0x17
//   u8      kind          (FrameKind)
//   varint  payload length
//   u8[len] payload
//   u8[4]   checksum32 over kind..payload (little-endian FNV-1a fold)
//
// The decoder is an incremental push-byte state machine: feed it bytes
// in any chunking and it emits complete frames, skipping garbage by
// rescanning for the magic pair. Truncated input simply leaves it
// mid-state; corrupt input costs one error counter tick and a resync,
// never a crash or an unbounded allocation (payload length is capped
// before any buffering happens).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "celect/wire/checksum.h"

namespace celect::net {

inline constexpr std::uint8_t kFrameMagic0 = 0xCE;
inline constexpr std::uint8_t kFrameMagic1 = 0x17;

// Largest payload the decoder will buffer: a session header plus one
// max-size wire packet, with headroom.
inline constexpr std::size_t kMaxFramePayload = 1200;

// Session wire version, negotiated in the Hello/HelloAck handshake.
// Version 2 added the trace-context fields (Lamport clock + message
// uid) to Data frames; a peer advertising any other version is counted
// and ignored at handshake, so mixed-version clusters fail loudly at
// session setup instead of misparsing Data payloads mid-stream.
inline constexpr std::uint64_t kWireVersion = 2;

enum class FrameKind : std::uint8_t {
  kHello = 1,     // open / reopen a session (carries epoch, start seq)
  kHelloAck = 2,  // accept a session (carries both epochs, start seq)
  kData = 3,      // sequenced payload with piggybacked ack
  kAck = 4,       // pure ack
  kReset = 5,     // "I have no session for your epoch — re-hello"
};

bool IsValidFrameKind(std::uint8_t k);
const char* ToString(FrameKind k);

struct Frame {
  FrameKind kind = FrameKind::kData;
  std::vector<std::uint8_t> payload;
};

// Appends the encoded frame to out. The checksum is computed as the
// bytes are appended (Fnv1aStream), so no contiguous staging copy of
// the payload is ever made.
void EncodeFrame(FrameKind kind, const std::uint8_t* payload,
                 std::size_t len, std::vector<std::uint8_t>& out);
void EncodeFrame(FrameKind kind, const std::vector<std::uint8_t>& payload,
                 std::vector<std::uint8_t>& out);

class FrameDecoder {
 public:
  enum class Push {
    kPending,  // need more bytes
    kFrame,    // a complete frame is available via frame()
    kError,    // bad magic / kind / length / checksum; decoder resynced
  };

  Push PushByte(std::uint8_t b);

  // Feeds a whole buffer, appending every completed frame to out.
  // Returns the number of frames appended.
  std::size_t PushBytes(const std::uint8_t* data, std::size_t len,
                        std::vector<Frame>& out);

  // The frame completed by the most recent PushByte() == kFrame. The
  // payload is moved out, so read it before pushing further bytes.
  Frame TakeFrame();

  // Datagram-boundary hook: a datagram always carries whole frames, so
  // being mid-frame at its end means the tail was lost or mangled.
  // Counts one error and resyncs; returns true if it was mid-frame.
  // Byte-pipe callers (arbitrary chunking) simply never call this.
  bool FlushTruncated();

  std::uint64_t frames() const { return frames_; }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t garbage_bytes() const { return garbage_bytes_; }

 private:
  enum class State { kMagic0, kMagic1, kKind, kLen, kPayload, kSum };

  Push Fail();

  State state_ = State::kMagic0;
  Frame frame_;
  std::uint64_t len_ = 0;
  int len_shift_ = 0;
  std::uint32_t sum_ = 0;
  int sum_bytes_ = 0;
  wire::Fnv1aStream hash_;
  std::uint64_t frames_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t garbage_bytes_ = 0;
};

}  // namespace celect::net
