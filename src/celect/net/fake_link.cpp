#include "celect/net/fake_link.h"

namespace celect::net {

FakeLink::FakeLink(const FakeLinkParams& params)
    : params_(params), rng_(SplitMix64(params.seed).Next()) {}

void FakeLink::Enqueue(std::vector<std::uint8_t> bytes, Micros now) {
  Micros delay = params_.delay_min;
  if (params_.delay_max > params_.delay_min) {
    delay += rng_.NextBelow(params_.delay_max - params_.delay_min + 1);
  }
  if (params_.reorder > 0 && rng_.NextDouble() < params_.reorder) {
    delay += params_.reorder_extra;
    ++reordered_;
  }
  if (params_.corrupt > 0 && rng_.NextDouble() < params_.corrupt &&
      !bytes.empty()) {
    std::uint64_t flips = 1 + rng_.NextBelow(4);
    for (std::uint64_t i = 0; i < flips; ++i) {
      std::uint64_t bit = rng_.NextBelow(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    ++corrupted_;
  }
  in_flight_.insert(InFlight{now + delay, order_++, std::move(bytes)});
}

void FakeLink::Send(const std::uint8_t* data, std::size_t size, Micros now) {
  Send(std::vector<std::uint8_t>(data, data + size), now);
}

void FakeLink::Send(const std::vector<std::uint8_t>& dgram, Micros now) {
  ++sent_;
  if (params_.loss > 0 && rng_.NextDouble() < params_.loss) {
    ++lost_;
    return;
  }
  bool dup = params_.duplicate > 0 && rng_.NextDouble() < params_.duplicate;
  Enqueue(dgram, now);
  if (dup) {
    ++duplicated_;
    Enqueue(dgram, now);
  }
}

std::optional<Micros> FakeLink::NextDelivery() const {
  if (in_flight_.empty()) return std::nullopt;
  return in_flight_.begin()->at;
}

void FakeLink::DeliverDue(Micros now,
                          std::vector<std::vector<std::uint8_t>>& out) {
  while (!in_flight_.empty() && in_flight_.begin()->at <= now) {
    auto node = in_flight_.extract(in_flight_.begin());
    out.push_back(std::move(node.value().bytes));
    ++delivered_;
  }
}

void FakeLink::DropAll() { in_flight_.clear(); }

}  // namespace celect::net
