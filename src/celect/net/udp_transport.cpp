#include "celect/net/udp_transport.h"

#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "celect/util/check.h"

namespace celect::net {

namespace {

sockaddr_in PeerAddr(std::uint16_t base_port, PeerId peer) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port + peer));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(const UdpTransportConfig& config)
    : config_(config),
      loss_rng_(SplitMix64(config.seed ^ 0x10551055ULL).Next()),
      epoch_(config.epoch != 0 ? config.epoch : HostEpoch()) {
  sessions_.resize(config_.n);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpTransport::Open() {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return false;
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = PeerAddr(config_.base_port, config_.self);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  int flags = ::fcntl(fd_, F_GETFL, 0);
  ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  return true;
}

ReliableSession& UdpTransport::Session(PeerId peer) {
  auto& slot = sessions_[peer];
  if (slot == nullptr) {
    SessionParams params = config_.session;
    params.seed =
        SplitMix64(config_.seed ^ epoch_ ^ (std::uint64_t{peer} << 20))
            .Next();
    params.recorder = &recorder_;
    params.recorder_peer = peer;
    slot = std::make_unique<ReliableSession>(epoch_, params);
  }
  return *slot;
}

void UdpTransport::Flush(PeerId peer) {
  auto& out = Session(peer).outbox();
  sockaddr_in addr = PeerAddr(config_.base_port, peer);
  for (auto& dgram : out) {
    if (config_.send_loss > 0 &&
        loss_rng_.NextDouble() < config_.send_loss) {
      ++stats_.send_loss_injected;
      continue;
    }
    ++stats_.datagrams_sent;
    stats_.bytes_sent += dgram.size();
    ::sendto(fd_, dgram.data(), dgram.size(), 0,
             reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
  }
  out.clear();
}

void UdpTransport::Send(PeerId peer, const wire::Packet& p,
                        TraceContext tc) {
  CELECT_DCHECK(peer < config_.n && peer != config_.self);
  Session(peer).SendPacket(p, Now(), tc);
  Flush(peer);
}

void UdpTransport::DrainSocket() {
  std::uint8_t buf[2048];
  for (;;) {
    sockaddr_in from{};
    socklen_t from_len = sizeof(from);
    ssize_t got = ::recvfrom(fd_, buf, sizeof(buf), 0,
                             reinterpret_cast<sockaddr*>(&from), &from_len);
    if (got <= 0) return;  // EWOULDBLOCK or error: nothing more to read
    std::uint16_t port = ntohs(from.sin_port);
    if (port < config_.base_port ||
        port >= config_.base_port + config_.n) {
      continue;  // not one of ours
    }
    PeerId peer = static_cast<PeerId>(port - config_.base_port);
    if (peer == config_.self) continue;
    ++stats_.datagrams_received;
    stats_.bytes_received += static_cast<std::uint64_t>(got);
    Session(peer).OnDatagram(buf, static_cast<std::size_t>(got), Now());
  }
}

void UdpTransport::Poll(std::vector<TransportEvent>& out) {
  if (fd_ < 0) return;
  DrainSocket();
  Micros now = Now();
  for (PeerId peer = 0; peer < config_.n; ++peer) {
    auto* s = sessions_[peer].get();
    if (s == nullptr) continue;
    s->Tick(now);
    for (auto& d : s->delivered()) {
      out.push_back(TransportEvent{TransportEvent::Kind::kPacket, peer,
                                   std::move(d.packet), d.tc.clock,
                                   d.tc.mid});
    }
    s->delivered().clear();
    if (s->TakePeerRestart()) {
      out.push_back(TransportEvent{TransportEvent::Kind::kPeerRestart, peer,
                                   wire::Packet{}});
    }
    if (s->TakeSuspect()) {
      out.push_back(
          TransportEvent{TransportEvent::Kind::kSuspect, peer, wire::Packet{}});
    }
    Flush(peer);
  }
}

std::optional<Micros> UdpTransport::NextWake() const {
  std::optional<Micros> wake;
  for (const auto& s : sessions_) {
    if (s == nullptr) continue;
    auto w = s->NextWake();
    if (w && (!wake || *w < *wake)) wake = w;
  }
  return wake;
}

TransportStats UdpTransport::Stats() const {
  TransportStats st = stats_;
  for (const auto& s : sessions_) {
    if (s != nullptr) st.sessions.MergeFrom(s->stats());
  }
  return st;
}

}  // namespace celect::net
