#include "celect/net/peer_node.h"

#include <algorithm>
#include <string>

#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect::net {

// sim::Context implemented against Transport primitives.
class PeerNode::Ctx final : public sim::Context {
 public:
  explicit Ctx(PeerNode* node) : node_(node) {}

  sim::NodeId address() const override { return node_->transport_.self(); }
  sim::Id id() const override { return node_->config_.id; }
  std::uint32_t n() const override { return node_->transport_.n(); }
  sim::Time now() const override { return node_->SimNow(); }
  bool has_sense_of_direction() const override {
    return node_->config_.sense_of_direction;
  }

  void Send(sim::Port port, wire::Packet p) override {
    CELECT_DCHECK(port >= 1 && port < n());
    node_->traversed_.insert(port);
    node_->SendTraced(node_->PeerOf(port), p);
  }

  std::optional<sim::Port> SendFresh(wire::Packet p) override {
    // Deterministic mapper policy: lowest untraversed port first.
    for (sim::Port port = 1; port < n(); ++port) {
      if (node_->traversed_.count(port)) continue;
      Send(port, std::move(p));
      return port;
    }
    return std::nullopt;
  }

  void SendAll(wire::Packet p) override {
    for (sim::Port port = 1; port < n(); ++port) Send(port, p);
  }

  sim::TimerId SetTimer(sim::Time delay) override {
    sim::TimerId id = node_->next_timer_++;
    Micros deadline =
        node_->transport_.Now() + node_->DelayToMicros(delay);
    node_->timers_.insert({deadline, id});
    node_->TraceEvent(sim::TraceRecord::Kind::kTimerSet, 0, 0, 0,
                      node_->lamport_, static_cast<std::uint64_t>(id));
    return id;
  }

  void CancelTimer(sim::TimerId timer) override {
    if (timer == sim::kInvalidTimer) return;
    node_->cancelled_.insert(timer);
    node_->TraceEvent(sim::TraceRecord::Kind::kTimerCancel, 0, 0, 0,
                      node_->lamport_, static_cast<std::uint64_t>(timer));
  }

  void DeclareLeader() override {
    node_->declared_self_ = true;
    node_->Believe(node_->config_.id);
  }

  void AddCounter(std::string_view name, std::int64_t delta) override {
    node_->counters_[std::string(name)] += delta;
  }

  void MaxCounter(std::string_view name, std::int64_t value) override {
    auto& slot = node_->counters_[std::string(name)];
    if (value > slot) slot = value;
  }

 private:
  PeerNode* node_;
};

PeerNode::PeerNode(const PeerNodeConfig& config, Transport& transport,
                   const sim::ProcessFactory& factory)
    : config_(config), transport_(transport) {
  CELECT_CHECK(config_.unit_us > 0);
  ctx_ = std::make_unique<Ctx>(this);
  process_ = factory(sim::ProcessInit{transport_.self(), config_.id,
                                      transport_.n()});
  // High 44 bits identify this incarnation (epoch is unique per node
  // incarnation); the low 20 bits count sends. A node that sends more
  // than 2^20 messages rolls into + carry — mids stay unique, they just
  // stop being prefix-groupable, which nothing relies on.
  mid_base_ = SplitMix64(transport_.epoch() ^
                         (std::uint64_t{transport_.self()} << 32) ^
                         0x5a1de5a1deULL)
                  .Next()
              << 20;
}

PeerNode::~PeerNode() = default;

PeerId PeerNode::PeerOf(sim::Port port) const {
  return (transport_.self() + port) % transport_.n();
}

sim::Port PeerNode::PortOf(PeerId peer) const {
  std::uint32_t n = transport_.n();
  return static_cast<sim::Port>((peer + n - transport_.self()) % n);
}

std::int64_t PeerNode::TicksOf(Micros at) const {
  // Split to keep at * 2^20 well inside int64 even for long runs.
  std::int64_t units = static_cast<std::int64_t>(at / config_.unit_us);
  std::int64_t rem = static_cast<std::int64_t>(at % config_.unit_us);
  return units * sim::Time::kTicksPerUnit +
         rem * sim::Time::kTicksPerUnit /
             static_cast<std::int64_t>(config_.unit_us);
}

sim::Time PeerNode::SimNow() const {
  return sim::Time::FromTicks(TicksOf(transport_.Now()));
}

Micros PeerNode::DelayToMicros(sim::Time delay) const {
  std::int64_t t = delay.ticks();
  if (t <= 0) return 0;
  std::int64_t unit = static_cast<std::int64_t>(config_.unit_us);
  return static_cast<Micros>(t / sim::Time::kTicksPerUnit * unit +
                             t % sim::Time::kTicksPerUnit * unit /
                                 sim::Time::kTicksPerUnit);
}

void PeerNode::Believe(sim::Id leader) {
  if (leader_ && *leader_ >= leader) return;
  leader_ = leader;
  TraceEvent(sim::TraceRecord::Kind::kLeader, 0, 0, 0, lamport_,
             static_cast<std::uint64_t>(leader));
  // Announce promptly so a fresh belief propagates within one pump.
  next_announce_ = transport_.Now();
}

void PeerNode::Start() {
  if (started_) return;
  started_ = true;
  if (config_.rejoin) {
    TraceEvent(sim::TraceRecord::Kind::kRejoin, 0, 0, 0, lamport_, 0);
    process_->OnRejoin(*ctx_);
  } else {
    ++lamport_;
    TraceEvent(sim::TraceRecord::Kind::kWakeup, 0, 0, 0, lamport_, 0);
    process_->OnWakeup(*ctx_);
  }
}

void PeerNode::TraceEvent(sim::TraceRecord::Kind kind, PeerId peer,
                          sim::Port port, std::uint16_t type,
                          std::uint64_t clock, std::uint64_t mid) {
  if (!config_.trace) return;
  if (trace_.size() >= config_.trace_cap) {
    ++trace_dropped_;
    return;
  }
  sim::TraceRecord r{};
  r.kind = kind;
  r.at = SimNow();
  r.node = transport_.self();
  r.peer = peer;
  r.port = port;
  r.type = type;
  r.seq = trace_seq_++;
  r.clock = clock;
  r.mid = mid;
  trace_.push_back(r);
}

void PeerNode::SendTraced(PeerId peer, const wire::Packet& p) {
  ++lamport_;
  std::uint64_t mid = mid_base_ + ++mid_counter_;
  TraceEvent(sim::TraceRecord::Kind::kSend, peer, PortOf(peer), p.type,
             lamport_, mid);
  transport_.Send(peer, p, TraceContext{lamport_, mid});
}

void PeerNode::Dispatch(const TransportEvent& ev) {
  ++events_dispatched_;
  digest_.Update(static_cast<std::uint8_t>(ev.kind));
  digest_.Update(static_cast<std::uint8_t>(ev.peer));
  sim::Port port = PortOf(ev.peer);
  switch (ev.kind) {
    case TransportEvent::Kind::kPacket: {
      digest_.Update(static_cast<std::uint8_t>(ev.packet.type));
      digest_.Update(static_cast<std::uint8_t>(ev.packet.type >> 8));
      for (std::int64_t f : ev.packet.fields) {
        for (int i = 0; i < 8; ++i) {
          digest_.Update(static_cast<std::uint8_t>(
              static_cast<std::uint64_t>(f) >> (8 * i)));
        }
      }
      // Join the sender's clock before anything runs in response —
      // announce interception included, so gossip stays on the causal
      // timeline too.
      lamport_ = std::max(lamport_, ev.tc_clock) + 1;
      TraceEvent(sim::TraceRecord::Kind::kDeliver, ev.peer, port,
                 ev.packet.type, lamport_, ev.tc_mid);
      if (ev.packet.type == kAnnouncePacketType) {
        if (!ev.packet.fields.empty()) Believe(ev.packet.field(0));
        return;
      }
      traversed_.insert(port);
      process_->OnMessage(*ctx_, port, ev.packet);
      return;
    }
    case TransportEvent::Kind::kSuspect:
      ++suspicions_seen_;
      process_->OnPeerSuspected(*ctx_, port);
      return;
    case TransportEvent::Kind::kPeerRestart:
      // The reliability layer already resynced; nothing protocol-level
      // to do — the revived peer re-enters via its own OnRejoin.
      return;
  }
}

void PeerNode::FireDueTimers() {
  while (!timers_.empty()) {
    auto [deadline, id] = *timers_.begin();
    if (deadline > transport_.Now()) break;
    timers_.erase(timers_.begin());
    if (cancelled_.erase(id) > 0) continue;
    digest_.Update(0x7D);  // timer-fired marker
    digest_.Update(static_cast<std::uint8_t>(id));
    ++lamport_;
    TraceEvent(sim::TraceRecord::Kind::kTimerFire, 0, 0, 0, lamport_,
               static_cast<std::uint64_t>(id));
    process_->OnTimer(*ctx_, id);
  }
}

void PeerNode::Announce() {
  wire::Packet p;
  p.type = kAnnouncePacketType;
  p.fields.push_back(*leader_);
  for (PeerId peer = 0; peer < transport_.n(); ++peer) {
    if (peer == transport_.self()) continue;
    SendTraced(peer, p);
  }
  next_announce_ = transport_.Now() + config_.announce_interval_us;
}

void PeerNode::Pump() {
  Start();
  events_.clear();
  transport_.Poll(events_);
  for (const TransportEvent& ev : events_) Dispatch(ev);
  FireDueTimers();
  if (leader_ && transport_.Now() >= next_announce_) Announce();
}

obs::MetricsRegistry PeerNode::SnapshotMetrics() const {
  obs::MetricsRegistry m;
  for (const auto& [name, value] : counters_) {
    if (value > 0) {
      m.AddCounter("proto." + name, static_cast<std::uint64_t>(value));
    }
  }
  m.AddCounter("node.events_dispatched", events_dispatched_);
  m.AddCounter("node.suspicions_seen", suspicions_seen_);
  m.AddCounter("node.trace_dropped", trace_dropped_);
  TransportStats st = transport_.Stats();
  m.AddCounter("net.datagrams_sent", st.datagrams_sent);
  m.AddCounter("net.datagrams_received", st.datagrams_received);
  m.AddCounter("net.retransmits", st.sessions.data_retransmits);
  m.AddCounter("net.delivered", st.sessions.delivered);
  m.AddCounter("net.suspicions", st.sessions.suspicions);
  m.AddCounter("net.peer_restarts", st.sessions.peer_restarts);
  m.AddCounter("net.version_mismatch", st.sessions.version_mismatch);
  m.AddCounter("net.rtt_samples_dropped",
               st.sessions.rtt_samples_dropped);
  m.MergeHistogram("rtt_us", st.sessions.rtt_us);
  m.MergeHistogram("backoff_us", st.sessions.backoff_us);
  m.MergeHistogram("window_occupancy", st.sessions.window);
  m.MergeHistogram("suspicion_us", st.sessions.suspicion_us);
  return m;
}

obs::TraceShard PeerNode::MakeShard(bool complete) const {
  obs::TraceShard s;
  s.node = transport_.self();
  s.epoch = transport_.epoch();
  s.complete = complete;
  s.dropped = trace_dropped_;
  s.label = "id=" + std::to_string(config_.id);
  s.records = trace_;
  if (const obs::FlightRecorder* rec = transport_.recorder()) {
    s.flight = rec->Snapshot();
    for (auto& f : s.flight) {
      f.at = static_cast<std::uint64_t>(
          TicksOf(static_cast<Micros>(f.at)));
    }
  }
  s.metrics = SnapshotMetrics();
  return s;
}

std::optional<Micros> PeerNode::NextWake() const {
  std::optional<Micros> wake = transport_.NextWake();
  auto consider = [&wake](Micros t) {
    if (!wake || t < *wake) wake = t;
  };
  if (!timers_.empty()) consider(timers_.begin()->first);
  if (leader_) consider(next_announce_);
  return wake;
}

}  // namespace celect::net
