#include "celect/net/peer_node.h"

#include <string>

#include "celect/util/check.h"

namespace celect::net {

// sim::Context implemented against Transport primitives.
class PeerNode::Ctx final : public sim::Context {
 public:
  explicit Ctx(PeerNode* node) : node_(node) {}

  sim::NodeId address() const override { return node_->transport_.self(); }
  sim::Id id() const override { return node_->config_.id; }
  std::uint32_t n() const override { return node_->transport_.n(); }
  sim::Time now() const override { return node_->SimNow(); }
  bool has_sense_of_direction() const override {
    return node_->config_.sense_of_direction;
  }

  void Send(sim::Port port, wire::Packet p) override {
    CELECT_DCHECK(port >= 1 && port < n());
    node_->traversed_.insert(port);
    node_->transport_.Send(node_->PeerOf(port), p);
  }

  std::optional<sim::Port> SendFresh(wire::Packet p) override {
    // Deterministic mapper policy: lowest untraversed port first.
    for (sim::Port port = 1; port < n(); ++port) {
      if (node_->traversed_.count(port)) continue;
      Send(port, std::move(p));
      return port;
    }
    return std::nullopt;
  }

  void SendAll(wire::Packet p) override {
    for (sim::Port port = 1; port < n(); ++port) Send(port, p);
  }

  sim::TimerId SetTimer(sim::Time delay) override {
    sim::TimerId id = node_->next_timer_++;
    Micros deadline =
        node_->transport_.Now() + node_->DelayToMicros(delay);
    node_->timers_.insert({deadline, id});
    return id;
  }

  void CancelTimer(sim::TimerId timer) override {
    if (timer != sim::kInvalidTimer) node_->cancelled_.insert(timer);
  }

  void DeclareLeader() override {
    node_->declared_self_ = true;
    node_->Believe(node_->config_.id);
  }

  void AddCounter(std::string_view name, std::int64_t delta) override {
    node_->counters_[std::string(name)] += delta;
  }

  void MaxCounter(std::string_view name, std::int64_t value) override {
    auto& slot = node_->counters_[std::string(name)];
    if (value > slot) slot = value;
  }

 private:
  PeerNode* node_;
};

PeerNode::PeerNode(const PeerNodeConfig& config, Transport& transport,
                   const sim::ProcessFactory& factory)
    : config_(config), transport_(transport) {
  CELECT_CHECK(config_.unit_us > 0);
  ctx_ = std::make_unique<Ctx>(this);
  process_ = factory(sim::ProcessInit{transport_.self(), config_.id,
                                      transport_.n()});
}

PeerNode::~PeerNode() = default;

PeerId PeerNode::PeerOf(sim::Port port) const {
  return (transport_.self() + port) % transport_.n();
}

sim::Port PeerNode::PortOf(PeerId peer) const {
  std::uint32_t n = transport_.n();
  return static_cast<sim::Port>((peer + n - transport_.self()) % n);
}

sim::Time PeerNode::SimNow() const {
  Micros now = transport_.Now();
  // Split to keep now * 2^20 well inside int64 even for long runs.
  std::int64_t units = static_cast<std::int64_t>(now / config_.unit_us);
  std::int64_t rem = static_cast<std::int64_t>(now % config_.unit_us);
  return sim::Time::FromTicks(
      units * sim::Time::kTicksPerUnit +
      rem * sim::Time::kTicksPerUnit /
          static_cast<std::int64_t>(config_.unit_us));
}

Micros PeerNode::DelayToMicros(sim::Time delay) const {
  std::int64_t t = delay.ticks();
  if (t <= 0) return 0;
  std::int64_t unit = static_cast<std::int64_t>(config_.unit_us);
  return static_cast<Micros>(t / sim::Time::kTicksPerUnit * unit +
                             t % sim::Time::kTicksPerUnit * unit /
                                 sim::Time::kTicksPerUnit);
}

void PeerNode::Believe(sim::Id leader) {
  if (leader_ && *leader_ >= leader) return;
  leader_ = leader;
  // Announce promptly so a fresh belief propagates within one pump.
  next_announce_ = transport_.Now();
}

void PeerNode::Start() {
  if (started_) return;
  started_ = true;
  if (config_.rejoin) {
    process_->OnRejoin(*ctx_);
  } else {
    process_->OnWakeup(*ctx_);
  }
}

void PeerNode::Dispatch(const TransportEvent& ev) {
  ++events_dispatched_;
  digest_.Update(static_cast<std::uint8_t>(ev.kind));
  digest_.Update(static_cast<std::uint8_t>(ev.peer));
  sim::Port port = PortOf(ev.peer);
  switch (ev.kind) {
    case TransportEvent::Kind::kPacket: {
      digest_.Update(static_cast<std::uint8_t>(ev.packet.type));
      digest_.Update(static_cast<std::uint8_t>(ev.packet.type >> 8));
      for (std::int64_t f : ev.packet.fields) {
        for (int i = 0; i < 8; ++i) {
          digest_.Update(static_cast<std::uint8_t>(
              static_cast<std::uint64_t>(f) >> (8 * i)));
        }
      }
      if (ev.packet.type == kAnnouncePacketType) {
        if (!ev.packet.fields.empty()) Believe(ev.packet.field(0));
        return;
      }
      traversed_.insert(port);
      process_->OnMessage(*ctx_, port, ev.packet);
      return;
    }
    case TransportEvent::Kind::kSuspect:
      ++suspicions_seen_;
      process_->OnPeerSuspected(*ctx_, port);
      return;
    case TransportEvent::Kind::kPeerRestart:
      // The reliability layer already resynced; nothing protocol-level
      // to do — the revived peer re-enters via its own OnRejoin.
      return;
  }
}

void PeerNode::FireDueTimers() {
  while (!timers_.empty()) {
    auto [deadline, id] = *timers_.begin();
    if (deadline > transport_.Now()) break;
    timers_.erase(timers_.begin());
    if (cancelled_.erase(id) > 0) continue;
    digest_.Update(0x7D);  // timer-fired marker
    digest_.Update(static_cast<std::uint8_t>(id));
    process_->OnTimer(*ctx_, id);
  }
}

void PeerNode::Announce() {
  wire::Packet p;
  p.type = kAnnouncePacketType;
  p.fields.push_back(*leader_);
  for (PeerId peer = 0; peer < transport_.n(); ++peer) {
    if (peer == transport_.self()) continue;
    transport_.Send(peer, p);
  }
  next_announce_ = transport_.Now() + config_.announce_interval_us;
}

void PeerNode::Pump() {
  Start();
  events_.clear();
  transport_.Poll(events_);
  for (const TransportEvent& ev : events_) Dispatch(ev);
  FireDueTimers();
  if (leader_ && transport_.Now() >= next_announce_) Announce();
}

std::optional<Micros> PeerNode::NextWake() const {
  std::optional<Micros> wake = transport_.NextWake();
  auto consider = [&wake](Micros t) {
    if (!wake || t < *wake) wake = t;
  };
  if (!timers_.empty()) consider(timers_.begin()->first);
  if (leader_) consider(next_announce_);
  return wake;
}

}  // namespace celect::net
