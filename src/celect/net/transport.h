// The transport seam.
//
// A Transport moves wire::Packets between the n nodes of a complete
// network, reliably (each peer pair is backed by a ReliableSession).
// Protocol engines — hosted behind sim::Process by PeerNode — run
// unmodified over either implementation:
//
//   * SimNet        — in-memory, VirtualClock + FakeLink, deterministic;
//   * UdpTransport  — real UDP sockets over localhost, MonotonicClock.
//
// Poll() surfaces three event kinds: delivered packets, peer-suspect
// hints (retransmit exhaustion — the crash signal the fault-tolerant
// election layer consumes), and peer-restart notices (a new session
// epoch was adopted for a peer).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "celect/net/clock.h"
#include "celect/net/reliable.h"
#include "celect/wire/packet.h"

namespace celect::net {

// Node index in [0, n).
using PeerId = std::uint32_t;

struct TransportEvent {
  enum class Kind {
    kPacket,       // packet holds a delivered message from peer
    kSuspect,      // peer stopped acking; likely crashed
    kPeerRestart,  // peer came back with a fresh session epoch
  };
  Kind kind = Kind::kPacket;
  PeerId peer = 0;
  wire::Packet packet;  // valid only for kPacket
  // Sender's trace context from the wire (kPacket only; zero when the
  // sender didn't trace): the Lamport clock at send time and the
  // message uid pairing this delivery with the sender's kSend record.
  std::uint64_t tc_clock = 0;
  std::uint64_t tc_mid = 0;
};

struct TransportStats {
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t send_loss_injected = 0;  // UDP chaos knob
  SessionStats sessions;                 // aggregated over all peers
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual PeerId self() const = 0;
  virtual PeerId n() const = 0;
  virtual Micros Now() = 0;

  // Queues p for exactly-once in-order delivery to peer; tc rides the
  // wire with the packet (zeroes when the caller doesn't trace).
  virtual void Send(PeerId peer, const wire::Packet& p,
                    TraceContext tc) = 0;
  void Send(PeerId peer, const wire::Packet& p) {
    Send(peer, p, TraceContext{});
  }

  // Drives timers and the wire, appending any ready events to out.
  virtual void Poll(std::vector<TransportEvent>& out) = 0;

  // Earliest time Poll has scheduled work (retransmits, handshakes);
  // nullopt when idle. Event-driven hosts sleep until then.
  virtual std::optional<Micros> NextWake() const = 0;

  virtual TransportStats Stats() const = 0;

  // This endpoint's session epoch — unique per incarnation of the
  // node, so it keys trace shards. Zero when the transport has no
  // epoch notion.
  virtual std::uint64_t epoch() const { return 0; }

  // The endpoint's flight recorder (shared by its sessions); nullptr
  // when the transport doesn't keep one.
  virtual const obs::FlightRecorder* recorder() const { return nullptr; }
};

}  // namespace celect::net
