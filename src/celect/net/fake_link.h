// Deterministic byte-pipe with seeded chaos.
//
// FakeLink is a unidirectional datagram channel that loses, duplicates,
// reorders (via extra delay), and corrupts (bit flips) traffic under a
// seeded Rng — so the full reliability stack is unit-testable
// bit-reproducibly without opening a socket. Two FakeLinks back to back
// make a duplex link; SimNet wires n*(n-1) of them into a mesh.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "celect/net/clock.h"
#include "celect/util/rng.h"

namespace celect::net {

struct FakeLinkParams {
  double loss = 0.0;        // P(datagram silently dropped)
  double duplicate = 0.0;   // P(datagram delivered twice)
  double corrupt = 0.0;     // P(1..4 bit flips before delivery)
  double reorder = 0.0;     // P(datagram held back by reorder_extra)
  Micros delay_min = 500;   // per-datagram propagation delay range
  Micros delay_max = 3'000;
  Micros reorder_extra = 8'000;
  std::uint64_t seed = 1;
};

class FakeLink {
 public:
  explicit FakeLink(const FakeLinkParams& params);

  void Send(const std::uint8_t* data, std::size_t size, Micros now);
  void Send(const std::vector<std::uint8_t>& dgram, Micros now);

  // Earliest pending delivery, if any.
  std::optional<Micros> NextDelivery() const;

  // Moves every datagram due at or before now into out, in delivery
  // order (ties broken by send order — deterministically).
  void DeliverDue(Micros now, std::vector<std::vector<std::uint8_t>>& out);

  void DropAll();  // e.g. when the receiving process is killed

  std::uint64_t sent() const { return sent_; }
  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t lost() const { return lost_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t corrupted() const { return corrupted_; }
  std::uint64_t reordered() const { return reordered_; }

 private:
  struct InFlight {
    Micros at;
    std::uint64_t order;  // tie-break: monotone enqueue counter
    std::vector<std::uint8_t> bytes;
    bool operator<(const InFlight& o) const {
      return at != o.at ? at < o.at : order < o.order;
    }
  };

  void Enqueue(std::vector<std::uint8_t> bytes, Micros now);

  FakeLinkParams params_;
  Rng rng_;
  std::set<InFlight> in_flight_;
  std::uint64_t order_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t reordered_ = 0;
};

}  // namespace celect::net
