#include "celect/net/frame.h"

#include "celect/wire/varint.h"

namespace celect::net {

bool IsValidFrameKind(std::uint8_t k) {
  return k >= static_cast<std::uint8_t>(FrameKind::kHello) &&
         k <= static_cast<std::uint8_t>(FrameKind::kReset);
}

const char* ToString(FrameKind k) {
  switch (k) {
    case FrameKind::kHello:
      return "hello";
    case FrameKind::kHelloAck:
      return "hello-ack";
    case FrameKind::kData:
      return "data";
    case FrameKind::kAck:
      return "ack";
    case FrameKind::kReset:
      return "reset";
  }
  return "?";
}

void EncodeFrame(FrameKind kind, const std::uint8_t* payload,
                 std::size_t len, std::vector<std::uint8_t>& out) {
  out.push_back(kFrameMagic0);
  out.push_back(kFrameMagic1);
  wire::Fnv1aStream hash;
  std::size_t body = out.size();
  out.push_back(static_cast<std::uint8_t>(kind));
  wire::PutVarint(out, len);
  for (std::size_t i = body; i < out.size(); ++i) hash.Update(out[i]);
  for (std::size_t i = 0; i < len; ++i) {
    hash.Update(payload[i]);
    out.push_back(payload[i]);
  }
  std::uint32_t sum = hash.Digest32();
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(sum >> (8 * i)));
  }
}

void EncodeFrame(FrameKind kind, const std::vector<std::uint8_t>& payload,
                 std::vector<std::uint8_t>& out) {
  EncodeFrame(kind, payload.data(), payload.size(), out);
}

FrameDecoder::Push FrameDecoder::Fail() {
  ++errors_;
  state_ = State::kMagic0;
  frame_.payload.clear();
  return Push::kError;
}

FrameDecoder::Push FrameDecoder::PushByte(std::uint8_t b) {
  switch (state_) {
    case State::kMagic0:
      if (b == kFrameMagic0) {
        state_ = State::kMagic1;
      } else {
        ++garbage_bytes_;
      }
      return Push::kPending;
    case State::kMagic1:
      if (b == kFrameMagic1) {
        state_ = State::kKind;
        frame_.payload.clear();
        len_ = 0;
        len_shift_ = 0;
        sum_ = 0;
        sum_bytes_ = 0;
        hash_.Reset();
      } else if (b == kFrameMagic0) {
        // The previous magic0 was garbage; this byte restarts the scan.
        ++garbage_bytes_;
      } else {
        garbage_bytes_ += 2;
        state_ = State::kMagic0;
      }
      return Push::kPending;
    case State::kKind:
      hash_.Update(b);
      if (!IsValidFrameKind(b)) return Fail();
      frame_.kind = static_cast<FrameKind>(b);
      state_ = State::kLen;
      return Push::kPending;
    case State::kLen:
      hash_.Update(b);
      len_ |= static_cast<std::uint64_t>(b & 0x7F) << len_shift_;
      if (b & 0x80) {
        len_shift_ += 7;
        // kMaxFramePayload fits in two 7-bit groups; a longer chain is
        // corruption, and without this cap a hostile length could run
        // the shift past 64 bits.
        if (len_shift_ > 21) return Fail();
        return Push::kPending;
      }
      if (len_shift_ > 0 && b == 0) return Fail();  // overlong varint
      if (len_ > kMaxFramePayload) return Fail();
      frame_.payload.reserve(static_cast<std::size_t>(len_));
      state_ = len_ == 0 ? State::kSum : State::kPayload;
      return Push::kPending;
    case State::kPayload:
      hash_.Update(b);
      frame_.payload.push_back(b);
      if (frame_.payload.size() == len_) state_ = State::kSum;
      return Push::kPending;
    case State::kSum:
      sum_ |= static_cast<std::uint32_t>(b) << (8 * sum_bytes_);
      if (++sum_bytes_ < 4) return Push::kPending;
      if (sum_ != hash_.Digest32()) return Fail();
      ++frames_;
      state_ = State::kMagic0;
      return Push::kFrame;
  }
  return Push::kPending;
}

std::size_t FrameDecoder::PushBytes(const std::uint8_t* data,
                                    std::size_t len,
                                    std::vector<Frame>& out) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (PushByte(data[i]) == Push::kFrame) {
      out.push_back(TakeFrame());
      ++n;
    }
  }
  return n;
}

Frame FrameDecoder::TakeFrame() {
  Frame f;
  f.kind = frame_.kind;
  f.payload = std::move(frame_.payload);
  frame_.payload.clear();
  return f;
}

bool FrameDecoder::FlushTruncated() {
  if (state_ == State::kMagic0) return false;
  ++errors_;
  state_ = State::kMagic0;
  frame_.payload.clear();
  return true;
}

}  // namespace celect::net
