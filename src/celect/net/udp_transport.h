// Real-socket transport: one UDP socket per node on 127.0.0.1.
//
// Node i binds base_port + i; the peer address map is static, which is
// all a complete network needs. The same ReliableSession stack as the
// in-memory path runs on top, so elections survive genuine datagram
// loss and process kills — and for testing, a seeded send-side loss
// injector drops outgoing datagrams before they reach the socket,
// giving the multi-process demo its 10% chaos without tc/netem.
#pragma once

#include <memory>
#include <vector>

#include "celect/net/clock.h"
#include "celect/net/transport.h"
#include "celect/obs/shard.h"
#include "celect/util/rng.h"

namespace celect::net {

struct UdpTransportConfig {
  PeerId self = 0;
  PeerId n = 2;
  std::uint16_t base_port = 47000;
  SessionParams session;
  double send_loss = 0.0;   // injected outgoing-datagram drop rate
  std::uint64_t seed = 1;   // loss injector + session jitter
  std::uint64_t epoch = 0;  // 0 → HostEpoch()
};

class UdpTransport final : public Transport {
 public:
  explicit UdpTransport(const UdpTransportConfig& config);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  // Binds the socket; false (with errno intact) on failure.
  bool Open();

  PeerId self() const override { return config_.self; }
  PeerId n() const override { return config_.n; }
  Micros Now() override { return clock_.Now(); }
  using Transport::Send;
  void Send(PeerId peer, const wire::Packet& p, TraceContext tc) override;
  void Poll(std::vector<TransportEvent>& out) override;
  std::optional<Micros> NextWake() const override;
  TransportStats Stats() const override;
  std::uint64_t epoch() const override { return epoch_; }
  const obs::FlightRecorder* recorder() const override {
    return &recorder_;
  }

 private:
  ReliableSession& Session(PeerId peer);
  void Flush(PeerId peer);
  void DrainSocket();

  UdpTransportConfig config_;
  MonotonicClock clock_;
  Rng loss_rng_;
  std::uint64_t epoch_;
  int fd_ = -1;
  obs::FlightRecorder recorder_;
  std::vector<std::unique_ptr<ReliableSession>> sessions_;
  TransportStats stats_;
};

}  // namespace celect::net
