#include "celect/net/sim_net.h"

#include "celect/obs/shard.h"
#include "celect/util/check.h"

namespace celect::net {

// One endpoint of the mesh. Sessions are created lazily per peer (a
// node only pays for peers it actually talks to) and rebuilt with a
// fresh epoch after Restart.
class SimNet::Node final : public Transport {
 public:
  Node(SimNet* net, PeerId self, std::uint64_t epoch)
      : net_(net), self_(self), epoch_(epoch) {
    sessions_.resize(net_->n());
  }

  PeerId self() const override { return self_; }
  PeerId n() const override { return net_->n(); }
  Micros Now() override { return net_->clock_.Now(); }
  std::uint64_t epoch() const override { return epoch_; }
  const obs::FlightRecorder* recorder() const override {
    return &recorder_;
  }

  using Transport::Send;
  void Send(PeerId peer, const wire::Packet& p, TraceContext tc) override {
    CELECT_DCHECK(peer < n() && peer != self_);
    Session(peer).SendPacket(p, Now(), tc);
    Flush(peer);
  }

  void Poll(std::vector<TransportEvent>& out) override {
    Micros now = Now();
    // Feed received datagrams first so acks suppress retransmits that
    // would otherwise fire on this same Tick.
    for (auto& [from, dgram] : inbox_) {
      Session(from).OnDatagram(dgram.data(), dgram.size(), now);
    }
    inbox_.clear();
    for (PeerId peer = 0; peer < n(); ++peer) {
      auto* s = sessions_[peer].get();
      if (s == nullptr) continue;
      s->Tick(now);
      for (auto& d : s->delivered()) {
        out.push_back(TransportEvent{TransportEvent::Kind::kPacket, peer,
                                     std::move(d.packet), d.tc.clock,
                                     d.tc.mid});
      }
      s->delivered().clear();
      if (s->TakePeerRestart()) {
        out.push_back(TransportEvent{TransportEvent::Kind::kPeerRestart, peer,
                                     wire::Packet{}});
      }
      if (s->TakeSuspect()) {
        out.push_back(TransportEvent{TransportEvent::Kind::kSuspect, peer,
                                     wire::Packet{}});
      }
      Flush(peer);
    }
  }

  std::optional<Micros> NextWake() const override {
    std::optional<Micros> wake;
    for (const auto& s : sessions_) {
      if (s == nullptr) continue;
      auto w = s->NextWake();
      if (w && (!wake || *w < *wake)) wake = w;
    }
    return wake;
  }

  TransportStats Stats() const override {
    TransportStats st = stats_;
    for (const auto& s : sessions_) {
      if (s != nullptr) st.sessions.MergeFrom(s->stats());
    }
    return st;
  }

  void Receive(PeerId from, std::vector<std::uint8_t> dgram) {
    stats_.bytes_received += dgram.size();
    ++stats_.datagrams_received;
    inbox_.emplace_back(from, std::move(dgram));
  }

 private:
  ReliableSession& Session(PeerId peer) {
    auto& slot = sessions_[peer];
    if (slot == nullptr) {
      SessionParams params = net_->config_.session;
      params.seed = SplitMix64(net_->config_.seed ^ (epoch_ * 0x9e37u) ^
                               (std::uint64_t{self_} << 32) ^ peer)
                        .Next();
      params.recorder = &recorder_;
      params.recorder_peer = peer;
      slot = std::make_unique<ReliableSession>(epoch_, params);
    }
    return *slot;
  }

  void Flush(PeerId peer) {
    auto& out = Session(peer).outbox();
    Micros now = Now();
    for (auto& dgram : out) {
      stats_.bytes_sent += dgram.size();
      ++stats_.datagrams_sent;
      net_->Channel(self_, peer).Send(dgram, now);
    }
    out.clear();
  }

  SimNet* net_;
  PeerId self_;
  std::uint64_t epoch_;
  obs::FlightRecorder recorder_;
  std::vector<std::unique_ptr<ReliableSession>> sessions_;
  std::deque<std::pair<PeerId, std::vector<std::uint8_t>>> inbox_;
  TransportStats stats_;
};

SimNet::SimNet(const SimNetConfig& config)
    : config_(config), alive_(config.n, true) {
  CELECT_CHECK(config_.n >= 2) << "SimNet needs at least two nodes";
  channels_.resize(std::size_t{config_.n} * config_.n);
  for (PeerId from = 0; from < config_.n; ++from) {
    for (PeerId to = 0; to < config_.n; ++to) {
      if (from == to) continue;
      FakeLinkParams lp = config_.link;
      lp.seed = SplitMix64(config_.seed ^
                           (std::uint64_t{from} * config_.n + to + 1))
                    .Next();
      channels_[std::size_t{from} * config_.n + to] =
          std::make_unique<FakeLink>(lp);
    }
  }
  nodes_.resize(config_.n);
  for (PeerId i = 0; i < config_.n; ++i) {
    nodes_[i] = std::make_unique<Node>(this, i, NextEpoch());
  }
}

SimNet::~SimNet() = default;

Transport& SimNet::at(PeerId i) {
  CELECT_CHECK(i < config_.n);
  return *nodes_[i];
}

FakeLink& SimNet::Channel(PeerId from, PeerId to) {
  return *channels_[std::size_t{from} * config_.n + to];
}

const FakeLink& SimNet::Channel(PeerId from, PeerId to) const {
  return *channels_[std::size_t{from} * config_.n + to];
}

void SimNet::Kill(PeerId i) {
  CELECT_CHECK(i < config_.n);
  alive_[i] = false;
  // The process died: every byte of its session state is gone. The
  // Transport object survives so references held by the driver stay
  // valid, but it is rebuilt empty.
  nodes_[i] = std::make_unique<Node>(this, i, 0);
}

void SimNet::Restart(PeerId i) {
  CELECT_CHECK(i < config_.n);
  alive_[i] = true;
  nodes_[i] = std::make_unique<Node>(this, i, NextEpoch());
}

std::optional<Micros> SimNet::NextEvent() const {
  std::optional<Micros> next;
  auto consider = [&next](std::optional<Micros> t) {
    if (t && (!next || *t < *next)) next = t;
  };
  for (const auto& ch : channels_) {
    if (ch != nullptr) consider(ch->NextDelivery());
  }
  for (PeerId i = 0; i < config_.n; ++i) {
    if (alive_[i]) consider(nodes_[i]->NextWake());
  }
  return next;
}

void SimNet::DeliverDue() {
  Micros now = clock_.Now();
  std::vector<std::vector<std::uint8_t>> due;
  for (PeerId from = 0; from < config_.n; ++from) {
    for (PeerId to = 0; to < config_.n; ++to) {
      if (from == to) continue;
      due.clear();
      Channel(from, to).DeliverDue(now, due);
      if (!alive_[to]) continue;  // dropped on the dead host's floor
      for (auto& dgram : due) nodes_[to]->Receive(from, std::move(dgram));
    }
  }
}

std::uint64_t SimNet::LinkSent() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) {
    if (ch != nullptr) n += ch->sent();
  }
  return n;
}

std::uint64_t SimNet::LinkLost() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) {
    if (ch != nullptr) n += ch->lost();
  }
  return n;
}

std::uint64_t SimNet::LinkCorrupted() const {
  std::uint64_t n = 0;
  for (const auto& ch : channels_) {
    if (ch != nullptr) n += ch->corrupted();
  }
  return n;
}

}  // namespace celect::net
