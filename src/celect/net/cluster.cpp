#include "celect/net/cluster.h"

#include <algorithm>
#include <memory>
#include <set>

#include <unistd.h>

#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect::net {

namespace {

// Distinct, seed-shuffled identities: protocols contest on ids, so the
// winner should not trivially be node n-1 every run.
std::vector<sim::Id> MakeIds(std::uint32_t n, std::uint64_t seed) {
  Rng rng(SplitMix64(seed ^ 0x1d5).Next());
  auto perm = rng.Permutation(n);
  std::vector<sim::Id> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ids[i] = static_cast<sim::Id>(perm[i]) * 7 + 1001;
  }
  return ids;
}

struct Agreement {
  bool agreed = false;
  sim::Id leader = 0;
};

// Live nodes unanimous, and the believed id was actually declared.
template <typename NodeVec>
Agreement CheckAgreement(const NodeVec& nodes,
                         const std::vector<bool>& alive,
                         const std::set<sim::Id>& declared) {
  Agreement a;
  std::optional<sim::Id> belief;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!alive[i] || nodes[i] == nullptr) continue;
    auto l = nodes[i]->leader();
    if (!l) return a;
    if (belief && *belief != *l) return a;
    belief = l;
  }
  if (!belief || declared.count(*belief) == 0) return a;
  a.agreed = true;
  a.leader = *belief;
  return a;
}

void FoldStats(ClusterResult& r, const TransportStats& st) {
  r.datagrams += st.datagrams_sent;
  r.retransmits += st.sessions.data_retransmits;
  r.suspicions += st.sessions.suspicions;
  r.peer_restarts += st.sessions.peer_restarts;
  r.delivered += st.sessions.delivered;
  r.rtt_us.Merge(st.sessions.rtt_us);
  r.backoff_us.Merge(st.sessions.backoff_us);
  r.window_occupancy.Merge(st.sessions.window);
  r.suspicion_us.Merge(st.sessions.suspicion_us);
}

void FillRtt(ClusterResult& r, std::vector<Micros>& samples) {
  if (samples.empty()) return;
  std::sort(samples.begin(), samples.end());
  r.rtt_p50_us = samples[samples.size() / 2];
  r.rtt_p99_us = samples[samples.size() * 99 / 100];
}

}  // namespace

ClusterResult RunSimElection(const ClusterConfig& config,
                             const sim::ProcessFactory& factory) {
  SimNetConfig nc;
  nc.n = config.n;
  nc.link = config.link;
  nc.session = config.session;
  nc.seed = config.seed;
  SimNet net(nc);

  auto ids = MakeIds(config.n, config.seed);
  std::vector<std::unique_ptr<PeerNode>> nodes(config.n);
  auto make_node = [&](PeerId i, bool rejoin) {
    PeerNodeConfig pc;
    pc.id = ids[i];
    pc.unit_us = config.unit_us;
    pc.announce_interval_us = config.announce_interval_us;
    pc.rejoin = rejoin;
    pc.trace = config.trace;
    pc.trace_cap = config.trace_cap;
    return std::make_unique<PeerNode>(pc, net.at(i), factory);
  };
  std::vector<bool> alive(config.n, true);
  for (PeerId i = 0; i < config.n; ++i) nodes[i] = make_node(i, false);

  auto chaos = config.chaos;
  std::stable_sort(chaos.begin(), chaos.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at < b.at;
                   });
  std::size_t chaos_idx = 0;

  ClusterResult result;
  wire::Fnv1aStream fp;
  std::set<sim::Id> declared;
  auto note_declared = [&] {
    for (PeerId i = 0; i < config.n; ++i) {
      if (alive[i] && nodes[i]->declared_self()) {
        declared.insert(nodes[i]->id());
      }
    }
  };
  auto fold_node = [&](PeerId i, bool survived) {
    // Fold a dying incarnation's digest, stats, and shard before they
    // vanish. A killed node's shard is flagged incomplete — the sim
    // analogue of the partial flush a SIGKILLed process leaves behind.
    std::uint64_t d = nodes[i]->EventDigest();
    for (int b = 0; b < 8; ++b) {
      fp.Update(static_cast<std::uint8_t>(d >> (8 * b)));
    }
    FoldStats(result, net.at(i).Stats());
    if (config.trace) result.shards.push_back(nodes[i]->MakeShard(survived));
  };

  for (PeerId i = 0; i < config.n; ++i) nodes[i]->Pump();

  for (;;) {
    note_declared();
    Agreement a = CheckAgreement(nodes, alive, declared);
    if (a.agreed) {
      result.agreed = true;
      result.leader = a.leader;
      break;
    }
    std::optional<Micros> next = net.NextEvent();
    for (PeerId i = 0; i < config.n; ++i) {
      if (!alive[i]) continue;
      auto w = nodes[i]->NextWake();
      if (w && (!next || *w < *next)) next = w;
    }
    if (chaos_idx < chaos.size() &&
        (!next || chaos[chaos_idx].at < *next)) {
      next = chaos[chaos_idx].at;
    }
    if (!next || *next > config.deadline_us) break;
    net.virtual_clock().AdvanceTo(*next);
    while (chaos_idx < chaos.size() &&
           chaos[chaos_idx].at <= net.virtual_clock().Now()) {
      const ChaosEvent& ev = chaos[chaos_idx++];
      if (ev.what == ChaosEvent::What::kKill) {
        if (!alive[ev.node]) continue;
        fold_node(ev.node, /*survived=*/false);
        net.Kill(ev.node);
        nodes[ev.node].reset();
        alive[ev.node] = false;
      } else {
        if (alive[ev.node]) continue;
        net.Restart(ev.node);
        nodes[ev.node] = make_node(ev.node, /*rejoin=*/true);
        alive[ev.node] = true;
      }
    }
    net.DeliverDue();
    for (PeerId i = 0; i < config.n; ++i) {
      if (alive[i]) nodes[i]->Pump();
    }
  }

  result.elapsed_us = net.virtual_clock().Now();
  std::vector<Micros> rtt;
  for (PeerId i = 0; i < config.n; ++i) {
    if (!alive[i]) continue;
    fold_node(i, /*survived=*/true);
    auto st = net.at(i).Stats();
    rtt.insert(rtt.end(), st.sessions.rtt_samples.begin(),
               st.sessions.rtt_samples.end());
  }
  FillRtt(result, rtt);
  result.fingerprint = fp.Digest64();
  return result;
}

std::optional<ClusterResult> RunUdpElection(
    const ClusterConfig& config, const sim::ProcessFactory& factory) {
  auto ids = MakeIds(config.n, config.seed);
  std::vector<std::unique_ptr<UdpTransport>> transports(config.n);
  for (PeerId i = 0; i < config.n; ++i) {
    UdpTransportConfig tc;
    tc.self = i;
    tc.n = config.n;
    tc.base_port = config.base_port;
    tc.session = config.session;
    tc.send_loss = config.send_loss;
    tc.seed = SplitMix64(config.seed ^ (i + 1)).Next();
    tc.epoch = config.seed * config.n + i + 1;
    transports[i] = std::make_unique<UdpTransport>(tc);
    if (!transports[i]->Open()) return std::nullopt;
  }
  std::vector<std::unique_ptr<PeerNode>> nodes(config.n);
  std::vector<bool> alive(config.n, true);
  for (PeerId i = 0; i < config.n; ++i) {
    PeerNodeConfig pc;
    pc.id = ids[i];
    pc.unit_us = config.unit_us;
    pc.announce_interval_us = config.announce_interval_us;
    pc.trace = config.trace;
    pc.trace_cap = config.trace_cap;
    nodes[i] = std::make_unique<PeerNode>(pc, *transports[i], factory);
  }

  ClusterResult result;
  std::set<sim::Id> declared;
  Micros t0 = transports[0]->Now();
  for (;;) {
    for (PeerId i = 0; i < config.n; ++i) nodes[i]->Pump();
    for (PeerId i = 0; i < config.n; ++i) {
      if (nodes[i]->declared_self()) declared.insert(nodes[i]->id());
    }
    Agreement a = CheckAgreement(nodes, alive, declared);
    if (a.agreed) {
      result.agreed = true;
      result.leader = a.leader;
      break;
    }
    Micros now = transports[0]->Now();
    if (now - t0 > config.deadline_us) break;
    ::usleep(200);
  }

  result.elapsed_us = transports[0]->Now() - t0;
  std::vector<Micros> rtt;
  for (PeerId i = 0; i < config.n; ++i) {
    auto st = transports[i]->Stats();
    FoldStats(result, st);
    if (config.trace) result.shards.push_back(nodes[i]->MakeShard(true));
    rtt.insert(rtt.end(), st.sessions.rtt_samples.begin(),
               st.sessions.rtt_samples.end());
  }
  FillRtt(result, rtt);
  return result;
}

}  // namespace celect::net
