// In-memory transport: a complete network of FakeLinks on a VirtualClock.
//
// SimNet owns n Transport endpoints and the n*(n-1) directed chaos
// channels between them. A driver (net::Cluster, tests) advances the
// clock to the next interesting instant, calls DeliverDue() to move
// datagrams whose delay expired into node inboxes, and Poll()s each
// endpoint. Everything — link delays, loss, session jitter, epochs —
// derives from the config seed, so a run is bit-reproducible.
//
// Kill/Restart model a process crash: a killed node loses all session
// state and its in-flight traffic is discarded on arrival; a restarted
// node comes back with a fresh session epoch, which is exactly what
// the reliability layer's handshake has to detect and resync.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "celect/net/clock.h"
#include "celect/net/fake_link.h"
#include "celect/net/transport.h"

namespace celect::net {

struct SimNetConfig {
  std::uint32_t n = 2;
  FakeLinkParams link;      // per-channel chaos (seed is re-derived)
  SessionParams session;    // per-session knobs (seed is re-derived)
  std::uint64_t seed = 1;
};

class SimNet {
 public:
  explicit SimNet(const SimNetConfig& config);
  ~SimNet();

  std::uint32_t n() const { return config_.n; }
  Transport& at(PeerId i);
  VirtualClock& virtual_clock() { return clock_; }
  bool alive(PeerId i) const { return alive_[i]; }

  // Crash node i: session state and inbox are lost; traffic already in
  // flight toward it is discarded when it arrives (unless i restarts
  // first — late datagrams then hit the new incarnation, which is the
  // stale-epoch case the handshake must reject).
  void Kill(PeerId i);
  // Revive node i with a fresh, unique session epoch.
  void Restart(PeerId i);

  // Earliest pending link delivery or session timer across the mesh.
  std::optional<Micros> NextEvent() const;
  // Moves every datagram due at clock_.Now() into node inboxes.
  void DeliverDue();

  // Aggregate link-level chaos counters (for tests and the bench).
  std::uint64_t LinkSent() const;
  std::uint64_t LinkLost() const;
  std::uint64_t LinkCorrupted() const;

 private:
  class Node;

  FakeLink& Channel(PeerId from, PeerId to);
  const FakeLink& Channel(PeerId from, PeerId to) const;
  std::uint64_t NextEpoch() { return ++epoch_counter_; }

  SimNetConfig config_;
  VirtualClock clock_;
  std::vector<std::unique_ptr<FakeLink>> channels_;  // [from * n + to]
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> alive_;
  std::uint64_t epoch_counter_ = 0;
};

}  // namespace celect::net
