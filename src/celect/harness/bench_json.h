// Machine-readable bench results: one BENCH_<suite>.json per suite.
//
// The pipeline every bench binary shares:
//
//   BenchEnv env(argc, argv, "E6");          // --threads, --json, --quick
//   auto results = RunSweep(grid, env.sweep());
//   env.reporter().Add(BenchRow{...});       // one row per sweep point
//   return env.Finish();                     // writes --json if requested
//
// Document schema (schema_version 2):
//
//   {
//     "suite": "E6",
//     "git_rev": "<short rev or unknown>",
//     "schema_version": 2,
//     "rows": [
//       { "n": 32, "protocol": "C", "seed_count": 1,
//         "messages": {"mean":..., "sd":..., "min":..., "max":...},
//         "time":     {"mean":..., "sd":..., "min":..., "max":...},
//         "wall_ns": ..., "events_per_sec": ...,
//         "extra": {"k": 4, ...} },         // optional, suite-specific
//     ],
//     "histograms": {                       // optional: merged telemetry
//       "latency":       {"count":..., "sum":..., "min":..., "max":...,
//                         "mean":..., "p50":..., "p90":..., "p99":...,
//                         "buckets": [...]},// power-of-two bucket counts
//       "queue_depth":   {...},
//       "capture_width": {...}
//     }
//   }
//
// schema_version 1 is version 2 minus the "histograms" key; readers that
// accept 2 accept 1.
//
// Everything except wall_ns / events_per_sec is a deterministic function
// of the grid: rows from a --threads=8 run are byte-identical to a
// --threads=1 run. Doubles are rendered with std::to_chars (shortest
// round-trip form), so the bytes are stable for equal values. No
// third-party JSON dependency.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "celect/harness/sweep.h"
#include "celect/obs/telemetry.h"
#include "celect/sim/runtime.h"
#include "celect/util/stats.h"

namespace celect::harness {

// Shortest-round-trip decimal rendering (JSON-compatible: infinities and
// NaN degrade to 0, which JSON cannot represent).
std::string JsonNumber(double v);
// Escapes a string for embedding in a JSON document (adds the quotes).
std::string JsonString(const std::string& s);

// One aggregated sweep point: `seed_count` runs reduced into Summary
// statistics, in grid-index order.
struct BenchRow {
  std::string protocol;
  std::uint32_t n = 0;
  std::uint32_t seed_count = 1;
  Summary messages;   // total_messages per run
  Summary time;       // leader_time (units) per run
  std::uint64_t wall_ns = 0;     // summed host time across the runs
  double events_per_sec = 0.0;   // aggregate throughput over wall_ns
  // Suite-specific columns (k, f, r, ...), emitted under "extra" in
  // insertion order.
  std::vector<std::pair<std::string, double>> extra;
};

// Folds a contiguous range of sweep results (one grid point, >= 1 seeds)
// into a row. Reduction is in the order given: deterministic.
BenchRow MakeBenchRow(const std::string& protocol, std::uint32_t n,
                      const std::vector<sim::RunResult>& results);

// Accumulates rows for one suite and renders the document.
class BenchReporter {
 public:
  explicit BenchReporter(std::string suite) : suite_(std::move(suite)) {}

  void Add(BenchRow row) { rows_.push_back(std::move(row)); }

  // Folds a run's telemetry into the document-level "histograms"
  // section. Merge in grid order for byte-stable output; the section is
  // omitted while the merged bundle is Empty().
  void MergeTelemetry(const obs::Telemetry& t) { telemetry_.Merge(t); }

  // Suite-specific named distributions (rtt_us, backoff_us, ...): they
  // join the same "histograms" section in name order. Empty histograms
  // are skipped at render time, so merging zero-count data is a no-op.
  void MergeNamedHistogram(const std::string& name,
                           const obs::Histogram& h) {
    named_[name].Merge(h);
  }

  const std::string& suite() const { return suite_; }
  const std::vector<BenchRow>& rows() const { return rows_; }
  const obs::Telemetry& telemetry() const { return telemetry_; }

  // The git revision compiled into the library ("unknown" outside a
  // configured checkout).
  static std::string GitRev();

  std::string ToJson() const;
  // Writes ToJson() to `path`; false (with a log line) on I/O failure.
  bool WriteFile(const std::string& path) const;

 private:
  std::string suite_;
  std::vector<BenchRow> rows_;
  obs::Telemetry telemetry_;
  std::map<std::string, obs::Histogram> named_;
};

// Renders one Histogram as the JSON object used by the "histograms"
// section (count/sum/min/max/mean/p50/p90/p99 + trimmed bucket array).
std::string HistogramJson(const obs::Histogram& h);

// Shared flag plumbing for the bench mains: --threads=N fans sweeps out
// over a worker pool, --json=PATH writes the suite document, --quick
// shrinks grids for CI smoke runs, --trace=PATH asks the suite to write
// a Perfetto trace of one representative run (suites that support it
// check trace_path()), --telemetry folds histograms into the JSON.
class BenchEnv {
 public:
  // Parses flags; on --help prints the help text and exits 0.
  BenchEnv(int argc, const char* const* argv, std::string suite);

  std::uint32_t threads() const { return threads_; }
  bool quick() const { return quick_; }
  // Ceiling for suite size sweeps: the largest N a suite should grow its
  // grid to, when the suite supports scaling (0 = the suite's built-in
  // default). The ladder-queue rework made N in the tens of thousands
  // affordable, so the ceiling is a flag rather than a constant.
  std::uint32_t nmax() const { return nmax_; }
  // The suite's effective ceiling: the flag when given, else the
  // suite default passed in.
  std::uint32_t EffectiveNMax(std::uint32_t suite_default) const {
    return nmax_ == 0 ? suite_default : nmax_;
  }
  const std::string& trace_path() const { return trace_path_; }
  bool telemetry() const { return telemetry_; }
  SweepOptions sweep() const { return SweepOptions{threads_}; }
  BenchReporter& reporter() { return reporter_; }

  // Writes the JSON document when --json was given. Returns the process
  // exit code (non-zero when the write failed).
  int Finish();

 private:
  BenchReporter reporter_;
  std::string json_path_;
  std::string trace_path_;
  std::uint32_t threads_ = 1;
  std::uint32_t nmax_ = 0;
  bool quick_ = false;
  bool telemetry_ = false;
};

}  // namespace celect::harness
