#include "celect/harness/experiment.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "celect/adversary/adaptive_adversary.h"
#include "celect/sim/network.h"
#include "celect/util/check.h"
#include "celect/util/logging.h"
#include "celect/util/rng.h"

namespace celect::harness {

using sim::NetworkConfig;
using sim::Time;

std::uint32_t RequestedWakeupCount(const RunOptions& options) {
  std::uint32_t requested =
      options.wakeup_count == 0 ? options.n / 2 : options.wakeup_count;
  return std::max<std::uint32_t>(requested, 1);
}

std::uint32_t EffectiveWakeupCount(const RunOptions& options) {
  // failures < n is CHECKed by BuildNetwork, so at least one node lives.
  std::uint32_t live =
      options.n - std::min(options.failures, options.n - 1);
  return std::min(RequestedWakeupCount(options), live);
}

sim::NetworkConfig BuildNetwork(const RunOptions& options) {
  CELECT_CHECK(options.n >= 2);
  Rng rng(options.seed);

  NetworkConfig config;
  config.n = options.n;

  switch (options.identity) {
    case IdentityKind::kAscending:
      config.identities = sim::IdentitiesAscending(options.n);
      break;
    case IdentityKind::kRandomPermutation: {
      Rng id_rng = rng.Split(1);
      config.identities = sim::IdentitiesRandom(options.n, id_rng);
      break;
    }
    case IdentityKind::kSparse: {
      Rng id_rng = rng.Split(2);
      config.identities = sim::IdentitiesSparse(options.n, id_rng);
      break;
    }
  }

  switch (options.mapper) {
    case MapperKind::kSenseOfDirection:
      config.mapper = sim::MakeSodMapper(options.n);
      break;
    case MapperKind::kRandom:
      config.mapper = sim::MakeRandomMapper(options.n,
                                            rng.Split(3).Next());
      break;
    case MapperKind::kUpAdversary:
      config.mapper =
          adversary::MakeUpFirstMapper(options.n, options.adversary_k);
      break;
  }

  switch (options.delay) {
    case DelayKind::kUnit:
      config.delays = sim::MakeUnitDelay();
      break;
    case DelayKind::kRandom:
      config.delays = sim::MakeRandomDelay(rng.Split(4).Next());
      break;
    case DelayKind::kEager:
      config.delays = sim::MakeEagerDelay();
      break;
  }

  // Initial failures: a random subset, never including address 0 when it
  // must be a base node (plans below always keep at least one live base).
  std::unordered_set<sim::NodeId> failed;
  if (options.failures > 0) {
    CELECT_CHECK(options.failures < options.n);
    Rng fail_rng = rng.Split(5);
    auto perm = fail_rng.Permutation(options.n);
    config.failed.assign(options.n, false);
    for (std::uint32_t i = 0; i < options.failures; ++i) {
      // Skip address 0 so single-base plans stay valid.
      sim::NodeId victim = perm[i] == 0 ? perm[options.failures] : perm[i];
      config.failed[victim] = true;
      failed.insert(victim);
    }
  }

  auto alive = [&failed](sim::NodeId node) { return !failed.count(node); };

  switch (options.wakeup) {
    case WakeupKind::kAllAtZero:
      for (sim::NodeId i = 0; i < options.n; ++i) {
        if (alive(i)) config.wakeup.wakeups.emplace_back(i, Time::Zero());
      }
      break;
    case WakeupKind::kSingle:
      CELECT_CHECK(alive(0));
      config.wakeup.wakeups.emplace_back(0, Time::Zero());
      break;
    case WakeupKind::kRandomSubset: {
      CELECT_CHECK(options.wakeup_count <= options.n)
          << "wakeup_count " << options.wakeup_count << " exceeds N="
          << options.n;
      std::uint32_t requested = RequestedWakeupCount(options);
      std::uint32_t count = EffectiveWakeupCount(options);
      if (count < requested) {
        CELECT_LOG(Warn) << "kRandomSubset: only " << count
                         << " live nodes; clamping wakeup_count from "
                         << requested;
      }
      Rng wake_rng = rng.Split(6);
      auto perm = wake_rng.Permutation(options.n);
      std::uint32_t added = 0;
      for (sim::NodeId node : perm) {
        if (!alive(node)) continue;
        Time at = options.wakeup_window <= 0.0
                      ? Time::Zero()
                      : Time::FromDouble(options.wakeup_window *
                                         wake_rng.NextDouble());
        config.wakeup.wakeups.emplace_back(node, at);
        if (++added == count) break;
      }
      CELECT_CHECK(added == count) << "no live base node available";
      break;
    }
    case WakeupKind::kStaggeredChain:
      for (sim::NodeId i = 0; i < options.n; ++i) {
        if (!alive(i)) continue;
        config.wakeup.wakeups.emplace_back(
            i, Time::FromDouble(options.stagger_spacing * i));
      }
      break;
  }

  config.faults = options.fault_plan;

  sim::ValidateConfig(config);
  return config;
}

namespace {

sim::RuntimeOptions RuntimeOptionsFor(const RunOptions& options) {
  sim::RuntimeOptions rt;
  rt.max_events = options.max_events;
  rt.enable_trace = options.enable_trace;
  rt.trace_cap = options.trace_cap;
  rt.enable_telemetry = options.enable_telemetry;
  rt.serialize_packets = options.serialize_packets;
  rt.use_reference_queue = options.reference_queue;
  return rt;
}

}  // namespace

sim::RunResult RunElection(const sim::ProcessFactory& factory,
                           const RunOptions& options) {
  sim::Runtime runtime(BuildNetwork(options), factory,
                       RuntimeOptionsFor(options));
  return runtime.Run();
}

TracedRun RunElectionTraced(const sim::ProcessFactory& factory,
                            const RunOptions& options) {
  sim::RuntimeOptions rt = RuntimeOptionsFor(options);
  rt.enable_trace = true;
  sim::Runtime runtime(BuildNetwork(options), factory, rt);
  TracedRun out;
  out.result = runtime.Run();
  out.records = runtime.trace().records();
  return out;
}

std::string Describe(const RunOptions& o) {
  std::ostringstream os;
  os << "N=" << o.n << " seed=" << o.seed << " mapper=";
  switch (o.mapper) {
    case MapperKind::kSenseOfDirection:
      os << "sod";
      break;
    case MapperKind::kRandom:
      os << "random";
      break;
    case MapperKind::kUpAdversary:
      os << "adversary(k=" << o.adversary_k << ")";
      break;
  }
  os << " delay=";
  switch (o.delay) {
    case DelayKind::kUnit:
      os << "unit";
      break;
    case DelayKind::kRandom:
      os << "random";
      break;
    case DelayKind::kEager:
      os << "eager";
      break;
  }
  os << " wakeup=";
  switch (o.wakeup) {
    case WakeupKind::kAllAtZero:
      os << "all";
      break;
    case WakeupKind::kSingle:
      os << "single";
      break;
    case WakeupKind::kRandomSubset: {
      // Report the count that actually wakes, not just the request.
      std::uint32_t requested = RequestedWakeupCount(o);
      std::uint32_t actual = EffectiveWakeupCount(o);
      os << "subset(" << actual;
      if (actual < requested) os << ", clamped from " << requested;
      os << ")";
      break;
    }
    case WakeupKind::kStaggeredChain:
      os << "staggered(" << o.stagger_spacing << ")";
      break;
  }
  if (o.failures) os << " failures=" << o.failures;
  if (!o.fault_plan.Empty()) {
    os << " faults=[crashes=" << o.fault_plan.crashes.size();
    if (o.fault_plan.link.Any()) {
      os << " loss=" << o.fault_plan.link.loss
         << " dup=" << o.fault_plan.link.duplicate
         << " reorder=" << o.fault_plan.link.reorder;
    }
    os << " seed=" << o.fault_plan.seed << "]";
  }
  return os.str();
}

std::string Summarize(const sim::RunResult& r) {
  std::ostringstream os;
  os << "leader=";
  if (r.leader_id) {
    os << *r.leader_id;
  } else {
    os << "none";
  }
  os << " declarations=" << r.leader_declarations
     << " messages=" << r.total_messages
     << " time=" << r.leader_time.ToDouble()
     << " quiesce=" << r.quiesce_time.ToDouble();
  if (r.faults_injected || r.messages_lost || r.messages_duplicated) {
    os << " crashes=" << r.faults_injected << " lost=" << r.messages_lost
       << " duped=" << r.messages_duplicated;
  }
  if (r.timers_fired) os << " timers=" << r.timers_fired;
  const auto counter = [&r](const char* key) -> std::int64_t {
    const auto it = r.counters.find(key);
    return it == r.counters.end() ? 0 : it->second;
  };
  if (counter("sim.rejoins") > 0) {
    os << " rejoins=" << counter("sim.rejoins");
  }
  if (counter("lease.granted") > 0 || counter("lease.revoked") > 0 ||
      counter("lease.expired") > 0) {
    os << " leases=[granted=" << counter("lease.granted")
       << " renewed=" << counter("lease.renewed")
       << " expired=" << counter("lease.expired")
       << " revoked=" << counter("lease.revoked") << "]";
  }
  if (r.invariant_violations) {
    os << " invariant_violations=" << r.invariant_violations;
  }
  return os.str();
}

}  // namespace celect::harness
