#include "celect/harness/bench_json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "celect/util/flags.h"
#include "celect/util/logging.h"

#ifndef CELECT_GIT_REV
#define CELECT_GIT_REV "unknown"
#endif

namespace celect::harness {

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) return "0";
  // Integral values print without a trailing ".0" via the integer path
  // so counts stay readable; everything else takes the shortest form
  // that round-trips.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, ptr);
}

std::string JsonString(const std::string& s) {
  std::string out = "\"";
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

namespace {

void AppendSummary(std::ostringstream& os, const char* name,
                   const Summary& s) {
  os << JsonString(name) << ": {\"mean\": " << JsonNumber(s.mean())
     << ", \"sd\": " << JsonNumber(s.stddev())
     << ", \"min\": " << JsonNumber(s.min())
     << ", \"max\": " << JsonNumber(s.max()) << "}";
}

}  // namespace

BenchRow MakeBenchRow(const std::string& protocol, std::uint32_t n,
                      const std::vector<sim::RunResult>& results) {
  BenchRow row;
  row.protocol = protocol;
  row.n = n;
  row.seed_count = static_cast<std::uint32_t>(results.size());
  std::uint64_t events = 0;
  for (const auto& r : results) {
    row.messages.Add(static_cast<double>(r.total_messages));
    row.time.Add(r.leader_time.ToDouble());
    row.wall_ns += r.wall_ns;
    events += r.events_processed;
  }
  row.events_per_sec =
      row.wall_ns > 0 ? static_cast<double>(events) * 1e9 /
                            static_cast<double>(row.wall_ns)
                      : 0.0;
  return row;
}

std::string BenchReporter::GitRev() { return CELECT_GIT_REV; }

std::string HistogramJson(const obs::Histogram& h) {
  std::ostringstream os;
  os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum()
     << ", \"min\": " << h.min() << ", \"max\": " << h.max()
     << ", \"mean\": " << JsonNumber(h.mean())
     << ", \"p50\": " << h.ApproxQuantile(0.5)
     << ", \"p90\": " << h.ApproxQuantile(0.9)
     << ", \"p99\": " << h.ApproxQuantile(0.99) << ", \"buckets\": [";
  const std::size_t used = h.BucketsUsed();
  for (std::size_t b = 0; b < used; ++b) {
    if (b) os << ", ";
    os << h.buckets()[b];
  }
  os << "]}";
  return os.str();
}

std::string BenchReporter::ToJson() const {
  std::ostringstream os;
  os << "{\n  \"suite\": " << JsonString(suite_)
     << ",\n  \"git_rev\": " << JsonString(GitRev())
     << ",\n  \"schema_version\": 2,\n  \"rows\": [";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const BenchRow& r = rows_[i];
    os << (i ? ",\n    " : "\n    ") << "{\"n\": " << r.n
       << ", \"protocol\": " << JsonString(r.protocol)
       << ", \"seed_count\": " << r.seed_count << ", ";
    AppendSummary(os, "messages", r.messages);
    os << ", ";
    AppendSummary(os, "time", r.time);
    os << ", \"wall_ns\": " << r.wall_ns
       << ", \"events_per_sec\": " << JsonNumber(r.events_per_sec);
    if (!r.extra.empty()) {
      os << ", \"extra\": {";
      for (std::size_t e = 0; e < r.extra.size(); ++e) {
        if (e) os << ", ";
        os << JsonString(r.extra[e].first) << ": "
           << JsonNumber(r.extra[e].second);
      }
      os << "}";
    }
    os << "}";
  }
  os << (rows_.empty() ? "]" : "\n  ]");
  bool any_named = false;
  for (const auto& [name, h] : named_) {
    if (h.count() > 0) {
      any_named = true;
      break;
    }
  }
  if (!telemetry_.Empty() || any_named) {
    os << ",\n  \"histograms\": {";
    bool first = true;
    auto emit = [&](const std::string& name, const obs::Histogram& h) {
      os << (first ? "\n    " : ",\n    ") << JsonString(name) << ": "
         << HistogramJson(h);
      first = false;
    };
    if (!telemetry_.Empty()) {
      emit("latency", telemetry_.latency);
      emit("queue_depth", telemetry_.queue_depth);
      emit("capture_width", telemetry_.capture_width);
      // Only churn sweeps feed this one; emitted conditionally so the
      // existing suites' documents stay byte-identical.
      if (telemetry_.election_latency.count() > 0) {
        emit("election_latency", telemetry_.election_latency);
      }
    }
    // Named histograms after the fixed telemetry trio, in name order;
    // zero-count entries are skipped so empty merges leave no residue.
    for (const auto& [name, h] : named_) {
      if (h.count() > 0) emit(name, h);
    }
    os << "\n  }";
  }
  os << "\n}\n";
  return os.str();
}

bool BenchReporter::WriteFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    CELECT_LOG(Error) << "cannot open " << path << " for writing";
    return false;
  }
  out << ToJson();
  out.flush();
  if (!out) {
    CELECT_LOG(Error) << "short write to " << path;
    return false;
  }
  return true;
}

BenchEnv::BenchEnv(int argc, const char* const* argv, std::string suite)
    : reporter_(std::move(suite)) {
  Flags flags(argc, argv);
  threads_ = static_cast<std::uint32_t>(flags.GetInt(
      "threads", 1, "sweep worker threads (0 = one per hardware thread)"));
  json_path_ = flags.GetString(
      "json", "",
      "write BENCH_" + reporter_.suite() + ".json-style results here");
  quick_ = flags.GetBool("quick", false,
                         "shrink sweep grids for CI smoke runs");
  nmax_ = static_cast<std::uint32_t>(flags.GetInt(
      "nmax", 0,
      "largest N for size sweeps (0 = suite default); suites that sweep "
      "N grow their grid up to this ceiling"));
  trace_path_ = flags.GetString(
      "trace", "",
      "write a Perfetto trace of one representative run here");
  telemetry_ = flags.GetBool(
      "telemetry", false,
      "collect latency/queue-depth histograms into the JSON document");
  if (flags.help_requested()) {
    std::fputs(flags.HelpText().c_str(), stdout);
    // BenchEnv is constructed at the top of main, pre-threading.
    std::exit(0);  // NOLINT(concurrency-mt-unsafe)
  }
}

int BenchEnv::Finish() {
  if (json_path_.empty()) return 0;
  if (!reporter_.WriteFile(json_path_)) return 1;
  CELECT_LOG(Info) << "wrote " << json_path_;
  return 0;
}

}  // namespace celect::harness
