// Named protocol registry — one place that knows how to instantiate
// every election protocol in the library, used by the example binaries
// and benches ("--protocol=C", "--protocol=G --k=8", ...).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "celect/sim/process.h"

namespace celect::harness {

struct ProtocolSpec {
  std::string name;
  std::string description;
  bool needs_sense_of_direction = false;
  bool needs_power_of_two = false;  // B and C assume N = 2^r
  bool takes_k = false;
  // Builds the factory; k is ignored unless takes_k (0 = protocol
  // default).
  std::function<sim::ProcessFactory(std::uint32_t k)> make;
};

// All registered protocols, in presentation order.
const std::vector<ProtocolSpec>& AllProtocols();

// Case-insensitive lookup by name ("lmw86", "A", "A'", "B", "C", "D",
// "E", "E-raw", "F", "G", "FT").
std::optional<ProtocolSpec> FindProtocol(const std::string& name);

// Formatted list for --help output.
std::string ProtocolListing();

}  // namespace celect::harness
