#include "celect/harness/registry.h"

#include <algorithm>
#include <sstream>

#include "celect/proto/chordal/coordinator.h"
#include "celect/proto/nosod/fault_tolerant.h"
#include "celect/proto/nosod/protocol_d.h"
#include "celect/proto/nosod/protocol_e.h"
#include "celect/proto/nosod/protocol_f.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/proto/sod/lmw86.h"
#include "celect/proto/sod/protocol_a.h"
#include "celect/proto/sod/protocol_a_prime.h"
#include "celect/proto/sod/protocol_b.h"
#include "celect/proto/sod/protocol_c.h"

namespace celect::harness {

namespace {

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::vector<ProtocolSpec> BuildRegistry() {
  using namespace celect::proto;
  std::vector<ProtocolSpec> specs;

  specs.push_back({"lmw86",
                   "LMW86 majority capture (SoD): O(N) msgs, O(N) time",
                   true, false, false,
                   [](std::uint32_t) { return sod::MakeLmw86(); }});
  specs.push_back(
      {"A",
       "two-phase capture (SoD): O(N) msgs, Θ(N) worst time; k≈√N",
       true, false, true, [](std::uint32_t k) {
         sod::ProtocolAParams p;
         p.k = k;
         return sod::MakeProtocolA(p);
       }});
  specs.push_back(
      {"A'",
       "A with awaken wave (SoD): O(N) msgs, O(k + N/k) = O(√N) time",
       true, false, true,
       [](std::uint32_t k) { return sod::MakeProtocolAPrime(k); }});
  specs.push_back({"B",
                   "async doubling (SoD): O(N log N) msgs, O(log N) time",
                   true, true, false,
                   [](std::uint32_t) { return sod::MakeProtocolB(); }});
  specs.push_back({"C",
                   "stride + doubling (SoD): O(N) msgs, O(log N) time",
                   true, true, false,
                   [](std::uint32_t) { return sod::MakeProtocolC(); }});
  specs.push_back({"D", "flooding: O(N^2) msgs, O(1) time", false, false,
                   false,
                   [](std::uint32_t) { return nosod::MakeProtocolD(); }});
  specs.push_back(
      {"E", "AG85 walk with Ɛ throttle: O(N log N) msgs, O(N) time",
       false, false, false,
       [](std::uint32_t) { return nosod::MakeProtocolE(true); }});
  specs.push_back(
      {"E-raw", "AG85 walk without throttle (congestion pathology)",
       false, false, false,
       [](std::uint32_t) { return nosod::MakeProtocolE(false); }});
  specs.push_back(
      {"F", "Ɛ then broadcast: O(Nk) msgs, O(N/k) time (clustered wakeup)",
       false, false, true, [](std::uint32_t k) {
         return nosod::MakeProtocolF(k == 0 ? 4 : k);
       }});
  specs.push_back(
      {"G",
       "F with wakeup-ordering phases: O(Nk) msgs, O(N/k) time always",
       false, false, true, [](std::uint32_t k) {
         return [k](const sim::ProcessInit& init) {
           std::uint32_t kk = k == 0 ? nosod::MessageOptimalK(init.n) : k;
           return nosod::MakeProtocolG(kk)(init);
         };
       }});
  specs.push_back(
      {"G2",
       "[Si92] G with doubling walk: O(Nk) msgs, "
       "O(logN + min(r, N/logN)) time",
       false, false, true, [](std::uint32_t k) {
         return [k](const sim::ProcessInit& init) {
           std::uint32_t kk = k == 0 ? nosod::MessageOptimalK(init.n) : k;
           return nosod::MakeProtocolGDoubling(kk)(init);
         };
       }});
  specs.push_back(
      {"FT",
       "fault-tolerant G, failure budget f=1 here (bench_fault_tolerance "
       "sweeps f): O(Nf + N log N) msgs, O(N/log N) time",
       false, false, false, [](std::uint32_t) {
         return nosod::MakeFaultTolerant(/*f=*/1);
       }});
  specs.push_back(
      {"chordal",
       "[ALSZ89] coordinator on a power-of-two chordal ring: O(N) msgs, "
       "O(log N) time with log N chords/node",
       true, true, false, [](std::uint32_t) {
         return chordal::MakeChordalCoordinator();
       }});
  return specs;
}

}  // namespace

const std::vector<ProtocolSpec>& AllProtocols() {
  static const std::vector<ProtocolSpec> kRegistry = BuildRegistry();
  return kRegistry;
}

std::optional<ProtocolSpec> FindProtocol(const std::string& name) {
  std::string needle = Lower(name);
  for (const auto& spec : AllProtocols()) {
    if (Lower(spec.name) == needle) return spec;
  }
  // Friendly aliases.
  if (needle == "aprime" || needle == "a-prime") return FindProtocol("A'");
  if (needle == "eraw") return FindProtocol("E-raw");
  return std::nullopt;
}

std::string ProtocolListing() {
  std::ostringstream os;
  for (const auto& spec : AllProtocols()) {
    os << "  " << spec.name;
    if (spec.takes_k) os << " (accepts --k)";
    if (spec.needs_sense_of_direction) os << " [SoD]";
    if (spec.needs_power_of_two) os << " [N=2^r]";
    os << "\n      " << spec.description << "\n";
  }
  return os.str();
}

}  // namespace celect::harness
