#include "celect/harness/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "celect/util/check.h"

namespace celect::harness {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  CELECT_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  CELECT_CHECK(cells.size() == headers_.size())
      << "row has " << cells.size() << " cells, expected "
      << headers_.size();
  rows_.push_back(std::move(cells));
}

std::string Table::Num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::Int(std::uint64_t v) { return std::to_string(v); }

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c]) + 2) << cells[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 2 * headers_.size();
  for (auto w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::Print(std::ostream& os) const { os << ToString(); }

void PrintBanner(std::ostream& os, const std::string& experiment_id,
                 const std::string& claim) {
  os << "\n=== " << experiment_id << " ===\n" << claim << "\n\n";
}

}  // namespace celect::harness
