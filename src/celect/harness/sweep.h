// Thread-pool sweep engine for bench grids.
//
// Every simulator run is a self-contained deterministic Runtime: the
// seeded Rng, the event queue, and all protocol state live inside one
// Runtime object, and nothing in a run reads shared mutable state. Runs
// are therefore embarrassingly parallel — fanning a grid of RunOptions
// out over worker threads produces, run for run, the same RunResult
// bits as executing the grid serially. The engine writes each result
// into its grid-index slot, so any reduction that folds the results in
// index order (e.g. Summary::Merge over a suite's rows) is bit-identical
// regardless of --threads.
//
// Wall-clock fields (RunResult::wall_ns, events_per_sec) are the one
// exception: they measure the host, not the simulation, and differ
// between runs by nature.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "celect/harness/experiment.h"
#include "celect/sim/runtime.h"

namespace celect::harness {

struct SweepOptions {
  // Worker threads; 0 means one per hardware thread, 1 runs inline.
  std::uint32_t threads = 1;
};

// One cell of a sweep grid: a protocol (label + factory) on a network.
struct SweepPoint {
  std::string protocol;  // label carried into tables / JSON rows
  sim::ProcessFactory factory;
  RunOptions options;
};

// Invokes body(0..count-1), each index at most once, across the worker
// pool. The body must not touch shared mutable state (each index owns
// its output slot). Blocks until the pool drains. If a body throws,
// remaining indices are abandoned, the pool is joined, and the first
// exception (by capture order) is rethrown on the calling thread —
// same observable contract as the serial path, minus which indices
// ran.
void ParallelFor(std::size_t count, std::uint32_t threads,
                 const std::function<void(std::size_t)>& body);

// Runs every grid point via RunElection and returns the results in
// grid order. results[i] is bit-identical to a serial run of grid[i]
// for any thread count (modulo the wall-clock fields).
std::vector<sim::RunResult> RunSweep(const std::vector<SweepPoint>& grid,
                                     const SweepOptions& options = {});

// The thread count ParallelFor will actually use for `count` items.
std::uint32_t ResolveThreads(std::uint32_t requested, std::size_t count);

}  // namespace celect::harness
