// Deterministic chaos harness.
//
// Sweeps seeded fault plans — mid-run crashes at adversarial moments plus
// lossy links — across election runs and checks the invariants that must
// survive any schedule:
//
//   safety:   at most one leader declaration, ever;
//   liveness: exactly one declaration, by a node that is still alive at
//             quiescence (checked only when the plan stays within the
//             protocol's fault tolerance).
//
// Each case additionally runs under an analysis::InvariantRegistry
// (per-node monotone observables, message conservation) whose verdict is
// folded into the same violation string and per-cause counters.
//
// Everything is derived from a single 64-bit seed: the fault plan, the
// delay schedule, and the port permutations. The same seed and options
// always reproduce the same RunResult bit-for-bit (FingerprintResult
// asserts this in tests), so every violation the sweep finds comes with
// a one-integer repro.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "celect/harness/experiment.h"
#include "celect/obs/telemetry.h"
#include "celect/sim/fault.h"
#include "celect/util/stats.h"

namespace celect::harness {

struct ChaosOptions {
  std::uint32_t n = 16;
  // Crash victims per plan (distinct nodes; keep <= the protocol's f for
  // liveness checks). Triggers and parameters are drawn per seed.
  std::uint32_t max_crashes = 1;
  // Link degradation rates handed to the FaultPlan.
  double loss = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  MapperKind mapper = MapperKind::kRandom;
  DelayKind delay = DelayKind::kRandom;
  WakeupKind wakeup = WakeupKind::kAllAtZero;
  std::uint64_t max_events = 500'000'000;
  // Liveness checks. Disable require_leader for protocols pushed past
  // their fault tolerance (safety must still hold; a stalled, leaderless
  // quiescence is then acceptable).
  bool require_leader = true;
  bool require_live_leader = true;
  // Per-event invariant checking (analysis::InvariantRegistry) on every
  // case: monotone observables + message conservation. Leader-count
  // checks stay with the harness's own SAFETY/LIVENESS verdicts above.
  bool check_invariants = true;
  // Worker threads for SweepChaos / SweepRegistryChaos (0 = one per
  // hardware thread). Cases are independent seeded runs; the sweep
  // reduces them in seed order, so totals and the violation list are
  // identical for any thread count.
  std::uint32_t threads = 1;
  // Collect per-run obs::Telemetry (latency/queue-depth/capture-width
  // histograms); SweepChaos merges them in seed order.
  bool enable_telemetry = false;
  // Run on the reference binary-heap event queue (equivalence tests and
  // divergence bisection; see RunOptions::reference_queue).
  bool reference_queue = false;
};

// Derives the run's fault plan from the seed: distinct crash victims with
// early-firing triggers (absolute times in [0, 2) units, send/receive
// counts in [1, n], or a capture-phase message type), plus the link rates
// from `opt`. Deterministic: same (seed, opt) -> same plan.
sim::FaultPlan MakeChaosPlan(std::uint64_t seed, const ChaosOptions& opt);

struct ChaosCaseResult {
  std::uint64_t seed = 0;
  sim::FaultPlan plan;
  sim::RunResult result;
  // failed[address] at quiescence: initial failures + fired crashes.
  std::vector<bool> failed_after;
  // Empty when every invariant held; otherwise a human-readable verdict.
  std::string violation;
};

// Runs one seeded chaos case to quiescence and checks the invariants.
ChaosCaseResult RunChaosCase(const sim::ProcessFactory& factory,
                             std::uint64_t seed, const ChaosOptions& opt);

struct ChaosSweepResult {
  std::uint32_t cases = 0;
  std::uint64_t crashes_injected = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t messages_duplicated = 0;
  std::uint64_t messages_reordered = 0;
  std::uint64_t timers_fired = 0;
  // Per-case message/time distributions, reduced in seed order (bench
  // JSON rows come from these).
  Summary messages;
  Summary time;
  // Host-side cost of the whole sweep (non-deterministic).
  std::uint64_t wall_ns = 0;
  std::uint64_t events_processed = 0;
  // Per-case telemetry merged in seed order (Empty() unless
  // ChaosOptions::enable_telemetry).
  obs::Telemetry telemetry;
  // Only the violating cases are kept (each carries its repro seed).
  std::vector<ChaosCaseResult> violations;
};

// Sweeps seeds [seed0, seed0 + count) through RunChaosCase.
ChaosSweepResult SweepChaos(const sim::ProcessFactory& factory,
                            std::uint64_t seed0, std::uint32_t count,
                            const ChaosOptions& opt);

// Safety-only sweep over every registered protocol (crashes + loss; no
// duplication — the paper's protocols assume non-duplicating links, and
// only the FT variant is hardened against replays). Liveness is not
// required: a protocol beyond its tolerance may stall, but it must never
// declare two leaders.
struct RegistryChaosReport {
  struct Entry {
    std::string protocol;
    std::uint64_t seed;
    std::string violation;
  };
  std::uint32_t cases = 0;
  std::vector<Entry> violations;
};
RegistryChaosReport SweepRegistryChaos(std::uint64_t seed0,
                                       std::uint32_t seeds_per_protocol,
                                       std::uint32_t n,
                                       std::uint32_t threads = 1);

// Stable 64-bit digest of everything observable in a RunResult. Equal
// digests mean the runs were indistinguishable; tests use this to assert
// same-seed bit-reproducibility.
std::uint64_t FingerprintResult(const sim::RunResult& r);

// One-line render for logs: "seed=7 leader=12 ... OK" or the violation.
std::string Describe(const ChaosCaseResult& c);

}  // namespace celect::harness
