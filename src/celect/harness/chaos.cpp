#include "celect/harness/chaos.h"

#include <algorithm>
#include <sstream>

#include "celect/analysis/invariants.h"
#include "celect/harness/registry.h"
#include "celect/harness/sweep.h"
#include "celect/sim/network.h"
#include "celect/sim/runtime.h"
#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect::harness {

using sim::CrashSpec;
using sim::FaultPlan;
using sim::Time;

FaultPlan MakeChaosPlan(std::uint64_t seed, const ChaosOptions& opt) {
  CELECT_CHECK(opt.max_crashes < opt.n);
  FaultPlan plan;
  plan.seed = seed;
  plan.link.loss = opt.loss;
  plan.link.duplicate = opt.duplicate;
  plan.link.reorder = opt.reorder;

  // An independent stream: the plan must not perturb the delay/mapper
  // draws made by BuildNetwork from the same seed.
  Rng rng = Rng(seed).Split(0xFA17);
  auto victims = rng.Permutation(opt.n);
  for (std::uint32_t i = 0; i < opt.max_crashes; ++i) {
    CrashSpec spec;
    spec.node = victims[i];
    switch (rng.NextBelow(4)) {
      case 0:
        spec.trigger = CrashSpec::Trigger::kAtTime;
        // Early in the run, while captures are still in flight.
        spec.at = Time::FromTicks(static_cast<std::int64_t>(
            rng.NextBelow(2 * Time::kTicksPerUnit)));
        break;
      case 1:
        spec.trigger = CrashSpec::Trigger::kAfterSends;
        spec.count = 1 + rng.NextBelow(opt.n);
        break;
      case 2:
        spec.trigger = CrashSpec::Trigger::kAfterReceives;
        spec.count = 1 + rng.NextBelow(opt.n);
        break;
      default:
        // Die on the first capture-phase message instead of processing
        // it — the classic mid-handshake adversary. Types 1..8 cover the
        // capture/forward handshakes of every protocol in the registry;
        // a type the node never receives simply leaves the trigger cold.
        spec.trigger = CrashSpec::Trigger::kOnMessageType;
        spec.message_type = static_cast<std::uint16_t>(1 + rng.NextBelow(8));
        break;
    }
    plan.crashes.push_back(spec);
  }
  return plan;
}

ChaosCaseResult RunChaosCase(const sim::ProcessFactory& factory,
                             std::uint64_t seed, const ChaosOptions& opt) {
  ChaosCaseResult out;
  out.seed = seed;
  out.plan = MakeChaosPlan(seed, opt);

  RunOptions ro;
  ro.n = opt.n;
  ro.seed = seed;
  ro.mapper = opt.mapper;
  ro.delay = opt.delay;
  ro.wakeup = opt.wakeup;
  ro.max_events = opt.max_events;
  ro.fault_plan = out.plan;

  // Leader-count verdicts stay below (they carry the crash/loss context);
  // the registry adds per-event monotonicity and conservation checks.
  analysis::InvariantOptions io;
  io.unique_leader = false;
  analysis::InvariantRegistry registry(io);

  sim::RuntimeOptions rt;
  rt.max_events = opt.max_events;
  rt.enable_telemetry = opt.enable_telemetry;
  rt.use_reference_queue = opt.reference_queue;
  if (opt.check_invariants) rt.observer = &registry;
  sim::Runtime runtime(BuildNetwork(ro), factory, rt);
  out.result = runtime.Run();
  out.failed_after = runtime.failed();

  const auto& r = out.result;
  std::ostringstream v;
  if (r.leader_declarations > 1) {
    v << "SAFETY: " << r.leader_declarations << " leader declarations";
  } else if (opt.require_leader && r.leader_declarations == 0) {
    v << "LIVENESS: no leader elected (" << r.faults_injected
      << " crashes, " << r.messages_lost << " lost)";
  } else if (opt.require_live_leader && r.leader_node &&
             out.failed_after[*r.leader_node]) {
    v << "LIVENESS: declared leader (node " << *r.leader_node
      << ") crashed";
  }
  if (!registry.ok()) {
    if (v.tellp() > 0) v << "; ";
    v << "INVARIANT: " << registry.Summary();
  }
  out.violation = v.str();
  return out;
}

ChaosSweepResult SweepChaos(const sim::ProcessFactory& factory,
                            std::uint64_t seed0, std::uint32_t count,
                            const ChaosOptions& opt) {
  // Fan the independent seeded cases over the worker pool, then reduce
  // in seed order — same totals and violation order as a serial sweep.
  std::vector<ChaosCaseResult> cases(count);
  ParallelFor(count, opt.threads, [&](std::size_t i) {
    cases[i] = RunChaosCase(factory, seed0 + i, opt);
  });
  ChaosSweepResult sweep;
  for (ChaosCaseResult& c : cases) {
    ++sweep.cases;
    sweep.crashes_injected += c.result.faults_injected;
    sweep.messages_lost += c.result.messages_lost;
    sweep.messages_duplicated += c.result.messages_duplicated;
    sweep.messages_reordered += c.result.messages_reordered;
    sweep.timers_fired += c.result.timers_fired;
    sweep.messages.Add(static_cast<double>(c.result.total_messages));
    sweep.time.Add(c.result.leader_time.ToDouble());
    sweep.wall_ns += c.result.wall_ns;
    sweep.events_processed += c.result.events_processed;
    sweep.telemetry.Merge(c.result.telemetry);
    if (!c.violation.empty()) sweep.violations.push_back(std::move(c));
  }
  return sweep;
}

RegistryChaosReport SweepRegistryChaos(std::uint64_t seed0,
                                       std::uint32_t seeds_per_protocol,
                                       std::uint32_t n,
                                       std::uint32_t threads) {
  RegistryChaosReport report;
  for (const auto& spec : AllProtocols()) {
    if (spec.needs_power_of_two && (n & (n - 1)) != 0) continue;
    ChaosOptions opt;
    opt.n = n;
    opt.max_crashes = 1;
    opt.loss = 0.02;
    opt.threads = threads;
    // No duplication here: only the FT protocol is replay-hardened.
    opt.require_leader = false;
    opt.require_live_leader = false;
    opt.mapper = spec.needs_sense_of_direction ? MapperKind::kSenseOfDirection
                                               : MapperKind::kRandom;
    const sim::ProcessFactory factory = spec.make(0);
    ChaosSweepResult sweep =
        SweepChaos(factory, seed0, seeds_per_protocol, opt);
    report.cases += sweep.cases;
    for (auto& c : sweep.violations) {
      report.violations.push_back({spec.name, c.seed, c.violation});
    }
  }
  return report;
}

namespace {
std::uint64_t HashCombine(std::uint64_t h, std::uint64_t v) {
  // splitmix-style mix keeps the digest stable across platforms.
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 27);
}
}  // namespace

std::uint64_t FingerprintResult(const sim::RunResult& r) {
  std::uint64_t h = 0x5eed;
  h = HashCombine(h, r.leader_id ? 1 + *r.leader_id : 0);
  h = HashCombine(h, r.leader_node ? 1 + *r.leader_node : 0);
  h = HashCombine(h, r.leader_declarations);
  h = HashCombine(h, static_cast<std::uint64_t>(r.leader_time.ticks()));
  h = HashCombine(h, static_cast<std::uint64_t>(r.quiesce_time.ticks()));
  h = HashCombine(h, r.total_messages);
  h = HashCombine(h, r.total_bytes);
  h = HashCombine(h, r.events_processed);
  h = HashCombine(h, r.max_link_load);
  h = HashCombine(h, r.max_link_inflight);
  h = HashCombine(h, r.faults_injected);
  h = HashCombine(h, r.messages_lost);
  h = HashCombine(h, r.messages_duplicated);
  h = HashCombine(h, r.messages_reordered);
  h = HashCombine(h, r.timers_set);
  h = HashCombine(h, r.timers_fired);
  for (const auto& [type, count] : r.messages_by_type) {
    h = HashCombine(h, type);
    h = HashCombine(h, count);
  }
  for (const auto& [name, value] : r.counters) {
    for (char c : name) h = HashCombine(h, static_cast<unsigned char>(c));
    h = HashCombine(h, static_cast<std::uint64_t>(value));
  }
  for (const auto& [key, agg] : r.phases) {
    for (char c : key) h = HashCombine(h, static_cast<unsigned char>(c));
    h = HashCombine(h, agg.spans);
    h = HashCombine(h, static_cast<std::uint64_t>(agg.ticks));
    h = HashCombine(h, agg.messages);
  }
  return h;
}

std::string Describe(const ChaosCaseResult& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " " << Summarize(c.result);
  os << (c.violation.empty() ? " OK" : " " + c.violation);
  return os.str();
}

}  // namespace celect::harness
