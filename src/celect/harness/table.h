// Plain-text table printer for the bench binaries — every experiment
// prints the series the paper's claims predict, one row per sweep point.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace celect::harness {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Cell helpers; each AddRow must supply one value per column.
  void AddRow(std::vector<std::string> cells);

  // Formatting helpers.
  static std::string Num(double v, int precision = 2);
  static std::string Int(std::uint64_t v);

  std::string ToString() const;
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Section banner used by bench binaries.
void PrintBanner(std::ostream& os, const std::string& experiment_id,
                 const std::string& claim);

}  // namespace celect::harness
