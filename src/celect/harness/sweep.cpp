#include "celect/harness/sweep.h"

#include <atomic>
#include <thread>

namespace celect::harness {

std::uint32_t ResolveThreads(std::uint32_t requested, std::size_t count) {
  std::uint32_t threads = requested;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (count < threads) threads = static_cast<std::uint32_t>(count);
  return threads;
}

void ParallelFor(std::size_t count, std::uint32_t threads,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::uint32_t workers = ResolveThreads(threads, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Work stealing via a shared index: grids are heterogeneous (large-N
  // cells dwarf small-N ones), so static partitioning would leave
  // workers idle behind the slowest stripe.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, count, &body] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < count;
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        body(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

std::vector<sim::RunResult> RunSweep(const std::vector<SweepPoint>& grid,
                                     const SweepOptions& options) {
  std::vector<sim::RunResult> results(grid.size());
  ParallelFor(grid.size(), options.threads, [&grid, &results](std::size_t i) {
    results[i] = RunElection(grid[i].factory, grid[i].options);
  });
  return results;
}

}  // namespace celect::harness
