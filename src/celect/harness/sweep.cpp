#include "celect/harness/sweep.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "celect/util/thread_annotations.h"

namespace celect::harness {

namespace {

// First exception any worker captured; later captures are dropped (one
// failure already invalidates the sweep, and the first is the closest
// to the root cause under the work-stealing order).
class ErrorSlot {
 public:
  void Capture() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }

  // Call after every worker joined.
  void Rethrow() {
    std::lock_guard<std::mutex> lock(mu_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  std::mutex mu_;
  std::exception_ptr error_ CELECT_GUARDED_BY(mu_);
};

}  // namespace

std::uint32_t ResolveThreads(std::uint32_t requested, std::size_t count) {
  std::uint32_t threads = requested;
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  if (count < threads) threads = static_cast<std::uint32_t>(count);
  return threads;
}

void ParallelFor(std::size_t count, std::uint32_t threads,
                 const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  std::uint32_t workers = ResolveThreads(threads, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  // Work stealing via a shared index: grids are heterogeneous (large-N
  // cells dwarf small-N ones), so static partitioning would leave
  // workers idle behind the slowest stripe.
  std::atomic<std::size_t> next{0};
  // A throwing body would std::terminate on the worker thread; capture
  // instead, drain the pool, and rethrow on the caller.
  std::atomic<bool> failed{false};
  ErrorSlot error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&next, count, &body, &failed, &error] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < count && !failed.load(std::memory_order_relaxed);
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        try {
          body(i);
        } catch (...) {
          error.Capture();
          failed.store(true, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  error.Rethrow();
}

std::vector<sim::RunResult> RunSweep(const std::vector<SweepPoint>& grid,
                                     const SweepOptions& options) {
  std::vector<sim::RunResult> results(grid.size());
  ParallelFor(grid.size(), options.threads, [&grid, &results](std::size_t i) {
    results[i] = RunElection(grid[i].factory, grid[i].options);
  });
  return results;
}

}  // namespace celect::harness
