#include "celect/harness/churn.h"

#include <algorithm>
#include <sstream>

#include "celect/analysis/invariants.h"
#include "celect/analysis/lease_monitor.h"
#include "celect/harness/sweep.h"
#include "celect/sim/network.h"
#include "celect/sim/runtime.h"
#include "celect/util/check.h"
#include "celect/util/rng.h"

namespace celect::harness {

using sim::CrashSpec;
using sim::FaultPlan;
using sim::Time;

sim::Time DefaultReelectionWindow(const proto::nosod::LeaseParams& lease) {
  // Worst benign gap: a holder crashes right after renewing, so its
  // lease blocks re-election for a full lease_duration. A term started
  // the moment that lease runs out can then stall (its captures landed
  // on just-crashed nodes, or voters' promises had not yet expired when
  // the grant round arrived) and an in-flight term is preempted only
  // once it outlives the watchdog patience — up to
  // kTermPatiencePeriods * the slowest stagger's period, i.e.
  // 4 * (7/4) * election_timeout = 7 timeouts per stalled term. Budget
  // two stalled terms back to back, a completed election with its
  // recovery rounds (~4 timeouts), and a final lease_duration for the
  // acquisition quorum round trips under loss. Generous on purpose: a
  // real liveness bug shows up as a never-closing gap, not a slow one.
  return lease.lease_duration * 2 + lease.election_timeout * 20;
}

proto::nosod::LeaseParams EffectiveLeaseParams(const ChurnOptions& opt) {
  proto::nosod::LeaseParams lease = opt.lease;
  if (lease.f == 0 && opt.churn_nodes > 0 && opt.n >= 4) {
    // At most churn_nodes victims are dead at once; cap at the FT
    // engine's tolerance ceiling 2f < n-1.
    lease.f = std::min(opt.churn_nodes, (opt.n - 2) / 2);
  }
  return lease;
}

namespace {

// Phase length ~ uniform [mean/2, 3*mean/2), at least one tick.
std::int64_t DrawPhase(Rng& rng, Time mean) {
  const std::int64_t m = std::max<std::int64_t>(mean.ticks(), 1);
  return std::max<std::int64_t>(
      1, m / 2 + static_cast<std::int64_t>(
                     rng.NextBelow(static_cast<std::uint64_t>(m))));
}

}  // namespace

FaultPlan MakeChurnPlan(std::uint64_t seed, const ChurnOptions& opt) {
  CELECT_CHECK(opt.churn_nodes < opt.n);
  FaultPlan plan;
  plan.seed = seed;
  plan.link.loss = opt.loss;
  plan.link.duplicate = opt.duplicate;
  plan.link.reorder = opt.reorder;

  // An independent stream (distinct from the chaos planner's and from
  // BuildNetwork's delay/mapper draws on the same seed).
  Rng rng = Rng(seed).Split(0xC512);
  auto victims = rng.Permutation(opt.n);
  const std::int64_t horizon = opt.lease.horizon.ticks();
  for (std::uint32_t i = 0; i < opt.churn_nodes; ++i) {
    const sim::NodeId node = victims[i];
    // Stagger the first crash per victim so they drift out of phase.
    std::int64_t t = opt.first_crash_after.ticks() +
                     DrawPhase(rng, opt.mean_uptime);
    bool down = false;
    while (t < horizon) {
      if (!down) {
        CrashSpec spec;
        spec.node = node;
        spec.trigger = CrashSpec::Trigger::kAtTime;
        spec.at = Time::FromTicks(t);
        plan.crashes.push_back(spec);
        down = true;
        t += DrawPhase(rng, opt.mean_downtime);
      } else {
        plan.rejoins.push_back({node, Time::FromTicks(t)});
        down = false;
        t += DrawPhase(rng, opt.mean_uptime);
      }
    }
  }
  return plan;
}

ChurnCaseResult RunChurnCase(std::uint64_t seed, const ChurnOptions& opt) {
  ChurnCaseResult out;
  out.seed = seed;
  out.plan = MakeChurnPlan(seed, opt);

  RunOptions ro;
  ro.n = opt.n;
  ro.seed = seed;
  ro.mapper = opt.mapper;
  ro.delay = opt.delay;
  ro.wakeup = WakeupKind::kAllAtZero;
  ro.max_events = opt.max_events;
  ro.fault_plan = out.plan;

  // The registry rides chained behind the monitor on the single
  // observer slot. unique_leader is off: the service re-declares a
  // leader every term by design; instant safety is the lease-overlap
  // check instead.
  analysis::InvariantOptions io;
  io.unique_leader = false;
  analysis::InvariantRegistry registry(io);

  const proto::nosod::LeaseParams lease = EffectiveLeaseParams(opt);
  analysis::LeaseMonitorOptions mo;
  mo.horizon = lease.horizon;
  mo.reelection_window = opt.reelection_window.ticks() > 0
                             ? opt.reelection_window
                             : DefaultReelectionWindow(lease);
  mo.chained = &registry;
  analysis::LeaseMonitor monitor(mo);

  sim::RuntimeOptions rt;
  rt.max_events = opt.max_events;
  rt.enable_telemetry = opt.enable_telemetry;
  if (opt.check_invariants) rt.observer = &monitor;
  sim::Runtime runtime(BuildNetwork(ro),
                       proto::nosod::MakeLeaseEngine(lease), rt);
  out.result = runtime.Run();
  out.failed_after = runtime.failed();
  out.unavailable_ticks = monitor.unavailable_ticks();
  out.elections_completed = monitor.election_latency().count();
  out.election_latency = monitor.election_latency();
  // Ride the telemetry bundle so sweeps and the bench JSON pick the
  // histogram up through the ordinary merge path.
  out.result.telemetry.election_latency.Merge(monitor.election_latency());

  std::ostringstream v;
  if (!monitor.ok()) v << "LIVENESS: " << monitor.Summary();
  if (!registry.ok()) {
    if (v.tellp() > 0) v << "; ";
    v << "INVARIANT: " << registry.Summary();
  }
  out.violation = v.str();
  return out;
}

ChurnSweepResult SweepChurn(std::uint64_t seed0, std::uint32_t count,
                            const ChurnOptions& opt) {
  std::vector<ChurnCaseResult> cases(count);
  ParallelFor(count, opt.threads, [&](std::size_t i) {
    cases[i] = RunChurnCase(seed0 + i, opt);
  });
  ChurnSweepResult sweep;
  const auto counter = [](const sim::RunResult& r,
                          const char* key) -> std::uint64_t {
    const auto it = r.counters.find(key);
    return it == r.counters.end()
               ? 0
               : static_cast<std::uint64_t>(it->second);
  };
  for (ChurnCaseResult& c : cases) {
    ++sweep.cases;
    sweep.crashes_injected += c.result.faults_injected;
    sweep.rejoins += counter(c.result, "sim.rejoins");
    sweep.messages_lost += c.result.messages_lost;
    sweep.elections_completed += c.elections_completed;
    sweep.unavailable_ticks += c.unavailable_ticks;
    sweep.leases_granted += counter(c.result, "lease.granted");
    sweep.leases_renewed += counter(c.result, "lease.renewed");
    sweep.leases_expired += counter(c.result, "lease.expired");
    sweep.leases_revoked += counter(c.result, "lease.revoked");
    sweep.messages.Add(static_cast<double>(c.result.total_messages));
    sweep.time.Add(c.result.quiesce_time.ToDouble());
    sweep.wall_ns += c.result.wall_ns;
    sweep.events_processed += c.result.events_processed;
    sweep.telemetry.Merge(c.result.telemetry);
    if (!c.violation.empty()) sweep.violations.push_back(std::move(c));
  }
  return sweep;
}

std::string Describe(const ChurnCaseResult& c) {
  std::ostringstream os;
  os << "seed=" << c.seed << " " << Summarize(c.result)
     << " elections=" << c.elections_completed
     << " unavailable_ticks=" << c.unavailable_ticks;
  os << (c.violation.empty() ? " OK" : " " + c.violation);
  return os.str();
}

}  // namespace celect::harness
