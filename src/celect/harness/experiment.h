// One-call experiment runner: builds a NetworkConfig from declarative
// options and runs a protocol to quiescence. Shared by tests, benches
// and examples so every measurement is taken the same way.
#pragma once

#include <cstdint>
#include <string>

#include "celect/sim/process.h"
#include "celect/sim/runtime.h"

namespace celect::harness {

enum class MapperKind {
  kSenseOfDirection,
  kRandom,       // fixed pseudo-random port permutation per node
  kUpAdversary,  // §5 adaptive adversary (needs adversary_k)
};

enum class DelayKind {
  kUnit,    // worst-case pipe: transit 1, spacing 1
  kRandom,  // uniform transit (0,1], spacing [0,1]
  kEager,   // one tick, no spacing
};

enum class WakeupKind {
  kAllAtZero,
  kSingle,        // one base node (address 0)
  kRandomSubset,  // wakeup_count nodes over wakeup_window units
  kStaggeredChain // node p wakes at p * stagger_spacing (the §3 pathology)
};

enum class IdentityKind { kAscending, kRandomPermutation, kSparse };

struct RunOptions {
  std::uint32_t n = 16;
  std::uint64_t seed = 1;
  MapperKind mapper = MapperKind::kRandom;
  DelayKind delay = DelayKind::kUnit;
  WakeupKind wakeup = WakeupKind::kAllAtZero;
  IdentityKind identity = IdentityKind::kAscending;
  std::uint32_t wakeup_count = 0;    // kRandomSubset; 0 means N/2
  double wakeup_window = 0.0;        // units
  double stagger_spacing = 0.9;      // units, < 1 reproduces the pathology
  std::uint32_t failures = 0;        // random initially-crashed nodes
  std::uint32_t adversary_k = 4;     // kUpAdversary radius
  bool serialize_packets = false;
  bool enable_trace = false;
  // Trace record cap (RuntimeOptions::trace_cap); truncation surfaces as
  // counters["sim.trace_truncated"].
  std::size_t trace_cap = 10'000'000;
  // Streaming histograms + samplers (RunResult::telemetry).
  bool enable_telemetry = false;
  std::uint64_t max_events = 500'000'000;
  // Run on the reference binary-heap event queue instead of the ladder
  // queue. The two are fingerprint-equivalent (tests/test_queue_
  // equivalence.cpp); the switch exists for those tests and for
  // bisecting any future divergence.
  bool reference_queue = false;
  // Mid-run fault schedule (crashes + lossy links); empty = fault-free.
  sim::FaultPlan fault_plan;
};

// Builds the network described by `options` (the protocol factory comes
// from the caller) and runs it to quiescence.
sim::RunResult RunElection(const sim::ProcessFactory& factory,
                           const RunOptions& options);

// Like RunElection, but forces tracing on and hands back the trace
// records alongside the result (RunResult does not carry them — the
// buffer lives in the Runtime). Feed the records to
// obs::ExportChromeTrace / obs::SerializeRecords.
struct TracedRun {
  sim::RunResult result;
  std::vector<sim::TraceRecord> records;
};
TracedRun RunElectionTraced(const sim::ProcessFactory& factory,
                            const RunOptions& options);

// Builds just the NetworkConfig (for callers that need the Runtime).
sim::NetworkConfig BuildNetwork(const RunOptions& options);

// kRandomSubset accounting: the requested base-node count (wakeup_count,
// defaulting to N/2, floored at 1) and the count that actually wakes
// after clamping to the live-node population. BuildNetwork CHECK-fails
// when wakeup_count > n and logs a note whenever the clamp bites.
std::uint32_t RequestedWakeupCount(const RunOptions& options);
std::uint32_t EffectiveWakeupCount(const RunOptions& options);

// Human-readable one-liner for logs and bench rows.
std::string Describe(const RunOptions& options);
std::string Summarize(const sim::RunResult& result);

}  // namespace celect::harness
