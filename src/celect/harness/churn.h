// Churn workload: the continuous election service under sustained
// crash/rejoin cycling.
//
// MakeChurnPlan derives a seeded FaultPlan in which a subset of nodes
// cycles crash → rejoin → crash ... for the whole service window
// (strictly alternating per node, all times distinct — exactly the
// shape ValidateFaultPlan admits). RunChurnCase runs the lease engine
// under that plan with the full analysis stack attached:
//
//   * analysis::LeaseMonitor — unavailability ticks, election-latency
//     histogram, bounded-window re-election check;
//   * analysis::InvariantRegistry (chained) — at most one unexpired
//     lease at every instant, monotone terms across rejoins, message
//     conservation.
//
// Everything derives from one 64-bit seed and is bit-reproducible:
// SweepChurn fans cases over a worker pool and reduces in seed order,
// so totals, merged histograms, and the violation list are identical
// for any thread count (tests assert fingerprint equality).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "celect/harness/chaos.h"
#include "celect/harness/experiment.h"
#include "celect/obs/telemetry.h"
#include "celect/proto/nosod/lease_engine.h"
#include "celect/sim/fault.h"
#include "celect/util/stats.h"

namespace celect::harness {

struct ChurnOptions {
  std::uint32_t n = 16;
  // Lease-layer parameters (horizon bounds the service window; the
  // churn schedule stops cycling there too).
  proto::nosod::LeaseParams lease;
  // Nodes cycling crash/rejoin (distinct victims, drawn per seed; keep
  // below n/2 so an acquisition quorum of live nodes always exists).
  std::uint32_t churn_nodes = 2;
  // Mean up/down phase lengths; each phase is drawn uniformly from
  // [mean/2, 3*mean/2) per seed, so victims drift out of phase.
  sim::Time mean_uptime = sim::Time::FromUnits(6);
  sim::Time mean_downtime = sim::Time::FromUnits(3);
  // Grace before the first crash, so the first election settles.
  sim::Time first_crash_after = sim::Time::FromUnits(2);
  // Link degradation rates handed to the FaultPlan.
  double loss = 0.0;
  double duplicate = 0.0;
  double reorder = 0.0;
  MapperKind mapper = MapperKind::kRandom;
  DelayKind delay = DelayKind::kRandom;
  std::uint64_t max_events = 500'000'000;
  // Per-event checking (LeaseMonitor + InvariantRegistry).
  bool check_invariants = true;
  // Bounded re-election window for the overdue check. Zero derives a
  // generous bound from the lease parameters: a crashed holder's lease
  // must run out (lease_duration) before followers may re-elect, then
  // two staggered watchdog periods plus the election itself.
  sim::Time reelection_window = sim::Time::Zero();
  // Worker threads for SweepChurn (0 = one per hardware thread).
  std::uint32_t threads = 1;
  // Collect per-run obs::Telemetry; the election-latency histogram from
  // the LeaseMonitor is always merged into the case's telemetry.
  bool enable_telemetry = false;
};

// The auto-derived overdue bound used when reelection_window is zero.
sim::Time DefaultReelectionWindow(const proto::nosod::LeaseParams& lease);

// The lease parameters RunChurnCase actually uses: when lease.f is zero
// (plain protocol G inside — which stalls if a capture lands on a dead
// node), derives a failure budget covering the concurrently-dead set.
proto::nosod::LeaseParams EffectiveLeaseParams(const ChurnOptions& opt);

// Seeded churn schedule: distinct victims, per-victim alternating
// crash/rejoin timelines over [first_crash_after, horizon), plus the
// link rates from `opt`. Deterministic: same (seed, opt) -> same plan.
sim::FaultPlan MakeChurnPlan(std::uint64_t seed, const ChurnOptions& opt);

struct ChurnCaseResult {
  std::uint64_t seed = 0;
  sim::FaultPlan plan;
  sim::RunResult result;
  std::vector<bool> failed_after;
  // Ticks of [0, horizon) with no live, unexpired lease holder.
  std::int64_t unavailable_ticks = 0;
  // Completed re-elections (closed coverage gaps, including the first
  // election from the leaderless start).
  std::uint64_t elections_completed = 0;
  // Gap lengths in ticks (one sample per completed re-election).
  obs::Histogram election_latency;
  // Empty when every invariant held; otherwise a human-readable verdict.
  std::string violation;
};

// Runs one seeded churn case to quiescence under the full checker stack.
ChurnCaseResult RunChurnCase(std::uint64_t seed, const ChurnOptions& opt);

struct ChurnSweepResult {
  std::uint32_t cases = 0;
  std::uint64_t crashes_injected = 0;
  std::uint64_t rejoins = 0;
  std::uint64_t messages_lost = 0;
  std::uint64_t elections_completed = 0;
  std::int64_t unavailable_ticks = 0;
  // Lease lifecycle totals (sim::Metrics per-cause counters, summed).
  std::uint64_t leases_granted = 0;
  std::uint64_t leases_renewed = 0;
  std::uint64_t leases_expired = 0;
  std::uint64_t leases_revoked = 0;
  // Per-case message totals / quiesce times, reduced in seed order.
  Summary messages;
  Summary time;
  std::uint64_t wall_ns = 0;
  std::uint64_t events_processed = 0;
  // Merged per-case telemetry (election_latency always populated).
  obs::Telemetry telemetry;
  std::vector<ChurnCaseResult> violations;
};

// Sweeps seeds [seed0, seed0 + count) through RunChurnCase.
ChurnSweepResult SweepChurn(std::uint64_t seed0, std::uint32_t count,
                            const ChurnOptions& opt);

// One-line render for logs: availability + lease counters + verdict.
std::string Describe(const ChurnCaseResult& c);

}  // namespace celect::harness
