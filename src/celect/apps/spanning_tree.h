// Spanning-tree construction on top of leader election (paper §1/§6:
// equivalent to election in message and time complexity).
//
// After the wrapped election elects a root, the root invites every node
// over its N-1 edges; each node adopts the arrival edge of the first
// invite as its parent link and joins. In a complete network the
// resulting star is a spanning tree, built with O(N) extra messages and
// O(1) extra time, so the whole construction inherits the election's
// complexity.
#pragma once

#include <cstdint>
#include <optional>

#include "celect/apps/app_base.h"
#include "celect/sim/process.h"

namespace celect::apps {

enum SpanningTreeMsg : std::uint16_t {
  kTreeInvite = kAppTypeBase + 0,  // fields: {root_id}
  kTreeJoin = kAppTypeBase + 1,    // fields: {}
};

class SpanningTreeProcess : public ElectionAppProcess {
 public:
  explicit SpanningTreeProcess(std::unique_ptr<sim::Process> inner)
      : ElectionAppProcess(std::move(inner)) {}

  bool is_root() const { return leader_here(); }
  // Parent edge (port at this node); nullopt for the root and for nodes
  // not yet joined.
  std::optional<sim::Port> parent_port() const { return parent_port_; }
  std::optional<sim::Id> root_id() const { return root_id_; }
  // Root only: number of joined children (tree complete at N-1).
  std::uint32_t children() const { return children_; }

 protected:
  void OnElected(sim::Context& ctx) override;
  void OnAppMessage(sim::Context& ctx, sim::Port from_port,
                    const wire::Packet& p) override;

 private:
  std::optional<sim::Port> parent_port_;
  std::optional<sim::Id> root_id_;
  std::uint32_t children_ = 0;
};

// Wraps an election factory into a spanning-tree factory.
sim::ProcessFactory MakeSpanningTree(sim::ProcessFactory election);

}  // namespace celect::apps
