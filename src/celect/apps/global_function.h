// Global-function computation on top of election (paper §1: "computing a
// global function ... equivalent to leader election in terms of message
// and time complexities").
//
// The elected leader queries all nodes, folds their replies with a
// commutative-associative reduction (max, sum, ...), then disseminates
// the result. O(N) extra messages and O(1) extra time beyond election.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "celect/apps/app_base.h"
#include "celect/sim/process.h"

namespace celect::apps {

enum GlobalFnMsg : std::uint16_t {
  kFnQuery = kAppTypeBase + 20,   // fields: {}
  kFnReport = kAppTypeBase + 21,  // fields: {value}
  kFnResult = kAppTypeBase + 22,  // fields: {value}
};

using Reducer = std::function<std::int64_t(std::int64_t, std::int64_t)>;

class GlobalFunctionProcess : public ElectionAppProcess {
 public:
  GlobalFunctionProcess(std::unique_ptr<sim::Process> inner,
                        std::int64_t input, Reducer reduce)
      : ElectionAppProcess(std::move(inner)),
        input_(input),
        reduce_(std::move(reduce)) {}

  // The global result, once disseminated to this node.
  std::optional<std::int64_t> result() const { return result_; }

 protected:
  void OnElected(sim::Context& ctx) override;
  void OnAppMessage(sim::Context& ctx, sim::Port from_port,
                    const wire::Packet& p) override;

 private:
  std::int64_t input_;
  Reducer reduce_;
  std::int64_t accumulator_ = 0;
  std::uint32_t reports_ = 0;
  std::optional<std::int64_t> result_;
};

sim::ProcessFactory MakeGlobalFunction(
    sim::ProcessFactory election,
    std::function<std::int64_t(sim::NodeId)> input_of, Reducer reduce);

// Common reducers.
Reducer MaxReducer();
Reducer SumReducer();

}  // namespace celect::apps
