#include "celect/apps/spanning_tree.h"

#include <memory>

#include "celect/util/check.h"

namespace celect::apps {

using sim::Context;
using sim::Port;
using wire::Packet;

void SpanningTreeProcess::OnElected(Context& ctx) {
  root_id_ = ctx.id();
  ctx.SendAll(Packet{kTreeInvite, {ctx.id()}});
}

void SpanningTreeProcess::OnAppMessage(Context& ctx, Port from_port,
                                       const Packet& p) {
  switch (p.type) {
    case kTreeInvite:
      if (!parent_port_ && !is_root()) {
        parent_port_ = from_port;
        root_id_ = p.field(0);
        ctx.Send(from_port, Packet{kTreeJoin, {}});
      }
      break;
    case kTreeJoin:
      ++children_;
      break;
    default:
      CELECT_CHECK(false) << "spanning tree: unknown type " << p.type;
  }
}

sim::ProcessFactory MakeSpanningTree(sim::ProcessFactory election) {
  return [election =
              std::move(election)](const sim::ProcessInit& init)
             -> std::unique_ptr<sim::Process> {
    return std::make_unique<SpanningTreeProcess>(election(init));
  };
}

}  // namespace celect::apps
