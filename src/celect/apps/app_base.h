// Composition of an application protocol over an election protocol.
//
// The paper (§1, §6) notes spanning-tree construction, global-function
// computation, etc. are message/time-equivalent to leader election. Each
// app here wraps an arbitrary election Process: protocol messages (type
// < kAppTypeBase) are passed through to the inner process; the wrapper
// observes the inner DeclareLeader through an intercepting Context and
// then runs its own O(N)-message, O(1)-time follow-up round using types
// >= kAppTypeBase.
#pragma once

#include <memory>
#include <utility>

#include "celect/sim/process.h"
#include "celect/util/check.h"

namespace celect::apps {

// App message types live above this to stay disjoint from any election
// protocol's types.
inline constexpr std::uint16_t kAppTypeBase = 1000;

class ElectionAppProcess : public sim::Process {
 public:
  ElectionAppProcess(std::unique_ptr<sim::Process> inner)
      : inner_(std::move(inner)) {
    CELECT_CHECK(inner_ != nullptr);
  }

  void OnWakeup(sim::Context& ctx) final {
    InterceptingContext ictx(*this, ctx);
    inner_->OnWakeup(ictx);
  }

  void OnMessage(sim::Context& ctx, sim::Port from_port,
                 const wire::Packet& p) final {
    if (p.type >= kAppTypeBase) {
      OnAppMessage(ctx, from_port, p);
      return;
    }
    InterceptingContext ictx(*this, ctx);
    inner_->OnMessage(ictx, from_port, p);
  }

  // Apps themselves arm no timers; any timer belongs to the inner
  // election protocol.
  void OnTimer(sim::Context& ctx, sim::TimerId timer) final {
    InterceptingContext ictx(*this, ctx);
    inner_->OnTimer(ictx, timer);
  }

  bool leader_here() const { return leader_here_; }

  // The app layer adds no gauges of its own; invariant checking sees the
  // wrapped election protocol's observables.
  sim::ProtocolObservables Observe() const final { return inner_->Observe(); }

  std::string DescribeState() const final { return inner_->DescribeState(); }

 protected:
  // Called exactly when the inner protocol declares this node leader;
  // the app starts its follow-up round here. The leader declaration is
  // already forwarded to the runtime.
  virtual void OnElected(sim::Context& ctx) = 0;

  // App-typed traffic (type >= kAppTypeBase).
  virtual void OnAppMessage(sim::Context& ctx, sim::Port from_port,
                            const wire::Packet& p) = 0;

 private:
  // Delegates everything to the real context but lets the wrapper see
  // DeclareLeader.
  class InterceptingContext : public sim::Context {
   public:
    InterceptingContext(ElectionAppProcess& app, sim::Context& real)
        : app_(app), real_(real) {}

    sim::NodeId address() const override { return real_.address(); }
    sim::Id id() const override { return real_.id(); }
    std::uint32_t n() const override { return real_.n(); }
    sim::Time now() const override { return real_.now(); }
    bool has_sense_of_direction() const override {
      return real_.has_sense_of_direction();
    }
    void Send(sim::Port port, wire::Packet p) override {
      real_.Send(port, std::move(p));
    }
    std::optional<sim::Port> SendFresh(wire::Packet p) override {
      return real_.SendFresh(std::move(p));
    }
    void SendAll(wire::Packet p) override { real_.SendAll(std::move(p)); }
    sim::TimerId SetTimer(sim::Time delay) override {
      return real_.SetTimer(delay);
    }
    void CancelTimer(sim::TimerId timer) override {
      real_.CancelTimer(timer);
    }
    void DeclareLeader() override {
      real_.DeclareLeader();
      if (!app_.leader_here_) {
        app_.leader_here_ = true;
        app_.OnElected(real_);
      }
    }
    void AddCounter(std::string_view name, std::int64_t delta) override {
      real_.AddCounter(name, delta);
    }
    void MaxCounter(std::string_view name, std::int64_t value) override {
      real_.MaxCounter(name, value);
    }
    sim::CounterRef ResolveCounter(std::string_view name) override {
      return real_.ResolveCounter(name);
    }
    void AddCounter(const sim::CounterRef& c, std::int64_t delta) override {
      real_.AddCounter(c, delta);
    }
    void MaxCounter(const sim::CounterRef& c, std::int64_t value) override {
      real_.MaxCounter(c, value);
    }

   private:
    ElectionAppProcess& app_;
    sim::Context& real_;
  };

  std::unique_ptr<sim::Process> inner_;
  bool leader_here_ = false;
};

}  // namespace celect::apps
