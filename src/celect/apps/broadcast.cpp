#include "celect/apps/broadcast.h"

#include <memory>

#include "celect/util/check.h"

namespace celect::apps {

using sim::Context;
using sim::Port;
using wire::Packet;

void BroadcastProcess::OnElected(Context& ctx) {
  delivered_ = my_value_;
  ctx.SendAll(Packet{kBcastValue, {my_value_}});
}

void BroadcastProcess::OnAppMessage(Context& ctx, Port from_port,
                                    const Packet& p) {
  switch (p.type) {
    case kBcastValue:
      if (!delivered_) {
        delivered_ = p.field(0);
        ctx.Send(from_port, Packet{kBcastAck, {}});
      }
      break;
    case kBcastAck:
      if (++acks_ == ctx.n() - 1) feedback_complete_ = true;
      break;
    default:
      CELECT_CHECK(false) << "broadcast: unknown type " << p.type;
  }
}

sim::ProcessFactory MakeBroadcast(
    sim::ProcessFactory election,
    std::function<std::int64_t(sim::NodeId)> value_of) {
  return [election = std::move(election),
          value_of = std::move(value_of)](const sim::ProcessInit& init)
             -> std::unique_ptr<sim::Process> {
    return std::make_unique<BroadcastProcess>(election(init),
                                              value_of(init.address));
  };
}

}  // namespace celect::apps
