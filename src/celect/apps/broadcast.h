// Leader-sourced broadcast with feedback (PIF) on top of election.
//
// The elected leader disseminates a value to all nodes and learns when
// everyone has it — the primitive behind "computing a global function"
// style applications. O(N) extra messages, O(1) extra time.
#pragma once

#include <cstdint>
#include <optional>

#include "celect/apps/app_base.h"
#include "celect/sim/process.h"

namespace celect::apps {

enum BroadcastMsg : std::uint16_t {
  kBcastValue = kAppTypeBase + 10,  // fields: {value}
  kBcastAck = kAppTypeBase + 11,    // fields: {}
};

class BroadcastProcess : public ElectionAppProcess {
 public:
  BroadcastProcess(std::unique_ptr<sim::Process> inner, std::int64_t value)
      : ElectionAppProcess(std::move(inner)), my_value_(value) {}

  // The delivered value (the leader's), once received.
  std::optional<std::int64_t> delivered() const { return delivered_; }
  // Leader only: true once all N-1 acks are in.
  bool feedback_complete() const { return feedback_complete_; }

 protected:
  void OnElected(sim::Context& ctx) override;
  void OnAppMessage(sim::Context& ctx, sim::Port from_port,
                    const wire::Packet& p) override;

 private:
  std::int64_t my_value_;
  std::optional<std::int64_t> delivered_;
  std::uint32_t acks_ = 0;
  bool feedback_complete_ = false;
};

// value_of(address) supplies each node's value to broadcast when it wins.
sim::ProcessFactory MakeBroadcast(
    sim::ProcessFactory election,
    std::function<std::int64_t(sim::NodeId)> value_of);

}  // namespace celect::apps
