#include "celect/apps/global_function.h"

#include <algorithm>
#include <memory>

#include "celect/util/check.h"

namespace celect::apps {

using sim::Context;
using sim::Port;
using wire::Packet;

void GlobalFunctionProcess::OnElected(Context& ctx) {
  accumulator_ = input_;
  if (ctx.n() == 1) {
    result_ = accumulator_;
    return;
  }
  ctx.SendAll(Packet{kFnQuery, {}});
}

void GlobalFunctionProcess::OnAppMessage(Context& ctx, Port from_port,
                                         const Packet& p) {
  switch (p.type) {
    case kFnQuery:
      ctx.Send(from_port, Packet{kFnReport, {input_}});
      break;
    case kFnReport:
      accumulator_ = reduce_(accumulator_, p.field(0));
      if (++reports_ == ctx.n() - 1) {
        result_ = accumulator_;
        ctx.SendAll(Packet{kFnResult, {accumulator_}});
      }
      break;
    case kFnResult:
      result_ = p.field(0);
      break;
    default:
      CELECT_CHECK(false) << "global function: unknown type " << p.type;
  }
}

sim::ProcessFactory MakeGlobalFunction(
    sim::ProcessFactory election,
    std::function<std::int64_t(sim::NodeId)> input_of, Reducer reduce) {
  return [election = std::move(election), input_of = std::move(input_of),
          reduce = std::move(reduce)](const sim::ProcessInit& init)
             -> std::unique_ptr<sim::Process> {
    return std::make_unique<GlobalFunctionProcess>(
        election(init), input_of(init.address), reduce);
  };
}

Reducer MaxReducer() {
  return [](std::int64_t a, std::int64_t b) { return std::max(a, b); };
}

Reducer SumReducer() {
  return [](std::int64_t a, std::int64_t b) { return a + b; };
}

}  // namespace celect::apps
