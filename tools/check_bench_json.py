#!/usr/bin/env python3
"""Validate BENCH_*.json documents emitted by the bench pipeline.

Usage:
  check_bench_json.py FILE [FILE ...]
      Validate each file against schema_version 2 (version 1 documents —
      version 2 minus the optional "histograms" section — still pass).

  check_bench_json.py --compare A B
      Additionally require A and B to be identical after zeroing the
      host-measurement fields (wall_ns, events_per_sec) — the
      serial-vs-parallel determinism check: a --threads=1 run and a
      --threads=8 run of the same grid must produce the same rows.

  check_bench_json.py --compare BASELINE CURRENT --perf-budget PCT
      Perf-gate form: instead of byte identity, compare throughput row
      by row (rows matched on protocol/n/extra; rows present in only
      one document are ignored, so a --quick grid gates against a full
      committed baseline). Fails when any matching row's events_per_sec
      drops more than PCT percent below the baseline. Only throughput
      is gated — per-row wall_ns is noise-dominated for millisecond
      rows, and an event-count change would trip the determinism
      compare instead. The budget should be generous (CI hardware
      differs from the baseline machine); the gate exists to catch
      order-of-magnitude collapses like the pre-ladder binary-heap
      cache cliff, not single-digit noise.

  check_bench_json.py --strict [...]
      With either form: additionally reject unknown top-level keys
      (anything beyond suite/git_rev/schema_version/rows/histograms),
      non-monotone histogram quantiles (min <= p50 <= p90 <= p99 <= max
      and min <= mean <= max), and a trailing empty histogram bucket
      (the emitter trims the empty tail, so a trailing zero means the
      bucket edges were mis-emitted). CI runs bench-smoke in this mode.

Exits non-zero with a message on the first violation.
"""

import json
import sys

TOP_LEVEL_KEYS = {"suite", "git_rev", "schema_version", "rows", "histograms"}

SUMMARY_KEYS = {"mean", "sd", "min", "max"}
ROW_REQUIRED = {
    "n",
    "protocol",
    "seed_count",
    "messages",
    "time",
    "wall_ns",
    "events_per_sec",
}
ROW_OPTIONAL = {"extra"}
HISTOGRAM_REQUIRED = {
    "count",
    "sum",
    "min",
    "max",
    "mean",
    "p50",
    "p90",
    "p99",
    "buckets",
}
# The known histogram vocabulary. Simulation suites emit the
# runtime-fed trio (latency/queue_depth/capture_width, plus
# election_latency for churn sweeps); transport suites emit the
# session-layer distributions (rtt_us/backoff_us/window_occupancy/
# suspicion_us). Any non-empty subset is valid — a suite emits what it
# measures — but an unknown name is always a schema error.
KNOWN_HISTOGRAMS = {
    "latency",
    "queue_depth",
    "capture_width",
    "election_latency",
    "rtt_us",
    "backoff_us",
    "window_occupancy",
    "suspicion_us",
}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def check_histogram_strict(path, name, value):
    quantiles = [
        ("min", value["min"]),
        ("p50", value["p50"]),
        ("p90", value["p90"]),
        ("p99", value["p99"]),
        ("max", value["max"]),
    ]
    for (lo_key, lo), (hi_key, hi) in zip(quantiles, quantiles[1:]):
        if lo > hi:
            fail(
                path,
                f"histograms.{name}: non-monotone quantiles "
                f"({lo_key}={lo} > {hi_key}={hi})",
            )
    if value["count"] > 0 and not (
        value["min"] <= value["mean"] <= value["max"]
    ):
        fail(path, f"histograms.{name}.mean: outside [min, max]")
    if value["buckets"] and value["buckets"][-1] == 0:
        fail(
            path,
            f"histograms.{name}.buckets: trailing empty bucket — "
            "bucket edges are not monotone with the emitted tail trim",
        )


def check_histogram(path, name, value):
    if not isinstance(value, dict) or set(value) != HISTOGRAM_REQUIRED:
        fail(path, f"histograms.{name}: expected keys {HISTOGRAM_REQUIRED}")
    for key in ("count", "sum", "min", "max", "p50", "p90", "p99"):
        v = value[key]
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            fail(path, f"histograms.{name}.{key}: not a non-negative integer")
    if not isinstance(value["mean"], (int, float)) or isinstance(
        value["mean"], bool
    ):
        fail(path, f"histograms.{name}.mean: not a number")
    buckets = value["buckets"]
    if not isinstance(buckets, list) or len(buckets) > 65:
        fail(path, f"histograms.{name}.buckets: expected a list of <= 65")
    for b in buckets:
        if not isinstance(b, int) or isinstance(b, bool) or b < 0:
            fail(path, f"histograms.{name}.buckets: non-negative ints only")
    if sum(buckets) != value["count"]:
        fail(path, f"histograms.{name}: bucket counts do not sum to count")


def check_summary(path, row_index, name, value):
    if not isinstance(value, dict) or set(value) != SUMMARY_KEYS:
        fail(path, f"rows[{row_index}].{name}: expected keys {SUMMARY_KEYS}")
    for key, v in value.items():
        if not isinstance(v, (int, float)) or isinstance(v, bool):
            fail(path, f"rows[{row_index}].{name}.{key}: not a number")


def check_document(path, strict=False):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"unreadable: {e}")
    for key in ("suite", "git_rev", "schema_version", "rows"):
        if key not in doc:
            fail(path, f"missing top-level key {key!r}")
    if strict and set(doc) - TOP_LEVEL_KEYS:
        fail(
            path,
            f"unknown top-level keys {sorted(set(doc) - TOP_LEVEL_KEYS)}",
        )
    if doc["schema_version"] not in (1, 2):
        fail(path, f"unsupported schema_version {doc['schema_version']}")
    if "histograms" in doc:
        if doc["schema_version"] < 2:
            fail(path, "histograms requires schema_version >= 2")
        hists = doc["histograms"]
        if (
            not isinstance(hists, dict)
            or not hists
            or set(hists) - KNOWN_HISTOGRAMS
        ):
            fail(
                path,
                "histograms: expected a non-empty subset of "
                f"{sorted(KNOWN_HISTOGRAMS)}",
            )
        for name, value in hists.items():
            check_histogram(path, name, value)
            if strict:
                check_histogram_strict(path, name, value)
    if not isinstance(doc["suite"], str) or not doc["suite"]:
        fail(path, "suite must be a non-empty string")
    if not isinstance(doc["rows"], list) or not doc["rows"]:
        fail(path, "rows must be a non-empty list")
    for i, row in enumerate(doc["rows"]):
        keys = set(row)
        if not ROW_REQUIRED <= keys:
            fail(path, f"rows[{i}]: missing {sorted(ROW_REQUIRED - keys)}")
        if keys - ROW_REQUIRED - ROW_OPTIONAL:
            fail(
                path,
                f"rows[{i}]: unknown keys "
                f"{sorted(keys - ROW_REQUIRED - ROW_OPTIONAL)}",
            )
        if not isinstance(row["n"], int) or row["n"] <= 0:
            fail(path, f"rows[{i}].n: expected a positive integer")
        if not isinstance(row["protocol"], str) or not row["protocol"]:
            fail(path, f"rows[{i}].protocol: expected a non-empty string")
        if not isinstance(row["seed_count"], int) or row["seed_count"] < 1:
            fail(path, f"rows[{i}].seed_count: expected an integer >= 1")
        check_summary(path, i, "messages", row["messages"])
        check_summary(path, i, "time", row["time"])
        if not isinstance(row["wall_ns"], int) or row["wall_ns"] < 0:
            fail(path, f"rows[{i}].wall_ns: expected a non-negative integer")
        if "extra" in row:
            if not isinstance(row["extra"], dict):
                fail(path, f"rows[{i}].extra: expected an object")
            for k, v in row["extra"].items():
                if not isinstance(v, (int, float)) or isinstance(v, bool):
                    fail(path, f"rows[{i}].extra.{k}: not a number")
    return doc


def strip_wall(doc):
    for row in doc["rows"]:
        row["wall_ns"] = 0
        row["events_per_sec"] = 0
    return doc


def row_key(row):
    extra = tuple(sorted(row.get("extra", {}).items()))
    return (row["protocol"], row["n"], extra)


def check_perf_budget(base_path, base, cur_path, cur, budget_pct):
    """Fails when a row in `cur` regresses beyond budget_pct vs `base`."""
    baseline = {row_key(r): r for r in base["rows"]}
    compared = 0
    for row in cur["rows"]:
        ref = baseline.get(row_key(row))
        if ref is None:
            continue
        compared += 1
        label = f"{row['protocol']} n={row['n']}"
        ref_eps, cur_eps = ref["events_per_sec"], row["events_per_sec"]
        if ref_eps > 0 and cur_eps < ref_eps * (1 - budget_pct / 100):
            fail(
                cur_path,
                f"{label}: events_per_sec {cur_eps:.3g} is more than "
                f"{budget_pct}% below baseline {ref_eps:.3g} "
                f"({base_path})",
            )
    if compared == 0:
        fail(cur_path, f"no rows match the baseline grid in {base_path}")
    print(
        f"OK: {cur_path} within {budget_pct}% of {base_path} "
        f"({compared} rows compared)"
    )


def main(argv):
    strict = False
    if argv and argv[0] == "--strict":
        strict = True
        argv = argv[1:]
    budget = None
    if "--perf-budget" in argv:
        i = argv.index("--perf-budget")
        if i + 1 >= len(argv):
            fail("usage", "--perf-budget takes a percentage")
        try:
            budget = float(argv[i + 1])
        except ValueError:
            fail("usage", f"--perf-budget: not a number: {argv[i + 1]!r}")
        if budget <= 0:
            fail("usage", "--perf-budget must be positive")
        argv = argv[:i] + argv[i + 2 :]
    if len(argv) >= 1 and argv[0] == "--compare":
        if len(argv) != 3:
            fail("usage", "--compare takes exactly two files")
        a_path, b_path = argv[1], argv[2]
        a = check_document(a_path, strict)
        b = check_document(b_path, strict)
        if budget is not None:
            check_perf_budget(a_path, a, b_path, b, budget)
            return
        if strip_wall(a) != strip_wall(b):
            fail(
                a_path,
                f"differs from {b_path} beyond wall_ns/events_per_sec "
                "(sweep results are not thread-count invariant)",
            )
        print(f"OK: {a_path} == {b_path} modulo wall fields")
        return
    if budget is not None:
        fail("usage", "--perf-budget requires --compare")
    if not argv:
        fail("usage", "expected at least one BENCH_*.json path")
    for path in argv:
        doc = check_document(path, strict)
        mode = " [strict]" if strict else ""
        print(f"OK: {path} ({doc['suite']}, {len(doc['rows'])} rows){mode}")


if __name__ == "__main__":
    main(sys.argv[1:])
