// celect_lint CLI driver.
//
//   celect_lint [--root=src] [--json=PATH] [--list-rules] [--quiet]
//
// Exit codes: 0 = clean (warnings allowed), 1 = unsuppressed errors,
// 2 = usage / IO failure.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "lint/lint.h"

namespace {

int Usage(std::ostream& os, int code) {
  os << "usage: celect_lint [--root=DIR] [--json=PATH] [--list-rules]"
     << " [--quiet]\n"
     << "  --root=DIR    directory to lint (default: src)\n"
     << "  --json=PATH   also write findings as JSON to PATH\n"
     << "  --list-rules  print every rule id and exit\n"
     << "  --quiet       suppress the summary line\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = "src";
  std::string json_path;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(7);
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--list-rules") {
      for (const std::string& id : celect::lint::RuleIds()) {
        std::cout << id << "\n";
      }
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage(std::cout, 0);
    } else {
      std::cerr << "celect_lint: unknown argument: " << arg << "\n";
      return Usage(std::cerr, 2);
    }
  }

  celect::lint::LintResult result = celect::lint::LintTree(root);
  if (result.files_scanned == 0) {
    std::cerr << "celect_lint: no .h/.cpp files under \"" << root
              << "\" — wrong --root?\n";
    return 2;
  }
  for (const celect::lint::Finding& f : result.findings) {
    std::cout << celect::lint::FormatFinding(f) << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "celect_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << celect::lint::FindingsJson(result);
  }
  if (!quiet) {
    std::cout << "celect_lint: " << result.files_scanned
              << " files scanned, " << result.ErrorCount() << " error(s), "
              << result.WarningCount() << " warning(s)\n";
  }
  return result.HasErrors() ? 1 : 0;
}
