#include "lint/lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace celect::lint {

namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string Trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// One `// celect-lint: allow(...)` comment. It silences the listed
// rules on its own line and on the line directly below, so it can ride
// at the end of the offending statement or on its own line above it.
struct Suppression {
  int line = 0;  // 1-based line of the comment
  std::set<std::string> rules;
  bool used = false;
};

struct SourceFile {
  std::string rel;  // e.g. "celect/sim/runtime.cpp"
  std::string dir;  // subsystem under celect/: "sim", "proto", ...
  std::vector<std::string> raw;   // verbatim lines
  std::vector<std::string> code;  // comments/strings blanked
  std::string joined;             // code lines joined with '\n'
  std::vector<std::size_t> line_start;  // joined offset of each line
  std::vector<Suppression> suppressions;
  std::vector<Finding> parse_findings;  // bad-suppression etc.
};

// 1-based line of a joined-text offset.
int LineOf(const SourceFile& f, std::size_t pos) {
  auto it = std::upper_bound(f.line_start.begin(), f.line_start.end(), pos);
  return static_cast<int>(it - f.line_start.begin());
}

// Blanks comments and string/char literals (preserving length and line
// structure) so token scans never match inside either. Handles //, /**/,
// "..." with escapes, '...' with escapes, and digit separators (1'000).
std::vector<std::string> StripComments(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  enum class St { kCode, kBlockComment, kString, kChar };
  St st = St::kCode;
  for (const std::string& line : raw) {
    std::string code(line.size(), ' ');
    for (std::size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (st) {
        case St::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of the line is comment
          } else if (c == '/' && next == '*') {
            st = St::kBlockComment;
            ++i;
          } else if (c == '"') {
            code[i] = '"';
            st = St::kString;
          } else if (c == '\'') {
            // A quote directly after an identifier character is a
            // digit separator (1'000'000), not a char literal.
            bool separator = i > 0 && IsIdentChar(line[i - 1]) &&
                             !(i >= 2 && line[i - 2] == '\'') &&
                             std::isdigit(static_cast<unsigned char>(
                                 line[i - 1])) != 0;
            if (separator) {
              code[i] = c;
            } else {
              code[i] = '\'';
              st = St::kChar;
            }
          } else {
            code[i] = c;
          }
          break;
        case St::kBlockComment:
          if (c == '*' && next == '/') {
            st = St::kCode;
            ++i;
          }
          break;
        case St::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            code[i] = '"';
            st = St::kCode;
          }
          break;
        case St::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            code[i] = '\'';
            st = St::kCode;
          }
          break;
      }
    }
    // Strings and chars never span lines in this codebase; recover
    // rather than corrupt the rest of the file on a stray quote.
    if (st == St::kString || st == St::kChar) st = St::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

const std::vector<std::string> kRuleIds = {
    "no-wall-clock",     "no-unseeded-rng",  "no-unordered-iteration",
    "no-pointer-keys",   "proto-observe",    "proto-phase-spans",
    "proto-packet-arms", "metrics-surfaced", "layering",
    "bad-suppression",   "unused-suppression",
};

void ParseSuppressions(SourceFile& f) {
  static const std::string kTag = "celect-lint:";
  for (std::size_t li = 0; li < f.raw.size(); ++li) {
    const std::string& line = f.raw[li];
    std::size_t tag = line.find(kTag);
    if (tag == std::string::npos) continue;
    int lineno = static_cast<int>(li + 1);
    std::size_t open = line.find("allow(", tag);
    std::size_t close =
        open == std::string::npos ? std::string::npos : line.find(')', open);
    if (open == std::string::npos || close == std::string::npos) {
      f.parse_findings.push_back(
          {f.rel, lineno, "bad-suppression", "error",
           "malformed suppression: expected "
           "\"celect-lint: allow(<rule>[, <rule>...]) <justification>\""});
      continue;
    }
    Suppression s;
    s.line = lineno;
    std::string rules = line.substr(open + 6, close - open - 6);
    std::stringstream ss(rules);
    std::string rule;
    bool ok = true;
    while (std::getline(ss, rule, ',')) {
      rule = Trim(rule);
      if (rule.empty()) continue;
      if (std::find(kRuleIds.begin(), kRuleIds.end(), rule) ==
          kRuleIds.end()) {
        f.parse_findings.push_back({f.rel, lineno, "bad-suppression",
                                    "error",
                                    "unknown rule id \"" + rule +
                                        "\" in suppression"});
        ok = false;
        continue;
      }
      s.rules.insert(rule);
    }
    if (Trim(line.substr(close + 1)).empty()) {
      f.parse_findings.push_back(
          {f.rel, lineno, "bad-suppression", "error",
           "suppression needs a justification after allow(...)"});
    }
    if (ok && !s.rules.empty()) f.suppressions.push_back(std::move(s));
  }
}

class Linter {
 public:
  explicit Linter(std::string root) : root_(std::move(root)) {}

  LintResult Run();

 private:
  // Reports unless a suppression on the line (or the line above)
  // covers the rule.
  void Report(SourceFile& f, int line, const std::string& rule,
              const std::string& message) {
    for (Suppression& s : f.suppressions) {
      if ((s.line == line || s.line + 1 == line) && s.rules.count(rule)) {
        s.used = true;
        return;
      }
    }
    findings_.push_back({f.rel, line, rule, "error", message});
  }

  void LoadTree();
  SourceFile* Pair(const SourceFile& f);

  // Rule passes.
  void CheckWallClock(SourceFile& f);
  void CheckUnseededRng(SourceFile& f);
  void CheckUnorderedIteration(SourceFile& f);
  void CheckPointerKeys(SourceFile& f);
  void CheckProtoContracts(SourceFile& f);
  void CheckPacketArms(SourceFile& f);
  void CheckMetricsSurfaced();
  void CheckLayering(SourceFile& f);

  // Occurrences of `word` as a whole identifier in the stripped text.
  static std::vector<std::size_t> FindWord(const std::string& text,
                                           const std::string& word);
  // Like FindWord, but only matches that are calls (next non-space char
  // is '(') and not member accesses (.word( / ->word( / foo::word( for
  // a non-std qualifier).
  static std::vector<std::size_t> FindCall(const std::string& text,
                                           const std::string& word);

  std::string root_;
  std::vector<SourceFile> files_;
  std::vector<Finding> findings_;
};

std::vector<std::size_t> Linter::FindWord(const std::string& text,
                                          const std::string& word) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    bool left = pos == 0 || !IsIdentChar(text[pos - 1]);
    std::size_t end = pos + word.size();
    bool right = end >= text.size() || !IsIdentChar(text[end]);
    if (left && right) out.push_back(pos);
    pos = end;
  }
  return out;
}

std::vector<std::size_t> Linter::FindCall(const std::string& text,
                                          const std::string& word) {
  std::vector<std::size_t> out;
  for (std::size_t pos : FindWord(text, word)) {
    std::size_t end = pos + word.size();
    while (end < text.size() &&
           std::isspace(static_cast<unsigned char>(text[end])) != 0) {
      ++end;
    }
    if (end >= text.size() || text[end] != '(') continue;
    if (pos > 0) {
      char prev = text[pos - 1];
      if (prev == '.') continue;  // member call on a repo type
      if (prev == '>' && pos > 1 && text[pos - 2] == '-') continue;
      if (prev == ':') {
        // Only std:: / :: qualifiers reach the C library function.
        std::size_t q = pos >= 2 && text[pos - 2] == ':' ? pos - 2 : pos;
        bool std_qualified =
            q >= 3 && text.compare(q - 3, 3, "std") == 0 &&
            (q == 3 || !IsIdentChar(text[q - 4]));
        bool global_qualified = q >= 1 && !IsIdentChar(text[q - 1]);
        if (!(std_qualified || (q != pos && global_qualified &&
                                !std_qualified))) {
          if (!std_qualified) continue;
        }
      }
    }
    out.push_back(pos);
  }
  return out;
}

void Linter::LoadTree() {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root_, ec), end;
       it != end && !ec; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const fs::path& p = it->path();
    if (p.extension() == ".h" || p.extension() == ".cpp") {
      paths.push_back(p);
    }
  }
  if (ec) {
    findings_.push_back({root_, 1, "io", "error",
                         "cannot walk tree: " + ec.message()});
    return;
  }
  std::sort(paths.begin(), paths.end());
  for (const fs::path& p : paths) {
    SourceFile f;
    f.rel = fs::relative(p, root_).generic_string();
    // Subsystem = path component after a leading "celect/" (or the
    // first component when the root points directly at subsystems).
    std::string tail = f.rel;
    if (tail.rfind("celect/", 0) == 0) tail = tail.substr(7);
    f.dir = tail.substr(0, tail.find('/'));
    std::ifstream in(p);
    if (!in) {
      findings_.push_back({f.rel, 1, "io", "error", "cannot read file"});
      continue;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      f.raw.push_back(line);
    }
    f.code = StripComments(f.raw);
    std::size_t offset = 0;
    for (const std::string& l : f.code) {
      f.line_start.push_back(offset);
      f.joined += l;
      f.joined += '\n';
      offset += l.size() + 1;
    }
    ParseSuppressions(f);
    files_.push_back(std::move(f));
  }
}

// The other half of a foo.h / foo.cpp pair (nullptr when headerless).
SourceFile* Linter::Pair(const SourceFile& f) {
  std::string other = f.rel;
  if (other.size() > 4 && other.compare(other.size() - 4, 4, ".cpp") == 0) {
    other = other.substr(0, other.size() - 4) + ".h";
  } else {
    other = other.substr(0, other.size() - 2) + ".cpp";
  }
  for (SourceFile& g : files_) {
    if (g.rel == other) return &g;
  }
  return nullptr;
}

void Linter::CheckWallClock(SourceFile& f) {
  static const char* kWords[] = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "timespec_get",
      "localtime",     "gmtime",        "mktime",
  };
  for (const char* w : kWords) {
    for (std::size_t pos : FindWord(f.joined, w)) {
      Report(f, LineOf(f, pos), "no-wall-clock",
             std::string("host clock source \"") + w +
                 "\" — sim results must be a pure function of the seed "
                 "(wrap sanctioned throughput probes in a suppression)");
    }
  }
  for (const char* w : {"time", "clock"}) {
    for (std::size_t pos : FindCall(f.joined, w)) {
      Report(f, LineOf(f, pos), "no-wall-clock",
             std::string("call to ") + w +
                 "() reads the host clock — sim results must be a pure "
                 "function of the seed");
    }
  }
}

void Linter::CheckUnseededRng(SourceFile& f) {
  // util/rng.h is the sanctioned seeded, splittable RNG; the rest of
  // the tree must not reach for std engines or the C library.
  if (f.dir == "util") return;
  static const char* kWords[] = {
      "random_device",      "mt19937",
      "mt19937_64",         "default_random_engine",
      "minstd_rand",        "minstd_rand0",
      "uniform_int_distribution",  "uniform_real_distribution",
      "normal_distribution",       "bernoulli_distribution",
      "poisson_distribution",      "discrete_distribution",
  };
  for (const char* w : kWords) {
    for (std::size_t pos : FindWord(f.joined, w)) {
      Report(f, LineOf(f, pos), "no-unseeded-rng",
             std::string("\"") + w +
                 "\" — use the seeded celect::Rng (util/rng.h); std "
                 "engines/distributions vary across library versions");
    }
  }
  for (const char* w : {"rand", "srand", "rand_r", "drand48", "shuffle"}) {
    for (std::size_t pos : FindCall(f.joined, w)) {
      Report(f, LineOf(f, pos), "no-unseeded-rng",
             std::string("call to ") + w +
                 "() — use the seeded celect::Rng (util/rng.h)");
    }
  }
}

void Linter::CheckUnorderedIteration(SourceFile& f) {
  // Names declared with std::unordered_* types in this file and its
  // pair (members declared in foo.h are iterated in foo.cpp).
  std::set<std::string> names;
  const SourceFile* pair = Pair(f);
  const SourceFile* sources[] = {&f, pair};
  for (const SourceFile* src : sources) {
    if (src == nullptr) continue;
    const std::string& text = src->joined;
    std::size_t pos = 0;
    while ((pos = text.find("std::unordered_", pos)) != std::string::npos) {
      std::size_t lt = text.find('<', pos);
      if (lt == std::string::npos) break;
      int depth = 1;
      std::size_t i = lt + 1;
      for (; i < text.size() && depth > 0; ++i) {
        if (text[i] == '<') ++depth;
        if (text[i] == '>') --depth;
      }
      // Skip refs/pointers/whitespace, then take the declared name.
      while (i < text.size() &&
             (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
              text[i] == '&' || text[i] == '*')) {
        ++i;
      }
      std::size_t b = i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      if (i > b) {
        std::string name = text.substr(b, i - b);
        if (name != "const" && name != "constexpr") names.insert(name);
      }
      pos = lt + 1;
    }
  }
  if (names.empty()) return;
  const std::string& text = f.joined;
  for (const std::string& name : names) {
    for (std::size_t pos : FindWord(text, name)) {
      // Range-for: the name is the range expression — preceded
      // (modulo whitespace / this->) by ':' and followed by ')'.
      std::size_t before = pos;
      if (before >= 6 && text.compare(before - 6, 6, "this->") == 0) {
        before -= 6;
      }
      while (before > 0 &&
             std::isspace(static_cast<unsigned char>(text[before - 1])) !=
                 0) {
        --before;
      }
      std::size_t after = pos + name.size();
      while (after < text.size() &&
             std::isspace(static_cast<unsigned char>(text[after])) != 0) {
        ++after;
      }
      bool range_for = before > 0 && text[before - 1] == ':' &&
                       (before < 2 || text[before - 2] != ':') &&
                       after < text.size() && text[after] == ')';
      bool begin_call =
          after + 1 < text.size() &&
          (text.compare(after, 7, ".begin(") == 0 ||
           text.compare(after, 8, ".cbegin(") == 0 ||
           text.compare(after, 8, ".rbegin(") == 0 ||
           text.compare(after, 9, "->begin(") == 0);
      if (range_for || begin_call) {
        Report(f, LineOf(f, pos), "no-unordered-iteration",
               "iteration over std::unordered_* container \"" + name +
                   "\" — bucket order is implementation-defined and "
                   "leaks into message order / traces / fingerprints; "
                   "use an ordered or index-keyed container, or "
                   "suppress if provably order-independent");
      }
    }
  }
}

void Linter::CheckPointerKeys(SourceFile& f) {
  static const char* kContainers[] = {
      "std::map<",           "std::set<",
      "std::multimap<",      "std::multiset<",
      "std::unordered_map<", "std::unordered_set<",
  };
  const std::string& text = f.joined;
  for (const char* c : kContainers) {
    std::size_t pos = 0;
    std::size_t clen = std::string(c).size();
    while ((pos = text.find(c, pos)) != std::string::npos) {
      if (pos > 0 && IsIdentChar(text[pos - 1])) {
        pos += clen;
        continue;
      }
      // First template argument: up to a top-level ',' or '>'.
      int depth = 1;
      std::size_t i = pos + clen;
      std::size_t arg_end = std::string::npos;
      for (; i < text.size(); ++i) {
        if (text[i] == '<' || text[i] == '(') ++depth;
        if (text[i] == '>' || text[i] == ')') --depth;
        if (depth == 0 || (depth == 1 && text[i] == ',')) {
          arg_end = i;
          break;
        }
      }
      if (arg_end != std::string::npos) {
        std::string key = Trim(text.substr(pos + clen, arg_end - pos - clen));
        if (!key.empty() && key.back() == '*') {
          Report(f, LineOf(f, pos), "no-pointer-keys",
                 "container keyed by pointer type \"" + key +
                     "\" — address order differs between runs; key by a "
                     "stable id instead");
        }
      }
      pos += clen;
    }
  }
}

// Class declarations deriving (transitively, by token) from the
// asynchronous Process hierarchy.
struct ClassDecl {
  std::string name;
  std::size_t body_begin = 0;  // offset just past '{'
  std::size_t body_end = 0;    // offset of matching '}'
  std::size_t decl_pos = 0;
};

std::vector<ClassDecl> FindProcessClasses(const std::string& text) {
  std::vector<ClassDecl> out;
  std::size_t pos = 0;
  while ((pos = text.find("class", pos)) != std::string::npos) {
    if ((pos > 0 && IsIdentChar(text[pos - 1])) ||
        (pos + 5 < text.size() && IsIdentChar(text[pos + 5]))) {
      pos += 5;
      continue;
    }
    std::size_t decl_pos = pos;
    std::size_t i = pos + 5;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    std::size_t name_b = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    std::string name = text.substr(name_b, i - name_b);
    // Up to the first '{', ';' or '(' lies the (optional) base clause.
    std::size_t stop = text.find_first_of("{;(", i);
    if (stop == std::string::npos || text[stop] != '{' || name.empty()) {
      pos += 5;
      continue;
    }
    std::string bases = text.substr(i, stop - i);
    if (bases.find(':') == std::string::npos) {
      pos += 5;
      continue;
    }
    bool from_process = (bases.find("Process") != std::string::npos) &&
                        (bases.find("SyncProcess") == std::string::npos);
    if (!from_process) {
      pos += 5;
      continue;
    }
    int depth = 1;
    std::size_t b = stop + 1;
    for (; b < text.size() && depth > 0; ++b) {
      if (text[b] == '{') ++depth;
      if (text[b] == '}') --depth;
    }
    out.push_back({name, stop + 1, b > 0 ? b - 1 : stop + 1, decl_pos});
    pos = stop + 1;
  }
  return out;
}

void Linter::CheckProtoContracts(SourceFile& f) {
  if (f.dir != "proto") return;
  const SourceFile* pair = Pair(f);
  for (const ClassDecl& c : FindProcessClasses(f.joined)) {
    std::string body =
        f.joined.substr(c.body_begin, c.body_end - c.body_begin);
    // Abstract protocol scaffolding (pure virtuals) carries no engine
    // contract of its own. A pure-virtual's "= 0;" is preceded by ')'
    // or a trailing qualifier — member initializers ("int x_ = 0;")
    // are not, so they don't exempt a class.
    bool abstract = false;
    std::size_t pv = 0;
    while ((pv = body.find("= 0;", pv)) != std::string::npos) {
      std::size_t b = pv;
      while (b > 0 && std::isspace(static_cast<unsigned char>(
                          body[b - 1])) != 0) {
        --b;
      }
      bool qualifier =
          (b > 0 && body[b - 1] == ')') ||
          (b >= 5 && body.compare(b - 5, 5, "const") == 0) ||
          (b >= 8 && body.compare(b - 8, 8, "noexcept") == 0) ||
          (b >= 8 && body.compare(b - 8, 8, "override") == 0);
      if (qualifier) {
        abstract = true;
        break;
      }
      pv += 4;
    }
    if (abstract) continue;
    auto in_class_or_pair = [&](const std::string& token) {
      if (body.find(token) != std::string::npos) return true;
      // Out-of-line definitions live in the pair file.
      return pair != nullptr &&
             pair->joined.find(token) != std::string::npos;
    };
    int line = LineOf(f, c.decl_pos);
    if (!in_class_or_pair("Observe(")) {
      Report(f, line, "proto-observe",
             "engine class " + c.name +
                 " never overrides Observe() — the invariant registry "
                 "needs per-protocol monotone progress gauges");
    }
    if (!in_class_or_pair("BeginPhase(") || !in_class_or_pair("EndPhase(")) {
      Report(f, line, "proto-phase-spans",
             "engine class " + c.name +
                 " emits no BeginPhase/EndPhase spans — phase tables "
                 "and the Perfetto export stay empty for it");
    }
  }
}

void Linter::CheckPacketArms(SourceFile& f) {
  if (f.dir != "proto") return;
  const SourceFile* pair = Pair(f);
  const std::string& text = f.joined;
  std::size_t pos = 0;
  while ((pos = text.find("enum", pos)) != std::string::npos) {
    if ((pos > 0 && IsIdentChar(text[pos - 1])) ||
        (pos + 4 < text.size() && IsIdentChar(text[pos + 4]))) {
      pos += 4;
      continue;
    }
    std::size_t i = pos + 4;
    while (i < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[i])) != 0)) {
      ++i;
    }
    if (text.compare(i, 5, "class") == 0 && !IsIdentChar(text[i + 5])) {
      i += 5;
      while (i < text.size() &&
             std::isspace(static_cast<unsigned char>(text[i])) != 0) {
        ++i;
      }
    }
    std::size_t name_b = i;
    while (i < text.size() && IsIdentChar(text[i])) ++i;
    std::string name = text.substr(name_b, i - name_b);
    std::size_t open = text.find('{', i);
    if (name.find("Msg") == std::string::npos ||
        open == std::string::npos) {
      pos += 4;
      continue;
    }
    std::size_t close = text.find('}', open);
    if (close == std::string::npos) break;
    std::string body = text.substr(open + 1, close - open - 1);
    // Enumerators: identifiers at the start of each comma entry.
    std::size_t entry = 0;
    while (entry < body.size()) {
      std::size_t comma = body.find(',', entry);
      if (comma == std::string::npos) comma = body.size();
      std::string item = Trim(body.substr(entry, comma - entry));
      std::size_t e = 0;
      while (e < item.size() && IsIdentChar(item[e])) ++e;
      std::string enumerator = item.substr(0, e);
      if (!enumerator.empty()) {
        std::size_t at = open + 1 + entry;
        int line = LineOf(f, text.find(enumerator, at));
        auto arms = [&](const SourceFile& s, bool& has_case,
                        bool& has_send) {
          for (std::size_t p : FindWord(s.joined, enumerator)) {
            // Ignore the declaration itself.
            if (&s == &f && p > open && p < close) continue;
            std::size_t b = p;
            while (b > 0 && std::isspace(static_cast<unsigned char>(
                                s.joined[b - 1])) != 0) {
              --b;
            }
            bool is_case =
                b >= 4 && s.joined.compare(b - 4, 4, "case") == 0 &&
                (b == 4 || !IsIdentChar(s.joined[b - 5]));
            (is_case ? has_case : has_send) = true;
          }
        };
        bool has_case = false;
        bool has_send = false;
        arms(f, has_case, has_send);
        if (pair != nullptr) arms(*pair, has_case, has_send);
        if (!has_case) {
          Report(f, line, "proto-packet-arms",
                 "packet enumerator " + enumerator + " of " + name +
                     " has no handler (case) arm — received packets of "
                     "this kind would be silently mis-dispatched");
        }
        if (!has_send) {
          Report(f, line, "proto-packet-arms",
                 "packet enumerator " + enumerator + " of " + name +
                     " is never constructed/sent — dead packet kind or "
                     "missing encoder arm");
        }
      }
      entry = comma + 1;
    }
    pos = close;
  }
}

void Linter::CheckMetricsSurfaced() {
  SourceFile* metrics = nullptr;
  for (SourceFile& f : files_) {
    if (f.rel.size() >= 13 &&
        f.rel.compare(f.rel.size() - 13, 13, "sim/metrics.h") == 0) {
      metrics = &f;
    }
  }
  if (metrics == nullptr) return;
  // Getters: const member functions of the form `name(...) const`.
  const std::string& text = metrics->joined;
  std::size_t pos = 0;
  while ((pos = text.find("(", pos)) != std::string::npos) {
    std::size_t close = text.find(')', pos);
    if (close == std::string::npos) break;
    std::size_t after = close + 1;
    while (after < text.size() &&
           std::isspace(static_cast<unsigned char>(text[after])) != 0) {
      ++after;
    }
    if (text.compare(after, 5, "const") != 0 ||
        (after + 5 < text.size() && IsIdentChar(text[after + 5]))) {
      ++pos;
      continue;
    }
    std::size_t name_e = pos;
    while (name_e > 0 && std::isspace(static_cast<unsigned char>(
                             text[name_e - 1])) != 0) {
      --name_e;
    }
    std::size_t name_b = name_e;
    while (name_b > 0 && IsIdentChar(text[name_b - 1])) --name_b;
    std::string getter = text.substr(name_b, name_e - name_b);
    ++pos;
    if (getter.empty() || getter == "operator") continue;
    bool surfaced = false;
    std::string impl = metrics->rel.substr(0, metrics->rel.size() - 2) +
                       ".cpp";
    for (const SourceFile& g : files_) {
      if (g.rel == metrics->rel || g.rel == impl) continue;
      if (!FindWord(g.joined, getter).empty()) {
        surfaced = true;
        break;
      }
    }
    if (!surfaced) {
      Report(*metrics, LineOf(*metrics, name_b), "metrics-surfaced",
             "Metrics getter " + getter +
                 "() is read nowhere outside sim/metrics.{h,cpp} — "
                 "every counter must be surfaced in RunResult or the "
                 "bench JSON emitter (or deleted)");
    }
  }
}

void Linter::CheckLayering(SourceFile& f) {
  // Allowed #include targets per subsystem. The load-bearing edges:
  // util is freestanding, obs sits under sim (it may see sim's trace
  // vocabulary but nothing above), the deterministic core (sim/proto/
  // topo) never sees harness/analysis, and only harness sees everyone.
  static const std::map<std::string, std::set<std::string>> kAllowed = {
      {"util", {"util"}},
      {"wire", {"wire", "util"}},
      {"obs", {"obs", "sim", "util"}},
      {"sim", {"sim", "wire", "obs", "util"}},
      {"net", {"net", "sim", "obs", "wire", "util"}},
      {"topo", {"topo", "sim", "util"}},
      {"proto", {"proto", "sim", "topo", "obs", "wire", "util"}},
      {"adversary", {"adversary", "sim", "topo", "util"}},
      {"apps", {"apps", "proto", "sim", "util"}},
      {"analysis", {"analysis", "obs", "proto", "sim", "util"}},
      {"harness",
       {"harness", "adversary", "analysis", "apps", "net", "obs", "proto",
        "sim", "topo", "util", "wire"}},
  };
  auto allowed = kAllowed.find(f.dir);
  // Raw lines: include paths are string literals, which the stripped
  // text blanks out. Restricting to preprocessor lines keeps comments
  // that merely mention an include from matching.
  for (std::size_t li = 0; li < f.raw.size(); ++li) {
    const std::string& line = f.raw[li];
    std::size_t hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    std::size_t inc = line.find("#include \"celect/");
    if (inc == std::string::npos) continue;
    std::size_t b = inc + 17;
    std::size_t e = line.find('/', b);
    if (e == std::string::npos) continue;
    std::string target = line.substr(b, e - b);
    if (allowed == kAllowed.end() || allowed->second.count(target) == 0) {
      Report(f, static_cast<int>(li + 1), "layering",
             "\"" + f.dir + "\" must not include \"celect/" + target +
                 "/...\" — it breaks the subsystem layering (see "
                 "DESIGN.md §13)");
    }
  }
}

LintResult Linter::Run() {
  LoadTree();
  for (SourceFile& f : files_) {
    CheckWallClock(f);
    CheckUnseededRng(f);
    CheckUnorderedIteration(f);
    CheckPointerKeys(f);
    CheckProtoContracts(f);
    CheckPacketArms(f);
    CheckLayering(f);
  }
  CheckMetricsSurfaced();
  LintResult result;
  result.files_scanned = files_.size();
  result.findings = std::move(findings_);
  for (SourceFile& f : files_) {
    for (Finding& pf : f.parse_findings) {
      result.findings.push_back(std::move(pf));
    }
    for (const Suppression& s : f.suppressions) {
      if (!s.used) {
        result.findings.push_back(
            {f.rel, s.line, "unused-suppression", "warning",
             "suppression silences nothing — delete it or fix the rule "
             "list"});
      }
    }
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return result;
}

}  // namespace

bool LintResult::HasErrors() const { return ErrorCount() > 0; }

std::size_t LintResult::ErrorCount() const {
  std::size_t n = 0;
  for (const Finding& f : findings) n += f.severity == "error" ? 1 : 0;
  return n;
}

std::size_t LintResult::WarningCount() const {
  return findings.size() - ErrorCount();
}

const std::vector<std::string>& RuleIds() { return kRuleIds; }

LintResult LintTree(const std::string& root) {
  return Linter(root).Run();
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": " << f.severity << ": [" << f.rule
     << "] " << f.message;
  return os.str();
}

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  out += '"';
  return out;
}
}  // namespace

std::string FindingsJson(const LintResult& r) {
  std::ostringstream os;
  os << "{\n  \"files_scanned\": " << r.files_scanned
     << ",\n  \"errors\": " << r.ErrorCount()
     << ",\n  \"warnings\": " << r.WarningCount()
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const Finding& f = r.findings[i];
    os << (i ? ",\n    " : "\n    ") << "{\"file\": " << JsonEscape(f.file)
       << ", \"line\": " << f.line
       << ", \"rule\": " << JsonEscape(f.rule)
       << ", \"severity\": " << JsonEscape(f.severity)
       << ", \"message\": " << JsonEscape(f.message) << "}";
  }
  os << (r.findings.empty() ? "]" : "\n  ]") << "\n}\n";
  return os.str();
}

}  // namespace celect::lint
