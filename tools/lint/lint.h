// celect_lint: repo-aware static analysis for the celect source tree.
//
// The simulator's guarantees — bit-identical fingerprints at any
// --threads, replayable explorer counterexamples, byte-stable bench
// JSON — rest on contracts that runtime checks can only catch after the
// fact: no nondeterminism sources inside the deterministic core, every
// engine observable, every packet type handled, layering respected.
// This linter turns those contracts into compile-time-style findings.
//
// It is deliberately token/AST-lite: a comment/string-stripping scanner
// plus per-rule pattern logic over file pairs (foo.h + foo.cpp). No
// libclang dependency, so it builds and runs everywhere the tree does.
//
// Rule families (ids accepted by the suppression syntax below):
//
//   determinism
//     no-wall-clock         host clock reads (chrono clocks, time(),
//                           gettimeofday, ...) anywhere in src/
//     no-unseeded-rng       std::rand/random_device/std engines and
//                           distributions outside util/ (util/rng.h is
//                           the sanctioned seeded RNG)
//     no-unordered-iteration  iterating a std::unordered_* container
//                           (range-for or .begin()); iteration order is
//                           implementation-defined and leaks into
//                           message order, traces, and fingerprints
//     no-pointer-keys       std::{map,set,...} keyed by a pointer type;
//                           address order differs run to run
//
//   protocol contracts
//     proto-observe         every engine class under proto/ deriving
//                           from sim::Process overrides Observe()
//     proto-phase-spans     ... and emits BeginPhase/EndPhase spans
//     proto-packet-arms     every enumerator of a *Msg packet enum has
//                           a handler (case) arm and a send site
//     metrics-surfaced      every sim::Metrics getter is consumed
//                           outside metrics.{h,cpp} (counters must
//                           reach RunResult / the bench JSON emitter)
//
//   layering
//     layering              #include "celect/<dir>/..." must respect
//                           the allowed-dependency matrix (sim never
//                           includes harness, obs stays at the bottom
//                           of the stack, util includes nothing)
//
// Suppression: a finding on line L is silenced by a comment on L or on
// the line directly above:
//
//   // celect-lint: allow(rule-id[, rule-id...]) <justification>
//
// The justification is mandatory (an empty one is itself reported, as
// bad-suppression); a suppression that silences nothing is reported as
// unused-suppression at warning severity.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace celect::lint {

struct Finding {
  std::string file;  // path relative to the linted root
  int line = 1;      // 1-based
  std::string rule;
  std::string severity;  // "error" or "warning"
  std::string message;
};

struct LintResult {
  // Sorted by (file, line, rule) for byte-stable output.
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;

  bool HasErrors() const;
  std::size_t ErrorCount() const;
  std::size_t WarningCount() const;
};

// Every rule id the engine knows (what allow(...) accepts).
const std::vector<std::string>& RuleIds();

// Lints every .h/.cpp under `root` (the directory that contains
// "celect/"). Files the OS cannot read are reported as findings rather
// than silently skipped.
LintResult LintTree(const std::string& root);

// "file:line: severity: [rule] message" — the machine-readable line
// format consumed by CI.
std::string FormatFinding(const Finding& f);

// The whole result as a JSON document (findings + counts), for the CI
// artifact upload.
std::string FindingsJson(const LintResult& r);

}  // namespace celect::lint
