// celect_trace — record, convert, validate and inspect simulation traces.
//
//   celect_trace record  --protocol=C --n=16 --seed=1 --out=run.trace
//       Runs one election with tracing on and writes the compact format
//       (add --perfetto=PATH to also write the Perfetto JSON).
//   celect_trace convert IN.trace --out=OUT.json
//       Compact -> Chrome trace-event / Perfetto JSON (ui.perfetto.dev).
//   celect_trace check   IN.trace|IN.json [--fifo=0]
//       Semantic validation of a compact trace (Lamport monotonicity,
//       flow pairing, per-link FIFO), or a structural scan of an
//       exported .json. Shard files (leading "#shard") get the
//       cross-process checks: per-incarnation clock discipline, global
//       mid uniqueness, send/deliver pairing across shards, per-session
//       FIFO. Exit 1 on any problem.
//   celect_trace merge   SHARD... [--out=MERGED] [--perfetto=PATH]
//       Folds per-process shard files into one canonical merged shard
//       file (and optionally one Perfetto timeline with a track per
//       process and cross-process flow arrows). Byte-identical output
//       for any argument order.
//   celect_trace text    IN.trace [--limit=N]
//       Human-readable listing.
//   celect_trace filter  IN.trace --out=OUT.trace
//                        [--node=3] [--type=2] [--phase=capture1]
//                        [--from=TICKS] [--to=TICKS]
//       Keeps the matching records (compact in, compact out).
//   celect_trace diff    A.trace B.trace
//       First divergence between two runs; exit 1 when they differ.
//   celect_trace chain   IN.trace --mid=42
//       The causal chain that produced message 42, oldest first, then
//       every outcome of the message itself.
//
// Every subcommand is deterministic: equal inputs give byte-equal
// outputs, so traces are diffable artifacts.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "celect/harness/experiment.h"
#include "celect/harness/registry.h"
#include "celect/obs/shard.h"
#include "celect/obs/trace_export.h"
#include "celect/obs/trace_inspect.h"
#include "celect/util/flags.h"

namespace {

using namespace celect;

int Fail(const std::string& message) {
  std::cerr << "celect_trace: " << message << "\n";
  return 1;
}

bool ReadFile(const std::string& path, std::string* out,
              std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool WriteFile(const std::string& path, const std::string& content,
               std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
  out.flush();
  if (!out) {
    *error = "cannot write " + path;
    return false;
  }
  return true;
}

// Loads a compact trace; exits via Fail on I/O or parse errors.
int LoadRecords(const std::string& path,
                std::vector<sim::TraceRecord>* records) {
  std::string text, error;
  if (!ReadFile(path, &text, &error)) return Fail(error);
  auto parsed = obs::ParseRecords(text, &error);
  if (!parsed) return Fail(path + ": " + error);
  *records = std::move(*parsed);
  return 0;
}

int CmdRecord(Flags& flags) {
  std::string name =
      flags.GetString("protocol", "C", "protocol name (see --list)");
  auto n = static_cast<std::uint32_t>(flags.GetInt("n", 16, "network size"));
  auto seed =
      static_cast<std::uint64_t>(flags.GetInt("seed", 1, "run seed"));
  std::string out_path =
      flags.GetString("out", "", "compact trace output path (default stdout)");
  std::string perfetto =
      flags.GetString("perfetto", "", "also write Perfetto JSON here");
  std::string wakeup =
      flags.GetString("wakeup", "all", "wakeup pattern: all|single|staggered");
  bool list = flags.GetBool("list", false, "list protocols and exit");
  if (flags.help_requested()) {
    std::cout << flags.HelpText();
    return 0;
  }
  if (list) {
    std::cout << harness::ProtocolListing();
    return 0;
  }

  auto spec = harness::FindProtocol(name);
  if (!spec) return Fail("unknown protocol " + name);
  if (spec->needs_power_of_two && (n & (n - 1)) != 0) {
    return Fail(spec->name + " needs N = 2^r");
  }

  harness::RunOptions ro;
  ro.n = n;
  ro.seed = seed;
  ro.mapper = spec->needs_sense_of_direction
                  ? harness::MapperKind::kSenseOfDirection
                  : harness::MapperKind::kRandom;
  if (wakeup == "single") {
    ro.wakeup = harness::WakeupKind::kSingle;
  } else if (wakeup == "staggered") {
    ro.wakeup = harness::WakeupKind::kStaggeredChain;
  } else if (wakeup != "all") {
    return Fail("unknown wakeup pattern " + wakeup);
  }
  harness::TracedRun run = harness::RunElectionTraced(spec->make(0), ro);

  std::string compact = obs::SerializeRecords(run.records);
  std::string error;
  if (out_path.empty()) {
    std::cout << compact;
  } else if (!WriteFile(out_path, compact, &error)) {
    return Fail(error);
  }
  if (!perfetto.empty()) {
    obs::TraceExportOptions eo;
    eo.process_name = "protocol " + spec->name + " n=" + std::to_string(n) +
                      " seed=" + std::to_string(seed);
    if (!obs::WriteChromeTrace(perfetto, run.records, eo)) {
      return Fail("cannot write " + perfetto);
    }
  }
  std::cerr << "recorded " << run.records.size() << " records ("
            << harness::Summarize(run.result) << ")\n";
  return 0;
}

int CmdConvert(Flags& flags) {
  std::string out_path =
      flags.GetString("out", "", "Perfetto JSON output path (default stdout)");
  std::string process =
      flags.GetString("name", "celect", "Perfetto process label");
  if (flags.help_requested() || flags.positional().size() != 2) {
    std::cout << "usage: celect_trace convert IN.trace --out=OUT.json\n";
    return flags.help_requested() ? 0 : 1;
  }
  std::vector<sim::TraceRecord> records;
  if (int rc = LoadRecords(flags.positional()[1], &records)) return rc;
  obs::TraceExportOptions eo;
  eo.process_name = process;
  std::string json = obs::ExportChromeTrace(records, eo);
  std::string error;
  if (out_path.empty()) {
    std::cout << json;
  } else if (!WriteFile(out_path, json, &error)) {
    return Fail(error);
  }
  return 0;
}

int CmdCheck(Flags& flags) {
  bool fifo = flags.GetBool(
      "fifo", true, "assert per-link FIFO (disable for reordered runs)");
  if (flags.help_requested() || flags.positional().size() != 2) {
    std::cout << "usage: celect_trace check IN.trace|IN.json [--fifo=0]\n";
    return flags.help_requested() ? 0 : 1;
  }
  const std::string& path = flags.positional()[1];
  std::string text, error;
  if (!ReadFile(path, &text, &error)) return Fail(error);

  // Exported documents get the structural JSON scan; shard files get
  // the cross-process checks; everything else is parsed as a compact
  // trace and checked semantically.
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    if (auto problem = obs::ValidateJson(text)) {
      return Fail(path + ": " + *problem);
    }
    std::cerr << path << ": well-formed JSON\n";
    return 0;
  }
  if (text.compare(0, 6, "#shard") == 0) {
    auto shards = obs::ParseShards(text, &error);
    if (!shards) return Fail(path + ": " + error);
    obs::ShardCheckOptions so;
    so.expect_fifo = fifo;
    std::vector<std::string> problems = obs::CheckShards(*shards, so);
    for (const std::string& p : problems) {
      std::cerr << path << ": " << p << "\n";
    }
    if (!problems.empty()) return 1;
    std::size_t records = 0;
    for (const auto& s : *shards) records += s.records.size();
    std::cerr << path << ": " << shards->size() << " shards, " << records
              << " records, coherent\n";
    return 0;
  }
  auto parsed = obs::ParseRecords(text, &error);
  if (!parsed) return Fail(path + ": " + error);
  obs::CheckOptions co;
  co.expect_fifo = fifo;
  std::vector<std::string> problems = obs::CheckRecords(*parsed, co);
  for (const std::string& p : problems) std::cerr << path << ": " << p << "\n";
  if (!problems.empty()) return 1;
  std::cerr << path << ": " << parsed->size() << " records, coherent\n";
  return 0;
}

int CmdMerge(Flags& flags) {
  std::string out_path = flags.GetString(
      "out", "", "merged shard file output path (default stdout)");
  std::string perfetto =
      flags.GetString("perfetto", "", "also write a Perfetto JSON timeline");
  std::string process =
      flags.GetString("name", "celect merged", "Perfetto process label");
  if (flags.help_requested() || flags.positional().size() < 2) {
    std::cout << "usage: celect_trace merge SHARD... [--out=MERGED]"
                 " [--perfetto=OUT.json] [--name=LABEL]\n";
    return flags.help_requested() ? 0 : 1;
  }
  obs::ShardReducer reducer;
  for (std::size_t i = 1; i < flags.positional().size(); ++i) {
    const std::string& path = flags.positional()[i];
    std::string text, error;
    if (!ReadFile(path, &text, &error)) return Fail(error);
    auto shards = obs::ParseShards(text, &error);
    if (!shards) return Fail(path + ": " + error);
    for (auto& s : *shards) reducer.Add(std::move(s));
  }
  std::string merged = reducer.SerializeMerged();
  std::string error;
  if (out_path.empty()) {
    std::cout << merged;
  } else if (!WriteFile(out_path, merged, &error)) {
    return Fail(error);
  }
  if (!perfetto.empty()) {
    obs::TraceExportOptions eo;
    eo.process_name = process;
    if (!obs::WriteMergedChromeTrace(perfetto, reducer.Merged(), eo)) {
      return Fail("cannot write " + perfetto);
    }
  }
  std::cerr << "merged " << reducer.added() << " shards into "
            << reducer.Merged().size() << " incarnations\n";
  return 0;
}

int CmdText(Flags& flags) {
  auto limit = static_cast<std::size_t>(
      flags.GetInt("limit", 0, "print at most N records (0 = all)"));
  if (flags.help_requested() || flags.positional().size() != 2) {
    std::cout << "usage: celect_trace text IN.trace [--limit=N]\n";
    return flags.help_requested() ? 0 : 1;
  }
  std::vector<sim::TraceRecord> records;
  if (int rc = LoadRecords(flags.positional()[1], &records)) return rc;
  if (limit && records.size() > limit) records.resize(limit);
  std::cout << obs::SerializeRecords(records);
  return 0;
}

int CmdFilter(Flags& flags) {
  obs::TraceFilter filter;
  if (flags.Has("node")) {
    filter.node = static_cast<sim::NodeId>(
        flags.GetInt("node", 0, "acting node or peer"));
  }
  if (flags.Has("type")) {
    filter.type =
        static_cast<std::uint16_t>(flags.GetInt("type", 0, "packet type"));
  }
  std::string phase =
      flags.GetString("phase", "", "phase tag (capture1, doubling, ...)");
  if (flags.Has("from")) {
    filter.min_ticks = flags.GetInt("from", 0, "min timestamp, ticks");
  }
  if (flags.Has("to")) {
    filter.max_ticks = flags.GetInt("to", 0, "max timestamp, ticks");
  }
  std::string out_path =
      flags.GetString("out", "", "filtered output path (default stdout)");
  if (flags.help_requested() || flags.positional().size() != 2) {
    std::cout << "usage: celect_trace filter IN.trace [--node=N] [--type=T]"
                 " [--phase=NAME] [--from=TICKS] [--to=TICKS]\n";
    return flags.help_requested() ? 0 : 1;
  }
  if (!phase.empty()) {
    auto id = obs::PhaseFromName(phase);
    if (!id) return Fail("unknown phase " + phase);
    filter.phase = *id;
  }
  std::vector<sim::TraceRecord> records;
  if (int rc = LoadRecords(flags.positional()[1], &records)) return rc;
  std::string compact =
      obs::SerializeRecords(obs::FilterRecords(records, filter));
  std::string error;
  if (out_path.empty()) {
    std::cout << compact;
  } else if (!WriteFile(out_path, compact, &error)) {
    return Fail(error);
  }
  return 0;
}

int CmdDiff(Flags& flags) {
  if (flags.help_requested() || flags.positional().size() != 3) {
    std::cout << "usage: celect_trace diff A.trace B.trace\n";
    return flags.help_requested() ? 0 : 1;
  }
  std::vector<sim::TraceRecord> a, b;
  if (int rc = LoadRecords(flags.positional()[1], &a)) return rc;
  if (int rc = LoadRecords(flags.positional()[2], &b)) return rc;
  if (auto divergence = obs::DiffRecords(a, b)) {
    std::cout << *divergence << "\n";
    return 1;
  }
  std::cerr << "identical (" << a.size() << " records)\n";
  return 0;
}

int CmdChain(Flags& flags) {
  auto mid = static_cast<std::uint64_t>(
      flags.GetInt("mid", 0, "message uid to explain"));
  if (flags.help_requested() || flags.positional().size() != 2 || mid == 0) {
    std::cout << "usage: celect_trace chain IN.trace --mid=UID\n";
    return flags.help_requested() ? 0 : 1;
  }
  std::vector<sim::TraceRecord> records;
  if (int rc = LoadRecords(flags.positional()[1], &records)) return rc;
  std::vector<sim::TraceRecord> chain = obs::CausalChain(records, mid);
  if (chain.empty()) return Fail("no send with mid=" + std::to_string(mid));
  std::cout << obs::SerializeRecords(chain);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::string cmd =
      flags.positional().empty() ? "" : flags.positional()[0];
  if (cmd == "record") return CmdRecord(flags);
  if (cmd == "convert") return CmdConvert(flags);
  if (cmd == "check") return CmdCheck(flags);
  if (cmd == "merge") return CmdMerge(flags);
  if (cmd == "text") return CmdText(flags);
  if (cmd == "filter") return CmdFilter(flags);
  if (cmd == "diff") return CmdDiff(flags);
  if (cmd == "chain") return CmdChain(flags);
  std::cout << "usage: celect_trace <record|convert|check|merge|text|filter|"
               "diff|chain> [args]\n       (each subcommand takes --help)\n";
  return cmd.empty() && flags.help_requested() ? 0 : 1;
}
