// Applications layered on election: spanning tree, broadcast, global
// function (paper §1/§6 equivalences).
#include <gtest/gtest.h>

#include "celect/apps/broadcast.h"
#include "celect/apps/global_function.h"
#include "celect/apps/spanning_tree.h"
#include "celect/proto/nosod/protocol_g.h"
#include "celect/proto/sod/protocol_c.h"
#include "test_util.h"

namespace celect::apps {
namespace {

using harness::MapperKind;
using harness::RunOptions;

sim::ProcessFactory ElectionC() { return proto::sod::MakeProtocolC(); }
sim::ProcessFactory ElectionG(std::uint32_t n) {
  return proto::nosod::MakeProtocolG(proto::nosod::MessageOptimalK(n));
}

TEST(SpanningTree, BuildsATreeOverProtocolC) {
  const std::uint32_t n = 64;
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kSenseOfDirection;
  sim::Runtime rt(harness::BuildNetwork(o), MakeSpanningTree(ElectionC()));
  auto r = rt.Run();
  ASSERT_EQ(r.leader_declarations, 1u);

  std::uint32_t roots = 0, joined = 0;
  for (sim::NodeId i = 0; i < n; ++i) {
    auto& p = dynamic_cast<SpanningTreeProcess&>(rt.process(i));
    if (p.is_root()) {
      ++roots;
      EXPECT_EQ(p.children(), n - 1);
      EXPECT_FALSE(p.parent_port().has_value());
    } else if (p.parent_port().has_value()) {
      ++joined;
      EXPECT_EQ(p.root_id(), r.leader_id);
    }
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(joined, n - 1);
}

TEST(SpanningTree, BuildsOverProtocolGWithoutSod) {
  const std::uint32_t n = 32;
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kRandom;
  sim::Runtime rt(harness::BuildNetwork(o),
                  MakeSpanningTree(ElectionG(n)));
  auto r = rt.Run();
  ASSERT_EQ(r.leader_declarations, 1u);
  std::uint32_t joined = 0;
  for (sim::NodeId i = 0; i < n; ++i) {
    auto& p = dynamic_cast<SpanningTreeProcess&>(rt.process(i));
    if (!p.is_root() && p.parent_port().has_value()) ++joined;
  }
  EXPECT_EQ(joined, n - 1);
}

TEST(SpanningTree, OverheadIsLinearInN) {
  const std::uint32_t n = 64;
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kSenseOfDirection;
  auto plain = harness::RunElection(ElectionC(), o);
  sim::Runtime rt(harness::BuildNetwork(o), MakeSpanningTree(ElectionC()));
  auto with_tree = rt.Run();
  // Invites + joins: exactly 2(N-1) extra messages.
  EXPECT_EQ(with_tree.total_messages - plain.total_messages,
            2u * (n - 1));
}

TEST(Broadcast, DeliversLeaderValueEverywhere) {
  const std::uint32_t n = 32;
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kRandom;
  auto value_of = [](sim::NodeId addr) {
    return static_cast<std::int64_t>(addr) * 100;
  };
  sim::Runtime rt(harness::BuildNetwork(o),
                  MakeBroadcast(ElectionG(n), value_of));
  auto r = rt.Run();
  ASSERT_EQ(r.leader_declarations, 1u);
  ASSERT_TRUE(r.leader_node.has_value());
  std::int64_t expect = value_of(*r.leader_node);
  for (sim::NodeId i = 0; i < n; ++i) {
    auto& p = dynamic_cast<BroadcastProcess&>(rt.process(i));
    ASSERT_TRUE(p.delivered().has_value()) << "node " << i;
    EXPECT_EQ(*p.delivered(), expect);
    if (i == *r.leader_node) {
      EXPECT_TRUE(p.feedback_complete());
    }
  }
}

TEST(GlobalFunction, ComputesMaxOverProtocolC) {
  const std::uint32_t n = 64;
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kSenseOfDirection;
  auto input_of = [](sim::NodeId addr) {
    // Maximum input lives at an arbitrary non-leader node.
    return static_cast<std::int64_t>((addr * 37) % 101);
  };
  std::int64_t want = 0;
  for (sim::NodeId i = 0; i < n; ++i) want = std::max(want, input_of(i));

  sim::Runtime rt(harness::BuildNetwork(o),
                  MakeGlobalFunction(ElectionC(), input_of, MaxReducer()));
  auto r = rt.Run();
  ASSERT_EQ(r.leader_declarations, 1u);
  for (sim::NodeId i = 0; i < n; ++i) {
    auto& p = dynamic_cast<GlobalFunctionProcess&>(rt.process(i));
    ASSERT_TRUE(p.result().has_value()) << "node " << i;
    EXPECT_EQ(*p.result(), want);
  }
}

TEST(GlobalFunction, ComputesSumOverProtocolG) {
  const std::uint32_t n = 24;
  RunOptions o;
  o.n = n;
  o.mapper = MapperKind::kRandom;
  auto input_of = [](sim::NodeId addr) {
    return static_cast<std::int64_t>(addr) + 1;
  };
  sim::Runtime rt(
      harness::BuildNetwork(o),
      MakeGlobalFunction(ElectionG(n), input_of, SumReducer()));
  auto r = rt.Run();
  ASSERT_EQ(r.leader_declarations, 1u);
  std::int64_t want = static_cast<std::int64_t>(n) * (n + 1) / 2;
  auto& p = dynamic_cast<GlobalFunctionProcess&>(rt.process(0));
  ASSERT_TRUE(p.result().has_value());
  EXPECT_EQ(*p.result(), want);
}

TEST(GlobalFunction, RandomDelaysStillConverge) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RunOptions o;
    o.n = 16;
    o.seed = seed;
    o.mapper = MapperKind::kRandom;
    o.delay = harness::DelayKind::kRandom;
    auto input_of = [](sim::NodeId addr) {
      return static_cast<std::int64_t>(addr);
    };
    sim::Runtime rt(
        harness::BuildNetwork(o),
        MakeGlobalFunction(ElectionG(16), input_of, MaxReducer()));
    auto r = rt.Run();
    ASSERT_EQ(r.leader_declarations, 1u) << "seed=" << seed;
    auto& p = dynamic_cast<GlobalFunctionProcess&>(rt.process(3));
    ASSERT_TRUE(p.result().has_value());
    EXPECT_EQ(*p.result(), 15);
  }
}

}  // namespace
}  // namespace celect::apps
