// Runtime behaviour: delivery, arrival ports, FIFO, passive wakeup
// barring, failed nodes, metrics, trace.
#include "celect/sim/runtime.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <utility>

#include "celect/proto/common.h"
#include "celect/sim/network.h"

namespace celect::sim {
namespace {

constexpr std::uint16_t kPing = 1;
constexpr std::uint16_t kPong = 2;

// Node 0 pings everyone; everyone pongs back; node 0 declares when all
// pongs arrive.
class PingPong : public Process {
 public:
  explicit PingPong(const ProcessInit& init) : n_(init.n) {}

  void OnWakeup(Context& ctx) override {
    ctx.SendAll(wire::Packet{kPing, {ctx.id()}});
  }

  void OnMessage(Context& ctx, Port from_port,
                 const wire::Packet& p) override {
    if (p.type == kPing) {
      ctx.Send(from_port, wire::Packet{kPong, {}});
    } else if (++pongs_ == n_ - 1) {
      ctx.DeclareLeader();
    }
  }

 private:
  std::uint32_t n_;
  std::uint32_t pongs_ = 0;
};

ProcessFactory PingPongFactory() {
  return [](const ProcessInit& init) {
    return std::make_unique<PingPong>(init);
  };
}

NetworkConfig BasicConfig(std::uint32_t n) {
  NetworkConfig c;
  c.n = n;
  c.mapper = MakeSodMapper(n);
  c.delays = MakeUnitDelay();
  c.wakeup = WakeSingle(n, 0);
  return c;
}

TEST(Runtime, PingPongRoundTrip) {
  Runtime rt(BasicConfig(8), PingPongFactory());
  auto r = rt.Run();
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_EQ(r.leader_id, Id{1});
  EXPECT_EQ(r.total_messages, 14u);  // 7 pings + 7 pongs
  // Ping arrives at 1, pong at 2.
  EXPECT_DOUBLE_EQ(r.leader_time.ToDouble(), 2.0);
  EXPECT_DOUBLE_EQ(r.quiesce_time.ToDouble(), 2.0);
}

TEST(Runtime, MessagesByTypeAccounting) {
  Runtime rt(BasicConfig(5), PingPongFactory());
  auto r = rt.Run();
  EXPECT_EQ(r.messages_by_type.at(kPing), 4u);
  EXPECT_EQ(r.messages_by_type.at(kPong), 4u);
  EXPECT_GT(r.total_bytes, 0u);
}

TEST(Runtime, SerializedPacketsRoundTripThroughCodec) {
  NetworkConfig c = BasicConfig(6);
  RuntimeOptions opts;
  opts.serialize_packets = true;
  Runtime rt(std::move(c), PingPongFactory(), opts);
  auto r = rt.Run();
  EXPECT_EQ(r.leader_declarations, 1u);
}

TEST(Runtime, FailedNodesEatMessages) {
  NetworkConfig c = BasicConfig(6);
  c.failed.assign(6, false);
  c.failed[3] = true;
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  // Node 0 never gets node 3's pong, so nobody declares; run quiesces.
  EXPECT_EQ(r.leader_declarations, 0u);
  EXPECT_EQ(r.total_messages, 5u + 4u);  // 5 pings counted, 4 pongs
}

TEST(Runtime, TraceRecordsSendsAndDeliveries) {
  NetworkConfig c = BasicConfig(3);
  RuntimeOptions opts;
  opts.enable_trace = true;
  Runtime rt(std::move(c), PingPongFactory(), opts);
  rt.Run();
  const auto& recs = rt.trace().records();
  int sends = 0, recvs = 0, wakes = 0, leads = 0;
  for (const auto& r : recs) {
    switch (r.kind) {
      case TraceRecord::Kind::kSend:
        ++sends;
        break;
      case TraceRecord::Kind::kDeliver:
        ++recvs;
        break;
      case TraceRecord::Kind::kWakeup:
        ++wakes;
        break;
      case TraceRecord::Kind::kLeader:
        ++leads;
        break;
      default:
        break;  // fault/timer records don't occur in this fault-free run
    }
  }
  EXPECT_EQ(sends, 4);
  EXPECT_EQ(recvs, 4);
  EXPECT_EQ(wakes, 1);
  EXPECT_EQ(leads, 1);
}

TEST(Runtime, TracePreservesPerLinkFifo) {
  // Under random delays, deliveries on each directed link must appear in
  // send order.
  NetworkConfig c;
  c.n = 12;
  c.mapper = MakeSodMapper(12);
  c.delays = MakeRandomDelay(777);
  c.wakeup = WakeAllAtZero(12);
  RuntimeOptions opts;
  opts.enable_trace = true;
  Runtime rt(std::move(c), PingPongFactory(), opts);
  rt.Run();

  // Reconstruct per-(from,to) send and delivery sequences by packet type
  // count; FIFO holds iff deliveries never decrease in trace seq order
  // per link. We use arrival times monotone per link.
  std::map<std::pair<NodeId, NodeId>, Time> last_arrival;
  for (const auto& r : rt.trace().records()) {
    if (r.kind != TraceRecord::Kind::kDeliver) continue;
    auto key = std::make_pair(r.peer, r.node);  // from, to
    auto it = last_arrival.find(key);
    if (it != last_arrival.end()) {
      EXPECT_GE(r.at, it->second) << "FIFO violated on link " << r.peer
                                  << "->" << r.node;
    }
    last_arrival[key] = r.at;
  }
}

// A process that records whether it was a base node.
class BaseRecorder : public proto::ElectionProcess {
 public:
  explicit BaseRecorder(const ProcessInit&) {}

 protected:
  void OnSpontaneousWakeup(Context& ctx) override {
    ctx.Send(1, wire::Packet{kPing, {}});
  }
  void OnPacket(Context&, Port, const wire::Packet&, bool) override {}
};

TEST(Runtime, MessageContactBarsLaterSpontaneousWakeup) {
  // Node 0 wakes at t=0 and pings node 1 (arrives t=1). Node 1's
  // spontaneous wakeup is scheduled at t=2 — by then it has heard a
  // message, so it must NOT become a base node.
  NetworkConfig c;
  c.n = 4;
  c.mapper = MakeSodMapper(4);
  c.delays = MakeUnitDelay();
  c.wakeup.wakeups = {{0, Time::Zero()}, {1, Time::FromUnits(2)}};
  Runtime rt(std::move(c), [](const ProcessInit& init) {
    return std::make_unique<BaseRecorder>(init);
  });
  rt.Run();
  auto& p0 = dynamic_cast<proto::ElectionProcess&>(rt.process(0));
  auto& p1 = dynamic_cast<proto::ElectionProcess&>(rt.process(1));
  auto& p2 = dynamic_cast<proto::ElectionProcess&>(rt.process(2));
  EXPECT_TRUE(p0.is_base());
  EXPECT_TRUE(p1.awake());
  EXPECT_FALSE(p1.is_base());  // barred by the earlier ping
  EXPECT_FALSE(p2.awake());
}

TEST(Runtime, SpontaneousWakeupBeforeContactIsBase) {
  NetworkConfig c;
  c.n = 4;
  c.mapper = MakeSodMapper(4);
  c.delays = MakeUnitDelay();
  // Node 1 wakes at 0.5, before node 0's ping arrives at 1.
  c.wakeup.wakeups = {{0, Time::Zero()}, {1, Time::FromDouble(0.5)}};
  Runtime rt(std::move(c), [](const ProcessInit& init) {
    return std::make_unique<BaseRecorder>(init);
  });
  rt.Run();
  auto& p1 = dynamic_cast<proto::ElectionProcess&>(rt.process(1));
  EXPECT_TRUE(p1.is_base());
}

TEST(Runtime, CustomIdentities) {
  NetworkConfig c = BasicConfig(4);
  c.identities = {40, 10, 30, 20};
  Runtime rt(std::move(c), PingPongFactory());
  auto r = rt.Run();
  EXPECT_EQ(r.leader_id, Id{40});  // node 0's identity
}

TEST(Runtime, MaxLinkLoadReflectsBurstiness) {
  Runtime rt(BasicConfig(8), PingPongFactory());
  auto r = rt.Run();
  EXPECT_EQ(r.max_link_load, 1u);  // ping-pong never reuses a direction
}

// Pings like PingPong, but node 0 also arms a far-future watchdog timer
// at wakeup and cancels it once the first pong arrives.
class WatchdogPingPong : public Process {
 public:
  explicit WatchdogPingPong(const ProcessInit& init) : n_(init.n) {}

  void OnWakeup(Context& ctx) override {
    watchdog_ = ctx.SetTimer(Time::FromDouble(100000.0));
    ctx.SendAll(wire::Packet{kPing, {ctx.id()}});
  }

  void OnMessage(Context& ctx, Port from_port,
                 const wire::Packet& p) override {
    if (p.type == kPing) {
      ctx.Send(from_port, wire::Packet{kPong, {}});
      return;
    }
    if (watchdog_ != kInvalidTimer) {
      ctx.CancelTimer(watchdog_);
      watchdog_ = kInvalidTimer;
    }
    if (++pongs_ == n_ - 1) ctx.DeclareLeader();
  }

  void OnTimer(Context&, TimerId) override { timer_fired_ = true; }

 private:
  std::uint32_t n_;
  std::uint32_t pongs_ = 0;
  TimerId watchdog_ = kInvalidTimer;
  bool timer_fired_ = false;
};

// Regression: a cancelled far-future timer is a tombstone in the queue;
// it must not stretch quiescence (or the live horizon) to a deadline
// that never fires. Quiescence must land exactly where the timer-free
// PingPong run lands.
TEST(Runtime, CancelledFarFutureTimerLeavesQuiescenceUnchanged) {
  Runtime rt(BasicConfig(8), [](const ProcessInit& init) {
    return std::make_unique<WatchdogPingPong>(init);
  });
  auto r = rt.Run();
  EXPECT_EQ(r.leader_declarations, 1u);
  EXPECT_DOUBLE_EQ(r.quiesce_time.ToDouble(), 2.0);
  EXPECT_EQ(r.timers_fired, 0u);
  EXPECT_EQ(r.counters.at("sim.timers_cancelled"), 1);
}

// A sender that puts one huge burst on a single FIFO link. Unit delays
// serialise the burst one unit apart, so the tail of the backlog arrives
// more than 4096 units (2^32 ticks) after its send — past what
// DeliveryEvent's 32-bit latency field can represent.
class BurstSender : public Process {
 public:
  explicit BurstSender(const ProcessInit&) {}

  void OnWakeup(Context& ctx) override {
    for (int i = 0; i < 4100; ++i) ctx.Send(1, wire::Packet{kPing, {}});
  }

  void OnMessage(Context&, Port, const wire::Packet&) override {}

 private:
};

// Regression: latency saturation used to clip silently, feeding the
// telemetry histogram a fake mode at the ceiling. It must now surface
// as counters["sim.latency_saturated"].
TEST(Runtime, LatencySaturationIsCounted) {
  NetworkConfig c = BasicConfig(2);
  RuntimeOptions opt;
  opt.enable_telemetry = true;
  Runtime rt(std::move(c), [](const ProcessInit& init) {
    return std::make_unique<BurstSender>(init);
  }, opt);
  auto r = rt.Run();
  ASSERT_TRUE(r.counters.contains("sim.latency_saturated"));
  // 4100 messages spaced one unit apart: arrivals past ~4096 units clip.
  EXPECT_GT(r.counters.at("sim.latency_saturated"), 0);
  EXPECT_LT(r.counters.at("sim.latency_saturated"), 100);
}

}  // namespace
}  // namespace celect::sim
